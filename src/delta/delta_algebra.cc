#include "delta/delta_algebra.h"

#include <algorithm>

#include "relational/columnar.h"

namespace squirrel {

Result<Delta> DeltaSelect(const Delta& delta, const Expr::Ptr& cond) {
  Expr::Ptr c = cond ? cond : Expr::True();
  if (c->IsTrueLiteral()) return delta;
  if (columnar::ShouldUse(delta.AtomCount())) {
    return columnar::SelectDelta(delta, c);
  }
  SQ_ASSIGN_OR_RETURN(BoundExpr bound, BoundExpr::Bind(c, delta.schema()));
  Delta out(delta.schema());
  Status st = Status::OK();
  delta.ForEach([&](const Tuple& t, int64_t count) {
    if (!st.ok()) return;
    auto keep = bound.EvalBool(t);
    if (!keep.ok()) {
      st = keep.status();
      return;
    }
    if (*keep) st = out.Add(t, count);
  });
  if (!st.ok()) return st;
  return out;
}

Result<Delta> DeltaProject(const Delta& delta,
                           const std::vector<std::string>& attrs) {
  if (columnar::ShouldUse(delta.AtomCount())) {
    return columnar::ProjectDelta(delta, attrs);
  }
  SQ_ASSIGN_OR_RETURN(Schema out_schema, delta.schema().Project(attrs));
  std::vector<size_t> positions;
  positions.reserve(attrs.size());
  for (const auto& a : attrs) positions.push_back(*delta.schema().IndexOf(a));
  Delta out(std::move(out_schema));
  Status st = Status::OK();
  delta.ForEach([&](const Tuple& t, int64_t count) {
    if (st.ok()) st = out.Add(t.Project(positions), count);
  });
  if (!st.ok()) return st;
  return out;
}

namespace {

// Shared core for Δ⋈R and R⋈Δ: iterate delta atoms, probe the relation,
// emit concatenated tuples with multiplied counts.
Result<Delta> JoinDeltaWithRelation(const Delta& delta, const Relation& rel,
                                    const Expr::Ptr& cond, bool delta_left) {
  const Schema& ls = delta_left ? delta.schema() : rel.schema();
  const Schema& rs = delta_left ? rel.schema() : delta.schema();
  SQ_ASSIGN_OR_RETURN(Schema out_schema, ls.Concat(rs));
  Expr::Ptr c = cond ? cond : Expr::True();
  SQ_ASSIGN_OR_RETURN(BoundExpr bound, BoundExpr::Bind(c, out_schema));
  bool trivial = c->IsTrueLiteral();

  // Hash-join fast path on equi conjuncts.
  JoinConditionParts parts = SplitJoinCondition(c, ls, rs);
  Delta out(std::move(out_schema));
  Status st = Status::OK();

  auto emit = [&](const Tuple& lt, int64_t lc, const Tuple& rt, int64_t rc) {
    if (!st.ok()) return;
    Tuple joined = lt.Concat(rt);
    if (!trivial) {
      auto keep = bound.EvalBool(joined);
      if (!keep.ok()) {
        st = keep.status();
        return;
      }
      if (!*keep) return;
    }
    st = out.Add(std::move(joined), lc * rc);
  };

  if (!parts.equi.empty()) {
    if (columnar::ShouldUse(
            std::max(delta.AtomCount(), rel.DistinctSize()))) {
      return columnar::JoinDeltaRelation(delta, rel, c, delta_left);
    }
    // Build a hash table over the relation keyed by its equi attributes.
    std::vector<size_t> rel_pos, delta_pos;
    const Schema& dsch = delta.schema();
    const Schema& rsch = rel.schema();
    for (const auto& p : parts.equi) {
      const std::string& l = p.left_attr;   // in ls
      const std::string& r = p.right_attr;  // in rs
      const std::string& in_delta = delta_left ? l : r;
      const std::string& in_rel = delta_left ? r : l;
      delta_pos.push_back(*dsch.IndexOf(in_delta));
      rel_pos.push_back(*rsch.IndexOf(in_rel));
    }
    std::unordered_map<Tuple, std::vector<std::pair<const Tuple*, int64_t>>,
                       TupleHash>
        table;
    rel.ForEach([&](const Tuple& t, int64_t count) {
      table[t.Project(rel_pos)].emplace_back(&t, count);
    });
    delta.ForEach([&](const Tuple& dt, int64_t dc) {
      if (!st.ok()) return;
      auto it = table.find(dt.Project(delta_pos));
      if (it == table.end()) return;
      for (const auto& [rt, rc] : it->second) {
        if (delta_left) {
          emit(dt, dc, *rt, rc);
        } else {
          emit(*rt, rc, dt, dc);
        }
      }
    });
  } else {
    delta.ForEach([&](const Tuple& dt, int64_t dc) {
      if (!st.ok()) return;
      rel.ForEach([&](const Tuple& rt, int64_t rc) {
        if (delta_left) {
          emit(dt, dc, rt, rc);
        } else {
          emit(rt, rc, dt, dc);
        }
      });
    });
  }
  if (!st.ok()) return st;
  return out;
}

}  // namespace

Result<Delta> DeltaJoinRelation(const Delta& delta, const Relation& rel,
                                const Expr::Ptr& cond) {
  return JoinDeltaWithRelation(delta, rel, cond, /*delta_left=*/true);
}

Result<Delta> RelationJoinDelta(const Relation& rel, const Delta& delta,
                                const Expr::Ptr& cond) {
  return JoinDeltaWithRelation(delta, rel, cond, /*delta_left=*/false);
}

std::vector<std::string> EquiProbeAttrs(
    const Expr::Ptr& cond, const std::vector<std::string>& probe_side,
    const std::vector<std::string>& indexed_side) {
  auto has = [](const std::vector<std::string>& v, const std::string& n) {
    return std::find(v.begin(), v.end(), n) != v.end();
  };
  std::vector<std::string> out;
  Expr::Ptr c = cond ? cond : Expr::True();
  for (const auto& clause : ConjunctiveClauses(c)) {
    if (clause->kind() != Expr::Kind::kBinary ||
        clause->bin_op() != BinOp::kEq ||
        clause->left()->kind() != Expr::Kind::kAttr ||
        clause->right()->kind() != Expr::Kind::kAttr) {
      continue;
    }
    const std::string& a = clause->left()->attr_name();
    const std::string& b = clause->right()->attr_name();
    const std::string* indexed = nullptr;
    if (has(probe_side, a) && has(indexed_side, b)) {
      indexed = &b;
    } else if (has(probe_side, b) && has(indexed_side, a)) {
      indexed = &a;
    }
    if (indexed != nullptr && !has(out, *indexed)) out.push_back(*indexed);
  }
  return out;
}

Result<Delta> JoinDeltaWithIndexedTerm(
    const Delta& delta, const Relation& repo, const HashIndex& index,
    const Expr::Ptr& term_select, const std::vector<std::string>& term_project,
    const Expr::Ptr& join_cond, bool delta_left) {
  if (index.relation_attrs() != repo.schema().AttributeNames()) {
    return Status::FailedPrecondition(
        "index was not built on this repository");
  }
  SQ_ASSIGN_OR_RETURN(Schema term_schema, repo.schema().Project(term_project));
  const Schema& ls = delta_left ? delta.schema() : term_schema;
  const Schema& rs = delta_left ? term_schema : delta.schema();
  SQ_ASSIGN_OR_RETURN(Schema out_schema, ls.Concat(rs));
  Expr::Ptr c = join_cond ? join_cond : Expr::True();
  SQ_ASSIGN_OR_RETURN(BoundExpr bound, BoundExpr::Bind(c, out_schema));
  bool trivial = c->IsTrueLiteral();

  JoinConditionParts parts = SplitJoinCondition(c, ls, rs);
  if (parts.equi.empty()) {
    return Status::FailedPrecondition("join has no equi conjunct to probe");
  }
  auto indexed_has = [&](const std::string& n) {
    return std::find(index.attrs().begin(), index.attrs().end(), n) !=
           index.attrs().end();
  };
  // The index attr set must equal the term-side equi attr set: probe keys
  // fix every indexed attribute, and every equi conjunct must be enforced
  // by the probe (the residual filter only sees non-equi clauses).
  std::vector<size_t> probe_pos;
  probe_pos.reserve(index.attrs().size());
  for (const auto& indexed_attr : index.attrs()) {
    const std::string* delta_attr = nullptr;
    for (const auto& p : parts.equi) {
      const std::string& term_a = delta_left ? p.right_attr : p.left_attr;
      const std::string& delta_a = delta_left ? p.left_attr : p.right_attr;
      if (term_a == indexed_attr) {
        delta_attr = &delta_a;
        break;
      }
    }
    if (delta_attr == nullptr) {
      return Status::FailedPrecondition(
          "indexed attribute not among the join's equi conjuncts: " +
          indexed_attr);
    }
    probe_pos.push_back(*delta.schema().IndexOf(*delta_attr));
  }
  for (const auto& p : parts.equi) {
    const std::string& term_a = delta_left ? p.right_attr : p.left_attr;
    if (!indexed_has(term_a)) {
      return Status::FailedPrecondition(
          "equi attribute not covered by the index: " + term_a);
    }
  }

  Expr::Ptr sel = term_select ? term_select : Expr::True();
  bool has_select = !sel->IsTrueLiteral();
  BoundExpr bound_select;
  if (has_select) {
    SQ_ASSIGN_OR_RETURN(bound_select, BoundExpr::Bind(sel, repo.schema()));
  }
  std::vector<size_t> term_pos;
  term_pos.reserve(term_project.size());
  for (const auto& a : term_project) {
    term_pos.push_back(*repo.schema().IndexOf(a));
  }

  Delta out(std::move(out_schema));
  Status st = Status::OK();
  delta.ForEach([&](const Tuple& dt, int64_t dc) {
    if (!st.ok()) return;
    for (const auto& [rt, rc] : index.Probe(dt.Project(probe_pos))) {
      if (has_select) {
        auto keep = bound_select.EvalBool(rt);
        if (!keep.ok()) {
          st = keep.status();
          return;
        }
        if (!*keep) continue;
      }
      Tuple joined = delta_left ? dt.Concat(rt.Project(term_pos))
                                : rt.Project(term_pos).Concat(dt);
      if (!trivial) {
        auto keep = bound.EvalBool(joined);
        if (!keep.ok()) {
          st = keep.status();
          return;
        }
        if (!*keep) continue;
      }
      st = out.Add(std::move(joined), dc * rc);
      if (!st.ok()) return;
    }
  });
  if (!st.ok()) return st;
  return out;
}

Result<Delta> FilterDeltaToLeafParent(const Delta& source_delta,
                                      const Expr::Ptr& cond,
                                      const std::vector<std::string>& attrs) {
  SQ_ASSIGN_OR_RETURN(Delta selected, DeltaSelect(source_delta, cond));
  return DeltaProject(selected, attrs);
}

Result<Delta> PresenceDelta(const Relation& state_after,
                            const Delta& bag_delta) {
  Delta out(bag_delta.schema());
  Status st = Status::OK();
  bag_delta.ForEach([&](const Tuple& t, int64_t signed_count) {
    if (!st.ok()) return;
    int64_t after = state_after.CountOf(t);
    int64_t before = after - signed_count;
    if (before < 0) {
      st = Status::Internal("presence delta: negative pre-state count for " +
                            t.ToString());
      return;
    }
    if (before == 0 && after > 0) {
      st = out.Add(t, 1);
    } else if (before > 0 && after == 0) {
      st = out.Add(t, -1);
    }
  });
  if (!st.ok()) return st;
  return out;
}

Delta DeltaIntersectRelation(const Delta& delta, const Relation& rel) {
  Delta out(delta.schema());
  delta.ForEach([&](const Tuple& t, int64_t count) {
    if (rel.Contains(t)) (void)out.Add(t, count);
  });
  return out;
}

Delta DeltaMinusRelation(const Delta& delta, const Relation& rel) {
  Delta out(delta.schema());
  delta.ForEach([&](const Tuple& t, int64_t count) {
    if (!rel.Contains(t)) (void)out.Add(t, count);
  });
  return out;
}

}  // namespace squirrel
