// Pushing deltas through relational operators.
//
// The incremental-maintenance rules of paper §5.2 are built from these
// primitives: apply commutes with select and project (§6.2), deltas join
// with relations (the SPJ rule), and bag deltas induce presence (set-level)
// deltas for set nodes such as difference.

#ifndef SQUIRREL_DELTA_DELTA_ALGEBRA_H_
#define SQUIRREL_DELTA_DELTA_ALGEBRA_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "delta/delta.h"
#include "relational/expr.h"
#include "relational/relation.h"

namespace squirrel {

/// σ_cond(Δ): keeps atoms whose tuples satisfy the condition. Implements the
/// commutation π_C σ_f apply(R,Δ) = apply(π_C σ_f R, π_C σ_f Δ) of §6.2.
Result<Delta> DeltaSelect(const Delta& delta, const Expr::Ptr& cond);

/// π_attrs(Δ): projects atoms, summing signed counts (bag semantics).
Result<Delta> DeltaProject(const Delta& delta,
                           const std::vector<std::string>& attrs);

/// Δ ⋈_cond R, result schema = delta schema ++ relation schema.
/// Multiplicities multiply; signs come from the delta.
Result<Delta> DeltaJoinRelation(const Delta& delta, const Relation& rel,
                                const Expr::Ptr& cond);

/// R ⋈_cond Δ, result schema = relation schema ++ delta schema.
Result<Delta> RelationJoinDelta(const Relation& rel, const Delta& delta,
                                const Expr::Ptr& cond);

/// "Filters" a source-relation delta so it applies to a leaf-parent node
/// defined as π_attrs σ_cond(source relation) (§6.2): select then project.
Result<Delta> FilterDeltaToLeafParent(const Delta& source_delta,
                                      const Expr::Ptr& cond,
                                      const std::vector<std::string>& attrs);

/// Converts a bag delta into the presence (set-level) delta it induces,
/// given the relation state *after* the bag delta was applied: a tuple whose
/// multiplicity crossed 0 -> >0 yields +1; >0 -> 0 yields -1.
Result<Delta> PresenceDelta(const Relation& state_after,
                            const Delta& bag_delta);

/// Restricts \p delta to atoms of tuples present in \p rel (set
/// intersection used by the difference rules, e.g. (ΔR₂)⁻ ∩ R₁).
Delta DeltaIntersectRelation(const Delta& delta, const Relation& rel);

/// Restricts \p delta to atoms of tuples NOT present in \p rel (set minus
/// used by the difference rules, e.g. (ΔR₁)⁺ − R₂).
Delta DeltaMinusRelation(const Delta& delta, const Relation& rel);

}  // namespace squirrel

#endif  // SQUIRREL_DELTA_DELTA_ALGEBRA_H_
