// Pushing deltas through relational operators.
//
// The incremental-maintenance rules of paper §5.2 are built from these
// primitives: apply commutes with select and project (§6.2), deltas join
// with relations (the SPJ rule), and bag deltas induce presence (set-level)
// deltas for set nodes such as difference.

#ifndef SQUIRREL_DELTA_DELTA_ALGEBRA_H_
#define SQUIRREL_DELTA_DELTA_ALGEBRA_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "delta/delta.h"
#include "relational/expr.h"
#include "relational/index.h"
#include "relational/relation.h"

namespace squirrel {

/// σ_cond(Δ): keeps atoms whose tuples satisfy the condition. Implements the
/// commutation π_C σ_f apply(R,Δ) = apply(π_C σ_f R, π_C σ_f Δ) of §6.2.
Result<Delta> DeltaSelect(const Delta& delta, const Expr::Ptr& cond);

/// π_attrs(Δ): projects atoms, summing signed counts (bag semantics).
Result<Delta> DeltaProject(const Delta& delta,
                           const std::vector<std::string>& attrs);

/// Δ ⋈_cond R, result schema = delta schema ++ relation schema.
/// Multiplicities multiply; signs come from the delta.
Result<Delta> DeltaJoinRelation(const Delta& delta, const Relation& rel,
                                const Expr::Ptr& cond);

/// R ⋈_cond Δ, result schema = relation schema ++ delta schema.
Result<Delta> RelationJoinDelta(const Relation& rel, const Delta& delta,
                                const Expr::Ptr& cond);

/// The attribute names on the \p indexed_side of every equi-join conjunct
/// of \p cond linking \p probe_side to \p indexed_side. Mirrors
/// SplitJoinCondition's equi detection but works on attribute-name lists, so
/// the index advisor can run it without materialized schemas. Deduplicated,
/// in order of first appearance; empty when no such conjunct exists.
std::vector<std::string> EquiProbeAttrs(
    const Expr::Ptr& cond, const std::vector<std::string>& probe_side,
    const std::vector<std::string>& indexed_side);

/// Δ ⋈_cond (π_project σ_select(repo)) — resp. the mirror-image join when
/// \p delta_left is false — probing a persistent \p index on \p repo instead
/// of materializing the term relation and hashing it per call. The index
/// must have been built on \p repo and its attribute set must equal the
/// term-side equi attributes of \p cond (FailedPrecondition otherwise;
/// callers fall back to the unindexed path). Result schema is
/// delta ++ term (or term ++ delta) exactly as DeltaJoinRelation /
/// RelationJoinDelta would produce over the materialized term.
Result<Delta> JoinDeltaWithIndexedTerm(
    const Delta& delta, const Relation& repo, const HashIndex& index,
    const Expr::Ptr& term_select, const std::vector<std::string>& term_project,
    const Expr::Ptr& join_cond, bool delta_left);

/// "Filters" a source-relation delta so it applies to a leaf-parent node
/// defined as π_attrs σ_cond(source relation) (§6.2): select then project.
Result<Delta> FilterDeltaToLeafParent(const Delta& source_delta,
                                      const Expr::Ptr& cond,
                                      const std::vector<std::string>& attrs);

/// Converts a bag delta into the presence (set-level) delta it induces,
/// given the relation state *after* the bag delta was applied: a tuple whose
/// multiplicity crossed 0 -> >0 yields +1; >0 -> 0 yields -1.
Result<Delta> PresenceDelta(const Relation& state_after,
                            const Delta& bag_delta);

/// Restricts \p delta to atoms of tuples present in \p rel (set
/// intersection used by the difference rules, e.g. (ΔR₂)⁻ ∩ R₁).
Delta DeltaIntersectRelation(const Delta& delta, const Relation& rel);

/// Restricts \p delta to atoms of tuples NOT present in \p rel (set minus
/// used by the difference rules, e.g. (ΔR₁)⁺ − R₂).
Delta DeltaMinusRelation(const Delta& delta, const Relation& rel);

}  // namespace squirrel

#endif  // SQUIRREL_DELTA_DELTA_ALGEBRA_H_
