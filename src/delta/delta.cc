#include "delta/delta.h"

#include <algorithm>
#include <cstdlib>

#include "common/strings.h"
#include "relational/columnar.h"

namespace squirrel {

Status Delta::Add(const Tuple& tuple, int64_t signed_count) {
  if (signed_count == 0) return Status::OK();
  if (schema_.size() > 0 && tuple.size() != schema_.size()) {
    return Status::InvalidArgument(
        "delta atom arity " + std::to_string(tuple.size()) +
        " does not match schema arity " + std::to_string(schema_.size()));
  }
  auto [it, inserted] = atoms_.try_emplace(tuple, signed_count);
  if (!inserted) {
    it->second += signed_count;
    if (it->second == 0) atoms_.erase(it);
  }
  return Status::OK();
}

int64_t Delta::CountOf(const Tuple& tuple) const {
  auto it = atoms_.find(tuple);
  return it == atoms_.end() ? 0 : it->second;
}

int64_t Delta::TotalMagnitude() const {
  int64_t total = 0;
  for (const auto& [t, c] : atoms_) {
    (void)t;
    total += std::abs(c);
  }
  return total;
}

void Delta::ForEach(
    const std::function<void(const Tuple&, int64_t)>& fn) const {
  for (const auto& [tuple, count] : atoms_) fn(tuple, count);
}

std::vector<std::pair<Tuple, int64_t>> Delta::SortedAtoms() const {
  std::vector<std::pair<Tuple, int64_t>> out(atoms_.begin(), atoms_.end());
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

Delta Delta::Inverse() const {
  Delta out(schema_);
  for (const auto& [tuple, count] : atoms_) out.atoms_[tuple] = -count;
  return out;
}

Status Delta::SmashInPlace(const Delta& later) {
  if (schema_.size() == 0) schema_ = later.schema_;
  for (const auto& [tuple, count] : later.atoms_) {
    SQ_RETURN_IF_ERROR(Add(tuple, count));
  }
  return Status::OK();
}

Result<Delta> Delta::Smash(const Delta& d1, const Delta& d2) {
  Delta out = d1;
  SQ_RETURN_IF_ERROR(out.SmashInPlace(d2));
  return out;
}

Relation Delta::Positive() const {
  Relation out(schema_, Semantics::kBag);
  for (const auto& [tuple, count] : atoms_) {
    if (count > 0) (void)out.Insert(tuple, count);
  }
  return out;
}

Relation Delta::Negative() const {
  Relation out(schema_, Semantics::kBag);
  for (const auto& [tuple, count] : atoms_) {
    if (count < 0) (void)out.Insert(tuple, -count);
  }
  return out;
}

Result<Delta> Delta::Between(const Relation& from, const Relation& to) {
  if (from.schema().AttributeNames() != to.schema().AttributeNames()) {
    return Status::InvalidArgument(
        "Delta::Between on relations with different schemas");
  }
  if (columnar::ShouldUse(
          std::max(from.DistinctSize(), to.DistinctSize()))) {
    return columnar::Between(from, to);
  }
  Delta out(to.schema());
  Status st = Status::OK();
  to.ForEach([&](const Tuple& t, int64_t c) {
    if (st.ok()) st = out.Add(t, c - from.CountOf(t));
  });
  from.ForEach([&](const Tuple& t, int64_t c) {
    if (st.ok() && !to.Contains(t)) st = out.Add(t, -c);
  });
  if (!st.ok()) return st;
  return out;
}

std::string Delta::ToString() const {
  std::string out = "{";
  bool first = true;
  for (const auto& [tuple, count] : SortedAtoms()) {
    if (!first) out += ", ";
    first = false;
    out += count > 0 ? "+" : "-";
    out += tuple.ToString();
    int64_t mag = std::abs(count);
    if (mag != 1) out += " x" + std::to_string(mag);
  }
  out += "}";
  return out;
}

bool Delta::EqualContents(const Delta& other) const {
  if (atoms_.size() != other.atoms_.size()) return false;
  for (const auto& [tuple, count] : atoms_) {
    if (other.CountOf(tuple) != count) return false;
  }
  return true;
}

Status ApplyDelta(Relation* rel, const Delta& delta) {
  if (delta.schema().size() > 0 && rel->schema().size() > 0 &&
      delta.schema().AttributeNames() != rel->schema().AttributeNames()) {
    return Status::InvalidArgument(
        "applying delta with mismatched schema: delta " +
        Join(delta.schema().AttributeNames(), ",") + " vs relation " +
        Join(rel->schema().AttributeNames(), ","));
  }
  // Validate first so a failed apply leaves the relation untouched.
  Status st = Status::OK();
  delta.ForEach([&](const Tuple& tuple, int64_t count) {
    if (!st.ok()) return;
    int64_t present = rel->CountOf(tuple);
    if (rel->semantics() == Semantics::kSet) {
      if (count != 1 && count != -1) {
        st = Status::FailedPrecondition(
            "set relation delta atom with |count| != 1: " + tuple.ToString());
      } else if (count == 1 && present > 0) {
        st = Status::FailedPrecondition("redundant insertion of " +
                                        tuple.ToString());
      } else if (count == -1 && present == 0) {
        st = Status::FailedPrecondition("redundant deletion of " +
                                        tuple.ToString());
      }
    } else if (present + count < 0) {
      st = Status::FailedPrecondition(
          "bag delta would drive multiplicity of " + tuple.ToString() +
          " below zero (" + std::to_string(present) + " + " +
          std::to_string(count) + ")");
    }
  });
  if (!st.ok()) return st;
  delta.ForEach([&](const Tuple& tuple, int64_t count) {
    if (st.ok()) st = rel->Adjust(tuple, count);
  });
  return st;
}

Delta* MultiDelta::Mutable(const std::string& rel_name, const Schema& schema) {
  auto it = per_relation_.find(rel_name);
  if (it == per_relation_.end()) {
    it = per_relation_.emplace(rel_name, Delta(schema)).first;
  }
  return &it->second;
}

const Delta* MultiDelta::Find(const std::string& rel_name) const {
  auto it = per_relation_.find(rel_name);
  if (it == per_relation_.end() || it->second.Empty()) return nullptr;
  return &it->second;
}

bool MultiDelta::Empty() const {
  for (const auto& [name, delta] : per_relation_) {
    (void)name;
    if (!delta.Empty()) return false;
  }
  return true;
}

std::vector<std::string> MultiDelta::RelationNames() const {
  std::vector<std::string> out;
  for (const auto& [name, delta] : per_relation_) {
    if (!delta.Empty()) out.push_back(name);
  }
  return out;
}

size_t MultiDelta::AtomCount() const {
  size_t total = 0;
  for (const auto& [name, delta] : per_relation_) {
    (void)name;
    total += delta.AtomCount();
  }
  return total;
}

Status MultiDelta::SmashInPlace(const MultiDelta& later) {
  for (const auto& [name, delta] : later.per_relation_) {
    SQ_RETURN_IF_ERROR(
        Mutable(name, delta.schema())->SmashInPlace(delta));
  }
  return Status::OK();
}

std::string MultiDelta::ToString() const {
  std::string out;
  for (const auto& [name, delta] : per_relation_) {
    if (delta.Empty()) continue;
    if (!out.empty()) out += "; ";
    out += name + delta.ToString();
  }
  return out.empty() ? "{}" : out;
}

}  // namespace squirrel
