// Deltas: first-class differences between database states (paper §6.2,
// following the Heraclitus paradigm [HJ91, GHJ94] generalized to bags
// [DHR95]).
//
// A relational delta is a set of insertion atoms +R(t) and deletion atoms
// -R(t); the bag generalization attaches a signed multiplicity to each
// distinct tuple. The consistency condition — no tuple appears both inserted
// and deleted — is automatic here because atoms for the same tuple merge
// into one signed count.

#ifndef SQUIRREL_DELTA_DELTA_H_
#define SQUIRREL_DELTA_DELTA_H_

#include <functional>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "relational/relation.h"

namespace squirrel {

/// \brief A bag delta over a single relation: tuple -> signed multiplicity.
///
/// Positive counts are insertions, negative counts deletions; zero-count
/// entries are dropped eagerly so Empty() means "no change".
class Delta {
 public:
  Delta() = default;
  /// An empty delta for relation instances with schema \p schema.
  explicit Delta(Schema schema) : schema_(std::move(schema)) {}

  /// The tuple schema of this delta.
  const Schema& schema() const { return schema_; }

  /// Merges \p signed_count copies of \p tuple into the delta.
  Status Add(const Tuple& tuple, int64_t signed_count);
  /// Adds an insertion atom +tuple (xn).
  Status AddInsert(const Tuple& tuple, int64_t n = 1) {
    return Add(tuple, n);
  }
  /// Adds a deletion atom -tuple (xn).
  Status AddDelete(const Tuple& tuple, int64_t n = 1) {
    return Add(tuple, -n);
  }

  /// Signed multiplicity of \p tuple (0 if untouched).
  int64_t CountOf(const Tuple& tuple) const;

  /// True iff the delta changes nothing.
  bool Empty() const { return atoms_.empty(); }
  /// Number of distinct touched tuples.
  size_t AtomCount() const { return atoms_.size(); }
  /// Sum of |signed count| over all atoms.
  int64_t TotalMagnitude() const;

  /// Iterates (tuple, signed count) in unspecified order.
  void ForEach(const std::function<void(const Tuple&, int64_t)>& fn) const;

  /// (tuple, signed count) pairs sorted by tuple (deterministic).
  std::vector<std::pair<Tuple, int64_t>> SortedAtoms() const;

  /// The inverse delta: all signs flipped. Satisfies
  /// apply(apply(db, Δ), Δ⁻¹) = db for non-redundant deltas (paper §6.2).
  Delta Inverse() const;

  /// Smash (the '!' operator): this := this ! later. For bag deltas smash is
  /// pointwise signed addition, so apply(db, Δ1!Δ2) = apply(apply(db,Δ1),Δ2).
  Status SmashInPlace(const Delta& later);

  /// Returns d1 ! d2.
  static Result<Delta> Smash(const Delta& d1, const Delta& d2);

  /// The insertions as a bag relation (counts > 0): (Δ)⁺ of §5.2.
  Relation Positive() const;
  /// The deletions as a bag relation (|counts| of negative atoms): (Δ)⁻.
  Relation Negative() const;

  /// Builds the delta that transforms \p from into \p to (same attrs).
  static Result<Delta> Between(const Relation& from, const Relation& to);

  /// Renders sorted atoms, e.g. "{+(1,2) x2, -(3,4)}".
  std::string ToString() const;

  bool EqualContents(const Delta& other) const;

 private:
  Schema schema_;
  std::unordered_map<Tuple, int64_t, TupleHash> atoms_;
};

/// Applies \p delta to \p rel (bag apply). Strict non-redundancy: deleting
/// more copies than present is an error; for set relations inserting a
/// present tuple or any |count| != 1 atom is an error. The paper assumes
/// "no atom of any delta that is used is redundant" — enforcing it catches
/// propagation bugs early.
Status ApplyDelta(Relation* rel, const Delta& delta);

/// \brief A delta spanning several named relations (update-queue messages
/// "can simultaneously contain atoms that refer to more than one relation").
class MultiDelta {
 public:
  MultiDelta() = default;

  /// The per-relation delta for \p rel_name, creating it with \p schema.
  Delta* Mutable(const std::string& rel_name, const Schema& schema);
  /// The per-relation delta, or nullptr if the relation is untouched.
  const Delta* Find(const std::string& rel_name) const;

  /// True iff no relation is changed.
  bool Empty() const;
  /// Names of touched relations (sorted).
  std::vector<std::string> RelationNames() const;
  /// Sum of atom counts across relations.
  size_t AtomCount() const;

  /// Smash with a later multi-delta, relation-wise.
  Status SmashInPlace(const MultiDelta& later);

  std::string ToString() const;

 private:
  std::map<std::string, Delta> per_relation_;
};

}  // namespace squirrel

#endif  // SQUIRREL_DELTA_DELTA_H_
