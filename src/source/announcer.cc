#include "source/announcer.h"

#include "common/logging.h"

namespace squirrel {

Announcer::Announcer(SourceDb* db, Scheduler* scheduler,
                     Channel<SourceToMediatorMsg>* channel, Time period)
    : db_(db), scheduler_(scheduler), channel_(channel), period_(period) {
  db_->SetCommitListener(
      [this](Time now, const MultiDelta& delta) { OnCommit(now, delta); });
}

void Announcer::Start() {
  if (started_ || period_ <= 0) return;
  started_ = true;
  scheduler_->After(period_, [this]() { Tick(); });
}

void Announcer::OnCommit(Time now, const MultiDelta& delta) {
  (void)now;
  Status st = pending_.SmashInPlace(delta);
  if (!st.ok()) {
    SQ_LOG(kError) << "announcer smash failed: " << st.ToString();
    return;
  }
  if (period_ <= 0) FlushNow();
}

void Announcer::FlushNow() {
  if (pending_.Empty()) return;
  UpdateMessage msg;
  msg.source = db_->name();
  msg.send_time = scheduler_->Now();
  msg.seq = ++seq_;
  msg.delta = std::move(pending_);
  pending_ = MultiDelta();
  channel_->Send(SourceToMediatorMsg(std::move(msg)));
}

void Announcer::Tick() {
  FlushNow();
  scheduler_->After(period_, [this]() { Tick(); });
}

PollResponder::PollResponder(SourceDb* db, Scheduler* scheduler,
                             Channel<SourceToMediatorMsg>* out,
                             Announcer* announcer, Time q_proc_delay)
    : db_(db),
      scheduler_(scheduler),
      out_(out),
      announcer_(announcer),
      q_proc_delay_(q_proc_delay) {}

void PollResponder::OnRequest(PollRequest request) {
  scheduler_->After(q_proc_delay_, [this, req = std::move(request)]() {
    PollAnswer answer;
    answer.id = req.id;
    answer.source = db_->name();
    answer.answered_at = scheduler_->Now();
    answer.results.reserve(req.polls.size());
    for (const PollSpec& poll : req.polls) {
      auto result = db_->Query(poll.relation, poll.attrs, poll.cond);
      if (!result.ok()) {
        SQ_LOG(kError) << "poll of " << db_->name() << "." << poll.relation
                       << " failed: " << result.status().ToString();
        answer.results.emplace_back();  // empty marker; mediator validates
        continue;
      }
      answer.results.push_back(std::move(result).value());
    }
    ++answered_;
    // Flush pending updates BEFORE the answer so ECA sees everything the
    // source committed up to the answered_at state.
    if (announcer_ != nullptr) announcer_->FlushNow();
    out_->Send(SourceToMediatorMsg(std::move(answer)));
  });
}

}  // namespace squirrel
