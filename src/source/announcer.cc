#include "source/announcer.h"

#include "common/logging.h"
#include "mediator/durability/serialize.h"

namespace squirrel {

Announcer::Announcer(SourceDb* db, Scheduler* scheduler,
                     Channel<SourceToMediatorMsg>* channel, Time period,
                     FaultInjector* faults)
    : db_(db),
      scheduler_(scheduler),
      channel_(channel),
      period_(period),
      faults_(faults) {
  db_->AddCommitListener(
      [this](Time now, const MultiDelta& delta) { OnCommit(now, delta); });
  db_->AddRestartListener([this](Time now) { OnRestart(now); });
}

void Announcer::Start() {
  if (started_ || period_ <= 0) return;
  started_ = true;
  scheduler_->After(period_, [this]() { Tick(); });
}

void Announcer::OnCommit(Time now, const MultiDelta& delta) {
  (void)now;
  Status st = pending_.SmashInPlace(delta);
  if (!st.ok()) {
    SQ_LOG(kError) << "announcer smash failed: " << st.ToString();
    return;
  }
  if (period_ <= 0) FlushNow();
}

void Announcer::FlushNow() {
  if (pending_.Empty()) return;
  if (faults_ != nullptr &&
      (faults_->Crashed(db_->name(), scheduler_->Now()) ||
       faults_->MediatorCrashed(scheduler_->Now()))) {
    // Source or mediator is down: hold the batch and re-probe until the
    // crash window ends. Smashing keeps later commits folded into the held
    // net change; the restored dedup state at the mediator suppresses any
    // copy the ARQ layer delivers twice around the window.
    if (!crash_probe_pending_) {
      crash_probe_pending_ = true;
      scheduler_->After(faults_->plan().crash_probe_period, [this]() {
        crash_probe_pending_ = false;
        FlushNow();
      });
    }
    return;
  }
  UpdateMessage msg;
  msg.source = db_->name();
  msg.send_time = scheduler_->Now();
  msg.seq = ++seq_;
  msg.epoch = db_->epoch();
  msg.delta = std::move(pending_);
  pending_ = MultiDelta();
  msg.checksum = ChecksumUpdateMessage(msg);
  channel_->Send(SourceToMediatorMsg(std::move(msg)));
}

void Announcer::OnRestart(Time now) {
  (void)now;
  ++restarts_;
  // Volatile session state is gone: the batch the old incarnation never
  // shipped is lost (only resync can recover those commits) and sequence
  // numbering starts over under the new epoch.
  pending_ = MultiDelta();
  seq_ = 0;
  // Announce the new incarnation immediately with an empty "hello" message
  // so the mediator detects the epoch bump even if the source never commits
  // again. An ARQ hook defers the delivery past any mediator crash window.
  UpdateMessage hello;
  hello.source = db_->name();
  hello.send_time = scheduler_->Now();
  hello.seq = ++seq_;
  hello.epoch = db_->epoch();
  hello.checksum = ChecksumUpdateMessage(hello);
  channel_->Send(SourceToMediatorMsg(std::move(hello)));
}

void Announcer::Tick() {
  FlushNow();
  scheduler_->After(period_, [this]() { Tick(); });
}

PollResponder::PollResponder(SourceDb* db, Scheduler* scheduler,
                             Channel<SourceToMediatorMsg>* out,
                             Announcer* announcer, Time q_proc_delay,
                             FaultInjector* faults)
    : db_(db),
      scheduler_(scheduler),
      out_(out),
      announcer_(announcer),
      q_proc_delay_(q_proc_delay),
      faults_(faults) {}

void PollResponder::OnRequest(PollRequest request) {
  if (faults_ != nullptr && faults_->Crashed(db_->name(), scheduler_->Now())) {
    ++dropped_;  // the request reached a crashed source and is lost
    return;
  }
  if (request.deadline > 0 && scheduler_->Now() >= request.deadline) {
    // The querying tier's remaining budget is already spent: evaluating the
    // polls (and flushing the announcer) would produce an answer nobody can
    // use. Reject immediately with a retry-after hint instead — this is the
    // cross-tier half of deadline propagation.
    ++deadline_rejects_;
    PollAnswer reject;
    reject.id = request.id;
    reject.source = db_->name();
    reject.answered_at = scheduler_->Now();
    reject.epoch = db_->epoch();
    reject.retry_after = scheduler_->Now() + q_proc_delay_;
    out_->Send(SourceToMediatorMsg(std::move(reject)));
    return;
  }
  Time extra =
      faults_ != nullptr ? faults_->SlowPollExtra(scheduler_->Now()) : 0.0;
  scheduler_->After(q_proc_delay_ + extra, [this, req = std::move(request)]() {
    if (faults_ != nullptr &&
        faults_->Crashed(db_->name(), scheduler_->Now())) {
      ++dropped_;  // crashed while processing: the answer never leaves
      return;
    }
    PollAnswer answer;
    answer.id = req.id;
    answer.source = db_->name();
    answer.answered_at = scheduler_->Now();
    answer.epoch = db_->epoch();
    answer.results.reserve(req.polls.size());
    for (const PollSpec& poll : req.polls) {
      auto result = db_->Query(poll.relation, poll.attrs, poll.cond);
      if (!result.ok()) {
        SQ_LOG(kError) << "poll of " << db_->name() << "." << poll.relation
                       << " failed: " << result.status().ToString();
        answer.results.emplace_back();  // empty marker; mediator validates
        continue;
      }
      answer.results.push_back(std::move(result).value());
    }
    ++answered_;
    // Flush pending updates BEFORE the answer so ECA sees everything the
    // source committed up to the answered_at state.
    if (announcer_ != nullptr) announcer_->FlushNow();
    out_->Send(SourceToMediatorMsg(std::move(answer)));
  });
}

void PollResponder::OnSnapshotRequest(SnapshotRequest request) {
  if (faults_ != nullptr && faults_->Crashed(db_->name(), scheduler_->Now())) {
    ++dropped_;  // the request reached a crashed source and is lost
    return;
  }
  Time extra =
      faults_ != nullptr ? faults_->SlowPollExtra(scheduler_->Now()) : 0.0;
  scheduler_->After(q_proc_delay_ + extra, [this, req = std::move(request)]() {
    if (faults_ != nullptr &&
        faults_->Crashed(db_->name(), scheduler_->Now())) {
      ++dropped_;  // crashed while processing: the answer never leaves
      return;
    }
    // Flush BEFORE reading the state so every previously committed delta is
    // either already on the channel ahead of the snapshot (FIFO) or folded
    // into the snapshot itself; announce_seq is then a safe dedup floor.
    if (announcer_ != nullptr) announcer_->FlushNow();
    SnapshotAnswer answer;
    answer.id = req.id;
    answer.source = db_->name();
    answer.answered_at = scheduler_->Now();
    answer.epoch = db_->epoch();
    answer.announce_seq =
        announcer_ != nullptr ? announcer_->AnnouncementCount() : 0;
    for (const std::string& rel_name : req.relations) {
      auto rel = db_->Current(rel_name);
      if (!rel.ok()) {
        SQ_LOG(kError) << "snapshot of " << db_->name() << "." << rel_name
                       << " failed: " << rel.status().ToString();
        continue;  // mediator re-requests on timeout
      }
      answer.relations.emplace(rel_name, *rel.value());
    }
    answer.checksum = ChecksumSnapshotAnswer(answer);
    if (faults_ != nullptr &&
        faults_->CorruptSnapshotPayload(scheduler_->Now())) {
      // Injected payload corruption, modeled as a perturbed checksum: the
      // mediator's verification MUST catch it and re-request rather than
      // apply a poisoned snapshot.
      answer.checksum ^= 0x1u;
    }
    ++answered_;
    ++snapshots_answered_;
    out_->Send(SourceToMediatorMsg(std::move(answer)));
  });
}

void PollResponder::OnMessage(MediatorToSourceMsg msg) {
  if (std::holds_alternative<PollRequest>(msg)) {
    OnRequest(std::move(std::get<PollRequest>(msg)));
  } else {
    OnSnapshotRequest(std::move(std::get<SnapshotRequest>(msg)));
  }
}

void ScheduleSourceRestarts(SourceDb* db, Scheduler* scheduler,
                            FaultInjector* faults) {
  if (faults == nullptr) return;
  for (const CrashWindow& w : faults->RestartWindows(db->name())) {
    Time delay = w.end - scheduler->Now();
    if (delay < 0) continue;
    scheduler->After(delay, [db, scheduler]() {
      db->Restart(scheduler->Now());
    });
  }
}

}  // namespace squirrel
