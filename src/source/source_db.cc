#include "source/source_db.h"

#include <limits>

#include "relational/operators.h"

namespace squirrel {

Status SourceDb::AddRelation(const std::string& rel_name, Schema schema) {
  SQ_RETURN_IF_ERROR(schema.Validate());
  if (relations_.count(rel_name)) {
    return Status::AlreadyExists("relation already declared: " + rel_name);
  }
  relations_.emplace(rel_name, Relation(std::move(schema), Semantics::kSet));
  return Status::OK();
}

std::vector<std::string> SourceDb::RelationNames() const {
  std::vector<std::string> out;
  out.reserve(relations_.size());
  for (const auto& [name, rel] : relations_) {
    (void)rel;
    out.push_back(name);
  }
  return out;
}

Result<Schema> SourceDb::RelationSchema(const std::string& rel_name) const {
  auto it = relations_.find(rel_name);
  if (it == relations_.end()) {
    return Status::NotFound("no relation " + rel_name + " in source " + name_);
  }
  return it->second.schema();
}

Status SourceDb::Commit(Time now, const MultiDelta& delta) {
  if (!log_.empty() && now < log_.back().time) {
    return Status::FailedPrecondition(
        "commit time " + std::to_string(now) + " precedes last commit at " +
        std::to_string(log_.back().time));
  }
  // Validate every touched relation exists and apply strictly.
  for (const auto& rel_name : delta.RelationNames()) {
    if (!relations_.count(rel_name)) {
      return Status::NotFound("commit touches unknown relation: " + rel_name);
    }
  }
  for (const auto& rel_name : delta.RelationNames()) {
    const Delta* d = delta.Find(rel_name);
    SQ_RETURN_IF_ERROR(ApplyDelta(&relations_.at(rel_name), *d));
  }
  log_.push_back({now, delta});
  for (const auto& fn : commit_listeners_) fn(now, delta);
  return Status::OK();
}

Status SourceDb::InsertTuple(Time now, const std::string& rel_name,
                             const Tuple& t) {
  auto it = relations_.find(rel_name);
  if (it == relations_.end()) {
    return Status::NotFound("no relation " + rel_name);
  }
  MultiDelta md;
  SQ_RETURN_IF_ERROR(
      md.Mutable(rel_name, it->second.schema())->AddInsert(t));
  return Commit(now, md);
}

Status SourceDb::DeleteTuple(Time now, const std::string& rel_name,
                             const Tuple& t) {
  auto it = relations_.find(rel_name);
  if (it == relations_.end()) {
    return Status::NotFound("no relation " + rel_name);
  }
  MultiDelta md;
  SQ_RETURN_IF_ERROR(
      md.Mutable(rel_name, it->second.schema())->AddDelete(t));
  return Commit(now, md);
}

Result<const Relation*> SourceDb::Current(const std::string& rel_name) const {
  auto it = relations_.find(rel_name);
  if (it == relations_.end()) {
    return Status::NotFound("no relation " + rel_name + " in source " + name_);
  }
  return &it->second;
}

Result<Relation> SourceDb::StateAt(const std::string& rel_name,
                                   Time t) const {
  auto it = relations_.find(rel_name);
  if (it == relations_.end()) {
    return Status::NotFound("no relation " + rel_name + " in source " + name_);
  }
  Relation state(it->second.schema(), Semantics::kSet);
  for (const auto& entry : log_) {
    if (entry.time > t) break;
    const Delta* d = entry.delta.Find(rel_name);
    if (d != nullptr) {
      SQ_RETURN_IF_ERROR(ApplyDelta(&state, *d));
    }
  }
  return state;
}

Result<Relation> SourceDb::Query(const std::string& rel_name,
                                 const std::vector<std::string>& attrs,
                                 const Expr::Ptr& cond) const {
  SQ_ASSIGN_OR_RETURN(const Relation* rel, Current(rel_name));
  SQ_ASSIGN_OR_RETURN(Relation selected, OpSelect(*rel, cond));
  return OpProject(selected, attrs, Semantics::kBag);
}

void SourceDb::Restart(Time now) {
  ++epoch_;
  for (const auto& fn : restart_listeners_) fn(now);
}

std::vector<Time> SourceDb::CommitTimes() const {
  std::vector<Time> out;
  out.reserve(log_.size());
  for (const auto& entry : log_) out.push_back(entry.time);
  return out;
}

Time SourceDb::LastCommitTime() const {
  return log_.empty() ? -std::numeric_limits<Time>::infinity()
                      : log_.back().time;
}

}  // namespace squirrel
