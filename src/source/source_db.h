// Autonomous source databases (simulated substrate).
//
// The paper's sources are remote, autonomous DBMSs. This substrate provides
// exactly the capabilities the algorithms rely on — local transactions,
// answering select/project queries against a single state, and (for active
// sources) exposing net-change deltas to an announcer — plus one capability
// real deployments lack that the correctness checkers need: full state
// history, so state(DB_i, t) of paper §3 is reconstructible for any t.

#ifndef SQUIRREL_SOURCE_SOURCE_DB_H_
#define SQUIRREL_SOURCE_SOURCE_DB_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "delta/delta.h"
#include "relational/expr.h"
#include "relational/relation.h"
#include "sim/clock.h"

namespace squirrel {

/// \brief One autonomous source database: named set-relations, transactional
/// commits stamped with virtual time, and a commit log for history replay.
class SourceDb {
 public:
  /// Creates an empty database called \p name.
  explicit SourceDb(std::string name) : name_(std::move(name)) {}

  /// The database name (unique within an integration environment).
  const std::string& name() const { return name_; }

  /// Declares a relation. Source relations are sets (real DBMS tables).
  Status AddRelation(const std::string& rel_name, Schema schema);

  /// Names of declared relations (sorted).
  std::vector<std::string> RelationNames() const;

  /// Schema of a declared relation.
  Result<Schema> RelationSchema(const std::string& rel_name) const;

  /// Commits \p delta as one transaction at time \p now. Commit times must
  /// be non-decreasing. The delta must be non-redundant (strict apply).
  Status Commit(Time now, const MultiDelta& delta);

  /// Convenience single-tuple insert committed at \p now.
  Status InsertTuple(Time now, const std::string& rel_name, const Tuple& t);
  /// Convenience single-tuple delete committed at \p now.
  Status DeleteTuple(Time now, const std::string& rel_name, const Tuple& t);

  /// Current contents of a relation.
  Result<const Relation*> Current(const std::string& rel_name) const;

  /// Reconstructs the contents of \p rel_name as of time \p t (commits with
  /// time <= t applied). Used by the consistency/freshness checkers.
  Result<Relation> StateAt(const std::string& rel_name, Time t) const;

  /// Evaluates π_attrs σ_cond(rel) against the *current* state (bag result,
  /// as projections may merge tuples). This is the query interface the
  /// mediator's VAP polls.
  Result<Relation> Query(const std::string& rel_name,
                         const std::vector<std::string>& attrs,
                         const Expr::Ptr& cond) const;

  /// Adds a listener invoked after every successful commit (the announcer
  /// of an active source). Sharded topologies attach several announcers to
  /// one db — each consuming mediator installs its own — so listeners
  /// accumulate; they fire in installation order.
  void AddCommitListener(std::function<void(Time, const MultiDelta&)> fn) {
    commit_listeners_.push_back(std::move(fn));
  }

  /// Current incarnation number. Starts at 1 and bumps on every Restart().
  /// Stamped into every UpdateMessage/PollAnswer/SnapshotAnswer so the
  /// mediator can detect that a source came back with reset session state.
  uint64_t epoch() const { return epoch_; }

  /// Simulates the source process coming back after a crash: durable state
  /// (relations, commit log) survives, the incarnation number bumps, and the
  /// restart listener fires so volatile session state (the announcer's
  /// pending batch and sequence numbering) is wiped. Commits the old
  /// incarnation made but never announced are thereby lost to the mediator
  /// until anti-entropy resync pulls a snapshot.
  void Restart(Time now);

  /// Adds a listener invoked by Restart() after the epoch bump (the
  /// announcer of an active source). Listeners fire in installation order.
  void AddRestartListener(std::function<void(Time)> fn) {
    restart_listeners_.push_back(std::move(fn));
  }

  /// Number of committed transactions.
  uint64_t CommitCount() const { return log_.size(); }
  /// Commit times of every transaction, in order.
  std::vector<Time> CommitTimes() const;
  /// Time of the last commit (-inf if none).
  Time LastCommitTime() const;

 private:
  struct LogEntry {
    Time time;
    MultiDelta delta;
  };

  std::string name_;
  std::map<std::string, Relation> relations_;
  std::vector<LogEntry> log_;
  std::vector<std::function<void(Time, const MultiDelta&)>> commit_listeners_;
  std::vector<std::function<void(Time)>> restart_listeners_;
  uint64_t epoch_ = 1;
};

}  // namespace squirrel

#endif  // SQUIRREL_SOURCE_SOURCE_DB_H_
