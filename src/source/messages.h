// Message types exchanged between source databases and a mediator.
//
// Both incremental updates and poll answers from one source travel on a
// single FIFO channel (paper §4's in-order assumption; [ZGHW95]'s model).
// This ordering is what makes Eager-Compensation correct: by the time a poll
// answer arrives, every update the source committed before answering has
// already been enqueued at the mediator.

#ifndef SQUIRREL_SOURCE_MESSAGES_H_
#define SQUIRREL_SOURCE_MESSAGES_H_

#include <cstdint>
#include <map>
#include <string>
#include <variant>
#include <vector>

#include "common/query_class.h"
#include "delta/delta.h"
#include "relational/expr.h"
#include "relational/relation.h"
#include "sim/clock.h"

namespace squirrel {

/// One batched net-change announcement: "every source database sends all the
/// updates that reflect the difference between two database states in a
/// single undividable message" (paper §4).
struct UpdateMessage {
  std::string source;  ///< announcing source database
  Time send_time = 0;  ///< when the announcement left the source
  uint64_t seq = 0;    ///< per-source sequence number (restarts at 0 when the
                       ///< source's epoch bumps)
  uint64_t epoch = 1;  ///< source incarnation; bumps on crash/restart
  MultiDelta delta;    ///< net changes since the previous announcement
  /// CRC32C of the message's canonical encoding (ChecksumUpdateMessage),
  /// verified at receipt. 0 = unchecksummed (legacy senders / hand-built
  /// test messages); verification is skipped then.
  uint32_t checksum = 0;
};

/// One select/project poll of a single source relation: π_attrs σ_cond(rel).
struct PollSpec {
  std::string relation;
  std::vector<std::string> attrs;
  Expr::Ptr cond;  ///< null means true
};

/// A poll transaction: all polls of one source executed against one state
/// (paper §6.3: "packages all pollings of DB_k into a single transaction").
struct PollRequest {
  uint64_t id = 0;
  std::vector<PollSpec> polls;
  // ---- overload protection (DESIGN.md §15) ----
  /// Absolute deadline forwarded from the querying tier (remaining budget
  /// minus the parent's margin); 0 = none. A responder that receives the
  /// request at or past the deadline answers immediately with an empty
  /// rejection (retry_after set) instead of evaluating the polls.
  Time deadline = 0;
  /// Service class of the query this poll serves (kInteractive for updates
  /// and maintenance-originated polls).
  QueryClass qclass = QueryClass::kInteractive;
};

/// Answers to a PollRequest; all results reflect the same source state.
struct PollAnswer {
  uint64_t id = 0;
  std::string source;
  Time answered_at = 0;  ///< source-side time the state was read
  uint64_t epoch = 1;    ///< source incarnation the state belongs to
  std::vector<Relation> results;  ///< aligned with PollRequest::polls
  /// Non-zero marks a deadline/overload rejection: the responder did not
  /// evaluate the polls and suggests retrying at this absolute time.
  /// `results` is empty then.
  Time retry_after = 0;
};

/// Anti-entropy pull: the mediator asks a restarted source for the full
/// extent of the listed relations so it can diff away any deltas the old
/// incarnation committed but never announced (see mediator/resync.h).
struct SnapshotRequest {
  uint64_t id = 0;
  std::vector<std::string> relations;
};

/// Full-state reply to a SnapshotRequest. Because the answer travels on the
/// same FIFO channel as announcements and the source flushes its announcer
/// before answering, the snapshot covers every update message sent before
/// it; `announce_seq` is the announcer's sequence high-water at that
/// instant, which becomes the mediator's dedup floor after resync.
struct SnapshotAnswer {
  uint64_t id = 0;
  std::string source;
  Time answered_at = 0;      ///< source-side time the state was read
  uint64_t epoch = 1;        ///< incarnation the snapshot belongs to
  uint64_t announce_seq = 0; ///< announcer seq high-water when answering
  std::map<std::string, Relation> relations;  ///< full extents by name
  /// CRC32C of the answer's canonical encoding (ChecksumSnapshotAnswer). A
  /// mismatch at the mediator triggers a snapshot re-request instead of
  /// poisoning the believed-state mirror. 0 = unchecksummed.
  uint32_t checksum = 0;
};

/// What flows source -> mediator on the shared FIFO channel.
using SourceToMediatorMsg =
    std::variant<UpdateMessage, PollAnswer, SnapshotAnswer>;

/// What flows mediator -> source on the shared FIFO channel.
using MediatorToSourceMsg = std::variant<PollRequest, SnapshotRequest>;

}  // namespace squirrel

#endif  // SQUIRREL_SOURCE_MESSAGES_H_
