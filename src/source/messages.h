// Message types exchanged between source databases and a mediator.
//
// Both incremental updates and poll answers from one source travel on a
// single FIFO channel (paper §4's in-order assumption; [ZGHW95]'s model).
// This ordering is what makes Eager-Compensation correct: by the time a poll
// answer arrives, every update the source committed before answering has
// already been enqueued at the mediator.

#ifndef SQUIRREL_SOURCE_MESSAGES_H_
#define SQUIRREL_SOURCE_MESSAGES_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "delta/delta.h"
#include "relational/expr.h"
#include "relational/relation.h"
#include "sim/clock.h"

namespace squirrel {

/// One batched net-change announcement: "every source database sends all the
/// updates that reflect the difference between two database states in a
/// single undividable message" (paper §4).
struct UpdateMessage {
  std::string source;  ///< announcing source database
  Time send_time = 0;  ///< when the announcement left the source
  uint64_t seq = 0;    ///< per-source sequence number
  MultiDelta delta;    ///< net changes since the previous announcement
};

/// One select/project poll of a single source relation: π_attrs σ_cond(rel).
struct PollSpec {
  std::string relation;
  std::vector<std::string> attrs;
  Expr::Ptr cond;  ///< null means true
};

/// A poll transaction: all polls of one source executed against one state
/// (paper §6.3: "packages all pollings of DB_k into a single transaction").
struct PollRequest {
  uint64_t id = 0;
  std::vector<PollSpec> polls;
};

/// Answers to a PollRequest; all results reflect the same source state.
struct PollAnswer {
  uint64_t id = 0;
  std::string source;
  Time answered_at = 0;  ///< source-side time the state was read
  std::vector<Relation> results;  ///< aligned with PollRequest::polls
};

/// What flows source -> mediator on the shared FIFO channel.
using SourceToMediatorMsg = std::variant<UpdateMessage, PollAnswer>;

}  // namespace squirrel

#endif  // SQUIRREL_SOURCE_MESSAGES_H_
