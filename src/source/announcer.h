// Active-source machinery: update announcers and the poll responder.
//
// Announcer gives a source database the "active" capability paper §4
// requires of materialized- and hybrid-contributors: it batches committed
// deltas and ships them as single net-change messages, either immediately
// (period 0) or periodically (the paper's ann_delay policy knob).
//
// PollResponder answers VAP polls after a simulated processing delay; for
// hybrid contributors it flushes the announcer *before* answering on the
// same FIFO channel, which is the ordering Eager Compensation relies on.
//
// Both cooperate with an optional FaultInjector: a crashed source answers
// no polls (requests received or in flight during the window are lost) and
// holds announcements until recovery; slow-poll faults stretch response
// processing. The flush-before-answer ordering is preserved across all of
// it, so Eager Compensation stays correct under faults.

#ifndef SQUIRREL_SOURCE_ANNOUNCER_H_
#define SQUIRREL_SOURCE_ANNOUNCER_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "sim/fault.h"
#include "sim/network.h"
#include "sim/scheduler.h"
#include "source/messages.h"
#include "source/source_db.h"

namespace squirrel {

/// \brief Batches a source's committed deltas into UpdateMessages.
class Announcer {
 public:
  /// \param db the source to announce for (installs its commit listener)
  /// \param scheduler event loop (not owned)
  /// \param channel FIFO link to the mediator (not owned)
  /// \param period announcement period; 0 announces on every commit
  /// \param faults optional fault injector (not owned; nullptr = no faults)
  Announcer(SourceDb* db, Scheduler* scheduler,
            Channel<SourceToMediatorMsg>* channel, Time period,
            FaultInjector* faults = nullptr);

  /// Begins periodic announcements (no-op for period 0, which is push-based).
  void Start();

  /// Sends any pending delta immediately (used before answering polls and by
  /// tests). No message is sent if nothing is pending; if the source is
  /// crashed the batch is held and re-probed until recovery.
  void FlushNow();

  /// Announcement period.
  Time period() const { return period_; }
  /// Sequence-number high water of the CURRENT incarnation (resets to 0
  /// when the source restarts).
  uint64_t AnnouncementCount() const { return seq_; }
  /// True iff commits since the last announcement are waiting.
  bool HasPending() const { return !pending_.Empty(); }
  /// Restarts observed (volatile state wiped + hello announcements sent).
  uint64_t RestartCount() const { return restarts_; }

 private:
  void OnCommit(Time now, const MultiDelta& delta);
  void OnRestart(Time now);
  void Tick();

  SourceDb* db_;
  Scheduler* scheduler_;
  Channel<SourceToMediatorMsg>* channel_;
  Time period_;
  FaultInjector* faults_;
  MultiDelta pending_;
  uint64_t seq_ = 0;
  uint64_t restarts_ = 0;
  bool started_ = false;
  bool crash_probe_pending_ = false;
};

/// \brief Answers PollRequests against a source's current state.
class PollResponder {
 public:
  /// \param db the source answering polls (not owned)
  /// \param scheduler event loop (not owned)
  /// \param out FIFO link to the mediator — the SAME channel the announcer
  ///        uses, so answers serialize after flushed updates (not owned)
  /// \param announcer flushed before answering (nullptr for pure
  ///        virtual-contributors, which have no announcer)
  /// \param q_proc_delay simulated per-request processing time
  /// \param faults optional fault injector (not owned; nullptr = no faults)
  PollResponder(SourceDb* db, Scheduler* scheduler,
                Channel<SourceToMediatorMsg>* out, Announcer* announcer,
                Time q_proc_delay, FaultInjector* faults = nullptr);

  /// Handles an incoming request: after q_proc_delay (plus any slow-poll
  /// fault), evaluates every poll against one state, flushes the announcer,
  /// then sends the answer. Requests hitting a crashed source are lost.
  /// A request received at or past its deadline is rejected immediately
  /// with an empty answer carrying retry_after (no evaluation, no flush).
  void OnRequest(PollRequest request);

  /// Handles an anti-entropy snapshot pull: after the same processing delay
  /// as a poll, flushes the announcer and then sends the full extents of the
  /// requested relations. The flush-before-answer ordering on the shared
  /// FIFO channel guarantees the snapshot covers every update message sent
  /// before it, so `announce_seq` is a safe dedup floor for the mediator.
  void OnSnapshotRequest(SnapshotRequest request);

  /// Dispatches a mediator->source message to the right handler.
  void OnMessage(MediatorToSourceMsg msg);

  /// Requests answered so far (polls and snapshots).
  uint64_t AnsweredCount() const { return answered_; }
  /// Requests lost to crash windows.
  uint64_t DroppedCount() const { return dropped_; }
  /// Snapshot requests answered so far.
  uint64_t SnapshotsAnswered() const { return snapshots_answered_; }
  /// Requests refused because they arrived at or past their deadline.
  uint64_t DeadlineRejects() const { return deadline_rejects_; }
  /// Simulated per-request processing time.
  Time q_proc_delay() const { return q_proc_delay_; }

 private:
  SourceDb* db_;
  Scheduler* scheduler_;
  Channel<SourceToMediatorMsg>* out_;
  Announcer* announcer_;
  Time q_proc_delay_;
  FaultInjector* faults_;
  uint64_t answered_ = 0;
  uint64_t dropped_ = 0;
  uint64_t snapshots_answered_ = 0;
  uint64_t deadline_rejects_ = 0;
};

/// Schedules SourceDb::Restart(end) for every restart window the fault plan
/// holds for \p db. Call once at simulation start (the mediator does this
/// when wiring a source with a fault injector). Safe for passive sources
/// too: the epoch bump then only shows up in poll answers.
void ScheduleSourceRestarts(SourceDb* db, Scheduler* scheduler,
                            FaultInjector* faults);

}  // namespace squirrel

#endif  // SQUIRREL_SOURCE_ANNOUNCER_H_
