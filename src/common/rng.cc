#include "common/rng.h"

#include <cassert>
#include <cmath>

namespace squirrel {

uint64_t Rng::Next() {
  // SplitMix64 step.
  state_ += 0x9E3779B97F4A7C15ULL;
  uint64_t z = state_;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rng::Uniform(uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling to avoid modulo bias.
  uint64_t threshold = -bound % bound;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(Next());  // full 64-bit range
  return lo + static_cast<int64_t>(Uniform(span));
}

double Rng::UniformDouble() {
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

double Rng::Exponential(double rate) {
  assert(rate > 0.0);
  double u = UniformDouble();
  // Guard against log(0).
  if (u <= 0.0) u = 1e-300;
  return -std::log(u) / rate;
}

Rng Rng::Fork() { return Rng(Next() ^ 0xA5A5A5A5A5A5A5A5ULL); }

}  // namespace squirrel
