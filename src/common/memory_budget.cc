#include "common/memory_budget.h"

#include <string>

#include "common/cancel.h"

namespace squirrel {

namespace {
std::atomic<MemoryBudget*> g_budget{nullptr};
}  // namespace

void MemoryBudget::Charge(size_t bytes) {
  size_t now = used_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  size_t peak = peak_.load(std::memory_order_relaxed);
  while (now > peak &&
         !peak_.compare_exchange_weak(peak, now, std::memory_order_relaxed)) {
  }
  if (hard_limit_ != 0 && now > hard_limit_) {
    // Cooperative kill of the charging query. The token is thread-local, so
    // only work that registered itself as cancellable (queries) can die
    // here; the IUP and plain maintenance keep running — the budget bounds
    // query-side amplification, it does not abort update propagation.
    if (CancelToken* t = CurrentCancelToken(); t != nullptr && !t->cancelled()) {
      hard_cancels_.fetch_add(1, std::memory_order_relaxed);
      t->Cancel(Status::Overloaded(
          "memory budget exhausted: " + std::to_string(now) + " > hard limit " +
          std::to_string(hard_limit_)));
    }
  }
}

void MemoryBudget::Release(size_t bytes) {
  size_t cur = used_.load(std::memory_order_relaxed);
  for (;;) {
    size_t next = cur >= bytes ? cur - bytes : 0;
    if (used_.compare_exchange_weak(cur, next, std::memory_order_relaxed)) {
      return;
    }
  }
}

MemoryBudget* GlobalMemoryBudget() {
  return g_budget.load(std::memory_order_acquire);
}

ScopedMemoryBudget::ScopedMemoryBudget(MemoryBudget* budget)
    : prev_(g_budget.load(std::memory_order_acquire)) {
  g_budget.store(budget, std::memory_order_release);
}

ScopedMemoryBudget::~ScopedMemoryBudget() {
  g_budget.store(prev_, std::memory_order_release);
}

MemoryBudget* ChargeGlobalBudget(size_t bytes) {
  MemoryBudget* b = GlobalMemoryBudget();
  if (b != nullptr) b->Charge(bytes);
  return b;
}

void ReleaseGlobalBudget(MemoryBudget* budget, size_t bytes) {
  if (budget == nullptr || budget != GlobalMemoryBudget()) return;
  budget->Release(bytes);
}

}  // namespace squirrel
