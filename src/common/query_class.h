// Query service classes for admission control (DESIGN.md §15).
//
// Lives in common/ (not mediator/) because the class travels on the wire:
// a parent mediator forwards its query's class to child mediators inside
// PollRequests, so source/messages.h needs the type without depending on
// the mediator layer.

#ifndef SQUIRREL_COMMON_QUERY_CLASS_H_
#define SQUIRREL_COMMON_QUERY_CLASS_H_

#include <cstdint>

namespace squirrel {

/// Service class of a view query, used by the admission gate to apply
/// per-class concurrency limits and by the memory-budget soft limit to
/// shed batch work first.
enum class QueryClass : uint8_t {
  kInteractive = 0,  ///< latency-sensitive client queries (the default)
  kBatch = 1,        ///< throughput work; first to be shed under pressure
  kInternal = 2,     ///< internal maintenance (resync probes, health checks)
};

inline constexpr int kNumQueryClasses = 3;

/// Human-readable name, e.g. "interactive".
inline const char* QueryClassName(QueryClass c) {
  switch (c) {
    case QueryClass::kInteractive:
      return "interactive";
    case QueryClass::kBatch:
      return "batch";
    case QueryClass::kInternal:
      return "internal";
  }
  return "unknown";
}

}  // namespace squirrel

#endif  // SQUIRREL_COMMON_QUERY_CLASS_H_
