// A small fixed-size worker pool used by the parallel IUP kernel.
//
// The pool runs *batches*: one orchestrator thread calls RunAll() with a
// vector of tasks, the workers drain them, and RunAll() returns only after
// every task has finished. Between batches the workers are idle; nothing in
// the pool runs concurrently with the orchestrator outside a RunAll() call,
// which is what lets the IUP keep its serial merge/apply phases untouched.
//
// Contract: exactly one orchestrator thread may call RunAll() at a time
// (the mediator's commit path is already serialized, so this is free).
// With zero workers the pool degrades to inline execution on the caller's
// thread — the deterministic oracle mode.
//
// SetPerturbSeed() arms a seeded scheduling perturbation: before and after
// each task a worker may yield or sleep for a few microseconds, derived
// deterministically from (seed, batch, task index). This shakes out
// ordering assumptions in stress tests without changing any task's result.

#ifndef SQUIRREL_COMMON_THREAD_POOL_H_
#define SQUIRREL_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace squirrel {

class ThreadPool {
 public:
  /// Spawns `workers` threads. 0 => every RunAll() runs inline.
  explicit ThreadPool(int workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Runs every task and returns when all are done. Tasks may run in any
  /// order and on any worker; the caller must make them conflict-free.
  void RunAll(const std::vector<std::function<void()>>& tasks);

  int workers() const { return static_cast<int>(threads_.size()); }

  /// Arms (nonzero) or disarms (zero) the seeded scheduling perturbation.
  void SetPerturbSeed(uint64_t seed) {
    perturb_seed_.store(seed, std::memory_order_relaxed);
  }

 private:
  void WorkerLoop();
  void MaybePerturb(std::size_t task_index);

  std::mutex mu_;
  std::condition_variable work_cv_;   // workers wait for a batch
  std::condition_variable done_cv_;   // orchestrator waits for completion
  const std::vector<std::function<void()>>* tasks_ = nullptr;  // current batch
  std::size_t next_ = 0;   // next unclaimed task index
  std::size_t done_ = 0;   // finished tasks in the current batch
  uint64_t batch_id_ = 0;  // bumps per batch; feeds the perturbation hash
  bool shutdown_ = false;
  std::atomic<uint64_t> perturb_seed_{0};
  std::vector<std::thread> threads_;
};

}  // namespace squirrel

#endif  // SQUIRREL_COMMON_THREAD_POOL_H_
