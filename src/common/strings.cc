#include "common/strings.h"

#include <cctype>
#include <cstdint>

namespace squirrel {

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view StripWhitespace(std::string_view s) {
  size_t b = 0;
  while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  size_t e = s.size();
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

uint64_t HashBytes(const void* data, size_t n, uint64_t seed) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint64_t h = seed;
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}

uint64_t HashCombine(uint64_t a, uint64_t b) {
  return a ^ (b + 0x9E3779B97F4A7C15ULL + (a << 12) + (a >> 4));
}

}  // namespace squirrel
