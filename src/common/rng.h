// Deterministic pseudo-random number generation.
//
// All randomness in workload generators, benchmarks, and property tests flows
// through Rng so every run is reproducible from a seed. The generator is
// SplitMix64 (public-domain constants): tiny state, excellent statistical
// quality for simulation workloads, and trivially seedable.

#ifndef SQUIRREL_COMMON_RNG_H_
#define SQUIRREL_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace squirrel {

/// Deterministic 64-bit PRNG (SplitMix64).
class Rng {
 public:
  /// Constructs a generator from a seed; equal seeds yield equal streams.
  explicit Rng(uint64_t seed = 0x5EED5EEDULL) : state_(seed) {}

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound). \p bound must be > 0.
  uint64_t Uniform(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Bernoulli trial with success probability \p p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Exponentially distributed double with the given rate (mean 1/rate).
  /// Used for Poisson arrival processes in the simulator.
  double Exponential(double rate);

  /// Fisher-Yates shuffle of \p items.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    for (size_t i = items->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(Uniform(i));
      std::swap((*items)[i - 1], (*items)[j]);
    }
  }

  /// Derives an independent generator (for sub-streams).
  Rng Fork();

 private:
  uint64_t state_;
};

}  // namespace squirrel

#endif  // SQUIRREL_COMMON_RNG_H_
