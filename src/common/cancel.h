// Cooperative cancellation (DESIGN.md §15).
//
// A CancelToken is a shared flag + typed reason. The party that wants work
// abandoned (a deadline timer, the memory-budget hard limit, a caller) calls
// Cancel(reason); the working code checks the token at batch boundaries —
// between VAP build steps, between QP phases, and every kCancelCheckRows
// rows inside the columnar kernels — and propagates the typed reason as an
// ordinary error Status. Nothing is interrupted preemptively: a check site
// that is never reached simply finishes its (bounded) unit of work.
//
// Plumbing is thread-local rather than parameter-threading: the mediator
// installs the active query's token with ScopedCancelScope around execution,
// and deep callees (columnar kernels, the VAP assembly loop) consult
// CurrentCancelToken(). The IUP never installs a token, so update
// transactions can never be cancelled by the budget or a deadline — only
// queries are sheddable work.

#ifndef SQUIRREL_COMMON_CANCEL_H_
#define SQUIRREL_COMMON_CANCEL_H_

#include <atomic>
#include <cstddef>

#include "common/status.h"

namespace squirrel {

/// Row interval between cancellation checks inside tight kernel loops.
inline constexpr size_t kCancelCheckRows = 1024;

/// \brief Shared cancellation state for one query execution.
///
/// Cancel() may be called from any thread (the memory budget charges from
/// IUP worker threads in threaded builds); cancelled() is a relaxed atomic
/// read so kernel-loop checks stay cheap. The reason is written before the
/// flag is published (release/acquire), so a reader that observes
/// cancelled() == true sees the full reason.
class CancelToken {
 public:
  /// Requests cancellation with a typed \p reason (first call wins).
  void Cancel(Status reason) {
    bool expected = false;
    if (!armed_.compare_exchange_strong(expected, true,
                                        std::memory_order_acquire)) {
      return;  // already cancelled; keep the first reason
    }
    reason_ = std::move(reason);
    cancelled_.store(true, std::memory_order_release);
  }

  /// True iff Cancel() has completed.
  bool cancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }

  /// OK while live; the typed cancel reason once cancelled.
  Status status() const {
    return cancelled() ? reason_ : Status::OK();
  }

 private:
  std::atomic<bool> armed_{false};      // claimed by the winning Cancel()
  std::atomic<bool> cancelled_{false};  // published after reason_ is set
  Status reason_;
};

/// The token installed on this thread, or nullptr (nothing cancellable).
CancelToken* CurrentCancelToken();

/// OK when no token is installed or it is live; the token's typed reason
/// once it has been cancelled. The single check every batch boundary calls.
inline Status CheckCancel() {
  CancelToken* t = CurrentCancelToken();
  if (t == nullptr || !t->cancelled()) return Status::OK();
  return t->status();
}

/// RAII installation of \p token as this thread's current cancel scope;
/// restores the previous token on destruction (scopes nest).
class ScopedCancelScope {
 public:
  explicit ScopedCancelScope(CancelToken* token);
  ~ScopedCancelScope();
  ScopedCancelScope(const ScopedCancelScope&) = delete;
  ScopedCancelScope& operator=(const ScopedCancelScope&) = delete;

 private:
  CancelToken* prev_;
};

}  // namespace squirrel

#endif  // SQUIRREL_COMMON_CANCEL_H_
