#include "common/cancel.h"

namespace squirrel {

namespace {
thread_local CancelToken* t_current = nullptr;
}  // namespace

CancelToken* CurrentCancelToken() { return t_current; }

ScopedCancelScope::ScopedCancelScope(CancelToken* token) : prev_(t_current) {
  t_current = token;
}

ScopedCancelScope::~ScopedCancelScope() { t_current = prev_; }

}  // namespace squirrel
