#include "common/thread_pool.h"

#include <chrono>

namespace squirrel {
namespace {

// splitmix64 — a cheap, well-mixed hash for the perturbation decisions.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

ThreadPool::ThreadPool(int workers) {
  threads_.reserve(workers > 0 ? static_cast<std::size_t>(workers) : 0);
  for (int i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::MaybePerturb(std::size_t task_index) {
  const uint64_t seed = perturb_seed_.load(std::memory_order_relaxed);
  if (seed == 0) return;
  uint64_t h;
  {
    // batch_id_ is only written by the orchestrator between batches; reading
    // it under the lock keeps TSan (and the C++ memory model) satisfied.
    std::lock_guard<std::mutex> lock(mu_);
    h = Mix(seed ^ (batch_id_ * 0x9e3779b97f4a7c15ULL) ^ task_index);
  }
  switch (h % 3) {
    case 0:
      break;  // run immediately
    case 1:
      std::this_thread::yield();
      break;
    default:
      std::this_thread::sleep_for(std::chrono::microseconds(h % 50));
      break;
  }
}

void ThreadPool::RunAll(const std::vector<std::function<void()>>& tasks) {
  if (tasks.empty()) return;
  if (threads_.empty()) {
    for (const auto& task : tasks) task();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_ = &tasks;
    next_ = 0;
    done_ = 0;
    ++batch_id_;
  }
  work_cv_.notify_all();
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return done_ == tasks.size(); });
  tasks_ = nullptr;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::size_t index;
    const std::vector<std::function<void()>>* batch;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] {
        return shutdown_ || (tasks_ != nullptr && next_ < tasks_->size());
      });
      if (shutdown_) return;
      batch = tasks_;
      index = next_++;
    }
    MaybePerturb(index);
    (*batch)[index]();
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++done_;
      if (done_ == batch->size()) done_cv_.notify_one();
    }
  }
}

}  // namespace squirrel
