// Small string helpers shared across the library.

#ifndef SQUIRREL_COMMON_STRINGS_H_
#define SQUIRREL_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace squirrel {

/// Joins \p parts with \p sep, e.g. Join({"a","b"}, ", ") == "a, b".
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Splits \p s on the single character \p sep; keeps empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

/// Strips leading/trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view s);

/// True iff \p s begins with \p prefix.
bool StartsWith(std::string_view s, std::string_view prefix);

/// 64-bit FNV-1a hash of raw bytes; used for tuple hashing.
uint64_t HashBytes(const void* data, size_t n, uint64_t seed = 14695981039346656037ULL);

/// Combines two 64-bit hashes (boost::hash_combine style, 64-bit constants).
uint64_t HashCombine(uint64_t a, uint64_t b);

}  // namespace squirrel

#endif  // SQUIRREL_COMMON_STRINGS_H_
