// Minimal leveled logging used across the library. Logging is off by default
// (level kWarn) so benchmarks stay quiet; tests and examples may raise it.

#ifndef SQUIRREL_COMMON_LOGGING_H_
#define SQUIRREL_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace squirrel {

/// Severity levels, ordered.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the global minimum level that is actually emitted.
void SetLogLevel(LogLevel level);
/// Returns the global minimum emitted level.
LogLevel GetLogLevel();

namespace internal {

/// Emits one formatted log line to stderr. Used by the SQ_LOG macro.
void LogLine(LogLevel level, const char* file, int line, const std::string& msg);

/// Stream-style accumulator that emits on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogMessage() { LogLine(level_, file_, line_, stream_.str()); }
  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace squirrel

/// Stream-style logging: SQ_LOG(kInfo) << "x=" << x;
#define SQ_LOG(level)                                                   \
  if (::squirrel::LogLevel::level < ::squirrel::GetLogLevel()) {        \
  } else                                                                \
    ::squirrel::internal::LogMessage(::squirrel::LogLevel::level,       \
                                     __FILE__, __LINE__)                \
        .stream()

#endif  // SQUIRREL_COMMON_LOGGING_H_
