#include "common/status.h"

namespace squirrel {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kUnsupported:
      return "Unsupported";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kCorrupted:
      return "Corrupted";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kOverloaded:
      return "Overloaded";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += msg_;
  return out;
}

}  // namespace squirrel
