// Status / Result error-handling primitives for the Squirrel library.
//
// The public API never throws; operations that can fail return a Status or a
// Result<T>. The idiom follows widely used database codebases (RocksDB,
// Arrow): a small copyable status object carrying a code and a message.

#ifndef SQUIRREL_COMMON_STATUS_H_
#define SQUIRREL_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>
#include <variant>

namespace squirrel {

/// Error category for a failed operation.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   ///< malformed input (bad expression, schema mismatch)
  kNotFound,          ///< named relation/attribute/node does not exist
  kAlreadyExists,     ///< duplicate definition
  kFailedPrecondition,///< operation not valid in current state
  kUnsupported,       ///< feature outside the supported fragment
  kUnavailable,       ///< remote party unreachable; retrying may succeed
  kInternal,          ///< invariant violation inside the library
  kCorrupted,         ///< persistent state failed integrity verification
  kDeadlineExceeded,  ///< the caller's deadline passed before completion
  kOverloaded,        ///< admission/refusal under load; retry later
};

/// Human-readable name of a status code, e.g. "InvalidArgument".
const char* StatusCodeName(StatusCode code);

/// \brief Outcome of an operation that can fail but returns no value.
///
/// A Status is either OK or carries a StatusCode plus a message. Statuses are
/// cheap to copy and must be checked by the caller; helper macros
/// SQ_RETURN_IF_ERROR / SQ_ASSIGN_OR_RETURN keep call sites terse.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string msg)
      : code_(code), msg_(std::move(msg)) {}

  /// Returns the OK status.
  static Status OK() { return Status(); }
  /// Returns an InvalidArgument status with \p msg.
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  /// Returns a NotFound status with \p msg.
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  /// Returns an AlreadyExists status with \p msg.
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  /// Returns a FailedPrecondition status with \p msg.
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  /// Returns an Unsupported status with \p msg.
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }

  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  /// Returns an Internal status with \p msg.
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  /// Returns a Corrupted status with \p msg (unrecoverable integrity
  /// failure of persistent state — never retried, surfaced verbatim).
  static Status Corrupted(std::string msg) {
    return Status(StatusCode::kCorrupted, std::move(msg));
  }
  /// Returns a DeadlineExceeded status with \p msg (the query's deadline
  /// passed before an answer could be produced).
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  /// Returns an Overloaded status with \p msg (refused or cancelled under
  /// load — admission control or a memory budget; retrying later may work).
  static Status Overloaded(std::string msg) {
    return Status(StatusCode::kOverloaded, std::move(msg));
  }

  /// True iff the operation succeeded.
  bool ok() const { return code_ == StatusCode::kOk; }
  /// The status code.
  StatusCode code() const { return code_; }
  /// The error message (empty for OK).
  const std::string& message() const { return msg_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && msg_ == other.msg_;
  }

 private:
  StatusCode code_;
  std::string msg_;
};

/// \brief Either a value of type T or an error Status.
///
/// Result<T> is the value-returning companion of Status. Access to the value
/// of a non-OK result aborts in debug builds.
template <typename T>
class Result {
 public:
  /// Constructs an OK result holding \p value.
  Result(T value) : var_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  /// Constructs an error result from a non-OK \p status.
  Result(Status status) : var_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(var_).ok() && "Result built from OK status");
  }

  /// True iff a value is held.
  bool ok() const { return std::holds_alternative<T>(var_); }

  /// The status: OK when a value is held, the error otherwise.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(var_);
  }

  /// The held value; must only be called when ok().
  const T& value() const& {
    assert(ok());
    return std::get<T>(var_);
  }
  /// The held value (mutable); must only be called when ok().
  T& value() & {
    assert(ok());
    return std::get<T>(var_);
  }
  /// Moves the held value out; must only be called when ok().
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(var_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> var_;
};

/// Propagates a non-OK Status to the caller.
#define SQ_RETURN_IF_ERROR(expr)                  \
  do {                                            \
    ::squirrel::Status sq_st_ = (expr);           \
    if (!sq_st_.ok()) return sq_st_;              \
  } while (0)

#define SQ_CONCAT_IMPL_(a, b) a##b
#define SQ_CONCAT_(a, b) SQ_CONCAT_IMPL_(a, b)

/// Evaluates a Result-returning expression; on success binds the value to
/// `lhs`, on failure propagates the error status to the caller.
#define SQ_ASSIGN_OR_RETURN(lhs, expr)                              \
  SQ_ASSIGN_OR_RETURN_IMPL_(SQ_CONCAT_(sq_res_, __LINE__), lhs, expr)

#define SQ_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr)  \
  auto tmp = (expr);                               \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).value()

}  // namespace squirrel

#endif  // SQUIRREL_COMMON_STATUS_H_
