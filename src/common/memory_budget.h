// Process-wide memory budget accounting (DESIGN.md §15).
//
// A MemoryBudget is an accountant, not an allocator: the big transient and
// retained consumers — StringArena interning, PackedJoinTable build arrays,
// LocalStore snapshot copies, the UpdateQueue — Charge() what they hold and
// Release() it when they let go. Two limits drive policy:
//
//   soft limit: the mediator stops admitting kBatch queries while usage is
//     above it (queries_shed_soft_budget), letting retained state drain;
//   hard limit: a Charge() that lands above it cancels the cancel token
//     installed on the charging thread with a typed kOverloaded status — the
//     query whose allocation broke the budget dies with a clean error
//     instead of a silent OOM. The IUP never installs a token, so update
//     propagation is never the victim.
//
// Installation mirrors columnar::ScopedColumnarMode: a process-global slot,
// null by default (every charge site is a no-op then), set for the duration
// of a run by ScopedMemoryBudget. Counters are atomics so worker-pool
// threads can charge concurrently.

#ifndef SQUIRREL_COMMON_MEMORY_BUDGET_H_
#define SQUIRREL_COMMON_MEMORY_BUDGET_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace squirrel {

/// \brief Byte accountant with a soft (shed batch admission) and a hard
/// (cancel the charging query) limit. Limits of 0 mean unlimited.
class MemoryBudget {
 public:
  MemoryBudget(size_t soft_limit, size_t hard_limit)
      : soft_limit_(soft_limit), hard_limit_(hard_limit) {}

  /// Accounts \p bytes. When the new total exceeds the hard limit, cancels
  /// the calling thread's current cancel token (if any) with kOverloaded —
  /// cooperative, so the caller's next check site surfaces the error.
  void Charge(size_t bytes);

  /// Returns \p bytes to the budget (clamped at zero against accounting
  /// drift from chargers torn down after a budget swap).
  void Release(size_t bytes);

  /// True iff current usage exceeds the soft limit.
  bool SoftBreached() const {
    return soft_limit_ != 0 &&
           used_.load(std::memory_order_relaxed) > soft_limit_;
  }

  size_t used() const { return used_.load(std::memory_order_relaxed); }
  size_t peak() const { return peak_.load(std::memory_order_relaxed); }
  size_t soft_limit() const { return soft_limit_; }
  size_t hard_limit() const { return hard_limit_; }

  /// Number of hard-limit cancellations this budget issued.
  uint64_t hard_cancels() const {
    return hard_cancels_.load(std::memory_order_relaxed);
  }

 private:
  const size_t soft_limit_;
  const size_t hard_limit_;
  std::atomic<size_t> used_{0};
  std::atomic<size_t> peak_{0};
  std::atomic<uint64_t> hard_cancels_{0};
};

/// The installed process-global budget, or nullptr (accounting off).
MemoryBudget* GlobalMemoryBudget();

/// RAII installation of a budget as the process-global accountant; restores
/// the previous one on destruction.
class ScopedMemoryBudget {
 public:
  explicit ScopedMemoryBudget(MemoryBudget* budget);
  ~ScopedMemoryBudget();
  ScopedMemoryBudget(const ScopedMemoryBudget&) = delete;
  ScopedMemoryBudget& operator=(const ScopedMemoryBudget&) = delete;

 private:
  MemoryBudget* prev_;
};

/// Charges \p bytes against the global budget, if one is installed.
/// Returns the budget charged (so the holder can Release against the same
/// accountant later), or nullptr when accounting is off.
MemoryBudget* ChargeGlobalBudget(size_t bytes);

/// Releases \p bytes against \p budget, but only while it is still the
/// installed global accountant — a holder outliving the budget's scope must
/// not touch a dead or replaced accountant.
void ReleaseGlobalBudget(MemoryBudget* budget, size_t bytes);

}  // namespace squirrel

#endif  // SQUIRREL_COMMON_MEMORY_BUDGET_H_
