#include "sim/scheduler.h"

#include <algorithm>

namespace squirrel {

void Scheduler::At(Time t, std::function<void()> fn) {
  Event e;
  e.time = std::max(t, now_);
  e.seq = next_seq_++;
  e.fn = std::move(fn);
  queue_.push(std::move(e));
}

size_t Scheduler::Run(size_t max_events) {
  size_t n = 0;
  while (!queue_.empty() && n < max_events) {
    // Copy out (priority_queue::top is const; fn must be movable-out).
    Event e = queue_.top();
    queue_.pop();
    now_ = e.time;
    ++fired_;
    ++n;
    e.fn();
  }
  return n;
}

size_t Scheduler::RunUntil(Time t) {
  size_t n = 0;
  while (!queue_.empty() && queue_.top().time <= t) {
    Event e = queue_.top();
    queue_.pop();
    now_ = e.time;
    ++fired_;
    ++n;
    e.fn();
  }
  now_ = std::max(now_, t);
  return n;
}

}  // namespace squirrel
