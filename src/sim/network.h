// In-order message channels with configurable delay and fault injection.
//
// Paper §4 assumes "the messages transferred from one source database to the
// mediator must be in order". Channel enforces FIFO delivery even when the
// per-message delay would reorder (delivery time is clamped to be monotone).
// An optional fault hook (see sim/fault.h) can stretch, duplicate, or drop
// individual messages; because the FIFO clamp also applies to stretched and
// duplicate deliveries, a faulty channel still never reorders — it degrades
// to in-order at-least-once delivery, which is what the mediator's
// sequence-number suppression is built against.

#ifndef SQUIRREL_SIM_NETWORK_H_
#define SQUIRREL_SIM_NETWORK_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "sim/clock.h"
#include "sim/scheduler.h"

namespace squirrel {

/// Counters describing a channel's traffic (benchmarks and tests read these).
struct ChannelStats {
  uint64_t messages_sent = 0;          ///< accepted sends (>= 1 delivery each)
  uint64_t messages_dropped = 0;       ///< sends black-holed by the fault hook
  uint64_t duplicate_deliveries = 0;   ///< extra deliveries beyond the first
  Time total_delay = 0.0;              ///< summed send-to-delivery latency
};

/// \brief FIFO simulated link carrying messages of type M.
///
/// Each Send schedules delivery `delay` later, clamped so deliveries never
/// overtake earlier ones. Scheduled deliveries hold a weak alive-token, so a
/// channel destroyed before its last delivery simply stops delivering
/// instead of dangling.
template <typename M>
class Channel {
 public:
  /// Per-send fault decision: one extra-delay offset per delivery of the
  /// message (first entry = the real delivery, further entries = duplicate
  /// deliveries); an empty vector black-holes the message entirely. The
  /// channel passes its base one-way latency so the hook can reason about
  /// nominal delivery times (mediator-crash ARQ needs this).
  using FaultHook = std::function<std::vector<Time>(Time now, Time base_delay)>;

  /// \param scheduler event loop driving deliveries (not owned)
  /// \param delay one-way latency applied to every message
  Channel(Scheduler* scheduler, Time delay)
      : scheduler_(scheduler), delay_(delay) {}

  // Scheduled deliveries capture `this`; a moved-from channel would dangle.
  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  /// Installs the receiving endpoint. Must be set before the first delivery.
  void SetReceiver(std::function<void(M)> receiver) {
    receiver_ = std::move(receiver);
  }

  /// Installs a fault hook consulted on every Send (nullptr = ideal link).
  void SetFaultHook(FaultHook hook) { fault_ = std::move(hook); }

  /// Sends a message; each delivery lands at max(now + delay + extra, last
  /// delivery), so faults never break FIFO order.
  void Send(M message) {
    std::vector<Time> extras = {0.0};
    if (fault_) {
      extras = fault_(scheduler_->Now(), delay_);
      if (extras.empty()) {
        ++stats_.messages_dropped;
        return;
      }
    }
    ++stats_.messages_sent;
    stats_.duplicate_deliveries += extras.size() - 1;
    for (size_t i = 0; i + 1 < extras.size(); ++i) {
      ScheduleDelivery(extras[i], message);  // all but the last need a copy
    }
    ScheduleDelivery(extras.back(), std::move(message));
  }

  /// One-way latency of this channel.
  Time delay() const { return delay_; }
  /// Traffic counters.
  const ChannelStats& stats() const { return stats_; }

 private:
  void ScheduleDelivery(Time extra, M message) {
    Time deliver_at = scheduler_->Now() + delay_ + extra;
    if (deliver_at < last_delivery_) deliver_at = last_delivery_;
    last_delivery_ = deliver_at;
    stats_.total_delay += deliver_at - scheduler_->Now();
    auto* self = this;
    scheduler_->At(deliver_at,
                   [self, alive = std::weak_ptr<const bool>(alive_),
                    msg = std::move(message)]() mutable {
                     if (alive.expired()) return;  // channel was destroyed
                     self->receiver_(std::move(msg));
                   });
  }

  Scheduler* scheduler_;
  Time delay_;
  Time last_delivery_ = 0.0;
  std::function<void(M)> receiver_;
  FaultHook fault_;
  ChannelStats stats_;
  std::shared_ptr<const bool> alive_ = std::make_shared<const bool>(true);
};

}  // namespace squirrel

#endif  // SQUIRREL_SIM_NETWORK_H_
