// In-order message channels with configurable delay.
//
// Paper §4 assumes "the messages transferred from one source database to the
// mediator must be in order". Channel enforces FIFO delivery even when the
// per-message delay would reorder (delivery time is clamped to be monotone).

#ifndef SQUIRREL_SIM_NETWORK_H_
#define SQUIRREL_SIM_NETWORK_H_

#include <cstdint>
#include <functional>
#include <utility>

#include "sim/clock.h"
#include "sim/scheduler.h"

namespace squirrel {

/// Counters describing a channel's traffic (benchmarks read these).
struct ChannelStats {
  uint64_t messages_sent = 0;
  Time total_delay = 0.0;
};

/// \brief FIFO simulated link carrying messages of type M.
///
/// Each Send schedules delivery `delay` later, clamped so deliveries never
/// overtake earlier ones.
template <typename M>
class Channel {
 public:
  /// \param scheduler event loop driving deliveries (not owned)
  /// \param delay one-way latency applied to every message
  Channel(Scheduler* scheduler, Time delay)
      : scheduler_(scheduler), delay_(delay) {}

  /// Installs the receiving endpoint. Must be set before the first delivery.
  void SetReceiver(std::function<void(M)> receiver) {
    receiver_ = std::move(receiver);
  }

  /// Sends a message; it is delivered at max(now + delay, last delivery).
  void Send(M message) {
    Time deliver_at = scheduler_->Now() + delay_;
    if (deliver_at < last_delivery_) deliver_at = last_delivery_;
    last_delivery_ = deliver_at;
    stats_.messages_sent++;
    stats_.total_delay += deliver_at - scheduler_->Now();
    auto* self = this;
    scheduler_->At(deliver_at, [self, msg = std::move(message)]() mutable {
      self->receiver_(std::move(msg));
    });
  }

  /// One-way latency of this channel.
  Time delay() const { return delay_; }
  /// Traffic counters.
  const ChannelStats& stats() const { return stats_; }

 private:
  Scheduler* scheduler_;
  Time delay_;
  Time last_delivery_ = 0.0;
  std::function<void(M)> receiver_;
  ChannelStats stats_;
};

}  // namespace squirrel

#endif  // SQUIRREL_SIM_NETWORK_H_
