// Deterministic fault injection for the integration-environment simulator.
//
// The paper proves consistency and freshness under an idealized network:
// FIFO channels, no loss, no crashes (§4). A FaultPlan relaxes exactly the
// assumptions a production deployment cannot count on while preserving the
// two properties the algorithms genuinely require — per-channel FIFO order
// and at-least-once delivery of source announcements:
//
//  - per-transmission delay jitter;
//  - transmission loss with sender-side retransmit (modeled as the ARQ
//    outcome: the message arrives after k retransmit timeouts — never lost
//    for good on source->mediator links);
//  - duplicate deliveries (a retransmission whose acknowledgment was lost;
//    the mediator must suppress these by per-source sequence number);
//  - source crash/recover windows, during which the source answers no polls
//    and mediator->source messages are black-holed;
//  - slow poll responses (extra source-side processing time).
//
// All decisions are drawn from one seeded Rng in simulation-event order, so
// a (seed, workload) pair replays to a byte-identical trace.

#ifndef SQUIRREL_SIM_FAULT_H_
#define SQUIRREL_SIM_FAULT_H_

#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "sim/clock.h"

namespace squirrel {

/// A half-open interval [start, end) during which a source is down.
struct CrashWindow {
  Time start = 0;
  Time end = 0;
};

/// Knobs of one fault schedule. Defaults inject nothing.
struct FaultPlan {
  /// Extra per-transmission delay, uniform in [0, delay_jitter_max).
  Time delay_jitter_max = 0;
  /// Probability each transmission is lost (forcing a retransmit).
  double drop_prob = 0;
  /// Probability an acknowledged message is delivered a second time.
  double dup_prob = 0;
  /// Sender ARQ timeout added per lost transmission.
  Time retransmit_timeout = 0.5;
  /// Transmission-attempt cap; the last attempt always goes through, so
  /// source->mediator links provide at-least-once delivery.
  int max_transmissions = 8;
  /// Probability a poll response is served slowly.
  double slow_poll_prob = 0;
  /// Extra source-side processing time of a slow poll response.
  Time slow_poll_delay = 0;
  /// Probability a snapshot answer's payload is corrupted in transit
  /// (modeled as a perturbed checksum; the mediator's wire-integrity check
  /// must detect it and re-request — see integrity.h). Deterministic and
  /// convergent: corruption stops with the other randomized faults at
  /// active_until, so a re-requested snapshot eventually lands clean.
  double snapshot_corrupt_prob = 0;
  /// How often a holding announcer re-probes its crashed source.
  Time crash_probe_period = 1.0;
  /// Randomized faults (jitter/drop/dup/slow) stop at this time; crash
  /// windows end on their own schedule. Lets tests guarantee quiescence.
  Time active_until = std::numeric_limits<Time>::infinity();
  /// Crash/recover windows per source-database name.
  std::map<std::string, std::vector<CrashWindow>> crashes;
  /// Crash/RESTART windows per source-database name. Like `crashes` while
  /// open (no poll answers, mediator->source messages black-holed), but at
  /// each window's end the source comes back as a NEW INCARNATION: its
  /// epoch bumps, its announcer forgets the pending batch and resets its
  /// sequence numbering (see SourceDb::Restart). Committed-but-unannounced
  /// deltas are therefore lost and only the mediator's anti-entropy resync
  /// can recover them. Kept separate from `crashes` so sweeps draw restart
  /// schedules from a dedicated RNG stream without perturbing the existing
  /// channel/mediator fault draws of a given seed.
  std::map<std::string, std::vector<CrashWindow>> restarts;
  /// Crash/recover windows of the MEDIATOR. The simulation kills the
  /// mediator at each start and runs recovery at each end (see
  /// Mediator::Crash/Recover); the injector models the network side: a
  /// source->mediator transmission that would land inside a window is
  /// retransmitted by the sender ARQ until it lands after the window, so
  /// announcements keep their at-least-once guarantee across mediator
  /// downtime. Every injector of a simulation must share the same windows.
  std::vector<CrashWindow> mediator_crashes;
};

/// \brief Draws per-message fault decisions from a FaultPlan.
///
/// One injector serves a whole simulation (all channels of all sources);
/// decisions consume the seeded Rng in call order, which the deterministic
/// scheduler makes reproducible.
class FaultInjector {
 public:
  /// Which way a message is traveling.
  enum class Dir { kToMediator, kToSource };

  /// Counters for tests and debugging dumps.
  struct Counters {
    uint64_t transmissions_lost = 0;  ///< drops absorbed by retransmit
    uint64_t duplicates = 0;          ///< extra deliveries injected
    uint64_t blackholed = 0;          ///< messages to crashed sources
    uint64_t slow_polls = 0;          ///< poll responses served slowly
    uint64_t payloads_corrupted = 0;  ///< snapshot payloads corrupted in
                                      ///< transit (checksum perturbed)
    // ---- mediator crash/recovery ----
    uint64_t mediator_retransmits = 0;  ///< deliveries ARQ-pushed past a
                                        ///< crashed mediator's window
  };

  FaultInjector(FaultPlan plan, uint64_t seed)
      : plan_(std::move(plan)), rng_(seed * 0x9E3779B97F4A7C15ULL + 1) {}

  /// Decides the fate of one message sent at \p now on the link between the
  /// mediator and \p source, whose base one-way latency is \p base_delay.
  /// Returns one extra-delay offset per delivery (first = the real delivery,
  /// further entries = duplicates); empty means the message is black-holed
  /// (only for kToSource during a crash). Deliveries toward the mediator
  /// that would land inside a mediator crash window are pushed past its end
  /// (sender-side ARQ keeps retransmitting into the dead mediator).
  std::vector<Time> OnSend(Time now, Time base_delay, Dir dir,
                           const std::string& source);

  /// True iff \p source is inside one of its crash OR restart windows at
  /// \p t (restart windows behave identically while open).
  bool Crashed(const std::string& source, Time t) const;

  /// The planned restart windows of \p source (empty vector if none). The
  /// simulation calls SourceDb::Restart at each window's end.
  const std::vector<CrashWindow>& RestartWindows(
      const std::string& source) const;

  /// True iff the mediator is inside one of its crash windows at \p t.
  bool MediatorCrashed(Time t) const;

  /// Extra processing delay for a poll response decided at \p now.
  Time SlowPollExtra(Time now);

  /// True iff a snapshot answer sent at \p now should carry a corrupted
  /// payload (perturbed checksum). Consumes no randomness when the plan's
  /// snapshot_corrupt_prob is 0, so enabling the knob in one sweep does not
  /// perturb the fault schedules of plans that leave it off.
  bool CorruptSnapshotPayload(Time now);

  const FaultPlan& plan() const { return plan_; }
  const Counters& counters() const { return counters_; }

 private:
  /// True iff randomized faults are still active at \p now.
  bool Active(Time now) const { return now < plan_.active_until; }
  Time Jitter(Time now);
  /// Extra delay pushing a delivery at \p deliver_at past any mediator
  /// crash window it lands in (0 if it lands in none).
  Time MediatorArqExtra(Time deliver_at);

  FaultPlan plan_;
  Rng rng_;
  Counters counters_;
};

}  // namespace squirrel

#endif  // SQUIRREL_SIM_FAULT_H_
