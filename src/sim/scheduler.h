// Deterministic discrete-event scheduler.
//
// Events fire in (time, insertion-sequence) order, so simulations are fully
// reproducible. Event handlers may schedule further events (including at the
// current time, which run after all earlier-scheduled same-time events).

#ifndef SQUIRREL_SIM_SCHEDULER_H_
#define SQUIRREL_SIM_SCHEDULER_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/status.h"
#include "sim/clock.h"

namespace squirrel {

/// \brief Priority-queue based event loop over virtual time.
class Scheduler {
 public:
  Scheduler() = default;

  /// Current virtual time (the fire time of the running/last event).
  Time Now() const { return now_; }

  /// Schedules \p fn at absolute time \p t (>= Now(); clamped up if behind).
  void At(Time t, std::function<void()> fn);

  /// Schedules \p fn after \p delay (>= 0) from Now().
  void After(Time delay, std::function<void()> fn) { At(now_ + delay, fn); }

  /// Runs events until the queue is empty or \p max_events fired.
  /// Returns the number of events fired.
  size_t Run(size_t max_events = SIZE_MAX);

  /// Runs events with fire time <= \p t; then advances Now() to \p t.
  size_t RunUntil(Time t);

  /// Number of pending events.
  size_t Pending() const { return queue_.size(); }

  /// Total events fired since construction.
  uint64_t EventsFired() const { return fired_; }

 private:
  struct Event {
    Time time;
    uint64_t seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  Time now_ = 0.0;
  uint64_t next_seq_ = 0;
  uint64_t fired_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace squirrel

#endif  // SQUIRREL_SIM_SCHEDULER_H_
