#include "sim/clock.h"

#include <cstdio>

namespace squirrel {

bool TimeVectorLeq(const TimeVector& a, const TimeVector& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] > b[i]) return false;
  }
  return true;
}

std::string TimeVectorToString(const TimeVector& v) {
  std::string out = "<";
  for (size_t i = 0; i < v.size(); ++i) {
    if (i > 0) out += ", ";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%g", v[i]);
    out += buf;
  }
  out += ">";
  return out;
}

}  // namespace squirrel
