// Virtual time for the integration-environment simulator.
//
// Paper §3 models global time as a totally ordered set isomorphic to the
// reals; the simulator uses a double-valued virtual clock. No component is
// required to know global time (the algorithms never read it), but the
// simulator and the correctness checkers do.

#ifndef SQUIRREL_SIM_CLOCK_H_
#define SQUIRREL_SIM_CLOCK_H_

#include <string>
#include <vector>

namespace squirrel {

/// Global virtual time, in abstract seconds.
using Time = double;

/// A time vector <t_1, ..., t_n> over the n source databases (paper §3).
using TimeVector = std::vector<Time>;

/// Component-wise t <= t' over equal-length vectors.
bool TimeVectorLeq(const TimeVector& a, const TimeVector& b);

/// Renders "<1.5, 2, 3.25>".
std::string TimeVectorToString(const TimeVector& v);

}  // namespace squirrel

#endif  // SQUIRREL_SIM_CLOCK_H_
