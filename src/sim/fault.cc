#include "sim/fault.h"

namespace squirrel {

namespace {
bool InAnyWindow(const std::map<std::string, std::vector<CrashWindow>>& m,
                 const std::string& source, Time t) {
  auto it = m.find(source);
  if (it == m.end()) return false;
  for (const auto& w : it->second) {
    if (t >= w.start && t < w.end) return true;
  }
  return false;
}
}  // namespace

bool FaultInjector::Crashed(const std::string& source, Time t) const {
  return InAnyWindow(plan_.crashes, source, t) ||
         InAnyWindow(plan_.restarts, source, t);
}

const std::vector<CrashWindow>& FaultInjector::RestartWindows(
    const std::string& source) const {
  static const std::vector<CrashWindow> kNone;
  auto it = plan_.restarts.find(source);
  return it == plan_.restarts.end() ? kNone : it->second;
}

Time FaultInjector::Jitter(Time now) {
  if (!Active(now) || plan_.delay_jitter_max <= 0) return 0;
  return rng_.UniformDouble() * plan_.delay_jitter_max;
}

bool FaultInjector::MediatorCrashed(Time t) const {
  for (const auto& w : plan_.mediator_crashes) {
    if (t >= w.start && t < w.end) return true;
  }
  return false;
}

Time FaultInjector::MediatorArqExtra(Time deliver_at) {
  // Crash windows are planned up front, so the ARQ outcome is known at send
  // time: the sender keeps retransmitting into the dead mediator and the
  // message finally lands one retransmit timeout past the window's end.
  // (Windows are disjoint in every plan we generate; a delivery pushed past
  // one window is re-checked against the rest anyway.)
  Time extra = 0;
  bool pushed = true;
  while (pushed) {
    pushed = false;
    for (const auto& w : plan_.mediator_crashes) {
      Time at = deliver_at + extra;
      if (at >= w.start && at < w.end) {
        extra += (w.end - at) + plan_.retransmit_timeout;
        pushed = true;
      }
    }
  }
  if (extra > 0) ++counters_.mediator_retransmits;
  return extra;
}

std::vector<Time> FaultInjector::OnSend(Time now, Time base_delay, Dir dir,
                                        const std::string& source) {
  if (dir == Dir::kToSource && Crashed(source, now)) {
    ++counters_.blackholed;
    return {};
  }
  Time extra = Jitter(now);
  for (int tx = 1; tx < plan_.max_transmissions && Active(now) &&
                   rng_.Bernoulli(plan_.drop_prob);
       ++tx) {
    extra += plan_.retransmit_timeout + Jitter(now);
    ++counters_.transmissions_lost;
  }
  std::vector<Time> deliveries = {extra};
  if (Active(now) && rng_.Bernoulli(plan_.dup_prob)) {
    deliveries.push_back(extra + plan_.retransmit_timeout + Jitter(now));
    ++counters_.duplicates;
  }
  if (dir == Dir::kToMediator && !plan_.mediator_crashes.empty()) {
    for (Time& d : deliveries) {
      d += MediatorArqExtra(now + base_delay + d);
    }
  }
  return deliveries;
}

bool FaultInjector::CorruptSnapshotPayload(Time now) {
  if (plan_.snapshot_corrupt_prob <= 0 || !Active(now) ||
      !rng_.Bernoulli(plan_.snapshot_corrupt_prob)) {
    return false;
  }
  ++counters_.payloads_corrupted;
  return true;
}

Time FaultInjector::SlowPollExtra(Time now) {
  if (!Active(now) || plan_.slow_poll_delay <= 0 ||
      !rng_.Bernoulli(plan_.slow_poll_prob)) {
    return 0;
  }
  ++counters_.slow_polls;
  return plan_.slow_poll_delay * (0.5 + 0.5 * rng_.UniformDouble());
}

}  // namespace squirrel
