#include "sim/fault.h"

namespace squirrel {

bool FaultInjector::Crashed(const std::string& source, Time t) const {
  auto it = plan_.crashes.find(source);
  if (it == plan_.crashes.end()) return false;
  for (const auto& w : it->second) {
    if (t >= w.start && t < w.end) return true;
  }
  return false;
}

Time FaultInjector::Jitter(Time now) {
  if (!Active(now) || plan_.delay_jitter_max <= 0) return 0;
  return rng_.UniformDouble() * plan_.delay_jitter_max;
}

std::vector<Time> FaultInjector::OnSend(Time now, Dir dir,
                                        const std::string& source) {
  if (dir == Dir::kToSource && Crashed(source, now)) {
    ++counters_.blackholed;
    return {};
  }
  Time extra = Jitter(now);
  for (int tx = 1; tx < plan_.max_transmissions && Active(now) &&
                   rng_.Bernoulli(plan_.drop_prob);
       ++tx) {
    extra += plan_.retransmit_timeout + Jitter(now);
    ++counters_.transmissions_lost;
  }
  std::vector<Time> deliveries = {extra};
  if (Active(now) && rng_.Bernoulli(plan_.dup_prob)) {
    deliveries.push_back(extra + plan_.retransmit_timeout + Jitter(now));
    ++counters_.duplicates;
  }
  return deliveries;
}

Time FaultInjector::SlowPollExtra(Time now) {
  if (!Active(now) || plan_.slow_poll_delay <= 0 ||
      !rng_.Bernoulli(plan_.slow_poll_prob)) {
    return 0;
  }
  ++counters_.slow_polls;
  return plan_.slow_poll_delay * (0.5 + 0.5 * rng_.UniformDouble());
}

}  // namespace squirrel
