// Channel is a header-only template; this translation unit exists so the
// sim module has a stable object file and a place for future non-template
// network utilities.
#include "sim/network.h"
