// Relational-algebra expression trees (view definitions).
//
// The paper's view definition language (§5): select, project, join (with
// arbitrary theta conditions), union, and difference, in the attribute-based
// form of the algebra. AlgebraExpr is the parsed form of a view definition;
// the planner decomposes it into a VDP, and the evaluator executes it
// directly (used by the pure-virtual baseline and by recompute checks).

#ifndef SQUIRREL_RELATIONAL_ALGEBRA_H_
#define SQUIRREL_RELATIONAL_ALGEBRA_H_

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "relational/expr.h"

namespace squirrel {

/// \brief Immutable relational-algebra tree node.
class AlgebraExpr {
 public:
  using Ptr = std::shared_ptr<const AlgebraExpr>;

  /// Node discriminator.
  enum class Kind { kScan, kSelect, kProject, kJoin, kUnion, kDiff };

  /// Base-relation reference by name.
  static Ptr Scan(std::string relation);
  /// σ_cond(child); a null \p cond means "true".
  static Ptr Select(Expr::Ptr cond, Ptr child);
  /// π_attrs(child).
  static Ptr Project(std::vector<std::string> attrs, Ptr child);
  /// left ⋈_cond right; a null \p cond means a cross product.
  static Ptr Join(Expr::Ptr cond, Ptr left, Ptr right);
  /// left ∪ right (bag union in mediator internals, set in export).
  static Ptr Union(Ptr left, Ptr right);
  /// left − right (set difference).
  static Ptr Diff(Ptr left, Ptr right);

  Kind kind() const { return kind_; }
  /// Scanned relation name; only for kScan.
  const std::string& relation() const { return relation_; }
  /// Selection or join condition (never null; True() when absent).
  const Expr::Ptr& condition() const { return condition_; }
  /// Projection attribute list; only for kProject.
  const std::vector<std::string>& attrs() const { return attrs_; }
  /// Only child (kSelect/kProject) or left child.
  const Ptr& left() const { return left_; }
  /// Right child (kJoin/kUnion/kDiff).
  const Ptr& right() const { return right_; }

  /// Adds every scanned base-relation name to \p out.
  void CollectScans(std::set<std::string>* out) const;

  /// Renders in the parser's concrete syntax.
  std::string ToString() const;

 private:
  AlgebraExpr() = default;
  Kind kind_ = Kind::kScan;
  std::string relation_;
  Expr::Ptr condition_;
  std::vector<std::string> attrs_;
  Ptr left_, right_;
};

}  // namespace squirrel

#endif  // SQUIRREL_RELATIONAL_ALGEBRA_H_
