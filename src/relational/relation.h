// Relations with set or bag semantics.
//
// Paper §5: "some of the relations stored inside an integration mediator may
// be bags, in order to support our incremental maintenance algorithms; this
// occurs if the integrated view involves projection or union." Bag relations
// store tuple multiplicities; set relations cap multiplicity at one.

#ifndef SQUIRREL_RELATIONAL_RELATION_H_
#define SQUIRREL_RELATIONAL_RELATION_H_

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "relational/schema.h"
#include "relational/tuple.h"

namespace squirrel {

/// Storage semantics of a relation (paper §5.1: set nodes vs bag nodes).
enum class Semantics { kSet, kBag };

/// \brief A relation instance: a schema plus a tuple-multiplicity map.
///
/// Multiplicities are always >= 1; inserting with negative count or removing
/// below zero is an error. Set relations clamp multiplicity at 1 (duplicate
/// inserts are idempotent).
class Relation {
 public:
  Relation() = default;
  /// Creates an empty relation with the given schema and semantics.
  explicit Relation(Schema schema, Semantics semantics = Semantics::kSet)
      : schema_(std::move(schema)), semantics_(semantics) {}

  /// The relation's schema.
  const Schema& schema() const { return schema_; }
  /// Set or bag storage.
  Semantics semantics() const { return semantics_; }

  /// Inserts \p count copies of \p tuple (set semantics: becomes present).
  /// Fails if the arity does not match the schema or count <= 0.
  Status Insert(const Tuple& tuple, int64_t count = 1);

  /// Removes \p count copies (set semantics: removes the tuple). Fails if
  /// the tuple has fewer than \p count copies.
  Status Remove(const Tuple& tuple, int64_t count = 1);

  /// Adjusts multiplicity by a signed \p delta, clamping per semantics.
  /// Fails if the result would be negative.
  Status Adjust(const Tuple& tuple, int64_t delta);

  /// Multiplicity of \p tuple (0 if absent).
  int64_t CountOf(const Tuple& tuple) const;
  /// True iff \p tuple has multiplicity >= 1.
  bool Contains(const Tuple& tuple) const { return CountOf(tuple) > 0; }

  /// Number of distinct tuples.
  size_t DistinctSize() const { return rows_.size(); }
  /// Sum of multiplicities.
  int64_t TotalSize() const { return total_; }
  /// True iff the relation is empty.
  bool Empty() const { return rows_.empty(); }

  /// Removes all tuples.
  void Clear();

  /// Iterates (tuple, count) pairs in unspecified order.
  void ForEach(const std::function<void(const Tuple&, int64_t)>& fn) const;

  /// All (tuple, count) pairs sorted by tuple — deterministic, for tests
  /// and display.
  std::vector<std::pair<Tuple, int64_t>> SortedRows() const;

  /// Underlying map (for zero-copy scans by operators).
  const std::unordered_map<Tuple, int64_t, TupleHash>& rows() const {
    return rows_;
  }

  /// Bag equality: same schema attribute names and same multiplicities.
  bool EqualContents(const Relation& other) const;

  /// Set-projection of this relation's contents as a set relation with the
  /// same schema (dedupes a bag). Used when feeding set nodes.
  Relation ToSet() const;

  /// Approximate resident bytes (schema-aware, for space measurements).
  size_t ApproxBytes() const;

  /// Renders schema + sorted rows, e.g. for golden tests.
  std::string ToString(const std::string& name = "") const;

 private:
  Schema schema_;
  Semantics semantics_ = Semantics::kSet;
  std::unordered_map<Tuple, int64_t, TupleHash> rows_;
  int64_t total_ = 0;
};

}  // namespace squirrel

#endif  // SQUIRREL_RELATIONAL_RELATION_H_
