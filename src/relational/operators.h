// Relational operator evaluation over in-memory Relations.
//
// Semantics conventions (paper §5.1):
//  - select preserves input semantics and multiplicities;
//  - project may create duplicates, so its natural output is a bag (callers
//    may request set output, which dedupes);
//  - join multiplies multiplicities (bag output iff either input is a bag);
//  - union adds multiplicities (bag) or unions (set);
//  - difference is a *set* operator: inputs are deduplicated logically.

#ifndef SQUIRREL_RELATIONAL_OPERATORS_H_
#define SQUIRREL_RELATIONAL_OPERATORS_H_

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "relational/algebra.h"
#include "relational/expr.h"
#include "relational/index.h"
#include "relational/relation.h"

namespace squirrel {

/// σ_cond(in). Tuples where the condition errors propagate the error.
Result<Relation> OpSelect(const Relation& in, const Expr::Ptr& cond);

/// π_attrs(in) with the requested output semantics.
Result<Relation> OpProject(const Relation& in,
                           const std::vector<std::string>& attrs,
                           Semantics out_semantics = Semantics::kBag);

/// Pre-built indexes a caller can lend to OpJoin so it probes persistent
/// state instead of rebuilding a hash table. An index is used only when it
/// was built on the corresponding input's schema and its attribute set
/// equals the equi-conjunct attributes on that side; otherwise OpJoin
/// silently falls back to its own build.
struct JoinIndexHint {
  const HashIndex* left = nullptr;
  const HashIndex* right = nullptr;
};

/// in1 ⋈_cond in2. Uses a hash join on the equi-conjuncts of \p cond with a
/// residual filter; falls back to a nested loop if no equi-conjunct exists.
/// Attribute names of the inputs must be disjoint.
Result<Relation> OpJoin(const Relation& left, const Relation& right,
                        const Expr::Ptr& cond);

/// As above, but probes \p hint indexes covering the equi-conjuncts when
/// available instead of building a fresh hash table.
Result<Relation> OpJoin(const Relation& left, const Relation& right,
                        const Expr::Ptr& cond, const JoinIndexHint& hint);

/// left ∪ right. Schemas must have identical attribute names and types.
Result<Relation> OpUnion(const Relation& left, const Relation& right,
                         Semantics out_semantics = Semantics::kBag);

/// left − right as sets (inputs deduplicated).
Result<Relation> OpDiff(const Relation& left, const Relation& right);

/// Renames attributes via an old-name -> new-name map.
Result<Relation> OpRename(
    const Relation& in,
    const std::unordered_map<std::string, std::string>& renames);

/// \brief Name -> relation lookup used by the algebra evaluator.
class Catalog {
 public:
  /// Registers \p rel under \p name (pointer must outlive the catalog use).
  void Register(const std::string& name, const Relation* rel);
  /// Looks a relation up by name.
  Result<const Relation*> Lookup(const std::string& name) const;
  /// True iff \p name is registered.
  bool Contains(const std::string& name) const {
    return rels_.count(name) > 0;
  }

 private:
  std::unordered_map<std::string, const Relation*> rels_;
};

/// Callback resolving a base-relation name to its schema.
using SchemaLookup = std::function<Result<Schema>(const std::string&)>;

/// Infers the output schema of an algebra expression.
Result<Schema> InferSchema(const AlgebraExpr::Ptr& expr,
                           const SchemaLookup& lookup);

/// Evaluates an algebra expression against \p catalog with bag semantics
/// internally (difference nodes deduplicate their inputs). Callers wanting
/// the set-based view semantics of the paper apply Relation::ToSet() to the
/// result.
Result<Relation> EvalAlgebra(const AlgebraExpr::Ptr& expr,
                             const Catalog& catalog);

/// As EvalAlgebra, but a top-level scan returns a non-owning alias of the
/// catalog relation instead of a deep copy (interior scans are likewise
/// borrowed, so select/project-over-scan pipelines never copy the base
/// table). The alias is only valid while the catalog's relations live.
Result<std::shared_ptr<const Relation>> EvalAlgebraShared(
    const AlgebraExpr::Ptr& expr, const Catalog& catalog);

}  // namespace squirrel

#endif  // SQUIRREL_RELATIONAL_OPERATORS_H_
