#include "relational/expr.h"

#include <algorithm>
#include <functional>

namespace squirrel {

const char* BinOpName(BinOp op) {
  switch (op) {
    case BinOp::kAdd:
      return "+";
    case BinOp::kSub:
      return "-";
    case BinOp::kMul:
      return "*";
    case BinOp::kDiv:
      return "/";
    case BinOp::kEq:
      return "=";
    case BinOp::kNe:
      return "!=";
    case BinOp::kLt:
      return "<";
    case BinOp::kLe:
      return "<=";
    case BinOp::kGt:
      return ">";
    case BinOp::kGe:
      return ">=";
    case BinOp::kAnd:
      return "AND";
    case BinOp::kOr:
      return "OR";
  }
  return "?";
}

Expr::Ptr Expr::Const(Value v) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = Kind::kConst;
  e->value_ = std::move(v);
  return e;
}

Expr::Ptr Expr::Attr(std::string name) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = Kind::kAttr;
  e->name_ = std::move(name);
  return e;
}

Expr::Ptr Expr::Binary(BinOp op, Ptr left, Ptr right) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = Kind::kBinary;
  e->bin_op_ = op;
  e->left_ = std::move(left);
  e->right_ = std::move(right);
  return e;
}

Expr::Ptr Expr::Unary(UnOp op, Ptr child) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = Kind::kUnary;
  e->un_op_ = op;
  e->left_ = std::move(child);
  return e;
}

Expr::Ptr Expr::True() { return Const(Value(int64_t{1})); }

Expr::Ptr Expr::And(Ptr l, Ptr r) {
  if (!l || l->IsTrueLiteral()) return r ? r : True();
  if (!r || r->IsTrueLiteral()) return l;
  return Binary(BinOp::kAnd, std::move(l), std::move(r));
}

Expr::Ptr Expr::Or(Ptr l, Ptr r) {
  if (!l || l->IsTrueLiteral()) return True();
  if (!r || r->IsTrueLiteral()) return True();
  return Binary(BinOp::kOr, std::move(l), std::move(r));
}

void Expr::CollectAttrs(std::set<std::string>* out) const {
  switch (kind_) {
    case Kind::kConst:
      return;
    case Kind::kAttr:
      out->insert(name_);
      return;
    case Kind::kBinary:
      left_->CollectAttrs(out);
      right_->CollectAttrs(out);
      return;
    case Kind::kUnary:
      left_->CollectAttrs(out);
      return;
  }
}

std::vector<std::string> Expr::ReferencedAttrs() const {
  std::set<std::string> s;
  CollectAttrs(&s);
  return std::vector<std::string>(s.begin(), s.end());
}

bool Expr::IsTrueLiteral() const {
  return kind_ == Kind::kConst && value_.type() == ValueType::kInt &&
         value_.AsInt() == 1;
}

bool Expr::Equals(const Expr& other) const {
  if (kind_ != other.kind_) return false;
  switch (kind_) {
    case Kind::kConst:
      return value_ == other.value_ && value_.type() == other.value_.type();
    case Kind::kAttr:
      return name_ == other.name_;
    case Kind::kBinary:
      return bin_op_ == other.bin_op_ && left_->Equals(*other.left_) &&
             right_->Equals(*other.right_);
    case Kind::kUnary:
      return un_op_ == other.un_op_ && left_->Equals(*other.left_);
  }
  return false;
}

std::string Expr::ToString() const {
  switch (kind_) {
    case Kind::kConst:
      return value_.ToString();
    case Kind::kAttr:
      return name_;
    case Kind::kBinary:
      return "(" + left_->ToString() + " " + BinOpName(bin_op_) + " " +
             right_->ToString() + ")";
    case Kind::kUnary:
      return un_op_ == UnOp::kNeg ? "(-" + left_->ToString() + ")"
                                  : "(NOT " + left_->ToString() + ")";
  }
  return "?";
}

std::vector<Expr::Ptr> ConjunctiveClauses(const Expr::Ptr& expr) {
  std::vector<Expr::Ptr> out;
  if (!expr || expr->IsTrueLiteral()) return out;
  if (expr->kind() == Expr::Kind::kBinary &&
      expr->bin_op() == BinOp::kAnd) {
    auto l = ConjunctiveClauses(expr->left());
    auto r = ConjunctiveClauses(expr->right());
    out.insert(out.end(), l.begin(), l.end());
    out.insert(out.end(), r.begin(), r.end());
    return out;
  }
  out.push_back(expr);
  return out;
}

Expr::Ptr AndAll(const std::vector<Expr::Ptr>& clauses) {
  Expr::Ptr acc;
  for (const auto& c : clauses) acc = Expr::And(acc, c);
  return acc ? acc : Expr::True();
}

JoinConditionParts SplitJoinCondition(const Expr::Ptr& cond,
                                      const Schema& left,
                                      const Schema& right) {
  JoinConditionParts parts;
  std::vector<Expr::Ptr> residual;
  for (const auto& clause : ConjunctiveClauses(cond)) {
    bool handled = false;
    if (clause->kind() == Expr::Kind::kBinary &&
        clause->bin_op() == BinOp::kEq &&
        clause->left()->kind() == Expr::Kind::kAttr &&
        clause->right()->kind() == Expr::Kind::kAttr) {
      const std::string& a = clause->left()->attr_name();
      const std::string& b = clause->right()->attr_name();
      if (left.Contains(a) && right.Contains(b)) {
        parts.equi.push_back({a, b});
        handled = true;
      } else if (left.Contains(b) && right.Contains(a)) {
        parts.equi.push_back({b, a});
        handled = true;
      }
    }
    if (!handled) residual.push_back(clause);
  }
  parts.residual = AndAll(residual);
  return parts;
}

Result<BoundExpr> BoundExpr::Bind(const Expr::Ptr& expr,
                                  const Schema& schema) {
  BoundExpr bound;
  // Post-order flattening.
  Status st = Status::OK();
  std::function<void(const Expr&)> emit = [&](const Expr& e) {
    if (!st.ok()) return;
    switch (e.kind()) {
      case Expr::Kind::kConst: {
        Instr in;
        in.op = Instr::Op::kPushConst;
        in.constant = e.value();
        bound.code_.push_back(std::move(in));
        return;
      }
      case Expr::Kind::kAttr: {
        auto idx = schema.IndexOf(e.attr_name());
        if (!idx) {
          st = Status::NotFound("expression references unknown attribute: " +
                                e.attr_name());
          return;
        }
        Instr in;
        in.op = Instr::Op::kPushAttr;
        in.attr_index = *idx;
        bound.code_.push_back(std::move(in));
        return;
      }
      case Expr::Kind::kBinary: {
        emit(*e.left());
        emit(*e.right());
        Instr in;
        in.op = Instr::Op::kBinary;
        in.bin_op = e.bin_op();
        bound.code_.push_back(std::move(in));
        return;
      }
      case Expr::Kind::kUnary: {
        emit(*e.left());
        Instr in;
        in.op = Instr::Op::kUnary;
        in.un_op = e.un_op();
        bound.code_.push_back(std::move(in));
        return;
      }
    }
  };
  if (!expr) return Status::InvalidArgument("null expression");
  emit(*expr);
  if (!st.ok()) return st;
  return bound;
}

bool ValueTruthy(const Value& v) {
  switch (v.type()) {
    case ValueType::kNull:
      return false;
    case ValueType::kInt:
      return v.AsInt() != 0;
    case ValueType::kDouble:
      return v.AsDouble() != 0.0;
    case ValueType::kString:
      return !v.AsString().empty();
  }
  return false;
}

Result<Value> EvalBinaryValue(BinOp op, const Value& a, const Value& b) {
  // Boolean connectives (NULL-propagating like the comparisons).
  if (op == BinOp::kAnd || op == BinOp::kOr) {
    if (a.is_null() || b.is_null()) return Value();
    bool r = op == BinOp::kAnd ? (ValueTruthy(a) && ValueTruthy(b))
                               : (ValueTruthy(a) || ValueTruthy(b));
    return Value(int64_t{r ? 1 : 0});
  }
  if (a.is_null() || b.is_null()) return Value();  // NULL propagates
  switch (op) {
    case BinOp::kAdd:
    case BinOp::kSub:
    case BinOp::kMul:
    case BinOp::kDiv: {
      if (!a.is_numeric() || !b.is_numeric()) {
        return Status::InvalidArgument(
            std::string("arithmetic on non-numeric values: ") + a.ToString() +
            " " + BinOpName(op) + " " + b.ToString());
      }
      bool both_int =
          a.type() == ValueType::kInt && b.type() == ValueType::kInt;
      if (both_int) {
        int64_t x = a.AsInt(), y = b.AsInt();
        switch (op) {
          case BinOp::kAdd:
            return Value(x + y);
          case BinOp::kSub:
            return Value(x - y);
          case BinOp::kMul:
            return Value(x * y);
          case BinOp::kDiv:
            if (y == 0) return Value();  // NULL on division by zero
            return Value(x / y);
          default:
            break;
        }
      }
      double x = a.AsNumeric(), y = b.AsNumeric();
      switch (op) {
        case BinOp::kAdd:
          return Value(x + y);
        case BinOp::kSub:
          return Value(x - y);
        case BinOp::kMul:
          return Value(x * y);
        case BinOp::kDiv:
          if (y == 0.0) return Value();
          return Value(x / y);
        default:
          break;
      }
      return Status::Internal("unreachable arithmetic case");
    }
    case BinOp::kEq:
    case BinOp::kNe:
    case BinOp::kLt:
    case BinOp::kLe:
    case BinOp::kGt:
    case BinOp::kGe: {
      bool comparable =
          (a.is_numeric() && b.is_numeric()) ||
          (a.type() == ValueType::kString && b.type() == ValueType::kString);
      if (!comparable) {
        return Status::InvalidArgument(
            std::string("comparison between incompatible types: ") +
            ValueTypeName(a.type()) + " vs " + ValueTypeName(b.type()));
      }
      int c = a.Compare(b);
      bool r = false;
      switch (op) {
        case BinOp::kEq:
          r = c == 0;
          break;
        case BinOp::kNe:
          r = c != 0;
          break;
        case BinOp::kLt:
          r = c < 0;
          break;
        case BinOp::kLe:
          r = c <= 0;
          break;
        case BinOp::kGt:
          r = c > 0;
          break;
        case BinOp::kGe:
          r = c >= 0;
          break;
        default:
          break;
      }
      return Value(int64_t{r ? 1 : 0});
    }
    default:
      break;
  }
  return Status::Internal("unknown binary operator");
}

Result<Value> EvalUnaryValue(UnOp op, const Value& a) {
  if (a.is_null()) return Value();
  switch (op) {
    case UnOp::kNeg:
      if (a.type() == ValueType::kInt) return Value(-a.AsInt());
      if (a.type() == ValueType::kDouble) return Value(-a.AsDouble());
      return Status::InvalidArgument("negation of non-numeric value");
    case UnOp::kNot:
      return Value(int64_t{ValueTruthy(a) ? 0 : 1});
  }
  return Status::Internal("unknown unary operator");
}

Result<Value> BoundExpr::Eval(const Tuple& tuple) const {
  // Small fixed-capacity evaluation stack; expressions are shallow.
  std::vector<Value> stack;
  stack.reserve(8);
  for (const Instr& in : code_) {
    switch (in.op) {
      case Instr::Op::kPushConst:
        stack.push_back(in.constant);
        break;
      case Instr::Op::kPushAttr:
        if (in.attr_index >= tuple.size()) {
          return Status::Internal("bound attribute index out of range");
        }
        stack.push_back(tuple.at(in.attr_index));
        break;
      case Instr::Op::kBinary: {
        Value b = std::move(stack.back());
        stack.pop_back();
        Value a = std::move(stack.back());
        stack.pop_back();
        SQ_ASSIGN_OR_RETURN(Value r, EvalBinaryValue(in.bin_op, a, b));
        stack.push_back(std::move(r));
        break;
      }
      case Instr::Op::kUnary: {
        Value a = std::move(stack.back());
        stack.pop_back();
        SQ_ASSIGN_OR_RETURN(Value r, EvalUnaryValue(in.un_op, a));
        stack.push_back(std::move(r));
        break;
      }
    }
  }
  if (stack.size() != 1) return Status::Internal("bad expression stack");
  return stack.back();
}

Result<bool> BoundExpr::EvalBool(const Tuple& tuple) const {
  SQ_ASSIGN_OR_RETURN(Value v, Eval(tuple));
  return ValueTruthy(v);
}

}  // namespace squirrel
