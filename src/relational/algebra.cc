#include "relational/algebra.h"

#include "common/strings.h"

namespace squirrel {

AlgebraExpr::Ptr AlgebraExpr::Scan(std::string relation) {
  auto e = std::shared_ptr<AlgebraExpr>(new AlgebraExpr());
  e->kind_ = Kind::kScan;
  e->relation_ = std::move(relation);
  return e;
}

AlgebraExpr::Ptr AlgebraExpr::Select(Expr::Ptr cond, Ptr child) {
  auto e = std::shared_ptr<AlgebraExpr>(new AlgebraExpr());
  e->kind_ = Kind::kSelect;
  e->condition_ = cond ? std::move(cond) : Expr::True();
  e->left_ = std::move(child);
  return e;
}

AlgebraExpr::Ptr AlgebraExpr::Project(std::vector<std::string> attrs,
                                      Ptr child) {
  auto e = std::shared_ptr<AlgebraExpr>(new AlgebraExpr());
  e->kind_ = Kind::kProject;
  e->attrs_ = std::move(attrs);
  e->left_ = std::move(child);
  return e;
}

AlgebraExpr::Ptr AlgebraExpr::Join(Expr::Ptr cond, Ptr left, Ptr right) {
  auto e = std::shared_ptr<AlgebraExpr>(new AlgebraExpr());
  e->kind_ = Kind::kJoin;
  e->condition_ = cond ? std::move(cond) : Expr::True();
  e->left_ = std::move(left);
  e->right_ = std::move(right);
  return e;
}

AlgebraExpr::Ptr AlgebraExpr::Union(Ptr left, Ptr right) {
  auto e = std::shared_ptr<AlgebraExpr>(new AlgebraExpr());
  e->kind_ = Kind::kUnion;
  e->left_ = std::move(left);
  e->right_ = std::move(right);
  return e;
}

AlgebraExpr::Ptr AlgebraExpr::Diff(Ptr left, Ptr right) {
  auto e = std::shared_ptr<AlgebraExpr>(new AlgebraExpr());
  e->kind_ = Kind::kDiff;
  e->left_ = std::move(left);
  e->right_ = std::move(right);
  return e;
}

void AlgebraExpr::CollectScans(std::set<std::string>* out) const {
  switch (kind_) {
    case Kind::kScan:
      out->insert(relation_);
      return;
    case Kind::kSelect:
    case Kind::kProject:
      left_->CollectScans(out);
      return;
    case Kind::kJoin:
    case Kind::kUnion:
    case Kind::kDiff:
      left_->CollectScans(out);
      right_->CollectScans(out);
      return;
  }
}

std::string AlgebraExpr::ToString() const {
  switch (kind_) {
    case Kind::kScan:
      return relation_;
    case Kind::kSelect:
      return "select[" + condition_->ToString() + "](" + left_->ToString() +
             ")";
    case Kind::kProject:
      return "project[" + ::squirrel::Join(attrs_, ", ") + "](" +
             left_->ToString() + ")";
    case Kind::kJoin: {
      std::string cond = condition_->IsTrueLiteral()
                             ? ""
                             : "[" + condition_->ToString() + "]";
      return "(" + left_->ToString() + " join" + cond + " " +
             right_->ToString() + ")";
    }
    case Kind::kUnion:
      return "(" + left_->ToString() + " union " + right_->ToString() + ")";
    case Kind::kDiff:
      return "(" + left_->ToString() + " diff " + right_->ToString() + ")";
  }
  return "?";
}

}  // namespace squirrel
