#include "relational/tuple.h"

#include "common/strings.h"

namespace squirrel {

Tuple Tuple::Concat(const Tuple& other) const {
  std::vector<Value> out = values_;
  out.insert(out.end(), other.values_.begin(), other.values_.end());
  return Tuple(std::move(out));
}

Tuple Tuple::Project(const std::vector<size_t>& positions) const {
  std::vector<Value> out;
  out.reserve(positions.size());
  for (size_t p : positions) out.push_back(values_[p]);
  return Tuple(std::move(out));
}

uint64_t Tuple::Hash() const {
  uint64_t h = hash_.load(std::memory_order_relaxed);
  if (h != 0) return h;
  h = 0xC0FFEEULL;
  for (const auto& v : values_) h = HashCombine(h, v.Hash());
  hash_.store(h, std::memory_order_relaxed);
  return h;
}

int Tuple::Compare(const Tuple& other) const {
  size_t n = std::min(values_.size(), other.values_.size());
  for (size_t i = 0; i < n; ++i) {
    int c = values_[i].Compare(other.values_[i]);
    if (c != 0) return c;
  }
  if (values_.size() < other.values_.size()) return -1;
  if (values_.size() > other.values_.size()) return 1;
  return 0;
}

std::string Tuple::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(values_.size());
  for (const auto& v : values_) parts.push_back(v.ToString());
  return "(" + Join(parts, ", ") + ")";
}

}  // namespace squirrel
