#include "relational/columnar.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>

#include "common/cancel.h"
#include "common/strings.h"

namespace squirrel {
namespace columnar {

namespace {

std::atomic<bool> g_enabled{true};
std::atomic<size_t> g_min_rows{32};

uint64_t DoubleBits(double d) {
  uint64_t u;
  std::memcpy(&u, &d, sizeof(u));
  return u;
}

double BitsDouble(uint64_t u) {
  double d;
  std::memcpy(&d, &u, sizeof(d));
  return d;
}

}  // namespace

bool Enabled() { return g_enabled.load(std::memory_order_relaxed); }
void SetEnabled(bool enabled) {
  g_enabled.store(enabled, std::memory_order_relaxed);
}
size_t MinRows() { return g_min_rows.load(std::memory_order_relaxed); }
void SetMinRows(size_t rows) {
  g_min_rows.store(rows, std::memory_order_relaxed);
}

ScopedColumnarMode::ScopedColumnarMode(bool enabled, int64_t min_rows)
    : prev_enabled_(Enabled()), prev_min_rows_(MinRows()) {
  SetEnabled(enabled);
  if (min_rows >= 0) SetMinRows(static_cast<size_t>(min_rows));
}

ScopedColumnarMode::~ScopedColumnarMode() {
  SetEnabled(prev_enabled_);
  SetMinRows(prev_min_rows_);
}

// ---------------------------------------------------------------------------
// PackedJoinTable
// ---------------------------------------------------------------------------

namespace {

/// Normalizes one already-decomposed cell to the packed key encoding that
/// reproduces Value equality (see columnar.h). Strings resolve against
/// \p arena: interned when \p intern, otherwise looked up — a miss returns
/// false (the key cannot match any build row). The integral-double bounds
/// are Value::Hash's, so pack-equality coincides with the row engine's
/// hash-bucket + Compare matching for every value the workloads produce.
bool NormalizeCell(ColumnTag in_tag, uint64_t in_bits, const StringArena* src,
                   StringArena* arena, bool intern, ColumnTag* tag,
                   uint64_t* bits) {
  switch (in_tag) {
    case kTagNull:
      *tag = kTagNull;
      *bits = 0;
      return true;
    case kTagInt:
      *tag = kTagInt;
      *bits = in_bits;
      return true;
    case kTagDouble: {
      double d = BitsDouble(in_bits);
      double r = std::floor(d);
      if (r == d && d >= -9.2e18 && d <= 9.2e18) {
        *tag = kTagInt;
        *bits = static_cast<uint64_t>(static_cast<int64_t>(d));
        return true;
      }
      if (d == 0.0) d = 0.0;  // normalize -0.0
      *tag = kTagDouble;
      *bits = DoubleBits(d);
      return true;
    }
    default: {
      const std::string& s = src->Get(static_cast<uint32_t>(in_bits));
      if (intern) {
        *tag = kTagString;
        *bits = arena->Intern(s);
        return true;
      }
      auto id = arena->Find(s);
      if (!id) return false;
      *tag = kTagString;
      *bits = *id;
      return true;
    }
  }
}

bool NormalizeValue(const Value& v, StringArena* arena, bool intern,
                    ColumnTag* tag, uint64_t* bits) {
  switch (v.type()) {
    case ValueType::kNull:
      *tag = kTagNull;
      *bits = 0;
      return true;
    case ValueType::kInt:
      *tag = kTagInt;
      *bits = static_cast<uint64_t>(v.AsInt());
      return true;
    case ValueType::kDouble:
      return NormalizeCell(kTagDouble, DoubleBits(v.AsDouble()), nullptr,
                           arena, intern, tag, bits);
    case ValueType::kString: {
      if (intern) {
        *tag = kTagString;
        *bits = arena->Intern(v.AsString());
        return true;
      }
      auto id = arena->Find(v.AsString());
      if (!id) return false;
      *tag = kTagString;
      *bits = *id;
      return true;
    }
  }
  return false;
}

size_t NextPow2(size_t n) {
  size_t p = 8;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

PackedJoinTable::PackedJoinTable(size_t key_width)
    : key_width_(key_width),
      scratch_tags_(key_width),
      scratch_bits_(key_width) {}

PackedJoinTable::~PackedJoinTable() {
  if (budget_ != nullptr) ReleaseGlobalBudget(budget_, charged_);
}

void PackedJoinTable::ChargeBytes(size_t bytes) {
  if (MemoryBudget* b = ChargeGlobalBudget(bytes)) {
    budget_ = b;
    charged_ += bytes;
  }
}

bool PackedJoinTable::PackTuple(const Tuple& t,
                                const std::vector<size_t>& key_pos,
                                bool intern) {
  for (size_t k = 0; k < key_width_; ++k) {
    if (!NormalizeValue(t.at(key_pos[k]), &arena_, intern, &scratch_tags_[k],
                        &scratch_bits_[k])) {
      return false;
    }
  }
  return true;
}

bool PackedJoinTable::PackBatch(const ColumnBatch& batch,
                                const std::vector<size_t>& cols, size_t row,
                                bool intern) {
  for (size_t k = 0; k < key_width_; ++k) {
    const Column& c = batch.column(cols[k]);
    if (!NormalizeCell(c.tags[row], c.bits[row], batch.arena(), &arena_,
                       intern, &scratch_tags_[k], &scratch_bits_[k])) {
      return false;
    }
  }
  return true;
}

uint64_t PackedJoinTable::HashKey(const ColumnTag* tags,
                                  const uint64_t* bits) const {
  uint64_t h = 0x9E3779B97F4A7C15ULL;
  for (size_t k = 0; k < key_width_; ++k) {
    h = HashCombine(h, tags[k]);
    h = HashCombine(h, bits[k]);
  }
  return h;
}

bool PackedJoinTable::KeyEquals(int32_t row, const ColumnTag* tags,
                                const uint64_t* bits) const {
  const size_t off = static_cast<size_t>(row) * key_width_;
  for (size_t k = 0; k < key_width_; ++k) {
    if (key_tags_[off + k] != tags[k] || key_bits_[off + k] != bits[k]) {
      return false;
    }
  }
  return true;
}

int32_t PackedJoinTable::AppendPacked() {
  int32_t id = static_cast<int32_t>(next_.size());
  key_tags_.insert(key_tags_.end(), scratch_tags_.begin(),
                   scratch_tags_.end());
  key_bits_.insert(key_bits_.end(), scratch_bits_.begin(),
                   scratch_bits_.end());
  hashes_.push_back(HashKey(scratch_tags_.data(), scratch_bits_.data()));
  next_.push_back(-1);
  // Per build row: key_width_ tag+payload cells, the hash, the chain link.
  ChargeBytes(key_width_ * (sizeof(ColumnTag) + sizeof(uint64_t)) +
              sizeof(uint64_t) + sizeof(int32_t));
  return id;
}

int32_t PackedJoinTable::AddBuildRow(const Tuple& t,
                                     const std::vector<size_t>& key_pos) {
  PackTuple(t, key_pos, /*intern=*/true);
  return AppendPacked();
}

int32_t PackedJoinTable::AddBuildBatchRow(const ColumnBatch& batch,
                                          const std::vector<size_t>& cols,
                                          size_t row) {
  PackBatch(batch, cols, row, /*intern=*/true);
  return AppendPacked();
}

void PackedJoinTable::Finalize() {
  size_t cap = NextPow2(next_.size() * 2);
  mask_ = cap - 1;
  slots_.assign(cap, -1);
  ChargeBytes(cap * sizeof(int32_t));
  for (size_t i = 0; i < next_.size(); ++i) {
    const size_t off = i * key_width_;
    size_t s = hashes_[i] & mask_;
    for (;;) {
      int32_t head = slots_[s];
      if (head < 0) {
        slots_[s] = static_cast<int32_t>(i);
        break;
      }
      if (hashes_[head] == hashes_[i] &&
          KeyEquals(head, &key_tags_[off], &key_bits_[off])) {
        // Same key: prepend to the chain (order is irrelevant, outputs go
        // into multiplicity maps).
        next_[i] = head;
        slots_[s] = static_cast<int32_t>(i);
        break;
      }
      s = (s + 1) & mask_;
    }
  }
}

int32_t PackedJoinTable::Lookup(const ColumnTag* tags,
                                const uint64_t* bits) const {
  if (next_.empty()) return -1;
  uint64_t h = HashKey(tags, bits);
  size_t s = h & mask_;
  for (;;) {
    int32_t head = slots_[s];
    if (head < 0) return -1;
    if (hashes_[head] == h && KeyEquals(head, tags, bits)) return head;
    s = (s + 1) & mask_;
  }
}

int32_t PackedJoinTable::ProbeRow(const Tuple& t,
                                  const std::vector<size_t>& key_pos) {
  if (!PackTuple(t, key_pos, /*intern=*/false)) return -1;
  return Lookup(scratch_tags_.data(), scratch_bits_.data());
}

int32_t PackedJoinTable::ProbeBatchRow(const ColumnBatch& batch,
                                       const std::vector<size_t>& cols,
                                       size_t row) {
  if (!PackBatch(batch, cols, row, /*intern=*/false)) return -1;
  return Lookup(scratch_tags_.data(), scratch_bits_.data());
}

// ---------------------------------------------------------------------------
// Vectorized predicate evaluation
// ---------------------------------------------------------------------------

namespace {

/// One slot of the column-wise evaluation stack: a broadcast constant, a
/// borrowed input column, or a computed temporary column. Temporaries never
/// hold strings (no operator produces one), so they need no arena.
struct VOp {
  enum Kind { kConst, kRef, kTemp } kind = kConst;
  Value cval;                    // kConst
  const Column* col = nullptr;   // kRef
  Column temp;                   // kTemp
  bool temp_all_int = false;     // kTemp: every cell non-null int
};

VOp MakeConst(Value v) {
  VOp op;
  op.kind = VOp::kConst;
  op.cval = std::move(v);
  return op;
}

bool AllInt(const VOp& op) {
  switch (op.kind) {
    case VOp::kConst:
      return op.cval.type() == ValueType::kInt;
    case VOp::kRef:
      return op.col->AllInt();
    case VOp::kTemp:
      return op.temp_all_int;
  }
  return false;
}

/// Int payload at row \p r; only valid when AllInt(op).
int64_t IntAt(const VOp& op, size_t r) {
  switch (op.kind) {
    case VOp::kConst:
      return op.cval.AsInt();
    case VOp::kRef:
      return static_cast<int64_t>(op.col->bits[r]);
    default:
      return static_cast<int64_t>(op.temp.bits[r]);
  }
}

/// The cell at row \p r as a Value (general path).
Value ValueOf(const VOp& op, const ColumnBatch& batch, size_t r) {
  switch (op.kind) {
    case VOp::kConst:
      return op.cval;
    case VOp::kRef: {
      const Column& c = *op.col;
      switch (c.tags[r]) {
        case kTagNull:
          return Value();
        case kTagInt:
          return Value(static_cast<int64_t>(c.bits[r]));
        case kTagDouble:
          return Value(BitsDouble(c.bits[r]));
        default:
          return Value(batch.arena()->Get(static_cast<uint32_t>(c.bits[r])));
      }
    }
    default: {
      switch (op.temp.tags[r]) {
        case kTagNull:
          return Value();
        case kTagInt:
          return Value(static_cast<int64_t>(op.temp.bits[r]));
        default:
          return Value(BitsDouble(op.temp.bits[r]));
      }
    }
  }
}

/// Writes \p v (never a string) into temp row \p r.
void WriteTemp(VOp* out, size_t r, const Value& v) {
  switch (v.type()) {
    case ValueType::kNull:
      out->temp.tags[r] = kTagNull;
      out->temp.bits[r] = 0;
      out->temp_all_int = false;
      break;
    case ValueType::kInt:
      out->temp.tags[r] = kTagInt;
      out->temp.bits[r] = static_cast<uint64_t>(v.AsInt());
      break;
    case ValueType::kDouble:
      out->temp.tags[r] = kTagDouble;
      out->temp.bits[r] = DoubleBits(v.AsDouble());
      out->temp_all_int = false;
      break;
    default:
      break;  // unreachable: operators never produce strings
  }
}

VOp MakeTemp(size_t n) {
  VOp out;
  out.kind = VOp::kTemp;
  out.temp.tags.resize(n);
  out.temp.bits.resize(n);
  out.temp_all_int = true;
  return out;
}

Result<VOp> ExecBinary(BinOp bop, const VOp& a, const VOp& b,
                       const ColumnBatch& batch) {
  if (a.kind == VOp::kConst && b.kind == VOp::kConst) {
    SQ_ASSIGN_OR_RETURN(Value r, EvalBinaryValue(bop, a.cval, b.cval));
    return MakeConst(std::move(r));
  }
  const size_t n = batch.rows();
  VOp out = MakeTemp(n);
  if (AllInt(a) && AllInt(b)) {
    // Tight all-int loops. Arithmetic runs on uint64 (wraparound), which
    // agrees with the scalar evaluator's int64 arithmetic everywhere the
    // latter is defined.
    switch (bop) {
      case BinOp::kAdd:
        for (size_t r = 0; r < n; ++r) {
          out.temp.tags[r] = kTagInt;
          out.temp.bits[r] = static_cast<uint64_t>(IntAt(a, r)) +
                             static_cast<uint64_t>(IntAt(b, r));
        }
        return out;
      case BinOp::kSub:
        for (size_t r = 0; r < n; ++r) {
          out.temp.tags[r] = kTagInt;
          out.temp.bits[r] = static_cast<uint64_t>(IntAt(a, r)) -
                             static_cast<uint64_t>(IntAt(b, r));
        }
        return out;
      case BinOp::kMul:
        for (size_t r = 0; r < n; ++r) {
          out.temp.tags[r] = kTagInt;
          out.temp.bits[r] = static_cast<uint64_t>(IntAt(a, r)) *
                             static_cast<uint64_t>(IntAt(b, r));
        }
        return out;
      case BinOp::kDiv:
        for (size_t r = 0; r < n; ++r) {
          int64_t y = IntAt(b, r);
          if (y == 0) {  // division by zero -> NULL, like the scalar path
            out.temp.tags[r] = kTagNull;
            out.temp.bits[r] = 0;
            out.temp_all_int = false;
          } else {
            out.temp.tags[r] = kTagInt;
            out.temp.bits[r] = static_cast<uint64_t>(IntAt(a, r) / y);
          }
        }
        return out;
      case BinOp::kEq:
      case BinOp::kNe:
      case BinOp::kLt:
      case BinOp::kLe:
      case BinOp::kGt:
      case BinOp::kGe:
        for (size_t r = 0; r < n; ++r) {
          int64_t x = IntAt(a, r), y = IntAt(b, r);
          bool keep = false;
          switch (bop) {
            case BinOp::kEq: keep = x == y; break;
            case BinOp::kNe: keep = x != y; break;
            case BinOp::kLt: keep = x < y; break;
            case BinOp::kLe: keep = x <= y; break;
            case BinOp::kGt: keep = x > y; break;
            default: keep = x >= y; break;
          }
          out.temp.tags[r] = kTagInt;
          out.temp.bits[r] = keep ? 1 : 0;
        }
        return out;
      case BinOp::kAnd:
        for (size_t r = 0; r < n; ++r) {
          out.temp.tags[r] = kTagInt;
          out.temp.bits[r] = (IntAt(a, r) != 0 && IntAt(b, r) != 0) ? 1 : 0;
        }
        return out;
      case BinOp::kOr:
        for (size_t r = 0; r < n; ++r) {
          out.temp.tags[r] = kTagInt;
          out.temp.bits[r] = (IntAt(a, r) != 0 || IntAt(b, r) != 0) ? 1 : 0;
        }
        return out;
    }
  }
  // General path: per-row scalar evaluation with the shared primitives —
  // byte-identical semantics with BoundExpr::Eval by construction.
  for (size_t r = 0; r < n; ++r) {
    SQ_ASSIGN_OR_RETURN(
        Value v, EvalBinaryValue(bop, ValueOf(a, batch, r),
                                 ValueOf(b, batch, r)));
    WriteTemp(&out, r, v);
  }
  return out;
}

Result<VOp> ExecUnary(UnOp uop, const VOp& a, const ColumnBatch& batch) {
  if (a.kind == VOp::kConst) {
    SQ_ASSIGN_OR_RETURN(Value r, EvalUnaryValue(uop, a.cval));
    return MakeConst(std::move(r));
  }
  const size_t n = batch.rows();
  VOp out = MakeTemp(n);
  if (AllInt(a)) {
    if (uop == UnOp::kNeg) {
      for (size_t r = 0; r < n; ++r) {
        out.temp.tags[r] = kTagInt;
        out.temp.bits[r] = 0u - static_cast<uint64_t>(IntAt(a, r));
      }
    } else {
      for (size_t r = 0; r < n; ++r) {
        out.temp.tags[r] = kTagInt;
        out.temp.bits[r] = IntAt(a, r) == 0 ? 1 : 0;
      }
    }
    return out;
  }
  for (size_t r = 0; r < n; ++r) {
    SQ_ASSIGN_OR_RETURN(Value v, EvalUnaryValue(uop, ValueOf(a, batch, r)));
    WriteTemp(&out, r, v);
  }
  return out;
}

/// Truthiness of a cell per ValueTruthy.
bool CellTruthy(const VOp& op, const ColumnBatch& batch, size_t r) {
  const Column* c = op.kind == VOp::kRef ? op.col : &op.temp;
  switch (c->tags[r]) {
    case kTagNull:
      return false;
    case kTagInt:
      return c->bits[r] != 0;
    case kTagDouble:
      return BitsDouble(c->bits[r]) != 0.0;
    default:
      return !batch.arena()->Get(static_cast<uint32_t>(c->bits[r])).empty();
  }
}

}  // namespace

Result<std::vector<uint32_t>> EvalPredicate(const BoundExpr& expr,
                                            const ColumnBatch& batch) {
  std::vector<VOp> stack;
  stack.reserve(8);
  for (const BoundExpr::Instr& in : expr.code()) {
    switch (in.op) {
      case BoundExpr::Instr::Op::kPushConst:
        stack.push_back(MakeConst(in.constant));
        break;
      case BoundExpr::Instr::Op::kPushAttr: {
        if (in.attr_index >= batch.cols()) {
          return Status::Internal("bound attribute index out of range");
        }
        VOp op;
        op.kind = VOp::kRef;
        op.col = &batch.column(in.attr_index);
        stack.push_back(std::move(op));
        break;
      }
      case BoundExpr::Instr::Op::kBinary: {
        VOp b = std::move(stack.back());
        stack.pop_back();
        VOp a = std::move(stack.back());
        stack.pop_back();
        SQ_ASSIGN_OR_RETURN(VOp r, ExecBinary(in.bin_op, a, b, batch));
        stack.push_back(std::move(r));
        break;
      }
      case BoundExpr::Instr::Op::kUnary: {
        VOp a = std::move(stack.back());
        stack.pop_back();
        SQ_ASSIGN_OR_RETURN(VOp r, ExecUnary(in.un_op, a, batch));
        stack.push_back(std::move(r));
        break;
      }
    }
  }
  if (stack.size() != 1) return Status::Internal("bad expression stack");
  const VOp& top = stack.back();
  std::vector<uint32_t> sel;
  const size_t n = batch.rows();
  if (top.kind == VOp::kConst) {
    if (ValueTruthy(top.cval)) {
      sel.resize(n);
      for (size_t r = 0; r < n; ++r) sel[r] = static_cast<uint32_t>(r);
    }
    return sel;
  }
  sel.reserve(n);
  for (size_t r = 0; r < n; ++r) {
    if ((r & (kCancelCheckRows - 1)) == 0) SQ_RETURN_IF_ERROR(CheckCancel());
    if (CellTruthy(top, batch, r)) sel.push_back(static_cast<uint32_t>(r));
  }
  return sel;
}

// ---------------------------------------------------------------------------
// Operator kernels
// ---------------------------------------------------------------------------

namespace {

/// Distinct attribute positions the program references, sorted.
std::vector<size_t> ReferencedCols(const BoundExpr& expr) {
  std::vector<size_t> out;
  for (const auto& in : expr.code()) {
    if (in.op == BoundExpr::Instr::Op::kPushAttr) {
      out.push_back(in.attr_index);
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace

Result<Relation> Select(const Relation& in, const Expr::Ptr& cond) {
  Expr::Ptr c = cond ? cond : Expr::True();
  SQ_ASSIGN_OR_RETURN(BoundExpr bound, BoundExpr::Bind(c, in.schema()));
  std::vector<size_t> needed = ReferencedCols(bound);
  ColumnBatch batch(in.schema());
  std::vector<const Tuple*> src;
  src.reserve(in.DistinctSize());
  in.ForEach([&](const Tuple& t, int64_t count) {
    batch.AppendRow(t, count, &needed);
    src.push_back(&t);
  });
  SQ_ASSIGN_OR_RETURN(std::vector<uint32_t> sel, EvalPredicate(bound, batch));
  Relation out(in.schema(), in.semantics());
  for (uint32_t r : sel) {
    SQ_RETURN_IF_ERROR(out.Insert(*src[r], batch.counts()[r]));
  }
  return out;
}

Result<Relation> Project(const Relation& in,
                         const std::vector<std::string>& attrs,
                         Semantics out_semantics) {
  SQ_ASSIGN_OR_RETURN(Schema out_schema, in.schema().Project(attrs));
  std::vector<size_t> positions;
  positions.reserve(attrs.size());
  for (const auto& a : attrs) positions.push_back(*in.schema().IndexOf(a));
  ColumnBatch batch = ColumnBatch::FromRelation(in, &positions);
  return batch.ProjectColumns(positions, std::move(out_schema))
      .ToRelation(out_semantics);
}

Result<Delta> SelectDelta(const Delta& delta, const Expr::Ptr& cond) {
  Expr::Ptr c = cond ? cond : Expr::True();
  SQ_ASSIGN_OR_RETURN(BoundExpr bound, BoundExpr::Bind(c, delta.schema()));
  std::vector<size_t> needed = ReferencedCols(bound);
  ColumnBatch batch(delta.schema());
  std::vector<const Tuple*> src;
  src.reserve(delta.AtomCount());
  delta.ForEach([&](const Tuple& t, int64_t count) {
    batch.AppendRow(t, count, &needed);
    src.push_back(&t);
  });
  SQ_ASSIGN_OR_RETURN(std::vector<uint32_t> sel, EvalPredicate(bound, batch));
  Delta out(delta.schema());
  for (uint32_t r : sel) {
    SQ_RETURN_IF_ERROR(out.Add(*src[r], batch.counts()[r]));
  }
  return out;
}

Result<Delta> ProjectDelta(const Delta& delta,
                           const std::vector<std::string>& attrs) {
  SQ_ASSIGN_OR_RETURN(Schema out_schema, delta.schema().Project(attrs));
  std::vector<size_t> positions;
  positions.reserve(attrs.size());
  for (const auto& a : attrs) positions.push_back(*delta.schema().IndexOf(a));
  ColumnBatch batch = ColumnBatch::FromDelta(delta, &positions);
  return batch.ProjectColumns(positions, std::move(out_schema)).ToDelta();
}

namespace {

/// Shared core of the two join kernels: a packed-key table over the build
/// side, a tight probe loop, a vectorized residual over the gathered match
/// pairs, then emission through an \p emit callback.
struct JoinSide {
  const Schema* schema;
  std::vector<size_t> key_pos;        // equi key columns in schema order
  std::vector<size_t> batch_cols;     // key + residual columns to build
  ColumnBatch batch;
  std::vector<const Tuple*> src;
};

/// Fills \p side's batch (key + residual columns) from \p fill, which calls
/// its argument once per (tuple, count).
void FillSide(
    JoinSide* side, size_t reserve,
    const std::function<void(
        const std::function<void(const Tuple&, int64_t)>&)>& fill,
    std::shared_ptr<StringArena> arena) {
  side->batch = ColumnBatch(*side->schema, std::move(arena));
  side->src.reserve(reserve);
  fill([&](const Tuple& t, int64_t count) {
    side->batch.AppendRow(t, count, &side->batch_cols);
    side->src.push_back(&t);
  });
}

/// Column positions (within \p schema) that \p bound references on the
/// given half of the concatenated join schema, merged with \p key_pos.
std::vector<size_t> SideCols(const BoundExpr& bound, size_t offset,
                             size_t width, const std::vector<size_t>& key_pos,
                             bool has_residual) {
  std::vector<size_t> cols = key_pos;
  if (has_residual) {
    for (const auto& in : bound.code()) {
      if (in.op != BoundExpr::Instr::Op::kPushAttr) continue;
      if (in.attr_index >= offset && in.attr_index < offset + width) {
        cols.push_back(in.attr_index - offset);
      }
    }
  }
  std::sort(cols.begin(), cols.end());
  cols.erase(std::unique(cols.begin(), cols.end()), cols.end());
  return cols;
}

struct MatchPairs {
  std::vector<uint32_t> build_rows;
  std::vector<uint32_t> probe_rows;
};

/// Builds the table over \p build, probes with \p probe, and returns the
/// matching (build row, probe row) pairs after the vectorized residual.
Result<MatchPairs> HashJoinPairs(const JoinSide& build, const JoinSide& probe,
                                 bool build_is_left, const Schema& out_schema,
                                 const BoundExpr& residual,
                                 bool has_residual) {
  PackedJoinTable table(build.key_pos.size());
  for (size_t r = 0; r < build.batch.rows(); ++r) {
    table.AddBuildBatchRow(build.batch, build.key_pos, r);
  }
  table.Finalize();
  MatchPairs pairs;
  for (size_t r = 0; r < probe.batch.rows(); ++r) {
    if ((r & (kCancelCheckRows - 1)) == 0) SQ_RETURN_IF_ERROR(CheckCancel());
    for (int32_t m = table.ProbeBatchRow(probe.batch, probe.key_pos, r);
         m >= 0; m = table.NextInChain(m)) {
      pairs.build_rows.push_back(static_cast<uint32_t>(m));
      pairs.probe_rows.push_back(static_cast<uint32_t>(r));
    }
  }
  if (!has_residual || pairs.build_rows.empty()) return pairs;

  // Vectorized residual: gather the referenced columns of the concatenated
  // schema from the two sides (they share one arena, so string ids agree).
  const JoinSide& left = build_is_left ? build : probe;
  const JoinSide& right = build_is_left ? probe : build;
  const std::vector<uint32_t>& lrows =
      build_is_left ? pairs.build_rows : pairs.probe_rows;
  const std::vector<uint32_t>& rrows =
      build_is_left ? pairs.probe_rows : pairs.build_rows;
  ColumnBatch joined(out_schema, left.batch.arena_ptr());
  joined.SetRowCount(lrows.size());
  {
    ColumnBatch lg = left.batch.GatherRows(lrows);
    ColumnBatch rg = right.batch.GatherRows(rrows);
    // Stitch the gathered columns into the concatenated layout (unbuilt
    // columns stay empty; the residual never references them).
    for (size_t c = 0; c < left.schema->size(); ++c) {
      *joined.MutableColumn(c) = std::move(*lg.MutableColumn(c));
    }
    for (size_t c = 0; c < right.schema->size(); ++c) {
      *joined.MutableColumn(left.schema->size() + c) =
          std::move(*rg.MutableColumn(c));
    }
  }
  SQ_ASSIGN_OR_RETURN(std::vector<uint32_t> keep,
                      EvalPredicate(residual, joined));
  MatchPairs filtered;
  filtered.build_rows.reserve(keep.size());
  filtered.probe_rows.reserve(keep.size());
  for (uint32_t k : keep) {
    filtered.build_rows.push_back(pairs.build_rows[k]);
    filtered.probe_rows.push_back(pairs.probe_rows[k]);
  }
  return filtered;
}

}  // namespace

Result<Relation> Join(const Relation& left, const Relation& right,
                      const Expr::Ptr& cond) {
  SQ_ASSIGN_OR_RETURN(Schema out_schema, left.schema().Concat(right.schema()));
  Expr::Ptr c = cond ? cond : Expr::True();
  JoinConditionParts parts =
      SplitJoinCondition(c, left.schema(), right.schema());
  if (parts.equi.empty()) {
    return Status::Internal("columnar join requires an equi conjunct");
  }
  BoundExpr residual;
  bool has_residual = !parts.residual->IsTrueLiteral();
  if (has_residual) {
    SQ_ASSIGN_OR_RETURN(residual, BoundExpr::Bind(parts.residual, out_schema));
  }
  // Same build-side policy as the row kernel.
  bool build_left = left.TotalSize() != right.TotalSize()
                        ? left.TotalSize() < right.TotalSize()
                        : left.DistinctSize() <= right.DistinctSize();
  JoinSide lside, rside;
  lside.schema = &left.schema();
  rside.schema = &right.schema();
  for (const auto& p : parts.equi) {
    lside.key_pos.push_back(*left.schema().IndexOf(p.left_attr));
    rside.key_pos.push_back(*right.schema().IndexOf(p.right_attr));
  }
  lside.batch_cols =
      SideCols(residual, 0, left.schema().size(), lside.key_pos, has_residual);
  rside.batch_cols = SideCols(residual, left.schema().size(),
                              right.schema().size(), rside.key_pos,
                              has_residual);
  auto arena = std::make_shared<StringArena>();
  FillSide(&lside, left.DistinctSize(),
           [&](const std::function<void(const Tuple&, int64_t)>& fn) {
             left.ForEach(fn);
           },
           arena);
  FillSide(&rside, right.DistinctSize(),
           [&](const std::function<void(const Tuple&, int64_t)>& fn) {
             right.ForEach(fn);
           },
           arena);
  const JoinSide& build = build_left ? lside : rside;
  const JoinSide& probe = build_left ? rside : lside;
  SQ_ASSIGN_OR_RETURN(
      MatchPairs pairs,
      HashJoinPairs(build, probe, build_left, out_schema, residual,
                    has_residual));
  Semantics out_sem = (left.semantics() == Semantics::kBag ||
                       right.semantics() == Semantics::kBag)
                          ? Semantics::kBag
                          : Semantics::kSet;
  Relation out(std::move(out_schema), out_sem);
  for (size_t i = 0; i < pairs.build_rows.size(); ++i) {
    if ((i & (kCancelCheckRows - 1)) == 0) SQ_RETURN_IF_ERROR(CheckCancel());
    uint32_t br = pairs.build_rows[i], pr = pairs.probe_rows[i];
    const Tuple& lt = build_left ? *build.src[br] : *probe.src[pr];
    const Tuple& rt = build_left ? *probe.src[pr] : *build.src[br];
    int64_t count = build.batch.counts()[br] * probe.batch.counts()[pr];
    SQ_RETURN_IF_ERROR(out.Insert(lt.Concat(rt), count));
  }
  return out;
}

Result<Delta> JoinDeltaRelation(const Delta& delta, const Relation& rel,
                                const Expr::Ptr& cond, bool delta_left) {
  const Schema& ls = delta_left ? delta.schema() : rel.schema();
  const Schema& rs = delta_left ? rel.schema() : delta.schema();
  SQ_ASSIGN_OR_RETURN(Schema out_schema, ls.Concat(rs));
  Expr::Ptr c = cond ? cond : Expr::True();
  JoinConditionParts parts = SplitJoinCondition(c, ls, rs);
  if (parts.equi.empty()) {
    return Status::Internal("columnar delta join requires an equi conjunct");
  }
  // Unlike OpJoin, the row kernel re-evaluates the FULL condition (equi
  // conjuncts included) on every joined tuple when it is not the literal
  // true — which drops NULL-keyed matches (NULL = NULL is not truthy).
  // Mirror that exactly.
  BoundExpr residual;
  bool has_residual = !c->IsTrueLiteral();
  if (has_residual) {
    SQ_ASSIGN_OR_RETURN(residual, BoundExpr::Bind(c, out_schema));
  }
  JoinSide dside, relside;
  dside.schema = &delta.schema();
  relside.schema = &rel.schema();
  for (const auto& p : parts.equi) {
    const std::string& in_delta = delta_left ? p.left_attr : p.right_attr;
    const std::string& in_rel = delta_left ? p.right_attr : p.left_attr;
    dside.key_pos.push_back(*delta.schema().IndexOf(in_delta));
    relside.key_pos.push_back(*rel.schema().IndexOf(in_rel));
  }
  size_t delta_off = delta_left ? 0 : rel.schema().size();
  size_t rel_off = delta_left ? delta.schema().size() : 0;
  dside.batch_cols = SideCols(residual, delta_off, delta.schema().size(),
                              dside.key_pos, has_residual);
  relside.batch_cols = SideCols(residual, rel_off, rel.schema().size(),
                                relside.key_pos, has_residual);
  auto arena = std::make_shared<StringArena>();
  FillSide(&dside, delta.AtomCount(),
           [&](const std::function<void(const Tuple&, int64_t)>& fn) {
             delta.ForEach(fn);
           },
           arena);
  FillSide(&relside, rel.DistinctSize(),
           [&](const std::function<void(const Tuple&, int64_t)>& fn) {
             rel.ForEach(fn);
           },
           arena);
  // Like the row kernel: build over the relation, probe with the delta.
  SQ_ASSIGN_OR_RETURN(
      MatchPairs pairs,
      HashJoinPairs(relside, dside, /*build_is_left=*/!delta_left, out_schema,
                    residual, has_residual));
  Delta out(std::move(out_schema));
  for (size_t i = 0; i < pairs.build_rows.size(); ++i) {
    if ((i & (kCancelCheckRows - 1)) == 0) SQ_RETURN_IF_ERROR(CheckCancel());
    const Tuple& rt = *relside.src[pairs.build_rows[i]];
    const Tuple& dt = *dside.src[pairs.probe_rows[i]];
    int64_t count = relside.batch.counts()[pairs.build_rows[i]] *
                    dside.batch.counts()[pairs.probe_rows[i]];
    SQ_RETURN_IF_ERROR(
        out.Add(delta_left ? dt.Concat(rt) : rt.Concat(dt), count));
  }
  return out;
}

Result<Delta> Between(const Relation& from, const Relation& to) {
  if (from.schema().AttributeNames() != to.schema().AttributeNames()) {
    return Status::InvalidArgument(
        "Delta::Between on relations with different schemas");
  }
  std::vector<size_t> all_pos(from.schema().size());
  for (size_t i = 0; i < all_pos.size(); ++i) all_pos[i] = i;
  PackedJoinTable table(all_pos.size());
  std::vector<const Tuple*> fsrc;
  std::vector<int64_t> fcounts;
  fsrc.reserve(from.DistinctSize());
  fcounts.reserve(from.DistinctSize());
  from.ForEach([&](const Tuple& t, int64_t count) {
    table.AddBuildRow(t, all_pos);
    fsrc.push_back(&t);
    fcounts.push_back(count);
  });
  table.Finalize();
  std::vector<char> matched(fsrc.size(), 0);
  Delta out(to.schema());
  Status st = Status::OK();
  size_t probe_row = 0;
  to.ForEach([&](const Tuple& t, int64_t count) {
    if (!st.ok()) return;
    if ((probe_row++ & (kCancelCheckRows - 1)) == 0) {
      st = CheckCancel();
      if (!st.ok()) return;
    }
    int32_t m = table.ProbeRow(t, all_pos);
    if (m < 0) {
      st = out.Add(t, count);
      return;
    }
    // Full-row keys are unique within a relation: chain length is 1.
    matched[m] = 1;
    st = out.Add(t, count - fcounts[m]);
  });
  SQ_RETURN_IF_ERROR(st);
  for (size_t i = 0; i < fsrc.size(); ++i) {
    if (!matched[i]) SQ_RETURN_IF_ERROR(out.Add(*fsrc[i], -fcounts[i]));
  }
  return out;
}

}  // namespace columnar
}  // namespace squirrel
