// Typed scalar values used in tuples and expressions.

#ifndef SQUIRREL_RELATIONAL_VALUE_H_
#define SQUIRREL_RELATIONAL_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "common/status.h"

namespace squirrel {

/// Scalar types supported by the engine.
enum class ValueType { kNull = 0, kInt = 1, kDouble = 2, kString = 3 };

/// Name of a value type, e.g. "int".
const char* ValueTypeName(ValueType type);

/// \brief A dynamically typed scalar: null, 64-bit int, double, or string.
///
/// Values order null < int/double (numerically, cross-type) < string, which
/// gives relations a deterministic sort order for printing and testing.
class Value {
 public:
  /// Null value.
  Value() : var_(std::monostate{}) {}
  /// Integer value.
  Value(int64_t v) : var_(v) {}  // NOLINT(google-explicit-constructor)
  /// Integer value (convenience for literals).
  Value(int v) : var_(static_cast<int64_t>(v)) {}  // NOLINT
  /// Double value.
  Value(double v) : var_(v) {}  // NOLINT
  /// String value.
  Value(std::string v) : var_(std::move(v)) {}  // NOLINT
  /// String value from a C literal.
  Value(const char* v) : var_(std::string(v)) {}  // NOLINT

  /// The dynamic type of this value.
  ValueType type() const;

  /// True iff this value is null.
  bool is_null() const { return type() == ValueType::kNull; }

  /// The held integer; must hold kInt.
  int64_t AsInt() const { return std::get<int64_t>(var_); }
  /// The held double; must hold kDouble.
  double AsDouble() const { return std::get<double>(var_); }
  /// The held string; must hold kString.
  const std::string& AsString() const { return std::get<std::string>(var_); }

  /// Numeric view: ints and doubles as double. Must be numeric.
  double AsNumeric() const;
  /// True iff the value is kInt or kDouble.
  bool is_numeric() const {
    return type() == ValueType::kInt || type() == ValueType::kDouble;
  }

  /// Renders the value for display ("NULL", "42", "3.5", "'abc'").
  std::string ToString() const;

  /// Total order over all values (null < numerics < strings; numerics
  /// compare cross-type by numeric value, ties broken int < double).
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator!=(const Value& other) const { return Compare(other) != 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }

  /// 64-bit hash consistent with operator== (cross-type numeric equality
  /// hashes integral doubles like their int counterparts).
  uint64_t Hash() const;

 private:
  std::variant<std::monostate, int64_t, double, std::string> var_;
};

}  // namespace squirrel

#endif  // SQUIRREL_RELATIONAL_VALUE_H_
