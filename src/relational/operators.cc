#include "relational/operators.h"

#include <algorithm>
#include <memory>

#include "relational/columnar.h"

namespace squirrel {

Result<Relation> OpSelect(const Relation& in, const Expr::Ptr& cond) {
  if (columnar::ShouldUse(in.DistinctSize())) {
    return columnar::Select(in, cond);
  }
  Expr::Ptr c = cond ? cond : Expr::True();
  SQ_ASSIGN_OR_RETURN(BoundExpr bound, BoundExpr::Bind(c, in.schema()));
  Relation out(in.schema(), in.semantics());
  Status st = Status::OK();
  in.ForEach([&](const Tuple& t, int64_t count) {
    if (!st.ok()) return;
    auto keep = bound.EvalBool(t);
    if (!keep.ok()) {
      st = keep.status();
      return;
    }
    if (*keep) st = out.Insert(t, count);
  });
  if (!st.ok()) return st;
  return out;
}

Result<Relation> OpProject(const Relation& in,
                           const std::vector<std::string>& attrs,
                           Semantics out_semantics) {
  if (columnar::ShouldUse(in.DistinctSize())) {
    return columnar::Project(in, attrs, out_semantics);
  }
  SQ_ASSIGN_OR_RETURN(Schema out_schema, in.schema().Project(attrs));
  std::vector<size_t> positions;
  positions.reserve(attrs.size());
  for (const auto& a : attrs) positions.push_back(*in.schema().IndexOf(a));
  Relation out(std::move(out_schema), out_semantics);
  Status st = Status::OK();
  in.ForEach([&](const Tuple& t, int64_t count) {
    if (!st.ok()) return;
    st = out.Insert(t.Project(positions), count);
  });
  if (!st.ok()) return st;
  return out;
}

namespace {

/// True iff \p index was built on a relation with \p schema's attributes
/// and its indexed attr set equals the side's equi-conjunct attrs. On
/// success fills \p probe_pos with the positions (in the *other* side's
/// schema) producing probe keys in the index's attribute order.
bool IndexCoversEqui(const HashIndex* index, const Schema& schema,
                     const Schema& other_schema,
                     const std::vector<EquiJoinPair>& equi, bool index_is_right,
                     std::vector<size_t>* probe_pos) {
  if (index == nullptr || equi.empty()) return false;
  if (index->relation_attrs() != schema.AttributeNames()) return false;
  if (index->attrs().size() != equi.size()) return false;
  probe_pos->clear();
  probe_pos->reserve(equi.size());
  for (const auto& indexed_attr : index->attrs()) {
    bool found = false;
    for (const auto& p : equi) {
      const std::string& own = index_is_right ? p.right_attr : p.left_attr;
      const std::string& other = index_is_right ? p.left_attr : p.right_attr;
      if (own == indexed_attr) {
        probe_pos->push_back(*other_schema.IndexOf(other));
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  return true;
}

}  // namespace

Result<Relation> OpJoin(const Relation& left, const Relation& right,
                        const Expr::Ptr& cond) {
  return OpJoin(left, right, cond, JoinIndexHint{});
}

Result<Relation> OpJoin(const Relation& left, const Relation& right,
                        const Expr::Ptr& cond, const JoinIndexHint& hint) {
  SQ_ASSIGN_OR_RETURN(Schema out_schema,
                      left.schema().Concat(right.schema()));
  Expr::Ptr c = cond ? cond : Expr::True();
  JoinConditionParts parts =
      SplitJoinCondition(c, left.schema(), right.schema());

  BoundExpr residual;
  bool has_residual = !parts.residual->IsTrueLiteral();
  if (has_residual) {
    SQ_ASSIGN_OR_RETURN(residual, BoundExpr::Bind(parts.residual, out_schema));
  }

  Semantics out_sem = (left.semantics() == Semantics::kBag ||
                       right.semantics() == Semantics::kBag)
                          ? Semantics::kBag
                          : Semantics::kSet;
  Relation out(std::move(out_schema), out_sem);
  Status st = Status::OK();

  auto emit = [&](const Tuple& lt, int64_t lc, const Tuple& rt, int64_t rc) {
    if (!st.ok()) return;
    Tuple joined = lt.Concat(rt);
    if (has_residual) {
      auto keep = residual.EvalBool(joined);
      if (!keep.ok()) {
        st = keep.status();
        return;
      }
      if (!*keep) return;
    }
    st = out.Insert(std::move(joined), lc * rc);
  };

  std::vector<size_t> index_probe_pos;
  if (IndexCoversEqui(hint.right, right.schema(), left.schema(), parts.equi,
                      /*index_is_right=*/true, &index_probe_pos)) {
    left.ForEach([&](const Tuple& lt, int64_t lc) {
      if (!st.ok()) return;
      for (const auto& [rt, rc] : hint.right->Probe(
               lt.Project(index_probe_pos))) {
        emit(lt, lc, rt, rc);
      }
    });
  } else if (IndexCoversEqui(hint.left, left.schema(), right.schema(),
                             parts.equi, /*index_is_right=*/false,
                             &index_probe_pos)) {
    right.ForEach([&](const Tuple& rt, int64_t rc) {
      if (!st.ok()) return;
      for (const auto& [lt, lc] : hint.left->Probe(
               rt.Project(index_probe_pos))) {
        emit(lt, lc, rt, rc);
      }
    });
  } else if (!parts.equi.empty()) {
    if (columnar::ShouldUse(
            std::max(left.DistinctSize(), right.DistinctSize()))) {
      return columnar::Join(left, right, c);
    }
    // Hash join: build on the side with the smaller total (bag) size —
    // under bag semantics DistinctSize alone mis-ranks a side with few
    // distinct rows but huge multiplicities. Break ties on distinct size.
    bool build_left =
        left.TotalSize() != right.TotalSize()
            ? left.TotalSize() < right.TotalSize()
            : left.DistinctSize() <= right.DistinctSize();
    const Relation& build = build_left ? left : right;
    const Relation& probe = build_left ? right : left;
    std::vector<size_t> build_pos, probe_pos;
    for (const auto& p : parts.equi) {
      size_t li = *left.schema().IndexOf(p.left_attr);
      size_t ri = *right.schema().IndexOf(p.right_attr);
      build_pos.push_back(build_left ? li : ri);
      probe_pos.push_back(build_left ? ri : li);
    }
    // Packed-key table: key strings are interned once into the table's
    // arena and each probe packs into scratch space, so the loop below
    // allocates no per-row key Tuples.
    columnar::PackedJoinTable table(parts.equi.size());
    std::vector<const Tuple*> build_rows;
    std::vector<int64_t> build_counts;
    build_rows.reserve(build.DistinctSize());
    build_counts.reserve(build.DistinctSize());
    build.ForEach([&](const Tuple& t, int64_t count) {
      table.AddBuildRow(t, build_pos);
      build_rows.push_back(&t);
      build_counts.push_back(count);
    });
    table.Finalize();
    probe.ForEach([&](const Tuple& t, int64_t count) {
      if (!st.ok()) return;
      for (int32_t r = table.ProbeRow(t, probe_pos); r >= 0;
           r = table.NextInChain(r)) {
        if (build_left) {
          emit(*build_rows[r], build_counts[r], t, count);
        } else {
          emit(t, count, *build_rows[r], build_counts[r]);
        }
      }
    });
  } else {
    // Nested loop for pure theta joins (e.g. Example 5.1's a1²+a2 < b2²).
    left.ForEach([&](const Tuple& lt, int64_t lc) {
      if (!st.ok()) return;
      right.ForEach([&](const Tuple& rt, int64_t rc) {
        emit(lt, lc, rt, rc);
      });
    });
  }
  if (!st.ok()) return st;
  return out;
}

namespace {

Status CheckUnionCompatible(const Schema& a, const Schema& b) {
  if (a.attrs().size() != b.attrs().size()) {
    return Status::InvalidArgument("union of schemas with different arity");
  }
  for (size_t i = 0; i < a.attrs().size(); ++i) {
    if (a.attr(i).name != b.attr(i).name) {
      return Status::InvalidArgument(
          "union of schemas with different attributes: " + a.attr(i).name +
          " vs " + b.attr(i).name);
    }
  }
  return Status::OK();
}

}  // namespace

Result<Relation> OpUnion(const Relation& left, const Relation& right,
                         Semantics out_semantics) {
  SQ_RETURN_IF_ERROR(CheckUnionCompatible(left.schema(), right.schema()));
  Relation out(left.schema(), out_semantics);
  Status st = Status::OK();
  left.ForEach([&](const Tuple& t, int64_t c) {
    if (st.ok()) st = out.Insert(t, c);
  });
  right.ForEach([&](const Tuple& t, int64_t c) {
    if (st.ok()) st = out.Insert(t, c);
  });
  if (!st.ok()) return st;
  return out;
}

Result<Relation> OpDiff(const Relation& left, const Relation& right) {
  SQ_RETURN_IF_ERROR(CheckUnionCompatible(left.schema(), right.schema()));
  Relation out(left.schema(), Semantics::kSet);
  Status st = Status::OK();
  left.ForEach([&](const Tuple& t, int64_t c) {
    (void)c;
    if (st.ok() && !right.Contains(t)) st = out.Insert(t);
  });
  if (!st.ok()) return st;
  return out;
}

Result<Relation> OpRename(
    const Relation& in,
    const std::unordered_map<std::string, std::string>& renames) {
  std::vector<Attribute> attrs;
  for (const auto& a : in.schema().attrs()) {
    auto it = renames.find(a.name);
    attrs.push_back({it == renames.end() ? a.name : it->second, a.type});
  }
  std::vector<std::string> key;
  for (const auto& k : in.schema().key()) {
    auto it = renames.find(k);
    key.push_back(it == renames.end() ? k : it->second);
  }
  Schema schema(std::move(attrs), std::move(key));
  SQ_RETURN_IF_ERROR(schema.Validate());
  Relation out(std::move(schema), in.semantics());
  Status st = Status::OK();
  in.ForEach([&](const Tuple& t, int64_t c) {
    if (st.ok()) st = out.Insert(t, c);
  });
  if (!st.ok()) return st;
  return out;
}

void Catalog::Register(const std::string& name, const Relation* rel) {
  rels_[name] = rel;
}

Result<const Relation*> Catalog::Lookup(const std::string& name) const {
  auto it = rels_.find(name);
  if (it == rels_.end()) {
    return Status::NotFound("relation not in catalog: " + name);
  }
  return it->second;
}

Result<Schema> InferSchema(const AlgebraExpr::Ptr& expr,
                           const SchemaLookup& lookup) {
  if (!expr) return Status::InvalidArgument("null algebra expression");
  switch (expr->kind()) {
    case AlgebraExpr::Kind::kScan:
      return lookup(expr->relation());
    case AlgebraExpr::Kind::kSelect:
      return InferSchema(expr->left(), lookup);
    case AlgebraExpr::Kind::kProject: {
      SQ_ASSIGN_OR_RETURN(Schema child, InferSchema(expr->left(), lookup));
      return child.Project(expr->attrs());
    }
    case AlgebraExpr::Kind::kJoin: {
      SQ_ASSIGN_OR_RETURN(Schema l, InferSchema(expr->left(), lookup));
      SQ_ASSIGN_OR_RETURN(Schema r, InferSchema(expr->right(), lookup));
      return l.Concat(r);
    }
    case AlgebraExpr::Kind::kUnion:
    case AlgebraExpr::Kind::kDiff: {
      SQ_ASSIGN_OR_RETURN(Schema l, InferSchema(expr->left(), lookup));
      SQ_ASSIGN_OR_RETURN(Schema r, InferSchema(expr->right(), lookup));
      SQ_RETURN_IF_ERROR(CheckUnionCompatible(l, r));
      return l;
    }
  }
  return Status::Internal("unknown algebra node kind");
}

namespace {

Result<Relation> EvalOwned(const AlgebraExpr::Ptr& expr,
                           const Catalog& catalog);

/// Evaluates \p expr, borrowing catalog relations for scans instead of
/// copying them: a scan yields a non-owning alias whose lifetime is tied to
/// the catalog, every other node owns its (freshly computed) result.
Result<std::shared_ptr<const Relation>> EvalShared(const AlgebraExpr::Ptr& expr,
                                                   const Catalog& catalog) {
  if (!expr) return Status::InvalidArgument("null algebra expression");
  if (expr->kind() == AlgebraExpr::Kind::kScan) {
    SQ_ASSIGN_OR_RETURN(const Relation* rel, catalog.Lookup(expr->relation()));
    return std::shared_ptr<const Relation>(std::shared_ptr<void>(), rel);
  }
  SQ_ASSIGN_OR_RETURN(Relation owned, EvalOwned(expr, catalog));
  return std::shared_ptr<const Relation>(
      std::make_shared<Relation>(std::move(owned)));
}

Result<Relation> EvalOwned(const AlgebraExpr::Ptr& expr,
                           const Catalog& catalog) {
  if (!expr) return Status::InvalidArgument("null algebra expression");
  switch (expr->kind()) {
    case AlgebraExpr::Kind::kScan: {
      // Only reachable when a scan is the evaluation root; interior scans go
      // through EvalShared and stay borrowed.
      SQ_ASSIGN_OR_RETURN(const Relation* rel,
                          catalog.Lookup(expr->relation()));
      return *rel;
    }
    case AlgebraExpr::Kind::kSelect: {
      SQ_ASSIGN_OR_RETURN(auto child, EvalShared(expr->left(), catalog));
      return OpSelect(*child, expr->condition());
    }
    case AlgebraExpr::Kind::kProject: {
      SQ_ASSIGN_OR_RETURN(auto child, EvalShared(expr->left(), catalog));
      return OpProject(*child, expr->attrs(), Semantics::kBag);
    }
    case AlgebraExpr::Kind::kJoin: {
      SQ_ASSIGN_OR_RETURN(auto l, EvalShared(expr->left(), catalog));
      SQ_ASSIGN_OR_RETURN(auto r, EvalShared(expr->right(), catalog));
      return OpJoin(*l, *r, expr->condition());
    }
    case AlgebraExpr::Kind::kUnion: {
      SQ_ASSIGN_OR_RETURN(auto l, EvalShared(expr->left(), catalog));
      SQ_ASSIGN_OR_RETURN(auto r, EvalShared(expr->right(), catalog));
      return OpUnion(*l, *r, Semantics::kBag);
    }
    case AlgebraExpr::Kind::kDiff: {
      SQ_ASSIGN_OR_RETURN(auto l, EvalShared(expr->left(), catalog));
      SQ_ASSIGN_OR_RETURN(auto r, EvalShared(expr->right(), catalog));
      return OpDiff(l->ToSet(), r->ToSet());
    }
  }
  return Status::Internal("unknown algebra node kind");
}

}  // namespace

Result<Relation> EvalAlgebra(const AlgebraExpr::Ptr& expr,
                             const Catalog& catalog) {
  return EvalOwned(expr, catalog);
}

Result<std::shared_ptr<const Relation>> EvalAlgebraShared(
    const AlgebraExpr::Ptr& expr, const Catalog& catalog) {
  return EvalShared(expr, catalog);
}

}  // namespace squirrel
