#include "relational/relation.h"

#include <algorithm>

namespace squirrel {

Status Relation::Insert(const Tuple& tuple, int64_t count) {
  if (count <= 0) {
    return Status::InvalidArgument("insert count must be positive");
  }
  if (tuple.size() != schema_.size()) {
    return Status::InvalidArgument(
        "tuple arity " + std::to_string(tuple.size()) +
        " does not match schema arity " + std::to_string(schema_.size()));
  }
  int64_t& slot = rows_[tuple];
  if (semantics_ == Semantics::kSet) {
    if (slot == 0) {
      slot = 1;
      total_ += 1;
    }
    return Status::OK();
  }
  slot += count;
  total_ += count;
  return Status::OK();
}

Status Relation::Remove(const Tuple& tuple, int64_t count) {
  if (count <= 0) {
    return Status::InvalidArgument("remove count must be positive");
  }
  auto it = rows_.find(tuple);
  if (it == rows_.end()) {
    return Status::FailedPrecondition("removing absent tuple " +
                                      tuple.ToString());
  }
  if (semantics_ == Semantics::kSet) {
    total_ -= 1;
    rows_.erase(it);
    return Status::OK();
  }
  if (it->second < count) {
    return Status::FailedPrecondition(
        "removing " + std::to_string(count) + " copies of " +
        tuple.ToString() + " but only " + std::to_string(it->second) +
        " present");
  }
  it->second -= count;
  total_ -= count;
  if (it->second == 0) rows_.erase(it);
  return Status::OK();
}

Status Relation::Adjust(const Tuple& tuple, int64_t delta) {
  if (delta > 0) return Insert(tuple, delta);
  if (delta < 0) return Remove(tuple, -delta);
  return Status::OK();
}

int64_t Relation::CountOf(const Tuple& tuple) const {
  auto it = rows_.find(tuple);
  return it == rows_.end() ? 0 : it->second;
}

void Relation::Clear() {
  rows_.clear();
  total_ = 0;
}

void Relation::ForEach(
    const std::function<void(const Tuple&, int64_t)>& fn) const {
  for (const auto& [tuple, count] : rows_) fn(tuple, count);
}

std::vector<std::pair<Tuple, int64_t>> Relation::SortedRows() const {
  std::vector<std::pair<Tuple, int64_t>> out(rows_.begin(), rows_.end());
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

bool Relation::EqualContents(const Relation& other) const {
  if (schema_.AttributeNames() != other.schema_.AttributeNames()) return false;
  if (rows_.size() != other.rows_.size()) return false;
  for (const auto& [tuple, count] : rows_) {
    if (other.CountOf(tuple) != count) return false;
  }
  return true;
}

Relation Relation::ToSet() const {
  Relation out(schema_, Semantics::kSet);
  for (const auto& [tuple, count] : rows_) {
    (void)count;
    (void)out.Insert(tuple);
  }
  return out;
}

size_t Relation::ApproxBytes() const {
  size_t per_value = 0;
  for (const auto& a : schema_.attrs()) {
    per_value += a.type == ValueType::kString ? 40 : 16;
  }
  // Hash-map node overhead estimate: bucket pointer + node header + count.
  return rows_.size() * (per_value + 48);
}

std::string Relation::ToString(const std::string& name) const {
  std::string out = schema_.ToString(name);
  out += semantics_ == Semantics::kBag ? " [bag]\n" : " [set]\n";
  for (const auto& [tuple, count] : SortedRows()) {
    out += "  " + tuple.ToString();
    if (count != 1) out += " x" + std::to_string(count);
    out += "\n";
  }
  return out;
}

}  // namespace squirrel
