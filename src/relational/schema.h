// Relation schemas: ordered attribute lists with types and an optional key.

#ifndef SQUIRREL_RELATIONAL_SCHEMA_H_
#define SQUIRREL_RELATIONAL_SCHEMA_H_

#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "relational/value.h"

namespace squirrel {

/// One named, typed column of a relation.
struct Attribute {
  std::string name;
  ValueType type = ValueType::kInt;

  bool operator==(const Attribute& other) const {
    return name == other.name && type == other.type;
  }
};

/// \brief Ordered list of attributes plus an optional (primary) key.
///
/// Attribute names must be unique within a schema. The key, when present, is
/// a subset of the attribute names; keys drive functional-dependency
/// reasoning in the VAP's key-based construction (paper Example 2.3).
class Schema {
 public:
  Schema() = default;
  /// Builds a schema; duplicate names or key attrs not in the schema are an
  /// error surfaced via Validate() (constructor stays cheap and total).
  explicit Schema(std::vector<Attribute> attrs,
                  std::vector<std::string> key = {});

  /// Convenience: all-int attributes named \p names with key \p key.
  static Schema AllInt(const std::vector<std::string>& names,
                       std::vector<std::string> key = {});

  /// Checks name uniqueness and key containment.
  Status Validate() const;

  /// Number of attributes.
  size_t size() const { return attrs_.size(); }
  /// Attribute at position \p i.
  const Attribute& attr(size_t i) const { return attrs_[i]; }
  /// All attributes in order.
  const std::vector<Attribute>& attrs() const { return attrs_; }
  /// All attribute names in order.
  std::vector<std::string> AttributeNames() const;

  /// Position of attribute \p name, or nullopt.
  std::optional<size_t> IndexOf(const std::string& name) const;
  /// True iff the schema has an attribute called \p name.
  bool Contains(const std::string& name) const {
    return IndexOf(name).has_value();
  }
  /// True iff every name in \p names is in the schema.
  bool ContainsAll(const std::vector<std::string>& names) const;

  /// Key attribute names (may be empty = no declared key).
  const std::vector<std::string>& key() const { return key_; }
  /// True iff a key is declared.
  bool HasKey() const { return !key_.empty(); }
  /// True iff \p names is a superset of the declared (non-empty) key.
  bool KeyCoveredBy(const std::vector<std::string>& names) const;

  /// Schema of π_{names}(this); preserves this schema's attribute order?
  /// No — uses the order given in \p names. The key is kept iff covered.
  Result<Schema> Project(const std::vector<std::string>& names) const;

  /// Schema of this ⋈ other (concatenation). Fails on duplicate names.
  /// The key of the result is the union of both keys if both declared.
  Result<Schema> Concat(const Schema& other) const;

  /// Renders e.g. "R(a:int, b:string) key(a)".
  std::string ToString(const std::string& rel_name = "") const;

  bool operator==(const Schema& other) const {
    return attrs_ == other.attrs_ && key_ == other.key_;
  }

 private:
  std::vector<Attribute> attrs_;
  std::vector<std::string> key_;
};

}  // namespace squirrel

#endif  // SQUIRREL_RELATIONAL_SCHEMA_H_
