// Columnar batch execution: vectorized select/project/join kernels.
//
// These kernels compute exactly what the row-at-a-time operators in
// operators.cc / delta_algebra.cc compute — same Relations, same Deltas,
// same error outcomes — but in per-column loops over ColumnBatches:
//  - predicate evaluation interprets the SAME BoundExpr program the scalar
//    evaluator runs, producing a selection vector; all-int operand columns
//    take tight fused loops, everything else falls back per-row to the
//    shared scalar primitives (EvalBinaryValue et al.), so the two modes
//    cannot diverge semantically;
//  - select/project are selection-vector filters and column gathers;
//  - equi joins build a flat open-addressing table over packed, normalized
//    join keys (PackedJoinTable) and probe it in tight loops.
//
// Dispatch: the row operators consult Enabled()/MinRows() (set from
// MediatorOptions::columnar at Mediator::Start, or scoped in tests via
// ScopedColumnarMode) and route large-enough inputs here; small inputs and
// shapes the kernels don't cover (theta joins, index-hinted joins) keep the
// row path, which remains the correctness oracle.

#ifndef SQUIRREL_RELATIONAL_COLUMNAR_H_
#define SQUIRREL_RELATIONAL_COLUMNAR_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "delta/delta.h"
#include "relational/column_batch.h"
#include "relational/expr.h"
#include "relational/relation.h"

namespace squirrel {
namespace columnar {

/// Process-wide switch (default on). Set from MediatorOptions::columnar at
/// Mediator::Start; reads are relaxed atomics, so flipping it concurrently
/// with kernel calls is race-free (runs that compare modes are sequential).
bool Enabled();
void SetEnabled(bool enabled);

/// Inputs with fewer rows than this take the row path even when enabled
/// (batch conversion overhead dominates below it). Tests and sweeps set 0
/// so every operator call exercises the columnar kernels.
size_t MinRows();
void SetMinRows(size_t rows);

/// True iff a kernel over \p rows rows should run columnar.
inline bool ShouldUse(size_t rows) { return Enabled() && rows >= MinRows(); }

/// RAII override of the mode for tests and benchmarks; restores the
/// previous enabled flag and threshold on destruction.
class ScopedColumnarMode {
 public:
  /// \p min_rows < 0 leaves the threshold untouched.
  explicit ScopedColumnarMode(bool enabled, int64_t min_rows = -1);
  ~ScopedColumnarMode();
  ScopedColumnarMode(const ScopedColumnarMode&) = delete;
  ScopedColumnarMode& operator=(const ScopedColumnarMode&) = delete;

 private:
  bool prev_enabled_;
  size_t prev_min_rows_;
};

/// Vectorized predicate evaluation: interprets \p expr's program over
/// \p batch and returns the indices of rows where the result is truthy
/// (ValueTruthy semantics). Rows where evaluation errors propagate the
/// error, like the scalar evaluator.
Result<std::vector<uint32_t>> EvalPredicate(const BoundExpr& expr,
                                            const ColumnBatch& batch);

/// σ_cond(in) — equivalent to OpSelect's row loop.
Result<Relation> Select(const Relation& in, const Expr::Ptr& cond);

/// π_attrs(in) — equivalent to OpProject's row loop.
Result<Relation> Project(const Relation& in,
                         const std::vector<std::string>& attrs,
                         Semantics out_semantics);

/// Equi hash join — equivalent to OpJoin's generic hash path. \p cond must
/// have at least one equi conjunct (callers check via SplitJoinCondition).
Result<Relation> Join(const Relation& left, const Relation& right,
                      const Expr::Ptr& cond);

/// Δ ⋈ R (delta_left) or R ⋈ Δ — equivalent to JoinDeltaWithRelation's
/// hash path (builds over the relation side, like the row kernel).
Result<Delta> JoinDeltaRelation(const Delta& delta, const Relation& rel,
                                const Expr::Ptr& cond, bool delta_left);

/// π_attrs(Δ) — equivalent to DeltaProject's row loop.
Result<Delta> ProjectDelta(const Delta& delta,
                           const std::vector<std::string>& attrs);

/// σ_cond(Δ) — equivalent to DeltaSelect's row loop (callers handle the
/// trivial condition before dispatching here).
Result<Delta> SelectDelta(const Delta& delta, const Expr::Ptr& cond);

/// The delta transforming \p from into \p to — equivalent to
/// Delta::Between, via a packed full-row key table.
Result<Delta> Between(const Relation& from, const Relation& to);

/// \brief Flat open-addressing hash table over packed, normalized join
/// keys. Used by the columnar join kernels AND by row-mode OpJoin's generic
/// hash path (replacing its per-row Tuple-keyed unordered_map: key strings
/// are interned once into the table's arena and probes allocate nothing).
///
/// Key normalization reproduces Value equality exactly:
///   null            -> (kTagNull, 0)
///   int             -> (kTagInt, v)
///   integral double -> (kTagInt, (int64)v)   [same bounds as Value::Hash]
///   other double    -> (kTagDouble, bits; -0.0 normalized to +0.0)
///   string          -> (kTagString, arena id)
/// A probe-side string absent from the arena cannot match any build key, so
/// the probe reports "no match" without interning.
class PackedJoinTable {
 public:
  /// \p key_width: number of join-key columns.
  explicit PackedJoinTable(size_t key_width);
  /// Returns the build arrays' bytes to the memory budget (the embedded
  /// arena returns its own share).
  ~PackedJoinTable();
  PackedJoinTable(const PackedJoinTable&) = delete;
  PackedJoinTable& operator=(const PackedJoinTable&) = delete;

  size_t key_width() const { return key_width_; }
  /// Number of build rows added.
  size_t rows() const { return next_.size(); }

  /// Appends a build row whose key is \p t projected on \p key_pos.
  /// Returns the row's dense id (0-based, in insertion order).
  int32_t AddBuildRow(const Tuple& t, const std::vector<size_t>& key_pos);

  /// Appends a build row keyed by batch cells (\p cols lists the key
  /// columns of \p batch, outer index = key slot) at row \p row.
  int32_t AddBuildBatchRow(const ColumnBatch& batch,
                           const std::vector<size_t>& cols, size_t row);

  /// Builds the hash table; call once after the last AddBuild*.
  void Finalize();

  /// First build row whose key equals \p t projected on \p key_pos, or -1.
  /// Walk duplicates with NextInChain. Non-const only because the key is
  /// packed into reusable scratch buffers; the table itself is unchanged.
  int32_t ProbeRow(const Tuple& t, const std::vector<size_t>& key_pos);

  /// As ProbeRow, keyed by batch cells.
  int32_t ProbeBatchRow(const ColumnBatch& batch,
                        const std::vector<size_t>& cols, size_t row);

  /// Next build row with the same key, or -1.
  int32_t NextInChain(int32_t row) const { return next_[row]; }

 private:
  // Pack a key into the scratch buffers; false = a probe string was absent
  // from the arena (guaranteed miss).
  bool PackTuple(const Tuple& t, const std::vector<size_t>& key_pos,
                 bool intern);
  bool PackBatch(const ColumnBatch& batch, const std::vector<size_t>& cols,
                 size_t row, bool intern);
  // Append the scratch key as a new build row; returns its id.
  int32_t AppendPacked();
  // Accounts \p bytes of build-array growth against the global budget.
  void ChargeBytes(size_t bytes);
  uint64_t HashKey(const ColumnTag* tags, const uint64_t* bits) const;
  bool KeyEquals(int32_t row, const ColumnTag* tags,
                 const uint64_t* bits) const;
  int32_t Lookup(const ColumnTag* tags, const uint64_t* bits) const;

  size_t key_width_;
  StringArena arena_;                // join-local interned key strings
  std::vector<ColumnTag> scratch_tags_;  // current key being packed
  std::vector<uint64_t> scratch_bits_;
  std::vector<ColumnTag> key_tags_;  // key_width_ per row
  std::vector<uint64_t> key_bits_;
  std::vector<uint64_t> hashes_;     // per row
  std::vector<int32_t> next_;        // per row: next row with equal key
  std::vector<int32_t> slots_;       // open addressing; -1 empty
  size_t mask_ = 0;
  // Memory-budget accounting for the build arrays (DESIGN.md §15).
  MemoryBudget* budget_ = nullptr;
  size_t charged_ = 0;
};

}  // namespace columnar
}  // namespace squirrel

#endif  // SQUIRREL_RELATIONAL_COLUMNAR_H_
