#include "relational/schema.h"

#include <algorithm>
#include <unordered_set>

#include "common/strings.h"

namespace squirrel {

Schema::Schema(std::vector<Attribute> attrs, std::vector<std::string> key)
    : attrs_(std::move(attrs)), key_(std::move(key)) {}

Schema Schema::AllInt(const std::vector<std::string>& names,
                      std::vector<std::string> key) {
  std::vector<Attribute> attrs;
  attrs.reserve(names.size());
  for (const auto& n : names) attrs.push_back({n, ValueType::kInt});
  return Schema(std::move(attrs), std::move(key));
}

Status Schema::Validate() const {
  std::unordered_set<std::string> seen;
  for (const auto& a : attrs_) {
    if (a.name.empty()) {
      return Status::InvalidArgument("schema has an empty attribute name");
    }
    if (!seen.insert(a.name).second) {
      return Status::InvalidArgument("duplicate attribute name: " + a.name);
    }
  }
  for (const auto& k : key_) {
    if (!seen.count(k)) {
      return Status::InvalidArgument("key attribute not in schema: " + k);
    }
  }
  return Status::OK();
}

std::vector<std::string> Schema::AttributeNames() const {
  std::vector<std::string> out;
  out.reserve(attrs_.size());
  for (const auto& a : attrs_) out.push_back(a.name);
  return out;
}

std::optional<size_t> Schema::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < attrs_.size(); ++i) {
    if (attrs_[i].name == name) return i;
  }
  return std::nullopt;
}

bool Schema::ContainsAll(const std::vector<std::string>& names) const {
  return std::all_of(names.begin(), names.end(),
                     [&](const std::string& n) { return Contains(n); });
}

bool Schema::KeyCoveredBy(const std::vector<std::string>& names) const {
  if (key_.empty()) return false;
  return std::all_of(key_.begin(), key_.end(), [&](const std::string& k) {
    return std::find(names.begin(), names.end(), k) != names.end();
  });
}

Result<Schema> Schema::Project(const std::vector<std::string>& names) const {
  std::vector<Attribute> attrs;
  attrs.reserve(names.size());
  for (const auto& n : names) {
    auto idx = IndexOf(n);
    if (!idx) {
      return Status::NotFound("projection attribute not in schema: " + n);
    }
    attrs.push_back(attrs_[*idx]);
  }
  std::vector<std::string> key;
  if (KeyCoveredBy(names)) key = key_;
  Schema out(std::move(attrs), std::move(key));
  SQ_RETURN_IF_ERROR(out.Validate());  // catches duplicate projection names
  return out;
}

Result<Schema> Schema::Concat(const Schema& other) const {
  std::vector<Attribute> attrs = attrs_;
  attrs.insert(attrs.end(), other.attrs_.begin(), other.attrs_.end());
  std::vector<std::string> key;
  if (HasKey() && other.HasKey()) {
    key = key_;
    key.insert(key.end(), other.key_.begin(), other.key_.end());
  }
  Schema out(std::move(attrs), std::move(key));
  SQ_RETURN_IF_ERROR(out.Validate());
  return out;
}

std::string Schema::ToString(const std::string& rel_name) const {
  std::vector<std::string> cols;
  cols.reserve(attrs_.size());
  for (const auto& a : attrs_) {
    cols.push_back(a.name + ":" + ValueTypeName(a.type));
  }
  std::string out = rel_name + "(" + Join(cols, ", ") + ")";
  if (HasKey()) out += " key(" + Join(key_, ", ") + ")";
  return out;
}

}  // namespace squirrel
