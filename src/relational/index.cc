#include "relational/index.h"

namespace squirrel {

const std::vector<std::pair<Tuple, int64_t>> HashIndex::kEmpty = {};

Result<HashIndex> HashIndex::Build(const Relation& rel,
                                   const std::vector<std::string>& attrs) {
  HashIndex index;
  index.attrs_ = attrs;
  std::vector<size_t> positions;
  positions.reserve(attrs.size());
  for (const auto& a : attrs) {
    auto idx = rel.schema().IndexOf(a);
    if (!idx) return Status::NotFound("index attribute not in schema: " + a);
    positions.push_back(*idx);
  }
  rel.ForEach([&](const Tuple& t, int64_t count) {
    index.buckets_[t.Project(positions)].emplace_back(t, count);
  });
  return index;
}

const std::vector<std::pair<Tuple, int64_t>>& HashIndex::Probe(
    const Tuple& key) const {
  auto it = buckets_.find(key);
  return it == buckets_.end() ? kEmpty : it->second;
}

}  // namespace squirrel
