#include "relational/index.h"

#include <algorithm>

namespace squirrel {

const std::vector<std::pair<Tuple, int64_t>> HashIndex::kEmpty = {};

Result<HashIndex> HashIndex::Build(const Relation& rel,
                                   const std::vector<std::string>& attrs) {
  HashIndex index;
  index.attrs_ = attrs;
  index.rel_attrs_ = rel.schema().AttributeNames();
  index.positions_.reserve(attrs.size());
  for (const auto& a : attrs) {
    auto idx = rel.schema().IndexOf(a);
    if (!idx) return Status::NotFound("index attribute not in schema: " + a);
    index.positions_.push_back(*idx);
  }
  rel.ForEach([&](const Tuple& t, int64_t count) {
    index.buckets_[t.Project(index.positions_)].emplace_back(t, count);
  });
  return index;
}

const std::vector<std::pair<Tuple, int64_t>>& HashIndex::Probe(
    const Tuple& key) const {
  auto it = buckets_.find(key);
  return it == buckets_.end() ? kEmpty : it->second;
}

Status HashIndex::ApplyDelta(const Delta& delta) {
  if (delta.schema().AttributeNames() != rel_attrs_) {
    return Status::InvalidArgument(
        "delta schema does not match indexed relation");
  }
  Status failure = Status::OK();
  delta.ForEach([&](const Tuple& t, int64_t signed_count) {
    if (!failure.ok() || signed_count == 0) return;
    Tuple key = t.Project(positions_);
    auto bucket_it = buckets_.find(key);
    if (bucket_it == buckets_.end()) {
      if (signed_count < 0) {
        failure = Status::InvalidArgument(
            "index delete of absent tuple: " + t.ToString());
        return;
      }
      buckets_[std::move(key)].emplace_back(t, signed_count);
      return;
    }
    auto& bucket = bucket_it->second;
    auto entry = std::find_if(bucket.begin(), bucket.end(),
                              [&](const auto& e) { return e.first == t; });
    if (entry == bucket.end()) {
      if (signed_count < 0) {
        failure = Status::InvalidArgument(
            "index delete of absent tuple: " + t.ToString());
        return;
      }
      bucket.emplace_back(t, signed_count);
      return;
    }
    entry->second += signed_count;
    if (entry->second < 0) {
      failure = Status::InvalidArgument(
          "index count underflow for tuple: " + t.ToString());
      return;
    }
    if (entry->second == 0) {
      // Swap-pop: bucket order is not part of the index contract.
      *entry = std::move(bucket.back());
      bucket.pop_back();
      if (bucket.empty()) buckets_.erase(bucket_it);
    }
  });
  return failure;
}

size_t HashIndex::EntryCount() const {
  size_t n = 0;
  for (const auto& [key, bucket] : buckets_) n += bucket.size();
  return n;
}

namespace {

bool SameAttrSet(const std::vector<std::string>& a,
                 const std::vector<std::string>& b) {
  if (a.size() != b.size()) return false;
  std::vector<std::string> sa = a, sb = b;
  std::sort(sa.begin(), sa.end());
  std::sort(sb.begin(), sb.end());
  return sa == sb;
}

}  // namespace

bool IndexManager::Register(const std::string& node,
                            std::vector<std::string> attrs) {
  auto& specs = specs_[node];
  for (const auto& existing : specs) {
    if (SameAttrSet(existing, attrs)) return false;
  }
  specs.push_back(std::move(attrs));
  return true;
}

const HashIndex* IndexManager::Find(
    const std::string& node, const std::vector<std::string>& attrs) const {
  auto it = built_.find(node);
  if (it == built_.end()) return nullptr;
  for (const auto& index : it->second) {
    if (SameAttrSet(index.attrs(), attrs)) return &index;
  }
  return nullptr;
}

Status IndexManager::Rebuild(const std::string& node, const Relation& rel) {
  auto spec_it = specs_.find(node);
  if (spec_it == specs_.end()) return Status::OK();
  std::vector<HashIndex> rebuilt;
  rebuilt.reserve(spec_it->second.size());
  for (const auto& attrs : spec_it->second) {
    auto index = HashIndex::Build(rel, attrs);
    if (!index.ok()) return index.status();
    rebuilt.push_back(std::move(*index));
  }
  built_[node] = std::move(rebuilt);
  return Status::OK();
}

Status IndexManager::ApplyDelta(const std::string& node, const Delta& delta) {
  auto it = built_.find(node);
  if (it == built_.end()) return Status::OK();
  for (auto& index : it->second) {
    auto st = index.ApplyDelta(delta);
    if (!st.ok()) return st;
  }
  return Status::OK();
}

size_t IndexManager::BuiltCount() const {
  size_t n = 0;
  for (const auto& [node, indexes] : built_) n += indexes.size();
  return n;
}

}  // namespace squirrel
