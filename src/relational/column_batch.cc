#include "relational/column_batch.h"

#include <cstring>

namespace squirrel {

namespace {

uint64_t DoubleBits(double d) {
  uint64_t u;
  static_assert(sizeof(u) == sizeof(d));
  std::memcpy(&u, &d, sizeof(u));
  return u;
}

double BitsDouble(uint64_t u) {
  double d;
  std::memcpy(&d, &u, sizeof(d));
  return d;
}

/// Approximate per-entry overhead of an interned string: the std::string
/// object, the map node, and bucket share. Rough but stable, which is what
/// budget accounting needs.
constexpr size_t kInternOverhead = 64;

}  // namespace

StringArena::~StringArena() {
  if (budget_ != nullptr) ReleaseGlobalBudget(budget_, charged_);
}

uint32_t StringArena::Intern(std::string_view s) {
  auto it = ids_.find(s);
  if (it != ids_.end()) return it->second;
  uint32_t id = static_cast<uint32_t>(strings_.size());
  strings_.emplace_back(s);
  ids_.emplace(std::string_view(strings_.back()), id);
  const size_t bytes = s.size() + kInternOverhead;
  if (MemoryBudget* b = ChargeGlobalBudget(bytes)) {
    budget_ = b;
    charged_ += bytes;
  }
  return id;
}

std::optional<uint32_t> StringArena::Find(std::string_view s) const {
  auto it = ids_.find(s);
  if (it == ids_.end()) return std::nullopt;
  return it->second;
}

ColumnBatch::ColumnBatch(Schema schema, std::shared_ptr<StringArena> arena)
    : schema_(std::move(schema)),
      columns_(schema_.size()),
      arena_(arena ? std::move(arena) : std::make_shared<StringArena>()) {}

void ColumnBatch::AppendRow(const Tuple& t, int64_t count,
                            const std::vector<size_t>* only) {
  counts_.push_back(count);
  auto write = [&](size_t c) {
    Column& col = columns_[c];
    const Value& v = t.at(c);
    switch (v.type()) {
      case ValueType::kNull:
        col.tags.push_back(kTagNull);
        col.bits.push_back(0);
        break;
      case ValueType::kInt:
        col.tags.push_back(kTagInt);
        col.bits.push_back(static_cast<uint64_t>(v.AsInt()));
        break;
      case ValueType::kDouble:
        col.tags.push_back(kTagDouble);
        col.bits.push_back(DoubleBits(v.AsDouble()));
        break;
      case ValueType::kString:
        col.tags.push_back(kTagString);
        col.bits.push_back(arena_->Intern(v.AsString()));
        break;
    }
  };
  if (only != nullptr) {
    for (size_t c : *only) write(c);
  } else {
    for (size_t c = 0; c < columns_.size(); ++c) write(c);
  }
}

ColumnBatch ColumnBatch::FromRelation(const Relation& rel,
                                      const std::vector<size_t>* only) {
  ColumnBatch out(rel.schema());
  out.counts_.reserve(rel.DistinctSize());
  size_t ncols = only ? only->size() : rel.schema().size();
  auto reserve = [&](size_t c) {
    out.columns_[c].tags.reserve(rel.DistinctSize());
    out.columns_[c].bits.reserve(rel.DistinctSize());
  };
  for (size_t i = 0; i < ncols; ++i) reserve(only ? (*only)[i] : i);
  rel.ForEach(
      [&](const Tuple& t, int64_t count) { out.AppendRow(t, count, only); });
  return out;
}

ColumnBatch ColumnBatch::FromDelta(const Delta& delta,
                                   const std::vector<size_t>* only) {
  ColumnBatch out(delta.schema());
  out.counts_.reserve(delta.AtomCount());
  delta.ForEach(
      [&](const Tuple& t, int64_t count) { out.AppendRow(t, count, only); });
  return out;
}

Value ColumnBatch::ValueAt(size_t col, size_t row) const {
  const Column& c = columns_[col];
  switch (c.tags[row]) {
    case kTagNull:
      return Value();
    case kTagInt:
      return Value(static_cast<int64_t>(c.bits[row]));
    case kTagDouble:
      return Value(BitsDouble(c.bits[row]));
    default:
      return Value(arena_->Get(static_cast<uint32_t>(c.bits[row])));
  }
}

Tuple ColumnBatch::RowAt(size_t row) const {
  std::vector<Value> values;
  values.reserve(columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) {
    values.push_back(ValueAt(c, row));
  }
  return Tuple(std::move(values));
}

Result<Relation> ColumnBatch::ToRelation(Semantics semantics) const {
  Relation out(schema_, semantics);
  for (size_t r = 0; r < rows(); ++r) {
    SQ_RETURN_IF_ERROR(out.Insert(RowAt(r), counts_[r]));
  }
  return out;
}

Result<Delta> ColumnBatch::ToDelta() const {
  Delta out(schema_);
  for (size_t r = 0; r < rows(); ++r) {
    SQ_RETURN_IF_ERROR(out.Add(RowAt(r), counts_[r]));
  }
  return out;
}

ColumnBatch ColumnBatch::GatherRows(const std::vector<uint32_t>& sel) const {
  ColumnBatch out(schema_, arena_);
  out.counts_.reserve(sel.size());
  for (uint32_t r : sel) out.counts_.push_back(counts_[r]);
  for (size_t c = 0; c < columns_.size(); ++c) {
    const Column& in = columns_[c];
    if (in.tags.empty() && rows() != 0) continue;  // unbuilt column
    Column& col = out.columns_[c];
    col.tags.reserve(sel.size());
    col.bits.reserve(sel.size());
    for (uint32_t r : sel) {
      col.tags.push_back(in.tags[r]);
      col.bits.push_back(in.bits[r]);
    }
  }
  return out;
}

ColumnBatch ColumnBatch::ProjectColumns(const std::vector<size_t>& positions,
                                        Schema out_schema) const {
  ColumnBatch out(std::move(out_schema), arena_);
  out.counts_ = counts_;
  out.columns_.clear();
  out.columns_.reserve(positions.size());
  for (size_t p : positions) out.columns_.push_back(columns_[p]);
  return out;
}

}  // namespace squirrel
