// Scalar / predicate expression trees over relation attributes.
//
// Expressions cover the fragment the paper needs: attribute references,
// int/double/string constants, arithmetic (+ - * /), comparisons, and
// boolean connectives — enough to express Example 5.1's join condition
// "a1*a1 + a2 < b2*b2" and all selection conditions.
//
// Expr trees are immutable and shared. For evaluation they are *bound*
// against a schema, producing a compact stack-machine program (BoundExpr)
// with attribute names resolved to positions.

#ifndef SQUIRREL_RELATIONAL_EXPR_H_
#define SQUIRREL_RELATIONAL_EXPR_H_

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "relational/schema.h"
#include "relational/tuple.h"

namespace squirrel {

/// Binary operators, grouped: arithmetic, comparison, boolean.
enum class BinOp {
  kAdd,
  kSub,
  kMul,
  kDiv,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAnd,
  kOr,
};

/// Unary operators.
enum class UnOp { kNeg, kNot };

/// Token for a binary operator, e.g. "+", "<=", "AND".
const char* BinOpName(BinOp op);

/// \brief Immutable expression tree node.
class Expr {
 public:
  using Ptr = std::shared_ptr<const Expr>;

  /// Node discriminator.
  enum class Kind { kConst, kAttr, kBinary, kUnary };

  /// Constant leaf.
  static Ptr Const(Value v);
  /// Attribute reference leaf.
  static Ptr Attr(std::string name);
  /// Binary node.
  static Ptr Binary(BinOp op, Ptr left, Ptr right);
  /// Unary node.
  static Ptr Unary(UnOp op, Ptr child);

  /// The always-true predicate (integer constant 1).
  static Ptr True();

  // Convenience builders.
  static Ptr Eq(Ptr l, Ptr r) { return Binary(BinOp::kEq, l, r); }
  static Ptr Lt(Ptr l, Ptr r) { return Binary(BinOp::kLt, l, r); }
  static Ptr Le(Ptr l, Ptr r) { return Binary(BinOp::kLe, l, r); }
  static Ptr Gt(Ptr l, Ptr r) { return Binary(BinOp::kGt, l, r); }
  static Ptr Ge(Ptr l, Ptr r) { return Binary(BinOp::kGe, l, r); }
  static Ptr Ne(Ptr l, Ptr r) { return Binary(BinOp::kNe, l, r); }
  /// Conjunction; treats a null pointer on either side as "true".
  static Ptr And(Ptr l, Ptr r);
  /// Disjunction; a null pointer on either side means "true" (absorbing).
  static Ptr Or(Ptr l, Ptr r);
  static Ptr Not(Ptr e) { return Unary(UnOp::kNot, e); }

  Kind kind() const { return kind_; }
  /// Constant value; only for kConst.
  const Value& value() const { return value_; }
  /// Attribute name; only for kAttr.
  const std::string& attr_name() const { return name_; }
  /// Operator; only for kBinary.
  BinOp bin_op() const { return bin_op_; }
  /// Operator; only for kUnary.
  UnOp un_op() const { return un_op_; }
  /// Left child (kBinary) or only child (kUnary).
  const Ptr& left() const { return left_; }
  /// Right child; only for kBinary.
  const Ptr& right() const { return right_; }

  /// Adds every referenced attribute name to \p out.
  void CollectAttrs(std::set<std::string>* out) const;
  /// Referenced attribute names as a sorted vector.
  std::vector<std::string> ReferencedAttrs() const;

  /// True iff this is the literal constant 1 produced by True().
  bool IsTrueLiteral() const;

  /// Structural equality (used when merging VAP requests).
  bool Equals(const Expr& other) const;

  /// Parenthesized rendering, e.g. "((a1*a1)+(a2)) < (b2*b2)".
  std::string ToString() const;

 private:
  Expr() = default;
  Kind kind_ = Kind::kConst;
  Value value_;
  std::string name_;
  BinOp bin_op_ = BinOp::kAdd;
  UnOp un_op_ = UnOp::kNeg;
  Ptr left_, right_;
};

/// Splits nested conjunctions into their top-level conjuncts.
std::vector<Expr::Ptr> ConjunctiveClauses(const Expr::Ptr& expr);

/// Rebuilds a conjunction from clauses (empty => True()).
Expr::Ptr AndAll(const std::vector<Expr::Ptr>& clauses);

/// An equality `left_attr = right_attr` extracted from a join condition.
struct EquiJoinPair {
  std::string left_attr;
  std::string right_attr;
};

/// Decomposes a join condition into equi-join pairs (one side referencing
/// only \p left schema attributes, the other only \p right) plus a residual
/// condition evaluated on concatenated tuples. Non-equi conditions land
/// wholly in the residual.
struct JoinConditionParts {
  std::vector<EquiJoinPair> equi;
  Expr::Ptr residual;  ///< True() when nothing remains
};
JoinConditionParts SplitJoinCondition(const Expr::Ptr& cond,
                                      const Schema& left,
                                      const Schema& right);

/// \brief An expression compiled against a schema: attribute names resolved
/// to tuple positions, tree flattened to a postfix program.
class BoundExpr {
 public:
  /// Compiles \p expr against \p schema; fails on unknown attributes.
  static Result<BoundExpr> Bind(const Expr::Ptr& expr, const Schema& schema);

  /// Evaluates on a tuple of the bound schema. Division by zero and any
  /// operation on NULL yield NULL; type mismatches are errors.
  Result<Value> Eval(const Tuple& tuple) const;

  /// Evaluates as a predicate: NULL and 0 are false, any other value true.
  /// Errors propagate.
  Result<bool> EvalBool(const Tuple& tuple) const;

  /// One stack-machine instruction. Public so the columnar engine can
  /// interpret the same compiled program column-wise (see columnar.h);
  /// the program layout is otherwise an implementation detail.
  struct Instr {
    enum class Op { kPushConst, kPushAttr, kBinary, kUnary } op;
    Value constant;      // kPushConst
    size_t attr_index = 0;  // kPushAttr
    BinOp bin_op = BinOp::kAdd;
    UnOp un_op = UnOp::kNeg;
  };

  /// The compiled postfix program.
  const std::vector<Instr>& code() const { return code_; }

 private:
  std::vector<Instr> code_;
};

// Scalar evaluation primitives shared between BoundExpr::Eval and the
// columnar kernels' per-row fallback, so both modes apply byte-identical
// semantics (NULL propagation, division by zero -> NULL, int-exact
// arithmetic, cross-type numeric comparison).

/// Predicate truthiness: NULL and zero/empty are false.
bool ValueTruthy(const Value& v);

/// Applies a binary operator to two scalars.
Result<Value> EvalBinaryValue(BinOp op, const Value& a, const Value& b);

/// Applies a unary operator to a scalar.
Result<Value> EvalUnaryValue(UnOp op, const Value& a);

}  // namespace squirrel

#endif  // SQUIRREL_RELATIONAL_EXPR_H_
