// Hash index over a subset of a relation's attributes.
//
// Used by the VAP's key-based construction (paper Example 2.3 and §5.3's
// heuristic: "materialize key attributes so virtual attributes of a join
// relation can be fetched efficiently from its underlying relations").

#ifndef SQUIRREL_RELATIONAL_INDEX_H_
#define SQUIRREL_RELATIONAL_INDEX_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "relational/relation.h"

namespace squirrel {

/// \brief An in-memory hash index mapping projections of indexed attributes
/// to the full tuples carrying them (with multiplicities).
class HashIndex {
 public:
  /// Builds an index on \p rel over \p attrs (a snapshot; not maintained).
  static Result<HashIndex> Build(const Relation& rel,
                                 const std::vector<std::string>& attrs);

  /// All (tuple, count) entries whose indexed attributes equal \p key.
  const std::vector<std::pair<Tuple, int64_t>>& Probe(const Tuple& key) const;

  /// Number of distinct index keys.
  size_t KeyCount() const { return buckets_.size(); }

  /// Indexed attribute names.
  const std::vector<std::string>& attrs() const { return attrs_; }

 private:
  std::vector<std::string> attrs_;
  std::unordered_map<Tuple, std::vector<std::pair<Tuple, int64_t>>, TupleHash>
      buckets_;
  static const std::vector<std::pair<Tuple, int64_t>> kEmpty;
};

}  // namespace squirrel

#endif  // SQUIRREL_RELATIONAL_INDEX_H_
