// Hash index over a subset of a relation's attributes.
//
// Used by the VAP's key-based construction (paper Example 2.3 and §5.3's
// heuristic: "materialize key attributes so virtual attributes of a join
// relation can be fetched efficiently from its underlying relations") and,
// since the incremental-index layer, kept resident across update batches so
// IUP rule firing probes persistent state instead of rebuilding hash tables
// per delta (cf. §6.4: incremental maintenance should cost per-delta work,
// not per-relation work).

#ifndef SQUIRREL_RELATIONAL_INDEX_H_
#define SQUIRREL_RELATIONAL_INDEX_H_

#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "delta/delta.h"
#include "relational/relation.h"

namespace squirrel {

/// \brief An in-memory hash index mapping projections of indexed attributes
/// to the full tuples carrying them (with multiplicities).
class HashIndex {
 public:
  /// Builds an index on \p rel over \p attrs. The result can be kept
  /// consistent with the relation by mirroring every ApplyDelta.
  static Result<HashIndex> Build(const Relation& rel,
                                 const std::vector<std::string>& attrs);

  /// All (tuple, count) entries whose indexed attributes equal \p key.
  const std::vector<std::pair<Tuple, int64_t>>& Probe(const Tuple& key) const;

  /// Incrementally maintains the index under \p delta, which must carry the
  /// indexed relation's schema and obey the same strict non-redundancy rule
  /// as ApplyDelta(Relation*, ...): a deletion atom must not drive any
  /// tuple's count negative.
  Status ApplyDelta(const Delta& delta);

  /// Number of distinct index keys.
  size_t KeyCount() const { return buckets_.size(); }

  /// Total number of (tuple, count) entries across all buckets.
  size_t EntryCount() const;

  /// Indexed attribute names.
  const std::vector<std::string>& attrs() const { return attrs_; }

  /// Attribute names of the indexed relation's schema (ApplyDelta deltas
  /// must match these).
  const std::vector<std::string>& relation_attrs() const {
    return rel_attrs_;
  }

 private:
  std::vector<std::string> attrs_;
  std::vector<std::string> rel_attrs_;
  /// Positions of attrs_ within the indexed relation's schema.
  std::vector<size_t> positions_;
  std::unordered_map<Tuple, std::vector<std::pair<Tuple, int64_t>>, TupleHash>
      buckets_;
  static const std::vector<std::pair<Tuple, int64_t>> kEmpty;
};

/// \brief Registry of persistent indexes keyed by node (repository) name.
///
/// The index advisor registers the attribute sets that IUP rule firing and
/// VAP key-based construction will probe; LocalStore then keeps every
/// registered index in lock-step with its repository by mirroring each
/// applied delta. Lookup is by attribute *set* (order-insensitive) so the
/// same index serves syntactically different but equivalent probe specs.
class IndexManager {
 public:
  /// Registers a desired index on \p node over \p attrs. Duplicate attr
  /// sets (in any order) collapse to one index. Returns true if this is a
  /// new spec. Registration alone does not build; call Rebuild.
  bool Register(const std::string& node, std::vector<std::string> attrs);

  /// A maintained index on \p node whose attr set equals \p attrs (as a
  /// set), or nullptr when none is built.
  const HashIndex* Find(const std::string& node,
                        const std::vector<std::string>& attrs) const;

  /// (Re)builds every registered index for \p node from \p rel.
  Status Rebuild(const std::string& node, const Relation& rel);

  /// Mirrors \p delta into every built index on \p node.
  Status ApplyDelta(const std::string& node, const Delta& delta);

  /// Registered specs per node (attr lists as registered, deduped by set).
  const std::map<std::string, std::vector<std::vector<std::string>>>& specs()
      const {
    return specs_;
  }

  /// Total number of built indexes across all nodes.
  size_t BuiltCount() const;

 private:
  std::map<std::string, std::vector<std::vector<std::string>>> specs_;
  std::map<std::string, std::vector<HashIndex>> built_;
};

}  // namespace squirrel

#endif  // SQUIRREL_RELATIONAL_INDEX_H_
