// Tuples: fixed-width rows of Values, positionally matched to a Schema.

#ifndef SQUIRREL_RELATIONAL_TUPLE_H_
#define SQUIRREL_RELATIONAL_TUPLE_H_

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "relational/value.h"

namespace squirrel {

/// \brief A row: an ordered vector of Values.
///
/// Tuples are schema-agnostic; the containing Relation supplies the schema.
/// They hash and compare value-wise, which makes them usable as keys in the
/// multiplicity maps that implement bag relations and deltas.
///
/// Hash() is memoized: map keys are hashed repeatedly (probe-then-insert,
/// rehash on growth, index maintenance), and tuples carried between maps by
/// move keep the cached value. The cache is a relaxed atomic because tuples
/// inside shared MVCC snapshots are hashed from concurrent readers; the
/// memoized function is pure, so racing writers store the same value.
class Tuple {
 public:
  Tuple() = default;
  /// Builds a tuple from values, e.g. Tuple({1, 2, "x"}).
  Tuple(std::initializer_list<Value> values) : values_(values) {}
  /// Builds a tuple from a value vector.
  explicit Tuple(std::vector<Value> values) : values_(std::move(values)) {}

  Tuple(const Tuple& other)
      : values_(other.values_),
        hash_(other.hash_.load(std::memory_order_relaxed)) {}
  Tuple(Tuple&& other) noexcept
      : values_(std::move(other.values_)),
        hash_(other.hash_.load(std::memory_order_relaxed)) {}
  Tuple& operator=(const Tuple& other) {
    values_ = other.values_;
    hash_.store(other.hash_.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
    return *this;
  }
  Tuple& operator=(Tuple&& other) noexcept {
    values_ = std::move(other.values_);
    hash_.store(other.hash_.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
    return *this;
  }

  /// Number of fields.
  size_t size() const { return values_.size(); }
  /// Field at position \p i.
  const Value& at(size_t i) const { return values_[i]; }
  /// Mutable field at position \p i (invalidates the memoized hash).
  Value& at(size_t i) {
    hash_.store(0, std::memory_order_relaxed);
    return values_[i];
  }
  /// All fields.
  const std::vector<Value>& values() const { return values_; }

  /// Appends a field.
  void Append(Value v) {
    hash_.store(0, std::memory_order_relaxed);
    values_.push_back(std::move(v));
  }

  /// Concatenation of this tuple and \p other (used by joins).
  Tuple Concat(const Tuple& other) const;

  /// Projection onto the given positions (in the given order).
  Tuple Project(const std::vector<size_t>& positions) const;

  /// Value-wise hash.
  uint64_t Hash() const;

  /// Lexicographic comparison.
  int Compare(const Tuple& other) const;

  bool operator==(const Tuple& other) const { return Compare(other) == 0; }
  bool operator!=(const Tuple& other) const { return Compare(other) != 0; }
  bool operator<(const Tuple& other) const { return Compare(other) < 0; }

  /// Renders e.g. "(1, 'a', NULL)".
  std::string ToString() const;

 private:
  std::vector<Value> values_;
  /// Memoized Hash(); 0 means "not computed yet" (the empty tuple hashes to
  /// the nonzero fold seed; a full hash colliding with 0 merely loses the
  /// memoization for that tuple, never correctness).
  mutable std::atomic<uint64_t> hash_{0};
};

/// Hash functor for unordered containers keyed by Tuple.
struct TupleHash {
  size_t operator()(const Tuple& t) const {
    return static_cast<size_t>(t.Hash());
  }
};

}  // namespace squirrel

#endif  // SQUIRREL_RELATIONAL_TUPLE_H_
