// Columnar batches: the storage half of the columnar execution engine.
//
// A ColumnBatch decomposes a Relation (or Delta) into per-attribute typed
// column vectors — one tag byte and one 64-bit payload per cell — plus a
// signed multiplicity vector. String payloads are ids into an arena that
// interns each distinct string once, so equality over string cells is id
// equality and a gather never copies characters. Batches are value types
// that share their arena through a shared_ptr, which keeps row gathers and
// column projections cheap and keeps lifetimes correct when a batch built
// from a COW snapshot Relation outlives the kernel call that made it (the
// arena owns its characters; nothing points back into the Relation).
//
// The cell encoding mirrors Value's equality exactly (see columnar.h's
// PackedJoinTable for the join-key normalization built on top of it):
//   kNull   -> bits = 0
//   kInt    -> bits = the int64 payload
//   kDouble -> bits = the double, bit-cast
//   kString -> bits = arena id
// Conversions back to Relation/Delta rebuild ordinary Tuples, so the rest
// of the engine never needs to know batches exist.

#ifndef SQUIRREL_RELATIONAL_COLUMN_BATCH_H_
#define SQUIRREL_RELATIONAL_COLUMN_BATCH_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/memory_budget.h"
#include "common/status.h"
#include "delta/delta.h"
#include "relational/relation.h"

namespace squirrel {

/// Per-cell type tag; numeric values match ValueType so conversions are
/// a static_cast.
using ColumnTag = uint8_t;
inline constexpr ColumnTag kTagNull = 0;
inline constexpr ColumnTag kTagInt = 1;
inline constexpr ColumnTag kTagDouble = 2;
inline constexpr ColumnTag kTagString = 3;

/// \brief Interning pool for string cells: each distinct string is stored
/// once and addressed by a dense uint32 id.
///
/// Storage is a deque so element addresses are stable across growth (the
/// lookup map keys are views into the stored strings).
class StringArena {
 public:
  StringArena() = default;
  /// Returns everything this arena charged against the memory budget (if
  /// accounting was on while it grew).
  ~StringArena();
  StringArena(const StringArena&) = delete;
  StringArena& operator=(const StringArena&) = delete;

  /// Id of \p s, interning it on first sight.
  uint32_t Intern(std::string_view s);

  /// Id of \p s if already interned, else nullopt (used by probe sides of
  /// joins: a probe string the build arena never saw cannot match).
  std::optional<uint32_t> Find(std::string_view s) const;

  /// The string with id \p id.
  const std::string& Get(uint32_t id) const { return strings_[id]; }

  /// Number of distinct interned strings.
  size_t size() const { return strings_.size(); }

 private:
  std::deque<std::string> strings_;
  std::unordered_map<std::string_view, uint32_t> ids_;
  // Memory-budget accounting (DESIGN.md §15): bytes charged so far and the
  // accountant they were charged to (null while accounting is off).
  MemoryBudget* budget_ = nullptr;
  size_t charged_ = 0;
};

/// \brief One column of a batch: a tag byte and a 64-bit payload per row.
struct Column {
  std::vector<ColumnTag> tags;
  std::vector<uint64_t> bits;

  /// True iff every cell is a non-null int (the vectorized fast path).
  bool AllInt() const {
    for (ColumnTag t : tags) {
      if (t != kTagInt) return false;
    }
    return true;
  }
};

/// \brief A Relation or Delta decomposed into columns.
///
/// Rows keep the multiplicity (Relation) or signed count (Delta) they had
/// in the source map; row order is the source map's iteration order, which
/// is irrelevant to correctness because every consumer rebuilds an unordered
/// multiplicity map or renders through SortedRows.
///
/// A batch may be built over a subset of columns (\p only in FromRelation /
/// FromDelta): unbuilt columns have empty vectors and must not be read.
class ColumnBatch {
 public:
  ColumnBatch() = default;
  explicit ColumnBatch(Schema schema,
                       std::shared_ptr<StringArena> arena = nullptr);

  /// Decomposes \p rel. \p only, when non-null, lists the column positions
  /// to materialize (others stay empty).
  static ColumnBatch FromRelation(const Relation& rel,
                                  const std::vector<size_t>* only = nullptr);

  /// Decomposes \p delta (signed counts).
  static ColumnBatch FromDelta(const Delta& delta,
                               const std::vector<size_t>* only = nullptr);

  /// Rebuilds a Relation with \p semantics. All columns must be built and
  /// all counts positive.
  Result<Relation> ToRelation(Semantics semantics) const;

  /// Rebuilds a Delta (signed counts). All columns must be built.
  Result<Delta> ToDelta() const;

  const Schema& schema() const { return schema_; }
  size_t rows() const { return counts_.size(); }
  size_t cols() const { return columns_.size(); }
  const Column& column(size_t i) const { return columns_[i]; }
  const std::vector<int64_t>& counts() const { return counts_; }
  StringArena* arena() const { return arena_.get(); }
  const std::shared_ptr<StringArena>& arena_ptr() const { return arena_; }

  /// The cell (\p col, \p row) as a Value (strings copied out of the arena).
  Value ValueAt(size_t col, size_t row) const;

  /// Row \p row as a Tuple (all columns must be built).
  Tuple RowAt(size_t row) const;

  /// Appends \p t with multiplicity \p count, interning strings. When
  /// \p only is non-null, writes just those columns.
  void AppendRow(const Tuple& t, int64_t count,
                 const std::vector<size_t>* only = nullptr);

  /// New batch containing rows \p sel (in that order); shares this batch's
  /// arena, so string ids stay valid.
  ColumnBatch GatherRows(const std::vector<uint32_t>& sel) const;

  /// New batch whose columns are this batch's \p positions (in that order)
  /// under \p out_schema; column payloads are copied, the arena is shared.
  ColumnBatch ProjectColumns(const std::vector<size_t>& positions,
                             Schema out_schema) const;

  /// Mutable column access, for kernels that assemble a batch column-wise
  /// (e.g. stitching gathered join sides into the concatenated schema).
  Column* MutableColumn(size_t i) { return &columns_[i]; }

  /// Declares \p n rows for a column-wise assembled batch. The counts are
  /// set to 1 and carry no meaning for such batches.
  void SetRowCount(size_t n) { counts_.assign(n, 1); }

 private:
  Schema schema_;
  std::vector<Column> columns_;     // one per schema attribute
  std::vector<int64_t> counts_;     // per row
  std::shared_ptr<StringArena> arena_;
};

}  // namespace squirrel

#endif  // SQUIRREL_RELATIONAL_COLUMN_BATCH_H_
