// Text parsers for predicates, algebra expressions, and schema declarations.
//
// These power the "Squirrel generates mediators from high-level
// specifications" workflow: a MediatorSpec is written as text and parsed
// into schemas + view definitions. Concrete syntax:
//
//   predicate:  r4 = 100 AND s3 < 50
//               a1*a1 + a2 < b2*b2
//   algebra:    project[r1, r3, s1, s2](
//                 select[r4 = 100](R) join[r2 = s1] select[s3 < 50](S))
//               project[a1, b1](E) diff project[a1, b1](F)
//   schema:     R(r1:int, r2:int, note:string) key(r1)
//
// Keywords (select/project/join/union/diff/minus/and/or/not/key) are
// case-insensitive; identifiers are case-sensitive.

#ifndef SQUIRREL_RELATIONAL_PARSER_H_
#define SQUIRREL_RELATIONAL_PARSER_H_

#include <string>
#include <string_view>
#include <utility>

#include "common/status.h"
#include "relational/algebra.h"
#include "relational/expr.h"
#include "relational/schema.h"

namespace squirrel {

/// Parses a scalar/boolean predicate, e.g. "r4 = 100 AND s3 < 50".
Result<Expr::Ptr> ParsePredicate(std::string_view text);

/// Parses a relational-algebra view definition.
Result<AlgebraExpr::Ptr> ParseAlgebra(std::string_view text);

/// A parsed "Name(attr:type, ...) key(attr, ...)" declaration.
struct SchemaDecl {
  std::string name;
  Schema schema;
};

/// Parses a schema declaration. Attribute types default to int; supported
/// type names are int, double, string.
Result<SchemaDecl> ParseSchemaDecl(std::string_view text);

}  // namespace squirrel

#endif  // SQUIRREL_RELATIONAL_PARSER_H_
