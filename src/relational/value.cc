#include "relational/value.h"

#include <cmath>
#include <cstdio>

#include "common/strings.h"

namespace squirrel {

const char* ValueTypeName(ValueType type) {
  switch (type) {
    case ValueType::kNull:
      return "null";
    case ValueType::kInt:
      return "int";
    case ValueType::kDouble:
      return "double";
    case ValueType::kString:
      return "string";
  }
  return "?";
}

ValueType Value::type() const {
  return static_cast<ValueType>(var_.index());
}

double Value::AsNumeric() const {
  if (type() == ValueType::kInt) return static_cast<double>(AsInt());
  return AsDouble();
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt:
      return std::to_string(AsInt());
    case ValueType::kDouble: {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%g", AsDouble());
      return buf;
    }
    case ValueType::kString:
      return "'" + AsString() + "'";
  }
  return "?";
}

int Value::Compare(const Value& other) const {
  // Rank: null(0) < numeric(1) < string(2).
  auto rank = [](ValueType t) {
    switch (t) {
      case ValueType::kNull:
        return 0;
      case ValueType::kInt:
      case ValueType::kDouble:
        return 1;
      case ValueType::kString:
        return 2;
    }
    return 3;
  };
  int ra = rank(type()), rb = rank(other.type());
  if (ra != rb) return ra < rb ? -1 : 1;
  switch (type()) {
    case ValueType::kNull:
      return 0;
    case ValueType::kInt:
    case ValueType::kDouble: {
      // Exact comparison for two ints; numeric otherwise.
      if (type() == ValueType::kInt && other.type() == ValueType::kInt) {
        int64_t a = AsInt(), b = other.AsInt();
        return a < b ? -1 : (a > b ? 1 : 0);
      }
      double a = AsNumeric(), b = other.AsNumeric();
      if (a < b) return -1;
      if (a > b) return 1;
      return 0;
    }
    case ValueType::kString: {
      int c = AsString().compare(other.AsString());
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
  }
  return 0;
}

uint64_t Value::Hash() const {
  switch (type()) {
    case ValueType::kNull:
      return 0x6E756C6CULL;
    case ValueType::kInt: {
      int64_t v = AsInt();
      return HashBytes(&v, sizeof(v));
    }
    case ValueType::kDouble: {
      double d = AsDouble();
      // Hash integral doubles like ints so that 2.0 == 2 implies equal hash.
      double r = std::floor(d);
      if (r == d && d >= -9.2e18 && d <= 9.2e18) {
        int64_t v = static_cast<int64_t>(d);
        return HashBytes(&v, sizeof(v));
      }
      if (d == 0.0) d = 0.0;  // normalize -0.0
      return HashBytes(&d, sizeof(d));
    }
    case ValueType::kString: {
      const std::string& s = AsString();
      return HashBytes(s.data(), s.size(), 0x737472ULL);
    }
  }
  return 0;
}

}  // namespace squirrel
