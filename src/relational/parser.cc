#include "relational/parser.h"

#include <cctype>
#include <cstdlib>
#include <vector>

#include "common/strings.h"

namespace squirrel {
namespace {

enum class TokKind {
  kIdent,
  kInt,
  kDouble,
  kString,
  kSymbol,  // ( ) [ ] , = != <> < <= > >= + - * /
  kEnd,
};

struct Token {
  TokKind kind = TokKind::kEnd;
  std::string text;   // identifier / symbol text
  int64_t int_val = 0;
  double dbl_val = 0.0;
  size_t pos = 0;  // offset in input, for error messages
};

/// Case-insensitive keyword match against an identifier token.
bool IsKeyword(const Token& t, std::string_view kw) {
  if (t.kind != TokKind::kIdent || t.text.size() != kw.size()) return false;
  for (size_t i = 0; i < kw.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(t.text[i])) !=
        std::tolower(static_cast<unsigned char>(kw[i]))) {
      return false;
    }
  }
  return true;
}

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  Result<std::vector<Token>> Tokenize() {
    std::vector<Token> out;
    size_t i = 0;
    while (i < text_.size()) {
      char c = text_[i];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++i;
        continue;
      }
      Token t;
      t.pos = i;
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        size_t j = i;
        while (j < text_.size() &&
               (std::isalnum(static_cast<unsigned char>(text_[j])) ||
                text_[j] == '_')) {
          ++j;
        }
        t.kind = TokKind::kIdent;
        t.text = std::string(text_.substr(i, j - i));
        i = j;
      } else if (std::isdigit(static_cast<unsigned char>(c)) ||
                 (c == '.' && i + 1 < text_.size() &&
                  std::isdigit(static_cast<unsigned char>(text_[i + 1])))) {
        size_t j = i;
        bool is_double = false;
        while (j < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[j])) ||
                text_[j] == '.')) {
          if (text_[j] == '.') is_double = true;
          ++j;
        }
        std::string num(text_.substr(i, j - i));
        if (is_double) {
          t.kind = TokKind::kDouble;
          t.dbl_val = std::strtod(num.c_str(), nullptr);
        } else {
          t.kind = TokKind::kInt;
          t.int_val = std::strtoll(num.c_str(), nullptr, 10);
        }
        i = j;
      } else if (c == '\'') {
        size_t j = i + 1;
        std::string s;
        while (j < text_.size() && text_[j] != '\'') {
          s += text_[j];
          ++j;
        }
        if (j >= text_.size()) {
          return Status::InvalidArgument("unterminated string literal at " +
                                         std::to_string(i));
        }
        t.kind = TokKind::kString;
        t.text = std::move(s);
        i = j + 1;
      } else {
        // Multi-char symbols first.
        auto two = text_.substr(i, 2);
        if (two == "!=" || two == "<>" || two == "<=" || two == ">=") {
          t.kind = TokKind::kSymbol;
          t.text = two == "<>" ? "!=" : std::string(two);
          i += 2;
        } else if (std::string_view("()[],=<>+-*/").find(c) !=
                   std::string_view::npos) {
          t.kind = TokKind::kSymbol;
          t.text = std::string(1, c);
          i += 1;
        } else {
          return Status::InvalidArgument(
              std::string("unexpected character '") + c + "' at offset " +
              std::to_string(i));
        }
      }
      out.push_back(std::move(t));
    }
    Token end;
    end.kind = TokKind::kEnd;
    end.pos = text_.size();
    out.push_back(end);
    return out;
  }

 private:
  std::string_view text_;
};

/// Recursive-descent parser over a token stream; parses both the predicate
/// grammar and the algebra grammar.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : toks_(std::move(tokens)) {}

  Result<Expr::Ptr> ParsePredicateAll() {
    SQ_ASSIGN_OR_RETURN(Expr::Ptr e, ParseOr());
    SQ_RETURN_IF_ERROR(ExpectEnd());
    return e;
  }

  Result<AlgebraExpr::Ptr> ParseAlgebraAll() {
    SQ_ASSIGN_OR_RETURN(AlgebraExpr::Ptr e, ParseSetOp());
    SQ_RETURN_IF_ERROR(ExpectEnd());
    return e;
  }

 private:
  const Token& Peek() const { return toks_[pos_]; }
  Token Take() { return toks_[pos_++]; }
  bool AtSymbol(std::string_view s) const {
    return Peek().kind == TokKind::kSymbol && Peek().text == s;
  }
  bool TakeSymbol(std::string_view s) {
    if (!AtSymbol(s)) return false;
    ++pos_;
    return true;
  }
  bool TakeKeyword(std::string_view kw) {
    if (!IsKeyword(Peek(), kw)) return false;
    ++pos_;
    return true;
  }
  Status Err(const std::string& what) const {
    return Status::InvalidArgument(what + " at offset " +
                                   std::to_string(Peek().pos));
  }
  Status ExpectSymbol(std::string_view s) {
    if (!TakeSymbol(s)) return Err("expected '" + std::string(s) + "'");
    return Status::OK();
  }
  Status ExpectEnd() {
    if (Peek().kind != TokKind::kEnd) return Err("trailing input");
    return Status::OK();
  }

  // ---- predicate grammar ----

  Result<Expr::Ptr> ParseOr() {
    SQ_ASSIGN_OR_RETURN(Expr::Ptr left, ParseAnd());
    while (TakeKeyword("or")) {
      SQ_ASSIGN_OR_RETURN(Expr::Ptr right, ParseAnd());
      left = Expr::Binary(BinOp::kOr, left, right);
    }
    return left;
  }

  Result<Expr::Ptr> ParseAnd() {
    SQ_ASSIGN_OR_RETURN(Expr::Ptr left, ParseNot());
    while (TakeKeyword("and")) {
      SQ_ASSIGN_OR_RETURN(Expr::Ptr right, ParseNot());
      left = Expr::Binary(BinOp::kAnd, left, right);
    }
    return left;
  }

  Result<Expr::Ptr> ParseNot() {
    if (TakeKeyword("not")) {
      SQ_ASSIGN_OR_RETURN(Expr::Ptr e, ParseNot());
      return Expr::Not(e);
    }
    return ParseComparison();
  }

  Result<Expr::Ptr> ParseComparison() {
    SQ_ASSIGN_OR_RETURN(Expr::Ptr left, ParseAdd());
    static const struct {
      const char* sym;
      BinOp op;
    } kCmps[] = {{"=", BinOp::kEq},  {"!=", BinOp::kNe}, {"<=", BinOp::kLe},
                 {"<", BinOp::kLt},  {">=", BinOp::kGe}, {">", BinOp::kGt}};
    for (const auto& c : kCmps) {
      if (TakeSymbol(c.sym)) {
        SQ_ASSIGN_OR_RETURN(Expr::Ptr right, ParseAdd());
        return Expr::Binary(c.op, left, right);
      }
    }
    return left;
  }

  Result<Expr::Ptr> ParseAdd() {
    SQ_ASSIGN_OR_RETURN(Expr::Ptr left, ParseMul());
    for (;;) {
      if (TakeSymbol("+")) {
        SQ_ASSIGN_OR_RETURN(Expr::Ptr right, ParseMul());
        left = Expr::Binary(BinOp::kAdd, left, right);
      } else if (TakeSymbol("-")) {
        SQ_ASSIGN_OR_RETURN(Expr::Ptr right, ParseMul());
        left = Expr::Binary(BinOp::kSub, left, right);
      } else {
        return left;
      }
    }
  }

  Result<Expr::Ptr> ParseMul() {
    SQ_ASSIGN_OR_RETURN(Expr::Ptr left, ParseUnary());
    for (;;) {
      if (TakeSymbol("*")) {
        SQ_ASSIGN_OR_RETURN(Expr::Ptr right, ParseUnary());
        left = Expr::Binary(BinOp::kMul, left, right);
      } else if (TakeSymbol("/")) {
        SQ_ASSIGN_OR_RETURN(Expr::Ptr right, ParseUnary());
        left = Expr::Binary(BinOp::kDiv, left, right);
      } else {
        return left;
      }
    }
  }

  Result<Expr::Ptr> ParseUnary() {
    if (TakeSymbol("-")) {
      SQ_ASSIGN_OR_RETURN(Expr::Ptr e, ParseUnary());
      return Expr::Unary(UnOp::kNeg, e);
    }
    return ParsePrimary();
  }

  Result<Expr::Ptr> ParsePrimary() {
    const Token& t = Peek();
    switch (t.kind) {
      case TokKind::kInt: {
        int64_t v = Take().int_val;
        return Expr::Const(Value(v));
      }
      case TokKind::kDouble: {
        double v = Take().dbl_val;
        return Expr::Const(Value(v));
      }
      case TokKind::kString: {
        std::string v = Take().text;
        return Expr::Const(Value(std::move(v)));
      }
      case TokKind::kIdent: {
        if (IsKeyword(t, "null")) {
          Take();
          return Expr::Const(Value());
        }
        return Expr::Attr(Take().text);
      }
      case TokKind::kSymbol:
        if (TakeSymbol("(")) {
          SQ_ASSIGN_OR_RETURN(Expr::Ptr e, ParseOr());
          SQ_RETURN_IF_ERROR(ExpectSymbol(")"));
          return e;
        }
        return Err("unexpected symbol '" + t.text + "'");
      case TokKind::kEnd:
        return Err("unexpected end of input");
    }
    return Err("unexpected token");
  }

  // ---- algebra grammar ----

  Result<AlgebraExpr::Ptr> ParseSetOp() {
    SQ_ASSIGN_OR_RETURN(AlgebraExpr::Ptr left, ParseJoin());
    for (;;) {
      if (TakeKeyword("union")) {
        SQ_ASSIGN_OR_RETURN(AlgebraExpr::Ptr right, ParseJoin());
        left = AlgebraExpr::Union(left, right);
      } else if (TakeKeyword("diff") || TakeKeyword("minus")) {
        SQ_ASSIGN_OR_RETURN(AlgebraExpr::Ptr right, ParseJoin());
        left = AlgebraExpr::Diff(left, right);
      } else {
        return left;
      }
    }
  }

  Result<AlgebraExpr::Ptr> ParseJoin() {
    SQ_ASSIGN_OR_RETURN(AlgebraExpr::Ptr left, ParseAlgPrimary());
    while (TakeKeyword("join")) {
      Expr::Ptr cond = Expr::True();
      if (TakeSymbol("[")) {
        SQ_ASSIGN_OR_RETURN(cond, ParseOr());
        SQ_RETURN_IF_ERROR(ExpectSymbol("]"));
      }
      SQ_ASSIGN_OR_RETURN(AlgebraExpr::Ptr right, ParseAlgPrimary());
      left = AlgebraExpr::Join(cond, left, right);
    }
    return left;
  }

  Result<AlgebraExpr::Ptr> ParseAlgPrimary() {
    const Token& t = Peek();
    if (IsKeyword(t, "project")) {
      Take();
      SQ_RETURN_IF_ERROR(ExpectSymbol("["));
      std::vector<std::string> attrs;
      for (;;) {
        if (Peek().kind != TokKind::kIdent) return Err("expected attribute");
        attrs.push_back(Take().text);
        if (!TakeSymbol(",")) break;
      }
      SQ_RETURN_IF_ERROR(ExpectSymbol("]"));
      SQ_RETURN_IF_ERROR(ExpectSymbol("("));
      SQ_ASSIGN_OR_RETURN(AlgebraExpr::Ptr child, ParseSetOp());
      SQ_RETURN_IF_ERROR(ExpectSymbol(")"));
      return AlgebraExpr::Project(std::move(attrs), child);
    }
    if (IsKeyword(t, "select")) {
      Take();
      SQ_RETURN_IF_ERROR(ExpectSymbol("["));
      SQ_ASSIGN_OR_RETURN(Expr::Ptr cond, ParseOr());
      SQ_RETURN_IF_ERROR(ExpectSymbol("]"));
      SQ_RETURN_IF_ERROR(ExpectSymbol("("));
      SQ_ASSIGN_OR_RETURN(AlgebraExpr::Ptr child, ParseSetOp());
      SQ_RETURN_IF_ERROR(ExpectSymbol(")"));
      return AlgebraExpr::Select(cond, child);
    }
    if (t.kind == TokKind::kIdent) {
      return AlgebraExpr::Scan(Take().text);
    }
    if (TakeSymbol("(")) {
      SQ_ASSIGN_OR_RETURN(AlgebraExpr::Ptr e, ParseSetOp());
      SQ_RETURN_IF_ERROR(ExpectSymbol(")"));
      return e;
    }
    return Err("expected relation, select, project, or '('");
  }

  std::vector<Token> toks_;
  size_t pos_ = 0;
};

}  // namespace

Result<Expr::Ptr> ParsePredicate(std::string_view text) {
  SQ_ASSIGN_OR_RETURN(std::vector<Token> toks, Lexer(text).Tokenize());
  return Parser(std::move(toks)).ParsePredicateAll();
}

Result<AlgebraExpr::Ptr> ParseAlgebra(std::string_view text) {
  SQ_ASSIGN_OR_RETURN(std::vector<Token> toks, Lexer(text).Tokenize());
  return Parser(std::move(toks)).ParseAlgebraAll();
}

Result<SchemaDecl> ParseSchemaDecl(std::string_view text) {
  SQ_ASSIGN_OR_RETURN(std::vector<Token> toks, Lexer(text).Tokenize());
  size_t pos = 0;
  auto take = [&]() -> const Token& { return toks[pos++]; };
  auto peek = [&]() -> const Token& { return toks[pos]; };
  auto expect_sym = [&](std::string_view s) -> Status {
    if (peek().kind == TokKind::kSymbol && peek().text == s) {
      ++pos;
      return Status::OK();
    }
    return Status::InvalidArgument("expected '" + std::string(s) +
                                   "' in schema declaration");
  };

  if (peek().kind != TokKind::kIdent) {
    return Status::InvalidArgument("expected relation name");
  }
  SchemaDecl decl;
  decl.name = take().text;
  SQ_RETURN_IF_ERROR(expect_sym("("));

  std::vector<Attribute> attrs;
  for (;;) {
    if (peek().kind != TokKind::kIdent) {
      return Status::InvalidArgument("expected attribute name");
    }
    Attribute a;
    a.name = take().text;
    a.type = ValueType::kInt;
    // Optional ":type" — the lexer has no ':' symbol, so accept the form
    // "name type" too? No: require types via suffix identifiers "int" etc.
    // after the name, e.g. "note string". Simpler and unambiguous: a second
    // identifier before ',' or ')' is the type name.
    if (peek().kind == TokKind::kIdent) {
      const Token& ty = take();
      if (IsKeyword(ty, "int")) {
        a.type = ValueType::kInt;
      } else if (IsKeyword(ty, "double")) {
        a.type = ValueType::kDouble;
      } else if (IsKeyword(ty, "string")) {
        a.type = ValueType::kString;
      } else {
        return Status::InvalidArgument("unknown attribute type: " + ty.text);
      }
    }
    attrs.push_back(std::move(a));
    if (peek().kind == TokKind::kSymbol && peek().text == ",") {
      ++pos;
      continue;
    }
    break;
  }
  SQ_RETURN_IF_ERROR(expect_sym(")"));

  std::vector<std::string> key;
  if (pos < toks.size() && IsKeyword(peek(), "key")) {
    ++pos;
    SQ_RETURN_IF_ERROR(expect_sym("("));
    for (;;) {
      if (peek().kind != TokKind::kIdent) {
        return Status::InvalidArgument("expected key attribute name");
      }
      key.push_back(take().text);
      if (peek().kind == TokKind::kSymbol && peek().text == ",") {
        ++pos;
        continue;
      }
      break;
    }
    SQ_RETURN_IF_ERROR(expect_sym(")"));
  }
  if (peek().kind != TokKind::kEnd) {
    return Status::InvalidArgument("trailing input in schema declaration");
  }
  decl.schema = Schema(std::move(attrs), std::move(key));
  SQ_RETURN_IF_ERROR(decl.schema.Validate());
  return decl;
}

}  // namespace squirrel
