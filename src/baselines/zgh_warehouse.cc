#include "baselines/zgh_warehouse.h"

namespace squirrel {

Annotation WarehouseAnnotation(const Vdp& vdp) {
  Annotation ann;
  for (const auto& name : vdp.DerivedNames()) {
    const VdpNode* node = vdp.Find(name);
    if (!node->exported) {
      (void)ann.SetAll(vdp, name, AttrMode::kVirtual);
    }
  }
  return ann;
}

Annotation FullyMaterializedAnnotation() {
  return Annotation::AllMaterialized();
}

Annotation FullyVirtualAnnotation(const Vdp& vdp) {
  Annotation ann;
  for (const auto& name : vdp.DerivedNames()) {
    (void)ann.SetAll(vdp, name, AttrMode::kVirtual);
  }
  return ann;
}

}  // namespace squirrel
