// Baseline 2: a [ZGHW95]-style warehouse.
//
// Zhuge, Garcia-Molina, Hammer & Widom's warehouse materializes the view
// itself but keeps *no auxiliary data*: every incremental update that needs
// joining data from other relations triggers compensated polling of the
// sources. The paper presents Squirrel's fully-materialized-support mode as
// the other end of the same spectrum (Example 2.2 "can be viewed as a
// generalization of the approach in [ZGHW95]").
//
// In this library the warehouse is exactly a Squirrel mediator under the
// annotation "exports materialized, every interior node virtual", so the
// baseline is expressed as an annotation factory plus the standard Mediator.

#ifndef SQUIRREL_BASELINES_ZGH_WAREHOUSE_H_
#define SQUIRREL_BASELINES_ZGH_WAREHOUSE_H_

#include "vdp/annotation.h"
#include "vdp/vdp.h"

namespace squirrel {

/// The ZGHW95 warehouse annotation: export nodes fully materialized, every
/// other derived node fully virtual.
Annotation WarehouseAnnotation(const Vdp& vdp);

/// The fully-materialized-support annotation (Example 2.1): everything
/// materialized. Provided for symmetric bench code.
Annotation FullyMaterializedAnnotation();

/// The fully virtual annotation: every derived node virtual. Queries always
/// decompose to the sources (the virtual end of the spectrum, expressed
/// within the Squirrel machinery; see also VirtualMediator for the
/// standalone query-decomposition baseline).
Annotation FullyVirtualAnnotation(const Vdp& vdp);

}  // namespace squirrel

#endif  // SQUIRREL_BASELINES_ZGH_WAREHOUSE_H_
