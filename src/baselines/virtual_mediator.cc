#include "baselines/virtual_mediator.h"

#include <set>

#include "common/logging.h"
#include "relational/operators.h"

namespace squirrel {

Result<std::unique_ptr<VirtualMediator>> VirtualMediator::Create(
    PlannerInput input, std::vector<SourceSetup> sources,
    Scheduler* scheduler, Time q_proc_delay) {
  if (scheduler == nullptr) {
    return Status::InvalidArgument("virtual mediator needs a scheduler");
  }
  auto med = std::unique_ptr<VirtualMediator>(new VirtualMediator());
  med->input_ = std::move(input);
  med->scheduler_ = scheduler;
  med->q_proc_delay_ = q_proc_delay;
  for (size_t i = 0; i < sources.size(); ++i) {
    auto rt = std::make_unique<SourceRuntime>();
    rt->setup = sources[i];
    med->source_index_[sources[i].db->name()] = i;
    med->sources_.push_back(std::move(rt));
  }
  // Every scan must bind to a registered source.
  for (const auto& [scan, binding] : med->input_.scans) {
    (void)scan;
    if (!med->source_index_.count(binding.source_db)) {
      return Status::NotFound("scan binds to unregistered source " +
                              binding.source_db);
    }
  }
  return med;
}

Status VirtualMediator::Start() {
  for (auto& rt : sources_) {
    rt->inbound = std::make_unique<Channel<SourceToMediatorMsg>>(
        scheduler_, rt->setup.comm_delay);
    rt->inbound->SetReceiver([this](SourceToMediatorMsg msg) {
      if (!std::holds_alternative<PollAnswer>(msg)) return;
      PollAnswer answer = std::get<PollAnswer>(std::move(msg));
      if (!wait_.has_value()) {
        SQ_LOG(kWarn) << "stray poll answer from " << answer.source;
        return;
      }
      auto& ready = wait_->ready[answer.source];
      for (auto& rel : answer.results) ready.push_back(std::move(rel));
      wait_->answered_at[answer.source] = answer.answered_at;
      if (--wait_->remaining == 0) {
        auto done = std::move(wait_->on_complete);
        done();
      }
    });
    rt->outbound = std::make_unique<Channel<PollRequest>>(
        scheduler_, rt->setup.comm_delay);
    rt->responder = std::make_unique<PollResponder>(
        rt->setup.db, scheduler_, rt->inbound.get(), /*announcer=*/nullptr,
        rt->setup.q_proc_delay);
    auto* responder = rt->responder.get();
    rt->outbound->SetReceiver(
        [responder](PollRequest req) { responder->OnRequest(std::move(req)); });
  }
  return Status::OK();
}

void VirtualMediator::SubmitQuery(
    const ViewQuery& q, std::function<void(Result<ViewAnswer>)> callback) {
  pending_.push_back([this, q, cb = std::move(callback)]() mutable {
    RunQuery(std::move(q), std::move(cb));
  });
  StartNext();
}

void VirtualMediator::StartNext() {
  if (busy_ || pending_.empty()) return;
  busy_ = true;
  auto txn = std::move(pending_.front());
  pending_.pop_front();
  txn();
}

void VirtualMediator::Finish() {
  busy_ = false;
  wait_.reset();
  if (!pending_.empty()) {
    scheduler_->After(0, [this]() { StartNext(); });
  }
}

void VirtualMediator::RunQuery(ViewQuery q,
                               std::function<void(Result<ViewAnswer>)> cb) {
  // Find the export definition.
  const AlgebraExpr::Ptr* def = nullptr;
  for (const auto& e : input_.exports) {
    if (e.name == q.relation) {
      def = &e.definition;
      break;
    }
  }
  if (def == nullptr) {
    cb(Status::NotFound("no export relation named " + q.relation));
    Finish();
    return;
  }
  AlgebraExpr::Ptr view = *def;

  // Decompose: per scanned relation, the attributes used anywhere in the
  // definition plus the query, and the selection clauses local to it.
  std::set<std::string> scans;
  view->CollectScans(&scans);

  // Collect all condition clauses usable for pushdown: the view's selection
  // conditions stay inside the definition (EvalAlgebra applies them); only
  // the *query* condition is pushed here when single-source.
  std::map<std::string, PollSpec> specs;  // scan -> spec
  Status st = Status::OK();
  for (const auto& scan : scans) {
    auto bit = input_.scans.find(scan);
    if (bit == input_.scans.end()) {
      st = Status::NotFound("unbound scan " + scan);
      break;
    }
    const Schema& schema = bit->second.schema;
    PollSpec spec;
    spec.relation = bit->second.relation;
    spec.attrs = schema.AttributeNames();
    std::vector<Expr::Ptr> pushed;
    if (q.cond) {
      for (const auto& clause : ConjunctiveClauses(q.cond)) {
        bool local = true;
        for (const auto& a : clause->ReferencedAttrs()) {
          if (!schema.Contains(a)) {
            local = false;
            break;
          }
        }
        if (local) pushed.push_back(clause);
      }
    }
    spec.cond = AndAll(pushed);
    specs[scan] = std::move(spec);
  }
  if (!st.ok()) {
    cb(st);
    Finish();
    return;
  }

  // Group per source, one transaction each (all fragments from one source
  // reflect a single state).
  std::map<std::string, PollRequest> grouped;
  std::map<std::string, std::vector<std::string>> order;  // source -> scans
  for (const auto& [scan, spec] : specs) {
    const auto& binding = input_.scans.at(scan);
    PollRequest& req = grouped[binding.source_db];
    if (req.polls.empty()) req.id = next_poll_id_++;
    req.polls.push_back(spec);
    order[binding.source_db].push_back(scan);
  }

  size_t poll_count = 0;
  for (const auto& [source, req] : grouped) {
    (void)source;
    poll_count += req.polls.size();
  }

  auto evaluate = [this, q, view, order, cb, poll_count]() {
    // Bind answers to scan names and evaluate.
    std::map<std::string, Relation> fragments;
    for (const auto& [source, scan_names] : order) {
      auto& ready = wait_->ready[source];
      for (const auto& scan : scan_names) {
        if (ready.empty()) {
          cb(Status::Internal("missing poll answer for " + scan));
          Finish();
          return;
        }
        stats_.polled_tuples +=
            static_cast<uint64_t>(ready.front().TotalSize());
        fragments[scan] = std::move(ready.front());
        ready.pop_front();
      }
    }
    Catalog catalog;
    for (const auto& [scan, rel] : fragments) catalog.Register(scan, &rel);
    auto full = EvalAlgebra(view, catalog);
    if (!full.ok()) {
      cb(full.status());
      Finish();
      return;
    }
    auto answer_query = [&]() -> Result<Relation> {
      SQ_ASSIGN_OR_RETURN(Relation selected,
                          OpSelect(*full, q.cond ? q.cond : Expr::True()));
      std::vector<std::string> attrs =
          q.attrs.empty() ? selected.schema().AttributeNames() : q.attrs;
      SQ_ASSIGN_OR_RETURN(Relation projected,
                          OpProject(selected, attrs, Semantics::kBag));
      return projected.ToSet();
    };
    auto data = answer_query();
    if (!data.ok()) {
      cb(data.status());
      Finish();
      return;
    }
    ViewAnswer answer;
    answer.data = std::move(data).value();
    answer.used_virtual = true;
    answer.polls = poll_count;
    TimeVector reflect;
    for (const auto& rt : sources_) {
      auto ait = wait_->answered_at.find(rt->setup.db->name());
      reflect.push_back(ait != wait_->answered_at.end()
                            ? ait->second
                            : scheduler_->Now());
    }
    answer.reflect = std::move(reflect);
    auto complete = [this, cb, answer]() mutable {
      answer.commit_time = scheduler_->Now();
      ++stats_.query_txns;
      cb(std::move(answer));
      Finish();
    };
    if (q_proc_delay_ > 0) {
      scheduler_->After(q_proc_delay_, complete);
    } else {
      complete();
    }
  };

  Wait wait;
  wait.remaining = grouped.size();
  wait.on_complete = evaluate;
  wait_ = std::move(wait);
  for (auto& [source, req] : grouped) {
    sources_[source_index_.at(source)]->outbound->Send(std::move(req));
  }
  stats_.polls += poll_count;
}

}  // namespace squirrel
