// Baseline 1: the traditional fully *virtual* approach (paper §1's
// [SBG+81, DH84, LMR90] line): no local materialization at all. Every query
// against the view is decomposed — selections and projections pushed to the
// relevant sources — the fragments are fetched, and the view definition is
// evaluated on the spot. Updates at the sources cost the mediator nothing;
// every query pays full decomposition + network + evaluation.

#ifndef SQUIRREL_BASELINES_VIRTUAL_MEDIATOR_H_
#define SQUIRREL_BASELINES_VIRTUAL_MEDIATOR_H_

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "mediator/mediator.h"  // SourceSetup
#include "mediator/query.h"
#include "sim/network.h"
#include "sim/scheduler.h"
#include "source/announcer.h"
#include "source/messages.h"
#include "source/source_db.h"
#include "vdp/planner.h"

namespace squirrel {

/// Counters for the virtual baseline.
struct VirtualMediatorStats {
  uint64_t query_txns = 0;
  uint64_t polls = 0;
  uint64_t polled_tuples = 0;
};

/// \brief A query-decomposition mediator with no materialized state.
class VirtualMediator {
 public:
  /// \param input scan bindings + export definitions (same as the planner)
  /// \param sources connection setups (announce_period ignored — pure
  ///        virtual sources are passive)
  static Result<std::unique_ptr<VirtualMediator>> Create(
      PlannerInput input, std::vector<SourceSetup> sources,
      Scheduler* scheduler, Time q_proc_delay = 0);

  /// Wires channels and responders.
  Status Start();

  /// Answers π_attrs σ_cond(export): decomposes to per-source fetches (one
  /// poll transaction per source), then evaluates the view definition.
  void SubmitQuery(const ViewQuery& q,
                   std::function<void(Result<ViewAnswer>)> callback);

  const VirtualMediatorStats& stats() const { return stats_; }

 private:
  struct SourceRuntime {
    SourceSetup setup;
    std::unique_ptr<Channel<SourceToMediatorMsg>> inbound;
    std::unique_ptr<Channel<PollRequest>> outbound;
    std::unique_ptr<PollResponder> responder;
  };
  struct Wait {
    size_t remaining = 0;
    std::map<std::string, std::deque<Relation>> ready;
    std::map<std::string, Time> answered_at;
    std::function<void()> on_complete;
  };

  VirtualMediator() = default;
  void RunQuery(ViewQuery q, std::function<void(Result<ViewAnswer>)> cb);
  void StartNext();
  void Finish();

  PlannerInput input_;
  Scheduler* scheduler_ = nullptr;
  Time q_proc_delay_ = 0;
  std::vector<std::unique_ptr<SourceRuntime>> sources_;
  std::map<std::string, size_t> source_index_;
  VirtualMediatorStats stats_;

  bool busy_ = false;
  std::deque<std::function<void()>> pending_;
  std::optional<Wait> wait_;
  uint64_t next_poll_id_ = 1;
};

}  // namespace squirrel

#endif  // SQUIRREL_BASELINES_VIRTUAL_MEDIATOR_H_
