// Canned VDPs and annotations from the paper's worked examples. These are
// the reference fixtures for tests, benchmarks (experiments E1-E3, E6, E10),
// and the example programs.

#ifndef SQUIRREL_VDP_PAPER_EXAMPLES_H_
#define SQUIRREL_VDP_PAPER_EXAMPLES_H_

#include "common/status.h"
#include "vdp/annotation.h"
#include "vdp/vdp.h"

namespace squirrel {

/// Figure 1 / Example 2.1: sources DB1.R(r1,r2,r3,r4) key r1 and
/// DB2.S(s1,s2,s3) key s1; export
///   T = π_{r1,r3,s1,s2}(σ_{r4=100} R ⋈_{r2=s1} σ_{s3<50} S)
/// decomposed as leaf-parents R' = π_{r1,r2,r3}σ_{r4=100}(R),
/// S' = π_{s1,s2}σ_{s3<50}(S) and SPJ node T = π(R' ⋈_{r2=s1} S').
/// (The prose of Example 2.1 omits r3 from T; we follow Figure 1, which
/// includes it — Example 2.3 queries r3.)
Result<Vdp> BuildFigure1Vdp();

/// Example 2.1 annotation: everything materialized.
Annotation AnnotationExample21();

/// Example 2.2 annotation: R' fully virtual, S' and T materialized.
Annotation AnnotationExample22(const Vdp& vdp);

/// Example 2.3 annotation: T[r1^m, r3^v, s1^m, s2^v], R' and S' virtual.
Annotation AnnotationExample23(const Vdp& vdp);

/// Figure 4 / Example 5.1: sources A(a1,a2) key a1, B(b1,b2) key b1,
/// C(c1,c2) key c1, D(d1,d2) key d1; exports
///   E = π_{a1,a2,b1} σ(A ⋈_{a1*a1 + a2 < b2*b2} B)
///   G = π_{a1,b1} E − π_{c2,d2} σ(C ⋈_{c1=d1} D)
/// with leaf-parents A', B', C', D' and F = π_{c2,d2}(C' ⋈_{c1=d1} D').
/// (The paper omits F's projection attributes; we pick (c2,d2) renum-
/// bered to match (a1,b1) via attribute names ga/gb on both diff terms.)
Result<Vdp> BuildFigure4Vdp();

/// Example 5.1's suggested annotation: B' and F fully virtual,
/// E[a1^m, a2^v, b1^m], everything else materialized.
Annotation AnnotationExample51(const Vdp& vdp);

}  // namespace squirrel

#endif  // SQUIRREL_VDP_PAPER_EXAMPLES_H_
