// View Decomposition Plans (paper §5).
//
// A VDP is a labeled dag: leaves are source-database relations, non-leaves
// are relations maintained by the mediator, and each non-leaf carries a
// def(v) deriving it from its children. Export nodes are the relations the
// integrated view offers to queries. Update propagation proceeds along the
// edges, leaves to exports; VDPs are the static analogue of query execution
// plans.

#ifndef SQUIRREL_VDP_VDP_H_
#define SQUIRREL_VDP_VDP_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "relational/schema.h"
#include "vdp/node_def.h"

namespace squirrel {

/// \brief One node of a VDP.
struct VdpNode {
  std::string name;    ///< relation name, unique in the VDP
  Schema schema;       ///< full logical schema (annotation-independent)
  bool is_leaf = false;
  std::string source_db;        ///< leaves: owning source database
  std::string source_relation;  ///< leaves: relation name at the source
  std::optional<NodeDef> def;   ///< non-leaves: the derivation
  bool exported = false;        ///< member of the Export set

  /// Set for difference nodes, bag otherwise; leaves are sets.
  Semantics semantics() const {
    return is_leaf || (def && def->kind() == NodeDef::Kind::kDiff)
               ? Semantics::kSet
               : Semantics::kBag;
  }
};

/// \brief The dag of nodes. Nodes must be added children-first, which also
/// certifies acyclicity; insertion order is a topological order.
class Vdp {
 public:
  Vdp() = default;

  /// Adds a leaf node for relation \p source_relation of \p source_db.
  Status AddLeaf(const std::string& name, const std::string& source_db,
                 const std::string& source_relation, Schema schema);

  /// Adds a derived node. All children must already exist; the schema is
  /// inferred from the definition. Restriction (a) of §5.1 is enforced:
  /// a node with a leaf child must be a single-term project/select of it.
  Status AddDerived(const std::string& name, NodeDef def,
                    bool exported = false);

  /// Marks an existing non-leaf node as exported.
  Status MarkExported(const std::string& name);

  /// Node lookup; NotFound if absent.
  Result<const VdpNode*> Get(const std::string& name) const;
  /// Node lookup; nullptr if absent.
  const VdpNode* Find(const std::string& name) const;
  /// True iff a node with this name exists.
  bool Contains(const std::string& name) const {
    return index_.count(name) > 0;
  }

  /// All node names in insertion (= topological, children-first) order.
  const std::vector<std::string>& TopoOrder() const { return order_; }
  /// Names of leaf nodes.
  std::vector<std::string> LeafNames() const;
  /// Names of non-leaf nodes, children-first.
  std::vector<std::string> DerivedNames() const;
  /// Names of export nodes.
  std::vector<std::string> ExportNames() const;

  /// Names of nodes that list \p name among their children.
  std::vector<std::string> Parents(const std::string& name) const;

  /// True iff \p name is a non-leaf with at least one leaf child.
  bool IsLeafParent(const std::string& name) const;

  /// Leaf node name for (source_db, source_relation), if present.
  const VdpNode* FindLeaf(const std::string& source_db,
                          const std::string& source_relation) const;

  /// Structural checks beyond the incremental ones (maximal nodes exported).
  Status Validate() const;

  /// Number of nodes.
  size_t NodeCount() const { return nodes_.size(); }

  /// Human-readable listing of all nodes and defs.
  std::string ToString() const;

  /// Graphviz dot rendering (leaves as boxes, exports as double circles —
  /// the paper's Figure 1/4 conventions).
  std::string ToDot(const std::string& graph_name = "vdp") const;

 private:
  Status AddNode(VdpNode node);

  std::vector<VdpNode> nodes_;
  std::vector<std::string> order_;
  std::map<std::string, size_t> index_;
};

}  // namespace squirrel

#endif  // SQUIRREL_VDP_VDP_H_
