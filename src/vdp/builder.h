// Fluent construction of VDPs.
//
// VdpBuilder wraps Vdp's children-first API with parsing conveniences so
// tests, examples, and the planner can assemble plans tersely:
//
//   VdpBuilder b;
//   b.Leaf("R", "DB1", "R", "R(r1, r2, r3, r4) key(r1)");
//   b.LeafParent("R'", "R", {"r1", "r2", "r3"}, "r4 = 100");
//   b.Spj("T", {{"R'", {"r1","r2","r3"}}, {"S'", {"s1","s2"}}},
//         {"r2 = s1"}, {"r1", "r3", "s1", "s2"}, "", /*export=*/true);
//   SQ_ASSIGN_OR_RETURN(Vdp vdp, b.Build());

#ifndef SQUIRREL_VDP_BUILDER_H_
#define SQUIRREL_VDP_BUILDER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "vdp/vdp.h"

namespace squirrel {

/// A child term spec with a textual selection condition.
struct TermSpec {
  std::string child;
  std::vector<std::string> project;
  std::string select;  ///< predicate text; empty = true
};

/// \brief Incremental Vdp assembly with text conditions. The first error
/// sticks; Build() reports it.
class VdpBuilder {
 public:
  VdpBuilder() = default;

  /// Adds a leaf; \p schema_decl is e.g. "R(r1, r2, note string) key(r1)".
  /// The declared name inside the decl is ignored in favor of \p name.
  VdpBuilder& Leaf(const std::string& name, const std::string& source_db,
                   const std::string& source_relation,
                   const std::string& schema_decl);

  /// Adds a leaf with an explicit schema.
  VdpBuilder& LeafWithSchema(const std::string& name,
                             const std::string& source_db,
                             const std::string& source_relation,
                             Schema schema);

  /// Adds a leaf-parent: π_project σ_select(leaf).
  VdpBuilder& LeafParent(const std::string& name, const std::string& leaf,
                         const std::vector<std::string>& project,
                         const std::string& select = "");

  /// Adds an SPJ node. \p join_conds are textual conditions (size =
  /// terms-1); \p outer_project empty keeps all attrs; \p outer_select empty
  /// means true.
  VdpBuilder& Spj(const std::string& name, const std::vector<TermSpec>& terms,
                  const std::vector<std::string>& join_conds,
                  const std::vector<std::string>& outer_project = {},
                  const std::string& outer_select = "",
                  bool exported = false);

  /// Adds a union node.
  VdpBuilder& Union(const std::string& name, const TermSpec& left,
                    const TermSpec& right, bool exported = false);

  /// Adds a difference node (set node).
  VdpBuilder& Diff(const std::string& name, const TermSpec& left,
                   const TermSpec& right, bool exported = false);

  /// Marks a node exported.
  VdpBuilder& Export(const std::string& name);

  /// Finishes: validates and returns the VDP (or the first recorded error).
  Result<Vdp> Build();

 private:
  Result<ChildTerm> MakeTerm(const TermSpec& spec);
  void Record(const Status& st);

  Vdp vdp_;
  Status first_error_;
};

}  // namespace squirrel

#endif  // SQUIRREL_VDP_BUILDER_H_
