// Node definitions def(v) for non-leaf VDP nodes (paper §5.1 item 4).
//
// The permitted forms are:
//  (a/b) SPJ:  T = π_p σ_f (π_p1 σ_f1 C1 ⋈_g1 ... ⋈_g(n-1) π_pn σ_fn Cn)
//  (c)  union: T = (π_C σ_h1 C1) ∪ (π_C σ_h2 C2)
//       diff:  T = (π_C σ_h1 C1) − (π_C σ_h2 C2)
// where the Ci are child nodes. Leaf-parents are the SPJ form with a single
// term over a leaf (restriction (a): only projection and selection).
// Difference yields a *set node*; all other nodes are *bag nodes*.

#ifndef SQUIRREL_VDP_NODE_DEF_H_
#define SQUIRREL_VDP_NODE_DEF_H_

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "relational/expr.h"
#include "relational/relation.h"

namespace squirrel {

/// One π_pi σ_fi Ci factor of a node definition.
struct ChildTerm {
  std::string child;                 ///< name of the child VDP node
  std::vector<std::string> project;  ///< attrs kept (order = output order)
  Expr::Ptr select;                  ///< selection over child attrs (or null)

  /// The term's selection, never null (True() when absent).
  Expr::Ptr SelectOrTrue() const { return select ? select : Expr::True(); }

  /// Attrs of the child this term reads: project ∪ attrs(select).
  std::vector<std::string> NeededAttrs() const;
};

/// Resolves a node name to its current contents, restricted to at least the
/// requested attributes (the local store serves materialized repositories;
/// the VAP serves temporaries for virtual data). The returned pointer may be
/// non-owning (aliased) — it must stay valid for the duration of the call
/// that requested it.
using NodeStateFn = std::function<Result<std::shared_ptr<const Relation>>(
    const std::string& node, const std::vector<std::string>& attrs)>;

/// \brief The derivation def(v) of a non-leaf VDP node.
class NodeDef {
 public:
  /// Definition form.
  enum class Kind { kSpj, kUnion, kDiff };

  /// Builds an SPJ definition. \p join_conds has terms.size()-1 entries;
  /// join_conds[i] relates the accumulated left side (terms 0..i) with
  /// term i+1 (left-deep chain). \p outer_project empty means "all attrs of
  /// the join result".
  static NodeDef Spj(std::vector<ChildTerm> terms,
                     std::vector<Expr::Ptr> join_conds,
                     std::vector<std::string> outer_project,
                     Expr::Ptr outer_select);

  /// Builds a two-child union definition (bag node).
  static NodeDef Union2(ChildTerm left, ChildTerm right);

  /// Builds a two-child difference definition (set node).
  static NodeDef Diff2(ChildTerm left, ChildTerm right);

  Kind kind() const { return kind_; }
  /// The child terms (2 for union/diff; >= 1 for SPJ).
  const std::vector<ChildTerm>& terms() const { return terms_; }
  /// Left-deep join conditions (SPJ only).
  const std::vector<Expr::Ptr>& join_conds() const { return join_conds_; }
  /// Outer projection (SPJ only; empty = keep all).
  const std::vector<std::string>& outer_project() const {
    return outer_project_;
  }
  /// Outer selection (SPJ only; never null).
  const Expr::Ptr& outer_select() const { return outer_select_; }

  /// Distinct child node names, in order of first appearance. (A child may
  /// appear in several terms — self-joins — but is listed once.)
  std::vector<std::string> Children() const;

  /// Storage semantics: set for difference nodes, bag otherwise (§5.1).
  Semantics semantics() const {
    return kind_ == Kind::kDiff ? Semantics::kSet : Semantics::kBag;
  }

  /// Infers this node's schema from child schemas. Keys propagate through
  /// term projections and join concatenation.
  Result<Schema> InferSchema(
      const std::function<Result<Schema>(const std::string&)>& child_schema)
      const;

  /// Full (re)computation of the node's contents from child states.
  /// Bag semantics for SPJ/union; set for difference.
  Result<Relation> Evaluate(const NodeStateFn& states) const;

  /// Renders the definition, e.g.
  /// "project[r1,s1](select[r4 = 100](R') join[r2 = s1] S')".
  std::string ToString() const;

 private:
  NodeDef() = default;
  Kind kind_ = Kind::kSpj;
  std::vector<ChildTerm> terms_;
  std::vector<Expr::Ptr> join_conds_;
  std::vector<std::string> outer_project_;
  Expr::Ptr outer_select_;
};

/// Evaluates one term πσ(child_state) as a bag. Skips copies when the term
/// is a pass-through of the provided state.
Result<Relation> EvalTerm(const Relation& child_state, const ChildTerm& term);

}  // namespace squirrel

#endif  // SQUIRREL_VDP_NODE_DEF_H_
