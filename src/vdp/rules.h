// Update-propagation rules along VDP edges (paper §5.2), fired under the
// sequential discipline of §6.4 that fixes Example 6.1's "missing
// contribution" problem: a node's delta is fired toward its parents using
// the *current* repositories of its siblings (already-processed siblings
// expose their new state, unprocessed ones their old state), and the node's
// own repository is updated only after firing.
//
// Implemented rule families:
//  - SPJ: ΔT = π_p σ_f(term_1 ⋈ ... Δterm_i ... ⋈ term_n), with the
//    occurrences of the firing child at positions before the firing one
//    taken in their new state (handles self-joins).
//  - Union: ΔT = filtered Δterm (bag).
//  - Difference (set node, presence deltas):
//      diff1 (firing left):  ΔT = Δ̂₁ − R₂  (both signs; the paper's
//        "(ΔR₁)⁻ ∩ R₂" deletion term is corrected to "−R₂" — see DESIGN.md)
//      diff2 (firing right): ΔT = (Δ̂₂)⁻¹ ∩ R₁
//    where Δ̂ is the presence delta the bag-level change induces on the term.

#ifndef SQUIRREL_VDP_RULES_H_
#define SQUIRREL_VDP_RULES_H_

#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "delta/delta.h"
#include "relational/index.h"
#include "vdp/annotation.h"
#include "vdp/vdp.h"

namespace squirrel {

/// A node's repository plus a persistent index over it, as served to rule
/// firing. Either pointer may be null (repo doesn't cover the requested
/// attrs / no index maintained on them) — firing then falls back to
/// materializing the term and hashing it per call.
struct IndexedState {
  const Relation* repo = nullptr;
  const HashIndex* index = nullptr;
};

/// Resolver the IUP hands to FireEdgeRules: given a sibling node and the
/// equi-join attributes a rule wants to probe, returns the node's current
/// repository and a maintained index keyed on exactly those attributes.
using IndexProbeFn = std::function<IndexedState(
    const std::string& node, const std::vector<std::string>& attrs)>;

/// Computes the contribution to parent's Δ repository from a change
/// \p child_delta (full-attribute bag delta, not yet applied to the child's
/// state) of node \p child.
///
/// \param parent the parent node whose def consumes \p child
/// \param child name of the changed node (a child of \p parent)
/// \param child_delta the child's pending delta, in the child's full schema
///        or any schema covering the attrs the parent's terms need
/// \param states resolver for current node states (see NodeStateFn); for the
///        firing child it must return the PRE-application state
Result<Delta> FireEdgeRules(const VdpNode& parent, const std::string& child,
                            const Delta& child_delta,
                            const NodeStateFn& states);

/// As above, but SPJ rule firing probes persistent repository indexes (via
/// \p probes) for sibling terms instead of rebuilding hash tables per
/// invocation. Passing a null \p probes is identical to the overload above;
/// the result is byte-identical either way. Self-join occurrences that must
/// be seen in their NEW state (firing child at an earlier position) always
/// take the unindexed path, because the repository index holds pre-delta
/// state.
Result<Delta> FireEdgeRules(const VdpNode& parent, const std::string& child,
                            const Delta& child_delta,
                            const NodeStateFn& states,
                            const IndexProbeFn& probes);

/// Index advisor: registers into \p manager the (node, attrs) specs that
/// FireEdgeRules' SPJ rules and the VAP's key-based construction will probe
/// for this VDP + annotation. Only children whose materialized repository
/// covers the term's needed attrs are considered (others are served from
/// VAP temps, which are transient). Run once per VDP at build time.
void AdviseIndexes(const Vdp& vdp, const Annotation& ann,
                   IndexManager* manager);

}  // namespace squirrel

#endif  // SQUIRREL_VDP_RULES_H_
