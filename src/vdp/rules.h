// Update-propagation rules along VDP edges (paper §5.2), fired under the
// sequential discipline of §6.4 that fixes Example 6.1's "missing
// contribution" problem: a node's delta is fired toward its parents using
// the *current* repositories of its siblings (already-processed siblings
// expose their new state, unprocessed ones their old state), and the node's
// own repository is updated only after firing.
//
// Implemented rule families:
//  - SPJ: ΔT = π_p σ_f(term_1 ⋈ ... Δterm_i ... ⋈ term_n), with the
//    occurrences of the firing child at positions before the firing one
//    taken in their new state (handles self-joins).
//  - Union: ΔT = filtered Δterm (bag).
//  - Difference (set node, presence deltas):
//      diff1 (firing left):  ΔT = Δ̂₁ − R₂  (both signs; the paper's
//        "(ΔR₁)⁻ ∩ R₂" deletion term is corrected to "−R₂" — see DESIGN.md)
//      diff2 (firing right): ΔT = (Δ̂₂)⁻¹ ∩ R₁
//    where Δ̂ is the presence delta the bag-level change induces on the term.

#ifndef SQUIRREL_VDP_RULES_H_
#define SQUIRREL_VDP_RULES_H_

#include <string>

#include "common/status.h"
#include "delta/delta.h"
#include "vdp/vdp.h"

namespace squirrel {

/// Computes the contribution to parent's Δ repository from a change
/// \p child_delta (full-attribute bag delta, not yet applied to the child's
/// state) of node \p child.
///
/// \param parent the parent node whose def consumes \p child
/// \param child name of the changed node (a child of \p parent)
/// \param child_delta the child's pending delta, in the child's full schema
///        or any schema covering the attrs the parent's terms need
/// \param states resolver for current node states (see NodeStateFn); for the
///        firing child it must return the PRE-application state
Result<Delta> FireEdgeRules(const VdpNode& parent, const std::string& child,
                            const Delta& child_delta,
                            const NodeStateFn& states);

}  // namespace squirrel

#endif  // SQUIRREL_VDP_RULES_H_
