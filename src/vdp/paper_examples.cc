#include "vdp/paper_examples.h"

#include "vdp/builder.h"

namespace squirrel {

Result<Vdp> BuildFigure1Vdp() {
  VdpBuilder b;
  b.Leaf("R", "DB1", "R", "R(r1, r2, r3, r4) key(r1)");
  b.Leaf("S", "DB2", "S", "S(s1, s2, s3) key(s1)");
  b.LeafParent("R'", "R", {"r1", "r2", "r3"}, "r4 = 100");
  b.LeafParent("S'", "S", {"s1", "s2"}, "s3 < 50");
  b.Spj("T",
        {{"R'", {"r1", "r2", "r3"}, ""}, {"S'", {"s1", "s2"}, ""}},
        {"r2 = s1"}, {"r1", "r3", "s1", "s2"}, "", /*exported=*/true);
  return b.Build();
}

Annotation AnnotationExample21() { return Annotation::AllMaterialized(); }

Annotation AnnotationExample22(const Vdp& vdp) {
  Annotation ann;
  (void)ann.SetAll(vdp, "R'", AttrMode::kVirtual);
  return ann;
}

Annotation AnnotationExample23(const Vdp& vdp) {
  Annotation ann;
  (void)ann.SetAll(vdp, "R'", AttrMode::kVirtual);
  (void)ann.SetAll(vdp, "S'", AttrMode::kVirtual);
  (void)ann.SetFromSpec(vdp, "T", "r1 m, r3 v, s1 m, s2 v");
  return ann;
}

Result<Vdp> BuildFigure4Vdp() {
  // Attribute names of C and D are chosen so that F's projection aligns
  // with π_{a1,b1}(E) without attribute renaming (which the paper also
  // sets aside "in the interest of clarity").
  VdpBuilder b;
  b.Leaf("A", "DBA", "A", "A(a1, a2) key(a1)");
  b.Leaf("B", "DBB", "B", "B(b1, b2) key(b1)");
  b.Leaf("C", "DBC", "C", "C(c1, a1) key(c1)");
  b.Leaf("D", "DBD", "D", "D(d1, b1) key(d1)");
  b.LeafParent("A'", "A", {"a1", "a2"});
  b.LeafParent("B'", "B", {"b1", "b2"});
  b.LeafParent("C'", "C", {"c1", "a1"});
  b.LeafParent("D'", "D", {"d1", "b1"});
  b.Spj("E",
        {{"A'", {"a1", "a2"}, ""}, {"B'", {"b1", "b2"}, ""}},
        {"a1*a1 + a2 < b2*b2"}, {"a1", "a2", "b1"}, "", /*exported=*/true);
  b.Spj("F",
        {{"C'", {"c1", "a1"}, ""}, {"D'", {"d1", "b1"}, ""}},
        {"c1 = d1"}, {"a1", "b1"}, "", /*exported=*/false);
  b.Diff("G", {"E", {"a1", "b1"}, ""}, {"F", {"a1", "b1"}, ""},
         /*exported=*/true);
  return b.Build();
}

Annotation AnnotationExample51(const Vdp& vdp) {
  Annotation ann;
  (void)ann.SetAll(vdp, "B'", AttrMode::kVirtual);
  (void)ann.SetAll(vdp, "F", AttrMode::kVirtual);
  (void)ann.SetFromSpec(vdp, "E", "a1 m, a2 v, b1 m");
  return ann;
}

}  // namespace squirrel
