// VDP planning: decomposing view definitions into View Decomposition Plans.
//
// This is the generator side of Squirrel: given export relations defined in
// the relational algebra over named source relations, produce a VDP —
// leaves for the scanned source relations, leaf-parents holding the pushed
// selections/projections (paper §5.1 restriction (a)), SPJ nodes for
// join blocks, and union/difference nodes at set-operator boundaries.
// Selections are pushed to the lowest node that sees their attributes and
// projections are narrowed to the attributes actually needed above.
//
// SuggestAnnotation implements the §5.3 heuristics: keys of join nodes stay
// materialized, rarely-accessed attributes of expensive nodes go virtual,
// leaf-parents over frequently-updated sources go virtual, and cheap
// non-export nodes go virtual.

#ifndef SQUIRREL_VDP_PLANNER_H_
#define SQUIRREL_VDP_PLANNER_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "relational/algebra.h"
#include "vdp/annotation.h"
#include "vdp/vdp.h"

namespace squirrel {

/// Where a scanned relation lives.
struct SourceRelationBinding {
  std::string source_db;
  std::string relation;
  Schema schema;
};

/// One export relation of the integrated view.
struct ViewDefinition {
  std::string name;
  AlgebraExpr::Ptr definition;
};

/// Planner input: scan-name bindings plus the export definitions.
struct PlannerInput {
  std::map<std::string, SourceRelationBinding> scans;
  std::vector<ViewDefinition> exports;
};

/// Decomposes the exports into a validated VDP.
Result<Vdp> PlanVdp(const PlannerInput& input);

/// Workload hints driving the §5.3 annotation heuristics.
struct AnnotationHints {
  /// Updates per unit time, per source database. Sources above
  /// hot_update_threshold get virtual leaf-parents (Example 2.2).
  std::map<std::string, double> source_update_freq;
  double hot_update_threshold = 1.0;
  /// Frequently queried attributes per export node; other non-key
  /// attributes of expensive nodes go virtual (Example 2.3).
  std::map<std::string, std::set<std::string>> hot_attrs;
  /// Virtualize cheap non-export nodes (Example 5.1's F).
  bool virtualize_cheap_interior = true;
};

/// Suggests an annotation per the paper's trade-off guidance. Always keeps
/// join-node keys materialized ("the minimal suggested amount of
/// materialization for expensive join relations").
Annotation SuggestAnnotation(const Vdp& vdp, const AnnotationHints& hints);

}  // namespace squirrel

#endif  // SQUIRREL_VDP_PLANNER_H_
