#include "vdp/node_def.h"

#include <algorithm>
#include <set>

#include "common/strings.h"
#include "relational/operators.h"

namespace squirrel {

std::vector<std::string> ChildTerm::NeededAttrs() const {
  std::set<std::string> needed(project.begin(), project.end());
  if (select) {
    select->CollectAttrs(&needed);
  }
  return std::vector<std::string>(needed.begin(), needed.end());
}

NodeDef NodeDef::Spj(std::vector<ChildTerm> terms,
                     std::vector<Expr::Ptr> join_conds,
                     std::vector<std::string> outer_project,
                     Expr::Ptr outer_select) {
  NodeDef def;
  def.kind_ = Kind::kSpj;
  def.terms_ = std::move(terms);
  def.join_conds_ = std::move(join_conds);
  for (auto& c : def.join_conds_) {
    if (!c) c = Expr::True();
  }
  def.outer_project_ = std::move(outer_project);
  def.outer_select_ = outer_select ? std::move(outer_select) : Expr::True();
  return def;
}

NodeDef NodeDef::Union2(ChildTerm left, ChildTerm right) {
  NodeDef def;
  def.kind_ = Kind::kUnion;
  def.terms_ = {std::move(left), std::move(right)};
  def.outer_select_ = Expr::True();
  return def;
}

NodeDef NodeDef::Diff2(ChildTerm left, ChildTerm right) {
  NodeDef def;
  def.kind_ = Kind::kDiff;
  def.terms_ = {std::move(left), std::move(right)};
  def.outer_select_ = Expr::True();
  return def;
}

std::vector<std::string> NodeDef::Children() const {
  std::vector<std::string> out;
  for (const auto& t : terms_) {
    if (std::find(out.begin(), out.end(), t.child) == out.end()) {
      out.push_back(t.child);
    }
  }
  return out;
}

Result<Schema> NodeDef::InferSchema(
    const std::function<Result<Schema>(const std::string&)>& child_schema)
    const {
  // Per-term schemas.
  std::vector<Schema> term_schemas;
  for (const auto& term : terms_) {
    SQ_ASSIGN_OR_RETURN(Schema child, child_schema(term.child));
    // Validate the selection references existing attributes.
    if (term.select) {
      for (const auto& a : term.select->ReferencedAttrs()) {
        if (!child.Contains(a)) {
          return Status::InvalidArgument(
              "term selection on " + term.child +
              " references unknown attribute: " + a);
        }
      }
    }
    SQ_ASSIGN_OR_RETURN(Schema projected, child.Project(term.project));
    term_schemas.push_back(std::move(projected));
  }

  if (kind_ == Kind::kUnion || kind_ == Kind::kDiff) {
    if (term_schemas.size() != 2) {
      return Status::InvalidArgument("union/diff must have exactly 2 terms");
    }
    const auto a = term_schemas[0].AttributeNames();
    const auto b = term_schemas[1].AttributeNames();
    if (a != b) {
      return Status::InvalidArgument(
          "union/diff terms project different attributes: [" +
          Join(a, ",") + "] vs [" + Join(b, ",") + "]");
    }
    return term_schemas[0];
  }

  // SPJ: left-deep concatenation.
  if (term_schemas.empty()) {
    return Status::InvalidArgument("SPJ definition with no terms");
  }
  if (join_conds_.size() + 1 != term_schemas.size()) {
    return Status::InvalidArgument(
        "SPJ definition needs terms-1 join conditions, got " +
        std::to_string(join_conds_.size()) + " for " +
        std::to_string(term_schemas.size()) + " terms");
  }
  Schema acc = term_schemas[0];
  for (size_t i = 1; i < term_schemas.size(); ++i) {
    SQ_ASSIGN_OR_RETURN(acc, acc.Concat(term_schemas[i]));
    for (const auto& a : join_conds_[i - 1]->ReferencedAttrs()) {
      if (!acc.Contains(a)) {
        return Status::InvalidArgument(
            "join condition references unknown attribute: " + a);
      }
    }
  }
  for (const auto& a : outer_select_->ReferencedAttrs()) {
    if (!acc.Contains(a)) {
      return Status::InvalidArgument(
          "outer selection references unknown attribute: " + a);
    }
  }
  if (outer_project_.empty()) return acc;
  return acc.Project(outer_project_);
}

Result<Relation> EvalTerm(const Relation& child_state,
                          const ChildTerm& term) {
  bool trivial_select = !term.select || term.select->IsTrueLiteral();
  bool trivial_project =
      term.project == child_state.schema().AttributeNames();
  if (trivial_select && trivial_project) return child_state;
  SQ_ASSIGN_OR_RETURN(Relation selected,
                      OpSelect(child_state, term.SelectOrTrue()));
  return OpProject(selected, term.project, Semantics::kBag);
}

Result<Relation> NodeDef::Evaluate(const NodeStateFn& states) const {
  // Fetch term relations.
  std::vector<Relation> term_rels;
  for (const auto& term : terms_) {
    SQ_ASSIGN_OR_RETURN(std::shared_ptr<const Relation> child,
                        states(term.child, term.NeededAttrs()));
    SQ_ASSIGN_OR_RETURN(Relation tr, EvalTerm(*child, term));
    term_rels.push_back(std::move(tr));
  }

  if (kind_ == Kind::kUnion) {
    return OpUnion(term_rels[0], term_rels[1], Semantics::kBag);
  }
  if (kind_ == Kind::kDiff) {
    return OpDiff(term_rels[0].ToSet(), term_rels[1].ToSet());
  }

  Relation acc = std::move(term_rels[0]);
  for (size_t i = 1; i < term_rels.size(); ++i) {
    SQ_ASSIGN_OR_RETURN(acc, OpJoin(acc, term_rels[i], join_conds_[i - 1]));
  }
  SQ_ASSIGN_OR_RETURN(acc, OpSelect(acc, outer_select_));
  if (!outer_project_.empty()) {
    SQ_ASSIGN_OR_RETURN(acc, OpProject(acc, outer_project_, Semantics::kBag));
  }
  return acc;
}

namespace {

std::string TermToString(const ChildTerm& term) {
  std::string out = term.child;
  if (term.select && !term.select->IsTrueLiteral()) {
    out = "select[" + term.select->ToString() + "](" + out + ")";
  }
  out = "project[" + Join(term.project, ",") + "](" + out + ")";
  return out;
}

}  // namespace

std::string NodeDef::ToString() const {
  if (kind_ == Kind::kUnion) {
    return TermToString(terms_[0]) + " union " + TermToString(terms_[1]);
  }
  if (kind_ == Kind::kDiff) {
    return TermToString(terms_[0]) + " diff " + TermToString(terms_[1]);
  }
  std::string inner = TermToString(terms_[0]);
  for (size_t i = 1; i < terms_.size(); ++i) {
    std::string cond = join_conds_[i - 1]->IsTrueLiteral()
                           ? ""
                           : "[" + join_conds_[i - 1]->ToString() + "]";
    inner += " join" + cond + " " + TermToString(terms_[i]);
  }
  std::string out = inner;
  if (!outer_select_->IsTrueLiteral()) {
    out = "select[" + outer_select_->ToString() + "](" + out + ")";
  }
  if (!outer_project_.empty()) {
    out = "project[" + Join(outer_project_, ",") + "](" + out + ")";
  }
  return out;
}

}  // namespace squirrel
