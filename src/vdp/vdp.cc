#include "vdp/vdp.h"

#include <algorithm>

namespace squirrel {

Status Vdp::AddNode(VdpNode node) {
  if (node.name.empty()) {
    return Status::InvalidArgument("VDP node needs a name");
  }
  if (index_.count(node.name)) {
    return Status::AlreadyExists("VDP node already exists: " + node.name);
  }
  index_[node.name] = nodes_.size();
  order_.push_back(node.name);
  nodes_.push_back(std::move(node));
  return Status::OK();
}

Status Vdp::AddLeaf(const std::string& name, const std::string& source_db,
                    const std::string& source_relation, Schema schema) {
  SQ_RETURN_IF_ERROR(schema.Validate());
  VdpNode node;
  node.name = name;
  node.schema = std::move(schema);
  node.is_leaf = true;
  node.source_db = source_db;
  node.source_relation = source_relation;
  return AddNode(std::move(node));
}

Status Vdp::AddDerived(const std::string& name, NodeDef def, bool exported) {
  // Children must already exist (children-first insertion <=> acyclic).
  bool has_leaf_child = false;
  for (const auto& child : def.Children()) {
    const VdpNode* c = Find(child);
    if (c == nullptr) {
      return Status::NotFound("child node not yet defined: " + child +
                              " (add children before parents)");
    }
    if (c->is_leaf) has_leaf_child = true;
  }
  // §5.1 restriction (a): immediate parents of leaves may only project and
  // select on those leaves.
  if (has_leaf_child) {
    bool ok = def.kind() == NodeDef::Kind::kSpj && def.terms().size() == 1 &&
              def.outer_select()->IsTrueLiteral() &&
              def.outer_project().empty();
    if (!ok) {
      return Status::InvalidArgument(
          "node " + name +
          " has a leaf child but is not a pure project/select of it "
          "(paper §5.1 restriction (a))");
    }
  }
  SQ_ASSIGN_OR_RETURN(
      Schema schema,
      def.InferSchema([this](const std::string& child) -> Result<Schema> {
        SQ_ASSIGN_OR_RETURN(const VdpNode* c, Get(child));
        return c->schema;
      }));
  VdpNode node;
  node.name = name;
  node.schema = std::move(schema);
  node.def = std::move(def);
  node.exported = exported;
  return AddNode(std::move(node));
}

Status Vdp::MarkExported(const std::string& name) {
  auto it = index_.find(name);
  if (it == index_.end()) return Status::NotFound("no VDP node: " + name);
  if (nodes_[it->second].is_leaf) {
    return Status::InvalidArgument("cannot export a leaf node: " + name);
  }
  nodes_[it->second].exported = true;
  return Status::OK();
}

Result<const VdpNode*> Vdp::Get(const std::string& name) const {
  const VdpNode* n = Find(name);
  if (n == nullptr) return Status::NotFound("no VDP node: " + name);
  return n;
}

const VdpNode* Vdp::Find(const std::string& name) const {
  auto it = index_.find(name);
  return it == index_.end() ? nullptr : &nodes_[it->second];
}

std::vector<std::string> Vdp::LeafNames() const {
  std::vector<std::string> out;
  for (const auto& n : nodes_) {
    if (n.is_leaf) out.push_back(n.name);
  }
  return out;
}

std::vector<std::string> Vdp::DerivedNames() const {
  std::vector<std::string> out;
  for (const auto& name : order_) {
    if (!Find(name)->is_leaf) out.push_back(name);
  }
  return out;
}

std::vector<std::string> Vdp::ExportNames() const {
  std::vector<std::string> out;
  for (const auto& n : nodes_) {
    if (n.exported) out.push_back(n.name);
  }
  return out;
}

std::vector<std::string> Vdp::Parents(const std::string& name) const {
  std::vector<std::string> out;
  for (const auto& n : nodes_) {
    if (n.is_leaf || !n.def) continue;
    auto children = n.def->Children();
    if (std::find(children.begin(), children.end(), name) != children.end()) {
      out.push_back(n.name);
    }
  }
  return out;
}

bool Vdp::IsLeafParent(const std::string& name) const {
  const VdpNode* n = Find(name);
  if (n == nullptr || n->is_leaf || !n->def) return false;
  for (const auto& child : n->def->Children()) {
    const VdpNode* c = Find(child);
    if (c != nullptr && c->is_leaf) return true;
  }
  return false;
}

const VdpNode* Vdp::FindLeaf(const std::string& source_db,
                             const std::string& source_relation) const {
  for (const auto& n : nodes_) {
    if (n.is_leaf && n.source_db == source_db &&
        n.source_relation == source_relation) {
      return &n;
    }
  }
  return nullptr;
}

Status Vdp::Validate() const {
  if (nodes_.empty()) return Status::InvalidArgument("empty VDP");
  // Each maximal (parentless) non-leaf node must be in Export (§5.1 item 5).
  for (const auto& n : nodes_) {
    if (n.is_leaf) continue;
    if (Parents(n.name).empty() && !n.exported) {
      return Status::InvalidArgument(
          "maximal node " + n.name + " must be in the export set");
    }
  }
  // At least one export.
  if (ExportNames().empty()) {
    return Status::InvalidArgument("VDP has no export relations");
  }
  return Status::OK();
}

std::string Vdp::ToString() const {
  std::string out;
  for (const auto& name : order_) {
    const VdpNode* n = Find(name);
    out += n->name;
    if (n->exported) out += " [export]";
    if (n->is_leaf) {
      out += " [leaf " + n->source_db + "." + n->source_relation + "]";
    }
    out += " " + n->schema.ToString();
    if (n->def) {
      out += "\n    := " + n->def->ToString();
    }
    out += "\n";
  }
  return out;
}

std::string Vdp::ToDot(const std::string& graph_name) const {
  std::string out = "digraph " + graph_name + " {\n  rankdir=BT;\n";
  for (const auto& n : nodes_) {
    out += "  \"" + n.name + "\" [";
    if (n.is_leaf) {
      out += "shape=box";
    } else if (n.exported) {
      out += "shape=doublecircle";
    } else {
      out += "shape=ellipse";
    }
    out += "];\n";
  }
  for (const auto& n : nodes_) {
    if (!n.def) continue;
    for (const auto& child : n.def->Children()) {
      out += "  \"" + child + "\" -> \"" + n.name + "\";\n";
    }
  }
  out += "}\n";
  return out;
}

}  // namespace squirrel
