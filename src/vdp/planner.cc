#include "vdp/planner.h"

#include <algorithm>
#include <optional>

#include "relational/operators.h"

namespace squirrel {

namespace {

/// A σ/π/⋈ region flattened to canonical SPJ form:
///   π_project σ_(∧ selects) (core_0 ⋈_jc0 core_1 ⋈_jc1 ...)
/// where each core is a Scan or a union/difference subtree.
struct FlatSpj {
  std::vector<AlgebraExpr::Ptr> cores;
  std::vector<Expr::Ptr> join_conds;        // cores.size() - 1
  std::vector<Expr::Ptr> select_clauses;    // conjuncts
  std::optional<std::vector<std::string>> project;  // nullopt = all attrs
};

class Planner {
 public:
  explicit Planner(const PlannerInput& input) : input_(input) {}

  Result<Vdp> Run() {
    for (const auto& v : input_.exports) {
      if (!v.definition) {
        return Status::InvalidArgument("export " + v.name +
                                       " has no definition");
      }
      SQ_RETURN_IF_ERROR(CompileNode(v.name, v.definition, /*exported=*/true));
    }
    SQ_RETURN_IF_ERROR(vdp_.Validate());
    return std::move(vdp_);
  }

 private:
  Result<Schema> ScanSchema(const std::string& scan) const {
    auto it = input_.scans.find(scan);
    if (it == input_.scans.end()) {
      return Status::NotFound("unbound relation in view definition: " + scan);
    }
    return it->second.schema;
  }

  /// Output schema of any algebra subtree.
  Result<Schema> SchemaOf(const AlgebraExpr::Ptr& expr) const {
    return InferSchema(expr, [this](const std::string& scan) {
      return ScanSchema(scan);
    });
  }

  Result<FlatSpj> Flatten(const AlgebraExpr::Ptr& expr) const {
    switch (expr->kind()) {
      case AlgebraExpr::Kind::kScan:
      case AlgebraExpr::Kind::kUnion:
      case AlgebraExpr::Kind::kDiff: {
        FlatSpj f;
        f.cores.push_back(expr);
        return f;
      }
      case AlgebraExpr::Kind::kSelect: {
        SQ_ASSIGN_OR_RETURN(FlatSpj f, Flatten(expr->left()));
        // σ_c π_p σ_f X = π_p σ_{f ∧ c} X (c only references kept attrs).
        for (const auto& clause : ConjunctiveClauses(expr->condition())) {
          f.select_clauses.push_back(clause);
        }
        return f;
      }
      case AlgebraExpr::Kind::kProject: {
        SQ_ASSIGN_OR_RETURN(FlatSpj f, Flatten(expr->left()));
        f.project = expr->attrs();
        return f;
      }
      case AlgebraExpr::Kind::kJoin: {
        SQ_ASSIGN_OR_RETURN(FlatSpj l, Flatten(expr->left()));
        SQ_ASSIGN_OR_RETURN(FlatSpj r, Flatten(expr->right()));
        // Mid-chain projections are deferred: bag projection is linear, so
        // projecting after the join preserves multiplicities as long as the
        // visible-attribute set is restored at the end.
        std::optional<std::vector<std::string>> project;
        if (l.project.has_value() || r.project.has_value()) {
          SQ_ASSIGN_OR_RETURN(Schema ls, SchemaOf(expr->left()));
          SQ_ASSIGN_OR_RETURN(Schema rs, SchemaOf(expr->right()));
          std::vector<std::string> attrs = ls.AttributeNames();
          for (const auto& a : rs.AttributeNames()) attrs.push_back(a);
          project = attrs;
        }
        FlatSpj f;
        f.cores = l.cores;
        f.cores.insert(f.cores.end(), r.cores.begin(), r.cores.end());
        f.join_conds = l.join_conds;
        f.join_conds.push_back(expr->condition());
        f.join_conds.insert(f.join_conds.end(), r.join_conds.begin(),
                            r.join_conds.end());
        f.select_clauses = l.select_clauses;
        f.select_clauses.insert(f.select_clauses.end(),
                                r.select_clauses.begin(),
                                r.select_clauses.end());
        f.project = std::move(project);
        return f;
      }
    }
    return Status::Internal("unknown algebra node");
  }

  /// Ensures a leaf node exists for \p scan; returns its VDP name.
  Result<std::string> EnsureLeaf(const std::string& scan) {
    if (vdp_.Contains(scan)) return scan;
    auto it = input_.scans.find(scan);
    if (it == input_.scans.end()) {
      return Status::NotFound("unbound relation in view definition: " + scan);
    }
    SQ_RETURN_IF_ERROR(vdp_.AddLeaf(scan, it->second.source_db,
                                    it->second.relation, it->second.schema));
    return scan;
  }

  /// Creates a leaf-parent π_project σ_select(scan); reuses an existing one
  /// with an identical definition.
  Result<std::string> EnsureLeafParent(const std::string& scan,
                                       const std::vector<std::string>& project,
                                       const Expr::Ptr& select) {
    SQ_ASSIGN_OR_RETURN(std::string leaf, EnsureLeaf(scan));
    Expr::Ptr sel = select ? select : Expr::True();
    // Reuse a structurally identical leaf-parent.
    for (const auto& [name, def] : leaf_parents_) {
      if (def.child == leaf && def.project == project &&
          def.sel->Equals(*sel)) {
        return name;
      }
    }
    std::string name = scan + "'";
    int suffix = 2;
    while (vdp_.Contains(name)) {
      name = scan + "'" + std::to_string(suffix++);
    }
    ChildTerm term;
    term.child = leaf;
    term.project = project;
    term.select = sel;
    SQ_RETURN_IF_ERROR(
        vdp_.AddDerived(name, NodeDef::Spj({term}, {}, {}, nullptr)));
    leaf_parents_[name] = {leaf, project, sel};
    return name;
  }

  std::string FreshName(const std::string& base) {
    std::string name = base;
    int suffix = 2;
    while (vdp_.Contains(name)) {
      name = base + "_" + std::to_string(suffix++);
    }
    return name;
  }

  /// Attributes of \p candidate needed above: output ∪ join conds ∪
  /// residual selects, restricted to the candidate's schema.
  static std::vector<std::string> NeededFrom(
      const Schema& schema, const std::vector<std::string>& output,
      const std::vector<Expr::Ptr>& conds) {
    std::set<std::string> needed;
    for (const auto& a : output) {
      if (schema.Contains(a)) needed.insert(a);
    }
    for (const auto& c : conds) {
      if (!c) continue;
      for (const auto& a : c->ReferencedAttrs()) {
        if (schema.Contains(a)) needed.insert(a);
      }
    }
    std::vector<std::string> out;
    for (const auto& a : schema.attrs()) {
      if (needed.count(a.name)) out.push_back(a.name);
    }
    return out;
  }

  /// Compiles \p expr into a VDP node named \p name.
  Status CompileNode(const std::string& name, const AlgebraExpr::Ptr& expr,
                     bool exported) {
    if (expr->kind() == AlgebraExpr::Kind::kUnion ||
        expr->kind() == AlgebraExpr::Kind::kDiff) {
      return CompileSetNode(name, expr, exported);
    }
    SQ_ASSIGN_OR_RETURN(FlatSpj flat, Flatten(expr));
    if (!flat.cores.empty() &&
        (flat.cores[0]->kind() == AlgebraExpr::Kind::kUnion ||
         flat.cores[0]->kind() == AlgebraExpr::Kind::kDiff) &&
        flat.cores.size() == 1 && flat.select_clauses.empty() &&
        !flat.project.has_value()) {
      // A bare union/diff expression.
      return CompileSetNode(name, flat.cores[0], exported);
    }
    SQ_RETURN_IF_ERROR(CompileSpj(name, flat, exported));
    return Status::OK();
  }

  Status CompileSpj(const std::string& name, const FlatSpj& flat,
                    bool exported) {
    // Output attrs: flat.project, or every core attr.
    std::vector<std::string> output;
    if (flat.project.has_value()) {
      output = *flat.project;
    } else {
      for (const auto& core : flat.cores) {
        SQ_ASSIGN_OR_RETURN(Schema s, SchemaOf(core));
        for (const auto& a : s.AttributeNames()) output.push_back(a);
      }
    }

    // Partition select clauses: pushable to a single core vs residual.
    std::vector<Schema> core_schemas;
    for (const auto& core : flat.cores) {
      SQ_ASSIGN_OR_RETURN(Schema s, SchemaOf(core));
      core_schemas.push_back(std::move(s));
    }
    std::vector<std::vector<Expr::Ptr>> pushed(flat.cores.size());
    std::vector<Expr::Ptr> residual;
    for (const auto& clause : flat.select_clauses) {
      bool placed = false;
      for (size_t i = 0; i < flat.cores.size(); ++i) {
        bool fits = true;
        for (const auto& a : clause->ReferencedAttrs()) {
          if (!core_schemas[i].Contains(a)) {
            fits = false;
            break;
          }
        }
        if (fits) {
          pushed[i].push_back(clause);
          placed = true;
          break;
        }
      }
      if (!placed) residual.push_back(clause);
    }

    // Conditions that stay above the cores (for attr-needs computation).
    std::vector<Expr::Ptr> above = flat.join_conds;
    above.insert(above.end(), residual.begin(), residual.end());

    // Compile each core into a child node and build the SPJ terms.
    std::vector<ChildTerm> terms;
    for (size_t i = 0; i < flat.cores.size(); ++i) {
      const auto& core = flat.cores[i];
      std::vector<std::string> needed =
          NeededFrom(core_schemas[i], output, above);
      if (needed.empty()) needed = {core_schemas[i].attr(0).name};
      ChildTerm term;
      term.project = needed;
      term.select = Expr::True();
      if (core->kind() == AlgebraExpr::Kind::kScan) {
        SQ_ASSIGN_OR_RETURN(
            term.child,
            EnsureLeafParent(core->relation(), needed, AndAll(pushed[i])));
      } else {
        std::string child_name = FreshName(name + "_sub");
        SQ_RETURN_IF_ERROR(CompileSetNode(child_name, core, false));
        // Pushed clauses stay in the term select over the compiled child.
        term.select = AndAll(pushed[i]);
        SQ_ASSIGN_OR_RETURN(const VdpNode* child, vdp_.Get(child_name));
        // Narrow the term to the needed attrs of the child.
        std::vector<std::string> child_needed;
        std::set<std::string> want(needed.begin(), needed.end());
        for (const auto& c : pushed[i]) {
          for (const auto& a : c->ReferencedAttrs()) want.insert(a);
        }
        for (const auto& a : child->schema.attrs()) {
          if (want.count(a.name)) child_needed.push_back(a.name);
        }
        term.project = needed;
        // Attrs referenced by pushed clauses must survive the child node;
        // they do (the child exports its full schema).
        (void)child_needed;
        term.child = child_name;
      }
      terms.push_back(std::move(term));
    }

    NodeDef def = NodeDef::Spj(std::move(terms), flat.join_conds, output,
                               AndAll(residual));
    return vdp_.AddDerived(name, std::move(def), exported);
  }

  /// Compiles a union/difference expression: peels π/σ off each side to get
  /// the child terms of the set node.
  Status CompileSetNode(const std::string& name, const AlgebraExpr::Ptr& expr,
                        bool exported) {
    SQ_ASSIGN_OR_RETURN(ChildTerm left, CompileSetTerm(name, expr->left()));
    SQ_ASSIGN_OR_RETURN(ChildTerm right, CompileSetTerm(name, expr->right()));
    NodeDef def = expr->kind() == AlgebraExpr::Kind::kUnion
                      ? NodeDef::Union2(std::move(left), std::move(right))
                      : NodeDef::Diff2(std::move(left), std::move(right));
    return vdp_.AddDerived(name, std::move(def), exported);
  }

  Result<ChildTerm> CompileSetTerm(const std::string& parent,
                                   const AlgebraExpr::Ptr& side) {
    // Peel top-level project/select.
    std::optional<std::vector<std::string>> project;
    std::vector<Expr::Ptr> selects;
    AlgebraExpr::Ptr core = side;
    for (;;) {
      if (core->kind() == AlgebraExpr::Kind::kProject &&
          !project.has_value()) {
        project = core->attrs();
        core = core->left();
        continue;
      }
      if (core->kind() == AlgebraExpr::Kind::kSelect) {
        for (const auto& c : ConjunctiveClauses(core->condition())) {
          selects.push_back(c);
        }
        core = core->left();
        continue;
      }
      break;
    }
    SQ_ASSIGN_OR_RETURN(Schema core_schema, SchemaOf(core));
    std::vector<std::string> attrs =
        project.has_value() ? *project : core_schema.AttributeNames();

    ChildTerm term;
    term.project = attrs;
    term.select = AndAll(selects);
    if (core->kind() == AlgebraExpr::Kind::kScan) {
      // Set nodes may not have leaf children (§5.1 restriction (a)); give
      // the scan a pass-through leaf-parent carrying what the term needs.
      std::set<std::string> need(attrs.begin(), attrs.end());
      for (const auto& s : selects) {
        for (const auto& a : s->ReferencedAttrs()) need.insert(a);
      }
      std::vector<std::string> lp_attrs;
      for (const auto& a : core_schema.attrs()) {
        if (need.count(a.name)) lp_attrs.push_back(a.name);
      }
      SQ_ASSIGN_OR_RETURN(
          term.child,
          EnsureLeafParent(core->relation(), lp_attrs, nullptr));
    } else if (core->kind() == AlgebraExpr::Kind::kScan) {
      return Status::Internal("unreachable");
    } else if (core->kind() == AlgebraExpr::Kind::kUnion ||
               core->kind() == AlgebraExpr::Kind::kDiff) {
      std::string child_name = FreshName(parent + "_sub");
      SQ_RETURN_IF_ERROR(CompileSetNode(child_name, core, false));
      term.child = child_name;
    } else {
      // An SPJ block under the set operator.
      std::string child_name = FreshName(parent + "_sub");
      SQ_RETURN_IF_ERROR(CompileNode(child_name, core, false));
      term.child = child_name;
    }
    return term;
  }

  const PlannerInput& input_;
  Vdp vdp_;
  struct LeafParentDef {
    std::string child;
    std::vector<std::string> project;
    Expr::Ptr sel;
  };
  std::map<std::string, LeafParentDef> leaf_parents_;
};

}  // namespace

Result<Vdp> PlanVdp(const PlannerInput& input) { return Planner(input).Run(); }

Annotation SuggestAnnotation(const Vdp& vdp, const AnnotationHints& hints) {
  Annotation ann;  // default: everything materialized
  for (const auto& name : vdp.DerivedNames()) {
    const VdpNode* node = vdp.Find(name);
    const NodeDef& def = *node->def;

    // Example 2.2: leaf-parents over frequently-updated sources go virtual —
    // continual maintenance would dominate, and the SPJ rules above them can
    // still fire by polling.
    if (vdp.IsLeafParent(name)) {
      const VdpNode* leaf = vdp.Find(def.terms()[0].child);
      auto it = hints.source_update_freq.find(leaf->source_db);
      if (it != hints.source_update_freq.end() &&
          it->second > hints.hot_update_threshold && !node->exported) {
        (void)ann.SetAll(vdp, name, AttrMode::kVirtual);
      }
      continue;
    }

    // Example 5.1's F: cheap interior equi-join nodes can stay virtual.
    if (hints.virtualize_cheap_interior && !node->exported &&
        def.kind() == NodeDef::Kind::kSpj) {
      bool all_equi = true;
      for (const auto& jc : def.join_conds()) {
        auto parts_ok =
            jc->IsTrueLiteral() ||
            (jc->kind() == Expr::Kind::kBinary && jc->bin_op() == BinOp::kEq);
        if (!parts_ok) all_equi = false;
      }
      if (all_equi) {
        (void)ann.SetAll(vdp, name, AttrMode::kVirtual);
        continue;
      }
    }

    // Example 2.3 / §5.3: for expensive (multi-term) exported join nodes,
    // materialize keys and hot attributes; virtualize the rest.
    if (def.kind() == NodeDef::Kind::kSpj && def.terms().size() >= 2) {
      std::set<std::string> keep(node->schema.key().begin(),
                                 node->schema.key().end());
      // Child keys appearing in this node also stay materialized (they are
      // what makes the key-based fetch of virtual attributes efficient).
      for (const auto& term : def.terms()) {
        const VdpNode* child = vdp.Find(term.child);
        for (const auto& k : child->schema.key()) {
          if (node->schema.Contains(k)) keep.insert(k);
        }
      }
      auto hit = hints.hot_attrs.find(name);
      if (hit != hints.hot_attrs.end()) {
        for (const auto& a : hit->second) keep.insert(a);
      }
      if (!keep.empty()) {
        for (const auto& a : node->schema.attrs()) {
          if (!keep.count(a.name)) {
            ann.Set(name, a.name, AttrMode::kVirtual);
          }
        }
      }
      continue;
    }
    // Difference (set) nodes and unions stay materialized (set nodes cannot
    // be hybrid; exports answer queries fastest materialized).
  }
  return ann;
}

}  // namespace squirrel
