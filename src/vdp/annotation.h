// Per-attribute materialized/virtual annotations of a VDP (paper §5.1).
//
// An annotation maps each attribute of each non-leaf node to m or v. The
// materialized projection of a node is what the local store actually holds;
// virtual attributes are computed on demand by the VAP.

#ifndef SQUIRREL_VDP_ANNOTATION_H_
#define SQUIRREL_VDP_ANNOTATION_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "vdp/vdp.h"

namespace squirrel {

/// Mode of one attribute.
enum class AttrMode { kMaterialized, kVirtual };

/// \brief An annotation for a whole VDP. Unset attributes default to
/// materialized, so `Annotation()` is the fully materialized annotation.
class Annotation {
 public:
  Annotation() = default;

  /// The fully materialized annotation (explicit, for readability).
  static Annotation AllMaterialized() { return Annotation(); }

  /// Sets one attribute's mode.
  void Set(const std::string& node, const std::string& attr, AttrMode mode);

  /// Sets every attribute of \p node (per \p vdp's schema) to \p mode.
  Status SetAll(const Vdp& vdp, const std::string& node, AttrMode mode);

  /// Parses the paper's bracket notation "r1 m, r3 v, s1 m, s2 v" for one
  /// node and applies it.
  Status SetFromSpec(const Vdp& vdp, const std::string& node,
                     const std::string& spec);

  /// Mode of an attribute (materialized if never set).
  AttrMode ModeOf(const std::string& node, const std::string& attr) const;

  /// True iff the attribute is materialized.
  bool IsMaterialized(const std::string& node, const std::string& attr) const {
    return ModeOf(node, attr) == AttrMode::kMaterialized;
  }

  /// Materialized attributes of \p node, in schema order.
  std::vector<std::string> MaterializedAttrs(const Vdp& vdp,
                                             const std::string& node) const;
  /// Virtual attributes of \p node, in schema order.
  std::vector<std::string> VirtualAttrs(const Vdp& vdp,
                                        const std::string& node) const;

  /// True iff every attribute of \p node is materialized.
  bool FullyMaterialized(const Vdp& vdp, const std::string& node) const;
  /// True iff every attribute of \p node is virtual.
  bool FullyVirtual(const Vdp& vdp, const std::string& node) const;
  /// True iff \p node mixes materialized and virtual attributes.
  bool IsHybrid(const Vdp& vdp, const std::string& node) const;

  /// Checks every annotated (node, attr) exists in the VDP and that leaves
  /// are not annotated.
  Status Validate(const Vdp& vdp) const;

  /// Renders "T[r1^m, r3^v, s1^m, s2^v]" for a node.
  std::string NodeToString(const Vdp& vdp, const std::string& node) const;
  /// Renders all non-leaf nodes, one per line.
  std::string ToString(const Vdp& vdp) const;

 private:
  // node -> attr -> mode (absent = materialized)
  std::map<std::string, std::map<std::string, AttrMode>> modes_;
};

}  // namespace squirrel

#endif  // SQUIRREL_VDP_ANNOTATION_H_
