#include "vdp/builder.h"

#include "relational/parser.h"

namespace squirrel {

void VdpBuilder::Record(const Status& st) {
  if (first_error_.ok() && !st.ok()) first_error_ = st;
}

Result<ChildTerm> VdpBuilder::MakeTerm(const TermSpec& spec) {
  ChildTerm term;
  term.child = spec.child;
  term.project = spec.project;
  if (!spec.select.empty()) {
    SQ_ASSIGN_OR_RETURN(term.select, ParsePredicate(spec.select));
  }
  return term;
}

VdpBuilder& VdpBuilder::Leaf(const std::string& name,
                             const std::string& source_db,
                             const std::string& source_relation,
                             const std::string& schema_decl) {
  auto decl = ParseSchemaDecl(schema_decl);
  if (!decl.ok()) {
    Record(decl.status());
    return *this;
  }
  Record(vdp_.AddLeaf(name, source_db, source_relation,
                      std::move(decl).value().schema));
  return *this;
}

VdpBuilder& VdpBuilder::LeafWithSchema(const std::string& name,
                                       const std::string& source_db,
                                       const std::string& source_relation,
                                       Schema schema) {
  Record(vdp_.AddLeaf(name, source_db, source_relation, std::move(schema)));
  return *this;
}

VdpBuilder& VdpBuilder::LeafParent(const std::string& name,
                                   const std::string& leaf,
                                   const std::vector<std::string>& project,
                                   const std::string& select) {
  auto term = MakeTerm({leaf, project, select});
  if (!term.ok()) {
    Record(term.status());
    return *this;
  }
  NodeDef def = NodeDef::Spj({std::move(term).value()}, {}, {}, nullptr);
  Record(vdp_.AddDerived(name, std::move(def)));
  return *this;
}

VdpBuilder& VdpBuilder::Spj(const std::string& name,
                            const std::vector<TermSpec>& terms,
                            const std::vector<std::string>& join_conds,
                            const std::vector<std::string>& outer_project,
                            const std::string& outer_select, bool exported) {
  std::vector<ChildTerm> ts;
  for (const auto& spec : terms) {
    auto term = MakeTerm(spec);
    if (!term.ok()) {
      Record(term.status());
      return *this;
    }
    ts.push_back(std::move(term).value());
  }
  std::vector<Expr::Ptr> conds;
  for (const auto& c : join_conds) {
    if (c.empty()) {
      conds.push_back(Expr::True());
      continue;
    }
    auto cond = ParsePredicate(c);
    if (!cond.ok()) {
      Record(cond.status());
      return *this;
    }
    conds.push_back(std::move(cond).value());
  }
  Expr::Ptr osel;
  if (!outer_select.empty()) {
    auto cond = ParsePredicate(outer_select);
    if (!cond.ok()) {
      Record(cond.status());
      return *this;
    }
    osel = std::move(cond).value();
  }
  NodeDef def = NodeDef::Spj(std::move(ts), std::move(conds), outer_project,
                             std::move(osel));
  Record(vdp_.AddDerived(name, std::move(def), exported));
  return *this;
}

VdpBuilder& VdpBuilder::Union(const std::string& name, const TermSpec& left,
                              const TermSpec& right, bool exported) {
  auto l = MakeTerm(left);
  auto r = MakeTerm(right);
  if (!l.ok() || !r.ok()) {
    Record(l.ok() ? r.status() : l.status());
    return *this;
  }
  Record(vdp_.AddDerived(
      name, NodeDef::Union2(std::move(l).value(), std::move(r).value()),
      exported));
  return *this;
}

VdpBuilder& VdpBuilder::Diff(const std::string& name, const TermSpec& left,
                             const TermSpec& right, bool exported) {
  auto l = MakeTerm(left);
  auto r = MakeTerm(right);
  if (!l.ok() || !r.ok()) {
    Record(l.ok() ? r.status() : l.status());
    return *this;
  }
  Record(vdp_.AddDerived(
      name, NodeDef::Diff2(std::move(l).value(), std::move(r).value()),
      exported));
  return *this;
}

VdpBuilder& VdpBuilder::Export(const std::string& name) {
  Record(vdp_.MarkExported(name));
  return *this;
}

Result<Vdp> VdpBuilder::Build() {
  SQ_RETURN_IF_ERROR(first_error_);
  SQ_RETURN_IF_ERROR(vdp_.Validate());
  return std::move(vdp_);
}

}  // namespace squirrel
