#include "vdp/rules.h"

#include <algorithm>
#include <optional>

#include "delta/delta_algebra.h"
#include "relational/operators.h"

namespace squirrel {

namespace {

/// The relation of term \p j of \p parent's def, taken from the right state:
/// the firing child's occurrences at positions before \p firing_pos are in
/// their NEW state (old + delta), everything else in the current repository
/// state.
Result<Relation> TermRelation(const NodeDef& def, size_t j,
                              const std::string& firing_child,
                              size_t firing_pos, const Delta& child_delta,
                              const NodeStateFn& states) {
  const ChildTerm& term = def.terms()[j];
  SQ_ASSIGN_OR_RETURN(std::shared_ptr<const Relation> state,
                      states(term.child, term.NeededAttrs()));
  SQ_ASSIGN_OR_RETURN(Relation term_rel, EvalTerm(*state, term));
  if (term.child == firing_child && j < firing_pos) {
    // New state of this occurrence: apply the (filtered) delta to the term.
    SQ_ASSIGN_OR_RETURN(
        Delta filtered,
        FilterDeltaToLeafParent(child_delta, term.SelectOrTrue(),
                                term.project));
    SQ_RETURN_IF_ERROR(ApplyDelta(&term_rel, filtered));
  }
  return term_rel;
}

Result<Delta> FireSpj(const VdpNode& parent, const std::string& child,
                      const Delta& child_delta, const NodeStateFn& states,
                      const IndexProbeFn& probes) {
  const NodeDef& def = *parent.def;
  Delta result(parent.schema);
  for (size_t i = 0; i < def.terms().size(); ++i) {
    const ChildTerm& term = def.terms()[i];
    if (term.child != child) continue;

    // Restrict the incoming delta to this term's view of the child. The
    // delta may be wider than the term's needed attrs (full child schema);
    // select first (the condition's attrs are in the delta), then project.
    SQ_ASSIGN_OR_RETURN(
        Delta term_delta,
        FilterDeltaToLeafParent(child_delta, term.SelectOrTrue(),
                                term.project));
    if (term_delta.Empty()) continue;

    Delta acc = std::move(term_delta);

    // Joins sibling term \p j into acc via a persistent repository index if
    // one covers the equi attributes; returns nullopt to request the
    // unindexed fallback. Occurrences of the firing child at positions
    // before i must be seen in their NEW state, which the (pre-delta)
    // repository index cannot serve.
    auto indexed_join = [&](size_t j, const Expr::Ptr& cond,
                            bool delta_left) -> Result<std::optional<Delta>> {
      if (!probes) return std::optional<Delta>();
      const ChildTerm& sibling = def.terms()[j];
      if (sibling.child == child && j < i) return std::optional<Delta>();
      std::vector<std::string> equi = EquiProbeAttrs(
          cond, acc.schema().AttributeNames(), sibling.project);
      if (equi.empty()) return std::optional<Delta>();
      IndexedState s = probes(sibling.child, equi);
      if (s.repo == nullptr || s.index == nullptr) {
        return std::optional<Delta>();
      }
      // The repository must cover everything this term reads; otherwise the
      // unindexed path would have served a temp, not the repo (the index may
      // have been advised for a different term over the same child).
      if (!s.repo->schema().ContainsAll(sibling.NeededAttrs())) {
        return std::optional<Delta>();
      }
      auto joined =
          JoinDeltaWithIndexedTerm(acc, *s.repo, *s.index,
                                   sibling.SelectOrTrue(), sibling.project,
                                   cond, delta_left);
      if (!joined.ok()) {
        // Coverage mismatch between advisor and firing: fall back silently.
        if (joined.status().code() == StatusCode::kFailedPrecondition) {
          return std::optional<Delta>();
        }
        return joined.status();
      }
      return std::optional<Delta>(std::move(*joined));
    };

    // Left side: accumulated join of terms 0..i-1. The single-sibling case
    // (i == 1) can probe the sibling's index directly; longer accumulations
    // materialize intermediate joins and stay unindexed.
    if (i == 1) {
      SQ_ASSIGN_OR_RETURN(
          std::optional<Delta> joined,
          indexed_join(0, def.join_conds()[0], /*delta_left=*/false));
      if (joined) {
        acc = std::move(*joined);
      } else {
        SQ_ASSIGN_OR_RETURN(
            Relation tr, TermRelation(def, 0, child, i, child_delta, states));
        SQ_ASSIGN_OR_RETURN(acc,
                            RelationJoinDelta(tr, acc, def.join_conds()[0]));
      }
    } else if (i > 1) {
      std::optional<Relation> left;
      for (size_t j = 0; j < i; ++j) {
        SQ_ASSIGN_OR_RETURN(
            Relation tr, TermRelation(def, j, child, i, child_delta, states));
        if (!left) {
          left = std::move(tr);
        } else {
          SQ_ASSIGN_OR_RETURN(left,
                              OpJoin(*left, tr, def.join_conds()[j - 1]));
        }
      }
      SQ_ASSIGN_OR_RETURN(
          acc, RelationJoinDelta(*left, acc, def.join_conds()[i - 1]));
    }

    // Right side: terms i+1..n-1, one join at a time.
    for (size_t j = i + 1; j < def.terms().size(); ++j) {
      SQ_ASSIGN_OR_RETURN(
          std::optional<Delta> joined,
          indexed_join(j, def.join_conds()[j - 1], /*delta_left=*/true));
      if (joined) {
        acc = std::move(*joined);
        continue;
      }
      SQ_ASSIGN_OR_RETURN(
          Relation tr, TermRelation(def, j, child, i, child_delta, states));
      SQ_ASSIGN_OR_RETURN(acc,
                          DeltaJoinRelation(acc, tr, def.join_conds()[j - 1]));
    }
    SQ_ASSIGN_OR_RETURN(acc, DeltaSelect(acc, def.outer_select()));
    if (!def.outer_project().empty()) {
      SQ_ASSIGN_OR_RETURN(acc, DeltaProject(acc, def.outer_project()));
    }
    SQ_RETURN_IF_ERROR(result.SmashInPlace(acc));
  }
  return result;
}

Result<Delta> FireUnion(const VdpNode& parent, const std::string& child,
                        const Delta& child_delta, const NodeStateFn& states) {
  (void)states;  // union needs no sibling state
  const NodeDef& def = *parent.def;
  Delta result(parent.schema);
  for (const ChildTerm& term : def.terms()) {
    if (term.child != child) continue;
    SQ_ASSIGN_OR_RETURN(
        Delta term_delta,
        FilterDeltaToLeafParent(child_delta, term.SelectOrTrue(),
                                term.project));
    SQ_RETURN_IF_ERROR(result.SmashInPlace(term_delta));
  }
  return result;
}

/// Presence (set-level) delta the bag-level \p child_delta induces on term
/// \p j of the def, plus that term's new bag state.
Result<Delta> TermPresenceDelta(const NodeDef& def, size_t j,
                                const Delta& child_delta,
                                const NodeStateFn& states) {
  const ChildTerm& term = def.terms()[j];
  SQ_ASSIGN_OR_RETURN(
      Delta term_delta,
      FilterDeltaToLeafParent(child_delta, term.SelectOrTrue(),
                              term.project));
  if (term_delta.Empty()) return Delta(term_delta.schema());
  SQ_ASSIGN_OR_RETURN(std::shared_ptr<const Relation> state,
                      states(term.child, term.NeededAttrs()));
  SQ_ASSIGN_OR_RETURN(Relation term_new, EvalTerm(*state, term));
  SQ_RETURN_IF_ERROR(ApplyDelta(&term_new, term_delta));
  return PresenceDelta(term_new, term_delta);
}

Result<Delta> FireDiff(const VdpNode& parent, const std::string& child,
                       const Delta& child_delta, const NodeStateFn& states) {
  const NodeDef& def = *parent.def;
  Delta result(parent.schema);

  // Left term firing (diff1). Corrected rule:
  //   (ΔT)⁺ = (Δ̂₁)⁺ − R₂ ;  (ΔT)⁻ = (Δ̂₁)⁻ − R₂
  if (def.terms()[0].child == child) {
    SQ_ASSIGN_OR_RETURN(Delta pres1,
                        TermPresenceDelta(def, 0, child_delta, states));
    if (!pres1.Empty()) {
      // Right term in its current (or, for self-diff, old) state.
      SQ_ASSIGN_OR_RETURN(
          Relation r2,
          TermRelation(def, 1, child, /*firing_pos=*/0, child_delta, states));
      SQ_RETURN_IF_ERROR(
          result.SmashInPlace(DeltaMinusRelation(pres1, r2.ToSet())));
    }
  }

  // Right term firing (diff2):
  //   (ΔT)⁺ = (Δ̂₂)⁻ ∩ R₁ ;  (ΔT)⁻ = (Δ̂₂)⁺ ∩ R₁   i.e.  (Δ̂₂)⁻¹ ∩ R₁
  if (def.terms()[1].child == child) {
    SQ_ASSIGN_OR_RETURN(Delta pres2,
                        TermPresenceDelta(def, 1, child_delta, states));
    if (!pres2.Empty()) {
      // Left term; for self-diff its occurrence (position 0) counts as
      // "before" the right firing, hence new state.
      SQ_ASSIGN_OR_RETURN(
          Relation r1,
          TermRelation(def, 0, child, /*firing_pos=*/1, child_delta, states));
      SQ_RETURN_IF_ERROR(result.SmashInPlace(
          DeltaIntersectRelation(pres2.Inverse(), r1.ToSet())));
    }
  }
  return result;
}

}  // namespace

Result<Delta> FireEdgeRules(const VdpNode& parent, const std::string& child,
                            const Delta& child_delta,
                            const NodeStateFn& states) {
  return FireEdgeRules(parent, child, child_delta, states, nullptr);
}

Result<Delta> FireEdgeRules(const VdpNode& parent, const std::string& child,
                            const Delta& child_delta,
                            const NodeStateFn& states,
                            const IndexProbeFn& probes) {
  if (!parent.def) {
    return Status::InvalidArgument("cannot fire rules into leaf node " +
                                   parent.name);
  }
  if (child_delta.Empty()) return Delta(parent.schema);
  switch (parent.def->kind()) {
    case NodeDef::Kind::kSpj:
      return FireSpj(parent, child, child_delta, states, probes);
    case NodeDef::Kind::kUnion:
      return FireUnion(parent, child, child_delta, states);
    case NodeDef::Kind::kDiff:
      return FireDiff(parent, child, child_delta, states);
  }
  return Status::Internal("unknown def kind");
}

namespace {

bool NamesCover(const std::vector<std::string>& haystack,
                const std::vector<std::string>& needles) {
  for (const auto& n : needles) {
    if (std::find(haystack.begin(), haystack.end(), n) == haystack.end()) {
      return false;
    }
  }
  return true;
}

}  // namespace

void AdviseIndexes(const Vdp& vdp, const Annotation& ann,
                   IndexManager* manager) {
  for (const std::string& name : vdp.DerivedNames()) {
    const VdpNode* node = vdp.Find(name);
    if (!node || !node->def || node->def->kind() != NodeDef::Kind::kSpj) {
      continue;
    }
    const NodeDef& def = *node->def;
    if (def.terms().size() < 2) continue;
    // FireSpj joins sibling term j against a delta whose attrs accumulate
    // the projections of terms 0..j-1 (left-deep prefix). Term 0 itself is
    // probed when term 1 fires (delta attrs = term 1's projection).
    std::vector<std::string> prefix_attrs;
    for (size_t j = 0; j < def.terms().size(); ++j) {
      const ChildTerm& term = def.terms()[j];
      std::vector<std::string> probe_side =
          j == 0 ? def.terms()[1].project : prefix_attrs;
      const Expr::Ptr& cond =
          j == 0 ? def.join_conds()[0] : def.join_conds()[j - 1];
      std::vector<std::string> equi =
          EquiProbeAttrs(cond, probe_side, term.project);
      if (!equi.empty()) {
        std::vector<std::string> repo_attrs =
            ann.MaterializedAttrs(vdp, term.child);
        // Only usable when the repo alone can serve the term (rule firing
        // checks the same coverage before probing).
        if (NamesCover(repo_attrs, term.NeededAttrs())) {
          manager->Register(term.child, std::move(equi));
        }
      }
      prefix_attrs.insert(prefix_attrs.end(), term.project.begin(),
                          term.project.end());
    }
    // The VAP's key-based construction probes a materialized child by the
    // child's key to fetch extra attributes for a hybrid parent.
    for (const ChildTerm& term : def.terms()) {
      const VdpNode* child_node = vdp.Find(term.child);
      if (!child_node || child_node->schema.key().empty()) continue;
      std::vector<std::string> repo_attrs =
          ann.MaterializedAttrs(vdp, term.child);
      if (!repo_attrs.empty() &&
          NamesCover(repo_attrs, child_node->schema.key())) {
        manager->Register(term.child, child_node->schema.key());
      }
    }
  }
}

}  // namespace squirrel
