#include "vdp/rules.h"

#include <optional>

#include "delta/delta_algebra.h"
#include "relational/operators.h"

namespace squirrel {

namespace {

/// The relation of term \p j of \p parent's def, taken from the right state:
/// the firing child's occurrences at positions before \p firing_pos are in
/// their NEW state (old + delta), everything else in the current repository
/// state.
Result<Relation> TermRelation(const NodeDef& def, size_t j,
                              const std::string& firing_child,
                              size_t firing_pos, const Delta& child_delta,
                              const NodeStateFn& states) {
  const ChildTerm& term = def.terms()[j];
  SQ_ASSIGN_OR_RETURN(std::shared_ptr<const Relation> state,
                      states(term.child, term.NeededAttrs()));
  SQ_ASSIGN_OR_RETURN(Relation term_rel, EvalTerm(*state, term));
  if (term.child == firing_child && j < firing_pos) {
    // New state of this occurrence: apply the (filtered) delta to the term.
    SQ_ASSIGN_OR_RETURN(
        Delta filtered,
        FilterDeltaToLeafParent(child_delta, term.SelectOrTrue(),
                                term.project));
    SQ_RETURN_IF_ERROR(ApplyDelta(&term_rel, filtered));
  }
  return term_rel;
}

Result<Delta> FireSpj(const VdpNode& parent, const std::string& child,
                      const Delta& child_delta, const NodeStateFn& states) {
  const NodeDef& def = *parent.def;
  Delta result(parent.schema);
  for (size_t i = 0; i < def.terms().size(); ++i) {
    const ChildTerm& term = def.terms()[i];
    if (term.child != child) continue;

    // Restrict the incoming delta to this term's view of the child. The
    // delta may be wider than the term's needed attrs (full child schema);
    // select first (the condition's attrs are in the delta), then project.
    SQ_ASSIGN_OR_RETURN(
        Delta term_delta,
        FilterDeltaToLeafParent(child_delta, term.SelectOrTrue(),
                                term.project));
    if (term_delta.Empty()) continue;

    // Left side: accumulated join of terms 0..i-1.
    std::optional<Relation> left;
    for (size_t j = 0; j < i; ++j) {
      SQ_ASSIGN_OR_RETURN(
          Relation tr, TermRelation(def, j, child, i, child_delta, states));
      if (!left) {
        left = std::move(tr);
      } else {
        SQ_ASSIGN_OR_RETURN(left,
                            OpJoin(*left, tr, def.join_conds()[j - 1]));
      }
    }

    Delta acc = std::move(term_delta);
    if (left) {
      SQ_ASSIGN_OR_RETURN(
          acc, RelationJoinDelta(*left, acc, def.join_conds()[i - 1]));
    }
    // Right side: terms i+1..n-1, one join at a time.
    for (size_t j = i + 1; j < def.terms().size(); ++j) {
      SQ_ASSIGN_OR_RETURN(
          Relation tr, TermRelation(def, j, child, i, child_delta, states));
      SQ_ASSIGN_OR_RETURN(acc,
                          DeltaJoinRelation(acc, tr, def.join_conds()[j - 1]));
    }
    SQ_ASSIGN_OR_RETURN(acc, DeltaSelect(acc, def.outer_select()));
    if (!def.outer_project().empty()) {
      SQ_ASSIGN_OR_RETURN(acc, DeltaProject(acc, def.outer_project()));
    }
    SQ_RETURN_IF_ERROR(result.SmashInPlace(acc));
  }
  return result;
}

Result<Delta> FireUnion(const VdpNode& parent, const std::string& child,
                        const Delta& child_delta, const NodeStateFn& states) {
  (void)states;  // union needs no sibling state
  const NodeDef& def = *parent.def;
  Delta result(parent.schema);
  for (const ChildTerm& term : def.terms()) {
    if (term.child != child) continue;
    SQ_ASSIGN_OR_RETURN(
        Delta term_delta,
        FilterDeltaToLeafParent(child_delta, term.SelectOrTrue(),
                                term.project));
    SQ_RETURN_IF_ERROR(result.SmashInPlace(term_delta));
  }
  return result;
}

/// Presence (set-level) delta the bag-level \p child_delta induces on term
/// \p j of the def, plus that term's new bag state.
Result<Delta> TermPresenceDelta(const NodeDef& def, size_t j,
                                const Delta& child_delta,
                                const NodeStateFn& states) {
  const ChildTerm& term = def.terms()[j];
  SQ_ASSIGN_OR_RETURN(
      Delta term_delta,
      FilterDeltaToLeafParent(child_delta, term.SelectOrTrue(),
                              term.project));
  if (term_delta.Empty()) return Delta(term_delta.schema());
  SQ_ASSIGN_OR_RETURN(std::shared_ptr<const Relation> state,
                      states(term.child, term.NeededAttrs()));
  SQ_ASSIGN_OR_RETURN(Relation term_new, EvalTerm(*state, term));
  SQ_RETURN_IF_ERROR(ApplyDelta(&term_new, term_delta));
  return PresenceDelta(term_new, term_delta);
}

Result<Delta> FireDiff(const VdpNode& parent, const std::string& child,
                       const Delta& child_delta, const NodeStateFn& states) {
  const NodeDef& def = *parent.def;
  Delta result(parent.schema);

  // Left term firing (diff1). Corrected rule:
  //   (ΔT)⁺ = (Δ̂₁)⁺ − R₂ ;  (ΔT)⁻ = (Δ̂₁)⁻ − R₂
  if (def.terms()[0].child == child) {
    SQ_ASSIGN_OR_RETURN(Delta pres1,
                        TermPresenceDelta(def, 0, child_delta, states));
    if (!pres1.Empty()) {
      // Right term in its current (or, for self-diff, old) state.
      SQ_ASSIGN_OR_RETURN(
          Relation r2,
          TermRelation(def, 1, child, /*firing_pos=*/0, child_delta, states));
      SQ_RETURN_IF_ERROR(
          result.SmashInPlace(DeltaMinusRelation(pres1, r2.ToSet())));
    }
  }

  // Right term firing (diff2):
  //   (ΔT)⁺ = (Δ̂₂)⁻ ∩ R₁ ;  (ΔT)⁻ = (Δ̂₂)⁺ ∩ R₁   i.e.  (Δ̂₂)⁻¹ ∩ R₁
  if (def.terms()[1].child == child) {
    SQ_ASSIGN_OR_RETURN(Delta pres2,
                        TermPresenceDelta(def, 1, child_delta, states));
    if (!pres2.Empty()) {
      // Left term; for self-diff its occurrence (position 0) counts as
      // "before" the right firing, hence new state.
      SQ_ASSIGN_OR_RETURN(
          Relation r1,
          TermRelation(def, 0, child, /*firing_pos=*/1, child_delta, states));
      SQ_RETURN_IF_ERROR(result.SmashInPlace(
          DeltaIntersectRelation(pres2.Inverse(), r1.ToSet())));
    }
  }
  return result;
}

}  // namespace

Result<Delta> FireEdgeRules(const VdpNode& parent, const std::string& child,
                            const Delta& child_delta,
                            const NodeStateFn& states) {
  if (!parent.def) {
    return Status::InvalidArgument("cannot fire rules into leaf node " +
                                   parent.name);
  }
  if (child_delta.Empty()) return Delta(parent.schema);
  switch (parent.def->kind()) {
    case NodeDef::Kind::kSpj:
      return FireSpj(parent, child, child_delta, states);
    case NodeDef::Kind::kUnion:
      return FireUnion(parent, child, child_delta, states);
    case NodeDef::Kind::kDiff:
      return FireDiff(parent, child, child_delta, states);
  }
  return Status::Internal("unknown def kind");
}

}  // namespace squirrel
