#include "vdp/annotation.h"

#include "common/strings.h"

namespace squirrel {

void Annotation::Set(const std::string& node, const std::string& attr,
                     AttrMode mode) {
  modes_[node][attr] = mode;
}

Status Annotation::SetAll(const Vdp& vdp, const std::string& node,
                          AttrMode mode) {
  SQ_ASSIGN_OR_RETURN(const VdpNode* n, vdp.Get(node));
  for (const auto& a : n->schema.attrs()) Set(node, a.name, mode);
  return Status::OK();
}

Status Annotation::SetFromSpec(const Vdp& vdp, const std::string& node,
                               const std::string& spec) {
  SQ_ASSIGN_OR_RETURN(const VdpNode* n, vdp.Get(node));
  for (const auto& piece : Split(spec, ',')) {
    auto fields = Split(std::string(StripWhitespace(piece)), ' ');
    // Expect "<attr> <m|v>"; tolerate extra whitespace.
    std::vector<std::string> tokens;
    for (auto& f : fields) {
      if (!StripWhitespace(f).empty()) {
        tokens.emplace_back(StripWhitespace(f));
      }
    }
    if (tokens.size() != 2 || (tokens[1] != "m" && tokens[1] != "v")) {
      return Status::InvalidArgument("bad annotation entry: '" + piece +
                                     "' (want \"attr m\" or \"attr v\")");
    }
    if (!n->schema.Contains(tokens[0])) {
      return Status::NotFound("annotation for unknown attribute " +
                              tokens[0] + " of node " + node);
    }
    Set(node, tokens[0],
        tokens[1] == "m" ? AttrMode::kMaterialized : AttrMode::kVirtual);
  }
  return Status::OK();
}

AttrMode Annotation::ModeOf(const std::string& node,
                            const std::string& attr) const {
  auto nit = modes_.find(node);
  if (nit == modes_.end()) return AttrMode::kMaterialized;
  auto ait = nit->second.find(attr);
  if (ait == nit->second.end()) return AttrMode::kMaterialized;
  return ait->second;
}

std::vector<std::string> Annotation::MaterializedAttrs(
    const Vdp& vdp, const std::string& node) const {
  std::vector<std::string> out;
  const VdpNode* n = vdp.Find(node);
  if (n == nullptr) return out;
  for (const auto& a : n->schema.attrs()) {
    if (IsMaterialized(node, a.name)) out.push_back(a.name);
  }
  return out;
}

std::vector<std::string> Annotation::VirtualAttrs(
    const Vdp& vdp, const std::string& node) const {
  std::vector<std::string> out;
  const VdpNode* n = vdp.Find(node);
  if (n == nullptr) return out;
  for (const auto& a : n->schema.attrs()) {
    if (!IsMaterialized(node, a.name)) out.push_back(a.name);
  }
  return out;
}

bool Annotation::FullyMaterialized(const Vdp& vdp,
                                   const std::string& node) const {
  return VirtualAttrs(vdp, node).empty();
}

bool Annotation::FullyVirtual(const Vdp& vdp, const std::string& node) const {
  return MaterializedAttrs(vdp, node).empty();
}

bool Annotation::IsHybrid(const Vdp& vdp, const std::string& node) const {
  return !FullyMaterialized(vdp, node) && !FullyVirtual(vdp, node);
}

Status Annotation::Validate(const Vdp& vdp) const {
  for (const auto& [node, attr_modes] : modes_) {
    SQ_ASSIGN_OR_RETURN(const VdpNode* n, vdp.Get(node));
    if (n->is_leaf) {
      return Status::InvalidArgument("leaf node " + node +
                                     " cannot be annotated");
    }
    for (const auto& [attr, mode] : attr_modes) {
      (void)mode;
      if (!n->schema.Contains(attr)) {
        return Status::NotFound("annotated attribute " + attr +
                                " not in schema of node " + node);
      }
    }
  }
  // Implementation restriction: set nodes (difference) store distinct full
  // tuples, so projecting them onto a strict attribute subset would need
  // duplicate handling the paper does not define. Require fully
  // materialized or fully virtual difference nodes.
  for (const auto& name : vdp.DerivedNames()) {
    const VdpNode* n = vdp.Find(name);
    if (n->def && n->def->kind() == NodeDef::Kind::kDiff &&
        IsHybrid(vdp, name)) {
      return Status::Unsupported(
          "difference node " + name +
          " cannot be hybrid (fully materialize or fully virtualize it)");
    }
  }
  return Status::OK();
}

std::string Annotation::NodeToString(const Vdp& vdp,
                                     const std::string& node) const {
  const VdpNode* n = vdp.Find(node);
  if (n == nullptr) return node + "[?]";
  std::vector<std::string> parts;
  for (const auto& a : n->schema.attrs()) {
    parts.push_back(a.name +
                    (IsMaterialized(node, a.name) ? "^m" : "^v"));
  }
  return node + "[" + Join(parts, ", ") + "]";
}

std::string Annotation::ToString(const Vdp& vdp) const {
  std::string out;
  for (const auto& name : vdp.DerivedNames()) {
    out += NodeToString(vdp, name) + "\n";
  }
  return out;
}

}  // namespace squirrel
