#include "mediator/trace.h"

#include <cstdio>

namespace squirrel {

namespace {

/// Round-trippable rendering of a virtual time (%.17g preserves doubles).
std::string TimeRepr(Time t) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", t);
  return buf;
}

const char* KindName(TxnKind kind) {
  switch (kind) {
    case TxnKind::kInit:
      return "init";
    case TxnKind::kUpdate:
      return "update";
    case TxnKind::kQuery:
      return "query";
  }
  return "?";
}

}  // namespace

std::vector<const TraceEntry*> Trace::OfKind(TxnKind kind) const {
  std::vector<const TraceEntry*> out;
  for (const auto& e : entries_) {
    if (e.kind == kind) out.push_back(&e);
  }
  return out;
}

std::string Trace::ToString(bool include_data) const {
  std::string out = "sources:";
  for (const auto& s : source_names_) out += " " + s;
  out += "\n";
  for (const auto& e : entries_) {
    out += KindName(e.kind);
    out += " @" + TimeRepr(e.commit_time);
    out += " reflect=<";
    for (size_t i = 0; i < e.reflect.size(); ++i) {
      if (i > 0) out += ",";
      out += TimeRepr(e.reflect[i]);
    }
    out += ">";
    out += " polls=" + std::to_string(e.polls);
    if (e.kind == TxnKind::kUpdate) {
      out += " iup={fired=" + std::to_string(e.iup_stats.rules_fired) +
             " in=" + std::to_string(e.iup_stats.atoms_in) +
             " prop=" + std::to_string(e.iup_stats.atoms_propagated) +
             " nodes=" + std::to_string(e.iup_stats.nodes_processed) +
             " retries=" + std::to_string(e.iup_stats.poll_retries) + "}";
    }
    if (e.query.has_value()) out += " q=" + e.query->ToString();
    out += "\n";
    if (include_data && e.answer.has_value()) {
      for (const auto& [tuple, count] : e.answer->SortedRows()) {
        out += "  a " + tuple.ToString();
        if (count != 1) out += "x" + std::to_string(count);
        out += "\n";
      }
    }
    if (include_data) {
      for (const auto& [node, rel] : e.repo_snapshot) {
        out += "  repo " + node + ":";
        for (const auto& [tuple, count] : rel.SortedRows()) {
          out += " " + tuple.ToString();
          if (count != 1) out += "x" + std::to_string(count);
        }
        out += "\n";
      }
    }
  }
  for (const auto& [t, text] : notes_) {
    out += "note @" + TimeRepr(t) + " " + text + "\n";
  }
  return out;
}

}  // namespace squirrel
