#include "mediator/trace.h"

namespace squirrel {

std::vector<const TraceEntry*> Trace::OfKind(TxnKind kind) const {
  std::vector<const TraceEntry*> out;
  for (const auto& e : entries_) {
    if (e.kind == kind) out.push_back(&e);
  }
  return out;
}

}  // namespace squirrel
