#include "mediator/vap.h"

#include <algorithm>
#include <set>

#include "common/cancel.h"
#include "common/strings.h"
#include "delta/delta_algebra.h"
#include "relational/index.h"
#include "relational/operators.h"

namespace squirrel {

namespace {

/// Orders \p attrs by their position in \p schema (deterministic request
/// normal form).
std::vector<std::string> NormalizeAttrs(const Schema& schema,
                                        const std::set<std::string>& attrs) {
  std::vector<std::string> out;
  for (const auto& a : schema.attrs()) {
    if (attrs.count(a.name)) out.push_back(a.name);
  }
  return out;
}

/// Clauses of \p cond whose attributes are all within \p visible.
Expr::Ptr PushableClauses(const Expr::Ptr& cond,
                          const std::vector<std::string>& visible) {
  if (!cond || cond->IsTrueLiteral()) return Expr::True();
  std::vector<Expr::Ptr> pushed;
  for (const auto& clause : ConjunctiveClauses(cond)) {
    bool ok = true;
    for (const auto& a : clause->ReferencedAttrs()) {
      if (std::find(visible.begin(), visible.end(), a) == visible.end()) {
        ok = false;
        break;
      }
    }
    if (ok) pushed.push_back(clause);
  }
  return AndAll(pushed);
}

std::set<std::string> AttrsOf(const Expr::Ptr& e) {
  std::set<std::string> out;
  if (e) e->CollectAttrs(&out);
  return out;
}

bool ContainsAttr(const std::vector<std::string>& attrs,
                  const std::string& a) {
  return std::find(attrs.begin(), attrs.end(), a) != attrs.end();
}

}  // namespace

std::string TempRequest::ToString() const {
  std::string out = "(" + node + ", [" + Join(attrs, ",") + "]";
  if (cond && !cond->IsTrueLiteral()) out += ", " + cond->ToString();
  out += ")";
  return out;
}

void TempStore::Put(const std::string& node, Entry entry) {
  entries_[node] = std::move(entry);
}

const TempStore::Entry* TempStore::Find(const std::string& node) const {
  auto it = entries_.find(node);
  return it == entries_.end() ? nullptr : &it->second;
}

bool TempStore::Covers(const std::string& node,
                       const std::vector<std::string>& attrs) const {
  const Entry* e = Find(node);
  if (e == nullptr) return false;
  return std::all_of(attrs.begin(), attrs.end(), [&](const std::string& a) {
    return ContainsAttr(e->attrs, a);
  });
}

Status TempStore::ApplyNodeDelta(const std::string& node,
                                 const Delta& full_delta) {
  auto it = entries_.find(node);
  if (it == entries_.end()) return Status::OK();
  Entry& e = it->second;
  SQ_ASSIGN_OR_RETURN(
      Delta filtered,
      FilterDeltaToLeafParent(full_delta, e.cond ? e.cond : Expr::True(),
                              e.attrs));
  return ApplyDelta(&e.data, filtered);
}

size_t TempStore::ApproxBytes() const {
  size_t total = 0;
  for (const auto& [name, e] : entries_) {
    (void)name;
    total += e.data.ApproxBytes();
  }
  return total;
}

std::vector<std::string> VapPlan::PolledSources() const {
  std::vector<std::string> out;
  for (const auto& p : polls) {
    if (std::find(out.begin(), out.end(), p.source) == out.end()) {
      out.push_back(p.source);
    }
  }
  return out;
}

bool Vap::RepoCovers(const std::string& node,
                     const std::vector<std::string>& attrs) const {
  if (!store_->HasRepo(node)) return false;
  auto mat = ann_->MaterializedAttrs(*vdp_, node);
  return std::all_of(attrs.begin(), attrs.end(), [&](const std::string& a) {
    return ContainsAttr(mat, a);
  });
}

Result<KeyBasedChoice> Vap::TryKeyBased(const VdpNode& node,
                                        const TempRequest& req) const {
  if (node.is_leaf || !node.def ||
      node.def->kind() != NodeDef::Kind::kSpj ||
      node.def->terms().size() < 2) {
    return Status::Unsupported("key-based: node is not a multi-term SPJ");
  }
  if (!store_->HasRepo(node.name)) {
    return Status::Unsupported("key-based: node has no repository");
  }
  auto mat = ann_->MaterializedAttrs(*vdp_, node.name);
  std::set<std::string> needed(req.attrs.begin(), req.attrs.end());
  for (const auto& a : AttrsOf(req.cond)) needed.insert(a);
  std::set<std::string> virt_needed;
  for (const auto& a : needed) {
    if (!ContainsAttr(mat, a)) virt_needed.insert(a);
  }
  if (virt_needed.empty()) {
    return Status::Unsupported("key-based: nothing virtual requested");
  }
  for (const auto& term : node.def->terms()) {
    bool supplies_all = std::all_of(
        virt_needed.begin(), virt_needed.end(), [&](const std::string& a) {
          return ContainsAttr(term.project, a);
        });
    if (!supplies_all) continue;
    SQ_ASSIGN_OR_RETURN(const VdpNode* child, vdp_->Get(term.child));
    const auto& key = child->schema.key();
    if (key.empty()) continue;
    bool key_ok = std::all_of(key.begin(), key.end(), [&](const std::string& k) {
      return ContainsAttr(term.project, k) && ContainsAttr(mat, k) &&
             node.schema.Contains(k);
    });
    if (!key_ok) continue;

    KeyBasedChoice choice;
    choice.child = term.child;
    choice.key = key;
    std::set<std::string> child_attrs(key.begin(), key.end());
    for (const auto& a : virt_needed) child_attrs.insert(a);
    for (const auto& a : AttrsOf(term.select)) child_attrs.insert(a);
    // Clauses of the request condition referencing only child-visible attrs
    // may also be pushed; include their attrs.
    for (const auto& a : AttrsOf(req.cond)) {
      if (child->schema.Contains(a)) child_attrs.insert(a);
    }
    choice.child_attrs = NormalizeAttrs(child->schema, child_attrs);
    std::set<std::string> own(key.begin(), key.end());
    for (const auto& a : needed) {
      if (ContainsAttr(mat, a)) own.insert(a);
    }
    choice.own_attrs = NormalizeAttrs(node.schema, own);
    return choice;
  }
  return Status::Unsupported(
      "key-based: no single child supplies all virtual attributes with a "
      "materialized key");
}

Result<std::vector<TempRequest>> Vap::DerivedFrom(
    const VdpNode& node, const TempRequest& req) const {
  if (!node.def) {
    return Status::InvalidArgument("derived_from on leaf node " + node.name);
  }
  const NodeDef& def = *node.def;
  std::vector<TempRequest> out;

  if (def.kind() == NodeDef::Kind::kSpj) {
    std::set<std::string> cond_attrs = AttrsOf(req.cond);
    std::set<std::string> outer_attrs = AttrsOf(def.outer_select());
    std::set<std::string> join_attrs;
    for (const auto& jc : def.join_conds()) {
      for (const auto& a : AttrsOf(jc)) join_attrs.insert(a);
    }
    for (const auto& term : def.terms()) {
      SQ_ASSIGN_OR_RETURN(const VdpNode* child, vdp_->Get(term.child));
      std::set<std::string> b;
      for (const auto& a : req.attrs) {
        if (ContainsAttr(term.project, a)) b.insert(a);
      }
      for (const auto& a : join_attrs) {
        if (ContainsAttr(term.project, a)) b.insert(a);
      }
      for (const auto& a : outer_attrs) {
        if (ContainsAttr(term.project, a)) b.insert(a);
      }
      for (const auto& a : cond_attrs) {
        if (ContainsAttr(term.project, a)) b.insert(a);
      }
      for (const auto& a : AttrsOf(term.select)) b.insert(a);
      if (b.empty() && !term.project.empty()) {
        // The term still contributes join multiplicity; keep one attribute.
        b.insert(term.project[0]);
      }
      TempRequest child_req;
      child_req.node = term.child;
      child_req.attrs = NormalizeAttrs(child->schema, b);
      child_req.cond = Expr::And(term.SelectOrTrue(),
                                 PushableClauses(req.cond, term.project));
      out.push_back(std::move(child_req));
    }
    return out;
  }

  // Union / difference: terms project identical attribute lists C.
  for (const auto& term : def.terms()) {
    SQ_ASSIGN_OR_RETURN(const VdpNode* child, vdp_->Get(term.child));
    std::set<std::string> b;
    if (def.kind() == NodeDef::Kind::kDiff) {
      // Difference compares whole tuples: need all of C (paper case (4)).
      b.insert(term.project.begin(), term.project.end());
    } else {
      b.insert(req.attrs.begin(), req.attrs.end());
    }
    for (const auto& a : AttrsOf(req.cond)) b.insert(a);
    for (const auto& a : AttrsOf(term.select)) b.insert(a);
    TempRequest child_req;
    child_req.node = term.child;
    child_req.attrs = NormalizeAttrs(child->schema, b);
    // σ_f distributes over ∪ and − (both sides), so the request condition is
    // pushable in full; term.select composes with it.
    child_req.cond = Expr::And(term.SelectOrTrue(),
                               PushableClauses(req.cond, term.project));
    out.push_back(std::move(child_req));
  }
  return out;
}

Result<VapPlan> Vap::Plan(const std::vector<TempRequest>& input) const {
  // Topological index per node (children-first order in the VDP).
  std::map<std::string, size_t> topo_index;
  for (size_t i = 0; i < vdp_->TopoOrder().size(); ++i) {
    topo_index[vdp_->TopoOrder()[i]] = i;
  }

  // Pending requests keyed by topo index; processed highest (parents) first.
  std::map<size_t, TempRequest> pending;
  auto merge_into_pending = [&](TempRequest req) -> Status {
    SQ_ASSIGN_OR_RETURN(const VdpNode* node, vdp_->Get(req.node));
    // Normalize: cond attrs must be covered by attrs.
    std::set<std::string> attrs(req.attrs.begin(), req.attrs.end());
    for (const auto& a : AttrsOf(req.cond)) attrs.insert(a);
    req.attrs = NormalizeAttrs(node->schema, attrs);
    if (!req.cond) req.cond = Expr::True();
    size_t idx = topo_index.at(req.node);
    auto it = pending.find(idx);
    if (it == pending.end()) {
      pending.emplace(idx, std::move(req));
      return Status::OK();
    }
    // Merge: union attrs, OR conditions (paper step 2b).
    std::set<std::string> merged(it->second.attrs.begin(),
                                 it->second.attrs.end());
    merged.insert(req.attrs.begin(), req.attrs.end());
    it->second.attrs = NormalizeAttrs(node->schema, merged);
    it->second.cond = Expr::Or(it->second.cond, req.cond);
    return Status::OK();
  };

  for (const auto& req : input) {
    SQ_RETURN_IF_ERROR(merge_into_pending(req));
  }

  VapPlan plan;
  std::vector<TempRequest> processed;          // parents-first
  std::vector<int> processed_key_based;        // index into kb_choices or -1
  std::vector<KeyBasedChoice> kb_choices;

  while (!pending.empty()) {
    auto it = std::prev(pending.end());  // highest topo index = parent-most
    TempRequest req = std::move(it->second);
    pending.erase(it);
    SQ_ASSIGN_OR_RETURN(const VdpNode* node, vdp_->Get(req.node));

    if (node->is_leaf) {
      processed.push_back(std::move(req));
      processed_key_based.push_back(-1);
      continue;
    }
    if (RepoCovers(req.node, req.attrs)) {
      continue;  // served by the repository; no temp needed
    }

    int kb_index = -1;
    std::vector<TempRequest> children;
    if (strategy_ != VapStrategy::kChildBased) {
      auto kb = TryKeyBased(*node, req);
      if (kb.ok()) {
        bool use_kb = true;
        if (strategy_ == VapStrategy::kAuto) {
          // Benefit test: child-based needs temps for every term whose repo
          // does not cover it; key-based needs at most one.
          SQ_ASSIGN_OR_RETURN(std::vector<TempRequest> cb,
                              DerivedFrom(*node, req));
          size_t cb_cost = 0;
          for (const auto& c : cb) {
            if (!RepoCovers(c.node, c.attrs)) ++cb_cost;
          }
          size_t kb_cost = RepoCovers(kb->child, kb->child_attrs) ? 0 : 1;
          use_kb = kb_cost < cb_cost;
        }
        if (use_kb) {
          TempRequest child_req;
          child_req.node = kb->child;
          child_req.attrs = kb->child_attrs;
          SQ_ASSIGN_OR_RETURN(const VdpNode* child, vdp_->Get(kb->child));
          (void)child;
          child_req.cond = PushableClauses(req.cond, kb->child_attrs);
          children.push_back(std::move(child_req));
          kb_choices.push_back(std::move(kb).value());
          kb_index = static_cast<int>(kb_choices.size()) - 1;
        }
      }
    }
    if (kb_index < 0) {
      SQ_ASSIGN_OR_RETURN(children, DerivedFrom(*node, req));
    }
    for (auto& c : children) {
      if (RepoCovers(c.node, c.attrs)) continue;
      SQ_RETURN_IF_ERROR(merge_into_pending(std::move(c)));
    }
    processed.push_back(std::move(req));
    processed_key_based.push_back(kb_index);
  }

  // Build order: children first.
  for (size_t i = processed.size(); i-- > 0;) {
    size_t out_idx = plan.build_order.size();
    const TempRequest& req = processed[i];
    const VdpNode* node = vdp_->Find(req.node);
    if (node->is_leaf) {
      VapPlan::LeafPoll poll;
      poll.request_index = out_idx;
      poll.source = node->source_db;
      poll.leaf_node = node->name;
      poll.spec.relation = node->source_relation;
      poll.spec.attrs = req.attrs;
      poll.spec.cond = req.cond;
      plan.polls.push_back(std::move(poll));
    } else if (processed_key_based[i] >= 0) {
      plan.key_based[out_idx] = kb_choices[processed_key_based[i]];
    }
    plan.build_order.push_back(req);
  }
  return plan;
}

Result<const Relation*> Vap::RepoAt(const std::string& node,
                                    const StoreSnapshot* snap) const {
  if (snap != nullptr) return snap->Repo(node);
  return store_->Repo(node);
}

Result<std::shared_ptr<const Relation>> Vap::ChildState(
    const std::string& child, const std::vector<std::string>& attrs,
    const TempStore& temps, const StoreSnapshot* snap) const {
  // Non-owning aliases: the store (or pinned snapshot) and the temp store
  // both outlive the assembly that consumes the handle.
  if (RepoCovers(child, attrs)) {
    SQ_ASSIGN_OR_RETURN(const Relation* repo, RepoAt(child, snap));
    return std::shared_ptr<const Relation>(std::shared_ptr<void>(), repo);
  }
  const TempStore::Entry* e = temps.Find(child);
  if (e == nullptr || !temps.Covers(child, attrs)) {
    return Status::Internal("VAP: no state for node " + child +
                            " covering [" + Join(attrs, ",") +
                            "] (planning bug)");
  }
  return std::shared_ptr<const Relation>(std::shared_ptr<void>(), &e->data);
}

Result<Relation> Vap::Assemble(const TempRequest& req, const TempStore& temps,
                               const KeyBasedChoice* key_based,
                               const StoreSnapshot* snap) const {
  SQ_ASSIGN_OR_RETURN(const VdpNode* node, vdp_->Get(req.node));
  const NodeDef& def = *node->def;
  Expr::Ptr req_cond = req.cond ? req.cond : Expr::True();

  if (key_based != nullptr) {
    // Own materialized part.
    SQ_ASSIGN_OR_RETURN(const Relation* repo, RepoAt(req.node, snap));
    SQ_ASSIGN_OR_RETURN(
        Relation own,
        OpProject(*repo, key_based->own_attrs, Semantics::kBag));
    // Join own x child on the key, dropping the child's duplicate key cols.
    // The probe key follows the index's attribute order (which may differ
    // from key_based->key for a persistent index found by attr *set*).
    auto probe_join = [&](const HashIndex& index,
                          const Schema& probed_schema) -> Result<Relation> {
      std::vector<size_t> own_key_pos;
      for (const auto& k : index.attrs()) {
        own_key_pos.push_back(*own.schema().IndexOf(k));
      }
      std::vector<std::string> extra;  // child attrs not already in `own`
      std::vector<size_t> extra_pos;   // ... by position in probed_schema
      for (const auto& a : key_based->child_attrs) {
        if (!own.schema().Contains(a)) {
          extra.push_back(a);
          extra_pos.push_back(*probed_schema.IndexOf(a));
        }
      }
      std::vector<Attribute> out_attrs = own.schema().attrs();
      for (size_t p : extra_pos) out_attrs.push_back(probed_schema.attrs()[p]);
      Relation joined(Schema(std::move(out_attrs)), Semantics::kBag);
      Status st = Status::OK();
      own.ForEach([&](const Tuple& t, int64_t count) {
        if (!st.ok()) return;
        for (const auto& [ct, cc] : index.Probe(t.Project(own_key_pos))) {
          Tuple row = t;
          for (size_t p : extra_pos) row.Append(ct.at(p));
          st = joined.Insert(std::move(row), count * cc);
        }
      });
      if (!st.ok()) return st;
      return joined;
    };
    // Child part: prefer the store's persistent (child, key) index over
    // projecting the child state and building a throwaway hash table. The
    // persistent index holds full repository tuples; probing it and summing
    // per-tuple counts is equivalent to probing the bag projection, because
    // repository tuples that agree on the projected attrs produce identical
    // rows whose counts Relation::Insert accumulates.
    // Snapshot reads bypass the persistent indexes: they track the LIVE
    // repositories, which may already have moved past this snapshot.
    const HashIndex* repo_index = nullptr;
    const Relation* child_repo = nullptr;
    if (snap == nullptr && store_->indexes_enabled() &&
        RepoCovers(key_based->child, key_based->child_attrs)) {
      SQ_ASSIGN_OR_RETURN(child_repo, store_->Repo(key_based->child));
      repo_index = store_->indexes().Find(key_based->child, key_based->key);
      if (repo_index != nullptr &&
          repo_index->relation_attrs() !=
              child_repo->schema().AttributeNames()) {
        repo_index = nullptr;  // registration no longer matches; fall back
      }
    }
    auto child_based = [&]() -> Result<Relation> {
      SQ_ASSIGN_OR_RETURN(
          std::shared_ptr<const Relation> child,
          ChildState(key_based->child, key_based->child_attrs, temps, snap));
      SQ_ASSIGN_OR_RETURN(
          Relation child_proj,
          OpProject(*child, key_based->child_attrs, Semantics::kBag));
      SQ_ASSIGN_OR_RETURN(HashIndex index,
                          HashIndex::Build(child_proj, key_based->key));
      return probe_join(index, child_proj.schema());
    };
    SQ_ASSIGN_OR_RETURN(Relation joined,
                        repo_index != nullptr
                            ? probe_join(*repo_index, child_repo->schema())
                            : child_based());
    SQ_ASSIGN_OR_RETURN(Relation selected, OpSelect(joined, req_cond));
    return OpProject(selected, req.attrs, Semantics::kBag);
  }

  // Child-based assembly per def kind.
  if (def.kind() == NodeDef::Kind::kSpj) {
    std::set<std::string> cond_attrs = AttrsOf(req_cond);
    std::set<std::string> outer_attrs = AttrsOf(def.outer_select());
    std::set<std::string> join_attrs;
    for (const auto& jc : def.join_conds()) {
      for (const auto& a : AttrsOf(jc)) join_attrs.insert(a);
    }
    std::vector<Relation> term_rels;
    for (const auto& term : def.terms()) {
      std::set<std::string> p;
      for (const auto& a : req.attrs) {
        if (ContainsAttr(term.project, a)) p.insert(a);
      }
      for (const auto& a : join_attrs) {
        if (ContainsAttr(term.project, a)) p.insert(a);
      }
      for (const auto& a : outer_attrs) {
        if (ContainsAttr(term.project, a)) p.insert(a);
      }
      for (const auto& a : cond_attrs) {
        if (ContainsAttr(term.project, a)) p.insert(a);
      }
      if (p.empty() && !term.project.empty()) p.insert(term.project[0]);
      SQ_ASSIGN_OR_RETURN(const VdpNode* child, vdp_->Get(term.child));
      std::vector<std::string> proj = NormalizeAttrs(child->schema, p);
      std::set<std::string> b = p;
      for (const auto& a : AttrsOf(term.select)) b.insert(a);
      SQ_ASSIGN_OR_RETURN(
          std::shared_ptr<const Relation> state,
          ChildState(term.child, NormalizeAttrs(child->schema, b), temps,
                     snap));
      SQ_ASSIGN_OR_RETURN(Relation sel, OpSelect(*state, term.SelectOrTrue()));
      SQ_ASSIGN_OR_RETURN(Relation tr, OpProject(sel, proj, Semantics::kBag));
      term_rels.push_back(std::move(tr));
    }
    Relation acc = std::move(term_rels[0]);
    for (size_t i = 1; i < term_rels.size(); ++i) {
      SQ_ASSIGN_OR_RETURN(acc,
                          OpJoin(acc, term_rels[i], def.join_conds()[i - 1]));
    }
    SQ_ASSIGN_OR_RETURN(acc,
                        OpSelect(acc, Expr::And(def.outer_select(), req_cond)));
    return OpProject(acc, req.attrs, Semantics::kBag);
  }

  // Union / difference.
  std::vector<Relation> term_rels;
  for (const auto& term : def.terms()) {
    SQ_ASSIGN_OR_RETURN(const VdpNode* child, vdp_->Get(term.child));
    std::set<std::string> b;
    if (def.kind() == NodeDef::Kind::kDiff) {
      b.insert(term.project.begin(), term.project.end());
    } else {
      b.insert(req.attrs.begin(), req.attrs.end());
    }
    for (const auto& a : AttrsOf(req_cond)) b.insert(a);
    std::vector<std::string> proj = NormalizeAttrs(node->schema, b);
    std::set<std::string> needed = b;
    for (const auto& a : AttrsOf(term.select)) needed.insert(a);
    SQ_ASSIGN_OR_RETURN(
        std::shared_ptr<const Relation> state,
        ChildState(term.child, NormalizeAttrs(child->schema, needed), temps,
                   snap));
    SQ_ASSIGN_OR_RETURN(
        Relation sel,
        OpSelect(*state, Expr::And(term.SelectOrTrue(), req_cond)));
    SQ_ASSIGN_OR_RETURN(Relation tr, OpProject(sel, proj, Semantics::kBag));
    term_rels.push_back(std::move(tr));
  }
  if (def.kind() == NodeDef::Kind::kUnion) {
    SQ_ASSIGN_OR_RETURN(Relation u,
                        OpUnion(term_rels[0], term_rels[1], Semantics::kBag));
    return OpProject(u, req.attrs, Semantics::kBag);
  }
  SQ_ASSIGN_OR_RETURN(Relation d,
                      OpDiff(term_rels[0].ToSet(), term_rels[1].ToSet()));
  return OpProject(d, req.attrs, Semantics::kBag);
}

Result<TempStore> Vap::Execute(const VapPlan& plan, const PollFn& poll,
                               const CompensationFn& comp,
                               const StoreSnapshot* snap) const {
  TempStore temps;
  // Map from request index to its poll, if any.
  std::map<size_t, const VapPlan::LeafPoll*> poll_at;
  for (const auto& p : plan.polls) poll_at[p.request_index] = &p;

  for (size_t i = 0; i < plan.build_order.size(); ++i) {
    // Step-boundary cancellation: each build step is a bounded unit of
    // work, so a cancelled query (deadline or memory budget) stops before
    // assembling the next temporary instead of finishing the whole plan.
    SQ_RETURN_IF_ERROR(CheckCancel());
    const TempRequest& req = plan.build_order[i];
    auto pit = poll_at.find(i);
    if (pit != poll_at.end()) {
      const VapPlan::LeafPoll& lp = *pit->second;
      if (!poll) {
        return Status::FailedPrecondition(
            "VAP plan requires polling source " + lp.source +
            " but no poll function was provided");
      }
      SQ_ASSIGN_OR_RETURN(Relation answer, poll(lp.source, lp.spec));
      ++temps.polls;
      if (comp) {
        SQ_ASSIGN_OR_RETURN(const VdpNode* leaf, vdp_->Get(lp.leaf_node));
        SQ_ASSIGN_OR_RETURN(
            Delta pending,
            comp(lp.source, lp.spec.relation, leaf->schema));
        if (!pending.Empty()) {
          // Eager Compensation: roll the answer back to the reflected state
          // by removing the pending (unreflected) updates.
          SQ_ASSIGN_OR_RETURN(
              Delta filtered,
              FilterDeltaToLeafParent(pending, lp.spec.cond, lp.spec.attrs));
          SQ_RETURN_IF_ERROR(ApplyDelta(&answer, filtered.Inverse()));
        }
      }
      temps.polled_tuples += static_cast<uint64_t>(answer.TotalSize());
      TempStore::Entry entry;
      entry.data = std::move(answer);
      entry.attrs = req.attrs;
      entry.cond = req.cond;
      temps.Put(req.node, std::move(entry));
      continue;
    }
    const KeyBasedChoice* kb = nullptr;
    auto kit = plan.key_based.find(i);
    if (kit != plan.key_based.end()) kb = &kit->second;
    SQ_ASSIGN_OR_RETURN(Relation data, Assemble(req, temps, kb, snap));
    TempStore::Entry entry;
    entry.data = std::move(data);
    entry.attrs = req.attrs;
    entry.cond = req.cond;
    temps.Put(req.node, std::move(entry));
  }
  return temps;
}

Result<TempStore> Vap::Materialize(const std::vector<TempRequest>& input,
                                   const PollFn& poll,
                                   const CompensationFn& comp,
                                   const StoreSnapshot* snap) const {
  SQ_ASSIGN_OR_RETURN(VapPlan plan, Plan(input));
  return Execute(plan, poll, comp, snap);
}

}  // namespace squirrel
