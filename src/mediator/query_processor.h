// The Query Processor (paper §4, §6.3): answers view queries from the local
// store when possible, and through VAP temporaries when virtual attributes
// are involved. Export answers use set semantics (the view definition
// language is set-based; bags are internal).

#ifndef SQUIRREL_MEDIATOR_QUERY_PROCESSOR_H_
#define SQUIRREL_MEDIATOR_QUERY_PROCESSOR_H_

#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "mediator/local_store.h"
#include "mediator/query.h"
#include "mediator/vap.h"
#include "vdp/vdp.h"

namespace squirrel {

/// A ViewQuery that has been normalized once: attrs defaulted/validated,
/// cond non-null, and the needed-attr set (query attrs + cond attrs, schema
/// order) derived. The single internal entry point of the QP — obtained from
/// QueryProcessor::Prepare and reusable across PlanFor/Answer/AnswerWithTemps
/// without re-running normalization or coverage analysis.
struct PreparedQuery {
  ViewQuery query;                  ///< normalized form
  std::vector<std::string> needed;  ///< attrs the answer must read
};

/// \brief Answers ViewQueries over an annotated VDP.
class QueryProcessor {
 public:
  /// Answer computed locally (timing/reflect data added by the Mediator).
  struct LocalAnswer {
    Relation data;              ///< set-semantics result
    bool used_virtual = false;  ///< true iff the VAP ran
    uint64_t polls = 0;         ///< source polls performed
    uint64_t polled_tuples = 0;
    // ---- degraded reads (AnswerDegraded only) ----
    bool degraded = false;
    /// Requested attrs with no materialized backing (dropped).
    std::vector<std::string> missing_attrs;
    /// True iff the selection referenced unmaterialized attrs and was
    /// dropped (the answer is a superset of the exact result).
    bool cond_dropped = false;
  };

  /// None of the pointers are owned; all must outlive the processor.
  QueryProcessor(const Vdp* vdp, const Annotation* ann,
                 const LocalStore* store, const Vap* vap)
      : vdp_(vdp), ann_(ann), store_(store), vap_(vap) {}

  /// Normalizes a query: checks the relation is exported, defaults empty
  /// attrs to the full schema, checks attrs exist.
  Result<ViewQuery> Normalize(const ViewQuery& q) const;

  /// Normalize + needed-attr derivation, done once up front.
  Result<PreparedQuery> Prepare(const ViewQuery& raw) const;

  /// The VAP plan the query needs, or nullopt when the materialized data
  /// suffices.
  Result<std::optional<VapPlan>> PlanFor(const PreparedQuery& q) const;

  /// Answers \p q, running the VAP with \p poll / \p comp when needed.
  /// With \p snap set, every repository read (direct or through the VAP)
  /// is served from that immutable snapshot instead of the live store —
  /// the MVCC read path, safe against a concurrent commit.
  Result<LocalAnswer> Answer(const PreparedQuery& q, const Vap::PollFn& poll,
                             const Vap::CompensationFn& comp,
                             const StoreSnapshot* snap = nullptr) const;

  /// Answers \p q against pre-built temporaries (the Mediator's async path).
  Result<LocalAnswer> AnswerWithTemps(const PreparedQuery& q,
                                      const TempStore& temps,
                                      const StoreSnapshot* snap = nullptr)
      const;

  /// Degraded-mode answer while one or more needed sources are down
  /// (MediatorOptions::degraded_reads): serves whatever the export node's
  /// repository materializes instead of failing with kUnavailable.
  /// Unmaterialized requested attributes are dropped (reported in
  /// missing_attrs); a selection referencing unmaterialized attributes is
  /// dropped too (cond_dropped), making the answer a superset. Fails with
  /// kUnavailable only when the export node has no repository or none of
  /// the requested attributes are materialized — there is then nothing to
  /// serve.
  Result<LocalAnswer> AnswerDegraded(const PreparedQuery& q) const;

  // Convenience overloads for raw queries; each Prepares and delegates.
  /// Input should be normalized (legacy contract kept for callers that
  /// Normalize themselves).
  Result<std::optional<VapPlan>> PlanFor(const ViewQuery& q) const;
  Result<LocalAnswer> Answer(const ViewQuery& q, const Vap::PollFn& poll,
                             const Vap::CompensationFn& comp) const;
  Result<LocalAnswer> AnswerWithTemps(const ViewQuery& q,
                                      const TempStore& temps) const;

 private:
  Result<LocalAnswer> AnswerFromRepo(const PreparedQuery& q,
                                     const StoreSnapshot* snap) const;

  const Vdp* vdp_;
  const Annotation* ann_;
  const LocalStore* store_;
  const Vap* vap_;
};

}  // namespace squirrel

#endif  // SQUIRREL_MEDIATOR_QUERY_PROCESSOR_H_
