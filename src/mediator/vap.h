// The Virtual Attribute Processor (paper §6.3).
//
// When the QP or IUP needs data containing virtual attributes, the VAP
// materializes temporary relations equivalent to π_A σ_f (node). Execution
// has two phases exactly as in the paper:
//
//  phase 1 (Plan):   starting from the input request set, repeatedly expand
//    requests through derived_from — parents before children, merging
//    requests for the same node (attrs unioned, conditions OR-ed) — until
//    everything bottoms out in materialized repositories or source polls;
//  phase 2 (Execute): poll the sources (leaf-parent data), apply
//    Eager-Compensation so hybrid-contributor answers match the state
//    already reflected in materialized data, then assemble the temporaries
//    bottom-up through the VDP.
//
// The key-based construction of Example 2.3 is available as an alternative
// derivation when a node's virtual attributes all come from one child whose
// key is materialized in the node (strategy kKeyBased / kAuto).

#ifndef SQUIRREL_MEDIATOR_VAP_H_
#define SQUIRREL_MEDIATOR_VAP_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "delta/delta.h"
#include "mediator/local_store.h"
#include "source/messages.h"
#include "vdp/annotation.h"
#include "vdp/vdp.h"

namespace squirrel {

/// A request for a temporary relation π_attrs σ_cond(node) — the paper's
/// (R, A, f) triple.
struct TempRequest {
  std::string node;
  std::vector<std::string> attrs;  ///< needed attrs (schema order)
  Expr::Ptr cond;                  ///< restriction; null means true

  std::string ToString() const;
};

/// \brief Holds materialized temporaries for the duration of one QP/IUP
/// transaction.
class TempStore {
 public:
  struct Entry {
    Relation data;                   ///< π_attrs σ_cond(node contents)
    std::vector<std::string> attrs;  ///< attrs covered
    Expr::Ptr cond;                  ///< condition applied (True = none)
  };

  /// Installs/overwrites the temp for \p node.
  void Put(const std::string& node, Entry entry);
  /// The temp for \p node, or nullptr.
  const Entry* Find(const std::string& node) const;
  /// True iff a temp for \p node exists and covers all of \p attrs.
  bool Covers(const std::string& node,
              const std::vector<std::string>& attrs) const;
  /// Applies a full-attribute node delta to \p node's temp (filtered through
  /// the temp's cond and attrs). No-op if no temp exists. Keeps temporaries
  /// current while the IUP kernel processes nodes.
  Status ApplyNodeDelta(const std::string& node, const Delta& full_delta);

  /// Number of temps held.
  size_t Count() const { return entries_.size(); }
  /// Approximate bytes across temps.
  size_t ApproxBytes() const;

  /// Polls performed while building this store (set by Vap::Execute).
  uint64_t polls = 0;
  /// Tuples fetched from sources (post-compensation).
  uint64_t polled_tuples = 0;

 private:
  std::map<std::string, Entry> entries_;
};

/// How the VAP derives hybrid nodes' virtual attributes.
enum class VapStrategy {
  kChildBased,  ///< always expand through derived_from (children)
  kKeyBased,    ///< use the key-based construction whenever applicable
  kAuto,        ///< key-based when it avoids polling extra children
};

/// The key-based derivation choice for one request (Example 2.3).
struct KeyBasedChoice {
  std::string child;                    ///< child supplying virtual attrs
  std::vector<std::string> key;         ///< join key (child's key)
  std::vector<std::string> child_attrs; ///< attrs fetched from the child
  std::vector<std::string> own_attrs;   ///< attrs taken from own repository
};

/// Output of planning: what to build, in what order, and what to poll.
struct VapPlan {
  /// Requests in build order (children before parents). Leaf-node requests
  /// are polls; non-leaf requests are assembly steps.
  std::vector<TempRequest> build_order;
  /// Indexes into build_order that are leaf polls, with their poll spec.
  struct LeafPoll {
    size_t request_index;
    std::string source;     ///< source database name
    std::string leaf_node;  ///< VDP leaf node name
    PollSpec spec;
  };
  std::vector<LeafPoll> polls;
  /// Requests (by index into build_order) assembled key-based.
  std::map<size_t, KeyBasedChoice> key_based;

  /// True iff nothing needs doing.
  bool Empty() const { return build_order.empty(); }
  /// Distinct source databases polled.
  std::vector<std::string> PolledSources() const;
};

/// \brief Plans and executes temporary-relation construction.
class Vap {
 public:
  /// Answers π_attrs σ_cond of a *source* relation (the poll). Routed
  /// through the simulator in full deployments or straight to a SourceDb in
  /// direct/library use.
  using PollFn =
      std::function<Result<Relation>(const std::string& source_db,
                                     const PollSpec& spec)>;

  /// Pending (announced but not yet reflected) delta of a source relation;
  /// the VAP subtracts it from poll answers (Eager Compensation). The
  /// schema parameter is the source relation's schema.
  using CompensationFn = std::function<Result<Delta>(
      const std::string& source_db, const std::string& relation,
      const Schema& schema)>;

  /// \param vdp, ann, store not owned; must outlive the Vap.
  Vap(const Vdp* vdp, const Annotation* ann, const LocalStore* store,
      VapStrategy strategy = VapStrategy::kAuto)
      : vdp_(vdp), ann_(ann), store_(store), strategy_(strategy) {}

  /// Phase 1: expands and merges \p input into a bottom-up plan.
  Result<VapPlan> Plan(const std::vector<TempRequest>& input) const;

  /// Phase 2: executes a plan. With \p snap set, every repository read is
  /// routed through that immutable snapshot instead of the live store
  /// (MVCC query path) — the live store may be mid-commit on another
  /// thread. Persistent repository indexes are bypassed in snapshot mode:
  /// they index the LIVE repositories.
  Result<TempStore> Execute(const VapPlan& plan, const PollFn& poll,
                            const CompensationFn& comp,
                            const StoreSnapshot* snap = nullptr) const;

  /// Plan + Execute in one call.
  Result<TempStore> Materialize(const std::vector<TempRequest>& input,
                                const PollFn& poll,
                                const CompensationFn& comp,
                                const StoreSnapshot* snap = nullptr) const;

  /// True iff π_attrs of \p node is answerable from the repository alone.
  bool RepoCovers(const std::string& node,
                  const std::vector<std::string>& attrs) const;

  /// The active strategy.
  VapStrategy strategy() const { return strategy_; }
  /// Overrides the strategy (benchmark ablations).
  void set_strategy(VapStrategy s) { strategy_ = s; }

 private:
  Result<KeyBasedChoice> TryKeyBased(const VdpNode& node,
                                     const TempRequest& req) const;
  Result<std::vector<TempRequest>> DerivedFrom(const VdpNode& node,
                                               const TempRequest& req) const;
  Result<Relation> Assemble(const TempRequest& req, const TempStore& temps,
                            const KeyBasedChoice* key_based,
                            const StoreSnapshot* snap) const;
  /// Borrowed handle onto the child's repository or temp (no copy); valid
  /// while the store (or \p snap) and \p temps live.
  Result<std::shared_ptr<const Relation>> ChildState(
      const std::string& child, const std::vector<std::string>& attrs,
      const TempStore& temps, const StoreSnapshot* snap) const;
  /// The repository of \p node in \p snap when set, else the live store.
  Result<const Relation*> RepoAt(const std::string& node,
                                 const StoreSnapshot* snap) const;

  const Vdp* vdp_;
  const Annotation* ann_;
  const LocalStore* store_;
  VapStrategy strategy_;
};

}  // namespace squirrel

#endif  // SQUIRREL_MEDIATOR_VAP_H_
