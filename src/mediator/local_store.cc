#include "mediator/local_store.h"

#include "delta/delta_algebra.h"
#include "vdp/rules.h"

namespace squirrel {

LocalStore::LocalStore(const Vdp* vdp, const Annotation* ann,
                       bool enable_indexes)
    : vdp_(vdp), ann_(ann), indexes_enabled_(enable_indexes) {
  for (const auto& name : vdp_->DerivedNames()) {
    const VdpNode* node = vdp_->Find(name);
    auto mat = ann_->MaterializedAttrs(*vdp_, name);
    if (mat.empty()) continue;
    auto schema = node->schema.Project(mat);
    // Node schemas were validated at VDP construction; projection onto a
    // subset of attrs cannot fail.
    repos_.emplace(name,
                   Relation(std::move(schema).value(), node->semantics()));
  }
  if (indexes_enabled_) {
    AdviseIndexes(*vdp_, *ann_, &indexes_);
    for (const auto& [name, rel] : repos_) {
      // Repos are empty here; this just instantiates the advised indexes.
      (void)indexes_.Rebuild(name, rel);
    }
  }
}

bool LocalStore::HasRepo(const std::string& node) const {
  return repos_.count(node) > 0;
}

Result<const Relation*> LocalStore::Repo(const std::string& node) const {
  auto it = repos_.find(node);
  if (it == repos_.end()) {
    return Status::NotFound("no materialized repository for node: " + node);
  }
  return &it->second;
}

Result<Relation*> LocalStore::MutableRepo(const std::string& node) {
  auto it = repos_.find(node);
  if (it == repos_.end()) {
    return Status::NotFound("no materialized repository for node: " + node);
  }
  dirty_.insert(node);
  return &it->second;
}

Status LocalStore::SetRepo(const std::string& node, Relation contents) {
  auto it = repos_.find(node);
  if (it == repos_.end()) {
    return Status::NotFound("no materialized repository for node: " + node);
  }
  if (contents.schema().AttributeNames() !=
      it->second.schema().AttributeNames()) {
    return Status::InvalidArgument(
        "repository contents for " + node +
        " do not match the materialized attribute set");
  }
  it->second = std::move(contents);
  dirty_.insert(node);
  if (indexes_enabled_) {
    SQ_RETURN_IF_ERROR(indexes_.Rebuild(node, it->second));
  }
  return Status::OK();
}

Status LocalStore::RebuildIndexes(const std::string& node) {
  if (!indexes_enabled_) return Status::OK();
  auto it = repos_.find(node);
  if (it == repos_.end()) {
    return Status::NotFound("no materialized repository for node: " + node);
  }
  return indexes_.Rebuild(node, it->second);
}

Status LocalStore::ApplyNodeDelta(const std::string& node,
                                  const Delta& full_delta) {
  auto it = repos_.find(node);
  if (it == repos_.end()) {
    return Status::NotFound("no materialized repository for node: " + node);
  }
  dirty_.insert(node);
  const auto repo_attrs = it->second.schema().AttributeNames();
  if (full_delta.schema().AttributeNames() == repo_attrs) {
    SQ_RETURN_IF_ERROR(ApplyDelta(&it->second, full_delta));
    if (indexes_enabled_) {
      SQ_RETURN_IF_ERROR(indexes_.ApplyDelta(node, full_delta));
    }
    if (apply_listener_) apply_listener_(node, full_delta);
    return Status::OK();
  }
  SQ_ASSIGN_OR_RETURN(Delta narrowed, DeltaProject(full_delta, repo_attrs));
  SQ_RETURN_IF_ERROR(ApplyDelta(&it->second, narrowed));
  if (indexes_enabled_) {
    SQ_RETURN_IF_ERROR(indexes_.ApplyDelta(node, narrowed));
  }
  if (apply_listener_) apply_listener_(node, narrowed);
  return Status::OK();
}

std::vector<std::string> LocalStore::MaterializedNodes() const {
  std::vector<std::string> out;
  for (const auto& name : vdp_->TopoOrder()) {
    if (HasRepo(name)) out.push_back(name);
  }
  return out;
}

StoreSnapshot::~StoreSnapshot() {
  if (budget_ != nullptr) ReleaseGlobalBudget(budget_, budget_bytes_);
}

Result<const Relation*> StoreSnapshot::Repo(const std::string& node) const {
  auto it = repos_.find(node);
  if (it == repos_.end()) {
    return Status::NotFound("no materialized repository for node: " + node);
  }
  return it->second.get();
}

StoreSnapshotPtr LocalStore::Snapshot() const {
  std::lock_guard<std::mutex> lock(snap_mu_);
  return latest_;
}

StoreSnapshotPtr LocalStore::PublishSnapshot(TimeVector reflect) {
  auto snap = std::make_shared<StoreSnapshot>();
  snap->reflect_ = std::move(reflect);
  // Copy-on-write: only nodes dirtied since the previous publish get fresh
  // Relation copies; everything else aliases the prior snapshot's objects.
  // Reading latest_ here without the lock is fine — only this (writer)
  // thread ever replaces it.
  const StoreSnapshot* prev = latest_.get();
  for (const auto& [name, rel] : repos_) {
    std::shared_ptr<const Relation> share;
    if (prev != nullptr && dirty_.count(name) == 0) {
      auto it = prev->repos_.find(name);
      if (it != prev->repos_.end()) share = it->second;
    }
    if (share == nullptr) {
      share = std::make_shared<Relation>(rel);
      // Fresh copy: account its retained bytes to this snapshot. Shared
      // relations were already charged by the publish that copied them.
      const size_t bytes = rel.ApproxBytes();
      if (MemoryBudget* b = ChargeGlobalBudget(bytes)) {
        snap->budget_ = b;
        snap->budget_bytes_ += bytes;
      }
    }
    snap->repos_.emplace(name, std::move(share));
  }
  dirty_.clear();
  std::lock_guard<std::mutex> lock(snap_mu_);
  snap->version_ = next_snapshot_version_++;
  latest_ = snap;
  retained_.push_back(snap);
  return snap;
}

uint64_t LocalStore::SnapshotVersion() const {
  std::lock_guard<std::mutex> lock(snap_mu_);
  return next_snapshot_version_ - 1;
}

void LocalStore::EnsureSnapshotVersionAtLeast(uint64_t version) {
  std::lock_guard<std::mutex> lock(snap_mu_);
  if (next_snapshot_version_ <= version) next_snapshot_version_ = version + 1;
}

std::vector<StoreSnapshotPtr> LocalStore::LiveSnapshots() const {
  std::lock_guard<std::mutex> lock(snap_mu_);
  std::vector<StoreSnapshotPtr> live;
  std::vector<std::weak_ptr<const StoreSnapshot>> still_registered;
  for (const auto& weak : retained_) {
    if (auto strong = weak.lock()) {
      live.push_back(std::move(strong));
      still_registered.push_back(weak);
    }
  }
  retained_ = std::move(still_registered);
  return live;
}

size_t LocalStore::ApproxBytes() const {
  size_t total = 0;
  for (const auto& [name, rel] : repos_) {
    (void)name;
    total += rel.ApproxBytes();
  }
  return total;
}

}  // namespace squirrel
