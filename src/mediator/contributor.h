// Source-database contributor classification (paper §4): a source is a
// materialized-contributor if everything it feeds in the VDP is
// materialized, a virtual-contributor if everything is virtual, and a
// hybrid-contributor otherwise. The first two categories must be active
// (announce updates); the last two must answer polls.

#ifndef SQUIRREL_MEDIATOR_CONTRIBUTOR_H_
#define SQUIRREL_MEDIATOR_CONTRIBUTOR_H_

#include <string>

#include "vdp/annotation.h"
#include "vdp/vdp.h"

namespace squirrel {

/// How a source database relates to the mediator's data (paper §4).
enum class ContributorKind { kMaterialized, kHybrid, kVirtual };

/// Display name, e.g. "materialized-contributor".
const char* ContributorKindName(ContributorKind kind);

/// Classifies \p source_db by walking every node reachable from its leaves
/// and inspecting the annotation. Sources with no leaves in the VDP are
/// classified kVirtual (they contribute nothing materialized).
ContributorKind ClassifyContributor(const Vdp& vdp, const Annotation& ann,
                                    const std::string& source_db);

/// True iff the source must actively announce updates (materialized- and
/// hybrid-contributors).
inline bool MustAnnounce(ContributorKind kind) {
  return kind != ContributorKind::kVirtual;
}

/// True iff the source must answer polls (hybrid- and virtual-contributors).
inline bool MustAnswerPolls(ContributorKind kind) {
  return kind != ContributorKind::kMaterialized;
}

}  // namespace squirrel

#endif  // SQUIRREL_MEDIATOR_CONTRIBUTOR_H_
