// Execution traces of a mediator: one entry per committed transaction, with
// the reflect vector the mediator claims (paper §6.1). The consistency and
// freshness checkers verify these claims against the source histories.

#ifndef SQUIRREL_MEDIATOR_TRACE_H_
#define SQUIRREL_MEDIATOR_TRACE_H_

#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "mediator/iup.h"
#include "mediator/query.h"
#include "relational/relation.h"
#include "sim/clock.h"

namespace squirrel {

/// Transaction kinds in a mediator's serial history (§6.1).
enum class TxnKind { kInit, kUpdate, kQuery };

/// One committed transaction.
struct TraceEntry {
  TxnKind kind = TxnKind::kUpdate;
  Time commit_time = 0;
  /// reflect(commit_time): one entry per source, mediator source order.
  TimeVector reflect;
  /// Update/init transactions: snapshot of every materialized repository
  /// (node -> contents). Present only when trace recording is enabled.
  std::map<std::string, Relation> repo_snapshot;
  /// Query transactions: the query and its (set-semantics) answer.
  std::optional<ViewQuery> query;
  std::optional<Relation> answer;
  /// Update transactions: propagation counters.
  IupStats iup_stats;
  /// Source polls performed by this transaction.
  uint64_t polls = 0;
};

/// \brief An append-only transaction log.
///
/// Appends are serialized by an internal mutex so commit paths running off
/// the coordinator thread (the concurrent mediator's worker pool, bench
/// drivers) can record entries without racing. Readers (entries(), notes(),
/// ToString()) are NOT synchronized against concurrent appends — they are
/// meant for after the run, or for callers who externally quiesce writers
/// first, exactly like the consistency/freshness checkers do.
class Trace {
 public:
  /// \param source_names the mediator's source order; reflect vectors in
  ///        entries are aligned with it.
  explicit Trace(std::vector<std::string> source_names)
      : source_names_(std::move(source_names)) {}
  Trace() = default;

  /// Appends an entry (commit times must be non-decreasing). Thread-safe.
  void Add(TraceEntry entry) {
    std::lock_guard<std::mutex> lock(mu_);
    entries_.push_back(std::move(entry));
  }

  /// Appends a free-form operational note (quarantines, aborted
  /// transactions, failed queries). Notes are not transactions — the
  /// consistency checker ignores them — but they are part of the replay
  /// identity a seeded fault schedule must reproduce. Thread-safe.
  void Note(Time t, std::string text) {
    std::lock_guard<std::mutex> lock(mu_);
    notes_.emplace_back(t, std::move(text));
  }

  const std::vector<TraceEntry>& entries() const { return entries_; }
  const std::vector<std::pair<Time, std::string>>& notes() const {
    return notes_;
  }
  const std::vector<std::string>& source_names() const {
    return source_names_;
  }

  /// Entries of one kind.
  std::vector<const TraceEntry*> OfKind(TxnKind kind) const;

  /// Deterministic rendering of the whole trace — every entry (with
  /// snapshots and answers when \p include_data) plus every note. Two runs
  /// of the same seeded simulation must produce byte-identical renderings;
  /// the fault harness's replay check compares these strings.
  std::string ToString(bool include_data = true) const;

 private:
  std::mutex mu_;  ///< serializes appends (Add/Note)
  std::vector<std::string> source_names_;
  std::vector<TraceEntry> entries_;
  std::vector<std::pair<Time, std::string>> notes_;
};

}  // namespace squirrel

#endif  // SQUIRREL_MEDIATOR_TRACE_H_
