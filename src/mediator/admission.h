// Admission control for view queries (DESIGN.md §15).
//
// The gate bounds how much query work the mediator accepts per service
// class. Each class has a run-slot limit (max_active) and an additional
// waiting allowance (max_queued); a query that would push the class's
// in-flight count past max_active + max_queued is rejected immediately with
// a typed kOverloaded status carrying a retry-after hint, instead of
// queueing unboundedly behind the serialized transaction loop. A query
// holds its slot from admission until its callback resolves (answer,
// degraded answer, or typed error), so MVCC snapshot queries — which
// overlap freely — are bounded too.
//
// The gate also implements the memory-budget soft-limit policy: while the
// installed MemoryBudget reports SoftBreached(), kBatch admissions are
// refused so retained state can drain before throughput work piles on.

#ifndef SQUIRREL_MEDIATOR_ADMISSION_H_
#define SQUIRREL_MEDIATOR_ADMISSION_H_

#include <array>
#include <cstdint>
#include <string>

#include "common/query_class.h"
#include "common/status.h"
#include "sim/clock.h"

namespace squirrel {

/// Per-class admission limits. All zeros (the default) disables the gate
/// entirely — existing deployments are unchanged.
struct AdmissionOptions {
  /// Concurrent running queries per class; 0 = unlimited.
  std::array<uint32_t, kNumQueryClasses> max_active{};
  /// Additional queued (admitted, waiting for the transaction loop) queries
  /// per class on top of max_active; meaningful only when max_active > 0.
  std::array<uint32_t, kNumQueryClasses> max_queued{};
  /// Retry-after hint attached to rejections (and to responder-side
  /// deadline rejections); purely advisory.
  Time retry_after_hint = 50;

  /// True iff any class has a limit configured.
  bool Enabled() const {
    for (uint32_t m : max_active) {
      if (m != 0) return true;
    }
    return false;
  }
};

/// \brief Counts in-flight queries per class and refuses over-limit or
/// soft-budget-shed admissions with typed errors.
class AdmissionGate {
 public:
  AdmissionGate() = default;
  explicit AdmissionGate(AdmissionOptions opts) : opts_(opts) {}

  void set_options(const AdmissionOptions& opts) { opts_ = opts; }
  const AdmissionOptions& options() const { return opts_; }

  /// Admits or refuses one query of class \p cls. \p soft_breached is the
  /// memory budget's soft-limit state (sheds kBatch). On success the class
  /// holds one more slot until Release(). On refusal returns kOverloaded
  /// with the retry-after hint rendered into the message.
  Status Admit(QueryClass cls, bool soft_breached);

  /// Returns the slot taken by Admit(). Exactly one Release per admission.
  void Release(QueryClass cls);

  /// Drops all in-flight slots. Called at mediator Crash(): every admitted
  /// query dies with the process (its callback never fires), so the gate
  /// must not remember it into the next incarnation. Cumulative counters
  /// survive, like MediatorStats does.
  void ResetInflight() { inflight_.fill(0); }

  /// Queries of \p cls currently holding a slot.
  uint32_t Inflight(QueryClass cls) const {
    return inflight_[static_cast<size_t>(cls)];
  }

  /// Total admissions / rejections (all classes) since construction.
  uint64_t admitted() const { return admitted_; }
  uint64_t rejected() const { return rejected_; }
  /// Rejections attributable to the soft memory limit (kBatch sheds).
  uint64_t shed_soft_budget() const { return shed_soft_budget_; }

  /// "admission: inflight=i/b/n rejected=r shed=s" — one line for the
  /// mediator's trace/stats dump.
  std::string ToString() const;

 private:
  AdmissionOptions opts_;
  std::array<uint32_t, kNumQueryClasses> inflight_{};
  uint64_t admitted_ = 0;
  uint64_t rejected_ = 0;
  uint64_t shed_soft_budget_ = 0;
};

}  // namespace squirrel

#endif  // SQUIRREL_MEDIATOR_ADMISSION_H_
