#include "mediator/iup.h"

#include <algorithm>
#include <functional>
#include <optional>
#include <set>
#include <utility>

#include "common/strings.h"
#include "common/thread_pool.h"
#include "delta/delta_algebra.h"
#include "vdp/rules.h"

namespace squirrel {

void IupStats::Merge(const IupStats& other) {
  rules_fired += other.rules_fired;
  atoms_in += other.atoms_in;
  atoms_propagated += other.atoms_propagated;
  nodes_processed += other.nodes_processed;
  polls += other.polls;
  polled_tuples += other.polled_tuples;
  temps_built += other.temps_built;
  poll_retries += other.poll_retries;
}

namespace {

/// How many terms of \p def reference \p child.
size_t PositionsOf(const NodeDef& def, const std::string& child) {
  size_t n = 0;
  for (const auto& t : def.terms()) {
    if (t.child == child) ++n;
  }
  return n;
}

}  // namespace

Result<std::vector<TempRequest>> Iup::PrepareTempRequests(
    const std::map<std::string, Delta>& leaf_deltas) const {
  // Affected set: exact at leaf-parents (filter the actual deltas),
  // conservative above.
  std::set<std::string> affected;
  for (const auto& [leaf, delta] : leaf_deltas) {
    if (delta.Empty()) continue;
    for (const auto& parent_name : vdp_->Parents(leaf)) {
      SQ_ASSIGN_OR_RETURN(const VdpNode* parent, vdp_->Get(parent_name));
      for (const auto& term : parent->def->terms()) {
        if (term.child != leaf) continue;
        SQ_ASSIGN_OR_RETURN(
            Delta filtered,
            FilterDeltaToLeafParent(delta, term.SelectOrTrue(),
                                    term.project));
        if (!filtered.Empty()) {
          affected.insert(parent_name);
          break;
        }
      }
    }
  }
  for (const auto& name : vdp_->TopoOrder()) {
    const VdpNode* node = vdp_->Find(name);
    if (node->is_leaf || affected.count(name)) continue;
    for (const auto& child : node->def->Children()) {
      if (affected.count(child)) {
        affected.insert(name);
        break;
      }
    }
  }

  // For every affected parent p and affected child x, the kernel will fire
  // rules from x into p; those firings read the states of:
  //  - every term over a different child,
  //  - terms over x itself when p is a difference node (presence deltas) or
  //    x occurs at several positions (self-joins).
  std::vector<TempRequest> requests;
  for (const auto& parent_name : affected) {
    const VdpNode* parent = vdp_->Find(parent_name);
    if (parent->is_leaf) continue;
    const NodeDef& def = *parent->def;
    for (const auto& child : def.Children()) {
      bool child_affected =
          affected.count(child) > 0 || leaf_deltas.count(child) > 0;
      if (!child_affected) continue;
      bool self_needed = def.kind() == NodeDef::Kind::kDiff ||
                         PositionsOf(def, child) > 1;
      for (const auto& term : def.terms()) {
        bool needed = term.child != child || self_needed;
        if (!needed) continue;
        const VdpNode* term_child = vdp_->Find(term.child);
        if (term_child->is_leaf) continue;  // leaf states are never read
        auto attrs = term.NeededAttrs();
        if (vap_->RepoCovers(term.child, attrs)) continue;
        TempRequest req;
        req.node = term.child;
        req.attrs = attrs;
        req.cond = term.SelectOrTrue();
        requests.push_back(std::move(req));
      }
    }
  }
  // Dedup: a child read by several affected parents (or several terms with
  // the same select) produces identical requests; dropping them here keeps
  // Vap::Plan from OR-merging a condition with itself and re-expanding the
  // same subtree per duplicate.
  std::set<std::string> seen;
  std::vector<TempRequest> deduped;
  deduped.reserve(requests.size());
  for (auto& req : requests) {
    if (seen.insert(req.ToString()).second) deduped.push_back(std::move(req));
  }
  return deduped;
}

namespace {

/// One node's worth of rule firings inside a wave: the firing thread fills
/// `contributions` (one slot per parent, in Parents() order); the
/// coordinator merges them afterwards, on its own thread, in serial order.
struct NodeFiring {
  std::string node;
  const Delta* delta = nullptr;  ///< stable: lives in leaf_deltas or pending
  std::vector<std::string> parent_names;
  std::vector<std::optional<Result<Delta>>> contributions;
};

/// Fires every NodeFiring on the pool (workers only read committed
/// store/temp state), then merges the contributions into \p pending on the
/// calling thread, in exactly the order the serial kernel would have:
/// firings in the given order, parents in Parents() order. Errors surface
/// in serial order too, so a failing schedule reports the same node first.
Status RunFiringWave(const Vdp* vdp, ThreadPool* pool,
                     std::vector<NodeFiring>* firings,
                     const NodeStateFn& states, const IndexProbeFn& probes,
                     std::map<std::string, Delta>* pending, IupStats* stats) {
  std::vector<std::function<void()>> tasks;
  tasks.reserve(firings->size());
  for (auto& f : *firings) {
    tasks.push_back([vdp, &f, &states, &probes] {
      for (size_t p = 0; p < f.parent_names.size(); ++p) {
        const VdpNode* parent = vdp->Find(f.parent_names[p]);
        f.contributions[p].emplace(
            FireEdgeRules(*parent, f.node, *f.delta, states, probes));
      }
    });
  }
  pool->RunAll(tasks);
  for (auto& f : *firings) {
    for (size_t p = 0; p < f.parent_names.size(); ++p) {
      SQ_ASSIGN_OR_RETURN(Delta contribution, std::move(*f.contributions[p]));
      ++stats->rules_fired;
      stats->atoms_propagated += contribution.AtomCount();
      const VdpNode* parent = vdp->Find(f.parent_names[p]);
      auto [it, inserted] =
          pending->try_emplace(f.parent_names[p], Delta(parent->schema));
      (void)inserted;
      SQ_RETURN_IF_ERROR(it->second.SmashInPlace(contribution));
    }
  }
  return Status::OK();
}

}  // namespace

std::map<std::string, int> Iup::NodeLevels() const {
  std::map<std::string, int> levels;
  for (const auto& name : vdp_->TopoOrder()) {
    const VdpNode* node = vdp_->Find(name);
    if (node->is_leaf) {
      levels[name] = 0;
      continue;
    }
    int level = 0;
    for (const auto& child : node->def->Children()) {
      level = std::max(level, levels[child]);
    }
    levels[name] = level + 1;
  }
  return levels;
}

Result<IupStats> Iup::RunKernel(
    const std::map<std::string, Delta>& leaf_deltas, TempStore* temps) {
  NodeStateFn states =
      [this, temps](const std::string& node,
                    const std::vector<std::string>& attrs)
      -> Result<std::shared_ptr<const Relation>> {
    if (vap_->RepoCovers(node, attrs)) {
      SQ_ASSIGN_OR_RETURN(const Relation* repo, store_->Repo(node));
      // Non-owning alias; the store outlives the kernel run.
      return std::shared_ptr<const Relation>(std::shared_ptr<void>(), repo);
    }
    if (temps != nullptr && temps->Covers(node, attrs)) {
      return std::shared_ptr<const Relation>(std::shared_ptr<void>(),
                                             &temps->Find(node)->data);
    }
    return Status::Internal(
        "IUP kernel: no repository or temporary for node " + node +
        " covering [" + Join(attrs, ",") + "]");
  };

  // Serve the store's persistent indexes to the rule-firing machinery. Only
  // repository-backed state may be probed through an index (temps have no
  // persistent indexes), and FireSpj itself refuses indexed access to
  // new-state self-join occurrences, where the repository is stale.
  IndexProbeFn probes;
  if (store_->indexes_enabled()) {
    probes = [this](const std::string& node,
                    const std::vector<std::string>& attrs) -> IndexedState {
      IndexedState out;
      const HashIndex* index = store_->indexes().Find(node, attrs);
      if (index == nullptr) return out;
      auto repo = store_->Repo(node);
      if (!repo.ok()) return out;
      out.repo = *repo;
      out.index = index;
      return out;
    };
  }

  if (pool_ != nullptr && pool_->workers() > 0) {
    return RunKernelParallel(leaf_deltas, temps, states, probes);
  }
  return RunKernelSerial(leaf_deltas, temps, states, probes);
}

Result<IupStats> Iup::RunKernelSerial(
    const std::map<std::string, Delta>& leaf_deltas, TempStore* temps,
    const NodeStateFn& states, const IndexProbeFn& probes) {
  IupStats stats;

  // Pending deltas (the ΔR repositories of §6.4).
  std::map<std::string, Delta> pending;

  // Initialization (step 1): fire all rules out of the changed leaves.
  for (const auto& [leaf, delta] : leaf_deltas) {
    if (delta.Empty()) continue;
    stats.atoms_in += delta.AtomCount();
    SQ_ASSIGN_OR_RETURN(const VdpNode* leaf_node, vdp_->Get(leaf));
    if (!leaf_node->is_leaf) {
      return Status::InvalidArgument("leaf delta for non-leaf node " + leaf);
    }
    for (const auto& parent_name : vdp_->Parents(leaf)) {
      SQ_ASSIGN_OR_RETURN(const VdpNode* parent, vdp_->Get(parent_name));
      SQ_ASSIGN_OR_RETURN(Delta contribution,
                          FireEdgeRules(*parent, leaf, delta, states, probes));
      ++stats.rules_fired;
      stats.atoms_propagated += contribution.AtomCount();
      auto [it, inserted] =
          pending.try_emplace(parent_name, Delta(parent->schema));
      (void)inserted;
      SQ_RETURN_IF_ERROR(it->second.SmashInPlace(contribution));
    }
  }

  // Upward traversal (step 2): process non-leaf nodes children-first.
  for (const auto& name : vdp_->TopoOrder()) {
    const VdpNode* node = vdp_->Find(name);
    if (node->is_leaf) continue;
    auto pit = pending.find(name);
    if (pit == pending.end() || pit->second.Empty()) continue;
    const Delta& delta = pit->second;

    // Fire all rules out of this node before applying its delta.
    for (const auto& parent_name : vdp_->Parents(name)) {
      const VdpNode* parent = vdp_->Find(parent_name);
      SQ_ASSIGN_OR_RETURN(Delta contribution,
                          FireEdgeRules(*parent, name, delta, states, probes));
      ++stats.rules_fired;
      stats.atoms_propagated += contribution.AtomCount();
      auto [it, inserted] =
          pending.try_emplace(parent_name, Delta(parent->schema));
      (void)inserted;
      SQ_RETURN_IF_ERROR(it->second.SmashInPlace(contribution));
    }

    // Process the node: apply the delta to repository and temporary.
    if (store_->HasRepo(name)) {
      SQ_RETURN_IF_ERROR(store_->ApplyNodeDelta(name, delta));
    }
    if (temps != nullptr) {
      SQ_RETURN_IF_ERROR(temps->ApplyNodeDelta(name, delta));
    }
    ++stats.nodes_processed;
    pending.erase(pit);  // ΔR := ∅
  }
  return stats;
}

Result<IupStats> Iup::RunKernelParallel(
    const std::map<std::string, Delta>& leaf_deltas, TempStore* temps,
    const NodeStateFn& states, const IndexProbeFn& probes) {
  IupStats stats;
  std::map<std::string, Delta> pending;

  // Initialization (step 1): leaf firings read only committed state — no
  // repository is applied during step 1 — so every changed leaf fires
  // concurrently regardless of shared parents; the merge below reproduces
  // the serial SmashInPlace order (leaf map order × Parents() order).
  std::vector<NodeFiring> leaf_firings;
  for (const auto& [leaf, delta] : leaf_deltas) {
    if (delta.Empty()) continue;
    stats.atoms_in += delta.AtomCount();
    SQ_ASSIGN_OR_RETURN(const VdpNode* leaf_node, vdp_->Get(leaf));
    if (!leaf_node->is_leaf) {
      return Status::InvalidArgument("leaf delta for non-leaf node " + leaf);
    }
    NodeFiring f;
    f.node = leaf;
    f.delta = &delta;
    f.parent_names = vdp_->Parents(leaf);
    f.contributions.resize(f.parent_names.size());
    leaf_firings.push_back(std::move(f));
  }
  SQ_RETURN_IF_ERROR(RunFiringWave(vdp_, pool_, &leaf_firings, states, probes,
                                   &pending, &stats));

  // Upward traversal (step 2), level by level. Contributions only flow to
  // strict ancestors (higher levels), so when a level starts, the pending
  // deltas of its nodes are final — identical to what the serial kernel
  // would see on reaching each node in topo order. Within a level, a wave
  // is a maximal RUN (no skipping: reordering would reorder sibling reads)
  // of ready nodes whose parent sets are pairwise disjoint: wave members
  // never read each other's repositories (a firing reads exactly
  // children(parents(node)), and a shared parent is the only way a wave
  // peer can be in that set), so firing them against the pre-wave state
  // equals the serial fire-then-apply interleaving.
  const auto levels = NodeLevels();
  std::map<int, std::vector<std::string>> by_level;
  for (const auto& name : vdp_->TopoOrder()) {
    if (vdp_->Find(name)->is_leaf) continue;
    by_level[levels.at(name)].push_back(name);
  }
  for (const auto& [level, names] : by_level) {
    (void)level;
    std::vector<std::string> ready;
    for (const auto& name : names) {
      auto pit = pending.find(name);
      if (pit != pending.end() && !pit->second.Empty()) ready.push_back(name);
    }
    size_t i = 0;
    while (i < ready.size()) {
      // Extend the wave while the next ready node conflicts with nobody.
      std::set<std::string> wave_parents;
      size_t j = i;
      while (j < ready.size()) {
        const auto parents = vdp_->Parents(ready[j]);
        bool conflict = false;
        for (const auto& p : parents) {
          if (wave_parents.count(p)) {
            conflict = true;
            break;
          }
        }
        if (conflict) break;  // j > i always: the first member never conflicts
        wave_parents.insert(parents.begin(), parents.end());
        ++j;
      }

      // Fire the wave [i, j) concurrently, then merge serially.
      std::vector<NodeFiring> firings;
      firings.reserve(j - i);
      for (size_t k = i; k < j; ++k) {
        NodeFiring f;
        f.node = ready[k];
        f.delta = &pending.find(ready[k])->second;
        f.parent_names = vdp_->Parents(ready[k]);
        f.contributions.resize(f.parent_names.size());
        firings.push_back(std::move(f));
      }
      SQ_RETURN_IF_ERROR(RunFiringWave(vdp_, pool_, &firings, states, probes,
                                       &pending, &stats));

      // Process the wave's nodes: apply deltas in topo order, ΔR := ∅.
      // (Merging touched only pending entries of ANCESTORS — strictly
      // higher levels — so each wave node's delta is still what it fired.)
      for (size_t k = i; k < j; ++k) {
        const std::string& name = ready[k];
        auto pit = pending.find(name);
        const Delta& delta = pit->second;
        if (store_->HasRepo(name)) {
          SQ_RETURN_IF_ERROR(store_->ApplyNodeDelta(name, delta));
        }
        if (temps != nullptr) {
          SQ_RETURN_IF_ERROR(temps->ApplyNodeDelta(name, delta));
        }
        ++stats.nodes_processed;
        pending.erase(pit);
      }
      i = j;
    }
  }
  return stats;
}

Result<IupStats> Iup::ProcessBatch(
    const std::map<std::string, Delta>& leaf_deltas, const Vap::PollFn& poll,
    const Vap::CompensationFn& comp) {
  SQ_ASSIGN_OR_RETURN(std::vector<TempRequest> requests,
                      PrepareTempRequests(leaf_deltas));
  TempStore temps;
  if (!requests.empty()) {
    SQ_ASSIGN_OR_RETURN(temps, vap_->Materialize(requests, poll, comp));
  }
  SQ_ASSIGN_OR_RETURN(IupStats stats, RunKernel(leaf_deltas, &temps));
  stats.polls = temps.polls;
  stats.polled_tuples = temps.polled_tuples;
  stats.temps_built = temps.Count();
  return stats;
}

}  // namespace squirrel
