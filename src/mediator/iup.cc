#include "mediator/iup.h"

#include <algorithm>
#include <set>

#include "common/strings.h"
#include "delta/delta_algebra.h"
#include "vdp/rules.h"

namespace squirrel {

void IupStats::Merge(const IupStats& other) {
  rules_fired += other.rules_fired;
  atoms_in += other.atoms_in;
  atoms_propagated += other.atoms_propagated;
  nodes_processed += other.nodes_processed;
  polls += other.polls;
  polled_tuples += other.polled_tuples;
  temps_built += other.temps_built;
  poll_retries += other.poll_retries;
}

namespace {

/// How many terms of \p def reference \p child.
size_t PositionsOf(const NodeDef& def, const std::string& child) {
  size_t n = 0;
  for (const auto& t : def.terms()) {
    if (t.child == child) ++n;
  }
  return n;
}

}  // namespace

Result<std::vector<TempRequest>> Iup::PrepareTempRequests(
    const std::map<std::string, Delta>& leaf_deltas) const {
  // Affected set: exact at leaf-parents (filter the actual deltas),
  // conservative above.
  std::set<std::string> affected;
  for (const auto& [leaf, delta] : leaf_deltas) {
    if (delta.Empty()) continue;
    for (const auto& parent_name : vdp_->Parents(leaf)) {
      SQ_ASSIGN_OR_RETURN(const VdpNode* parent, vdp_->Get(parent_name));
      for (const auto& term : parent->def->terms()) {
        if (term.child != leaf) continue;
        SQ_ASSIGN_OR_RETURN(
            Delta filtered,
            FilterDeltaToLeafParent(delta, term.SelectOrTrue(),
                                    term.project));
        if (!filtered.Empty()) {
          affected.insert(parent_name);
          break;
        }
      }
    }
  }
  for (const auto& name : vdp_->TopoOrder()) {
    const VdpNode* node = vdp_->Find(name);
    if (node->is_leaf || affected.count(name)) continue;
    for (const auto& child : node->def->Children()) {
      if (affected.count(child)) {
        affected.insert(name);
        break;
      }
    }
  }

  // For every affected parent p and affected child x, the kernel will fire
  // rules from x into p; those firings read the states of:
  //  - every term over a different child,
  //  - terms over x itself when p is a difference node (presence deltas) or
  //    x occurs at several positions (self-joins).
  std::vector<TempRequest> requests;
  for (const auto& parent_name : affected) {
    const VdpNode* parent = vdp_->Find(parent_name);
    if (parent->is_leaf) continue;
    const NodeDef& def = *parent->def;
    for (const auto& child : def.Children()) {
      bool child_affected =
          affected.count(child) > 0 || leaf_deltas.count(child) > 0;
      if (!child_affected) continue;
      bool self_needed = def.kind() == NodeDef::Kind::kDiff ||
                         PositionsOf(def, child) > 1;
      for (const auto& term : def.terms()) {
        bool needed = term.child != child || self_needed;
        if (!needed) continue;
        const VdpNode* term_child = vdp_->Find(term.child);
        if (term_child->is_leaf) continue;  // leaf states are never read
        auto attrs = term.NeededAttrs();
        if (vap_->RepoCovers(term.child, attrs)) continue;
        TempRequest req;
        req.node = term.child;
        req.attrs = attrs;
        req.cond = term.SelectOrTrue();
        requests.push_back(std::move(req));
      }
    }
  }
  // Dedup: a child read by several affected parents (or several terms with
  // the same select) produces identical requests; dropping them here keeps
  // Vap::Plan from OR-merging a condition with itself and re-expanding the
  // same subtree per duplicate.
  std::set<std::string> seen;
  std::vector<TempRequest> deduped;
  deduped.reserve(requests.size());
  for (auto& req : requests) {
    if (seen.insert(req.ToString()).second) deduped.push_back(std::move(req));
  }
  return deduped;
}

Result<IupStats> Iup::RunKernel(
    const std::map<std::string, Delta>& leaf_deltas, TempStore* temps) {
  IupStats stats;

  NodeStateFn states =
      [this, temps](const std::string& node,
                    const std::vector<std::string>& attrs)
      -> Result<std::shared_ptr<const Relation>> {
    if (vap_->RepoCovers(node, attrs)) {
      SQ_ASSIGN_OR_RETURN(const Relation* repo, store_->Repo(node));
      // Non-owning alias; the store outlives the kernel run.
      return std::shared_ptr<const Relation>(std::shared_ptr<void>(), repo);
    }
    if (temps != nullptr && temps->Covers(node, attrs)) {
      return std::shared_ptr<const Relation>(std::shared_ptr<void>(),
                                             &temps->Find(node)->data);
    }
    return Status::Internal(
        "IUP kernel: no repository or temporary for node " + node +
        " covering [" + Join(attrs, ",") + "]");
  };

  // Serve the store's persistent indexes to the rule-firing machinery. Only
  // repository-backed state may be probed through an index (temps have no
  // persistent indexes), and FireSpj itself refuses indexed access to
  // new-state self-join occurrences, where the repository is stale.
  IndexProbeFn probes;
  if (store_->indexes_enabled()) {
    probes = [this](const std::string& node,
                    const std::vector<std::string>& attrs) -> IndexedState {
      IndexedState out;
      const HashIndex* index = store_->indexes().Find(node, attrs);
      if (index == nullptr) return out;
      auto repo = store_->Repo(node);
      if (!repo.ok()) return out;
      out.repo = *repo;
      out.index = index;
      return out;
    };
  }

  // Pending deltas (the ΔR repositories of §6.4).
  std::map<std::string, Delta> pending;

  // Initialization (step 1): fire all rules out of the changed leaves.
  for (const auto& [leaf, delta] : leaf_deltas) {
    if (delta.Empty()) continue;
    stats.atoms_in += delta.AtomCount();
    SQ_ASSIGN_OR_RETURN(const VdpNode* leaf_node, vdp_->Get(leaf));
    if (!leaf_node->is_leaf) {
      return Status::InvalidArgument("leaf delta for non-leaf node " + leaf);
    }
    for (const auto& parent_name : vdp_->Parents(leaf)) {
      SQ_ASSIGN_OR_RETURN(const VdpNode* parent, vdp_->Get(parent_name));
      SQ_ASSIGN_OR_RETURN(Delta contribution,
                          FireEdgeRules(*parent, leaf, delta, states, probes));
      ++stats.rules_fired;
      stats.atoms_propagated += contribution.AtomCount();
      auto [it, inserted] =
          pending.try_emplace(parent_name, Delta(parent->schema));
      (void)inserted;
      SQ_RETURN_IF_ERROR(it->second.SmashInPlace(contribution));
    }
  }

  // Upward traversal (step 2): process non-leaf nodes children-first.
  for (const auto& name : vdp_->TopoOrder()) {
    const VdpNode* node = vdp_->Find(name);
    if (node->is_leaf) continue;
    auto pit = pending.find(name);
    if (pit == pending.end() || pit->second.Empty()) continue;
    const Delta& delta = pit->second;

    // Fire all rules out of this node before applying its delta.
    for (const auto& parent_name : vdp_->Parents(name)) {
      const VdpNode* parent = vdp_->Find(parent_name);
      SQ_ASSIGN_OR_RETURN(Delta contribution,
                          FireEdgeRules(*parent, name, delta, states, probes));
      ++stats.rules_fired;
      stats.atoms_propagated += contribution.AtomCount();
      auto [it, inserted] =
          pending.try_emplace(parent_name, Delta(parent->schema));
      (void)inserted;
      SQ_RETURN_IF_ERROR(it->second.SmashInPlace(contribution));
    }

    // Process the node: apply the delta to repository and temporary.
    if (store_->HasRepo(name)) {
      SQ_RETURN_IF_ERROR(store_->ApplyNodeDelta(name, delta));
    }
    if (temps != nullptr) {
      SQ_RETURN_IF_ERROR(temps->ApplyNodeDelta(name, delta));
    }
    ++stats.nodes_processed;
    pending.erase(pit);  // ΔR := ∅
  }
  return stats;
}

Result<IupStats> Iup::ProcessBatch(
    const std::map<std::string, Delta>& leaf_deltas, const Vap::PollFn& poll,
    const Vap::CompensationFn& comp) {
  SQ_ASSIGN_OR_RETURN(std::vector<TempRequest> requests,
                      PrepareTempRequests(leaf_deltas));
  TempStore temps;
  if (!requests.empty()) {
    SQ_ASSIGN_OR_RETURN(temps, vap_->Materialize(requests, poll, comp));
  }
  SQ_ASSIGN_OR_RETURN(IupStats stats, RunKernel(leaf_deltas, &temps));
  stats.polls = temps.polls;
  stats.polled_tuples = temps.polled_tuples;
  stats.temps_built = temps.Count();
  return stats;
}

}  // namespace squirrel
