#include "mediator/admission.h"

namespace squirrel {

Status AdmissionGate::Admit(QueryClass cls, bool soft_breached) {
  size_t i = static_cast<size_t>(cls);
  if (soft_breached && cls == QueryClass::kBatch) {
    ++rejected_;
    ++shed_soft_budget_;
    return Status::Overloaded(
        "batch admission shed: memory budget soft limit breached; retry after " +
        std::to_string(opts_.retry_after_hint));
  }
  uint32_t limit = opts_.max_active[i];
  if (limit != 0 && inflight_[i] >= limit + opts_.max_queued[i]) {
    ++rejected_;
    return Status::Overloaded(
        std::string("admission limit for ") + QueryClassName(cls) +
        " reached (" + std::to_string(inflight_[i]) + " in flight); retry after " +
        std::to_string(opts_.retry_after_hint));
  }
  ++inflight_[i];
  ++admitted_;
  return Status::OK();
}

void AdmissionGate::Release(QueryClass cls) {
  size_t i = static_cast<size_t>(cls);
  if (inflight_[i] > 0) --inflight_[i];
}

std::string AdmissionGate::ToString() const {
  std::string out = "admission: inflight=";
  for (size_t i = 0; i < kNumQueryClasses; ++i) {
    if (i != 0) out += "/";
    out += std::to_string(inflight_[i]);
  }
  out += " admitted=" + std::to_string(admitted_);
  out += " rejected=" + std::to_string(rejected_);
  out += " shed=" + std::to_string(shed_soft_budget_);
  return out;
}

}  // namespace squirrel
