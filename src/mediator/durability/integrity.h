// Storage-integrity primitives for the durability subsystem.
//
// Every WAL record and checkpoint image is wrapped in a checksummed frame
// before it reaches a LogDevice, and every payload that crosses the resync
// boundary (SnapshotAnswer, UpdateMessage) carries a CRC32C of its canonical
// encoding. The frame lets Recover distinguish three situations a raw byte
// blob cannot:
//
//   - a record that verifies (CRC over length + log epoch + payload);
//   - a damaged ORDINARY record (tail damage is repairable, interior damage
//     is not);
//   - a damaged CHECKPOINT image, which is recoverable by falling back to
//     the previous checkpoint generation still retained in the log.
//
// The two frame classes use magic words that are bitwise complements of each
// other (maximal Hamming distance), so no small number of bit flips can turn
// one class into the other — a corrupt checkpoint is still recognizably a
// checkpoint, which is what makes generation fallback sound.
//
// Frame layout (little-endian, matching BinaryWriter):
//
//   [u32 magic][u32 crc32c][u32 payload_len][u64 log_epoch][payload bytes]
//
// The CRC covers payload_len, log_epoch, and the payload — everything after
// the crc field — so a flip anywhere in the frame body or a truncation is
// detected. The log epoch increments at every recovery (a new log
// incarnation); epochs must be non-decreasing along the log, so a stale
// acked-then-lost tail spliced with newer records is detected as corruption
// rather than silently replayed.

#ifndef SQUIRREL_MEDIATOR_DURABILITY_INTEGRITY_H_
#define SQUIRREL_MEDIATOR_DURABILITY_INTEGRITY_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/status.h"

namespace squirrel {

/// CRC32C (Castagnoli polynomial 0x1EDC6F41, reflected) over \p n bytes,
/// seeded with \p seed to allow incremental computation. Software
/// table-driven implementation — no hardware dependency.
uint32_t Crc32c(const void* data, size_t n, uint32_t seed = 0);

/// Convenience overload over a string's bytes.
uint32_t Crc32c(const std::string& bytes);

/// Which kind of payload a frame carries.
enum class FrameClass : uint8_t {
  kRecord = 0,      ///< ordinary WAL record (enqueue/txn/resync/shed)
  kCheckpoint = 1,  ///< full HardState checkpoint image
  kUnknown = 2,     ///< magic unreadable (not a frame / magic itself flipped)
};

/// Outcome of verifying one frame.
struct FrameInfo {
  bool valid = false;              ///< CRC + structure verified
  FrameClass frame_class = FrameClass::kUnknown;
  uint64_t log_epoch = 0;          ///< only meaningful when valid
  std::string payload;             ///< only filled when valid
};

/// Wraps \p payload in a checksummed frame of class \p cls stamped with
/// \p log_epoch.
std::string FrameRecord(FrameClass cls, uint64_t log_epoch,
                        const std::string& payload);

/// Classifies \p bytes by magic word alone — works even when the body is
/// damaged. Returns kUnknown when the buffer is too short or the magic
/// matches neither class.
FrameClass PeekFrameClass(const std::string& bytes);

/// Verifies \p bytes as a frame. Never fails hard: a damaged frame comes
/// back with valid = false and whatever class the magic still identifies.
FrameInfo UnframeRecord(const std::string& bytes);

}  // namespace squirrel

#endif  // SQUIRREL_MEDIATOR_DURABILITY_INTEGRITY_H_
