// Deterministic binary serialization of mediator hard state.
//
// Everything the recovery path reads back — repository relations, queued
// update messages, per-source sequence/reflect/quarantine state — is encoded
// with this codec. Determinism is a hard requirement, not a nicety: the
// crash–restart simulation asserts that checkpoint → restore → re-checkpoint
// is byte-identical, which only holds because every container is written in
// sorted order (Relation::SortedRows, Delta::SortedAtoms, std::map) and
// every scalar has exactly one encoding (fixed-width little-endian, doubles
// as IEEE-754 bit patterns).

#ifndef SQUIRREL_MEDIATOR_DURABILITY_SERIALIZE_H_
#define SQUIRREL_MEDIATOR_DURABILITY_SERIALIZE_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "delta/delta.h"
#include "relational/relation.h"
#include "relational/schema.h"
#include "relational/tuple.h"
#include "relational/value.h"
#include "sim/clock.h"
#include "source/messages.h"

namespace squirrel {

/// \brief Append-only byte sink for the durability codec.
class BinaryWriter {
 public:
  void PutU8(uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }
  void PutDouble(double v);
  void PutTime(Time t) { PutDouble(t); }
  /// Length-prefixed byte string.
  void PutString(const std::string& s);

  const std::string& bytes() const { return out_; }
  std::string Take() { return std::move(out_); }

 private:
  std::string out_;
};

/// \brief Bounds-checked cursor over serialized bytes.
///
/// Every Get reports corruption (truncated or malformed input) as a Status
/// instead of reading past the end, so a torn log tail is a recoverable
/// condition rather than undefined behavior.
class BinaryReader {
 public:
  explicit BinaryReader(const std::string& bytes) : bytes_(bytes) {}

  Result<uint8_t> GetU8();
  Result<uint32_t> GetU32();
  Result<uint64_t> GetU64();
  Result<int64_t> GetI64();
  Result<double> GetDouble();
  Result<Time> GetTime() { return GetDouble(); }
  Result<std::string> GetString();

  /// True iff the cursor consumed every byte.
  bool AtEnd() const { return pos_ == bytes_.size(); }
  size_t remaining() const { return bytes_.size() - pos_; }

 private:
  const std::string& bytes_;
  size_t pos_ = 0;
};

// ---- composite encoders/decoders -----------------------------------------
// Encoders never fail; decoders validate structure and fail on corruption.

void EncodeValue(BinaryWriter* w, const Value& v);
Result<Value> DecodeValue(BinaryReader* r);

void EncodeTuple(BinaryWriter* w, const Tuple& t);
Result<Tuple> DecodeTuple(BinaryReader* r);

void EncodeSchema(BinaryWriter* w, const Schema& s);
Result<Schema> DecodeSchema(BinaryReader* r);

void EncodeRelation(BinaryWriter* w, const Relation& rel);
Result<Relation> DecodeRelation(BinaryReader* r);

void EncodeDelta(BinaryWriter* w, const Delta& d);
Result<Delta> DecodeDelta(BinaryReader* r);

void EncodeMultiDelta(BinaryWriter* w, const MultiDelta& md);
Result<MultiDelta> DecodeMultiDelta(BinaryReader* r);

void EncodeUpdateMessage(BinaryWriter* w, const UpdateMessage& msg);
Result<UpdateMessage> DecodeUpdateMessage(BinaryReader* r);

// Poll wire messages, including the overload-protection fields (deadline,
// query class, retry_after). Conditions travel as predicate text (empty =
// null) and are re-parsed on decode; the parser round-trips Expr::ToString.
void EncodePollRequest(BinaryWriter* w, const PollRequest& req);
Result<PollRequest> DecodePollRequest(BinaryReader* r);

void EncodePollAnswer(BinaryWriter* w, const PollAnswer& ans);
Result<PollAnswer> DecodePollAnswer(BinaryReader* r);

// ---- wire-integrity checksums (see integrity.h) ---------------------------
// CRC32C over the message's canonical encoding, EXCLUDING the checksum field
// itself (the WAL codec above deliberately never persists it: checksums are
// verified at receipt, not replayed). Senders stamp these into the message;
// the mediator verifies any nonzero value and treats a mismatch as payload
// corruption — drop + no dedup-floor advance for updates, re-request for
// snapshots.

uint32_t ChecksumUpdateMessage(const UpdateMessage& msg);
uint32_t ChecksumSnapshotAnswer(const SnapshotAnswer& ans);

}  // namespace squirrel

#endif  // SQUIRREL_MEDIATOR_DURABILITY_SERIALIZE_H_
