// Deterministic disk-fault injection for the durability layer.
//
// FaultyLogDevice decorates any LogDevice with a seeded "lying disk": the
// inner device keeps its LSN numbering (and, for MemLogDevice, its append
// hook driving the crash-point sweeps), while an overlay records how each
// appended record was ACTUALLY persisted:
//
//   - torn append: only a prefix of the record's bytes reached the platter;
//   - bit flip: one seeded bit of the stored record is inverted;
//   - dropped fsync: the append was acknowledged but the record is gone;
//   - ENOSPC: a window of appends fails outright (the honest failure mode —
//     the caller KNOWS the record is not durable).
//
// Mutations apply at append time (the damage exists on "disk" from the
// moment of the lie) and surface at ReadAll — exactly when recovery reads
// the log back. All decisions are drawn from one seeded Rng in append
// order, so a (seed, workload) pair replays byte-identically.

#ifndef SQUIRREL_MEDIATOR_DURABILITY_FAULTY_LOG_DEVICE_H_
#define SQUIRREL_MEDIATOR_DURABILITY_FAULTY_LOG_DEVICE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "mediator/durability/log_device.h"

namespace squirrel {

/// Knobs of one storage-fault schedule. Defaults inject nothing.
struct StorageFaultPlan {
  /// Probability an append persists only a prefix of its bytes.
  double torn_append_prob = 0;
  /// Probability one stored bit of an appended record flips.
  double bitflip_prob = 0;
  /// Probability an acknowledged append never reaches the platter.
  double fsync_drop_prob = 0;
  /// Probability an ENOSPC window opens at an append (that append and the
  /// next enospc_len - 1 fail with kUnavailable).
  double enospc_prob = 0;
  int enospc_len = 1;
  /// Probability a TruncatePrefix is acknowledged but its rewrite-rename
  /// never becomes durable (the parent directory was not fsynced before the
  /// crash). The read-back then sees the PRE-truncation file, and every
  /// append made after the lie went to the orphaned new inode — lost. A
  /// later non-faulted TruncatePrefix renames (and dir-fsyncs) again, which
  /// closes the window and makes the latest contents durable.
  double lost_truncation_prob = 0;
  /// Restrict torn/flip/drop corruption to checkpoint-class frames (their
  /// magic is peekable), modeling damage to the checkpoint slots.
  bool target_checkpoints = false;
  /// Total fault events injected at most (an ENOSPC window counts once).
  int max_faults = 1;
  /// Never fault the first N appends (keeps the initial checkpoint intact;
  /// a log whose only generation is damaged is trivially unrecoverable).
  uint64_t skip_appends = 1;
};

/// \brief Seeded lying-disk decorator over any LogDevice.
class FaultyLogDevice : public LogDevice {
 public:
  struct Counters {
    uint64_t torn = 0;             ///< torn (prefix-only) appends
    uint64_t bitflips = 0;         ///< single-bit corruptions
    uint64_t fsync_drops = 0;      ///< acked-then-lost records
    uint64_t enospc_failures = 0;  ///< appends failed with no space
    uint64_t lost_truncations = 0;  ///< acked truncations whose rename rolled back
  };

  FaultyLogDevice(LogDevice* inner, StorageFaultPlan plan, uint64_t seed)
      : inner_(inner),
        plan_(plan),
        rng_(seed * 0xD1B54A32D192ED03ULL + 7) {}

  Result<uint64_t> Append(std::string bytes) override;
  Status TruncatePrefix(uint64_t new_begin) override;
  Result<std::vector<LogRecord>> ReadAll() const override;
  uint64_t NextLsn() const override { return inner_->NextLsn(); }
  uint64_t SizeBytes() const override { return inner_->SizeBytes(); }

  const Counters& counters() const { return counters_; }
  /// Fault events charged against the plan's budget (an ENOSPC window
  /// counts once, however many appends it fails).
  int faults_injected() const { return faults_injected_; }

 private:
  struct Mutation {
    enum Kind { kTorn, kFlip, kDrop } kind = kTorn;
    size_t keep_bytes = 0;  ///< kTorn: stored prefix length
    size_t bit_index = 0;   ///< kFlip: flipped bit position
  };

  /// The inner read-back with the per-LSN mutation overlay applied (what a
  /// recovery reads when no lost-rename window is armed).
  Result<std::vector<LogRecord>> ReadAllMutated() const;

  LogDevice* inner_;
  StorageFaultPlan plan_;
  Rng rng_;
  Counters counters_;
  /// How each damaged LSN was actually persisted.
  std::map<uint64_t, Mutation> overlay_;
  uint64_t appends_seen_ = 0;
  int faults_injected_ = 0;
  int enospc_remaining_ = 0;
  /// Armed lost-rename window: what the "disk" really holds — the mutated
  /// pre-truncation read-back captured when the lying truncation was acked.
  /// While armed, appends land on the orphaned inode and ReadAll returns
  /// this snapshot instead. Disarmed by the next non-faulted truncation.
  bool lost_rename_armed_ = false;
  std::vector<LogRecord> lost_rename_snapshot_;
};

}  // namespace squirrel

#endif  // SQUIRREL_MEDIATOR_DURABILITY_FAULTY_LOG_DEVICE_H_
