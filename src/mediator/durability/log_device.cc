#include "mediator/durability/log_device.h"

#include <cstdio>
#include <memory>

#include "mediator/durability/serialize.h"

namespace squirrel {

// ---- MemLogDevice ---------------------------------------------------------

Result<uint64_t> MemLogDevice::Append(std::string bytes) {
  uint64_t lsn = next_lsn_++;
  size_bytes_ += bytes.size();
  records_.push_back({lsn, std::move(bytes)});
  if (append_hook_) append_hook_(lsn);
  return lsn;
}

Status MemLogDevice::TruncatePrefix(uint64_t new_begin) {
  size_t keep_from = 0;
  while (keep_from < records_.size() && records_[keep_from].lsn < new_begin) {
    size_bytes_ -= records_[keep_from].bytes.size();
    ++keep_from;
  }
  records_.erase(records_.begin(),
                 records_.begin() + static_cast<ptrdiff_t>(keep_from));
  return Status::OK();
}

Result<std::vector<LogRecord>> MemLogDevice::ReadAll() const {
  return records_;
}

// ---- FileLogDevice --------------------------------------------------------

Result<std::unique_ptr<FileLogDevice>> FileLogDevice::Open(
    const std::string& path) {
  auto dev = std::unique_ptr<FileLogDevice>(new FileLogDevice(path));
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return dev;  // fresh log
  std::string contents;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) contents.append(buf, n);
  std::fclose(f);
  BinaryReader r(contents);
  while (!r.AtEnd()) {
    // A record that fails to frame is a torn tail from a crash mid-write:
    // stop there; everything before it was confirmed durable.
    auto lsn = r.GetU64();
    if (!lsn.ok()) break;
    auto bytes = r.GetString();
    if (!bytes.ok()) break;
    dev->size_bytes_ += bytes.value().size();
    dev->next_lsn_ = lsn.value() + 1;
    dev->records_.push_back({lsn.value(), std::move(bytes).value()});
  }
  if (!r.AtEnd()) {
    // Discard the torn bytes on disk too — otherwise the next Append would
    // land after them and be unreadable to a future Open.
    SQ_RETURN_IF_ERROR(dev->Rewrite(dev->records_));
  }
  return dev;
}

Result<uint64_t> FileLogDevice::Append(std::string bytes) {
  std::FILE* f = std::fopen(path_.c_str(), "ab");
  if (f == nullptr) {
    return Status::Internal("cannot open log file for append: " + path_);
  }
  uint64_t lsn = next_lsn_;
  BinaryWriter w;
  w.PutU64(lsn);
  w.PutString(bytes);
  size_t written = std::fwrite(w.bytes().data(), 1, w.bytes().size(), f);
  std::fflush(f);
  std::fclose(f);
  if (written != w.bytes().size()) {
    return Status::Internal("short write to log file: " + path_);
  }
  ++next_lsn_;
  size_bytes_ += bytes.size();
  records_.push_back({lsn, std::move(bytes)});
  return lsn;
}

Status FileLogDevice::TruncatePrefix(uint64_t new_begin) {
  std::vector<LogRecord> keep;
  uint64_t kept_bytes = 0;
  for (auto& rec : records_) {
    if (rec.lsn >= new_begin) {
      kept_bytes += rec.bytes.size();
      keep.push_back(std::move(rec));
    }
  }
  SQ_RETURN_IF_ERROR(Rewrite(keep));
  records_ = std::move(keep);
  size_bytes_ = kept_bytes;
  return Status::OK();
}

Status FileLogDevice::Rewrite(const std::vector<LogRecord>& records) {
  // Write-then-rename so a crash during truncation leaves a parseable log.
  std::string tmp = path_ + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::Internal("cannot open log file for rewrite: " + tmp);
  }
  for (const auto& rec : records) {
    BinaryWriter w;
    w.PutU64(rec.lsn);
    w.PutString(rec.bytes);
    if (std::fwrite(w.bytes().data(), 1, w.bytes().size(), f) !=
        w.bytes().size()) {
      std::fclose(f);
      return Status::Internal("short write rewriting log file: " + tmp);
    }
  }
  std::fflush(f);
  std::fclose(f);
  if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
    return Status::Internal("cannot install rewritten log file: " + path_);
  }
  return Status::OK();
}

Result<std::vector<LogRecord>> FileLogDevice::ReadAll() const {
  return records_;
}

}  // namespace squirrel
