#include "mediator/durability/log_device.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <memory>

#include "mediator/durability/serialize.h"

namespace squirrel {

// ---- MemLogDevice ---------------------------------------------------------

Result<uint64_t> MemLogDevice::Append(std::string bytes) {
  uint64_t lsn = next_lsn_++;
  size_bytes_ += bytes.size();
  records_.push_back({lsn, std::move(bytes)});
  if (append_hook_) append_hook_(lsn);
  return lsn;
}

Status MemLogDevice::TruncatePrefix(uint64_t new_begin) {
  size_t keep_from = 0;
  while (keep_from < records_.size() && records_[keep_from].lsn < new_begin) {
    size_bytes_ -= records_[keep_from].bytes.size();
    ++keep_from;
  }
  records_.erase(records_.begin(),
                 records_.begin() + static_cast<ptrdiff_t>(keep_from));
  return Status::OK();
}

Result<std::vector<LogRecord>> MemLogDevice::ReadAll() const {
  return records_;
}

// ---- FileLogDevice --------------------------------------------------------

namespace {

// Version-stamped file header: magic + format version + reserved padding.
// Headerless files written by earlier builds still open (legacy fallback);
// the header is installed on the next rewrite.
constexpr char kFileMagic[5] = {'S', 'Q', 'W', 'A', 'L'};
constexpr uint8_t kFileVersion = 1;
constexpr size_t kFileHeaderSize = 8;

std::string FileHeader() {
  std::string h(kFileMagic, sizeof(kFileMagic));
  h.push_back(static_cast<char>(kFileVersion));
  h.append(2, '\0');  // reserved
  return h;
}

bool HasFileMagic(const std::string& contents) {
  return contents.size() >= sizeof(kFileMagic) &&
         std::memcmp(contents.data(), kFileMagic, sizeof(kFileMagic)) == 0;
}

Status Errno(const std::string& what, const std::string& path) {
  return Status::Internal(what + " " + path + ": " + std::strerror(errno));
}

Status WriteFully(int fd, const std::string& bytes, const std::string& path) {
  size_t off = 0;
  while (off < bytes.size()) {
    ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("write to log file", path);
    }
    off += static_cast<size_t>(n);
  }
  return Status::OK();
}

/// fsync of the directory holding \p path, making a just-renamed entry
/// durable. Without it a crash can roll the rename back and resurrect the
/// pre-truncation file.
Status SyncParentDir(const std::string& path) {
  size_t slash = path.find_last_of('/');
  std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  if (dir.empty()) dir = "/";
  int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd < 0) return Errno("open parent directory of", path);
  if (::fsync(fd) != 0) {
    Status st = Errno("fsync parent directory of", path);
    ::close(fd);
    return st;
  }
  if (::close(fd) != 0) return Errno("close parent directory of", path);
  return Status::OK();
}

}  // namespace

Result<std::unique_ptr<FileLogDevice>> FileLogDevice::Open(
    const std::string& path) {
  auto dev = std::unique_ptr<FileLogDevice>(new FileLogDevice(path));
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return dev;  // fresh log
  // The file already exists on disk, so its directory entry survived at
  // least one boot — no creation fsync of the parent dir is owed.
  dev->dirent_durable_ = true;
  std::string contents;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) contents.append(buf, n);
  std::fclose(f);
  size_t body_start = 0;
  if (HasFileMagic(contents)) {
    if (contents.size() < kFileHeaderSize ||
        static_cast<uint8_t>(contents[sizeof(kFileMagic)]) != kFileVersion) {
      return Status::Corrupted("unsupported log file version in " + path);
    }
    body_start = kFileHeaderSize;
    dev->has_header_ = true;
  }
  // Strip the header in place: BinaryReader holds a reference, so it must
  // read from a string that outlives it (a substr temporary would dangle).
  if (body_start > 0) contents.erase(0, body_start);
  BinaryReader r(contents);
  while (!r.AtEnd()) {
    // A record that fails to frame is a torn tail from a crash mid-write:
    // stop there; everything before it was confirmed durable.
    auto lsn = r.GetU64();
    if (!lsn.ok()) break;
    auto bytes = r.GetString();
    if (!bytes.ok()) break;
    dev->size_bytes_ += bytes.value().size();
    dev->next_lsn_ = lsn.value() + 1;
    dev->records_.push_back({lsn.value(), std::move(bytes).value()});
  }
  if (!r.AtEnd()) {
    // Discard the torn bytes on disk too — otherwise the next Append would
    // land after them and be unreadable to a future Open.
    SQ_RETURN_IF_ERROR(dev->Rewrite(dev->records_));
  }
  return dev;
}

Result<uint64_t> FileLogDevice::Append(std::string bytes) {
  int fd = ::open(path_.c_str(), O_WRONLY | O_APPEND | O_CREAT, 0644);
  if (fd < 0) return Errno("open log file for append", path_);
  uint64_t lsn = next_lsn_;
  BinaryWriter w;
  w.PutU64(lsn);
  w.PutString(bytes);
  std::string frame;
  if (!has_header_ && records_.empty()) {
    // Brand-new log: stamp the versioned header ahead of the first record.
    // (A legacy headerless log with surviving records keeps its format
    // until the next rewrite installs the header atomically.)
    frame = FileHeader();
    has_header_ = true;
  }
  frame += w.Take();
  Status written = WriteFully(fd, frame, path_);
  if (!written.ok()) {
    ::close(fd);
    return written;
  }
  if (::fsync(fd) != 0) {
    Status st = Errno("fsync log file", path_);
    ::close(fd);
    return st;
  }
  if (::close(fd) != 0) return Errno("close log file", path_);
  if (!dirent_durable_) {
    // First append since the O_CREAT above may have created the file: the
    // record is fsynced but the file's own directory entry is not. A crash
    // here would lose the entire log, so the append is not durable until
    // the parent directory is synced too.
    SQ_RETURN_IF_ERROR(SyncParentDir(path_));
    dirent_durable_ = true;
  }
  ++next_lsn_;
  size_bytes_ += bytes.size();
  records_.push_back({lsn, std::move(bytes)});
  return lsn;
}

Status FileLogDevice::TruncatePrefix(uint64_t new_begin) {
  std::vector<LogRecord> keep;
  uint64_t kept_bytes = 0;
  for (auto& rec : records_) {
    if (rec.lsn >= new_begin) {
      kept_bytes += rec.bytes.size();
      keep.push_back(std::move(rec));
    }
  }
  SQ_RETURN_IF_ERROR(Rewrite(keep));
  records_ = std::move(keep);
  size_bytes_ = kept_bytes;
  return Status::OK();
}

Status FileLogDevice::Rewrite(const std::vector<LogRecord>& records) {
  // Write-then-rename so a crash during truncation leaves a parseable log.
  // Every step is checked and the new contents are fsynced BEFORE the
  // rename, then the parent directory after it — an unchecked fsync/close/
  // rename here could ack a truncation the disk never made durable.
  std::string tmp = path_ + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Errno("open log file for rewrite", tmp);
  std::string contents = FileHeader();
  for (const auto& rec : records) {
    BinaryWriter w;
    w.PutU64(rec.lsn);
    w.PutString(rec.bytes);
    contents += w.Take();
  }
  Status written = WriteFully(fd, contents, tmp);
  if (!written.ok()) {
    ::close(fd);
    return written;
  }
  if (::fsync(fd) != 0) {
    Status st = Errno("fsync rewritten log file", tmp);
    ::close(fd);
    return st;
  }
  if (::close(fd) != 0) return Errno("close rewritten log file", tmp);
  if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
    return Errno("install rewritten log file over", path_);
  }
  has_header_ = true;
  SQ_RETURN_IF_ERROR(SyncParentDir(path_));
  dirent_durable_ = true;
  return Status::OK();
}

Result<std::vector<LogRecord>> FileLogDevice::ReadAll() const {
  return records_;
}

}  // namespace squirrel
