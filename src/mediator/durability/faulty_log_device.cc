#include "mediator/durability/faulty_log_device.h"

#include <utility>

#include "mediator/durability/integrity.h"

namespace squirrel {

Result<uint64_t> FaultyLogDevice::Append(std::string bytes) {
  ++appends_seen_;
  if (enospc_remaining_ > 0) {
    --enospc_remaining_;
    ++counters_.enospc_failures;
    return Status::Unavailable("injected ENOSPC: log device is full");
  }
  bool eligible = appends_seen_ > plan_.skip_appends &&
                  faults_injected_ < plan_.max_faults;
  if (eligible && plan_.enospc_prob > 0 && rng_.Bernoulli(plan_.enospc_prob)) {
    ++faults_injected_;
    enospc_remaining_ = plan_.enospc_len > 0 ? plan_.enospc_len - 1 : 0;
    ++counters_.enospc_failures;
    return Status::Unavailable("injected ENOSPC: log device is full");
  }
  // Corruption (as opposed to ENOSPC) can be restricted to checkpoint-class
  // frames — their magic word is peekable even before the record is stored.
  bool class_ok =
      !plan_.target_checkpoints ||
      PeekFrameClass(bytes) == FrameClass::kCheckpoint;
  bool has_mutation = false;
  Mutation mut;
  if (eligible && class_ok && !bytes.empty()) {
    if (plan_.torn_append_prob > 0 && rng_.Bernoulli(plan_.torn_append_prob)) {
      mut.kind = Mutation::kTorn;
      mut.keep_bytes = static_cast<size_t>(rng_.Uniform(bytes.size()));
      has_mutation = true;
      ++counters_.torn;
    } else if (plan_.bitflip_prob > 0 && rng_.Bernoulli(plan_.bitflip_prob)) {
      mut.kind = Mutation::kFlip;
      mut.bit_index = static_cast<size_t>(rng_.Uniform(bytes.size() * 8));
      has_mutation = true;
      ++counters_.bitflips;
    } else if (plan_.fsync_drop_prob > 0 &&
               rng_.Bernoulli(plan_.fsync_drop_prob)) {
      mut.kind = Mutation::kDrop;
      has_mutation = true;
      ++counters_.fsync_drops;
    }
  }
  // The inner device assigns the LSN and fires its append hook either way —
  // the lie is that the ACK goes out while the stored bytes differ.
  SQ_ASSIGN_OR_RETURN(uint64_t lsn, inner_->Append(std::move(bytes)));
  if (has_mutation) {
    ++faults_injected_;
    overlay_[lsn] = mut;
  }
  return lsn;
}

Status FaultyLogDevice::TruncatePrefix(uint64_t new_begin) {
  bool eligible = faults_injected_ < plan_.max_faults;
  if (eligible && plan_.lost_truncation_prob > 0 &&
      rng_.Bernoulli(plan_.lost_truncation_prob)) {
    // The lying rename: capture what the disk REALLY holds — the mutated
    // pre-truncation read-back — then ack the truncation. Until a later
    // truncation renames again, reads-after-crash see this snapshot and
    // every intervening append is on the orphaned inode, i.e. lost.
    SQ_ASSIGN_OR_RETURN(lost_rename_snapshot_, ReadAllMutated());
    lost_rename_armed_ = true;
    ++faults_injected_;
    ++counters_.lost_truncations;
    SQ_RETURN_IF_ERROR(inner_->TruncatePrefix(new_begin));
    overlay_.erase(overlay_.begin(), overlay_.lower_bound(new_begin));
    return Status::OK();
  }
  SQ_RETURN_IF_ERROR(inner_->TruncatePrefix(new_begin));
  overlay_.erase(overlay_.begin(), overlay_.lower_bound(new_begin));
  // A successful rewrite-rename (with its directory fsync) makes the whole
  // current file durable, closing any armed lost-rename window.
  lost_rename_armed_ = false;
  lost_rename_snapshot_.clear();
  return Status::OK();
}

Result<std::vector<LogRecord>> FaultyLogDevice::ReadAll() const {
  if (lost_rename_armed_) return lost_rename_snapshot_;
  return ReadAllMutated();
}

Result<std::vector<LogRecord>> FaultyLogDevice::ReadAllMutated() const {
  SQ_ASSIGN_OR_RETURN(std::vector<LogRecord> records, inner_->ReadAll());
  std::vector<LogRecord> out;
  out.reserve(records.size());
  for (auto& rec : records) {
    auto it = overlay_.find(rec.lsn);
    if (it == overlay_.end()) {
      out.push_back(std::move(rec));
      continue;
    }
    switch (it->second.kind) {
      case Mutation::kTorn:
        rec.bytes.resize(it->second.keep_bytes);
        out.push_back(std::move(rec));
        break;
      case Mutation::kFlip:
        rec.bytes[it->second.bit_index / 8] ^=
            static_cast<char>(1u << (it->second.bit_index % 8));
        out.push_back(std::move(rec));
        break;
      case Mutation::kDrop:
        break;  // acked, never persisted: invisible to the read-back
    }
  }
  return out;
}

}  // namespace squirrel
