// Mediator durability: write-ahead log, checkpoints, and crash recovery.
//
// The mediator's hard state — the pieces a crash must not lose — is:
//   - the LocalStore repositories (materialized view fragments),
//   - the UpdateQueue contents (announcements received but not yet applied),
//   - per-source announcement sequence numbers (dedup of at-least-once
//     redelivery), last-reflected send times (the reflect vector of §6.1),
//     and quarantine flags,
//   - the update-transaction id counter.
//
// WAL record types and the commit invariant:
//   kEnqueue(msg)            logged before the message enters the queue; an
//                            announcement is only "received" once durable.
//   kTxnBegin(id, n)         the update transaction flushed the first n
//                            queue messages. Effects are NOT yet durable.
//   kTxnCommit(id, n,        the transaction's effects: the narrowed per-
//     node_deltas, reflect)  node deltas applied to the repositories and the
//                            per-source reflect advances. A transaction's
//                            effects reach recovered state only if this
//                            record is durable (redo-only logging; there is
//                            nothing to undo because uncommitted effects
//                            live purely in volatile memory).
//   kTxnAbort(id, requeued)  the transaction gave up (poll retries
//                            exhausted); its messages went back to the queue
//                            front (UpdateQueue::Requeue semantics).
//   kCheckpoint(hard state)  full serialized hard state; every earlier
//                            record is then truncated.
//
// Recovery = load the newest checkpoint, then replay the log suffix:
// enqueues append to the queue (and raise the dedup high-water marks so
// still-retransmitting sources are suppressed), commits pop their messages
// and re-apply their node deltas, and a begin without commit/abort rolls
// back by simply leaving the flushed messages at the queue front — exactly
// the order Requeue would restore.

#ifndef SQUIRREL_MEDIATOR_DURABILITY_DURABILITY_H_
#define SQUIRREL_MEDIATOR_DURABILITY_DURABILITY_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "delta/delta.h"
#include "mediator/durability/log_device.h"
#include "relational/relation.h"
#include "sim/clock.h"
#include "source/messages.h"

namespace squirrel {

/// Durability policy knobs (part of MediatorOptions).
struct DurabilityOptions {
  /// Durable storage; nullptr disables durability entirely (a crashed
  /// mediator then cannot recover). Not owned; must outlive the mediator.
  LogDevice* device = nullptr;
  /// False = checkpoint-only mode: no WAL records are written, so recovery
  /// falls back to the last checkpoint and loses everything after it. Exists
  /// to demonstrate (in tests) that the WAL is load-bearing.
  bool wal = true;
  /// Update commits between periodic checkpoints; 0 = only the initial
  /// checkpoint written at Start().
  uint64_t checkpoint_every = 16;
  /// Wrap every WAL record and checkpoint image in a CRC32C frame (magic +
  /// checksum + length + log epoch; see integrity.h). Off only for the
  /// framing-overhead benchmark — an unframed log cannot distinguish tail
  /// damage from interior corruption.
  bool framing = true;
  /// Paranoid recovery: re-initiate anti-entropy resync for every mirrored
  /// source after ANY recovery, not just when integrity anomalies were
  /// observed. Deployments on storage that may ack-then-lose writes (lying
  /// fsync) need this — a dropped log TAIL leaves no detectable trace, so
  /// only a snapshot pull can rule out silent divergence.
  bool resync_on_recovery = false;
};

/// Everything a checkpoint captures and recovery restores.
struct HardState {
  /// Per-source durable state, keyed by source name.
  struct SourceState {
    uint64_t last_update_seq = 0;  ///< dedup high-water mark
    Time last_reflected_send = 0;  ///< reflect-vector entry
    bool quarantined = false;
    uint64_t epoch = 1;  ///< source incarnation the mediator believes in
    uint8_t health = 0;  ///< SourceHealth as stored (0=healthy, 1=suspect,
                         ///< 2=resyncing); a non-healthy value makes
                         ///< recovery re-initiate the resync
  };

  std::map<std::string, Relation> repos;  ///< node -> repository contents
  std::vector<UpdateMessage> queue;       ///< update queue, front first
  std::map<std::string, SourceState> sources;
  uint64_t next_txn_id = 1;
  /// Per-source believed-state mirrors of the resync manager
  /// (source -> relation -> full extent); empty for virtual contributors.
  std::map<std::string, std::map<std::string, Relation>> mirrors;
  /// Snapshot-request id counter (never reused across incarnations, so a
  /// pre-crash snapshot answer can never satisfy a post-crash request).
  uint64_t next_resync_id = 1;
  /// MVCC publish counter (LocalStore::SnapshotVersion) at checkpoint time.
  /// Recovery fast-forwards the store's counter past it, so post-recovery
  /// snapshot versions never collide with pre-crash ones a reader may still
  /// be pinning.
  uint64_t snapshot_version = 0;

  /// Deterministic serialization (byte-identical for equal states).
  std::string Encode() const;
  static Result<HardState> Decode(const std::string& bytes);
};

/// The payload of one committed update transaction's WAL record.
struct CommitPayload {
  uint64_t txn_id = 0;
  uint64_t consumed = 0;  ///< messages this transaction flushed
  /// Narrowed per-node deltas exactly as applied to the repositories.
  std::map<std::string, Delta> node_deltas;
  /// Per-source send-time advances (reflect candidates).
  std::map<std::string, Time> reflect;
  /// Per-source full-relation net changes this transaction consumed (the
  /// in-flight smash); replay advances the resync mirrors with these so
  /// mirror and repositories stay in lockstep.
  std::map<std::string, MultiDelta> source_deltas;
};

/// What Recover() reconstructed, plus counters for stats/trace.
struct RecoveredState {
  HardState state;
  uint64_t checkpoint_lsn = 0;      ///< LSN of the checkpoint restored
  uint64_t records_replayed = 0;    ///< WAL records after the checkpoint
  uint64_t txns_replayed = 0;       ///< commits re-applied
  uint64_t txns_rolled_back = 0;    ///< begins without commit/abort
  uint64_t msgs_requeued = 0;       ///< messages returned by rollbacks
  // ---- integrity triage (framing mode) ----
  /// Damaged trailing records dropped as repairable tail damage (torn or
  /// partially persisted final appends).
  uint64_t tail_records_dropped = 0;
  /// Damaged checkpoint generations skipped before a good one verified
  /// (recovery then replays the longer WAL suffix behind the older one).
  uint64_t checkpoint_fallbacks = 0;
  /// True iff recovery observed any integrity anomaly. The recovered state
  /// is internally consistent, but records lost with the damaged tail were
  /// acknowledged to sources — the mediator re-initiates resync for every
  /// mirrored source so the repaired state provably reconverges.
  bool anomalies() const {
    return tail_records_dropped > 0 || checkpoint_fallbacks > 0;
  }
};

/// \brief Writes the mediator's WAL and checkpoints; replays them on demand.
///
/// The manager is pure logging/recovery logic: it never touches live
/// mediator components. The mediator calls Log* at the corresponding points
/// of its update path and rebuilds itself from Recover()'s result.
class DurabilityManager {
 public:
  /// Default = disabled (no device).
  DurabilityManager() = default;
  explicit DurabilityManager(DurabilityOptions opts) : opts_(opts) {}

  bool enabled() const { return opts_.device != nullptr; }
  bool wal_enabled() const { return enabled() && opts_.wal; }
  const DurabilityOptions& options() const { return opts_; }

  // ---- logging (no-ops when the WAL is disabled) ----
  /// Logs an enqueue. \p coalesced records that the live queue merged this
  /// message into its tail (same source, within the batch window) so that
  /// replay mirrors the merge instead of appending; the flag must reflect
  /// UpdateQueue::WouldCoalesce evaluated BEFORE the actual enqueue.
  Status LogEnqueue(const UpdateMessage& msg, bool coalesced = false);
  Status LogTxnBegin(uint64_t txn_id, uint64_t consumed);
  Status LogTxnCommit(const CommitPayload& payload);
  Status LogTxnAbort(uint64_t txn_id, bool requeued);
  /// Logs the start of a source resync (epoch observed, updates now being
  /// dropped). Recovery re-initiates the snapshot pull for any source whose
  /// resync began but never finished.
  Status LogResyncBegin(const std::string& source, uint64_t epoch);
  /// Logs a completed resync: the corrective enqueue record precedes this,
  /// so a crash in between replays into a state that simply resyncs again
  /// (the corrective diff is computed against believed state, making it
  /// idempotent). \p last_update_seq is the post-resync dedup floor.
  Status LogResyncDone(const std::string& source, uint64_t epoch,
                       uint64_t last_update_seq);
  /// Logs one backpressure shed (UpdateQueue::CoalesceOldest) so replay
  /// mirrors the live queue's merge.
  Status LogShed();

  /// Writes a checkpoint record and truncates everything before it.
  /// Enabled-mode only (checkpoints are written even when the WAL is off).
  Status WriteCheckpoint(const HardState& state);

  /// True iff \p commits_since_checkpoint has reached the policy period.
  bool CheckpointDue(uint64_t commits_since_checkpoint) const {
    return enabled() && opts_.checkpoint_every > 0 &&
           commits_since_checkpoint >= opts_.checkpoint_every;
  }

  /// Rebuilds hard state from the device: newest checkpoint generation that
  /// verifies + the log suffix behind it. Damaged trailing records are
  /// dropped (tail repair); interior corruption or an unrecoverable
  /// checkpoint pair returns StatusCode::kCorrupted with LSN diagnostics.
  /// Non-const: recovery re-anchors the generation pointer and bumps the
  /// log epoch (a new log incarnation).
  Result<RecoveredState> Recover();

  // ---- observability ----
  uint64_t records_logged() const { return records_logged_; }
  uint64_t checkpoints_written() const { return checkpoints_written_; }
  uint64_t bytes_logged() const { return bytes_logged_; }
  /// Current log incarnation stamped into every frame (bumped by Recover).
  uint64_t log_epoch() const { return log_epoch_; }

 private:
  Status Append(std::string record);

  DurabilityOptions opts_;
  uint64_t records_logged_ = 0;
  uint64_t checkpoints_written_ = 0;
  uint64_t bytes_logged_ = 0;
  /// Log incarnation stamped into frames; starts at 1, +1 per recovery.
  uint64_t log_epoch_ = 1;
  /// Dual-generation retention: WriteCheckpoint truncates only up to the
  /// PREVIOUS checkpoint's LSN, so the log always holds two generations and
  /// recovery can fall back when the newest fails verification.
  uint64_t prev_checkpoint_lsn_ = 0;
  bool have_prev_checkpoint_ = false;
};

}  // namespace squirrel

#endif  // SQUIRREL_MEDIATOR_DURABILITY_DURABILITY_H_
