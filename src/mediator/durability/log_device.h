// Pluggable durable storage for the mediator's write-ahead log.
//
// A LogDevice is an ordered sequence of opaque records addressed by a
// monotonically increasing log sequence number (LSN). Append is atomic and
// durable: once Append returns OK the record survives any mediator crash.
// Checkpoints are ordinary records; TruncatePrefix drops records folded into
// a checkpoint so the log stays bounded.
//
// Two implementations:
//  - MemLogDevice: in-process, for the deterministic crash–restart simulator
//    (a mediator "crash" wipes the Mediator object's volatile state but the
//    device, like a disk, survives). Its append hook lets the crash-point
//    sweep kill the mediator right after any chosen record lands.
//  - FileLogDevice: length-prefixed records in a single file, for the
//    examples; demonstrates recovery across real process restarts.

#ifndef SQUIRREL_MEDIATOR_DURABILITY_LOG_DEVICE_H_
#define SQUIRREL_MEDIATOR_DURABILITY_LOG_DEVICE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"

namespace squirrel {

/// One surviving log record and its position.
struct LogRecord {
  uint64_t lsn = 0;
  std::string bytes;
};

/// \brief Durable, ordered record storage (the mediator's "disk").
class LogDevice {
 public:
  virtual ~LogDevice() = default;

  /// Durably appends a record; returns its LSN. Records are immutable.
  virtual Result<uint64_t> Append(std::string bytes) = 0;

  /// Drops every record with lsn < \p new_begin (checkpoint truncation).
  virtual Status TruncatePrefix(uint64_t new_begin) = 0;

  /// All surviving records in LSN order.
  virtual Result<std::vector<LogRecord>> ReadAll() const = 0;

  /// LSN the next Append will receive (= records ever appended).
  virtual uint64_t NextLsn() const = 0;

  /// Bytes currently held (post-truncation). Observability only.
  virtual uint64_t SizeBytes() const = 0;
};

/// \brief In-memory device for the simulator.
class MemLogDevice : public LogDevice {
 public:
  Result<uint64_t> Append(std::string bytes) override;
  Status TruncatePrefix(uint64_t new_begin) override;
  Result<std::vector<LogRecord>> ReadAll() const override;
  uint64_t NextLsn() const override { return next_lsn_; }
  uint64_t SizeBytes() const override { return size_bytes_; }

  /// Invoked after each successful Append with the new record's LSN. The
  /// crash-point sweep uses this to schedule a mediator crash immediately
  /// after a chosen WAL position.
  void SetAppendHook(std::function<void(uint64_t lsn)> hook) {
    append_hook_ = std::move(hook);
  }

 private:
  std::vector<LogRecord> records_;
  uint64_t next_lsn_ = 0;
  uint64_t size_bytes_ = 0;
  std::function<void(uint64_t)> append_hook_;
};

/// \brief Single-file device: [u64 lsn][u32 len][bytes]* per record.
///
/// Append writes and flushes one framed record; TruncatePrefix rewrites the
/// file (logs stay small between checkpoints, so the rewrite is cheap). A
/// torn final record — a crash mid-write — is detected by the framing and
/// dropped, which is safe because the mediator only acts on state whose
/// record Append confirmed.
class FileLogDevice : public LogDevice {
 public:
  /// Opens or creates \p path, scanning existing records to restore LSNs.
  static Result<std::unique_ptr<FileLogDevice>> Open(const std::string& path);

  Result<uint64_t> Append(std::string bytes) override;
  Status TruncatePrefix(uint64_t new_begin) override;
  Result<std::vector<LogRecord>> ReadAll() const override;
  uint64_t NextLsn() const override { return next_lsn_; }
  uint64_t SizeBytes() const override { return size_bytes_; }

  const std::string& path() const { return path_; }

 private:
  explicit FileLogDevice(std::string path) : path_(std::move(path)) {}
  Status Rewrite(const std::vector<LogRecord>& records);

  std::string path_;
  std::vector<LogRecord> records_;  // cache of the file contents
  uint64_t next_lsn_ = 0;
  uint64_t size_bytes_ = 0;
  /// True once the on-disk file carries the version-stamped header. Legacy
  /// headerless files keep their layout until the next rewrite-rename.
  bool has_header_ = false;
  /// True once the file's directory entry is known durable (the parent dir
  /// has been fsynced since the file was created or renamed into place). A
  /// freshly created log whose dirent is only in the page cache can vanish
  /// wholesale on crash even though every Append fsynced the file itself.
  bool dirent_durable_ = false;
};

}  // namespace squirrel

#endif  // SQUIRREL_MEDIATOR_DURABILITY_LOG_DEVICE_H_
