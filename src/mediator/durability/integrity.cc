#include "mediator/durability/integrity.h"

#include <array>

namespace squirrel {

namespace {

// Frame magics. The checkpoint magic is the bitwise complement of the record
// magic: every bit differs, so no burst of flips short of inverting the whole
// word can convert one frame class into the other.
constexpr uint32_t kRecordMagic = 0xC5A1B069u;
constexpr uint32_t kCheckpointMagic = ~kRecordMagic;  // 0x3A5E4F96

constexpr size_t kHeaderSize = 4 + 4 + 4 + 8;  // magic + crc + len + epoch

std::array<uint32_t, 256> MakeCrc32cTable() {
  std::array<uint32_t, 256> table{};
  // Reflected Castagnoli polynomial.
  constexpr uint32_t kPoly = 0x82F63B78u;
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int b = 0; b < 8; ++b) {
      crc = (crc & 1) ? (crc >> 1) ^ kPoly : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

const std::array<uint32_t, 256>& Crc32cTable() {
  static const std::array<uint32_t, 256> kTable = MakeCrc32cTable();
  return kTable;
}

void PutU32Le(std::string* out, uint32_t v) {
  out->push_back(static_cast<char>(v & 0xFF));
  out->push_back(static_cast<char>((v >> 8) & 0xFF));
  out->push_back(static_cast<char>((v >> 16) & 0xFF));
  out->push_back(static_cast<char>((v >> 24) & 0xFF));
}

void PutU64Le(std::string* out, uint64_t v) {
  PutU32Le(out, static_cast<uint32_t>(v & 0xFFFFFFFFu));
  PutU32Le(out, static_cast<uint32_t>(v >> 32));
}

uint32_t GetU32Le(const std::string& bytes, size_t at) {
  return static_cast<uint32_t>(static_cast<unsigned char>(bytes[at])) |
         static_cast<uint32_t>(static_cast<unsigned char>(bytes[at + 1])) << 8 |
         static_cast<uint32_t>(static_cast<unsigned char>(bytes[at + 2]))
             << 16 |
         static_cast<uint32_t>(static_cast<unsigned char>(bytes[at + 3]))
             << 24;
}

uint64_t GetU64Le(const std::string& bytes, size_t at) {
  return static_cast<uint64_t>(GetU32Le(bytes, at)) |
         static_cast<uint64_t>(GetU32Le(bytes, at + 4)) << 32;
}

}  // namespace

uint32_t Crc32c(const void* data, size_t n, uint32_t seed) {
  const auto& table = Crc32cTable();
  const auto* p = static_cast<const unsigned char*>(data);
  uint32_t crc = ~seed;
  for (size_t i = 0; i < n; ++i) {
    crc = table[(crc ^ p[i]) & 0xFF] ^ (crc >> 8);
  }
  return ~crc;
}

uint32_t Crc32c(const std::string& bytes) {
  return Crc32c(bytes.data(), bytes.size());
}

std::string FrameRecord(FrameClass cls, uint64_t log_epoch,
                        const std::string& payload) {
  std::string out;
  out.reserve(kHeaderSize + payload.size());
  PutU32Le(&out,
           cls == FrameClass::kCheckpoint ? kCheckpointMagic : kRecordMagic);
  PutU32Le(&out, 0);  // crc placeholder
  PutU32Le(&out, static_cast<uint32_t>(payload.size()));
  PutU64Le(&out, log_epoch);
  out.append(payload);
  // CRC covers everything after the crc field: len + epoch + payload.
  uint32_t crc = Crc32c(out.data() + 8, out.size() - 8);
  out[4] = static_cast<char>(crc & 0xFF);
  out[5] = static_cast<char>((crc >> 8) & 0xFF);
  out[6] = static_cast<char>((crc >> 16) & 0xFF);
  out[7] = static_cast<char>((crc >> 24) & 0xFF);
  return out;
}

FrameClass PeekFrameClass(const std::string& bytes) {
  if (bytes.size() < 4) return FrameClass::kUnknown;
  uint32_t magic = GetU32Le(bytes, 0);
  if (magic == kRecordMagic) return FrameClass::kRecord;
  if (magic == kCheckpointMagic) return FrameClass::kCheckpoint;
  return FrameClass::kUnknown;
}

FrameInfo UnframeRecord(const std::string& bytes) {
  FrameInfo info;
  info.frame_class = PeekFrameClass(bytes);
  if (info.frame_class == FrameClass::kUnknown) return info;
  if (bytes.size() < kHeaderSize) return info;
  uint32_t stored_crc = GetU32Le(bytes, 4);
  uint32_t len = GetU32Le(bytes, 8);
  if (bytes.size() != kHeaderSize + len) return info;
  uint32_t actual = Crc32c(bytes.data() + 8, bytes.size() - 8);
  if (actual != stored_crc) return info;
  info.valid = true;
  info.log_epoch = GetU64Le(bytes, 12);
  info.payload = bytes.substr(kHeaderSize);
  return info;
}

}  // namespace squirrel
