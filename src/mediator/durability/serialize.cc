#include "mediator/durability/serialize.h"

#include <algorithm>
#include <cstring>

#include "mediator/durability/integrity.h"
#include "relational/parser.h"

namespace squirrel {

namespace {

Status Truncated(const char* what) {
  return Status::Internal(std::string("corrupt record: truncated ") + what);
}

}  // namespace

// ---- BinaryWriter ---------------------------------------------------------

void BinaryWriter::PutU32(uint32_t v) {
  for (int i = 0; i < 4; ++i) out_.push_back(static_cast<char>(v >> (8 * i)));
}

void BinaryWriter::PutU64(uint64_t v) {
  for (int i = 0; i < 8; ++i) out_.push_back(static_cast<char>(v >> (8 * i)));
}

void BinaryWriter::PutDouble(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits);
}

void BinaryWriter::PutString(const std::string& s) {
  PutU32(static_cast<uint32_t>(s.size()));
  out_.append(s);
}

// ---- BinaryReader ---------------------------------------------------------

Result<uint8_t> BinaryReader::GetU8() {
  if (remaining() < 1) return Truncated("u8");
  return static_cast<uint8_t>(bytes_[pos_++]);
}

Result<uint32_t> BinaryReader::GetU32() {
  if (remaining() < 4) return Truncated("u32");
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(bytes_[pos_++])) << (8 * i);
  }
  return v;
}

Result<uint64_t> BinaryReader::GetU64() {
  if (remaining() < 8) return Truncated("u64");
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(bytes_[pos_++])) << (8 * i);
  }
  return v;
}

Result<int64_t> BinaryReader::GetI64() {
  SQ_ASSIGN_OR_RETURN(uint64_t v, GetU64());
  return static_cast<int64_t>(v);
}

Result<double> BinaryReader::GetDouble() {
  SQ_ASSIGN_OR_RETURN(uint64_t bits, GetU64());
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

Result<std::string> BinaryReader::GetString() {
  SQ_ASSIGN_OR_RETURN(uint32_t len, GetU32());
  if (remaining() < len) return Truncated("string body");
  std::string s = bytes_.substr(pos_, len);
  pos_ += len;
  return s;
}

// ---- Value ----------------------------------------------------------------

void EncodeValue(BinaryWriter* w, const Value& v) {
  w->PutU8(static_cast<uint8_t>(v.type()));
  switch (v.type()) {
    case ValueType::kNull:
      break;
    case ValueType::kInt:
      w->PutI64(v.AsInt());
      break;
    case ValueType::kDouble:
      w->PutDouble(v.AsDouble());
      break;
    case ValueType::kString:
      w->PutString(v.AsString());
      break;
  }
}

Result<Value> DecodeValue(BinaryReader* r) {
  SQ_ASSIGN_OR_RETURN(uint8_t tag, r->GetU8());
  switch (static_cast<ValueType>(tag)) {
    case ValueType::kNull:
      return Value();
    case ValueType::kInt: {
      SQ_ASSIGN_OR_RETURN(int64_t v, r->GetI64());
      return Value(v);
    }
    case ValueType::kDouble: {
      SQ_ASSIGN_OR_RETURN(double v, r->GetDouble());
      return Value(v);
    }
    case ValueType::kString: {
      SQ_ASSIGN_OR_RETURN(std::string v, r->GetString());
      return Value(std::move(v));
    }
  }
  return Status::Internal("corrupt record: unknown value tag " +
                          std::to_string(tag));
}

// ---- Tuple ----------------------------------------------------------------

void EncodeTuple(BinaryWriter* w, const Tuple& t) {
  w->PutU32(static_cast<uint32_t>(t.size()));
  for (size_t i = 0; i < t.size(); ++i) EncodeValue(w, t.at(i));
}

Result<Tuple> DecodeTuple(BinaryReader* r) {
  SQ_ASSIGN_OR_RETURN(uint32_t n, r->GetU32());
  std::vector<Value> values;
  // Clamped reserves throughout the decoders: a corrupted count must surface
  // as a decode error, not a bad_alloc (every element costs >= 1 byte).
  values.reserve(std::min<size_t>(n, r->remaining()));
  for (uint32_t i = 0; i < n; ++i) {
    SQ_ASSIGN_OR_RETURN(Value v, DecodeValue(r));
    values.push_back(std::move(v));
  }
  return Tuple(std::move(values));
}

// ---- Schema ---------------------------------------------------------------

void EncodeSchema(BinaryWriter* w, const Schema& s) {
  w->PutU32(static_cast<uint32_t>(s.size()));
  for (const Attribute& a : s.attrs()) {
    w->PutString(a.name);
    w->PutU8(static_cast<uint8_t>(a.type));
  }
  w->PutU32(static_cast<uint32_t>(s.key().size()));
  for (const std::string& k : s.key()) w->PutString(k);
}

Result<Schema> DecodeSchema(BinaryReader* r) {
  SQ_ASSIGN_OR_RETURN(uint32_t nattrs, r->GetU32());
  std::vector<Attribute> attrs;
  attrs.reserve(std::min<size_t>(nattrs, r->remaining()));
  for (uint32_t i = 0; i < nattrs; ++i) {
    Attribute a;
    SQ_ASSIGN_OR_RETURN(a.name, r->GetString());
    SQ_ASSIGN_OR_RETURN(uint8_t t, r->GetU8());
    if (t > static_cast<uint8_t>(ValueType::kString)) {
      return Status::Internal("corrupt record: bad attribute type");
    }
    a.type = static_cast<ValueType>(t);
    attrs.push_back(std::move(a));
  }
  SQ_ASSIGN_OR_RETURN(uint32_t nkey, r->GetU32());
  std::vector<std::string> key;
  key.reserve(std::min<size_t>(nkey, r->remaining()));
  for (uint32_t i = 0; i < nkey; ++i) {
    SQ_ASSIGN_OR_RETURN(std::string k, r->GetString());
    key.push_back(std::move(k));
  }
  Schema schema(std::move(attrs), std::move(key));
  SQ_RETURN_IF_ERROR(schema.Validate());
  return schema;
}

// ---- Relation -------------------------------------------------------------

void EncodeRelation(BinaryWriter* w, const Relation& rel) {
  w->PutU8(rel.semantics() == Semantics::kBag ? 1 : 0);
  EncodeSchema(w, rel.schema());
  auto rows = rel.SortedRows();
  w->PutU64(rows.size());
  for (const auto& [tuple, count] : rows) {
    EncodeTuple(w, tuple);
    w->PutI64(count);
  }
}

Result<Relation> DecodeRelation(BinaryReader* r) {
  SQ_ASSIGN_OR_RETURN(uint8_t bag, r->GetU8());
  SQ_ASSIGN_OR_RETURN(Schema schema, DecodeSchema(r));
  Relation rel(std::move(schema), bag ? Semantics::kBag : Semantics::kSet);
  SQ_ASSIGN_OR_RETURN(uint64_t nrows, r->GetU64());
  for (uint64_t i = 0; i < nrows; ++i) {
    SQ_ASSIGN_OR_RETURN(Tuple t, DecodeTuple(r));
    SQ_ASSIGN_OR_RETURN(int64_t count, r->GetI64());
    SQ_RETURN_IF_ERROR(rel.Insert(t, count));
  }
  return rel;
}

// ---- Delta ----------------------------------------------------------------

void EncodeDelta(BinaryWriter* w, const Delta& d) {
  EncodeSchema(w, d.schema());
  auto atoms = d.SortedAtoms();
  w->PutU64(atoms.size());
  for (const auto& [tuple, count] : atoms) {
    EncodeTuple(w, tuple);
    w->PutI64(count);
  }
}

Result<Delta> DecodeDelta(BinaryReader* r) {
  SQ_ASSIGN_OR_RETURN(Schema schema, DecodeSchema(r));
  Delta d(std::move(schema));
  SQ_ASSIGN_OR_RETURN(uint64_t natoms, r->GetU64());
  for (uint64_t i = 0; i < natoms; ++i) {
    SQ_ASSIGN_OR_RETURN(Tuple t, DecodeTuple(r));
    SQ_ASSIGN_OR_RETURN(int64_t count, r->GetI64());
    SQ_RETURN_IF_ERROR(d.Add(t, count));
  }
  return d;
}

// ---- MultiDelta -----------------------------------------------------------

void EncodeMultiDelta(BinaryWriter* w, const MultiDelta& md) {
  auto names = md.RelationNames();  // sorted
  w->PutU32(static_cast<uint32_t>(names.size()));
  for (const std::string& name : names) {
    w->PutString(name);
    EncodeDelta(w, *md.Find(name));
  }
}

Result<MultiDelta> DecodeMultiDelta(BinaryReader* r) {
  SQ_ASSIGN_OR_RETURN(uint32_t n, r->GetU32());
  MultiDelta md;
  for (uint32_t i = 0; i < n; ++i) {
    SQ_ASSIGN_OR_RETURN(std::string name, r->GetString());
    SQ_ASSIGN_OR_RETURN(Delta d, DecodeDelta(r));
    Delta* slot = md.Mutable(name, d.schema());
    SQ_RETURN_IF_ERROR(slot->SmashInPlace(d));
  }
  return md;
}

// ---- UpdateMessage --------------------------------------------------------

void EncodeUpdateMessage(BinaryWriter* w, const UpdateMessage& msg) {
  w->PutString(msg.source);
  w->PutTime(msg.send_time);
  w->PutU64(msg.seq);
  w->PutU64(msg.epoch);
  EncodeMultiDelta(w, msg.delta);
}

Result<UpdateMessage> DecodeUpdateMessage(BinaryReader* r) {
  UpdateMessage msg;
  SQ_ASSIGN_OR_RETURN(msg.source, r->GetString());
  SQ_ASSIGN_OR_RETURN(msg.send_time, r->GetTime());
  SQ_ASSIGN_OR_RETURN(msg.seq, r->GetU64());
  SQ_ASSIGN_OR_RETURN(msg.epoch, r->GetU64());
  SQ_ASSIGN_OR_RETURN(msg.delta, DecodeMultiDelta(r));
  return msg;
}

// ---- Poll messages --------------------------------------------------------

void EncodePollRequest(BinaryWriter* w, const PollRequest& req) {
  w->PutU64(req.id);
  w->PutTime(req.deadline);
  w->PutU8(static_cast<uint8_t>(req.qclass));
  w->PutU32(static_cast<uint32_t>(req.polls.size()));
  for (const PollSpec& p : req.polls) {
    w->PutString(p.relation);
    w->PutU32(static_cast<uint32_t>(p.attrs.size()));
    for (const std::string& a : p.attrs) w->PutString(a);
    // Conditions travel as predicate text; empty = null (true).
    w->PutString(p.cond ? p.cond->ToString() : std::string());
  }
}

Result<PollRequest> DecodePollRequest(BinaryReader* r) {
  PollRequest req;
  SQ_ASSIGN_OR_RETURN(req.id, r->GetU64());
  SQ_ASSIGN_OR_RETURN(req.deadline, r->GetTime());
  SQ_ASSIGN_OR_RETURN(uint8_t cls, r->GetU8());
  if (cls >= kNumQueryClasses) {
    return Status::Internal("corrupt record: bad query class " +
                            std::to_string(cls));
  }
  req.qclass = static_cast<QueryClass>(cls);
  SQ_ASSIGN_OR_RETURN(uint32_t npolls, r->GetU32());
  req.polls.reserve(std::min<size_t>(npolls, r->remaining()));
  for (uint32_t i = 0; i < npolls; ++i) {
    PollSpec p;
    SQ_ASSIGN_OR_RETURN(p.relation, r->GetString());
    SQ_ASSIGN_OR_RETURN(uint32_t nattrs, r->GetU32());
    p.attrs.reserve(std::min<size_t>(nattrs, r->remaining()));
    for (uint32_t j = 0; j < nattrs; ++j) {
      SQ_ASSIGN_OR_RETURN(std::string a, r->GetString());
      p.attrs.push_back(std::move(a));
    }
    SQ_ASSIGN_OR_RETURN(std::string cond_text, r->GetString());
    if (!cond_text.empty()) {
      SQ_ASSIGN_OR_RETURN(p.cond, ParsePredicate(cond_text));
    }
    req.polls.push_back(std::move(p));
  }
  return req;
}

void EncodePollAnswer(BinaryWriter* w, const PollAnswer& ans) {
  w->PutU64(ans.id);
  w->PutString(ans.source);
  w->PutTime(ans.answered_at);
  w->PutU64(ans.epoch);
  w->PutTime(ans.retry_after);
  w->PutU32(static_cast<uint32_t>(ans.results.size()));
  for (const Relation& rel : ans.results) EncodeRelation(w, rel);
}

Result<PollAnswer> DecodePollAnswer(BinaryReader* r) {
  PollAnswer ans;
  SQ_ASSIGN_OR_RETURN(ans.id, r->GetU64());
  SQ_ASSIGN_OR_RETURN(ans.source, r->GetString());
  SQ_ASSIGN_OR_RETURN(ans.answered_at, r->GetTime());
  SQ_ASSIGN_OR_RETURN(ans.epoch, r->GetU64());
  SQ_ASSIGN_OR_RETURN(ans.retry_after, r->GetTime());
  SQ_ASSIGN_OR_RETURN(uint32_t nresults, r->GetU32());
  ans.results.reserve(std::min<size_t>(nresults, r->remaining()));
  for (uint32_t i = 0; i < nresults; ++i) {
    SQ_ASSIGN_OR_RETURN(Relation rel, DecodeRelation(r));
    ans.results.push_back(std::move(rel));
  }
  return ans;
}

uint32_t ChecksumUpdateMessage(const UpdateMessage& msg) {
  BinaryWriter w;
  EncodeUpdateMessage(&w, msg);
  return Crc32c(w.bytes());
}

uint32_t ChecksumSnapshotAnswer(const SnapshotAnswer& ans) {
  BinaryWriter w;
  w.PutU64(ans.id);
  w.PutString(ans.source);
  w.PutTime(ans.answered_at);
  w.PutU64(ans.epoch);
  w.PutU64(ans.announce_seq);
  w.PutU32(static_cast<uint32_t>(ans.relations.size()));
  for (const auto& [name, rel] : ans.relations) {
    w.PutString(name);
    EncodeRelation(&w, rel);
  }
  return Crc32c(w.bytes());
}

}  // namespace squirrel
