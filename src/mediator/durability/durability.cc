#include "mediator/durability/durability.h"

#include <algorithm>
#include <deque>

#include "delta/delta.h"
#include "mediator/durability/integrity.h"
#include "mediator/durability/serialize.h"
#include "mediator/update_queue.h"

namespace squirrel {

namespace {

// WAL record tags. The one-byte tag leads every record.
enum RecordTag : uint8_t {
  kEnqueue = 1,
  kTxnBegin = 2,
  kTxnCommit = 3,
  kTxnAbort = 4,
  kCheckpoint = 5,
  // An enqueue the live queue merged into its tail message (delta
  // coalescing); replay smashes into the rebuilt queue's tail instead of
  // appending.
  kEnqueueCoalesced = 6,
  // Source resync lifecycle (anti-entropy after a source restart): a begin
  // without a matching done means the crash hit mid-resync and recovery
  // must re-initiate the snapshot pull.
  kResyncBegin = 7,
  kResyncDone = 8,
  // One backpressure shed: replay re-runs the deterministic oldest-coalesce
  // merge on the rebuilt queue.
  kShed = 9,
};

// Checkpoint format version, bumped on incompatible layout changes.
// v2 adds per-source epoch/health, the resync mirrors, and the
// snapshot-request id counter. v3 adds the MVCC snapshot-version counter.
constexpr uint32_t kHardStateVersion = 3;

}  // namespace

// ---- HardState ------------------------------------------------------------

std::string HardState::Encode() const {
  BinaryWriter w;
  w.PutU32(kHardStateVersion);
  w.PutU32(static_cast<uint32_t>(repos.size()));
  for (const auto& [node, rel] : repos) {
    w.PutString(node);
    EncodeRelation(&w, rel);
  }
  w.PutU64(queue.size());
  for (const auto& msg : queue) EncodeUpdateMessage(&w, msg);
  w.PutU32(static_cast<uint32_t>(sources.size()));
  for (const auto& [name, st] : sources) {
    w.PutString(name);
    w.PutU64(st.last_update_seq);
    w.PutTime(st.last_reflected_send);
    w.PutU8(st.quarantined ? 1 : 0);
    w.PutU64(st.epoch);
    w.PutU8(st.health);
  }
  w.PutU64(next_txn_id);
  w.PutU32(static_cast<uint32_t>(mirrors.size()));
  for (const auto& [source, rels] : mirrors) {
    w.PutString(source);
    w.PutU32(static_cast<uint32_t>(rels.size()));
    for (const auto& [rel_name, rel] : rels) {
      w.PutString(rel_name);
      EncodeRelation(&w, rel);
    }
  }
  w.PutU64(next_resync_id);
  w.PutU64(snapshot_version);
  return w.Take();
}

Result<HardState> HardState::Decode(const std::string& bytes) {
  BinaryReader r(bytes);
  SQ_ASSIGN_OR_RETURN(uint32_t version, r.GetU32());
  if (version != kHardStateVersion) {
    return Status::Internal("unsupported checkpoint version " +
                            std::to_string(version));
  }
  HardState hs;
  SQ_ASSIGN_OR_RETURN(uint32_t nrepos, r.GetU32());
  for (uint32_t i = 0; i < nrepos; ++i) {
    SQ_ASSIGN_OR_RETURN(std::string node, r.GetString());
    SQ_ASSIGN_OR_RETURN(Relation rel, DecodeRelation(&r));
    hs.repos.emplace(std::move(node), std::move(rel));
  }
  SQ_ASSIGN_OR_RETURN(uint64_t nmsgs, r.GetU64());
  // Clamp to what the remaining bytes could possibly encode (>= 1 byte per
  // element) so a corrupted count can't bad_alloc before the decode errors.
  hs.queue.reserve(std::min<uint64_t>(nmsgs, r.remaining()));
  for (uint64_t i = 0; i < nmsgs; ++i) {
    SQ_ASSIGN_OR_RETURN(UpdateMessage msg, DecodeUpdateMessage(&r));
    hs.queue.push_back(std::move(msg));
  }
  SQ_ASSIGN_OR_RETURN(uint32_t nsources, r.GetU32());
  for (uint32_t i = 0; i < nsources; ++i) {
    SQ_ASSIGN_OR_RETURN(std::string name, r.GetString());
    SourceState st;
    SQ_ASSIGN_OR_RETURN(st.last_update_seq, r.GetU64());
    SQ_ASSIGN_OR_RETURN(st.last_reflected_send, r.GetTime());
    SQ_ASSIGN_OR_RETURN(uint8_t q, r.GetU8());
    st.quarantined = q != 0;
    SQ_ASSIGN_OR_RETURN(st.epoch, r.GetU64());
    SQ_ASSIGN_OR_RETURN(st.health, r.GetU8());
    hs.sources.emplace(std::move(name), st);
  }
  SQ_ASSIGN_OR_RETURN(hs.next_txn_id, r.GetU64());
  SQ_ASSIGN_OR_RETURN(uint32_t nmirrors, r.GetU32());
  for (uint32_t i = 0; i < nmirrors; ++i) {
    SQ_ASSIGN_OR_RETURN(std::string source, r.GetString());
    SQ_ASSIGN_OR_RETURN(uint32_t nrels, r.GetU32());
    auto& rels = hs.mirrors[source];
    for (uint32_t j = 0; j < nrels; ++j) {
      SQ_ASSIGN_OR_RETURN(std::string rel_name, r.GetString());
      SQ_ASSIGN_OR_RETURN(Relation rel, DecodeRelation(&r));
      rels.emplace(std::move(rel_name), std::move(rel));
    }
  }
  SQ_ASSIGN_OR_RETURN(hs.next_resync_id, r.GetU64());
  SQ_ASSIGN_OR_RETURN(hs.snapshot_version, r.GetU64());
  if (!r.AtEnd()) {
    return Status::Internal("checkpoint has trailing bytes");
  }
  return hs;
}

// ---- DurabilityManager: logging -------------------------------------------

Status DurabilityManager::Append(std::string record) {
  if (opts_.framing) {
    record = FrameRecord(FrameClass::kRecord, log_epoch_, record);
  }
  bytes_logged_ += record.size();
  ++records_logged_;
  return opts_.device->Append(std::move(record)).status();
}

Status DurabilityManager::LogEnqueue(const UpdateMessage& msg,
                                     bool coalesced) {
  if (!wal_enabled()) return Status::OK();
  BinaryWriter w;
  w.PutU8(coalesced ? kEnqueueCoalesced : kEnqueue);
  EncodeUpdateMessage(&w, msg);
  return Append(w.Take());
}

Status DurabilityManager::LogTxnBegin(uint64_t txn_id, uint64_t consumed) {
  if (!wal_enabled()) return Status::OK();
  BinaryWriter w;
  w.PutU8(kTxnBegin);
  w.PutU64(txn_id);
  w.PutU64(consumed);
  return Append(w.Take());
}

Status DurabilityManager::LogTxnCommit(const CommitPayload& payload) {
  if (!wal_enabled()) return Status::OK();
  BinaryWriter w;
  w.PutU8(kTxnCommit);
  w.PutU64(payload.txn_id);
  w.PutU64(payload.consumed);
  w.PutU32(static_cast<uint32_t>(payload.node_deltas.size()));
  for (const auto& [node, delta] : payload.node_deltas) {
    w.PutString(node);
    EncodeDelta(&w, delta);
  }
  w.PutU32(static_cast<uint32_t>(payload.reflect.size()));
  for (const auto& [source, send_time] : payload.reflect) {
    w.PutString(source);
    w.PutTime(send_time);
  }
  w.PutU32(static_cast<uint32_t>(payload.source_deltas.size()));
  for (const auto& [source, md] : payload.source_deltas) {
    w.PutString(source);
    EncodeMultiDelta(&w, md);
  }
  return Append(w.Take());
}

Status DurabilityManager::LogTxnAbort(uint64_t txn_id, bool requeued) {
  if (!wal_enabled()) return Status::OK();
  BinaryWriter w;
  w.PutU8(kTxnAbort);
  w.PutU64(txn_id);
  w.PutU8(requeued ? 1 : 0);
  return Append(w.Take());
}

Status DurabilityManager::LogResyncBegin(const std::string& source,
                                         uint64_t epoch) {
  if (!wal_enabled()) return Status::OK();
  BinaryWriter w;
  w.PutU8(kResyncBegin);
  w.PutString(source);
  w.PutU64(epoch);
  return Append(w.Take());
}

Status DurabilityManager::LogResyncDone(const std::string& source,
                                        uint64_t epoch,
                                        uint64_t last_update_seq) {
  if (!wal_enabled()) return Status::OK();
  BinaryWriter w;
  w.PutU8(kResyncDone);
  w.PutString(source);
  w.PutU64(epoch);
  w.PutU64(last_update_seq);
  return Append(w.Take());
}

Status DurabilityManager::LogShed() {
  if (!wal_enabled()) return Status::OK();
  BinaryWriter w;
  w.PutU8(kShed);
  return Append(w.Take());
}

Status DurabilityManager::WriteCheckpoint(const HardState& state) {
  if (!enabled()) return Status::OK();
  BinaryWriter w;
  w.PutU8(kCheckpoint);
  w.PutString(state.Encode());
  std::string record = w.Take();
  if (opts_.framing) {
    // Checkpoint frames carry the complement magic so a damaged checkpoint
    // is still recognizably a checkpoint (generation fallback, not kCorrupted).
    record = FrameRecord(FrameClass::kCheckpoint, log_epoch_, record);
  }
  bytes_logged_ += record.size();
  ++records_logged_;
  ++checkpoints_written_;
  SQ_ASSIGN_OR_RETURN(uint64_t lsn, opts_.device->Append(std::move(record)));
  // Dual-generation retention: truncate only up to the PREVIOUS checkpoint,
  // keeping it (and the WAL suffix behind it) as the fallback generation in
  // case this newest image is damaged before it is ever read back.
  uint64_t cut = have_prev_checkpoint_ ? prev_checkpoint_lsn_ : lsn;
  prev_checkpoint_lsn_ = lsn;
  have_prev_checkpoint_ = true;
  return opts_.device->TruncatePrefix(cut);
}

// ---- DurabilityManager: recovery ------------------------------------------

namespace {

/// One log record after frame verification (or legacy tag classification).
struct ParsedRecord {
  uint64_t lsn = 0;
  bool valid = false;
  FrameClass cls = FrameClass::kUnknown;
  uint64_t log_epoch = 0;
  std::string payload;  ///< unframed bytes; only meaningful when valid
};

/// Decodes a verified checkpoint-class payload into \p state. Any failure —
/// wrong tag, truncated blob, undecodable HardState — means this generation
/// is unusable and the caller falls back to an older one.
Status DecodeCheckpointPayload(const std::string& payload, HardState* state) {
  BinaryReader r(payload);
  SQ_ASSIGN_OR_RETURN(uint8_t tag, r.GetU8());
  if (tag != kCheckpoint) {
    return Status::Internal("checkpoint frame with record tag " +
                            std::to_string(tag));
  }
  SQ_ASSIGN_OR_RETURN(std::string blob, r.GetString());
  SQ_ASSIGN_OR_RETURN(*state, HardState::Decode(blob));
  return Status::OK();
}

}  // namespace

Result<RecoveredState> DurabilityManager::Recover() {
  if (!enabled()) {
    return Status::FailedPrecondition(
        "recovery requires a log device (durability is disabled)");
  }
  SQ_ASSIGN_OR_RETURN(std::vector<LogRecord> records, opts_.device->ReadAll());

  // Pass 1: verify every frame (or, in legacy unframed mode, classify by
  // tag byte and trust the bytes — an unframed log has no integrity story).
  std::vector<ParsedRecord> parsed;
  parsed.reserve(records.size());
  for (auto& rec : records) {
    ParsedRecord p;
    p.lsn = rec.lsn;
    if (opts_.framing) {
      FrameInfo info = UnframeRecord(rec.bytes);
      p.valid = info.valid;
      p.cls = info.frame_class;
      p.log_epoch = info.log_epoch;
      p.payload = std::move(info.payload);
    } else {
      p.valid = true;
      p.cls = (!rec.bytes.empty() &&
               static_cast<uint8_t>(rec.bytes[0]) == kCheckpoint)
                  ? FrameClass::kCheckpoint
                  : FrameClass::kRecord;
      p.payload = std::move(rec.bytes);
    }
    parsed.push_back(std::move(p));
  }

  // The log epoch must be non-decreasing along the log: a verified frame
  // from an older incarnation sitting AFTER newer ones means the log was
  // spliced (e.g. a stale acked-then-lost tail resurfaced) — never replay.
  uint64_t max_epoch = 0;
  for (const auto& p : parsed) {
    if (!p.valid) continue;
    if (p.log_epoch < max_epoch) {
      return Status::Corrupted("log epoch regression at LSN " +
                               std::to_string(p.lsn) + " (epoch " +
                               std::to_string(p.log_epoch) + " after " +
                               std::to_string(max_epoch) + ")");
    }
    max_epoch = p.log_epoch;
  }

  // Pass 2: pick the newest checkpoint generation that verifies AND
  // decodes. Every damaged checkpoint-class record newer than the chosen
  // one is a generation fallback — recovery then replays the longer WAL
  // suffix behind the older image instead of failing.
  RecoveredState out;
  size_t start = 0;
  bool have_checkpoint = false;
  uint64_t checkpoint_slots_seen = 0;
  for (size_t i = parsed.size(); i-- > 0;) {
    if (parsed[i].cls != FrameClass::kCheckpoint) continue;
    ++checkpoint_slots_seen;
    if (parsed[i].valid) {
      Status decoded = DecodeCheckpointPayload(parsed[i].payload, &out.state);
      if (decoded.ok()) {
        start = i;
        have_checkpoint = true;
        out.checkpoint_lsn = parsed[i].lsn;
        break;
      }
      if (!opts_.framing) return decoded;  // legacy: propagate as before
    }
    ++out.checkpoint_fallbacks;
  }
  if (!have_checkpoint) {
    if (opts_.framing && checkpoint_slots_seen > 0) {
      return Status::Corrupted(
          "no recoverable checkpoint generation: all " +
          std::to_string(checkpoint_slots_seen) +
          " retained slot(s) failed verification");
    }
    return Status::Internal(
        "no checkpoint in the log: the mediator never started durably");
  }

  // Replay the suffix. The queue is rebuilt in a deque so commits can pop
  // consumed messages from the front while enqueues append at the back.
  std::deque<UpdateMessage> queue(out.state.queue.begin(),
                                  out.state.queue.end());
  bool txn_open = false;
  uint64_t open_txn_id = 0;
  uint64_t open_consumed = 0;
  auto roll_back_open = [&]() {
    // A begin whose commit/abort never became durable: the flushed messages
    // were never popped from the replay queue, so leaving them in place IS
    // the Requeue — order preserved, nothing lost.
    ++out.txns_rolled_back;
    out.msgs_requeued += open_consumed;
    txn_open = false;
  };
  for (size_t i = start + 1; i < parsed.size(); ++i) {
    if (opts_.framing && parsed[i].lsn != parsed[i - 1].lsn + 1) {
      // A hole in the LSN sequence: the device acknowledged record(s) that
      // never reached the read-back (lying fsync). Their effects cannot be
      // reconstructed and replaying around them would silently diverge.
      return Status::Corrupted(
          "WAL record(s) missing between LSN " +
          std::to_string(parsed[i - 1].lsn) + " and LSN " +
          std::to_string(parsed[i].lsn) + " (acked but not persisted)");
    }
    if (parsed[i].cls == FrameClass::kCheckpoint && opts_.framing) {
      // A newer-but-damaged generation (counted as a fallback in pass 2):
      // its complement magic identifies it as a checkpoint even though its
      // body failed verification, so it is skippable — the chosen older
      // generation plus this very suffix covers everything it held.
      continue;
    }
    if (!parsed[i].valid) {
      // Triage: a damaged run that reaches the end of the log is repairable
      // tail damage (torn/partial final appends — nothing after them ever
      // became durable). Damage FOLLOWED by a verifiable record means the
      // interior of the log is gone, and with it committed effects.
      bool tail = true;
      for (size_t j = i + 1; j < parsed.size(); ++j) {
        if (parsed[j].valid) {
          tail = false;
          break;
        }
      }
      if (tail) {
        out.tail_records_dropped = parsed.size() - i;
        break;
      }
      return Status::Corrupted("interior WAL corruption at LSN " +
                               std::to_string(parsed[i].lsn) +
                               " (damaged record precedes verified ones)");
    }
    ++out.records_replayed;
    BinaryReader r(parsed[i].payload);
    SQ_ASSIGN_OR_RETURN(uint8_t tag, r.GetU8());
    switch (tag) {
      case kEnqueue: {
        SQ_ASSIGN_OR_RETURN(UpdateMessage msg, DecodeUpdateMessage(&r));
        auto& src = out.state.sources[msg.source];
        if (msg.epoch > src.epoch) {
          // Defensive: live detection logs a resync-begin before any
          // newer-epoch message can reach the queue, so normally the epoch
          // was already raised.
          src.epoch = msg.epoch;
          src.last_update_seq = msg.seq;
        } else if (msg.epoch == src.epoch && msg.seq != 0 &&
                   msg.seq > src.last_update_seq) {
          src.last_update_seq = msg.seq;
        }
        queue.push_back(std::move(msg));
        break;
      }
      case kEnqueueCoalesced: {
        SQ_ASSIGN_OR_RETURN(UpdateMessage msg, DecodeUpdateMessage(&r));
        auto& src = out.state.sources[msg.source];
        if (msg.epoch > src.epoch) {
          src.epoch = msg.epoch;
          src.last_update_seq = msg.seq;
        } else if (msg.epoch == src.epoch && msg.seq != 0 &&
                   msg.seq > src.last_update_seq) {
          src.last_update_seq = msg.seq;
        }
        // The live queue merged this message into its tail; the replay
        // queue's tail is the same message (consumed-but-uncommitted
        // messages sit at the FRONT, and a coalesce is only recorded when
        // the live queue was non-empty), so mirror the merge here.
        if (queue.empty() || queue.back().source != msg.source) {
          return Status::Internal(
              "WAL replay: coalesced enqueue without a matching tail");
        }
        UpdateMessage& tail = queue.back();
        // Mirrors UpdateQueue::Enqueue's merge exactly (same inputs, same
        // smash) so recovered state matches the survivor's byte for byte.
        (void)tail.delta.SmashInPlace(msg.delta);
        tail.seq = msg.seq;
        tail.epoch = msg.epoch;
        tail.send_time = msg.send_time;
        break;
      }
      case kTxnBegin: {
        if (txn_open) roll_back_open();  // superseded by a later flush
        SQ_ASSIGN_OR_RETURN(open_txn_id, r.GetU64());
        SQ_ASSIGN_OR_RETURN(open_consumed, r.GetU64());
        if (open_consumed > queue.size()) {
          return Status::Internal("WAL replay: txn " +
                                  std::to_string(open_txn_id) +
                                  " consumed more messages than queued");
        }
        txn_open = true;
        break;
      }
      case kTxnCommit: {
        SQ_ASSIGN_OR_RETURN(uint64_t txn_id, r.GetU64());
        SQ_ASSIGN_OR_RETURN(uint64_t consumed, r.GetU64());
        if (!txn_open || txn_id != open_txn_id || consumed != open_consumed) {
          return Status::Internal("WAL replay: commit of txn " +
                                  std::to_string(txn_id) +
                                  " does not match the open begin");
        }
        queue.erase(queue.begin(),
                    queue.begin() + static_cast<ptrdiff_t>(consumed));
        SQ_ASSIGN_OR_RETURN(uint32_t ndeltas, r.GetU32());
        for (uint32_t d = 0; d < ndeltas; ++d) {
          SQ_ASSIGN_OR_RETURN(std::string node, r.GetString());
          SQ_ASSIGN_OR_RETURN(Delta delta, DecodeDelta(&r));
          auto it = out.state.repos.find(node);
          if (it == out.state.repos.end()) {
            return Status::Internal("WAL replay: commit delta for unknown "
                                    "repository " + node);
          }
          // The logged delta is exactly the narrowed delta the live
          // mediator applied, so a plain bag/set apply reproduces the
          // repository byte for byte.
          SQ_RETURN_IF_ERROR(ApplyDelta(&it->second, delta));
        }
        SQ_ASSIGN_OR_RETURN(uint32_t nreflect, r.GetU32());
        for (uint32_t s = 0; s < nreflect; ++s) {
          SQ_ASSIGN_OR_RETURN(std::string source, r.GetString());
          SQ_ASSIGN_OR_RETURN(Time send_time, r.GetTime());
          auto& src = out.state.sources[source];
          if (send_time > src.last_reflected_send) {
            src.last_reflected_send = send_time;
          }
        }
        SQ_ASSIGN_OR_RETURN(uint32_t nsrc_deltas, r.GetU32());
        for (uint32_t s = 0; s < nsrc_deltas; ++s) {
          SQ_ASSIGN_OR_RETURN(std::string source, r.GetString());
          SQ_ASSIGN_OR_RETURN(MultiDelta md, DecodeMultiDelta(&r));
          // Advance the resync mirror exactly as the live commit did
          // (untracked relations feed no VDP leaf and have no mirror).
          auto mit = out.state.mirrors.find(source);
          if (mit == out.state.mirrors.end()) continue;
          for (const auto& rel_name : md.RelationNames()) {
            auto rit = mit->second.find(rel_name);
            if (rit == mit->second.end()) continue;
            SQ_RETURN_IF_ERROR(ApplyDelta(&rit->second, *md.Find(rel_name)));
          }
        }
        if (txn_id >= out.state.next_txn_id) {
          out.state.next_txn_id = txn_id + 1;
        }
        txn_open = false;
        ++out.txns_replayed;
        break;
      }
      case kTxnAbort: {
        SQ_ASSIGN_OR_RETURN(uint64_t txn_id, r.GetU64());
        SQ_ASSIGN_OR_RETURN(uint8_t requeued, r.GetU8());
        if (!txn_open || txn_id != open_txn_id) {
          return Status::Internal("WAL replay: abort of txn " +
                                  std::to_string(txn_id) +
                                  " does not match the open begin");
        }
        if (!requeued) {
          // The live mediator dropped the batch (internal error path):
          // mirror it so recovered state matches the survivor's.
          queue.erase(queue.begin(),
                      queue.begin() + static_cast<ptrdiff_t>(open_consumed));
        }
        if (txn_id >= out.state.next_txn_id) {
          out.state.next_txn_id = txn_id + 1;
        }
        txn_open = false;
        break;
      }
      case kResyncBegin: {
        SQ_ASSIGN_OR_RETURN(std::string source, r.GetString());
        SQ_ASSIGN_OR_RETURN(uint64_t epoch, r.GetU64());
        auto& src = out.state.sources[source];
        if (epoch > src.epoch) src.epoch = epoch;
        src.health = 2;  // resyncing; recovery re-initiates the pull
        break;
      }
      case kResyncDone: {
        SQ_ASSIGN_OR_RETURN(std::string source, r.GetString());
        SQ_ASSIGN_OR_RETURN(uint64_t epoch, r.GetU64());
        SQ_ASSIGN_OR_RETURN(uint64_t last_seq, r.GetU64());
        auto& src = out.state.sources[source];
        if (epoch > src.epoch) src.epoch = epoch;
        src.last_update_seq = last_seq;
        src.health = 0;
        break;
      }
      case kShed: {
        // Re-run the deterministic oldest-coalesce on the rebuilt queue.
        // The merge is lossless (the two messages' deltas smash), so even
        // a shed the live mediator performed just before crashing leaves
        // recovered contents semantically identical.
        if (!UpdateQueue::CoalesceOldestIn(&queue,
                                           txn_open ? open_consumed : 0)) {
          return Status::Internal(
              "WAL replay: shed record with no coalescible pair");
        }
        break;
      }
      case kCheckpoint:
        return Status::Internal("WAL replay: checkpoint after the newest "
                                "checkpoint");
      default:
        return Status::Internal("WAL replay: unknown record tag " +
                                std::to_string(tag));
    }
  }
  if (txn_open) roll_back_open();
  out.state.queue.assign(queue.begin(), queue.end());
  // Re-anchor on what the log actually holds: the generation pointer sits
  // at the restored checkpoint, and subsequent frames carry a fresh log
  // incarnation so a resurfaced pre-crash tail can never splice in.
  prev_checkpoint_lsn_ = out.checkpoint_lsn;
  have_prev_checkpoint_ = true;
  log_epoch_ = max_epoch + 1;
  return out;
}

}  // namespace squirrel
