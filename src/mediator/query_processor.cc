#include "mediator/query_processor.h"

#include <set>

#include "common/cancel.h"
#include "common/strings.h"
#include "relational/operators.h"

namespace squirrel {

namespace {

std::vector<std::string> NeededAttrs(const Schema& schema,
                                     const ViewQuery& q) {
  std::set<std::string> needed(q.attrs.begin(), q.attrs.end());
  if (q.cond) q.cond->CollectAttrs(&needed);
  std::vector<std::string> out;
  for (const auto& a : schema.attrs()) {
    if (needed.count(a.name)) out.push_back(a.name);
  }
  return out;
}

}  // namespace

Result<ViewQuery> QueryProcessor::Normalize(const ViewQuery& q) const {
  SQ_ASSIGN_OR_RETURN(const VdpNode* node, vdp_->Get(q.relation));
  if (!node->exported) {
    return Status::InvalidArgument("relation " + q.relation +
                                   " is not an export relation of the view");
  }
  ViewQuery out = q;
  if (out.attrs.empty()) out.attrs = node->schema.AttributeNames();
  for (const auto& a : out.attrs) {
    if (!node->schema.Contains(a)) {
      return Status::NotFound("query attribute " + a + " not in " +
                              q.relation);
    }
  }
  if (out.cond) {
    for (const auto& a : out.cond->ReferencedAttrs()) {
      if (!node->schema.Contains(a)) {
        return Status::NotFound("query condition attribute " + a +
                                " not in " + q.relation);
      }
    }
  } else {
    out.cond = Expr::True();
  }
  return out;
}

Result<PreparedQuery> QueryProcessor::Prepare(const ViewQuery& raw) const {
  PreparedQuery out;
  SQ_ASSIGN_OR_RETURN(out.query, Normalize(raw));
  SQ_ASSIGN_OR_RETURN(const VdpNode* node, vdp_->Get(out.query.relation));
  out.needed = NeededAttrs(node->schema, out.query);
  return out;
}

Result<std::optional<VapPlan>> QueryProcessor::PlanFor(
    const PreparedQuery& q) const {
  if (vap_->RepoCovers(q.query.relation, q.needed)) {
    return std::optional<VapPlan>();
  }
  TempRequest req;
  req.node = q.query.relation;
  req.attrs = q.needed;
  req.cond = q.query.cond;
  SQ_ASSIGN_OR_RETURN(VapPlan plan, vap_->Plan({req}));
  return std::optional<VapPlan>(std::move(plan));
}

Result<QueryProcessor::LocalAnswer> QueryProcessor::AnswerFromRepo(
    const PreparedQuery& q, const StoreSnapshot* snap) const {
  SQ_RETURN_IF_ERROR(CheckCancel());
  SQ_ASSIGN_OR_RETURN(const Relation* repo,
                      snap != nullptr ? snap->Repo(q.query.relation)
                                      : store_->Repo(q.query.relation));
  SQ_ASSIGN_OR_RETURN(Relation selected, OpSelect(*repo, q.query.cond));
  SQ_ASSIGN_OR_RETURN(Relation projected,
                      OpProject(selected, q.query.attrs, Semantics::kBag));
  LocalAnswer out;
  out.data = projected.ToSet();
  return out;
}

Result<QueryProcessor::LocalAnswer> QueryProcessor::Answer(
    const PreparedQuery& q, const Vap::PollFn& poll,
    const Vap::CompensationFn& comp, const StoreSnapshot* snap) const {
  SQ_ASSIGN_OR_RETURN(std::optional<VapPlan> plan, PlanFor(q));
  if (!plan.has_value()) return AnswerFromRepo(q, snap);
  SQ_ASSIGN_OR_RETURN(TempStore temps, vap_->Execute(*plan, poll, comp, snap));
  SQ_ASSIGN_OR_RETURN(LocalAnswer out, AnswerWithTemps(q, temps, snap));
  out.polls = temps.polls;
  out.polled_tuples = temps.polled_tuples;
  return out;
}

Result<QueryProcessor::LocalAnswer> QueryProcessor::AnswerWithTemps(
    const PreparedQuery& q, const TempStore& temps,
    const StoreSnapshot* snap) const {
  // Phase boundary: a query cancelled during VAP assembly must not start
  // the final select/project pass. (AnswerDegraded deliberately does NOT
  // check — it serves cancelled queries their materialized fraction.)
  SQ_RETURN_IF_ERROR(CheckCancel());
  if (vap_->RepoCovers(q.query.relation, q.needed)) {
    return AnswerFromRepo(q, snap);
  }
  const TempStore::Entry* entry = temps.Find(q.query.relation);
  if (entry == nullptr || !temps.Covers(q.query.relation, q.needed)) {
    return Status::Internal("no temporary for query " + q.query.ToString());
  }
  // The temp is π_needed σ_cond(relation): project and re-select (the
  // temp's condition may be an OR-merge wider than this query's).
  SQ_ASSIGN_OR_RETURN(Relation selected, OpSelect(entry->data, q.query.cond));
  SQ_ASSIGN_OR_RETURN(Relation projected,
                      OpProject(selected, q.query.attrs, Semantics::kBag));
  LocalAnswer out;
  out.data = projected.ToSet();
  out.used_virtual = true;
  return out;
}

Result<QueryProcessor::LocalAnswer> QueryProcessor::AnswerDegraded(
    const PreparedQuery& q) const {
  const std::string& node = q.query.relation;
  if (!store_->HasRepo(node)) {
    return Status::Unavailable("degraded read impossible: " + node +
                               " materializes nothing");
  }
  std::set<std::string> mat;
  for (const auto& a : ann_->MaterializedAttrs(*vdp_, node)) mat.insert(a);
  LocalAnswer out;
  out.degraded = true;
  std::vector<std::string> avail;
  for (const auto& a : q.query.attrs) {
    if (mat.count(a)) {
      avail.push_back(a);
    } else {
      out.missing_attrs.push_back(a);
    }
  }
  if (avail.empty()) {
    return Status::Unavailable("degraded read impossible: none of [" +
                               Join(q.query.attrs, ", ") + "] of " + node +
                               " is materialized");
  }
  Expr::Ptr cond = q.query.cond;
  if (cond) {
    for (const auto& a : cond->ReferencedAttrs()) {
      if (!mat.count(a)) {
        cond = Expr::True();
        out.cond_dropped = true;
        break;
      }
    }
  }
  SQ_ASSIGN_OR_RETURN(const Relation* repo, store_->Repo(node));
  SQ_ASSIGN_OR_RETURN(Relation selected, OpSelect(*repo, cond));
  SQ_ASSIGN_OR_RETURN(Relation projected,
                      OpProject(selected, avail, Semantics::kBag));
  out.data = projected.ToSet();
  return out;
}

Result<std::optional<VapPlan>> QueryProcessor::PlanFor(
    const ViewQuery& q) const {
  // Legacy contract: input is already normalized; derive needed attrs only.
  SQ_ASSIGN_OR_RETURN(const VdpNode* node, vdp_->Get(q.relation));
  PreparedQuery prepared;
  prepared.query = q;
  prepared.needed = NeededAttrs(node->schema, q);
  return PlanFor(prepared);
}

Result<QueryProcessor::LocalAnswer> QueryProcessor::Answer(
    const ViewQuery& raw, const Vap::PollFn& poll,
    const Vap::CompensationFn& comp) const {
  SQ_ASSIGN_OR_RETURN(PreparedQuery q, Prepare(raw));
  return Answer(q, poll, comp);
}

Result<QueryProcessor::LocalAnswer> QueryProcessor::AnswerWithTemps(
    const ViewQuery& raw, const TempStore& temps) const {
  SQ_ASSIGN_OR_RETURN(PreparedQuery q, Prepare(raw));
  return AnswerWithTemps(q, temps);
}

}  // namespace squirrel
