// Mediator-as-a-source composition (the ShardPlan's glue).
//
// An ExportAnnouncer makes a child mediator's exported materialized nodes
// look to a parent mediator exactly like relations of one more autonomous
// SourceDb. It owns a MIRROR SourceDb (named after the child shard) with one
// relation per exported node and keeps it in lockstep with the child's
// repositories via the mediator's commit listener: every committed update
// transaction's narrowed node deltas are re-committed into the mirror within
// the same simulation event. The parent then wires the mirror through the
// stock SourceSetup path, so announcements (epoch-stamped, checksummed
// UpdateMessages), polls, snapshots, ARQ, and the suspect -> resyncing
// lifecycle are all reused verbatim — nothing in the parent knows it is
// talking to another mediator.
//
// Child crash/recovery maps onto the source-restart model: when the child
// recovers from its durable state, OnChildRecovered() bumps the mirror's
// epoch (Restart -> hello under a new incarnation) and commits a corrective
// delta re-basing the mirror onto the recovered repositories. Lossy storage
// may have rolled the child behind what the mirror already announced; the
// re-base makes subsequent child deltas strictly applicable again, and the
// parent's normal epoch-bump resync pulls a consistent snapshot.

#ifndef SQUIRREL_MEDIATOR_EXPORT_ANNOUNCER_H_
#define SQUIRREL_MEDIATOR_EXPORT_ANNOUNCER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "mediator/mediator.h"
#include "source/source_db.h"

namespace squirrel {

/// \brief Re-announces a child mediator's exports through a mirror SourceDb.
class ExportAnnouncer {
 public:
  /// Builds the adapter for \p child's exported \p nodes. Every node must be
  /// an exported, fully materialized node of the child's VDP (a virtual
  /// attribute has no delta stream to mirror). The mirror db is named
  /// \p name and seeded from the child's current repositories, so a parent
  /// mediator created afterwards initializes from the same state the child
  /// serves. Installs a commit listener on the child; \p child and
  /// \p scheduler must outlive the adapter.
  static Result<std::unique_ptr<ExportAnnouncer>> Create(
      Mediator* child, const std::string& name,
      const std::vector<std::string>& nodes, Scheduler* scheduler);

  /// The mirror database the parent consumes as an ordinary source.
  SourceDb* mirror() { return mirror_.get(); }

  /// Must be called right after the child's Recover() returns, in the same
  /// simulation event: bumps the mirror epoch (hello) and commits the
  /// corrective delta between the mirror's announced state and the child's
  /// recovered repositories. The parent reacts with its normal epoch-bump
  /// resync; no parent-side special casing exists.
  Status OnChildRecovered();

  /// Committed child transactions mirrored (those touching exported nodes).
  uint64_t commits_mirrored() const { return commits_mirrored_; }
  /// Corrective re-base commits issued by OnChildRecovered().
  uint64_t corrective_commits() const { return corrective_commits_; }

 private:
  ExportAnnouncer(Mediator* child, Scheduler* scheduler,
                  std::vector<std::string> nodes,
                  std::unique_ptr<SourceDb> mirror)
      : child_(child),
        scheduler_(scheduler),
        nodes_(std::move(nodes)),
        mirror_(std::move(mirror)) {}

  void OnChildCommit(Time now, const std::map<std::string, Delta>& deltas);

  Mediator* child_;
  Scheduler* scheduler_;
  std::vector<std::string> nodes_;
  std::unique_ptr<SourceDb> mirror_;
  uint64_t commits_mirrored_ = 0;
  uint64_t corrective_commits_ = 0;
};

}  // namespace squirrel

#endif  // SQUIRREL_MEDIATOR_EXPORT_ANNOUNCER_H_
