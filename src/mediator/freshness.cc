#include "mediator/freshness.h"

#include <algorithm>
#include <limits>

namespace squirrel {

std::vector<Time> FreshnessBound(const std::vector<DelayProfile>& profiles,
                                 const MediatorDelays& mediator,
                                 const std::vector<ContributorKind>& kinds) {
  Time poll_term = 0;
  for (const auto& p : profiles) {
    poll_term += p.q_proc_delay + 2 * p.comm_delay;
  }
  std::vector<Time> bound(profiles.size(), 0);
  for (size_t i = 0; i < profiles.size(); ++i) {
    if (kinds[i] == ContributorKind::kVirtual) {
      bound[i] = poll_term + mediator.q_proc_delay;
    } else {
      bound[i] = profiles[i].ann_delay + profiles[i].comm_delay +
                 mediator.u_hold_delay + mediator.u_proc_delay + poll_term;
    }
  }
  return bound;
}

FreshnessReport CheckFreshness(const Trace& trace,
                               const std::vector<DelayProfile>& profiles,
                               const MediatorDelays& mediator,
                               const std::vector<ContributorKind>& kinds,
                               const std::vector<const SourceDb*>& sources) {
  FreshnessReport report;
  std::vector<Time> bound = FreshnessBound(profiles, mediator, kinds);
  size_t n = profiles.size();
  // Per-source commit times for effective-staleness computation.
  std::vector<std::vector<Time>> commits(n);
  for (size_t i = 0; i < sources.size() && i < n; ++i) {
    if (sources[i] != nullptr) commits[i] = sources[i]->CommitTimes();
  }
  std::vector<Time> max_st(n, 0), sum_st(n, 0);
  std::vector<size_t> samples(n, 0);
  for (const auto& entry : trace.entries()) {
    if (entry.kind != TxnKind::kQuery) continue;
    for (size_t i = 0; i < n && i < entry.reflect.size(); ++i) {
      Time staleness = entry.commit_time - entry.reflect[i];
      if (!commits[i].empty()) {
        // The freshness witness extends forward until the source's next
        // commit after the reflected instant: effective staleness is how
        // far behind that divergence point the view is.
        auto it = std::upper_bound(commits[i].begin(), commits[i].end(),
                                   entry.reflect[i] + 1e-9);
        Time next_commit = it == commits[i].end()
                               ? std::numeric_limits<Time>::infinity()
                               : *it;
        staleness = std::max<Time>(0, entry.commit_time - next_commit);
      }
      max_st[i] = std::max(max_st[i], staleness);
      sum_st[i] += staleness;
      ++samples[i];
    }
  }
  for (size_t i = 0; i < n; ++i) {
    SourceFreshness sf;
    sf.source = i < trace.source_names().size() ? trace.source_names()[i]
                                                : std::to_string(i);
    sf.kind = kinds[i];
    sf.bound = bound[i];
    sf.max_staleness = max_st[i];
    sf.mean_staleness = samples[i] ? sum_st[i] / samples[i] : 0;
    sf.samples = samples[i];
    sf.within_bound = max_st[i] <= bound[i] + 1e-9;
    if (!sf.within_bound) report.all_within_bound = false;
    report.per_source.push_back(sf);
  }
  return report;
}

std::vector<SourceStaleness> AnnotateStaleness(
    const std::vector<std::string>& names,
    const std::vector<ContributorKind>& kinds, const TimeVector& reflect,
    Time now, const std::vector<bool>& down) {
  std::vector<SourceStaleness> out;
  const size_t n = names.size();
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    SourceStaleness s;
    s.source = names[i];
    const bool materialized =
        i < kinds.size() && kinds[i] != ContributorKind::kVirtual;
    const Time r = i < reflect.size() ? reflect[i] : now;
    s.staleness = materialized ? std::max<Time>(0, now - r) : 0;
    s.down = i < down.size() && down[i];
    out.push_back(std::move(s));
  }
  return out;
}

}  // namespace squirrel
