// The mediator's local store (paper §4): one repository per VDP node with at
// least one materialized attribute, holding the node's materialized
// projection π_mat(node contents) with the node's semantics (bag for SPJ/
// union nodes, set for difference nodes).

#ifndef SQUIRREL_MEDIATOR_LOCAL_STORE_H_
#define SQUIRREL_MEDIATOR_LOCAL_STORE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "common/memory_budget.h"
#include "common/status.h"
#include "delta/delta.h"
#include "relational/index.h"
#include "relational/relation.h"
#include "sim/clock.h"
#include "vdp/annotation.h"
#include "vdp/vdp.h"

namespace squirrel {

/// \brief An immutable, versioned view of every repository (MVCC reads).
///
/// A snapshot is published by the store's single writer after a transaction
/// commits and is tagged with the commit's `reflect` time vector. Readers
/// holding a StoreSnapshotPtr see exactly the committed state at that
/// version — byte for byte, no matter what the writer does afterwards —
/// because the snapshot shares the per-node Relation objects copy-on-write:
/// the writer never mutates a Relation that a published snapshot points to.
class StoreSnapshot {
 public:
  StoreSnapshot() = default;
  /// Returns the bytes this snapshot's fresh relation copies charged
  /// against the memory budget when it was published.
  ~StoreSnapshot();
  StoreSnapshot(const StoreSnapshot&) = delete;
  StoreSnapshot& operator=(const StoreSnapshot&) = delete;

  /// Monotonically increasing publish version (1, 2, ...).
  uint64_t version() const { return version_; }
  /// The reflect vector of the commit this snapshot captured.
  const TimeVector& reflect() const { return reflect_; }

  /// True iff \p node has a repository in this snapshot.
  bool HasRepo(const std::string& node) const {
    return repos_.count(node) > 0;
  }
  /// The repository of \p node at this version; NotFound otherwise.
  Result<const Relation*> Repo(const std::string& node) const;

 private:
  friend class LocalStore;
  uint64_t version_ = 0;
  TimeVector reflect_;
  std::map<std::string, std::shared_ptr<const Relation>> repos_;
  // Memory-budget accounting (DESIGN.md §15): bytes of the fresh COW copies
  // this publish made (shared relations were charged by the snapshot that
  // first copied them).
  MemoryBudget* budget_ = nullptr;
  size_t budget_bytes_ = 0;
};

using StoreSnapshotPtr = std::shared_ptr<const StoreSnapshot>;

/// \brief Repositories for the materialized portion of an annotated VDP.
class LocalStore {
 public:
  /// Creates empty repositories per \p vdp and \p ann (neither owned; both
  /// must outlive the store). Leaves and fully virtual nodes get none.
  /// When \p enable_indexes is set, an index-advisor pass over the VDP's
  /// terms registers the equi-join attribute sets that rule firing and VAP
  /// key-based construction probe, and every registered index is kept in
  /// lock-step with its repository from then on.
  LocalStore(const Vdp* vdp, const Annotation* ann,
             bool enable_indexes = true);

  /// True iff \p node has a repository (>= 1 materialized attribute).
  bool HasRepo(const std::string& node) const;

  /// The repository of \p node; NotFound for virtual nodes/leaves.
  Result<const Relation*> Repo(const std::string& node) const;

  /// Mutable repository access (initial load). Direct mutation bypasses
  /// index maintenance; callers must RebuildIndexes(node) afterwards.
  Result<Relation*> MutableRepo(const std::string& node);

  /// Rebuilds every registered index on \p node from its repository.
  Status RebuildIndexes(const std::string& node);

  /// Replaces the repository contents of \p node. The relation's attribute
  /// names must equal the node's materialized attributes.
  Status SetRepo(const std::string& node, Relation contents);

  /// Applies a full-attribute node delta to the repository, narrowing it to
  /// the materialized attributes first (bag projection commutes with apply).
  /// For set nodes the delta must already be a presence delta.
  Status ApplyNodeDelta(const std::string& node, const Delta& full_delta);

  /// Observer invoked by ApplyNodeDelta after a successful apply with the
  /// NARROWED delta (the exact change the repository absorbed). The write-
  /// ahead log records these to make update commits replayable; replaying
  /// the narrowed delta against the pre-state reproduces the repository
  /// byte for byte.
  using ApplyListener =
      std::function<void(const std::string& node, const Delta& narrowed)>;

  /// Installs (or clears, with nullptr) the apply listener.
  void SetApplyListener(ApplyListener listener) {
    apply_listener_ = std::move(listener);
  }

  /// Names of nodes with repositories, in VDP topological order.
  std::vector<std::string> MaterializedNodes() const;

  /// Total approximate bytes across repositories (space measurements,
  /// experiments E2/E10).
  size_t ApproxBytes() const;

  /// The VDP this store serves.
  const Vdp& vdp() const { return *vdp_; }
  /// The annotation this store serves.
  const Annotation& annotation() const { return *ann_; }

  /// Whether persistent indexes are maintained.
  bool indexes_enabled() const { return indexes_enabled_; }
  /// The persistent index registry (empty when indexes are disabled).
  const IndexManager& indexes() const { return indexes_; }

  // ---- MVCC snapshots -----------------------------------------------------
  //
  // Threading contract: exactly one writer thread mutates the repositories
  // (MutableRepo/SetRepo/ApplyNodeDelta) and calls PublishSnapshot; any
  // number of reader threads may call Snapshot() concurrently and read
  // through the returned pointer without further synchronization.

  /// The latest published snapshot (nullptr before the first publish).
  /// Thread-safe against a concurrent PublishSnapshot.
  StoreSnapshotPtr Snapshot() const;

  /// Publishes the current repository contents as a new immutable snapshot
  /// tagged with \p reflect, copy-on-write: only nodes dirtied since the
  /// previous publish get fresh Relation copies; clean nodes share the
  /// previous snapshot's objects. Returns the new snapshot.
  StoreSnapshotPtr PublishSnapshot(TimeVector reflect);

  /// Version the next PublishSnapshot will assign, minus one (0 before any
  /// publish). Checkpointed in HardState so recovery resumes the chain.
  uint64_t SnapshotVersion() const;

  /// Fast-forwards the version counter so the next publish is > \p version.
  /// Recovery calls this with the checkpointed version before republishing.
  void EnsureSnapshotVersionAtLeast(uint64_t version);

  /// Snapshots still pinned by at least one reader (includes the latest).
  /// Superseded snapshots are freed by shared_ptr refcount the moment the
  /// last reader unpins them; this just reports — and prunes — the
  /// registry of weak references used to observe that GC.
  std::vector<StoreSnapshotPtr> LiveSnapshots() const;

 private:
  const Vdp* vdp_;
  const Annotation* ann_;
  bool indexes_enabled_;
  std::map<std::string, Relation> repos_;
  IndexManager indexes_;
  ApplyListener apply_listener_;

  // Guards latest_/next_snapshot_version_/retained_ (writer publishes while
  // readers grab Snapshot()). repos_ itself needs no lock: only the writer
  // touches it, and snapshots never alias live repository objects.
  mutable std::mutex snap_mu_;
  StoreSnapshotPtr latest_;
  uint64_t next_snapshot_version_ = 1;
  /// Nodes mutated since the last publish (copy-on-write working set).
  std::set<std::string> dirty_;
  /// Weak registry of every published snapshot, for LiveSnapshots().
  mutable std::vector<std::weak_ptr<const StoreSnapshot>> retained_;
};

}  // namespace squirrel

#endif  // SQUIRREL_MEDIATOR_LOCAL_STORE_H_
