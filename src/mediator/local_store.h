// The mediator's local store (paper §4): one repository per VDP node with at
// least one materialized attribute, holding the node's materialized
// projection π_mat(node contents) with the node's semantics (bag for SPJ/
// union nodes, set for difference nodes).

#ifndef SQUIRREL_MEDIATOR_LOCAL_STORE_H_
#define SQUIRREL_MEDIATOR_LOCAL_STORE_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "delta/delta.h"
#include "relational/index.h"
#include "relational/relation.h"
#include "vdp/annotation.h"
#include "vdp/vdp.h"

namespace squirrel {

/// \brief Repositories for the materialized portion of an annotated VDP.
class LocalStore {
 public:
  /// Creates empty repositories per \p vdp and \p ann (neither owned; both
  /// must outlive the store). Leaves and fully virtual nodes get none.
  /// When \p enable_indexes is set, an index-advisor pass over the VDP's
  /// terms registers the equi-join attribute sets that rule firing and VAP
  /// key-based construction probe, and every registered index is kept in
  /// lock-step with its repository from then on.
  LocalStore(const Vdp* vdp, const Annotation* ann,
             bool enable_indexes = true);

  /// True iff \p node has a repository (>= 1 materialized attribute).
  bool HasRepo(const std::string& node) const;

  /// The repository of \p node; NotFound for virtual nodes/leaves.
  Result<const Relation*> Repo(const std::string& node) const;

  /// Mutable repository access (initial load). Direct mutation bypasses
  /// index maintenance; callers must RebuildIndexes(node) afterwards.
  Result<Relation*> MutableRepo(const std::string& node);

  /// Rebuilds every registered index on \p node from its repository.
  Status RebuildIndexes(const std::string& node);

  /// Replaces the repository contents of \p node. The relation's attribute
  /// names must equal the node's materialized attributes.
  Status SetRepo(const std::string& node, Relation contents);

  /// Applies a full-attribute node delta to the repository, narrowing it to
  /// the materialized attributes first (bag projection commutes with apply).
  /// For set nodes the delta must already be a presence delta.
  Status ApplyNodeDelta(const std::string& node, const Delta& full_delta);

  /// Observer invoked by ApplyNodeDelta after a successful apply with the
  /// NARROWED delta (the exact change the repository absorbed). The write-
  /// ahead log records these to make update commits replayable; replaying
  /// the narrowed delta against the pre-state reproduces the repository
  /// byte for byte.
  using ApplyListener =
      std::function<void(const std::string& node, const Delta& narrowed)>;

  /// Installs (or clears, with nullptr) the apply listener.
  void SetApplyListener(ApplyListener listener) {
    apply_listener_ = std::move(listener);
  }

  /// Names of nodes with repositories, in VDP topological order.
  std::vector<std::string> MaterializedNodes() const;

  /// Total approximate bytes across repositories (space measurements,
  /// experiments E2/E10).
  size_t ApproxBytes() const;

  /// The VDP this store serves.
  const Vdp& vdp() const { return *vdp_; }
  /// The annotation this store serves.
  const Annotation& annotation() const { return *ann_; }

  /// Whether persistent indexes are maintained.
  bool indexes_enabled() const { return indexes_enabled_; }
  /// The persistent index registry (empty when indexes are disabled).
  const IndexManager& indexes() const { return indexes_; }

 private:
  const Vdp* vdp_;
  const Annotation* ann_;
  bool indexes_enabled_;
  std::map<std::string, Relation> repos_;
  IndexManager indexes_;
  ApplyListener apply_listener_;
};

}  // namespace squirrel

#endif  // SQUIRREL_MEDIATOR_LOCAL_STORE_H_
