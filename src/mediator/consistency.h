// Consistency checking (paper §3, Theorem 7.1).
//
// The checker independently re-evaluates the view definition against the
// source databases' state histories at the reflect times a mediator trace
// claims, and verifies the three consistency conditions:
//   validity    state(V, t) = ν(state(DB, reflect(t)))
//   chronology  reflect(t)_i <= t
//   order       t1 <= t2  =>  reflect(t1) <= reflect(t2)
// It also provides the pseudo-consistency test of Remark 3.1 so the Figure 2
// scenario (pseudo-consistent but NOT consistent) is reproducible.

#ifndef SQUIRREL_MEDIATOR_CONSISTENCY_H_
#define SQUIRREL_MEDIATOR_CONSISTENCY_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "mediator/trace.h"
#include "relational/algebra.h"
#include "source/source_db.h"
#include "vdp/annotation.h"
#include "vdp/vdp.h"

namespace squirrel {

/// Outcome of checking a trace.
struct ConsistencyReport {
  bool validity_ok = true;
  bool chronology_ok = true;
  bool order_ok = true;
  size_t entries_checked = 0;
  size_t relations_compared = 0;
  std::vector<std::string> violations;  ///< human-readable findings

  /// True iff all three conditions held.
  bool consistent() const {
    return validity_ok && chronology_ok && order_ok;
  }
};

/// \brief Verifies mediator traces against source histories.
class ConsistencyChecker {
 public:
  /// \param sources in the mediator's source order (matching the reflect
  ///        vectors in the trace). Pointers not owned.
  ConsistencyChecker(const Vdp* vdp, const Annotation* ann,
                     std::vector<const SourceDb*> sources)
      : vdp_(vdp), ann_(ann), sources_(std::move(sources)) {}

  /// Recomputes node \p node from scratch using source states at the given
  /// per-source times (full attributes, annotation ignored).
  Result<Relation> EvalNodeAt(const std::string& node,
                              const TimeVector& at) const;

  /// Checks every entry of \p trace:
  ///  - update/init entries: each repository snapshot must equal the
  ///    materialized projection of the recomputed node;
  ///  - query entries: the recorded answer must equal the recomputed one;
  ///  - chronology and order over the reflect vectors.
  ///
  /// \param order_resets sorted times at which the order-preservation
  ///        watermark resets. A mediator recovering on storage that can lose
  ///        acknowledged writes (torn/dropped WAL tail) legitimately resumes
  ///        from an OLDER reflect vector — the loss is repaired by
  ///        anti-entropy resync, not by time travel — so runs with disk
  ///        faults pass their recovery times here. Order must still be
  ///        preserved within each incarnation, and chronology and validity
  ///        are always checked across the boundary.
  Result<ConsistencyReport> Check(const Trace& trace,
                                  const std::vector<Time>& order_resets =
                                      {}) const;

 private:
  const Vdp* vdp_;
  const Annotation* ann_;
  std::vector<const SourceDb*> sources_;
};

/// A view-state observation for the standalone single-source scenario tests
/// (Remark 3.1 / Figure 2).
struct ViewObservation {
  Time time;
  Relation state;
};

/// Remark 3.1's *pseudo-consistency*: for each pair of observations
/// t1 <= t2 there exist source times t1' <= t2' (each <= its observation)
/// whose view evaluations match. Witness times may differ between pairs.
Result<bool> IsPseudoConsistent(const SourceDb& db,
                                const AlgebraExpr::Ptr& view_def,
                                const std::vector<ViewObservation>& obs);

/// Full consistency for the same setting: one monotone witness assignment
/// must cover ALL observations (greedy over the commit history).
Result<bool> IsScenarioConsistent(const SourceDb& db,
                                  const AlgebraExpr::Ptr& view_def,
                                  const std::vector<ViewObservation>& obs);

}  // namespace squirrel

#endif  // SQUIRREL_MEDIATOR_CONSISTENCY_H_
