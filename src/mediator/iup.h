// The Incremental Update Processor (paper §6.4).
//
// The Kernel Algorithm traverses the VDP once, leaves to exports, in
// topological order: each node's accumulated delta is fired toward its
// parents (with sibling repositories in their current — old or new — state,
// which is what makes Example 6.1 come out right) and only then applied to
// the node's own repository.
//
// The general algorithm wraps the kernel with the three phases of §6.4:
//  (a) IUP Preparation — simulate which rules will fire and collect the
//      projections of virtual/hybrid relations the kernel will need;
//  (b) populate those temporaries via the VAP (with Eager Compensation
//      against both the in-flight batch and the queue);
//  (c) run the kernel with temporaries standing in for virtual data,
//      keeping them up to date as nodes are processed.

#ifndef SQUIRREL_MEDIATOR_IUP_H_
#define SQUIRREL_MEDIATOR_IUP_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "delta/delta.h"
#include "mediator/local_store.h"
#include "mediator/vap.h"
#include "vdp/rules.h"
#include "vdp/vdp.h"

namespace squirrel {

class ThreadPool;

/// Counters describing one IUP run.
///
/// Threading contract: IupStats is plain data with no internal
/// synchronization. The parallel kernel never lets workers touch a shared
/// instance — counters are derived on the coordinator thread from each
/// firing's returned contribution and folded in with Merge(), in serial
/// order, so stats are byte-identical between serial and threaded runs.
struct IupStats {
  uint64_t rules_fired = 0;       ///< edge-rule firings with non-empty input
  uint64_t atoms_in = 0;          ///< delta atoms entering at the leaves
  uint64_t atoms_propagated = 0;  ///< delta atoms produced across all edges
  uint64_t nodes_processed = 0;   ///< non-leaf nodes with non-empty deltas
  uint64_t polls = 0;             ///< source polls (phase b)
  uint64_t polled_tuples = 0;     ///< tuples fetched from sources
  uint64_t temps_built = 0;       ///< temporaries materialized (phase b)
  uint64_t poll_retries = 0;      ///< re-polls after timeouts (fault paths)

  /// Accumulates another run's counters.
  void Merge(const IupStats& other);
};

/// \brief Propagates batched source deltas through an annotated VDP.
class Iup {
 public:
  /// \param vdp, ann, vap not owned; \p store not owned but mutated.
  Iup(const Vdp* vdp, const Annotation* ann, LocalStore* store,
      const Vap* vap)
      : vdp_(vdp), ann_(ann), store_(store), vap_(vap) {}

  /// Phase (a): the temporary relations the kernel will need to process
  /// \p leaf_deltas (keyed by leaf *node* name). Conservative above the
  /// leaf-parents (a node is considered affected if any child is), exact at
  /// the leaf-parents (their deltas are actually filtered).
  Result<std::vector<TempRequest>> PrepareTempRequests(
      const std::map<std::string, Delta>& leaf_deltas) const;

  /// Phases (a)+(b)+(c): the general IUP algorithm.
  Result<IupStats> ProcessBatch(const std::map<std::string, Delta>& leaf_deltas,
                                const Vap::PollFn& poll,
                                const Vap::CompensationFn& comp);

  /// Phase (c) only: the Kernel Algorithm with caller-provided temporaries
  /// (pass an empty TempStore in the fully-materialized-support case).
  Result<IupStats> RunKernel(const std::map<std::string, Delta>& leaf_deltas,
                             TempStore* temps);

  /// Arms (non-null pool with >= 1 worker) or disarms (nullptr) the parallel
  /// kernel. The pool is not owned and must outlive the Iup. With no pool —
  /// or a 0-worker pool — RunKernel is the deterministic serial oracle.
  ///
  /// The parallel kernel is equivalent by construction: nodes at the same
  /// VDP level whose parent sets are disjoint fire concurrently (firings
  /// only READ sibling/self state, which no wave member mutates), while
  /// every write — merging contributions into pending ΔR repositories and
  /// applying deltas to store/temporaries — stays on the calling thread, in
  /// exactly the serial kernel's order. See DESIGN.md §11.
  void SetThreadPool(ThreadPool* pool) { pool_ = pool; }

  /// The pool driving the parallel kernel (nullptr in serial mode).
  ThreadPool* thread_pool() const { return pool_; }

 private:
  Result<IupStats> RunKernelSerial(
      const std::map<std::string, Delta>& leaf_deltas, TempStore* temps,
      const NodeStateFn& states, const IndexProbeFn& probes);
  Result<IupStats> RunKernelParallel(
      const std::map<std::string, Delta>& leaf_deltas, TempStore* temps,
      const NodeStateFn& states, const IndexProbeFn& probes);

  /// Level of each node: 0 for leaves, 1 + max(children) otherwise. There
  /// are no VDP edges within a level, so a level-L node's firing can never
  /// feed another level-L node's pending delta.
  std::map<std::string, int> NodeLevels() const;

  const Vdp* vdp_;
  const Annotation* ann_;
  LocalStore* store_;
  const Vap* vap_;
  ThreadPool* pool_ = nullptr;
};

}  // namespace squirrel

#endif  // SQUIRREL_MEDIATOR_IUP_H_
