#include "mediator/shard_plan.h"

#include <algorithm>
#include <set>

namespace squirrel {

namespace {

/// Sorts node names by base-VDP topological position (deterministic order
/// for exports/imports regardless of the set they were collected into).
void SortTopo(const Vdp& base, std::vector<std::string>* names) {
  std::map<std::string, size_t> pos;
  for (size_t i = 0; i < base.TopoOrder().size(); ++i) {
    pos[base.TopoOrder()[i]] = i;
  }
  std::sort(names->begin(), names->end(),
            [&pos](const std::string& a, const std::string& b) {
              return pos.at(a) < pos.at(b);
            });
}

void AddUnique(std::vector<std::string>* v, const std::string& s) {
  if (std::find(v->begin(), v->end(), s) == v->end()) v->push_back(s);
}

}  // namespace

Result<ShardPlan> ShardPlan::Build(const Vdp& base,
                                   std::vector<ShardSpec> specs) {
  SQ_RETURN_IF_ERROR(base.Validate());
  if (specs.empty()) {
    return Status::InvalidArgument("shard plan: no shards");
  }

  // Shard names must be unique and must not collide with base node names or
  // base source-db names (a shard's name becomes its mirror db's name).
  std::map<std::string, size_t> by_name;
  for (size_t i = 0; i < specs.size(); ++i) {
    if (specs[i].name.empty()) {
      return Status::InvalidArgument("shard plan: empty shard name");
    }
    if (!by_name.emplace(specs[i].name, i).second) {
      return Status::InvalidArgument("shard plan: duplicate shard " +
                                     specs[i].name);
    }
    if (base.Contains(specs[i].name)) {
      return Status::InvalidArgument("shard plan: shard name collides with "
                                     "VDP node " + specs[i].name);
    }
  }
  for (const auto& leaf : base.LeafNames()) {
    const std::string& db = base.Find(leaf)->source_db;
    if (by_name.count(db)) {
      return Status::InvalidArgument("shard plan: shard name collides with "
                                     "source db " + db);
    }
  }

  // Parent pointers must form a tree with exactly one root.
  size_t root_count = 0;
  std::map<std::string, size_t> depth;
  for (const auto& s : specs) {
    if (s.parent.empty()) {
      ++root_count;
      continue;
    }
    if (!by_name.count(s.parent)) {
      return Status::InvalidArgument("shard plan: shard " + s.name +
                                     " names unknown parent " + s.parent);
    }
  }
  if (root_count != 1) {
    return Status::InvalidArgument("shard plan: need exactly one root shard");
  }
  for (const auto& s : specs) {
    size_t d = 0;
    const ShardSpec* cur = &s;
    while (!cur->parent.empty()) {
      if (++d > specs.size()) {
        return Status::InvalidArgument(
            "shard plan: parent cycle through shard " + s.name);
      }
      cur = &specs[by_name.at(cur->parent)];
    }
    depth[s.name] = d;
  }

  // The specs must partition the base VDP's derived nodes exactly.
  std::map<std::string, std::string> owner;  // derived node -> shard
  for (const auto& s : specs) {
    for (const auto& n : s.nodes) {
      const VdpNode* node = base.Find(n);
      if (node == nullptr || node->is_leaf) {
        return Status::InvalidArgument("shard plan: " + s.name +
                                       " claims non-derived node " + n);
      }
      if (!owner.emplace(n, s.name).second) {
        return Status::InvalidArgument("shard plan: node " + n +
                                       " owned by two shards");
      }
    }
  }
  for (const auto& n : base.DerivedNames()) {
    if (!owner.count(n)) {
      return Status::InvalidArgument("shard plan: derived node " + n +
                                     " owned by no shard");
    }
  }

  // Each shard's owned nodes must be a connected region of the dag
  // (undirected connectivity over def edges between owned nodes).
  for (const auto& s : specs) {
    if (s.nodes.size() <= 1) continue;
    std::set<std::string> mine(s.nodes.begin(), s.nodes.end());
    std::set<std::string> seen;
    std::vector<std::string> frontier{s.nodes.front()};
    seen.insert(s.nodes.front());
    while (!frontier.empty()) {
      std::string v = frontier.back();
      frontier.pop_back();
      // Undirected step: owned children of v, and owned parents of v.
      std::vector<std::string> adj = base.Find(v)->def->Children();
      for (const auto& p : base.Parents(v)) adj.push_back(p);
      for (const auto& a : adj) {
        if (mine.count(a) && seen.insert(a).second) frontier.push_back(a);
      }
    }
    if (seen.size() != mine.size()) {
      return Status::InvalidArgument("shard plan: shard " + s.name +
                                     " owns a disconnected region");
    }
  }

  ShardPlan plan;
  plan.base_ = base;
  std::map<std::string, Shard> shards;
  for (const auto& s : specs) {
    Shard sh;
    sh.name = s.name;
    sh.parent = s.parent;
    sh.owned = s.nodes;
    SortTopo(base, &sh.owned);
    shards.emplace(s.name, std::move(sh));
  }

  // Propagates node `n` (owned by `from`) up the shard tree to `to`:
  // exported at the owner and every intermediate, imported at every shard
  // above the owner, with the provider being the next shard down the path.
  auto propagate = [&](const std::string& n, const std::string& from,
                       const std::string& to) -> Status {
    // Collect the owner's ancestor chain and check `to` is on it.
    std::vector<std::string> chain{from};
    while (chain.back() != to) {
      const std::string& parent = specs[by_name.at(chain.back())].parent;
      if (parent.empty()) {
        return Status::InvalidArgument(
            "shard plan: shard " + to + " needs node " + n +
            " owned by non-descendant shard " + from);
      }
      chain.push_back(parent);
    }
    for (size_t i = 0; i + 1 < chain.size(); ++i) {
      AddUnique(&shards.at(chain[i]).exports, n);
      Shard& up = shards.at(chain[i + 1]);
      AddUnique(&up.imports, n);
      up.providers[n] = chain[i];
    }
    return Status::OK();
  };

  // Cut edges: a derived child owned elsewhere must flow up from its owner.
  for (const auto& s : specs) {
    for (const auto& n : s.nodes) {
      for (const auto& c : base.Find(n)->def->Children()) {
        const VdpNode* child = base.Find(c);
        if (child->is_leaf) continue;
        if (owner.at(c) != s.name) {
          SQ_RETURN_IF_ERROR(propagate(c, owner.at(c), s.name));
        }
      }
    }
  }
  // Base exports flow to the root, which serves them to queries.
  std::string root_name;
  for (const auto& s : specs) {
    if (s.parent.empty()) root_name = s.name;
  }
  for (const auto& e : base.ExportNames()) {
    if (owner.at(e) != root_name) {
      SQ_RETURN_IF_ERROR(propagate(e, owner.at(e), root_name));
    }
    AddUnique(&shards.at(root_name).exports, e);
  }

  // Synthesized "<node>@in" leaf names must be free in the base namespace.
  for (const auto& [name, sh] : shards) {
    (void)name;
    for (const auto& x : sh.imports) {
      if (base.Contains(x + "@in")) {
        return Status::InvalidArgument(
            "shard plan: base VDP already contains a node named " + x +
            "@in");
      }
    }
  }

  // Emit children-first (depth descending; stable within a depth by spec
  // order), root last.
  std::vector<std::string> order;
  for (const auto& s : specs) order.push_back(s.name);
  std::stable_sort(order.begin(), order.end(),
                   [&depth](const std::string& a, const std::string& b) {
                     return depth.at(a) > depth.at(b);
                   });
  for (const auto& name : order) {
    Shard sh = std::move(shards.at(name));
    SortTopo(base, &sh.exports);
    SortTopo(base, &sh.imports);
    plan.shards_.push_back(std::move(sh));
  }
  return plan;
}

const Shard* ShardPlan::Find(const std::string& name) const {
  for (const auto& s : shards_) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

Result<std::pair<Vdp, Annotation>> ShardPlan::BuildVdp(
    const Shard& shard, const Annotation& base_ann) const {
  Vdp v;
  std::set<std::string> exports(shard.exports.begin(), shard.exports.end());
  std::set<std::string> owned(shard.owned.begin(), shard.owned.end());

  // Imports first: each becomes a leaf over the provider's mirror relation
  // plus an identity derived node under the base name, so owned defs (and
  // queries at the root) apply unchanged.
  for (const auto& x : shard.imports) {
    const VdpNode* bn = base_.Find(x);
    const std::string leaf = x + "@in";
    SQ_RETURN_IF_ERROR(
        v.AddLeaf(leaf, shard.providers.at(x), x, bn->schema));
    ChildTerm term;
    term.child = leaf;
    term.project = bn->schema.AttributeNames();
    SQ_RETURN_IF_ERROR(v.AddDerived(
        x, NodeDef::Spj({term}, {}, {}, nullptr), exports.count(x) > 0));
  }

  // Owned nodes in base topo order, materializing base leaves on demand.
  for (const auto& name : base_.TopoOrder()) {
    if (!owned.count(name)) continue;
    const VdpNode* bn = base_.Find(name);
    for (const auto& c : bn->def->Children()) {
      const VdpNode* bc = base_.Find(c);
      if (bc->is_leaf && !v.Contains(c)) {
        SQ_RETURN_IF_ERROR(
            v.AddLeaf(c, bc->source_db, bc->source_relation, bc->schema));
      }
      if (!v.Contains(c)) {
        return Status::Internal("shard " + shard.name + ": node " + name +
                                " child " + c + " neither owned nor imported");
      }
    }
    SQ_RETURN_IF_ERROR(v.AddDerived(name, *bn->def, exports.count(name) > 0));
  }

  // Annotation: copy base modes attribute-by-attribute; a non-root shard's
  // exports are forced fully materialized (announced deltas need the full
  // extent in the repository). The root keeps base modes on its exports so
  // query-time behavior matches the unsharded mediator.
  Annotation ann;
  for (const auto& name : v.DerivedNames()) {
    if (!shard.is_root() && exports.count(name)) continue;  // default = m
    const VdpNode* node = v.Find(name);
    for (const auto& attr : node->schema.AttributeNames()) {
      ann.Set(name, attr, base_ann.ModeOf(name, attr));
    }
  }
  SQ_RETURN_IF_ERROR(v.Validate());
  SQ_RETURN_IF_ERROR(ann.Validate(v));
  return std::make_pair(std::move(v), std::move(ann));
}

}  // namespace squirrel
