// Queries against the integrated view, and their results.

#ifndef SQUIRREL_MEDIATOR_QUERY_H_
#define SQUIRREL_MEDIATOR_QUERY_H_

#include <string>
#include <vector>

#include "common/query_class.h"
#include "common/status.h"
#include "relational/expr.h"
#include "relational/relation.h"
#include "sim/clock.h"

namespace squirrel {

/// A view query q = π_attrs σ_cond(export relation) (paper §6.3's (R, A, f)
/// form, which is the fragment the QP/VAP machinery is specified over).
struct ViewQuery {
  std::string relation;             ///< an export relation of the VDP
  std::vector<std::string> attrs;   ///< projection list (empty = all attrs)
  Expr::Ptr cond;                   ///< selection (null = true)

  // ---- overload protection (DESIGN.md §15) ----
  /// Absolute sim-time deadline; 0 = none. A query that cannot be answered
  /// by its deadline resolves with kDeadlineExceeded (or, with
  /// degraded_reads, the materialized fraction annotated with staleness).
  Time deadline = 0;
  /// Service class for admission control.
  QueryClass qclass = QueryClass::kInteractive;

  /// Renders e.g. "project[r3,s1](select[r3 < 100](T))". Deadline and class
  /// are appended only when set off-default, preserving legacy trace bytes.
  std::string ToString() const;
};

/// Parses "project[a, b](select[c < 5](T))" / "select[...](T)" / "T" into a
/// ViewQuery (single-relation πσ forms only).
Result<ViewQuery> ParseViewQuery(const std::string& text);

/// Per-source staleness annotation attached to degraded answers: how far
/// behind the live source the materialized data backing the answer may be.
struct SourceStaleness {
  std::string source;
  Time staleness = 0;  ///< answer time minus the source's reflect entry
  bool down = false;   ///< quarantined or resyncing when the answer formed

  std::string ToString() const;
};

/// The answer to a view query.
struct ViewAnswer {
  Relation data;              ///< set semantics (the view language is
                              ///< set-based; duplicates are merged)
  bool used_virtual = false;  ///< true iff the VAP had to run
  size_t polls = 0;           ///< source polls performed for this query
  Time commit_time = 0;       ///< query transaction commit time
  TimeVector reflect;         ///< reflect vector (paper §6.1), one entry
                              ///< per source in mediator source order
  // ---- degraded reads (MediatorOptions::degraded_reads) ----
  /// True iff this answer was served from materialized data while one or
  /// more needed sources were down, instead of failing with kUnavailable.
  /// Degraded answers carry no single-state consistency claim; `staleness`
  /// bounds how far behind each source the data may be.
  bool degraded = false;
  /// Requested attributes with no materialized backing, dropped from the
  /// answer (the result covers the remaining attributes only).
  std::vector<std::string> missing_attrs;
  /// True iff the selection referenced unmaterialized attributes and was
  /// dropped, making the answer a superset of the exact result.
  bool cond_dropped = false;
  /// One entry per source (mediator source order) for degraded answers.
  std::vector<SourceStaleness> staleness;
};

}  // namespace squirrel

#endif  // SQUIRREL_MEDIATOR_QUERY_H_
