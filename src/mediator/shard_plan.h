// Sharded multi-mediator deployment plans (mediator-as-a-source).
//
// A ShardPlan partitions one VDP's derived nodes across a tree of mediator
// shards. Each shard runs an ordinary Mediator over a shard-local VDP; a cut
// edge (a node whose owner is a descendant shard) becomes an EXPORT at the
// owning shard and an IMPORT at every consumer above it. The owning shard's
// exported nodes are re-announced to its parent through an ExportAnnouncer
// (see export_announcer.h), which makes a child shard look to its parent
// exactly like one more autonomous SourceDb — the parent reuses the stock
// announcer protocol, epoch/resync lifecycle, and wire checksums verbatim.
//
// Validity rules enforced by Build():
//   - shard names are unique and the parent pointers form a tree (one root);
//   - the specs partition the base VDP's derived nodes exactly;
//   - each shard's owned nodes form a CONNECTED region of the dag (undirected
//     connectivity over def edges between owned nodes);
//   - every cut node's owner is a descendant of each shard that needs it
//     (announcements only flow child -> parent); intermediate shards on the
//     path re-export the node (pass-through imports);
//   - base export nodes propagate to the root, which serves queries.
//
// One semantic rule is the deployer's obligation rather than Build()'s:
// exported node contents must be duplicate-free. An export crosses the shard
// boundary as a source RELATION (sets at the source layer), so a bag node
// with genuine duplicate rows cannot be mirrored faithfully — the strict
// delta apply in the mirror fails loudly if this is violated.

#ifndef SQUIRREL_MEDIATOR_SHARD_PLAN_H_
#define SQUIRREL_MEDIATOR_SHARD_PLAN_H_

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "vdp/annotation.h"
#include "vdp/vdp.h"

namespace squirrel {

/// Deployer's description of one shard: which derived nodes it owns and
/// which shard consumes its exports ("" marks the root).
struct ShardSpec {
  std::string name;
  std::string parent;               ///< parent shard name; "" for the root
  std::vector<std::string> nodes;   ///< owned derived nodes of the base VDP
};

/// One resolved shard of a plan.
struct Shard {
  std::string name;
  std::string parent;               ///< "" for the root
  std::vector<std::string> owned;   ///< owned derived nodes, base topo order
  /// Nodes this shard offers upward (cut nodes it owns, pass-through
  /// re-exports, and base exports on their way to the root), base topo
  /// order. At the root these are exactly the base VDP's export nodes.
  std::vector<std::string> exports;
  /// Nodes consumed from descendant shards, base topo order. Each appears
  /// in the shard-local VDP as a synthesized leaf "<node>@in" over the
  /// provider's mirror db plus an identity derived node named like the base
  /// node, so owned defs apply unchanged.
  std::vector<std::string> imports;
  /// import node -> direct child shard whose mirror db provides it.
  std::map<std::string, std::string> providers;

  bool is_root() const { return parent.empty(); }
};

/// \brief A validated sharding of one base VDP over a tree of mediators.
class ShardPlan {
 public:
  /// Validates \p specs against \p base and resolves the per-shard export/
  /// import sets. The base VDP must itself validate.
  static Result<ShardPlan> Build(const Vdp& base,
                                 std::vector<ShardSpec> specs);

  /// Shards in children-first order (every shard precedes its parent), so
  /// iterating in order builds each mediator after its providers.
  const std::vector<Shard>& shards() const { return shards_; }

  /// The root shard (queries are submitted to its mediator).
  const Shard& root() const { return shards_.back(); }

  /// Lookup by shard name; nullptr if absent.
  const Shard* Find(const std::string& name) const;

  /// Builds the shard-local VDP and annotation for \p shard.
  ///
  /// The VDP contains: a leaf for every base leaf referenced by an owned
  /// node; for every import X a leaf "X@in" over relation X of the provider
  /// shard's mirror db plus an identity derived node X; and every owned node
  /// with its base definition. Nodes in the shard's exports are marked
  /// exported.
  ///
  /// The annotation copies the base modes attribute-by-attribute, EXCEPT
  /// that a non-root shard's exported nodes are forced fully materialized:
  /// their contents are announced upward as deltas, which requires the full
  /// extent to live in the repository (a virtual attribute has no delta
  /// stream). The root keeps base modes on its exports so query-time
  /// behavior matches the unsharded mediator.
  Result<std::pair<Vdp, Annotation>> BuildVdp(const Shard& shard,
                                              const Annotation& base_ann) const;

 private:
  Vdp base_;
  std::vector<Shard> shards_;  // children-first; root last
};

}  // namespace squirrel

#endif  // SQUIRREL_MEDIATOR_SHARD_PLAN_H_
