// Squirrel integration mediators (paper §4, Figure 3).
//
// A Mediator owns the five components of the paper's architecture — local
// store, query processor, virtual attribute processor, update queue, and
// incremental update processor — and wires them to simulated source
// databases through FIFO channels. Update and query transactions execute
// serially (paper §6.1); transactions that must poll sources span multiple
// simulation events and commit when the last answer has arrived.

#ifndef SQUIRREL_MEDIATOR_MEDIATOR_H_
#define SQUIRREL_MEDIATOR_MEDIATOR_H_

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/cancel.h"
#include "common/query_class.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "mediator/admission.h"
#include "mediator/contributor.h"
#include "mediator/durability/durability.h"
#include "mediator/freshness.h"
#include "mediator/iup.h"
#include "mediator/local_store.h"
#include "mediator/query.h"
#include "mediator/query_processor.h"
#include "mediator/resync.h"
#include "mediator/trace.h"
#include "mediator/update_queue.h"
#include "mediator/vap.h"
#include "sim/network.h"
#include "sim/scheduler.h"
#include "source/announcer.h"
#include "source/source_db.h"
#include "vdp/annotation.h"
#include "vdp/vdp.h"

namespace squirrel {

/// How one source database connects to the mediator.
struct SourceSetup {
  SourceDb* db = nullptr;     ///< not owned; must outlive the mediator
  Time comm_delay = 0.0;      ///< one-way channel latency
  Time q_proc_delay = 0.0;    ///< source-side poll processing time
  Time announce_period = 0.0; ///< 0 = announce on every commit
  /// Optional fault injector wired into this source's channels, announcer,
  /// and poll responder (not owned; nullptr = ideal network).
  FaultInjector* faults = nullptr;
  /// Whether Start() schedules the injector's planned source restarts. When
  /// one db feeds several mediators (sharded topologies), exactly one of the
  /// consumers may own the restart schedule or the db would restart twice
  /// per window; the others still share the injector's crash windows.
  bool schedule_restarts = true;
};

/// Mediator policy knobs.
struct MediatorOptions {
  VapStrategy strategy = VapStrategy::kAuto;
  /// 0 = start an update transaction as soon as a message arrives;
  /// > 0 = flush the queue periodically (the paper's u_hold policy).
  Time update_period = 0.0;
  Time u_proc_delay = 0.0;  ///< simulated per-update-transaction cost
  Time q_proc_delay = 0.0;  ///< simulated per-query-transaction cost
  bool record_trace = true;
  /// Snapshot every repository into the trace at update commits (needed by
  /// the consistency checker's validity test; costly on big stores).
  bool snapshot_repos = true;
  /// 0 disables poll supervision (a transaction waits forever, the paper's
  /// idealized network). > 0 = deadline for one polling round; sources that
  /// miss it are re-polled under fresh request ids with backed-off
  /// deadlines.
  Time poll_timeout = 0.0;
  /// Deadline multiplier applied per re-poll round.
  double poll_backoff = 2.0;
  /// Re-poll rounds before the transaction gives up and the silent sources
  /// are quarantined. Update transactions re-queue their messages and retry
  /// later; query transactions fail over to the caller with kUnavailable.
  int poll_max_retries = 3;
  /// Delay before an aborted update transaction is retried.
  Time txn_retry_delay = 1.0;
  /// Durability of the mediator's hard state (checkpoint + write-ahead
  /// log). Default-constructed options have no log device and disable
  /// durability entirely; see mediator/durability/durability.h.
  DurabilityOptions durability;
  /// Maintain persistent equi-join indexes on the repositories (advised once
  /// from the VDP at build time, updated incrementally at delta-apply time).
  /// Off = every join rebuilds its hash table, the pre-index behavior.
  bool use_indexes = true;
  /// Update-queue delta batching: consecutive announcements from the same
  /// source whose send times are within this window are merged into one
  /// queue entry (see UpdateQueue::Enqueue). 0 disables coalescing.
  Time coalesce_window = 0.0;
  /// Serve queries over suspect/resyncing/quarantined sources from the
  /// materialized repositories with per-source staleness annotations
  /// (ViewAnswer::degraded) instead of failing with kUnavailable. Off =
  /// the pre-existing behavior: such queries poll, time out, and fail.
  bool degraded_reads = false;
  /// Backpressure: while any source is resyncing, cap the update queue at
  /// this many messages by losslessly merging the oldest same-source pair
  /// (UpdateQueue::CoalesceOldest). 0 disables the cap. Normal-operation
  /// queues are never shed.
  size_t max_queue_depth = 0;
  /// Re-request deadline for an unanswered SnapshotRequest (the request or
  /// answer may be lost to a crash window). Backed off per attempt like
  /// polls are.
  Time resync_retry_delay = 2.0;
  // ---- concurrency (PR: MVCC reads + parallel IUP) ----
  /// MVCC reads: serve poll-free queries from the latest committed store
  /// snapshot instead of enqueueing them behind the transaction queue —
  /// queries never block on (or behind) an in-flight update transaction
  /// and never observe a half-committed one. Queries that must poll
  /// sources still serialize as transactions. Off = every query is a
  /// serialized transaction (the pre-existing behavior and the oracle).
  bool mvcc_reads = false;
  /// > 0: run the IUP kernel's rule firings on this many pool workers
  /// (equivalence with the serial kernel is by construction; the sweep
  /// proves it byte-identical per seed). 0 = serial kernel (the oracle).
  int iup_threads = 0;
  /// Nonzero: perturb worker scheduling (seeded yields/sleeps) to shake
  /// out ordering assumptions under TSan. 0 = no perturbation.
  uint64_t iup_perturb_seed = 0;
  // ---- execution engine (PR: columnar batch execution) ----
  /// Route large-enough select/project/join/delta kernels through the
  /// columnar batch engine (see relational/columnar.h). The row-at-a-time
  /// operators remain the oracle; results are identical by construction
  /// and the equivalence sweep proves it byte-for-byte per seed. Applied
  /// process-wide at Start (the engine switch is global).
  bool columnar = true;
  // ---- overload protection (DESIGN.md §15) ----
  /// Per-class admission limits. All-zero (the default) disables the gate.
  AdmissionOptions admission;
  /// Safety margin subtracted from a query's deadline when forwarding it to
  /// sources/child mediators in PollRequests, so the child gives up before
  /// the parent does and the answer has time to travel back.
  Time deadline_margin = 1.0;
  /// Ceiling on the backed-off poll deadline (applied after jitter);
  /// 0 = uncapped (the pre-existing unbounded exponential backoff).
  Time poll_backoff_cap = 0.0;
  /// Max fractional jitter added to each armed poll deadline: the delay is
  /// multiplied by a deterministic factor in [1, 1 + poll_jitter] drawn
  /// from (poll_jitter_seed, generation, attempt). 0 = no jitter.
  double poll_jitter = 0.0;
  uint64_t poll_jitter_seed = 0;
};

/// The (deterministic) delay ArmPollTimeout arms for re-poll round
/// \p attempt of polling round \p generation: poll_timeout backed off by
/// poll_backoff per attempt, jittered, then capped at poll_backoff_cap.
/// Exposed as a free function so tests can assert cap and determinism.
Time PollBackoffDelay(const MediatorOptions& options, int attempt,
                      uint64_t generation);

/// Aggregate counters over a mediator's lifetime.
struct MediatorStats {
  uint64_t update_txns = 0;
  uint64_t query_txns = 0;
  uint64_t polls = 0;
  uint64_t polled_tuples = 0;
  uint64_t messages_received = 0;
  IupStats iup;
  // ---- robustness counters (all zero on an ideal network) ----
  uint64_t duplicate_updates_dropped = 0;  ///< seq-suppressed retransmits
  uint64_t stale_poll_answers = 0;  ///< answers to superseded/absent polls
  uint64_t poll_timeouts = 0;       ///< polling rounds that hit a deadline
  uint64_t poll_retries = 0;        ///< per-source re-polls issued
  uint64_t update_txn_aborts = 0;   ///< update txns re-queued after timeout
  uint64_t failed_queries = 0;      ///< queries failed over with kUnavailable
  uint64_t quarantines = 0;         ///< sources marked stale after retries
  /// Quarantines of a source that had already been quarantined and cleared
  /// before — distinct from `quarantines` so rejoin-then-fail cycling is
  /// visible (every requarantine also counts in `quarantines`).
  uint64_t requarantines = 0;
  // ---- source restart / resync counters ----
  uint64_t epoch_bumps = 0;         ///< new source incarnations observed
  uint64_t seq_gap_resyncs = 0;     ///< resyncs triggered by a sequence gap
  uint64_t resyncs_started = 0;     ///< healthy -> resyncing transitions
  uint64_t resyncs_completed = 0;   ///< corrective deltas enqueued
  uint64_t snapshots_requested = 0; ///< SnapshotRequests sent (incl. retries)
  uint64_t updates_dropped_resync = 0;  ///< updates dropped while resyncing
  uint64_t stale_epoch_msgs = 0;    ///< messages from a dead incarnation
  uint64_t updates_shed = 0;        ///< backpressure merges (CoalesceOldest)
  uint64_t degraded_queries = 0;    ///< queries answered in degraded mode
  // ---- crash/recovery counters (zero unless Crash/Recover were used) ----
  uint64_t mediator_crashes = 0;    ///< Crash() calls that took effect
  uint64_t recoveries = 0;          ///< successful Recover() calls
  uint64_t recovery_txns_rolled_back = 0;  ///< dangling txns undone at recovery
  uint64_t recovery_msgs_requeued = 0;  ///< messages re-queued by rollbacks
  uint64_t recovery_txns_replayed = 0;  ///< committed txns redone at recovery
  uint64_t msgs_dropped_at_crash = 0;  ///< deliveries into a crashed mediator
  // ---- MVCC counters (zero unless mvcc_reads is on) ----
  uint64_t snapshot_queries = 0;     ///< queries served from a snapshot
  uint64_t snapshots_published = 0;  ///< store versions published
  // ---- storage integrity counters (zero on a healthy disk) ----
  uint64_t wal_append_failures = 0;  ///< Log* calls the device rejected
  uint64_t updates_dropped_wal = 0;  ///< announcements dropped because their
                                     ///< enqueue record never became durable
  uint64_t checkpoint_failures = 0;  ///< checkpoint writes that failed
  uint64_t recovery_tail_repairs = 0;       ///< damaged tail records dropped
  uint64_t recovery_checkpoint_fallbacks = 0;  ///< generations fallen back
  uint64_t resyncs_after_recovery = 0;  ///< paranoid/anomaly resyncs issued
  uint64_t update_checksum_failures = 0;    ///< corrupt updates dropped
  uint64_t snapshot_checksum_failures = 0;  ///< corrupt snapshots re-requested
  // ---- overload-protection counters (zero unless deadlines/admission/
  // ---- memory budgets are configured) ----
  uint64_t deadline_exceeded_queries = 0;  ///< queries resolved past deadline
  uint64_t queries_rejected_overload = 0;  ///< admission-gate rejections
  uint64_t queries_shed_soft_budget = 0;   ///< kBatch sheds (soft mem limit)
  uint64_t queries_cancelled_memory = 0;   ///< hard-limit budget cancellations
  uint64_t poll_rejects = 0;  ///< PollAnswers refused with retry_after set

  /// Renders EVERY counter (including the IUP block), one `name=value` per
  /// line. The implementation static_asserts on sizeof(MediatorStats), so a
  /// newly added counter cannot dodge the crash/recovery determinism sweeps
  /// that byte-compare this rendering between a run and its replay.
  std::string ToString() const;
};

/// \brief A generated Squirrel integration mediator.
class Mediator {
 public:
  /// Builds a mediator for \p vdp with \p ann over \p sources. Validates
  /// that every VDP leaf maps to a declared relation of a given source.
  static Result<std::unique_ptr<Mediator>> Create(
      Vdp vdp, Annotation ann, std::vector<SourceSetup> sources,
      Scheduler* scheduler, MediatorOptions options = {});

  /// Initializes the view from the sources' current states (t_view_init),
  /// installs channel receivers, starts announcers and the update policy.
  Status Start();

  /// Submits a query; the callback fires at the query transaction's commit
  /// (same event when no polling is needed). Transactions serialize. While
  /// the mediator is crashed the callback fires immediately with
  /// kUnavailable.
  void SubmitQuery(const ViewQuery& q,
                   std::function<void(Result<ViewAnswer>)> callback);

  // ---- crash/recovery (paper has no story here; see DESIGN.md) ----

  /// Kills the mediator in place: all volatile state — repositories, update
  /// queue, per-source dedup/reflect state, in-flight transactions, pending
  /// timers — is wiped, exactly as a process crash would. The trace and the
  /// stats counters survive (they model external observability, not process
  /// memory). No-op if not started or already crashed.
  void Crash();

  /// Restarts a crashed mediator from its durable state: loads the latest
  /// checkpoint, replays committed transactions from the write-ahead log,
  /// re-queues the messages of uncommitted ones (UpdateQueue::Requeue
  /// ordering), restores dedup state so redelivered announcements are
  /// suppressed, and re-arms the update policy. Fails if durability is
  /// disabled (the state is simply gone).
  Status Recover();

  /// Crash() immediately followed by Recover(), as one atomic simulation
  /// step — no deliveries can land in between. Used by the crash-point
  /// sweep, where the crash instant is chosen by WAL position rather than
  /// by a pre-planned fault window.
  Status CrashAndRecover();

  /// True between Crash() and a successful Recover().
  bool crashed() const { return crashed_; }

  // ---- introspection ----
  const Vdp& vdp() const { return vdp_; }
  const Annotation& annotation() const { return ann_; }
  const LocalStore& store() const { return *store_; }
  const Trace& trace() const { return *trace_; }
  const MediatorStats& stats() const { return stats_; }
  Scheduler& scheduler() { return *scheduler_; }

  /// Contributor classification per source, in source order.
  std::vector<ContributorKind> ContributorKinds() const;
  /// Source names in mediator order (the reflect-vector order).
  std::vector<std::string> SourceNames() const;
  /// Delay profiles from the setups (for Theorem 7.2 bounds).
  std::vector<DelayProfile> DelayProfiles() const;
  /// The mediator-side delays (for Theorem 7.2 bounds).
  MediatorDelays Delays() const;
  /// Current ref' vector (materialized/hybrid entries meaningful).
  TimeVector CurrentReflect() const;
  /// Time the view was initialized.
  Time view_init_time() const { return view_init_time_; }
  /// Approximate bytes held in materialized repositories.
  size_t StoreBytes() const { return store_->ApproxBytes(); }
  /// True iff a transaction is executing (between start and commit).
  bool busy() const { return busy_; }
  /// Number of update messages waiting in the queue.
  size_t QueueSize() const { return queue_.Size(); }
  /// Sources currently quarantined as stale (exceeded their poll retries
  /// without answering; cleared by the next message they deliver).
  std::vector<std::string> QuarantinedSources() const;
  /// Per-source epoch/health/mirror state (the resync lifecycle).
  const ResyncManager& resync() const { return resync_; }
  /// Admission gate state (in-flight per class, rejection counters).
  const AdmissionGate& admission() const { return admission_; }
  /// Durability manager (WAL/checkpoint counters; disabled() if no device).
  const DurabilityManager& durability() const { return durability_; }
  /// Adds a listener invoked after every committed update transaction with
  /// the commit time and the exact narrowed per-node deltas the repositories
  /// absorbed (the same capture the WAL commit record carries). This is the
  /// composition hook: an ExportAnnouncer mirrors the exported nodes of this
  /// mediator into a SourceDb a parent mediator consumes. Listeners fire
  /// inside the commit event, after the new store version is published and
  /// before the commit record is logged; they accumulate in installation
  /// order and survive Crash()/Recover() (the listener belongs to the
  /// deployment wiring, not to the incarnation).
  void AddCommitListener(
      std::function<void(Time, const std::map<std::string, Delta>&)> fn) {
    commit_listeners_.push_back(std::move(fn));
  }

  /// Messages merged into a queue tail by delta coalescing (0 when the
  /// coalesce window is disabled). Not part of MediatorStats: the trace
  /// renderer's output must stay byte-comparable across batching configs.
  uint64_t CoalescedMessages() const { return queue_.TotalCoalesced(); }

 private:
  struct SourceRuntime {
    SourceSetup setup;
    ContributorKind kind = ContributorKind::kMaterialized;
    size_t index = 0;
    std::unique_ptr<Channel<SourceToMediatorMsg>> inbound;
    std::unique_ptr<Channel<MediatorToSourceMsg>> outbound;
    std::unique_ptr<Announcer> announcer;
    std::unique_ptr<PollResponder> responder;
    Time last_reflected_send = 0;
    /// Highest announcement sequence number accepted within the source's
    /// current epoch; retransmits at or below it are duplicates and must
    /// not be applied twice.
    uint64_t last_update_seq = 0;
    /// True while the source is considered stale (poll retries exhausted).
    bool quarantined = false;
    /// True once the source has ever been quarantined (drives the
    /// `requarantines` counter; survives ClearQuarantine).
    bool ever_quarantined = false;
    /// Timed-out polling rounds this source stayed silent for since it last
    /// proved alive (reset by ClearQuarantine).
    int poll_failures = 0;
  };

  /// Shared lifecycle state of one submitted query, from admission to its
  /// single resolution. Shared (not owned by the transaction queue) because
  /// three parties can race to resolve it across events: the normal
  /// completion path, the deadline timer, and a memory-budget cancellation
  /// surfacing through a check site. `resolved` makes resolution
  /// first-wins; ResolveQuery() is the only place the callback fires.
  struct QueryRun {
    ViewQuery query;
    std::function<void(Result<ViewAnswer>)> cb;
    /// Cancelled by the deadline timer or the memory budget's hard limit;
    /// installed thread-locally (ScopedCancelScope) around execution.
    CancelToken cancel;
    /// Set once the callback has fired; later resolution attempts no-op.
    bool resolved = false;
    /// Set by RunQueryTxn after Prepare succeeds, so the deadline handler
    /// can serve a degraded answer without re-preparing.
    std::optional<PreparedQuery> prepared;
  };

  struct PollWait {
    size_t remaining = 0;
    std::map<std::string, std::deque<Relation>> ready;
    std::map<std::string, Time> answered_at;
    /// Queue contents from each source snapshotted the instant its answer
    /// arrived: FIFO guarantees exactly these updates are reflected in the
    /// answer, so they are what Eager Compensation must subtract. Updates
    /// arriving later (while other sources' answers are still in flight)
    /// are NOT in the answer and must not be compensated.
    std::map<std::string, MultiDelta> pending_at_answer;
    std::function<void()> on_complete;
    /// Distinguishes this wait from earlier ones so backed-off timeout
    /// events scheduled for a finished round become no-ops.
    uint64_t generation = 0;
    /// Re-poll rounds performed so far.
    int attempt = 0;
    /// Per-source resends issued (recorded into IupStats::poll_retries).
    uint64_t resends = 0;
    /// Requests not yet answered, keyed by source. An answer is accepted
    /// only if its id matches — late answers to superseded requests and
    /// duplicate deliveries are dropped as stale.
    std::map<std::string, PollRequest> outstanding;
    /// Invoked instead of on_complete when retries are exhausted.
    std::function<void(const Status&)> on_failure;
  };

  Mediator() = default;

  void OnSourceMessage(SourceToMediatorMsg msg);
  void EnqueueTxn(std::function<void()> txn);
  void StartNextTxn();
  void FinishTxn();
  void ScheduleUpdateTxn();
  void PeriodicTick();
  void RunUpdateTxn();
  void RunQueryTxn(std::shared_ptr<QueryRun> run);
  /// The single resolution point for a query: fires the callback exactly
  /// once (first caller wins), releases the admission slot, and counts the
  /// new typed failure codes. Completion, deadline, and memory-cancel paths
  /// all funnel through here.
  void ResolveQuery(const std::shared_ptr<QueryRun>& run,
                    Result<ViewAnswer> answer);
  /// Deadline timer handler: cancels and resolves \p run if it is still
  /// unresolved — typed kDeadlineExceeded, or (with degraded_reads and a
  /// prepared query) the materialized fraction with staleness annotations.
  void OnQueryDeadline(std::shared_ptr<QueryRun> run);
  /// Sends grouped poll requests; invokes \p done when all answers arrived,
  /// or \p on_failure after poll_max_retries timed-out rounds.
  void IssuePolls(const VapPlan& plan, std::function<void()> done,
                  std::function<void(const Status&)> on_failure);
  /// Arms the (backed-off) deadline for the current polling round.
  void ArmPollTimeout();
  /// Deadline handler: re-polls silent sources or fails the transaction.
  void OnPollTimeout(uint64_t generation);
  /// Marks \p source stale after exhausted retries (idempotent).
  void Quarantine(const std::string& source);
  /// Clears a quarantine once the source proves alive again; also resets
  /// the poll-retry failure accounting so the rejoined source starts clean.
  void ClearQuarantine(SourceRuntime* rt);
  // ---- source resync (anti-entropy; see mediator/resync.h) ----
  /// Transitions \p rt to resyncing for \p new_epoch: logs the WAL begin,
  /// counts the transition, and requests a snapshot.
  void BeginResync(SourceRuntime* rt, uint64_t new_epoch);
  /// Sends a SnapshotRequest for every mirrored relation under a fresh id
  /// and arms the re-request deadline.
  void RequestSnapshot(SourceRuntime* rt);
  /// Handles a snapshot answer: synthesizes the corrective delta against
  /// believed state and enqueues it as an ordinary update message.
  void OnSnapshotAnswer(SnapshotAnswer ans);
  /// Backpressure: shed (lossless-merge) queue entries while a source is
  /// resyncing and the queue exceeds max_queue_depth.
  void MaybeShed();
  /// Answers \p pq from the repositories with staleness annotations
  /// (degraded mode). Fails over with kUnavailable when nothing is
  /// materialized for the query. \p immediate skips the q_proc_delay
  /// deferral — the deadline handler serves the materialized fraction in
  /// the deadline event itself, never after it.
  void ServeDegraded(const PreparedQuery& pq, const ViewQuery& nq,
                     std::shared_ptr<QueryRun> run, bool immediate);
  /// True iff \p rt's epoch/health state or quarantine makes polling it
  /// hopeless right now.
  bool SourceDown(const SourceRuntime& rt) const;
  /// Poll function serving answers collected by IssuePolls, in plan order.
  Vap::PollFn ReadyPollFn();
  /// Compensation against the queue and (for updates) the in-flight batch.
  Vap::CompensationFn MakeCompensation(
      const std::map<std::string, MultiDelta>* inflight) const;
  TimeVector QueryReflect(const std::vector<std::string>& polled) const;
  TimeVector UpdateReflect() const;
  void RecordUpdateCommit(const IupStats& stats, uint64_t polls);
  SourceRuntime* FindSource(const std::string& name);
  // ---- MVCC helpers ----
  /// Publishes the committed repositories as a new store version tagged
  /// with the current reflect vector. Called after init, every update
  /// commit, and recovery (only when mvcc_reads is on).
  void PublishStoreSnapshot();
  /// True iff \p pq can be served from a snapshot: planning (which depends
  /// only on the static annotation, never on data or time) shows no source
  /// polls are needed.
  bool SnapshotServable(const PreparedQuery& pq) const;
  /// The MVCC fast path: answers \p pq from the latest snapshot after
  /// q_proc_delay, without occupying the transaction queue.
  void ServeSnapshotQuery(PreparedQuery pq, std::shared_ptr<QueryRun> run);

  // ---- durability helpers ----
  /// Schedules \p fn after \p delay, but only runs it if the mediator has
  /// not crashed in between: a crash bumps epoch_, turning every timer of
  /// the dead incarnation into a no-op (a real crash loses its timers).
  void AfterGuarded(Time delay, std::function<void()> fn);
  /// Snapshot of the hard state for a checkpoint record.
  HardState BuildHardState() const;
  /// Writes a checkpoint if the policy says one is due (called post-commit).
  void MaybeCheckpoint();

  Vdp vdp_;
  Annotation ann_;
  MediatorOptions options_;
  Scheduler* scheduler_ = nullptr;
  std::vector<std::unique_ptr<SourceRuntime>> sources_;
  std::map<std::string, size_t> source_index_;

  std::unique_ptr<LocalStore> store_;
  std::unique_ptr<Vap> vap_;
  std::unique_ptr<Iup> iup_;
  std::unique_ptr<QueryProcessor> qp_;
  /// Worker pool for the parallel IUP kernel (null when iup_threads == 0).
  std::unique_ptr<ThreadPool> iup_pool_;
  UpdateQueue queue_;
  std::unique_ptr<Trace> trace_;
  MediatorStats stats_;
  ResyncManager resync_;
  /// Id for the next SnapshotRequest. Persisted in checkpoints so a
  /// recovered mediator never accepts a snapshot answered to the dead
  /// incarnation.
  uint64_t next_resync_id_ = 1;
  /// The in-flight per-source batch of the currently committing update
  /// transaction (set for Eager Compensation AND the snapshot-answer path,
  /// whose corrective diff must count these not-yet-mirrored deltas as
  /// believed state). Null outside an update transaction.
  const std::map<std::string, MultiDelta>* current_inflight_ = nullptr;

  bool started_ = false;
  bool busy_ = false;
  bool update_txn_scheduled_ = false;
  std::deque<std::function<void()>> pending_txns_;
  /// Per-class admission gate (limits from options_.admission).
  AdmissionGate admission_;
  /// The query transaction currently executing (null between query txns and
  /// during update txns). The deadline handler uses it to tell a running
  /// query (must also abandon the poll round) from a queued one; IssuePolls
  /// uses it to stamp deadlines/classes into PollRequests.
  std::shared_ptr<QueryRun> active_query_run_;
  std::optional<PollWait> poll_wait_;
  uint64_t next_poll_id_ = 1;
  uint64_t next_poll_generation_ = 1;
  Time view_init_time_ = 0;

  // ---- durability state ----
  DurabilityManager durability_;
  bool crashed_ = false;
  /// Incarnation counter; bumped by Crash() so stale timers become no-ops.
  uint64_t epoch_ = 0;
  /// Id of the next update transaction (logged in WAL begin records).
  uint64_t next_txn_id_ = 1;
  /// Update commits since the last checkpoint (drives the checkpoint policy).
  uint64_t commits_since_checkpoint_ = 0;
  /// While an update transaction commits, the store's apply listener
  /// collects the exact narrowed per-node deltas here for the WAL commit
  /// record; replaying them with plain ApplyDelta reproduces the store
  /// byte-for-byte.
  std::map<std::string, Delta> txn_delta_capture_;
  bool capturing_deltas_ = false;
  /// Commit listeners (see AddCommitListener). Deployment wiring: NOT
  /// cleared by Crash().
  std::vector<std::function<void(Time, const std::map<std::string, Delta>&)>>
      commit_listeners_;
};

}  // namespace squirrel

#endif  // SQUIRREL_MEDIATOR_MEDIATOR_H_
