#include "mediator/spec.h"

#include <cstdlib>

#include "common/strings.h"

namespace squirrel {

Result<PlannerInput> MediatorSpec::ToPlannerInput() const {
  PlannerInput input;
  for (const auto& src : sources) {
    for (const auto& decl : src.relations) {
      if (input.scans.count(decl.name)) {
        return Status::AlreadyExists(
            "relation name used by two sources (qualify them uniquely): " +
            decl.name);
      }
      input.scans[decl.name] = {src.name, decl.name, decl.schema};
    }
  }
  for (const auto& [name, text] : exports) {
    SQ_ASSIGN_OR_RETURN(AlgebraExpr::Ptr def, ParseAlgebra(text));
    input.exports.push_back({name, def});
  }
  return input;
}

namespace {

Result<double> ParseNumber(const std::string& token, const std::string& what) {
  char* end = nullptr;
  double v = std::strtod(token.c_str(), &end);
  if (end == nullptr || *end != '\0') {
    return Status::InvalidArgument("bad number for " + what + ": " + token);
  }
  return v;
}

std::vector<std::string> Tokens(std::string_view line) {
  std::vector<std::string> out;
  for (const auto& t : Split(std::string(line), ' ')) {
    auto s = StripWhitespace(t);
    if (!s.empty()) out.emplace_back(s);
  }
  return out;
}

}  // namespace

namespace {

bool IsDirective(const std::string& line) {
  return StartsWith(line, "source ") || StartsWith(line, "relation ") ||
         StartsWith(line, "export ") || StartsWith(line, "annotate ") ||
         StartsWith(line, "option ");
}

/// Joins continuation lines: a non-empty line that does not begin with a
/// directive keyword extends the previous logical line (so long export
/// definitions can wrap).
std::vector<std::pair<int, std::string>> LogicalLines(
    const std::string& text) {
  std::vector<std::pair<int, std::string>> out;
  int line_no = 0;
  for (const auto& raw : Split(text, '\n')) {
    ++line_no;
    std::string line(StripWhitespace(raw));
    auto hash = line.find('#');
    if (hash != std::string::npos) {
      line = std::string(StripWhitespace(line.substr(0, hash)));
    }
    if (line.empty()) continue;
    if (!IsDirective(line) && !out.empty()) {
      out.back().second += " " + line;
    } else {
      out.emplace_back(line_no, line);
    }
  }
  return out;
}

}  // namespace

Result<MediatorSpec> ParseMediatorSpec(const std::string& text) {
  MediatorSpec spec;
  SpecSource* current = nullptr;
  for (const auto& [line_no_loop, line] : LogicalLines(text)) {
    const int line_no = line_no_loop;
    auto err = [&](const std::string& msg) {
      return Status::InvalidArgument("spec line " + std::to_string(line_no) +
                                     ": " + msg);
    };

    if (StartsWith(line, "source ")) {
      auto toks = Tokens(line);
      if (toks.size() < 2) return err("source needs a name");
      SpecSource src;
      src.name = toks[1];
      for (size_t i = 2; i + 1 < toks.size(); i += 2) {
        SQ_ASSIGN_OR_RETURN(double v, ParseNumber(toks[i + 1], toks[i]));
        if (toks[i] == "comm") {
          src.comm_delay = v;
        } else if (toks[i] == "qproc") {
          src.q_proc_delay = v;
        } else if (toks[i] == "announce") {
          src.announce_period = v;
        } else {
          return err("unknown source option: " + toks[i]);
        }
      }
      spec.sources.push_back(std::move(src));
      current = &spec.sources.back();
      continue;
    }
    if (StartsWith(line, "relation ")) {
      if (current == nullptr) return err("relation before any source");
      SQ_ASSIGN_OR_RETURN(SchemaDecl decl,
                          ParseSchemaDecl(line.substr(9)));
      current->relations.push_back(std::move(decl));
      continue;
    }
    if (StartsWith(line, "export ")) {
      auto eq = line.find('=');
      if (eq == std::string::npos) return err("export needs '='");
      std::string name(StripWhitespace(line.substr(7, eq - 7)));
      std::string def(StripWhitespace(line.substr(eq + 1)));
      if (name.empty() || def.empty()) return err("empty export name or def");
      spec.exports.emplace_back(name, def);
      continue;
    }
    if (StartsWith(line, "annotate ")) {
      auto colon = line.find(':');
      if (colon == std::string::npos) return err("annotate needs ':'");
      std::string node(StripWhitespace(line.substr(9, colon - 9)));
      std::string ann(StripWhitespace(line.substr(colon + 1)));
      spec.annotations.emplace_back(node, ann);
      continue;
    }
    if (StartsWith(line, "option ")) {
      auto toks = Tokens(line);
      if (toks.size() != 3) return err("option needs a name and a value");
      const std::string& key = toks[1];
      const std::string& val = toks[2];
      if (key == "strategy") {
        if (val == "auto") {
          spec.options.strategy = VapStrategy::kAuto;
        } else if (val == "child") {
          spec.options.strategy = VapStrategy::kChildBased;
        } else if (val == "key") {
          spec.options.strategy = VapStrategy::kKeyBased;
        } else {
          return err("unknown strategy: " + val);
        }
      } else if (key == "update_period") {
        SQ_ASSIGN_OR_RETURN(spec.options.update_period,
                            ParseNumber(val, key));
      } else if (key == "uproc") {
        SQ_ASSIGN_OR_RETURN(spec.options.u_proc_delay, ParseNumber(val, key));
      } else if (key == "qproc") {
        SQ_ASSIGN_OR_RETURN(spec.options.q_proc_delay, ParseNumber(val, key));
      } else if (key == "trace") {
        spec.options.record_trace = val == "on" || val == "true";
        spec.options.snapshot_repos = spec.options.record_trace;
      } else {
        return err("unknown option: " + key);
      }
      continue;
    }
    return err("unrecognized directive: " + line);
  }
  if (spec.sources.empty()) {
    return Status::InvalidArgument("spec declares no sources");
  }
  if (spec.exports.empty()) {
    return Status::InvalidArgument("spec declares no exports");
  }
  return spec;
}

SourceDb* GeneratedSystem::Source(const std::string& name) const {
  for (const auto& db : sources) {
    if (db->name() == name) return db.get();
  }
  return nullptr;
}

Result<GeneratedSystem> GenerateSystem(const MediatorSpec& spec,
                                       Scheduler* scheduler) {
  GeneratedSystem out;
  // Sources with declared relations.
  for (const auto& src : spec.sources) {
    auto db = std::make_unique<SourceDb>(src.name);
    for (const auto& decl : src.relations) {
      SQ_RETURN_IF_ERROR(db->AddRelation(decl.name, decl.schema));
    }
    out.sources.push_back(std::move(db));
  }
  // Plan the VDP.
  SQ_ASSIGN_OR_RETURN(PlannerInput input, spec.ToPlannerInput());
  SQ_ASSIGN_OR_RETURN(out.vdp, PlanVdp(input));
  // Apply annotations.
  for (const auto& [node, ann_spec] : spec.annotations) {
    SQ_RETURN_IF_ERROR(
        out.annotation.SetFromSpec(out.vdp, node, ann_spec));
  }
  SQ_RETURN_IF_ERROR(out.annotation.Validate(out.vdp));
  // Wire the mediator.
  std::vector<SourceSetup> setups;
  for (size_t i = 0; i < spec.sources.size(); ++i) {
    SourceSetup setup;
    setup.db = out.sources[i].get();
    setup.comm_delay = spec.sources[i].comm_delay;
    setup.q_proc_delay = spec.sources[i].q_proc_delay;
    setup.announce_period = spec.sources[i].announce_period;
    setups.push_back(setup);
  }
  SQ_ASSIGN_OR_RETURN(out.mediator,
                      Mediator::Create(out.vdp, out.annotation,
                                       std::move(setups), scheduler,
                                       spec.options));
  return out;
}

}  // namespace squirrel
