#include "mediator/consistency.h"

#include <algorithm>
#include <limits>
#include <map>
#include <memory>
#include <set>

#include "relational/operators.h"

namespace squirrel {

Result<Relation> ConsistencyChecker::EvalNodeAt(const std::string& node,
                                                const TimeVector& at) const {
  if (at.size() != sources_.size()) {
    return Status::InvalidArgument(
        "time vector arity does not match source count");
  }
  std::map<std::string, size_t> source_index;
  for (size_t i = 0; i < sources_.size(); ++i) {
    source_index[sources_[i]->name()] = i;
  }
  // Memoized full recomputation, children first.
  auto memo = std::make_shared<std::map<std::string, Relation>>();
  std::function<Result<Relation>(const std::string&)> eval =
      [&](const std::string& name) -> Result<Relation> {
    auto hit = memo->find(name);
    if (hit != memo->end()) return hit->second;
    SQ_ASSIGN_OR_RETURN(const VdpNode* n, vdp_->Get(name));
    Relation out;
    if (n->is_leaf) {
      auto sit = source_index.find(n->source_db);
      if (sit == source_index.end()) {
        return Status::NotFound("checker has no source named " +
                                n->source_db);
      }
      SQ_ASSIGN_OR_RETURN(
          out, sources_[sit->second]->StateAt(n->source_relation,
                                              at[sit->second]));
    } else {
      NodeStateFn states =
          [&](const std::string& child, const std::vector<std::string>& attrs)
          -> Result<std::shared_ptr<const Relation>> {
        (void)attrs;  // full recompute always has every attribute
        SQ_ASSIGN_OR_RETURN(Relation child_rel, eval(child));
        return std::make_shared<const Relation>(std::move(child_rel));
      };
      SQ_ASSIGN_OR_RETURN(out, n->def->Evaluate(states));
    }
    (*memo)[name] = out;
    return out;
  };
  return eval(node);
}

Result<ConsistencyReport> ConsistencyChecker::Check(
    const Trace& trace, const std::vector<Time>& order_resets) const {
  ConsistencyReport report;
  TimeVector prev_reflect;
  size_t next_reset = 0;
  for (const auto& entry : trace.entries()) {
    ++report.entries_checked;
    // A recovery boundary on lossy storage: the watermark restarts so the
    // (legitimate) regression to the recovered reflect vector is not
    // flagged, but order stays enforced within the new incarnation.
    while (next_reset < order_resets.size() &&
           order_resets[next_reset] <= entry.commit_time + 1e-9) {
      prev_reflect.clear();
      ++next_reset;
    }
    // Chronology: reflect(t) <= t componentwise.
    for (size_t i = 0; i < entry.reflect.size(); ++i) {
      if (entry.reflect[i] > entry.commit_time + 1e-9) {
        report.chronology_ok = false;
        report.violations.push_back(
            "chronology: reflect[" + std::to_string(i) + "]=" +
            std::to_string(entry.reflect[i]) + " > commit " +
            std::to_string(entry.commit_time));
      }
    }
    // Order preservation across successive transactions.
    if (!prev_reflect.empty() && entry.reflect.size() == prev_reflect.size()) {
      if (!TimeVectorLeq(prev_reflect, entry.reflect)) {
        report.order_ok = false;
        report.violations.push_back(
            "order: reflect went backwards at commit " +
            std::to_string(entry.commit_time) + ": " +
            TimeVectorToString(prev_reflect) + " then " +
            TimeVectorToString(entry.reflect));
      }
    }
    prev_reflect = entry.reflect;

    // Validity.
    if (entry.kind == TxnKind::kQuery) {
      if (!entry.query.has_value() || !entry.answer.has_value()) continue;
      SQ_ASSIGN_OR_RETURN(Relation full,
                          EvalNodeAt(entry.query->relation, entry.reflect));
      SQ_ASSIGN_OR_RETURN(
          Relation selected,
          OpSelect(full, entry.query->cond ? entry.query->cond
                                           : Expr::True()));
      std::vector<std::string> attrs = entry.query->attrs;
      if (attrs.empty()) attrs = full.schema().AttributeNames();
      SQ_ASSIGN_OR_RETURN(Relation projected,
                          OpProject(selected, attrs, Semantics::kBag));
      Relation expect = projected.ToSet();
      ++report.relations_compared;
      if (!expect.EqualContents(*entry.answer)) {
        report.validity_ok = false;
        report.violations.push_back(
            "validity: query " + entry.query->ToString() + " at commit " +
            std::to_string(entry.commit_time) +
            " does not match recomputation at reflect " +
            TimeVectorToString(entry.reflect));
      }
    } else {
      for (const auto& [node, snapshot] : entry.repo_snapshot) {
        SQ_ASSIGN_OR_RETURN(Relation full, EvalNodeAt(node, entry.reflect));
        auto mat = ann_->MaterializedAttrs(*vdp_, node);
        SQ_ASSIGN_OR_RETURN(Relation expect,
                            OpProject(full, mat, Semantics::kBag));
        ++report.relations_compared;
        if (!expect.EqualContents(snapshot)) {
          report.validity_ok = false;
          report.violations.push_back(
              "validity: repository " + node + " at commit " +
              std::to_string(entry.commit_time) +
              " does not match recomputation at reflect " +
              TimeVectorToString(entry.reflect));
        }
      }
    }
  }
  return report;
}

namespace {

/// Candidate witness times for a single-source scenario: just before the
/// first commit, and at each commit (the source state is constant between
/// commits, so these instants cover every reachable state).
std::vector<Time> WitnessTimes(const SourceDb& db) {
  std::vector<Time> times = db.CommitTimes();
  times.erase(std::unique(times.begin(), times.end()), times.end());
  Time before = times.empty() ? 0.0 : times.front() - 1.0;
  times.insert(times.begin(), before);
  return times;
}

Result<Relation> EvalViewAt(const SourceDb& db,
                            const AlgebraExpr::Ptr& view_def, Time t) {
  std::set<std::string> scans;
  view_def->CollectScans(&scans);
  std::vector<Relation> held;
  Catalog catalog;
  held.reserve(scans.size());
  for (const auto& rel : scans) {
    SQ_ASSIGN_OR_RETURN(Relation state, db.StateAt(rel, t));
    held.push_back(std::move(state));
    catalog.Register(rel, &held.back());
  }
  SQ_ASSIGN_OR_RETURN(Relation out, EvalAlgebra(view_def, catalog));
  return out.ToSet();
}

}  // namespace

Result<bool> IsPseudoConsistent(const SourceDb& db,
                                const AlgebraExpr::Ptr& view_def,
                                const std::vector<ViewObservation>& obs) {
  std::vector<Time> times = WitnessTimes(db);
  // Precompute matches: obs index -> witness times whose view equals it.
  std::vector<std::vector<Time>> matches(obs.size());
  for (size_t i = 0; i < obs.size(); ++i) {
    for (Time t : times) {
      if (t > obs[i].time + 1e-9) continue;
      SQ_ASSIGN_OR_RETURN(Relation v, EvalViewAt(db, view_def, t));
      if (v.EqualContents(obs[i].state)) matches[i].push_back(t);
    }
    if (matches[i].empty()) return false;  // not even individually valid
  }
  // Pairwise condition: witnesses may differ per pair.
  for (size_t i = 0; i < obs.size(); ++i) {
    for (size_t j = i; j < obs.size(); ++j) {
      bool found = false;
      for (Time t1 : matches[i]) {
        for (Time t2 : matches[j]) {
          if (t1 <= t2 + 1e-9) {
            found = true;
            break;
          }
        }
        if (found) break;
      }
      if (!found) return false;
    }
  }
  return true;
}

Result<bool> IsScenarioConsistent(const SourceDb& db,
                                  const AlgebraExpr::Ptr& view_def,
                                  const std::vector<ViewObservation>& obs) {
  std::vector<Time> times = WitnessTimes(db);
  std::sort(times.begin(), times.end());
  // One monotone witness assignment must cover all observations, each
  // witness <= its observation time. Greedy smallest-feasible is optimal.
  Time prev = -std::numeric_limits<Time>::infinity();
  for (const auto& o : obs) {
    bool found = false;
    for (Time t : times) {
      if (t < prev - 1e-9 || t > o.time + 1e-9) continue;
      SQ_ASSIGN_OR_RETURN(Relation v, EvalViewAt(db, view_def, t));
      if (v.EqualContents(o.state)) {
        prev = t;
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  return true;
}

}  // namespace squirrel
