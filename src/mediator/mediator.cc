#include "mediator/mediator.h"

#include <algorithm>
#include <set>

#include "common/logging.h"
#include "common/memory_budget.h"
#include "common/strings.h"
#include "delta/delta_algebra.h"
#include "mediator/durability/serialize.h"
#include "relational/columnar.h"
#include "relational/operators.h"

namespace squirrel {

Result<std::unique_ptr<Mediator>> Mediator::Create(
    Vdp vdp, Annotation ann, std::vector<SourceSetup> sources,
    Scheduler* scheduler, MediatorOptions options) {
  SQ_RETURN_IF_ERROR(vdp.Validate());
  SQ_RETURN_IF_ERROR(ann.Validate(vdp));
  if (scheduler == nullptr) {
    return Status::InvalidArgument("mediator needs a scheduler");
  }
  auto med = std::unique_ptr<Mediator>(new Mediator());
  med->vdp_ = std::move(vdp);
  med->ann_ = std::move(ann);
  med->options_ = options;
  med->scheduler_ = scheduler;

  std::vector<std::string> names;
  for (size_t i = 0; i < sources.size(); ++i) {
    if (sources[i].db == nullptr) {
      return Status::InvalidArgument("null source database");
    }
    auto rt = std::make_unique<SourceRuntime>();
    rt->setup = sources[i];
    rt->index = i;
    rt->kind =
        ClassifyContributor(med->vdp_, med->ann_, sources[i].db->name());
    med->source_index_[sources[i].db->name()] = i;
    names.push_back(sources[i].db->name());
    med->sources_.push_back(std::move(rt));
  }
  // Every leaf must resolve to a declared relation of a registered source.
  // Along the way, collect the leaf-referenced relations (at FULL source
  // schema — announcements carry source-schema deltas) for resync mirroring.
  std::map<std::string, std::map<std::string, Schema>> mirrored;
  for (const auto& leaf_name : med->vdp_.LeafNames()) {
    const VdpNode* leaf = med->vdp_.Find(leaf_name);
    auto it = med->source_index_.find(leaf->source_db);
    if (it == med->source_index_.end()) {
      return Status::NotFound("VDP leaf " + leaf_name +
                              " references unregistered source " +
                              leaf->source_db);
    }
    SQ_ASSIGN_OR_RETURN(
        Schema src_schema,
        med->sources_[it->second]->setup.db->RelationSchema(
            leaf->source_relation));
    if (!src_schema.ContainsAll(leaf->schema.AttributeNames())) {
      return Status::InvalidArgument(
          "leaf " + leaf_name + " schema is not a subset of source relation " +
          leaf->source_relation);
    }
    mirrored[leaf->source_db].emplace(leaf->source_relation, src_schema);
  }
  // Announcing sources get believed-state mirrors of every leaf-referenced
  // relation; virtual-only contributors get epoch tracking alone (their
  // poll answers always reflect live state, so a restart needs no resync).
  for (const auto& rt : med->sources_) {
    const std::string& name = rt->setup.db->name();
    med->resync_.Register(name, MustAnnounce(rt->kind)
                                    ? std::move(mirrored[name])
                                    : std::map<std::string, Schema>{});
  }

  med->store_ = std::make_unique<LocalStore>(&med->vdp_, &med->ann_,
                                             options.use_indexes);
  med->queue_.SetCoalesceWindow(options.coalesce_window);
  med->vap_ = std::make_unique<Vap>(&med->vdp_, &med->ann_,
                                    med->store_.get(), options.strategy);
  med->iup_ = std::make_unique<Iup>(&med->vdp_, &med->ann_,
                                    med->store_.get(), med->vap_.get());
  if (options.iup_threads > 0) {
    med->iup_pool_ = std::make_unique<ThreadPool>(options.iup_threads);
    med->iup_pool_->SetPerturbSeed(options.iup_perturb_seed);
    med->iup_->SetThreadPool(med->iup_pool_.get());
  }
  med->qp_ = std::make_unique<QueryProcessor>(&med->vdp_, &med->ann_,
                                              med->store_.get(),
                                              med->vap_.get());
  med->trace_ = std::make_unique<Trace>(names);
  med->durability_ = DurabilityManager(options.durability);
  med->admission_.set_options(options.admission);
  return med;
}

std::string MediatorStats::ToString() const {
  // Every counter below must appear exactly once. The assert fires when a
  // counter is added to MediatorStats or IupStats without extending this
  // rendering — the crash/recovery sweeps byte-compare it between a run and
  // its deterministic replay, so an unrendered counter would silently skip
  // that check.
  static_assert(sizeof(MediatorStats) == 51 * sizeof(uint64_t),
                "new counter: extend MediatorStats::ToString too");
  std::string out;
  auto emit = [&out](const char* name, uint64_t v) {
    out += name;
    out += '=';
    out += std::to_string(v);
    out += '\n';
  };
  emit("update_txns", update_txns);
  emit("query_txns", query_txns);
  emit("polls", polls);
  emit("polled_tuples", polled_tuples);
  emit("messages_received", messages_received);
  emit("iup.rules_fired", iup.rules_fired);
  emit("iup.atoms_in", iup.atoms_in);
  emit("iup.atoms_propagated", iup.atoms_propagated);
  emit("iup.nodes_processed", iup.nodes_processed);
  emit("iup.polls", iup.polls);
  emit("iup.polled_tuples", iup.polled_tuples);
  emit("iup.temps_built", iup.temps_built);
  emit("iup.poll_retries", iup.poll_retries);
  emit("duplicate_updates_dropped", duplicate_updates_dropped);
  emit("stale_poll_answers", stale_poll_answers);
  emit("poll_timeouts", poll_timeouts);
  emit("poll_retries", poll_retries);
  emit("update_txn_aborts", update_txn_aborts);
  emit("failed_queries", failed_queries);
  emit("quarantines", quarantines);
  emit("requarantines", requarantines);
  emit("epoch_bumps", epoch_bumps);
  emit("seq_gap_resyncs", seq_gap_resyncs);
  emit("resyncs_started", resyncs_started);
  emit("resyncs_completed", resyncs_completed);
  emit("snapshots_requested", snapshots_requested);
  emit("updates_dropped_resync", updates_dropped_resync);
  emit("stale_epoch_msgs", stale_epoch_msgs);
  emit("updates_shed", updates_shed);
  emit("degraded_queries", degraded_queries);
  emit("mediator_crashes", mediator_crashes);
  emit("recoveries", recoveries);
  emit("recovery_txns_rolled_back", recovery_txns_rolled_back);
  emit("recovery_msgs_requeued", recovery_msgs_requeued);
  emit("recovery_txns_replayed", recovery_txns_replayed);
  emit("msgs_dropped_at_crash", msgs_dropped_at_crash);
  emit("snapshot_queries", snapshot_queries);
  emit("snapshots_published", snapshots_published);
  emit("wal_append_failures", wal_append_failures);
  emit("updates_dropped_wal", updates_dropped_wal);
  emit("checkpoint_failures", checkpoint_failures);
  emit("recovery_tail_repairs", recovery_tail_repairs);
  emit("recovery_checkpoint_fallbacks", recovery_checkpoint_fallbacks);
  emit("resyncs_after_recovery", resyncs_after_recovery);
  emit("update_checksum_failures", update_checksum_failures);
  emit("snapshot_checksum_failures", snapshot_checksum_failures);
  emit("deadline_exceeded_queries", deadline_exceeded_queries);
  emit("queries_rejected_overload", queries_rejected_overload);
  emit("queries_shed_soft_budget", queries_shed_soft_budget);
  emit("queries_cancelled_memory", queries_cancelled_memory);
  emit("poll_rejects", poll_rejects);
  return out;
}

Mediator::SourceRuntime* Mediator::FindSource(const std::string& name) {
  auto it = source_index_.find(name);
  return it == source_index_.end() ? nullptr : sources_[it->second].get();
}

Status Mediator::Start() {
  if (started_) return Status::FailedPrecondition("mediator already started");
  started_ = true;
  view_init_time_ = scheduler_->Now();
  columnar::SetEnabled(options_.columnar);

  // Wire channels, announcers (active sources), and poll responders.
  for (auto& rt : sources_) {
    rt->inbound = std::make_unique<Channel<SourceToMediatorMsg>>(
        scheduler_, rt->setup.comm_delay);
    rt->inbound->SetReceiver(
        [this](SourceToMediatorMsg msg) { OnSourceMessage(std::move(msg)); });
    rt->outbound = std::make_unique<Channel<MediatorToSourceMsg>>(
        scheduler_, rt->setup.comm_delay);
    if (FaultInjector* f = rt->setup.faults; f != nullptr) {
      std::string name = rt->setup.db->name();
      rt->inbound->SetFaultHook([f, name](Time now, Time base_delay) {
        return f->OnSend(now, base_delay, FaultInjector::Dir::kToMediator,
                         name);
      });
      rt->outbound->SetFaultHook([f, name](Time now, Time base_delay) {
        return f->OnSend(now, base_delay, FaultInjector::Dir::kToSource, name);
      });
    }
    if (MustAnnounce(rt->kind)) {
      rt->announcer = std::make_unique<Announcer>(
          rt->setup.db, scheduler_, rt->inbound.get(),
          rt->setup.announce_period, rt->setup.faults);
      rt->announcer->Start();
    }
    rt->responder = std::make_unique<PollResponder>(
        rt->setup.db, scheduler_, rt->inbound.get(), rt->announcer.get(),
        rt->setup.q_proc_delay, rt->setup.faults);
    auto* responder = rt->responder.get();
    rt->outbound->SetReceiver([responder](MediatorToSourceMsg msg) {
      responder->OnMessage(std::move(msg));
    });
    rt->last_reflected_send = view_init_time_;
    // Believed-state mirrors start as copies of the live extents — the same
    // instant the initial load below reads, so mirror and view agree.
    const std::string& name = rt->setup.db->name();
    for (const auto& rel_name : resync_.Relations(name)) {
      SQ_ASSIGN_OR_RETURN(const Relation* rel,
                          rt->setup.db->Current(rel_name));
      SQ_RETURN_IF_ERROR(resync_.SetMirror(name, rel_name, *rel));
    }
    // Planned source restarts (epoch bumps at crash-window ends). In
    // sharded topologies a db shared by several mediators must restart
    // once per window, so only the designated consumer schedules them.
    if (rt->setup.faults != nullptr && rt->setup.schedule_restarts) {
      ScheduleSourceRestarts(rt->setup.db, scheduler_, rt->setup.faults);
    }
  }

  // Initial load: full recomputation of every derived node from the current
  // source states, materialized projections into the repositories.
  std::map<std::string, Relation> full;  // node -> full contents
  for (const auto& name : vdp_.TopoOrder()) {
    const VdpNode* node = vdp_.Find(name);
    if (node->is_leaf) {
      SourceRuntime* rt = FindSource(node->source_db);
      SQ_ASSIGN_OR_RETURN(const Relation* rel,
                          rt->setup.db->Current(node->source_relation));
      // Leaf contents narrowed to the leaf schema (the VDP may declare a
      // subset of the source relation's attributes).
      SQ_ASSIGN_OR_RETURN(
          Relation narrowed,
          OpProject(*rel, node->schema.AttributeNames(), Semantics::kBag));
      full.emplace(name, std::move(narrowed));
      continue;
    }
    NodeStateFn states =
        [&full](const std::string& child, const std::vector<std::string>&)
        -> Result<std::shared_ptr<const Relation>> {
      auto it = full.find(child);
      if (it == full.end()) {
        return Status::Internal("initial load: missing child " + child);
      }
      return std::shared_ptr<const Relation>(std::shared_ptr<void>(),
                                             &it->second);
    };
    SQ_ASSIGN_OR_RETURN(Relation contents, node->def->Evaluate(states));
    if (store_->HasRepo(name)) {
      auto mat = ann_.MaterializedAttrs(vdp_, name);
      SQ_ASSIGN_OR_RETURN(Relation projected,
                          OpProject(contents, mat, Semantics::kBag));
      // Preserve the node's storage semantics.
      if (node->semantics() == Semantics::kSet) {
        projected = projected.ToSet();
      }
      SQ_RETURN_IF_ERROR(store_->SetRepo(name, std::move(projected)));
    }
    full.emplace(name, std::move(contents));
  }

  if (options_.record_trace) {
    TraceEntry entry;
    entry.kind = TxnKind::kInit;
    entry.commit_time = view_init_time_;
    entry.reflect = UpdateReflect();
    if (options_.snapshot_repos) {
      for (const auto& node : store_->MaterializedNodes()) {
        entry.repo_snapshot.emplace(node, **store_->Repo(node));
      }
    }
    trace_->Add(std::move(entry));
  }

  // MVCC: version 1 is the freshly initialized view.
  PublishStoreSnapshot();

  // The WAL's commit records carry the narrowed per-node deltas exactly as
  // the repositories absorbed them; the store's apply listener is how they
  // are captured while an update transaction commits.
  store_->SetApplyListener(
      [this](const std::string& node, const Delta& narrowed) {
        if (!capturing_deltas_) return;
        auto [it, inserted] = txn_delta_capture_.try_emplace(node, narrowed);
        if (!inserted) {
          Status s = it->second.SmashInPlace(narrowed);
          if (!s.ok()) {
            SQ_LOG(kError) << "WAL delta capture failed: " << s.ToString();
          }
        }
      });

  // The initial checkpoint makes the freshly loaded view durable; without
  // it a crash before the first periodic checkpoint could not recover.
  if (durability_.enabled()) {
    SQ_RETURN_IF_ERROR(durability_.WriteCheckpoint(BuildHardState()));
  }

  // Periodic update policy (the u_hold knob).
  if (options_.update_period > 0) {
    AfterGuarded(options_.update_period, [this]() { PeriodicTick(); });
  }
  return Status::OK();
}

void Mediator::PeriodicTick() {
  if (!queue_.Empty()) ScheduleUpdateTxn();
  AfterGuarded(options_.update_period, [this]() { PeriodicTick(); });
}

void Mediator::AfterGuarded(Time delay, std::function<void()> fn) {
  // A crash bumps epoch_, so every timer armed by the dead incarnation
  // becomes a no-op — a real crash loses its timers with its memory.
  scheduler_->After(delay, [this, e = epoch_, fn = std::move(fn)]() {
    if (epoch_ == e && !crashed_) fn();
  });
}

void Mediator::OnSourceMessage(SourceToMediatorMsg msg) {
  if (crashed_) {
    // Safety net: planned fault windows retransmit around the downtime (see
    // FaultInjector::OnSend), so this only triggers for unplanned crashes.
    ++stats_.msgs_dropped_at_crash;
    return;
  }
  ++stats_.messages_received;
  if (std::holds_alternative<UpdateMessage>(msg)) {
    UpdateMessage upd = std::get<UpdateMessage>(std::move(msg));
    if (upd.checksum != 0 && upd.checksum != ChecksumUpdateMessage(upd)) {
      // Payload corrupted in transit. Drop WITHOUT touching the dedup
      // floor: the seq gap the loss opens is healed by ARQ redelivery or,
      // failing that, the seq-gap resync below — never silently applied.
      ++stats_.update_checksum_failures;
      return;
    }
    SourceRuntime* rt = FindSource(upd.source);
    if (rt != nullptr) {
      ClearQuarantine(rt);  // any delivery proves the source alive
      const uint64_t cur_epoch = resync_.Epoch(upd.source);
      if (upd.epoch < cur_epoch) {
        // Delayed message from a dead incarnation: the resync snapshot of
        // the current incarnation covers (or supersedes) its effects.
        ++stats_.stale_epoch_msgs;
        return;
      }
      if (upd.epoch > cur_epoch) {
        // New incarnation: the source restarted and lost its session state
        // (unannounced batch, sequence numbering). Its messages are dropped
        // until a full snapshot re-bases the believed state — this very
        // message is covered by that snapshot (FIFO + flush-before-answer).
        ++stats_.epoch_bumps;
        BeginResync(rt, upd.epoch);
        ++stats_.updates_dropped_resync;
        return;
      }
      if (resync_.Health(upd.source) != SourceHealth::kHealthy) {
        ++stats_.updates_dropped_resync;
        return;
      }
      if (upd.seq != 0 && upd.seq <= rt->last_update_seq) {
        // At-least-once retransmit of an announcement already applied;
        // applying it again would double-count the delta.
        ++stats_.duplicate_updates_dropped;
        return;
      }
      if (upd.seq != 0 && rt->last_update_seq != 0 &&
          upd.seq > rt->last_update_seq + 1 &&
          resync_.NeedsResync(upd.source)) {
        // Sequence gap within one epoch: an announcement was lost for good.
        // The ARQ fault model should make this unreachable; the protocol
        // heals it via a snapshot anyway rather than silently diverging.
        ++stats_.seq_gap_resyncs;
        BeginResync(rt, upd.epoch);
        ++stats_.updates_dropped_resync;
        return;
      }
    }
    // WAL: an announcement is "received" only once its enqueue record is
    // durable; recovery re-queues it and restores the dedup high-water mark.
    // The coalesce decision is taken BEFORE the record is written so replay
    // can mirror the live queue's tail-merge exactly.
    if (durability_.wal_enabled()) {
      Status ds = durability_.LogEnqueue(upd, queue_.WouldCoalesce(upd));
      if (!ds.ok()) {
        SQ_LOG(kError) << "WAL enqueue failed: " << ds.ToString();
        ++stats_.wal_append_failures;
        ++stats_.updates_dropped_wal;
        // The announcement is NOT received: without a durable enqueue
        // record a post-crash replay would lose it while the source
        // believes it was acked. Drop it, leave the dedup floor untouched,
        // and pull a snapshot to re-cover the content — the pull's retry
        // loop converges once the device accepts writes again.
        if (rt != nullptr && resync_.NeedsResync(upd.source) &&
            resync_.Health(upd.source) == SourceHealth::kHealthy) {
          BeginResync(rt, upd.epoch);
        }
        return;
      }
    }
    // The dedup floor advances only once the record is durable (or the WAL
    // is off): a floor ahead of the log would suppress the very retransmits
    // recovery depends on.
    if (rt != nullptr && upd.seq != 0) rt->last_update_seq = upd.seq;
    queue_.Enqueue(std::move(upd));
    MaybeShed();
    if (options_.update_period <= 0) ScheduleUpdateTxn();
    return;
  }
  if (std::holds_alternative<SnapshotAnswer>(msg)) {
    OnSnapshotAnswer(std::get<SnapshotAnswer>(std::move(msg)));
    return;
  }
  // Poll answer: route to the waiting transaction.
  PollAnswer answer = std::get<PollAnswer>(std::move(msg));
  if (answer.retry_after != 0) {
    // Responder-side deadline rejection: the polls were never evaluated, so
    // there is nothing to consume. The querying transaction's own deadline
    // timer (which fires before the forwarded deadline plus margin) resolves
    // the query; here the rejection is only counted.
    ++stats_.poll_rejects;
    return;
  }
  if (SourceRuntime* art = FindSource(answer.source); art != nullptr) {
    ClearQuarantine(art);
    const uint64_t cur_epoch = resync_.Epoch(answer.source);
    if (answer.epoch > cur_epoch) {
      ++stats_.epoch_bumps;
      if (resync_.NeedsResync(answer.source)) {
        // An announcing source restarted: its poll answer reflects a state
        // the believed mirrors have not been re-based onto yet, so Eager
        // Compensation against it would be wrong. Drop it (the transaction
        // re-polls or aborts) and pull a snapshot.
        BeginResync(art, answer.epoch);
        ++stats_.stale_poll_answers;
        return;
      }
      // Virtual contributor: poll answers always reflect live state; the
      // epoch bump needs tracking only.
      resync_.SetEpoch(answer.source, answer.epoch);
    } else if (answer.epoch < cur_epoch) {
      ++stats_.stale_epoch_msgs;
      return;
    } else if (resync_.Health(answer.source) != SourceHealth::kHealthy) {
      ++stats_.stale_poll_answers;
      return;
    }
  }
  if (!poll_wait_.has_value()) {
    ++stats_.stale_poll_answers;
    SQ_LOG(kWarn) << "poll answer from " << answer.source
                  << " with no transaction waiting";
    return;
  }
  PollWait& wait = *poll_wait_;
  auto oit = wait.outstanding.find(answer.source);
  if (oit == wait.outstanding.end() || oit->second.id != answer.id) {
    // Duplicate delivery of an answer already consumed, or an answer to a
    // request superseded by a re-poll round.
    ++stats_.stale_poll_answers;
    return;
  }
  wait.outstanding.erase(oit);
  auto& ready = wait.ready[answer.source];
  for (auto& rel : answer.results) ready.push_back(std::move(rel));
  wait.answered_at[answer.source] = answer.answered_at;
  auto pending = queue_.PendingFrom(answer.source);
  if (pending.ok()) {
    wait.pending_at_answer[answer.source] = std::move(pending).value();
  } else {
    SQ_LOG(kError) << "pending snapshot failed: "
                   << pending.status().ToString();
  }
  if (wait.remaining == 0) {
    SQ_LOG(kError) << "more poll answers than requests";
    return;
  }
  if (--wait.remaining == 0) {
    auto done = std::move(wait.on_complete);
    done();
  }
}

void Mediator::EnqueueTxn(std::function<void()> txn) {
  pending_txns_.push_back(std::move(txn));
  StartNextTxn();
}

void Mediator::StartNextTxn() {
  if (busy_ || pending_txns_.empty()) return;
  busy_ = true;
  auto txn = std::move(pending_txns_.front());
  pending_txns_.pop_front();
  txn();
}

void Mediator::FinishTxn() {
  busy_ = false;
  poll_wait_.reset();
  current_inflight_ = nullptr;
  active_query_run_ = nullptr;
  // Run the next queued transaction, if any, as a fresh event.
  if (!pending_txns_.empty()) {
    AfterGuarded(0, [this]() { StartNextTxn(); });
  }
}

void Mediator::ScheduleUpdateTxn() {
  if (update_txn_scheduled_) return;
  update_txn_scheduled_ = true;
  EnqueueTxn([this]() {
    update_txn_scheduled_ = false;
    RunUpdateTxn();
  });
}

void Mediator::IssuePolls(const VapPlan& plan, std::function<void()> done,
                          std::function<void(const Status&)> on_failure) {
  // Package all polls of one source into a single request transaction
  // (paper §6.3), preserving per-source plan order.
  std::map<std::string, PollRequest> grouped;
  for (const auto& lp : plan.polls) {
    PollRequest& req = grouped[lp.source];
    if (req.polls.empty()) {
      req.id = next_poll_id_++;
      // Deadline propagation across tiers: the responder (a raw source or a
      // child mediator's export mirror) gets the query's remaining budget
      // minus a margin, so the far side gives up before this side's own
      // deadline timer fires and the rejection has time to travel back.
      if (active_query_run_ != nullptr) {
        req.qclass = active_query_run_->query.qclass;
        if (Time d = active_query_run_->query.deadline; d > 0) {
          Time fwd = d - options_.deadline_margin;
          req.deadline = fwd > 0 ? fwd : d;
        }
      }
    }
    req.polls.push_back(lp.spec);
  }
  PollWait wait;
  wait.remaining = grouped.size();
  wait.on_complete = std::move(done);
  wait.on_failure = std::move(on_failure);
  wait.generation = next_poll_generation_++;
  wait.outstanding = grouped;
  poll_wait_ = std::move(wait);
  for (auto& [source, req] : grouped) {
    SourceRuntime* rt = FindSource(source);
    rt->outbound->Send(std::move(req));
  }
  ArmPollTimeout();
}

Time PollBackoffDelay(const MediatorOptions& options, int attempt,
                      uint64_t generation) {
  // Exponential backoff by round; a multiply loop keeps the double exactly
  // reproducible (std::pow may differ across libms).
  Time delay = options.poll_timeout;
  for (int i = 0; i < attempt; ++i) {
    delay *= options.poll_backoff;
  }
  if (options.poll_jitter > 0) {
    // Seeded jitter (splitmix64 finalizer over seed/generation/attempt)
    // de-synchronizes re-poll rounds across mediators sharing a source
    // while staying byte-reproducible: a replay re-arms identical delays.
    uint64_t x = options.poll_jitter_seed +
                 generation * 0x9E3779B97F4A7C15ULL +
                 (static_cast<uint64_t>(attempt) + 1) * 0xD1B54A32D192ED03ULL;
    x ^= x >> 30;
    x *= 0xBF58476D1CE4E5B9ULL;
    x ^= x >> 27;
    x *= 0x94D049BB133111EBULL;
    x ^= x >> 31;
    const double unit = static_cast<double>(x >> 11) * 0x1.0p-53;
    delay *= 1.0 + options.poll_jitter * unit;
  }
  // The cap bounds the final armed delay, jitter included: however many
  // rounds have failed, a silent source is re-checked at least this often.
  if (options.poll_backoff_cap > 0 && delay > options.poll_backoff_cap) {
    delay = options.poll_backoff_cap;
  }
  return delay;
}

void Mediator::ArmPollTimeout() {
  if (options_.poll_timeout <= 0 || !poll_wait_.has_value()) return;
  Time deadline =
      PollBackoffDelay(options_, poll_wait_->attempt, poll_wait_->generation);
  uint64_t gen = poll_wait_->generation;
  AfterGuarded(deadline, [this, gen]() { OnPollTimeout(gen); });
}

void Mediator::OnPollTimeout(uint64_t generation) {
  if (!poll_wait_.has_value() || poll_wait_->generation != generation ||
      poll_wait_->remaining == 0) {
    return;  // that polling round already completed or was superseded
  }
  PollWait& wait = *poll_wait_;
  ++stats_.poll_timeouts;
  for (const auto& [source, req] : wait.outstanding) {
    if (SourceRuntime* rt = FindSource(source); rt != nullptr) {
      ++rt->poll_failures;
    }
  }
  if (wait.attempt >= options_.poll_max_retries) {
    std::vector<std::string> silent;
    for (const auto& [source, req] : wait.outstanding) {
      silent.push_back(source);
    }
    for (const auto& source : silent) Quarantine(source);
    auto fail = std::move(wait.on_failure);
    Status st = Status::Unavailable(
        "poll timed out after " + std::to_string(wait.attempt + 1) +
        " rounds; silent sources: " + Join(silent, ","));
    if (fail) {
      fail(st);
    } else {
      SQ_LOG(kError) << st.ToString();
      FinishTxn();
    }
    return;
  }
  // Re-poll every silent source under a fresh request id. A late answer to
  // the old id is dropped as stale, so a re-polled source can never be
  // counted twice toward `remaining`.
  ++wait.attempt;
  for (auto& [source, req] : wait.outstanding) {
    req.id = next_poll_id_++;
    ++wait.resends;
    ++stats_.poll_retries;
    if (options_.record_trace) {
      trace_->Note(scheduler_->Now(), "re-poll " + source + " round " +
                                          std::to_string(wait.attempt));
    }
    SourceRuntime* rt = FindSource(source);
    PollRequest copy = req;
    rt->outbound->Send(std::move(copy));
  }
  ArmPollTimeout();
}

void Mediator::Quarantine(const std::string& source) {
  SourceRuntime* rt = FindSource(source);
  if (rt == nullptr || rt->quarantined) return;
  rt->quarantined = true;
  ++stats_.quarantines;
  // A re-quarantine (the source rejoined and failed again) counts twice:
  // once here and once in the cycling-specific counter.
  if (rt->ever_quarantined) ++stats_.requarantines;
  rt->ever_quarantined = true;
  if (options_.record_trace) {
    trace_->Note(scheduler_->Now(), "quarantine " + source + " after " +
                                        std::to_string(rt->poll_failures) +
                                        " silent rounds");
  }
}

void Mediator::ClearQuarantine(SourceRuntime* rt) {
  if (rt == nullptr) return;
  // Any delivery proves the source alive: the rejoined source starts with a
  // clean retry record, so its next quarantine needs a full fresh round of
  // failures rather than inheriting pre-rejoin ones.
  rt->poll_failures = 0;
  if (!rt->quarantined) return;
  rt->quarantined = false;
  if (options_.record_trace) {
    trace_->Note(scheduler_->Now(),
                 "quarantine cleared " + rt->setup.db->name());
  }
}

std::vector<std::string> Mediator::QuarantinedSources() const {
  std::vector<std::string> out;
  for (const auto& rt : sources_) {
    if (rt->quarantined) out.push_back(rt->setup.db->name());
  }
  return out;
}

bool Mediator::SourceDown(const SourceRuntime& rt) const {
  return rt.quarantined ||
         resync_.Health(rt.setup.db->name()) != SourceHealth::kHealthy;
}

void Mediator::BeginResync(SourceRuntime* rt, uint64_t new_epoch) {
  const std::string& name = rt->setup.db->name();
  resync_.SetEpoch(name, new_epoch);
  if (!resync_.NeedsResync(name)) return;  // virtual: epoch tracking only
  resync_.SetHealth(name, SourceHealth::kSuspect);
  ++stats_.resyncs_started;
  // WAL: recovery re-initiates the snapshot pull for any source whose
  // resync began but never logged its done record.
  if (durability_.wal_enabled()) {
    Status ds = durability_.LogResyncBegin(name, new_epoch);
    if (!ds.ok()) {
      SQ_LOG(kError) << "WAL resync-begin failed: " << ds.ToString();
    }
  }
  if (options_.record_trace) {
    trace_->Note(scheduler_->Now(), "resync begin " + name + " epoch " +
                                        std::to_string(new_epoch));
  }
  RequestSnapshot(rt);
}

void Mediator::RequestSnapshot(SourceRuntime* rt) {
  const std::string& name = rt->setup.db->name();
  SnapshotRequest req;
  req.id = next_resync_id_++;
  req.relations = resync_.Relations(name);
  resync_.SetOutstandingRequest(name, req.id);
  resync_.SetHealth(name, SourceHealth::kResyncing);
  ++stats_.snapshots_requested;
  rt->outbound->Send(std::move(req));
  // The request or its answer can be lost to a crash window; re-request
  // under a fresh id (a late answer to this one is then dropped as stale)
  // until one lands.
  AfterGuarded(options_.resync_retry_delay, [this, rt, id = req.id]() {
    if (resync_.OutstandingRequest(rt->setup.db->name()) == id) {
      if (options_.record_trace) {
        trace_->Note(scheduler_->Now(),
                     "snapshot re-request " + rt->setup.db->name());
      }
      RequestSnapshot(rt);
    }
  });
}

void Mediator::OnSnapshotAnswer(SnapshotAnswer ans) {
  SourceRuntime* rt = FindSource(ans.source);
  if (rt == nullptr) return;
  ClearQuarantine(rt);
  const std::string& name = ans.source;
  if (ans.epoch != resync_.Epoch(name) ||
      resync_.OutstandingRequest(name) != ans.id) {
    // Answer to a superseded request, or the source restarted AGAIN after
    // answering — a newer hello already re-began the resync.
    ++stats_.stale_poll_answers;
    return;
  }
  if (ans.checksum != 0 && ans.checksum != ChecksumSnapshotAnswer(ans)) {
    // A poisoned snapshot would not merely lose an update — Corrective()
    // would compute a wrong diff and OVERWRITE good mirror state with it.
    // Drop the answer and pull again under a fresh id; corruption is
    // transient (see FaultPlan::snapshot_corrupt_prob), so a retry lands.
    ++stats_.snapshot_checksum_failures;
    if (options_.record_trace) {
      trace_->Note(scheduler_->Now(), "snapshot checksum mismatch " + name);
    }
    RequestSnapshot(rt);
    return;
  }
  // Believed in-transit state: messages still queued, plus the batch of an
  // update transaction that flushed them but has not advanced the mirrors
  // yet. Both are "received and will be applied", so the corrective diff
  // must treat them as part of what the mediator already has.
  MultiDelta in_transit;
  if (current_inflight_ != nullptr) {
    auto iit = current_inflight_->find(name);
    if (iit != current_inflight_->end()) in_transit = iit->second;
  }
  auto pending = queue_.PendingFrom(name);
  if (pending.ok()) {
    Status s = in_transit.SmashInPlace(pending.value());
    if (!s.ok()) SQ_LOG(kError) << "in-transit smash failed: " << s.ToString();
  } else {
    SQ_LOG(kError) << "pending snapshot failed: "
                   << pending.status().ToString();
  }
  auto corrective = resync_.Corrective(name, in_transit, ans.relations);
  if (!corrective.ok()) {
    SQ_LOG(kError) << "corrective diff failed: "
                   << corrective.status().ToString();
    RequestSnapshot(rt);  // retry from scratch under a fresh id
    return;
  }
  // The corrective rides the normal update path as an ordinary message:
  // WAL enqueue, queue, IUP kernel, reflect advance to the instant the
  // snapshot was taken. Enqueued even when empty — the reflect advance to
  // answered_at is the proof the view caught up.
  UpdateMessage fix;
  fix.source = name;
  fix.send_time = ans.answered_at;
  fix.seq = ans.announce_seq;
  fix.epoch = ans.epoch;
  fix.delta = std::move(corrective).value();
  const uint64_t atoms = fix.delta.AtomCount();
  if (durability_.wal_enabled()) {
    Status ds = durability_.LogEnqueue(fix, queue_.WouldCoalesce(fix));
    if (!ds.ok()) {
      // An unlogged corrective would vanish at the next crash while the
      // dedup floor below had already advanced past it. Abandon this
      // answer and pull again; the retry loop spans the device outage.
      SQ_LOG(kError) << "WAL enqueue failed: " << ds.ToString();
      ++stats_.wal_append_failures;
      RequestSnapshot(rt);
      return;
    }
  }
  queue_.Enqueue(std::move(fix));
  // The snapshot covers every announcement the source ever sent before it
  // (same FIFO channel, announcer flushed before answering), so the
  // source's announcement count at answer time is a safe dedup floor.
  rt->last_update_seq = ans.announce_seq;
  resync_.SetOutstandingRequest(name, 0);
  resync_.SetHealth(name, SourceHealth::kHealthy);
  ++stats_.resyncs_completed;
  if (durability_.wal_enabled()) {
    Status ds = durability_.LogResyncDone(name, ans.epoch, ans.announce_seq);
    if (!ds.ok()) {
      SQ_LOG(kError) << "WAL resync-done failed: " << ds.ToString();
    }
  }
  if (options_.record_trace) {
    trace_->Note(scheduler_->Now(),
                 "resync done " + name + " epoch " +
                     std::to_string(ans.epoch) + " corrective atoms " +
                     std::to_string(atoms));
  }
  MaybeShed();
  if (options_.update_period <= 0) ScheduleUpdateTxn();
}

void Mediator::MaybeShed() {
  if (options_.max_queue_depth == 0) return;
  // Shedding is gated on a resync being in progress: normal-operation
  // queues are never silently compacted, however deep.
  while (queue_.Size() > options_.max_queue_depth && resync_.AnyUnhealthy()) {
    if (!queue_.CanCoalesceOldest()) break;
    // Log BEFORE merging: replay re-runs the identical pair search, so a
    // shed record must exist iff the live merge happened. If the device
    // rejects the record, skip the shed (the queue stays deep — safe, just
    // unshed) rather than diverge from the log.
    if (durability_.wal_enabled()) {
      Status ds = durability_.LogShed();
      if (!ds.ok()) {
        SQ_LOG(kError) << "WAL shed failed: " << ds.ToString();
        ++stats_.wal_append_failures;
        break;
      }
    }
    queue_.CoalesceOldest();
    ++stats_.updates_shed;
  }
}

Vap::PollFn Mediator::ReadyPollFn() {
  return [this](const std::string& source,
                const PollSpec& spec) -> Result<Relation> {
    (void)spec;  // answers are consumed in plan order per source
    if (!poll_wait_.has_value()) {
      return Status::Internal("poll requested outside a poll wait");
    }
    auto& ready = poll_wait_->ready[source];
    if (ready.empty()) {
      return Status::Internal("no buffered poll answer from " + source);
    }
    Relation out = std::move(ready.front());
    ready.pop_front();
    return out;
  };
}

Vap::CompensationFn Mediator::MakeCompensation(
    const std::map<std::string, MultiDelta>* inflight) const {
  return [this, inflight](const std::string& source,
                          const std::string& relation,
                          const Schema& schema) -> Result<Delta> {
    Delta total(schema);
    if (inflight != nullptr) {
      auto it = inflight->find(source);
      if (it != inflight->end()) {
        const Delta* d = it->second.Find(relation);
        if (d != nullptr) SQ_RETURN_IF_ERROR(total.SmashInPlace(*d));
      }
    }
    // Pending updates as of the instant this source's answer arrived (the
    // per-channel FIFO makes exactly those visible in the answer).
    if (poll_wait_.has_value()) {
      auto pit = poll_wait_->pending_at_answer.find(source);
      if (pit != poll_wait_->pending_at_answer.end()) {
        const Delta* d = pit->second.Find(relation);
        if (d != nullptr) SQ_RETURN_IF_ERROR(total.SmashInPlace(*d));
      }
      return total;
    }
    SQ_ASSIGN_OR_RETURN(MultiDelta pending, queue_.PendingFrom(source));
    const Delta* d = pending.Find(relation);
    if (d != nullptr) SQ_RETURN_IF_ERROR(total.SmashInPlace(*d));
    return total;
  };
}

TimeVector Mediator::UpdateReflect() const {
  TimeVector out(sources_.size(), 0);
  for (size_t i = 0; i < sources_.size(); ++i) {
    out[i] = sources_[i]->kind == ContributorKind::kVirtual
                 ? scheduler_->Now()
                 : sources_[i]->last_reflected_send;
  }
  return out;
}

TimeVector Mediator::QueryReflect(
    const std::vector<std::string>& polled) const {
  TimeVector out(sources_.size(), 0);
  for (size_t i = 0; i < sources_.size(); ++i) {
    const SourceRuntime& rt = *sources_[i];
    if (rt.kind != ContributorKind::kVirtual) {
      out[i] = rt.last_reflected_send;
      continue;
    }
    // Virtual contributor: polled -> the source-side answer time; untouched
    // by this query -> the current time (its state is simply irrelevant).
    auto pit = std::find(polled.begin(), polled.end(), rt.setup.db->name());
    if (pit != polled.end() && poll_wait_.has_value()) {
      auto ait = poll_wait_->answered_at.find(rt.setup.db->name());
      out[i] = ait != poll_wait_->answered_at.end() ? ait->second
                                                    : scheduler_->Now();
    } else {
      out[i] = scheduler_->Now();
    }
  }
  return out;
}

void Mediator::RecordUpdateCommit(const IupStats& stats, uint64_t polls) {
  ++stats_.update_txns;
  stats_.polls += polls;
  stats_.iup.Merge(stats);
  if (!options_.record_trace) return;
  TraceEntry entry;
  entry.kind = TxnKind::kUpdate;
  entry.commit_time = scheduler_->Now();
  entry.reflect = UpdateReflect();
  entry.iup_stats = stats;
  entry.polls = polls;
  if (options_.snapshot_repos) {
    for (const auto& node : store_->MaterializedNodes()) {
      entry.repo_snapshot.emplace(node, **store_->Repo(node));
    }
  }
  trace_->Add(std::move(entry));
}

void Mediator::RunUpdateTxn() {
  auto msgs_shared =
      std::make_shared<std::vector<UpdateMessage>>(queue_.Flush());
  const std::vector<UpdateMessage>& msgs = *msgs_shared;
  if (msgs.empty()) {
    FinishTxn();
    return;
  }
  // WAL: begin record. Recovery treats a begin without a matching commit or
  // abort as a crash mid-transaction and leaves its messages at the queue
  // front (the Requeue ordering) — volatile effects simply never happened.
  const uint64_t txn_id = next_txn_id_++;
  if (durability_.wal_enabled()) {
    Status ds = durability_.LogTxnBegin(txn_id, msgs.size());
    if (!ds.ok()) {
      // Applying a batch the log never saw begin would let a crash replay
      // it a second time from the surviving enqueue records. Put the flush
      // back untouched and retry the whole transaction later.
      SQ_LOG(kError) << "WAL begin failed: " << ds.ToString();
      ++stats_.wal_append_failures;
      queue_.Requeue(std::move(*msgs_shared));
      if (options_.update_period <= 0) {
        AfterGuarded(options_.resync_retry_delay,
                     [this]() { ScheduleUpdateTxn(); });
      }
      FinishTxn();
      return;
    }
  }
  // Messages that fail assembly below are dropped, not re-queued; the abort
  // record's `requeued` flag tells recovery which of the two happened.
  auto log_abort = [this, txn_id](bool requeued) {
    if (!durability_.wal_enabled()) return;
    Status ds = durability_.LogTxnAbort(txn_id, requeued);
    if (!ds.ok()) {
      SQ_LOG(kError) << "WAL abort failed: " << ds.ToString();
    }
  };
  // Assemble (a) the per-leaf deltas for the kernel, (b) the per-source
  // in-flight batch for Eager Compensation, and (c) the reflect candidates.
  auto leaf_deltas = std::make_shared<std::map<std::string, Delta>>();
  auto inflight = std::make_shared<std::map<std::string, MultiDelta>>();
  auto reflect_candidates = std::make_shared<std::map<std::string, Time>>();
  Status st = Status::OK();
  for (const auto& msg : msgs) {
    (*reflect_candidates)[msg.source] = msg.send_time;
    SQ_LOG(kDebug) << "IUP consuming update from " << msg.source << " sent at "
                   << msg.send_time;
    if (!(*inflight)[msg.source].SmashInPlace(msg.delta).ok()) {
      st = Status::Internal("in-flight smash failed");
    }
    for (const auto& rel : msg.delta.RelationNames()) {
      const VdpNode* leaf = vdp_.FindLeaf(msg.source, rel);
      if (leaf == nullptr) continue;  // irrelevant relation
      const Delta* d = msg.delta.Find(rel);
      // Narrow to the leaf's declared attributes (paper §6.2's filtering).
      auto narrowed = DeltaProject(*d, leaf->schema.AttributeNames());
      if (!narrowed.ok()) {
        st = narrowed.status();
        break;
      }
      auto [it, inserted] =
          leaf_deltas->try_emplace(leaf->name, Delta(leaf->schema));
      (void)inserted;
      Status s = it->second.SmashInPlace(*narrowed);
      if (!s.ok()) st = s;
    }
  }
  if (!st.ok()) {
    SQ_LOG(kError) << "update transaction failed: " << st.ToString();
    log_abort(/*requeued=*/false);
    FinishTxn();
    return;
  }
  // From flush until the mirrors advance at commit, the batch is in flight:
  // a snapshot answer arriving in this window must count it as believed
  // state (it left the queue but is not in the mirrors yet). Cleared at
  // commit, and by FinishTxn/Crash on every abort path.
  current_inflight_ = inflight.get();

  auto commit = [this, txn_id, log_abort, msgs_shared, leaf_deltas, inflight,
                 reflect_candidates]() {
    Vap::PollFn poll = ReadyPollFn();
    Vap::CompensationFn comp = MakeCompensation(inflight.get());
    auto run = [&]() -> Result<IupStats> {
      SQ_ASSIGN_OR_RETURN(std::vector<TempRequest> requests,
                          iup_->PrepareTempRequests(*leaf_deltas));
      TempStore temps;
      if (!requests.empty()) {
        SQ_ASSIGN_OR_RETURN(temps, vap_->Materialize(requests, poll, comp));
      }
      SQ_ASSIGN_OR_RETURN(IupStats stats,
                          iup_->RunKernel(*leaf_deltas, &temps));
      stats.polls = temps.polls;
      stats.polled_tuples = temps.polled_tuples;
      stats.temps_built = temps.Count();
      return stats;
    };
    txn_delta_capture_.clear();
    capturing_deltas_ = true;
    Result<IupStats> stats = run();
    capturing_deltas_ = false;
    if (!stats.ok()) {
      SQ_LOG(kError) << "IUP failed: " << stats.status().ToString();
      log_abort(/*requeued=*/false);
      FinishTxn();
      return;
    }
    if (poll_wait_.has_value()) {
      stats->poll_retries = poll_wait_->resends;
    }
    for (const auto& [source, send_time] : *reflect_candidates) {
      SourceRuntime* rt = FindSource(source);
      if (rt != nullptr) {
        rt->last_reflected_send = std::max(rt->last_reflected_send, send_time);
      }
    }
    // The believed-state mirrors absorb the committed batch the same
    // instant the repositories do; the in-flight window is over.
    for (const auto& [source, md] : *inflight) {
      Status ms = resync_.Advance(source, md);
      if (!ms.ok()) {
        SQ_LOG(kError) << "mirror advance failed: " << ms.ToString();
      }
    }
    current_inflight_ = nullptr;
    // MVCC: expose the committed state as a new immutable version. Apply
    // and publish happen in this same event, so readers either see the
    // whole transaction or none of it — never a half-committed store.
    PublishStoreSnapshot();
    // Composition hook: hand the committed per-node deltas to any export
    // announcers before the capture is moved into the WAL record below.
    if (!commit_listeners_.empty() && !txn_delta_capture_.empty()) {
      for (const auto& fn : commit_listeners_) {
        fn(scheduler_->Now(), txn_delta_capture_);
      }
    }
    // WAL: commit record. Only now are the transaction's effects — the
    // narrowed node deltas just applied, the reflect advances, and the
    // mirror advances — durable; a crash any earlier rolls the whole
    // transaction back at recovery.
    if (durability_.wal_enabled()) {
      CommitPayload payload;
      payload.txn_id = txn_id;
      payload.consumed = msgs_shared->size();
      payload.node_deltas = std::move(txn_delta_capture_);
      payload.reflect = *reflect_candidates;
      payload.source_deltas = *inflight;
      Status ds = durability_.LogTxnCommit(payload);
      if (!ds.ok()) {
        // Tolerable: a missing commit record rolls this transaction back at
        // recovery, and the front-requeued messages replay it from scratch.
        // State after the replay matches state after the live commit.
        SQ_LOG(kError) << "WAL commit failed: " << ds.ToString();
        ++stats_.wal_append_failures;
      }
    }
    txn_delta_capture_.clear();
    stats_.polled_tuples += stats->polled_tuples;
    auto finalize = [this, s = *stats]() {
      RecordUpdateCommit(s, s.polls);
      ++commits_since_checkpoint_;
      MaybeCheckpoint();
      FinishTxn();
    };
    if (options_.u_proc_delay > 0) {
      AfterGuarded(options_.u_proc_delay, finalize);
    } else {
      finalize();
    }
  };

  // Do we need to poll? Plan the preparation's temp requests now.
  auto requests = iup_->PrepareTempRequests(*leaf_deltas);
  if (!requests.ok()) {
    SQ_LOG(kError) << requests.status().ToString();
    log_abort(/*requeued=*/false);
    FinishTxn();
    return;
  }
  if (requests->empty()) {
    // Fully materialized support: pure local propagation.
    poll_wait_ = PollWait{};  // empty wait so ReadyPollFn is callable
    commit();
    return;
  }
  auto plan = vap_->Plan(*requests);
  if (!plan.ok()) {
    SQ_LOG(kError) << plan.status().ToString();
    log_abort(/*requeued=*/false);
    FinishTxn();
    return;
  }
  if (plan->polls.empty()) {
    poll_wait_ = PollWait{};
    commit();
    return;
  }
  // Abort path (exhausted poll retries): put the flushed messages back at
  // the queue front — nothing has been applied yet, so the view still
  // reflects the state before this batch — and retry once the quarantined
  // source has had time to recover.
  auto abort = [this, msgs_shared, log_abort](const Status& st) {
    ++stats_.update_txn_aborts;
    if (options_.record_trace) {
      trace_->Note(scheduler_->Now(),
                   "update txn aborted: " + st.ToString());
    }
    log_abort(/*requeued=*/true);
    queue_.Requeue(std::move(*msgs_shared));
    FinishTxn();
    AfterGuarded(options_.txn_retry_delay, [this]() {
      if (!queue_.Empty()) ScheduleUpdateTxn();
    });
  };
  // Fast-abort when the plan needs a poll of a resyncing source: its
  // answers would be dropped anyway (believed state is being re-based), so
  // skip the timeout rounds and retry after the resync has had time to
  // finish.
  for (const auto& src : plan->PolledSources()) {
    if (resync_.Health(src) != SourceHealth::kHealthy) {
      abort(Status::Unavailable("update txn needs a poll of resyncing " +
                                src));
      return;
    }
  }
  IssuePolls(*plan, commit, abort);
}

void Mediator::SubmitQuery(const ViewQuery& q,
                           std::function<void(Result<ViewAnswer>)> callback) {
  if (crashed_) {
    ++stats_.failed_queries;
    callback(Status::Unavailable("mediator is down"));
    return;
  }
  const Time now = scheduler_->Now();
  if (q.deadline > 0 && now >= q.deadline) {
    // Dead on arrival: reject before spending an admission slot on it.
    ++stats_.deadline_exceeded_queries;
    callback(Status::DeadlineExceeded("query deadline " +
                                      std::to_string(q.deadline) +
                                      " already passed at submit"));
    return;
  }
  // Admission gate: over-limit or soft-budget-shed queries are refused in
  // this very event with a typed error and a retry-after hint — fast
  // rejection is the whole point, they must not queue first.
  MemoryBudget* budget = GlobalMemoryBudget();
  const uint64_t shed_before = admission_.shed_soft_budget();
  Status admit = admission_.Admit(
      q.qclass, budget != nullptr && budget->SoftBreached());
  if (!admit.ok()) {
    if (admission_.shed_soft_budget() > shed_before) {
      ++stats_.queries_shed_soft_budget;
    } else {
      ++stats_.queries_rejected_overload;
    }
    if (options_.record_trace) {
      trace_->Note(now, "query rejected: " + admit.ToString());
    }
    callback(std::move(admit));
    return;
  }
  auto run = std::make_shared<QueryRun>();
  run->query = q;
  run->cb = std::move(callback);
  if (q.deadline > 0) {
    AfterGuarded(q.deadline - now, [this, run]() { OnQueryDeadline(run); });
  }
  if (options_.mvcc_reads) {
    // Poll-free queries take the lock-free snapshot path instead of
    // serializing behind the transaction queue. Eligibility (coverage +
    // plan shape) depends only on the static annotation — never on data or
    // time — so deciding it here is equivalent to deciding at txn start.
    auto prepared = qp_->Prepare(q);
    if (prepared.ok() && SnapshotServable(*prepared) &&
        store_->Snapshot() != nullptr) {
      run->prepared = std::move(prepared).value();
      // NOT std::move(run): the shared_ptr parameter may be constructed
      // before the *run->prepared argument is evaluated.
      ServeSnapshotQuery(*run->prepared, run);
      return;
    }
    // Ineligible (or Prepare failed): fall through to the serialized path,
    // which re-prepares and surfaces any error through the usual machinery.
  }
  EnqueueTxn([this, run = std::move(run)]() { RunQueryTxn(run); });
}

void Mediator::ResolveQuery(const std::shared_ptr<QueryRun>& run,
                            Result<ViewAnswer> answer) {
  if (run == nullptr || run->resolved) return;
  run->resolved = true;
  admission_.Release(run->query.qclass);
  if (!answer.ok()) {
    switch (answer.status().code()) {
      case StatusCode::kDeadlineExceeded:
        ++stats_.deadline_exceeded_queries;
        break;
      case StatusCode::kOverloaded:
        // The only kOverloaded source past admission is the memory budget's
        // hard limit (admission rejections never create a QueryRun).
        ++stats_.queries_cancelled_memory;
        break;
      default:
        break;  // kUnavailable etc. keep their pre-existing counters
    }
  }
  auto cb = std::move(run->cb);
  if (cb) cb(std::move(answer));
}

void Mediator::OnQueryDeadline(std::shared_ptr<QueryRun> run) {
  if (run == nullptr || run->resolved) return;
  const bool running = run == active_query_run_;
  Status expired = Status::DeadlineExceeded(
      "query deadline " + std::to_string(run->query.deadline) +
      " exceeded at " + std::to_string(scheduler_->Now()));
  run->cancel.Cancel(expired);
  if (options_.degraded_reads && run->prepared.has_value()) {
    // Deadline-expiry degradation: abandon the poll round and serve the
    // materialized fraction with staleness annotations, in this very event
    // (no q_proc_delay — the answer must not outlive the deadline further).
    if (options_.record_trace) {
      trace_->Note(scheduler_->Now(),
                   "query degraded at deadline: " + expired.ToString());
    }
    // NOT std::move(run): the shared_ptr parameter may be constructed
    // before the *run->prepared arguments are evaluated.
    ServeDegraded(*run->prepared, run->prepared->query, run,
                  /*immediate=*/true);
    return;
  }
  ResolveQuery(run, std::move(expired));
  // A running query also holds the transaction slot (and possibly a poll
  // round): release both so the next transaction starts and late answers
  // are dropped as stale. A queued query's closure finds `resolved` set and
  // finishes its slot itself when its turn comes.
  if (running) FinishTxn();
}

bool Mediator::SnapshotServable(const PreparedQuery& pq) const {
  auto plan = qp_->PlanFor(pq);
  if (!plan.ok()) return false;
  if (!plan->has_value()) return true;  // materialized data suffices
  return (*plan)->polls.empty();        // VAP assembly, but no source polls
}

void Mediator::PublishStoreSnapshot() {
  if (!options_.mvcc_reads) return;
  store_->PublishSnapshot(UpdateReflect());
  ++stats_.snapshots_published;
}

void Mediator::ServeSnapshotQuery(PreparedQuery pq,
                                  std::shared_ptr<QueryRun> run) {
  ++stats_.snapshot_queries;
  auto serve = [this, pq = std::move(pq), run = std::move(run)]() {
    if (run->resolved) return;  // deadline fired during the processing wait
    // Pin the latest committed version; the whole computation below reads
    // it even if an update transaction commits concurrently. In-sim, apply
    // and publish are atomic within the commit event, so this snapshot is
    // exactly the live committed store — the answer is byte-identical to a
    // serialized no-poll query committing at this instant.
    StoreSnapshotPtr snap = store_->Snapshot();
    if (snap == nullptr) {
      ResolveQuery(run, Status::Internal("mvcc: no published store snapshot"));
      return;
    }
    auto compute = [&]() {
      // The cancel scope makes the memory budget's hard limit able to kill
      // this computation at the kernels' next check site.
      ScopedCancelScope scope(&run->cancel);
      return qp_->Answer(pq, nullptr, nullptr, snap.get());
    };
    auto local = compute();
    if (!local.ok()) {
      ResolveQuery(run, local.status());
      return;
    }
    ViewAnswer answer;
    answer.data = local->data;
    answer.used_virtual = local->used_virtual;
    answer.polls = 0;
    // Materialized/hybrid entries come from the snapshot's commit tag; a
    // virtual contributor's state is irrelevant to a poll-free query, so
    // its entry is "now" — the same rule QueryReflect applies. The entries
    // can only have advanced since the snapshot's publish, so trace order
    // (reflect monotonicity) is preserved.
    TimeVector reflect = snap->reflect();
    for (size_t i = 0; i < sources_.size(); ++i) {
      if (sources_[i]->kind == ContributorKind::kVirtual) {
        reflect[i] = scheduler_->Now();
      }
    }
    answer.reflect = std::move(reflect);
    answer.commit_time = scheduler_->Now();
    ++stats_.query_txns;
    if (options_.record_trace) {
      TraceEntry entry;
      entry.kind = TxnKind::kQuery;
      entry.commit_time = answer.commit_time;
      entry.reflect = answer.reflect;
      entry.polls = 0;
      entry.query = pq.query;
      entry.answer = answer.data;
      trace_->Add(std::move(entry));
    }
    ResolveQuery(run, std::move(answer));
  };
  // The whole computation — snapshot pin included — runs at completion
  // time, so the recorded reflect can never precede an update entry that
  // committed while this query was "processing".
  if (options_.q_proc_delay > 0) {
    AfterGuarded(options_.q_proc_delay, std::move(serve));
  } else {
    serve();
  }
}

void Mediator::RunQueryTxn(std::shared_ptr<QueryRun> run) {
  if (run->resolved) {
    // Resolved while queued (its deadline fired first): the slot it was
    // waiting for is all it still holds — release it.
    FinishTxn();
    return;
  }
  active_query_run_ = run;
  // Normalize + coverage analysis once; every later step reuses the
  // prepared form instead of re-deriving it.
  auto prepared = qp_->Prepare(run->query);
  if (!prepared.ok()) {
    ResolveQuery(run, prepared.status());
    FinishTxn();
    return;
  }
  run->prepared = std::move(prepared).value();
  const PreparedQuery& pq = *run->prepared;
  ViewQuery nq = pq.query;  // trace/callback view of the query

  auto finish_with = [this, nq, run](const QueryProcessor::LocalAnswer& local,
                                     const std::vector<std::string>& polled) {
    ViewAnswer answer;
    answer.data = local.data;
    answer.used_virtual = local.used_virtual;
    answer.polls = local.polls;
    answer.reflect = QueryReflect(polled);
    auto complete = [this, nq, run, answer]() mutable {
      // Deadline fired during the q_proc_delay wait: the deadline handler
      // already resolved the query AND finished the transaction slot.
      if (run->resolved) return;
      answer.commit_time = scheduler_->Now();
      ++stats_.query_txns;
      stats_.polls += answer.polls;
      if (options_.record_trace) {
        TraceEntry entry;
        entry.kind = TxnKind::kQuery;
        entry.commit_time = answer.commit_time;
        entry.reflect = answer.reflect;
        entry.polls = answer.polls;
        entry.query = nq;
        entry.answer = answer.data;
        trace_->Add(std::move(entry));
      }
      ResolveQuery(run, std::move(answer));
      FinishTxn();
    };
    if (options_.q_proc_delay > 0) {
      AfterGuarded(options_.q_proc_delay, complete);
    } else {
      complete();
    }
  };

  auto plan = qp_->PlanFor(pq);
  if (!plan.ok()) {
    ResolveQuery(run, plan.status());
    FinishTxn();
    return;
  }
  if (!plan->has_value()) {
    // Materialized data suffices. The cancel scope lets the memory budget's
    // hard limit kill the computation at the kernels' next check site.
    auto compute = [&]() {
      ScopedCancelScope scope(&run->cancel);
      return qp_->Answer(pq, nullptr, nullptr);
    };
    auto local = compute();
    if (!local.ok()) {
      ResolveQuery(run, local.status());
      FinishTxn();
      return;
    }
    finish_with(*local, {});
    return;
  }

  VapPlan vap_plan = std::move(**plan);
  auto execute = [this, vap_plan, finish_with, run]() {
    if (run->resolved) return;  // defensive; the wait dies with the txn slot
    const PreparedQuery& epq = *run->prepared;
    Vap::PollFn poll = ReadyPollFn();
    Vap::CompensationFn comp = MakeCompensation(nullptr);
    auto compute = [&]() -> Result<QueryProcessor::LocalAnswer> {
      // Cancellable region: the VAP assembly loop checks between build
      // steps, the kernels every kCancelCheckRows rows.
      ScopedCancelScope scope(&run->cancel);
      SQ_ASSIGN_OR_RETURN(TempStore temps, vap_->Execute(vap_plan, poll, comp));
      SQ_ASSIGN_OR_RETURN(QueryProcessor::LocalAnswer local,
                          qp_->AnswerWithTemps(epq, temps));
      local.polls = temps.polls;
      local.polled_tuples = temps.polled_tuples;
      return local;
    };
    auto local = compute();
    if (!local.ok()) {
      ResolveQuery(run, local.status());
      FinishTxn();
      return;
    }
    stats_.polled_tuples += local->polled_tuples;
    finish_with(*local, vap_plan.PolledSources());
  };
  if (vap_plan.polls.empty()) {
    poll_wait_ = PollWait{};
    execute();
    return;
  }
  // Degraded reads, proactive: polling a source known to be down (suspect,
  // resyncing, or quarantined) would only burn the timeout rounds; serve
  // the materialized data with staleness annotations immediately.
  if (options_.degraded_reads) {
    for (const auto& src : vap_plan.PolledSources()) {
      SourceRuntime* rt = FindSource(src);
      if (rt != nullptr && SourceDown(*rt)) {
        ServeDegraded(pq, nq, run, /*immediate=*/false);
        return;
      }
    }
  }
  // Queries have a caller to report to: fail over instead of retrying —
  // or, with degraded reads on, fall back to the materialized data (the
  // reactive path: the source went silent without a known-down marker).
  auto fail = [this, nq, run](const Status& st) {
    if (options_.degraded_reads) {
      if (options_.record_trace) {
        trace_->Note(scheduler_->Now(),
                     "query degraded after poll failure: " + st.ToString());
      }
      ServeDegraded(*run->prepared, nq, run, /*immediate=*/false);
      return;
    }
    ++stats_.failed_queries;
    if (options_.record_trace) {
      trace_->Note(scheduler_->Now(), "query failed: " + st.ToString());
    }
    ResolveQuery(run, st);
    FinishTxn();
  };
  IssuePolls(vap_plan, execute, fail);
}

void Mediator::ServeDegraded(const PreparedQuery& pq, const ViewQuery& nq,
                             std::shared_ptr<QueryRun> run, bool immediate) {
  // Deliberately NO cancel scope here: a query being degraded at its
  // deadline has a cancelled token, and the fallback computation must not
  // kill itself at the kernels' check sites — it IS the error handling.
  auto local = qp_->AnswerDegraded(pq);
  if (!local.ok()) {
    // Nothing materialized to serve: fail over exactly as without degraded
    // reads — except a deadline-triggered call surfaces its typed reason.
    const bool running = run == active_query_run_;
    Status st = run->cancel.cancelled() ? run->cancel.status() : local.status();
    if (!run->cancel.cancelled()) ++stats_.failed_queries;
    if (options_.record_trace) {
      trace_->Note(scheduler_->Now(), "query failed: " + st.ToString());
    }
    ResolveQuery(run, std::move(st));
    if (running) FinishTxn();
    return;
  }
  ViewAnswer answer;
  answer.data = std::move(local->data);
  answer.degraded = true;
  answer.missing_attrs = std::move(local->missing_attrs);
  answer.cond_dropped = local->cond_dropped;
  answer.reflect = UpdateReflect();
  auto complete = [this, nq, answer = std::move(answer),
                   run = std::move(run)]() mutable {
    // Deadline fired during the q_proc_delay wait: the deadline handler
    // re-served this query immediately (and finished the txn slot).
    if (run->resolved) return;
    const bool running = run == active_query_run_;
    answer.commit_time = scheduler_->Now();
    std::vector<bool> down;
    down.reserve(sources_.size());
    for (const auto& rt : sources_) down.push_back(SourceDown(*rt));
    answer.staleness =
        AnnotateStaleness(SourceNames(), ContributorKinds(), answer.reflect,
                          answer.commit_time, down);
    ++stats_.degraded_queries;
    // Recorded as a trace NOTE, not a kQuery entry: degraded answers are
    // deliberately inconsistent (stale + attribute-truncated), so the
    // consistency checker must not judge them — but they stay part of the
    // byte-identical replay surface.
    if (options_.record_trace) {
      std::string note =
          "degraded query " + nq.ToString() + " -> " +
          std::to_string(answer.data.DistinctSize()) + " tuples";
      for (const auto& s : answer.staleness) note += " " + s.ToString();
      trace_->Note(answer.commit_time, note);
    }
    ResolveQuery(run, std::move(answer));
    // Only the transaction-owning query releases the slot; a deadline-
    // degraded MVCC query never held it.
    if (running) FinishTxn();
  };
  if (!immediate && options_.q_proc_delay > 0) {
    AfterGuarded(options_.q_proc_delay, std::move(complete));
  } else {
    complete();
  }
}

std::vector<ContributorKind> Mediator::ContributorKinds() const {
  std::vector<ContributorKind> out;
  for (const auto& rt : sources_) out.push_back(rt->kind);
  return out;
}

std::vector<std::string> Mediator::SourceNames() const {
  std::vector<std::string> out;
  for (const auto& rt : sources_) out.push_back(rt->setup.db->name());
  return out;
}

std::vector<DelayProfile> Mediator::DelayProfiles() const {
  std::vector<DelayProfile> out;
  for (const auto& rt : sources_) {
    DelayProfile p;
    p.ann_delay = std::max<Time>(0, rt->setup.announce_period);
    p.comm_delay = rt->setup.comm_delay;
    p.q_proc_delay = rt->setup.q_proc_delay;
    out.push_back(p);
  }
  return out;
}

MediatorDelays Mediator::Delays() const {
  MediatorDelays d;
  d.u_hold_delay = std::max<Time>(0, options_.update_period);
  d.u_proc_delay = options_.u_proc_delay;
  d.q_proc_delay = options_.q_proc_delay;
  return d;
}

TimeVector Mediator::CurrentReflect() const { return UpdateReflect(); }

HardState Mediator::BuildHardState() const {
  HardState hs;
  for (const auto& node : store_->MaterializedNodes()) {
    hs.repos.emplace(node, **store_->Repo(node));
  }
  hs.queue = queue_.Snapshot();
  for (const auto& rt : sources_) {
    const std::string& name = rt->setup.db->name();
    HardState::SourceState ss;
    ss.last_update_seq = rt->last_update_seq;
    ss.last_reflected_send = rt->last_reflected_send;
    ss.quarantined = rt->quarantined;
    ss.epoch = resync_.Epoch(name);
    ss.health = static_cast<uint8_t>(resync_.Health(name));
    hs.sources.emplace(name, ss);
    if (resync_.NeedsResync(name)) {
      hs.mirrors.emplace(name, resync_.Mirror(name));
    }
  }
  hs.next_txn_id = next_txn_id_;
  hs.next_resync_id = next_resync_id_;
  hs.snapshot_version = store_->SnapshotVersion();
  return hs;
}

void Mediator::MaybeCheckpoint() {
  if (!durability_.CheckpointDue(commits_since_checkpoint_)) return;
  Status st = durability_.WriteCheckpoint(BuildHardState());
  if (!st.ok()) {
    // Non-fatal: the previous generation stays valid and the WAL suffix
    // just grows until a later attempt succeeds.
    SQ_LOG(kError) << "checkpoint failed: " << st.ToString();
    ++stats_.checkpoint_failures;
    return;
  }
  commits_since_checkpoint_ = 0;
  if (options_.record_trace) {
    trace_->Note(scheduler_->Now(), "checkpoint written");
  }
}

void Mediator::Crash() {
  if (!started_ || crashed_) return;
  crashed_ = true;
  ++epoch_;  // every timer of this incarnation is now a no-op
  ++stats_.mediator_crashes;
  busy_ = false;
  update_txn_scheduled_ = false;
  capturing_deltas_ = false;
  txn_delta_capture_.clear();
  pending_txns_.clear();
  poll_wait_.reset();
  current_inflight_ = nullptr;
  // Every admitted query dies with the process (its callback never fires,
  // like the cleared pending_txns_); the gate must not carry their slots
  // into the next incarnation. The deadline timers they armed are
  // epoch-guarded no-ops now.
  active_query_run_ = nullptr;
  admission_.ResetInflight();
  queue_.Restore({});
  resync_.WipeVolatile();
  next_resync_id_ = 1;
  for (auto& rt : sources_) {
    rt->last_update_seq = 0;
    rt->last_reflected_send = 0;
    rt->quarantined = false;
    rt->ever_quarantined = false;
    rt->poll_failures = 0;
  }
  // The repositories are volatile memory; wipe them in place (the VAP/IUP/QP
  // hold pointers to the store, so the store object itself must survive).
  for (const auto& node : store_->MaterializedNodes()) {
    const Relation& cur = **store_->Repo(node);
    Status st = store_->SetRepo(node, Relation(cur.schema(), cur.semantics()));
    if (!st.ok()) {
      SQ_LOG(kError) << "crash wipe failed: " << st.ToString();
    }
  }
  // The trace and stats model EXTERNAL observability (a monitoring system),
  // not process memory, so they deliberately survive the crash.
  if (options_.record_trace) {
    trace_->Note(scheduler_->Now(), "mediator crash");
  }
}

Status Mediator::Recover() {
  if (!started_) {
    return Status::FailedPrecondition("mediator was never started");
  }
  if (!crashed_) {
    return Status::FailedPrecondition("mediator is not crashed");
  }
  if (!durability_.enabled()) {
    return Status::FailedPrecondition(
        "durability disabled: the mediator's state is gone");
  }
  SQ_ASSIGN_OR_RETURN(RecoveredState rec, durability_.Recover());
  for (auto& [node, rel] : rec.state.repos) {
    SQ_RETURN_IF_ERROR(store_->SetRepo(node, std::move(rel)));
  }
  queue_.Restore(std::move(rec.state.queue));
  for (auto& rt : sources_) {
    auto it = rec.state.sources.find(rt->setup.db->name());
    if (it == rec.state.sources.end()) continue;
    rt->last_update_seq = it->second.last_update_seq;
    rt->last_reflected_send = it->second.last_reflected_send;
    rt->quarantined = it->second.quarantined;
    resync_.SetEpoch(rt->setup.db->name(), it->second.epoch);
    resync_.SetHealth(rt->setup.db->name(),
                      static_cast<SourceHealth>(it->second.health));
  }
  for (auto& [source, rels] : rec.state.mirrors) {
    for (auto& [rel_name, rel] : rels) {
      Status ms = resync_.SetMirror(source, rel_name, std::move(rel));
      if (!ms.ok()) {
        SQ_LOG(kError) << "mirror restore failed: " << ms.ToString();
      }
    }
  }
  next_txn_id_ = rec.state.next_txn_id;
  next_resync_id_ = rec.state.next_resync_id;
  // MVCC: resume the version chain strictly past everything the dead
  // incarnation may have published (WAL replay can run past the checkpoint,
  // so advance by the replayed commits too), then publish the recovered
  // repositories as a fresh version.
  store_->EnsureSnapshotVersionAtLeast(rec.state.snapshot_version +
                                       rec.txns_replayed);
  crashed_ = false;
  ++stats_.recoveries;
  stats_.recovery_txns_replayed += rec.txns_replayed;
  stats_.recovery_txns_rolled_back += rec.txns_rolled_back;
  stats_.recovery_msgs_requeued += rec.msgs_requeued;
  stats_.recovery_tail_repairs += rec.tail_records_dropped;
  stats_.recovery_checkpoint_fallbacks += rec.checkpoint_fallbacks;
  if (options_.record_trace) {
    trace_->Note(scheduler_->Now(),
                 "mediator recovered: replayed=" +
                     std::to_string(rec.txns_replayed) + " rolled_back=" +
                     std::to_string(rec.txns_rolled_back) + " requeued=" +
                     std::to_string(rec.msgs_requeued) + " tail_dropped=" +
                     std::to_string(rec.tail_records_dropped) +
                     " ckpt_fallbacks=" +
                     std::to_string(rec.checkpoint_fallbacks));
  }
  // MVCC: the recovered repositories become the next version on the same
  // chain (every node is dirty after the SetRepo restores above).
  PublishStoreSnapshot();
  // A post-recovery checkpoint bounds the next recovery's replay and
  // truncates the log the dead incarnation left behind. Failure is
  // non-fatal: the generation we just recovered from remains on disk.
  Status ckpt = durability_.WriteCheckpoint(BuildHardState());
  if (ckpt.ok()) {
    commits_since_checkpoint_ = 0;
  } else {
    SQ_LOG(kError) << "post-recovery checkpoint failed: " << ckpt.ToString();
    ++stats_.checkpoint_failures;
  }
  // Re-arm the update policy in the new incarnation. Under the immediate
  // policy the re-queued messages' triggers died with the old timers, so
  // fire one explicitly.
  if (options_.update_period > 0) {
    AfterGuarded(options_.update_period, [this]() { PeriodicTick(); });
  } else if (!queue_.Empty()) {
    ScheduleUpdateTxn();
  }
  // Re-initiate resyncs the dead incarnation left unfinished. The fresh
  // request id (next_resync_id_ is durable) guarantees a snapshot answered
  // to the old incarnation can never complete the new pull.
  for (auto& rt : sources_) {
    const std::string& name = rt->setup.db->name();
    if (!resync_.NeedsResync(name) ||
        resync_.Health(name) == SourceHealth::kHealthy) {
      continue;
    }
    if (options_.record_trace) {
      trace_->Note(scheduler_->Now(), "resync resumed " + name);
    }
    RequestSnapshot(rt.get());
  }
  // Paranoid resync: when recovery repaired storage damage (or the
  // deployment asked for it unconditionally), the log's tail may be missing
  // announcements the sources believe were acked — undetectable from the
  // log alone, since a torn tail and a quiet period look identical. A
  // snapshot pull per mirrored source restores the lost content.
  if (rec.anomalies() || options_.durability.resync_on_recovery) {
    for (auto& rt : sources_) {
      const std::string& name = rt->setup.db->name();
      if (!resync_.NeedsResync(name) ||
          resync_.Health(name) != SourceHealth::kHealthy) {
        continue;  // virtual source, or a pull is already in flight
      }
      ++stats_.resyncs_after_recovery;
      BeginResync(rt.get(), resync_.Epoch(name));
    }
  }
  return Status::OK();
}

Status Mediator::CrashAndRecover() {
  Crash();
  return Recover();
}

}  // namespace squirrel
