// The mediator's incremental update queue (paper §4, §6.1).
//
// Holds UpdateMessages from the sources in arrival order. The IUP flushes
// the whole queue at the start of each update transaction; between flushes
// the Eager-Compensation machinery reads (without removing) the pending
// deltas of a given source to roll poll answers back to the reflected state.

#ifndef SQUIRREL_MEDIATOR_UPDATE_QUEUE_H_
#define SQUIRREL_MEDIATOR_UPDATE_QUEUE_H_

#include <deque>
#include <map>
#include <string>
#include <vector>

#include "common/memory_budget.h"
#include "common/status.h"
#include "source/messages.h"

namespace squirrel {

/// \brief FIFO of update announcements with ECA read access.
class UpdateQueue {
 public:
  UpdateQueue() = default;
  /// Returns whatever the queue still has charged to the memory budget.
  ~UpdateQueue();
  UpdateQueue(const UpdateQueue&) = delete;
  UpdateQueue& operator=(const UpdateQueue&) = delete;

  /// Appends a message (called by the mediator's channel receiver). When a
  /// coalesce window is set and WouldCoalesce(msg) holds, the message is
  /// merged into the tail instead: deltas smash, the tail takes the later
  /// seq and send_time. Because only consecutive same-source tail messages
  /// merge — messages that would be flushed in the same transaction anyway —
  /// transaction boundaries, PendingFrom and LastPendingSendTime are
  /// unaffected; the win is net-change cancellation and fewer per-message
  /// loops downstream.
  void Enqueue(UpdateMessage msg);

  /// True iff Enqueue would merge \p msg into the current tail: a window is
  /// configured, the tail exists, comes from the same source IN THE SAME
  /// incarnation epoch, and \p msg's send_time is within the window of the
  /// tail's. Epochs never merge: coalescing across a restart would stamp
  /// pre-restart atoms with the post-restart epoch and poison the per-epoch
  /// seq dedup floor. The mediator consults this BEFORE writing the enqueue
  /// WAL record so replay can mirror the merge decision exactly.
  bool WouldCoalesce(const UpdateMessage& msg) const;

  /// Sets the coalescing batch window (0 disables, the default).
  void SetCoalesceWindow(Time window) { coalesce_window_ = window; }
  /// The configured coalescing window.
  Time coalesce_window() const { return coalesce_window_; }

  /// Backpressure shed: merges the oldest message that has a later message
  /// from the same source forward into that later message, freeing one
  /// queue slot without losing any net change (per-source FIFO order and
  /// PendingFrom/LastPendingSendTime are unaffected). Returns false when no
  /// two messages share a source, i.e. the queue cannot shrink losslessly.
  /// The mediator invokes this only while a source is resyncing and
  /// MediatorOptions::max_queue_depth is exceeded — never silently in
  /// normal operation.
  bool CoalesceOldest();

  /// True iff CoalesceOldest would succeed: some message has a later message
  /// from the same source. The mediator consults this BEFORE writing the
  /// shed WAL record so a logged shed always corresponds to a real merge —
  /// shed records and live merges stay in lockstep even when the log device
  /// rejects the write (the shed is then skipped, not left unlogged).
  bool CanCoalesceOldest() const;

  /// The shed algorithm on a raw deque, shared with WAL replay so a logged
  /// shed record reproduces the live queue's merge exactly. \p skip protects
  /// the first messages from the search: replay's queue still holds an open
  /// transaction's flushed messages at the front, which the live queue had
  /// already handed out when it shed.
  static bool CoalesceOldestIn(std::deque<UpdateMessage>* q, size_t skip = 0);

  /// True iff no messages are waiting.
  bool Empty() const { return messages_.empty(); }
  /// Number of waiting messages.
  size_t Size() const { return messages_.size(); }

  /// Removes and returns all waiting messages, in arrival order. This is
  /// the empty_queue(t) instant of paper §6.1.
  std::vector<UpdateMessage> Flush();

  /// Puts flushed-but-unprocessed messages back at the FRONT of the queue,
  /// preserving their order. Used when an update transaction aborts (poll
  /// timeout): the messages are older than anything that arrived since, so
  /// re-queueing at the front keeps every source's FIFO stream intact.
  void Requeue(std::vector<UpdateMessage> msgs);

  /// Copy of all waiting messages in queue order (front first). Used by the
  /// durability checkpointer; does not remove anything.
  std::vector<UpdateMessage> Snapshot() const;

  /// Replaces the queue contents with \p msgs (front first) without touching
  /// the lifetime counters. Crash recovery rebuilds the queue with this;
  /// Crash() wipes it with an empty vector.
  void Restore(std::vector<UpdateMessage> msgs);

  /// Smash of the deltas of all *waiting* messages from \p source (arrival
  /// order). Used by Eager Compensation; does not remove anything.
  Result<MultiDelta> PendingFrom(const std::string& source) const;

  /// Send time of the last waiting message from \p source (or \p fallback).
  Time LastPendingSendTime(const std::string& source, Time fallback) const;

  /// Total messages ever enqueued.
  uint64_t TotalEnqueued() const { return total_enqueued_; }
  /// Total delta atoms ever enqueued.
  uint64_t TotalAtoms() const { return total_atoms_; }
  /// Total messages ever re-queued after an aborted transaction.
  uint64_t TotalRequeued() const { return total_requeued_; }
  /// Total messages merged into a tail message instead of appended.
  uint64_t TotalCoalesced() const { return total_coalesced_; }
  /// Total messages shed by CoalesceOldest (backpressure during resync).
  uint64_t TotalShed() const { return total_shed_; }

 private:
  /// Approximate bytes of the current contents (message + atom heuristic).
  size_t ApproxBytesOf() const;
  /// Re-syncs the memory-budget charge with the current contents: charges
  /// growth, releases shrinkage (DESIGN.md §15). Every mutator calls this.
  void Recharge();

  std::deque<UpdateMessage> messages_;
  Time coalesce_window_ = 0.0;
  uint64_t total_enqueued_ = 0;
  uint64_t total_atoms_ = 0;
  uint64_t total_requeued_ = 0;
  uint64_t total_coalesced_ = 0;
  uint64_t total_shed_ = 0;
  // Memory-budget accounting state (see Recharge).
  MemoryBudget* budget_ = nullptr;
  size_t charged_ = 0;
};

}  // namespace squirrel

#endif  // SQUIRREL_MEDIATOR_UPDATE_QUEUE_H_
