// Anti-entropy resync of restarted sources (no paper counterpart; see
// DESIGN.md "Source failure model & resync").
//
// The paper's correctness story presumes sources never lose state. A real
// source that crashes and restarts comes back with its volatile session
// state gone: the announcer's pending batch (committed-but-unannounced
// deltas) is lost and its sequence numbering restarts. The mediator detects
// the new incarnation by the epoch stamped into every message and moves the
// source through a healthy -> suspect -> resyncing -> healthy lifecycle:
//
//   1. An epoch bump (or a per-source sequence gap) marks the source
//      suspect; its updates are dropped (the snapshot will cover them) and
//      a SnapshotRequest for every leaf-referenced relation goes out.
//   2. The source answers with its full current extents. Because the
//      answer shares the FIFO channel with announcements and the source
//      flushes its announcer before answering, every update message the
//      mediator ever received from the source is covered by either an
//      earlier accepted message or the snapshot itself.
//   3. The ResyncManager diffs the snapshot against what the mediator
//      BELIEVES the source holds — a per-source full-relation mirror
//      advanced at every update-transaction commit, plus the net change of
//      messages still queued or in flight — and synthesizes a corrective
//      MultiDelta. Pushed through the normal IUP kernel as an ordinary
//      update message, it converges every downstream VDP node (and index)
//      without a view rebuild.
//
// The mirrors are part of the mediator's hard state: checkpoints carry
// them, and committed-transaction WAL records carry the per-source net
// changes so replay keeps mirror and repositories in lockstep.

#ifndef SQUIRREL_MEDIATOR_RESYNC_H_
#define SQUIRREL_MEDIATOR_RESYNC_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "delta/delta.h"
#include "relational/relation.h"

namespace squirrel {

/// Lifecycle of a source as the mediator sees it.
enum class SourceHealth : uint8_t {
  kHealthy = 0,    ///< normal operation
  kSuspect = 1,    ///< new incarnation detected, snapshot not yet requested
  kResyncing = 2,  ///< snapshot requested; updates dropped until it lands
};

const char* ToString(SourceHealth health);

/// \brief Tracks per-source epoch/health and the believed-state mirrors the
/// corrective diff is computed against.
///
/// Pure state + diff logic: the mediator drives channel I/O, WAL records,
/// and the lifecycle transitions' side effects.
class ResyncManager {
 public:
  ResyncManager() = default;

  /// Registers a source. Announcing sources pass the full source schemas of
  /// every relation a VDP leaf references; those relations are mirrored.
  /// Virtual-only contributors pass an empty map (epoch tracking only —
  /// their poll answers always reflect their live state, so an epoch bump
  /// needs no resync).
  void Register(const std::string& source,
                std::map<std::string, Schema> relations);

  /// True iff \p source announces and therefore has mirrored relations.
  bool NeedsResync(const std::string& source) const;

  /// Mirrored relation names of \p source, sorted (the SnapshotRequest
  /// extent list).
  std::vector<std::string> Relations(const std::string& source) const;

  // ---- epoch / health ----
  uint64_t Epoch(const std::string& source) const;
  void SetEpoch(const std::string& source, uint64_t epoch);
  SourceHealth Health(const std::string& source) const;
  void SetHealth(const std::string& source, SourceHealth health);
  /// True iff any registered source is not healthy.
  bool AnyUnhealthy() const;
  /// Names of sources with health != kHealthy, sorted.
  std::vector<std::string> UnhealthySources() const;

  /// Outstanding snapshot-request id for \p source (0 = none). Answers with
  /// any other id are stale and dropped.
  uint64_t OutstandingRequest(const std::string& source) const;
  void SetOutstandingRequest(const std::string& source, uint64_t id);

  // ---- mirrors ----
  /// Installs the initial (or recovered) extent of one mirrored relation.
  Status SetMirror(const std::string& source, const std::string& rel_name,
                   Relation contents);
  /// Read access for checkpointing; empty map for unknown sources.
  const std::map<std::string, Relation>& Mirror(
      const std::string& source) const;

  /// Advances \p source's mirror by the net change of a committed update
  /// transaction (deltas of untracked relations are ignored — they feed no
  /// VDP leaf).
  Status Advance(const std::string& source, const MultiDelta& delta);

  /// Synthesizes the corrective net change that moves the mediator's
  /// believed state of \p source — mirror plus \p in_transit (queued and
  /// in-flight messages' smashed deltas) — onto \p snapshot.
  Result<MultiDelta> Corrective(
      const std::string& source, const MultiDelta& in_transit,
      const std::map<std::string, Relation>& snapshot) const;

  /// Crash(): wipes volatile state back to defaults (epoch 1, healthy,
  /// empty mirrors). Recover() rebuilds via SetEpoch/SetHealth/SetMirror.
  void WipeVolatile();

 private:
  struct SourceState {
    uint64_t epoch = 1;
    SourceHealth health = SourceHealth::kHealthy;
    uint64_t outstanding_request = 0;
    std::map<std::string, Relation> mirror;
    bool announces = false;
  };

  const SourceState* Find(const std::string& source) const;
  SourceState* Find(const std::string& source);

  std::map<std::string, SourceState> sources_;
};

}  // namespace squirrel

#endif  // SQUIRREL_MEDIATOR_RESYNC_H_
