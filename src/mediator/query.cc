#include "mediator/query.h"

#include <sstream>

#include "common/strings.h"
#include "relational/algebra.h"
#include "relational/parser.h"

namespace squirrel {

std::string SourceStaleness::ToString() const {
  std::ostringstream os;
  os << source << ":" << (down ? "down" : "up") << ":stale<=" << staleness;
  return os.str();
}

std::string ViewQuery::ToString() const {
  std::string out = relation;
  if (cond && !cond->IsTrueLiteral()) {
    out = "select[" + cond->ToString() + "](" + out + ")";
  }
  if (!attrs.empty()) {
    out = "project[" + Join(attrs, ", ") + "](" + out + ")";
  }
  if (deadline != 0) {
    out += " deadline=" + std::to_string(deadline);
  }
  if (qclass != QueryClass::kInteractive) {
    out += std::string(" class=") + QueryClassName(qclass);
  }
  return out;
}

Result<ViewQuery> ParseViewQuery(const std::string& text) {
  SQ_ASSIGN_OR_RETURN(AlgebraExpr::Ptr expr, ParseAlgebra(text));
  ViewQuery q;
  const AlgebraExpr* e = expr.get();
  if (e->kind() == AlgebraExpr::Kind::kProject) {
    q.attrs = e->attrs();
    e = e->left().get();
  }
  if (e->kind() == AlgebraExpr::Kind::kSelect) {
    q.cond = e->condition();
    e = e->left().get();
  }
  if (e->kind() != AlgebraExpr::Kind::kScan) {
    return Status::Unsupported(
        "view queries must be project[..](select[..](Relation)) forms: " +
        text);
  }
  q.relation = e->relation();
  return q;
}

}  // namespace squirrel
