#include "mediator/contributor.h"

#include <set>

namespace squirrel {

const char* ContributorKindName(ContributorKind kind) {
  switch (kind) {
    case ContributorKind::kMaterialized:
      return "materialized-contributor";
    case ContributorKind::kHybrid:
      return "hybrid-contributor";
    case ContributorKind::kVirtual:
      return "virtual-contributor";
  }
  return "?";
}

ContributorKind ClassifyContributor(const Vdp& vdp, const Annotation& ann,
                                    const std::string& source_db) {
  // Reachable set: every node derivable (transitively) from this source's
  // leaves. Topological order makes one pass sufficient.
  std::set<std::string> reachable;
  for (const auto& name : vdp.TopoOrder()) {
    const VdpNode* node = vdp.Find(name);
    if (node->is_leaf) {
      if (node->source_db == source_db) reachable.insert(name);
      continue;
    }
    for (const auto& child : node->def->Children()) {
      if (reachable.count(child)) {
        reachable.insert(name);
        break;
      }
    }
  }
  bool feeds_materialized = false;
  bool feeds_virtual = false;
  for (const auto& name : reachable) {
    const VdpNode* node = vdp.Find(name);
    if (node->is_leaf) continue;
    if (!ann.MaterializedAttrs(vdp, name).empty()) feeds_materialized = true;
    if (!ann.VirtualAttrs(vdp, name).empty()) feeds_virtual = true;
  }
  if (feeds_materialized && feeds_virtual) return ContributorKind::kHybrid;
  if (feeds_materialized) return ContributorKind::kMaterialized;
  return ContributorKind::kVirtual;
}

}  // namespace squirrel
