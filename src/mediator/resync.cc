#include "mediator/resync.h"

namespace squirrel {

const char* ToString(SourceHealth health) {
  switch (health) {
    case SourceHealth::kHealthy:
      return "healthy";
    case SourceHealth::kSuspect:
      return "suspect";
    case SourceHealth::kResyncing:
      return "resyncing";
  }
  return "unknown";
}

void ResyncManager::Register(const std::string& source,
                             std::map<std::string, Schema> relations) {
  SourceState& ss = sources_[source];
  ss.announces = !relations.empty();
  for (auto& [rel_name, schema] : relations) {
    ss.mirror.emplace(rel_name, Relation(schema, Semantics::kSet));
  }
}

const ResyncManager::SourceState* ResyncManager::Find(
    const std::string& source) const {
  auto it = sources_.find(source);
  return it == sources_.end() ? nullptr : &it->second;
}

ResyncManager::SourceState* ResyncManager::Find(const std::string& source) {
  auto it = sources_.find(source);
  return it == sources_.end() ? nullptr : &it->second;
}

bool ResyncManager::NeedsResync(const std::string& source) const {
  const SourceState* ss = Find(source);
  return ss != nullptr && ss->announces;
}

std::vector<std::string> ResyncManager::Relations(
    const std::string& source) const {
  std::vector<std::string> out;
  const SourceState* ss = Find(source);
  if (ss == nullptr) return out;
  for (const auto& [rel_name, rel] : ss->mirror) {
    (void)rel;
    out.push_back(rel_name);
  }
  return out;
}

uint64_t ResyncManager::Epoch(const std::string& source) const {
  const SourceState* ss = Find(source);
  return ss == nullptr ? 1 : ss->epoch;
}

void ResyncManager::SetEpoch(const std::string& source, uint64_t epoch) {
  SourceState* ss = Find(source);
  if (ss != nullptr) ss->epoch = epoch;
}

SourceHealth ResyncManager::Health(const std::string& source) const {
  const SourceState* ss = Find(source);
  return ss == nullptr ? SourceHealth::kHealthy : ss->health;
}

void ResyncManager::SetHealth(const std::string& source,
                              SourceHealth health) {
  SourceState* ss = Find(source);
  if (ss != nullptr) ss->health = health;
}

bool ResyncManager::AnyUnhealthy() const {
  for (const auto& [name, ss] : sources_) {
    (void)name;
    if (ss.health != SourceHealth::kHealthy) return true;
  }
  return false;
}

std::vector<std::string> ResyncManager::UnhealthySources() const {
  std::vector<std::string> out;
  for (const auto& [name, ss] : sources_) {
    if (ss.health != SourceHealth::kHealthy) out.push_back(name);
  }
  return out;
}

uint64_t ResyncManager::OutstandingRequest(const std::string& source) const {
  const SourceState* ss = Find(source);
  return ss == nullptr ? 0 : ss->outstanding_request;
}

void ResyncManager::SetOutstandingRequest(const std::string& source,
                                          uint64_t id) {
  SourceState* ss = Find(source);
  if (ss != nullptr) ss->outstanding_request = id;
}

Status ResyncManager::SetMirror(const std::string& source,
                                const std::string& rel_name,
                                Relation contents) {
  SourceState* ss = Find(source);
  if (ss == nullptr) {
    return Status::NotFound("resync: unknown source " + source);
  }
  auto it = ss->mirror.find(rel_name);
  if (it == ss->mirror.end()) {
    return Status::NotFound("resync: " + source + " does not mirror " +
                            rel_name);
  }
  it->second = std::move(contents);
  return Status::OK();
}

const std::map<std::string, Relation>& ResyncManager::Mirror(
    const std::string& source) const {
  static const std::map<std::string, Relation> kEmpty;
  const SourceState* ss = Find(source);
  return ss == nullptr ? kEmpty : ss->mirror;
}

Status ResyncManager::Advance(const std::string& source,
                              const MultiDelta& delta) {
  SourceState* ss = Find(source);
  if (ss == nullptr || !ss->announces) return Status::OK();
  for (const auto& rel_name : delta.RelationNames()) {
    auto it = ss->mirror.find(rel_name);
    if (it == ss->mirror.end()) continue;  // feeds no VDP leaf
    const Delta* d = delta.Find(rel_name);
    SQ_RETURN_IF_ERROR(ApplyDelta(&it->second, *d));
  }
  return Status::OK();
}

Result<MultiDelta> ResyncManager::Corrective(
    const std::string& source, const MultiDelta& in_transit,
    const std::map<std::string, Relation>& snapshot) const {
  const SourceState* ss = Find(source);
  if (ss == nullptr || !ss->announces) {
    return Status::FailedPrecondition("resync: " + source +
                                      " is not an announcing source");
  }
  MultiDelta out;
  for (const auto& [rel_name, mirror_rel] : ss->mirror) {
    // Believed state = mirror (everything committed) + in-transit net
    // change (messages accepted but not yet applied). The deltas were
    // valid against the source's own sequence of states, so applying the
    // smash to the mirror is strict-apply safe.
    Relation believed = mirror_rel;
    const Delta* d = in_transit.Find(rel_name);
    if (d != nullptr) {
      SQ_RETURN_IF_ERROR(ApplyDelta(&believed, *d));
    }
    auto sit = snapshot.find(rel_name);
    if (sit == snapshot.end()) {
      return Status::Internal("resync: snapshot of " + source +
                              " is missing relation " + rel_name);
    }
    SQ_ASSIGN_OR_RETURN(Delta corrective,
                        Delta::Between(believed, sit->second));
    if (!corrective.Empty()) {
      *out.Mutable(rel_name, mirror_rel.schema()) = std::move(corrective);
    }
  }
  return out;
}

void ResyncManager::WipeVolatile() {
  for (auto& [name, ss] : sources_) {
    (void)name;
    ss.epoch = 1;
    ss.health = SourceHealth::kHealthy;
    ss.outstanding_request = 0;
    for (auto& [rel_name, rel] : ss.mirror) {
      (void)rel_name;
      rel = Relation(rel.schema(), rel.semantics());
    }
  }
}

}  // namespace squirrel
