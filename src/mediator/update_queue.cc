#include "mediator/update_queue.h"

namespace squirrel {

void UpdateQueue::Enqueue(UpdateMessage msg) {
  ++total_enqueued_;
  total_atoms_ += msg.delta.AtomCount();
  if (WouldCoalesce(msg)) {
    UpdateMessage& tail = messages_.back();
    // Same-source relation schemas are fixed, so the smash cannot fail in
    // practice; if it ever did, WAL replay applies the identical smash to
    // the identical tail, so recovered state still matches.
    (void)tail.delta.SmashInPlace(msg.delta);
    tail.seq = msg.seq;
    tail.send_time = msg.send_time;
    ++total_coalesced_;
    return;
  }
  messages_.push_back(std::move(msg));
}

bool UpdateQueue::WouldCoalesce(const UpdateMessage& msg) const {
  if (coalesce_window_ <= 0.0 || messages_.empty()) return false;
  const UpdateMessage& tail = messages_.back();
  return tail.source == msg.source &&
         msg.send_time - tail.send_time <= coalesce_window_;
}

std::vector<UpdateMessage> UpdateQueue::Flush() {
  std::vector<UpdateMessage> out(std::make_move_iterator(messages_.begin()),
                                 std::make_move_iterator(messages_.end()));
  messages_.clear();
  return out;
}

void UpdateQueue::Requeue(std::vector<UpdateMessage> msgs) {
  total_requeued_ += msgs.size();
  messages_.insert(messages_.begin(), std::make_move_iterator(msgs.begin()),
                   std::make_move_iterator(msgs.end()));
}

std::vector<UpdateMessage> UpdateQueue::Snapshot() const {
  return std::vector<UpdateMessage>(messages_.begin(), messages_.end());
}

void UpdateQueue::Restore(std::vector<UpdateMessage> msgs) {
  messages_.assign(std::make_move_iterator(msgs.begin()),
                   std::make_move_iterator(msgs.end()));
}

Result<MultiDelta> UpdateQueue::PendingFrom(const std::string& source) const {
  MultiDelta out;
  for (const auto& msg : messages_) {
    if (msg.source != source) continue;
    SQ_RETURN_IF_ERROR(out.SmashInPlace(msg.delta));
  }
  return out;
}

Time UpdateQueue::LastPendingSendTime(const std::string& source,
                                      Time fallback) const {
  Time out = fallback;
  for (const auto& msg : messages_) {
    if (msg.source == source) out = msg.send_time;
  }
  return out;
}

}  // namespace squirrel
