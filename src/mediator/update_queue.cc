#include "mediator/update_queue.h"

namespace squirrel {

void UpdateQueue::Enqueue(UpdateMessage msg) {
  ++total_enqueued_;
  total_atoms_ += msg.delta.AtomCount();
  messages_.push_back(std::move(msg));
}

std::vector<UpdateMessage> UpdateQueue::Flush() {
  std::vector<UpdateMessage> out(messages_.begin(), messages_.end());
  messages_.clear();
  return out;
}

void UpdateQueue::Requeue(std::vector<UpdateMessage> msgs) {
  total_requeued_ += msgs.size();
  messages_.insert(messages_.begin(), std::make_move_iterator(msgs.begin()),
                   std::make_move_iterator(msgs.end()));
}

std::vector<UpdateMessage> UpdateQueue::Snapshot() const {
  return std::vector<UpdateMessage>(messages_.begin(), messages_.end());
}

void UpdateQueue::Restore(std::vector<UpdateMessage> msgs) {
  messages_.assign(std::make_move_iterator(msgs.begin()),
                   std::make_move_iterator(msgs.end()));
}

Result<MultiDelta> UpdateQueue::PendingFrom(const std::string& source) const {
  MultiDelta out;
  for (const auto& msg : messages_) {
    if (msg.source != source) continue;
    SQ_RETURN_IF_ERROR(out.SmashInPlace(msg.delta));
  }
  return out;
}

Time UpdateQueue::LastPendingSendTime(const std::string& source,
                                      Time fallback) const {
  Time out = fallback;
  for (const auto& msg : messages_) {
    if (msg.source == source) out = msg.send_time;
  }
  return out;
}

}  // namespace squirrel
