#include "mediator/update_queue.h"

namespace squirrel {

namespace {

/// Heuristic bytes of one queued message: fixed framing plus a per-atom
/// share (tuple values + map node). Stable, which is all budget accounting
/// needs.
constexpr size_t kQueuedMessageOverhead = 128;
constexpr size_t kQueuedAtomBytes = 96;

}  // namespace

UpdateQueue::~UpdateQueue() {
  if (budget_ != nullptr) ReleaseGlobalBudget(budget_, charged_);
}

size_t UpdateQueue::ApproxBytesOf() const {
  size_t total = 0;
  for (const auto& msg : messages_) {
    total += kQueuedMessageOverhead + msg.delta.AtomCount() * kQueuedAtomBytes;
  }
  return total;
}

void UpdateQueue::Recharge() {
  const size_t now = ApproxBytesOf();
  if (now > charged_) {
    if (MemoryBudget* b = ChargeGlobalBudget(now - charged_)) {
      budget_ = b;
      charged_ = now;
    }
  } else if (now < charged_ && budget_ != nullptr) {
    ReleaseGlobalBudget(budget_, charged_ - now);
    charged_ = now;
  }
}

void UpdateQueue::Enqueue(UpdateMessage msg) {
  ++total_enqueued_;
  total_atoms_ += msg.delta.AtomCount();
  if (WouldCoalesce(msg)) {
    UpdateMessage& tail = messages_.back();
    // Same-source relation schemas are fixed, so the smash cannot fail in
    // practice; if it ever did, WAL replay applies the identical smash to
    // the identical tail, so recovered state still matches.
    (void)tail.delta.SmashInPlace(msg.delta);
    tail.seq = msg.seq;
    tail.epoch = msg.epoch;
    tail.send_time = msg.send_time;
    ++total_coalesced_;
    Recharge();
    return;
  }
  messages_.push_back(std::move(msg));
  Recharge();
}

bool UpdateQueue::CoalesceOldestIn(std::deque<UpdateMessage>* q,
                                   size_t skip) {
  // Merge the oldest message that has a later same-source message FORWARD
  // into that message. Per-source FIFO order is preserved and a full-queue
  // flush smashes per-source deltas anyway, so the net change every
  // transaction consumes is identical — the shed is lossless, it only gives
  // up one queue slot (and the older message's distinct send_time, which
  // reflect-tracking takes the max of regardless). Messages from different
  // incarnation epochs never merge: the merged message would carry the new
  // epoch over pre-restart atoms, corrupting the seq dedup floor that the
  // resync path rebuilds per epoch.
  for (size_t i = skip; i < q->size(); ++i) {
    for (size_t j = i + 1; j < q->size(); ++j) {
      if ((*q)[j].source != (*q)[i].source ||
          (*q)[j].epoch != (*q)[i].epoch) {
        continue;
      }
      UpdateMessage& older = (*q)[i];
      UpdateMessage& newer = (*q)[j];
      MultiDelta merged = std::move(older.delta);
      (void)merged.SmashInPlace(newer.delta);
      newer.delta = std::move(merged);
      q->erase(q->begin() + static_cast<std::ptrdiff_t>(i));
      return true;
    }
  }
  return false;
}

bool UpdateQueue::CanCoalesceOldest() const {
  // Mirror of CoalesceOldestIn's pair search, mutation-free.
  for (size_t i = 0; i < messages_.size(); ++i) {
    for (size_t j = i + 1; j < messages_.size(); ++j) {
      if (messages_[j].source == messages_[i].source &&
          messages_[j].epoch == messages_[i].epoch) {
        return true;
      }
    }
  }
  return false;
}

bool UpdateQueue::CoalesceOldest() {
  if (!CoalesceOldestIn(&messages_)) return false;
  ++total_shed_;
  Recharge();
  return true;
}

bool UpdateQueue::WouldCoalesce(const UpdateMessage& msg) const {
  if (coalesce_window_ <= 0.0 || messages_.empty()) return false;
  const UpdateMessage& tail = messages_.back();
  // Never merge across an incarnation epoch boundary: the tail would take
  // the post-restart epoch while carrying pre-restart atoms, and the
  // per-epoch seq dedup floor (reset by the restart hello) would treat the
  // whole merged message as already-delivered new-epoch traffic.
  return tail.source == msg.source && tail.epoch == msg.epoch &&
         msg.send_time - tail.send_time <= coalesce_window_;
}

std::vector<UpdateMessage> UpdateQueue::Flush() {
  std::vector<UpdateMessage> out(std::make_move_iterator(messages_.begin()),
                                 std::make_move_iterator(messages_.end()));
  messages_.clear();
  Recharge();
  return out;
}

void UpdateQueue::Requeue(std::vector<UpdateMessage> msgs) {
  total_requeued_ += msgs.size();
  messages_.insert(messages_.begin(), std::make_move_iterator(msgs.begin()),
                   std::make_move_iterator(msgs.end()));
  Recharge();
}

std::vector<UpdateMessage> UpdateQueue::Snapshot() const {
  return std::vector<UpdateMessage>(messages_.begin(), messages_.end());
}

void UpdateQueue::Restore(std::vector<UpdateMessage> msgs) {
  messages_.assign(std::make_move_iterator(msgs.begin()),
                   std::make_move_iterator(msgs.end()));
  Recharge();
}

Result<MultiDelta> UpdateQueue::PendingFrom(const std::string& source) const {
  MultiDelta out;
  for (const auto& msg : messages_) {
    if (msg.source != source) continue;
    SQ_RETURN_IF_ERROR(out.SmashInPlace(msg.delta));
  }
  return out;
}

Time UpdateQueue::LastPendingSendTime(const std::string& source,
                                      Time fallback) const {
  Time out = fallback;
  for (const auto& msg : messages_) {
    if (msg.source == source) out = msg.send_time;
  }
  return out;
}

}  // namespace squirrel
