// High-level mediator specifications.
//
// Squirrel is "a tool that can be used to generate these mediators from
// high-level specifications" [ZHK95]. MediatorSpec is that specification: a
// small text format declaring sources (with delay characteristics), export
// view definitions in the relational algebra, and annotations; a generator
// turns it into source databases, a planned VDP, and a running Mediator.
//
//   # Example 2.1 (Figure 1)
//   source DB1 comm 1.0 qproc 0.5 announce 0
//     relation R(r1, r2, r3, r4) key(r1)
//   source DB2 comm 1.0
//     relation S(s1, s2, s3) key(s1)
//   export T = project[r1, r3, s1, s2](
//       select[r4 = 100](R) join[r2 = s1] select[s3 < 50](S))
//   annotate T: r1 m, r3 v, s1 m, s2 v
//   annotate R': r1 v, r2 v, r3 v
//   option strategy auto
//   option update_period 2.0

#ifndef SQUIRREL_MEDIATOR_SPEC_H_
#define SQUIRREL_MEDIATOR_SPEC_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "mediator/mediator.h"
#include "relational/parser.h"
#include "source/source_db.h"
#include "vdp/planner.h"

namespace squirrel {

/// One declared source database.
struct SpecSource {
  std::string name;
  Time comm_delay = 0;
  Time q_proc_delay = 0;
  Time announce_period = 0;
  std::vector<SchemaDecl> relations;
};

/// A parsed mediator specification.
struct MediatorSpec {
  std::vector<SpecSource> sources;
  std::vector<std::pair<std::string, std::string>> exports;  // name, algebra
  std::vector<std::pair<std::string, std::string>> annotations;  // node, spec
  MediatorOptions options;

  /// Planner input derived from the declarations (relation names must be
  /// unique across sources).
  Result<PlannerInput> ToPlannerInput() const;
};

/// Parses the textual format above. '#' starts a comment; 'relation' lines
/// attach to the preceding 'source'.
Result<MediatorSpec> ParseMediatorSpec(const std::string& text);

/// Everything GenerateSystem builds: live (empty) sources plus a started-
/// ready mediator wired to them.
struct GeneratedSystem {
  std::vector<std::unique_ptr<SourceDb>> sources;
  Vdp vdp;                 // kept for inspection (the mediator holds a copy)
  Annotation annotation;
  std::unique_ptr<Mediator> mediator;

  /// Convenience: the source database declared under \p name.
  SourceDb* Source(const std::string& name) const;
};

/// Instantiates sources, plans the VDP, applies annotations, and creates the
/// mediator (not yet Start()ed — load initial data into the sources first).
Result<GeneratedSystem> GenerateSystem(const MediatorSpec& spec,
                                       Scheduler* scheduler);

}  // namespace squirrel

#endif  // SQUIRREL_MEDIATOR_SPEC_H_
