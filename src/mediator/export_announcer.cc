#include "mediator/export_announcer.h"

#include <utility>

#include "common/logging.h"

namespace squirrel {

Result<std::unique_ptr<ExportAnnouncer>> ExportAnnouncer::Create(
    Mediator* child, const std::string& name,
    const std::vector<std::string>& nodes, Scheduler* scheduler) {
  if (child == nullptr || scheduler == nullptr) {
    return Status::InvalidArgument("export announcer needs child+scheduler");
  }
  if (nodes.empty()) {
    return Status::InvalidArgument("export announcer: no nodes to export");
  }
  auto mirror = std::make_unique<SourceDb>(name);
  for (const auto& node : nodes) {
    SQ_ASSIGN_OR_RETURN(const VdpNode* n, child->vdp().Get(node));
    if (n->is_leaf || !n->exported) {
      return Status::InvalidArgument("export announcer: " + node +
                                     " is not an exported derived node");
    }
    if (!child->annotation().FullyMaterialized(child->vdp(), node)) {
      // A virtual attribute has no delta stream; the commit listener could
      // never keep the mirror complete.
      return Status::InvalidArgument("export announcer: " + node +
                                     " is not fully materialized");
    }
    SQ_RETURN_IF_ERROR(mirror->AddRelation(node, n->schema));
  }
  auto ea = std::unique_ptr<ExportAnnouncer>(new ExportAnnouncer(
      child, scheduler, nodes, std::move(mirror)));
  // Seed the mirror from the child's current repositories so a parent built
  // afterwards initializes from exactly the state the child serves. (The
  // child must be Start()ed; repositories of exported nodes always exist.)
  MultiDelta seed;
  for (const auto& node : ea->nodes_) {
    SQ_ASSIGN_OR_RETURN(const Relation* repo, child->store().Repo(node));
    SQ_ASSIGN_OR_RETURN(const Relation* cur, ea->mirror_->Current(node));
    SQ_ASSIGN_OR_RETURN(Delta d, Delta::Between(*cur, *repo));
    if (!d.Empty()) {
      SQ_RETURN_IF_ERROR(
          seed.Mutable(node, cur->schema())->SmashInPlace(d));
    }
  }
  if (!seed.Empty()) {
    SQ_RETURN_IF_ERROR(ea->mirror_->Commit(scheduler->Now(), seed));
  }
  child->AddCommitListener(
      [ptr = ea.get()](Time now, const std::map<std::string, Delta>& deltas) {
        ptr->OnChildCommit(now, deltas);
      });
  return ea;
}

void ExportAnnouncer::OnChildCommit(
    Time now, const std::map<std::string, Delta>& deltas) {
  MultiDelta md;
  for (const auto& node : nodes_) {
    auto it = deltas.find(node);
    if (it == deltas.end() || it->second.Empty()) continue;
    Status st = md.Mutable(node, it->second.schema())
                    ->SmashInPlace(it->second);
    if (!st.ok()) {
      SQ_LOG(kError) << "export mirror smash failed: " << st.ToString();
      return;
    }
  }
  if (md.Empty()) return;
  // Same simulation event as the child's commit: the mirror is never
  // observably behind the child. Strict apply doubles as a validity check —
  // exported contents must be duplicate-free (see shard_plan.h).
  Status st = mirror_->Commit(now, md);
  if (!st.ok()) {
    SQ_LOG(kError) << "export mirror commit failed: " << st.ToString();
    return;
  }
  ++commits_mirrored_;
}

Status ExportAnnouncer::OnChildRecovered() {
  Time now = scheduler_->Now();
  // New incarnation first: installed announcers wipe their pending batches
  // and say hello under the bumped epoch, exactly like a restarted source.
  mirror_->Restart(now);
  // Re-base the mirror onto the recovered repositories. Lossy storage may
  // have rolled the child behind commits the mirror already absorbed; until
  // the mirror matches the child again, subsequent child deltas would not
  // be strictly applicable.
  MultiDelta md;
  for (const auto& node : nodes_) {
    SQ_ASSIGN_OR_RETURN(const Relation* repo, child_->store().Repo(node));
    SQ_ASSIGN_OR_RETURN(const Relation* cur, mirror_->Current(node));
    SQ_ASSIGN_OR_RETURN(Delta d, Delta::Between(*cur, *repo));
    if (!d.Empty()) {
      SQ_RETURN_IF_ERROR(md.Mutable(node, cur->schema())->SmashInPlace(d));
    }
  }
  if (md.Empty()) return Status::OK();
  ++corrective_commits_;
  return mirror_->Commit(now, md);
}

}  // namespace squirrel
