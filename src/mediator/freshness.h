// Freshness bounds (paper §7, Theorem 7.2).
//
// Given per-source delay bounds and the mediator's policy delays, computes
// the bound vector f such that the integration environment is guaranteed
// fresh within f, and checks mediator traces against it.
//
// Note on the formula: the paper's Σ_k (q_proc_k + comm_k) term charges one
// network traversal per polled source. A poll is a round trip, so we charge
// 2·comm_k inside the sum (the paper defines comm_delay as covering both
// directions but counts it once; with one-way delays the round trip needs
// both). This only makes the bound larger, preserving Theorem 7.2.
//
// Like the paper, the bound charges each transaction at most one polling
// round: it presumes the mediator keeps up with its load. If transactions
// queue behind each other (arrival rate exceeding service rate), staleness
// grows with the backlog and no static bound of this shape can hold.

#ifndef SQUIRREL_MEDIATOR_FRESHNESS_H_
#define SQUIRREL_MEDIATOR_FRESHNESS_H_

#include <string>
#include <vector>

#include "mediator/contributor.h"
#include "mediator/query.h"
#include "mediator/trace.h"
#include "sim/clock.h"
#include "source/source_db.h"

namespace squirrel {

/// Worst-case delays of one source database (paper §7's ann_delay_i,
/// comm_delay_i, q_proc_delay_i).
struct DelayProfile {
  Time ann_delay = 0;     ///< commit -> announcement (the announcer period)
  Time comm_delay = 0;    ///< one-way message latency
  Time q_proc_delay = 0;  ///< source-side poll processing time
};

/// Worst-case delays of the mediator itself.
struct MediatorDelays {
  Time u_hold_delay = 0;  ///< arrival -> start of next update transaction
  Time u_proc_delay = 0;  ///< update transaction processing (sans polling)
  Time q_proc_delay = 0;  ///< QP+VAP processing (sans polling)
};

/// Theorem 7.2's bound vector f (one entry per source, aligned with
/// \p profiles / \p kinds):
///   materialized/hybrid i:
///     f_i = ann_i + comm_i + u_hold + u_proc + Σ_k (q_proc_k + 2·comm_k)
///   virtual j:
///     f_j = Σ_k (q_proc_k + 2·comm_k) + q_proc_med
std::vector<Time> FreshnessBound(const std::vector<DelayProfile>& profiles,
                                 const MediatorDelays& mediator,
                                 const std::vector<ContributorKind>& kinds);

/// Observed staleness vs. bound for one source.
struct SourceFreshness {
  std::string source;
  ContributorKind kind = ContributorKind::kMaterialized;
  Time bound = 0;           ///< f_i
  Time max_staleness = 0;   ///< max over query commits of t - reflect_i
  Time mean_staleness = 0;
  size_t samples = 0;
  bool within_bound = true;
};

/// Per-source freshness of every *query* transaction in \p trace.
struct FreshnessReport {
  std::vector<SourceFreshness> per_source;
  bool all_within_bound = true;
};

/// Measures staleness over the trace's query transactions and compares to
/// the Theorem 7.2 bound.
///
/// When \p sources is supplied (aligned with the trace's source order), the
/// measured staleness is *effective* staleness: the definition of freshness
/// only requires SOME t' with state(V,t) = ν(state(DB,t')), so while a
/// source does not commit, the witness extends forward and staleness stays
/// zero. Without histories, raw reflect-vector staleness is reported
/// (conservative).
FreshnessReport CheckFreshness(const Trace& trace,
                               const std::vector<DelayProfile>& profiles,
                               const MediatorDelays& mediator,
                               const std::vector<ContributorKind>& kinds,
                               const std::vector<const SourceDb*>& sources =
                                   {});

/// Per-source staleness annotations for a degraded answer served at \p now
/// from materialized state with reflect vector \p reflect: staleness_i =
/// now - reflect_i for materialized/hybrid contributors (how far behind the
/// repository data may be), 0 for virtual contributors whose state is not
/// materialized at all. \p down marks sources that were quarantined or
/// resyncing when the answer formed (aligned with \p names; may be empty =
/// all up).
std::vector<SourceStaleness> AnnotateStaleness(
    const std::vector<std::string>& names,
    const std::vector<ContributorKind>& kinds, const TimeVector& reflect,
    Time now, const std::vector<bool>& down = {});

}  // namespace squirrel

#endif  // SQUIRREL_MEDIATOR_FRESHNESS_H_
