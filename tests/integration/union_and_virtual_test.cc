// Coverage for two flows the paper describes but Figures 1/4 don't hit:
//  - union nodes under incremental maintenance (bag semantics, §5.1/§5.2);
//  - virtual-contributor sources (§4): passive sources that never announce,
//    are polled per query inside a single transaction, and appear in the
//    reflect vector with their poll-answer time.

#include <gtest/gtest.h>

#include "mediator/consistency.h"
#include "mediator/mediator.h"
#include "testing/harness.h"
#include "testing/util.h"
#include "vdp/builder.h"
#include "vdp/paper_examples.h"

namespace squirrel {
namespace {

using testing::MakeSchema;
using testing::Rows;

/// U = π_k,v(σ_{v<100} L') ∪ π_k,v(M') over two sources.
Result<Vdp> BuildUnionVdp() {
  VdpBuilder b;
  b.Leaf("L", "DB1", "L", "L(k, v) key(k)");
  b.Leaf("M", "DB2", "M", "M(k, v) key(k)");
  b.LeafParent("L'", "L", {"k", "v"});
  b.LeafParent("M'", "M", {"k", "v"});
  b.Union("U", {"L'", {"k", "v"}, "v < 100"}, {"M'", {"k", "v"}, ""},
          /*exported=*/true);
  return b.Build();
}

class UnionSim : public ::testing::Test {
 protected:
  void SetUp() override {
    db1_ = std::make_unique<SourceDb>("DB1");
    db2_ = std::make_unique<SourceDb>("DB2");
    SQ_ASSERT_OK(db1_->AddRelation("L", MakeSchema("L(k, v) key(k)")));
    SQ_ASSERT_OK(db2_->AddRelation("M", MakeSchema("M(k, v) key(k)")));
  }

  void MakeMediator(const Annotation& ann) {
    auto vdp = BuildUnionVdp();
    ASSERT_TRUE(vdp.ok()) << vdp.status().ToString();
    std::vector<SourceSetup> setups = {{db1_.get(), 0.5, 0.1, 0.0},
                                       {db2_.get(), 0.5, 0.1, 0.0}};
    auto med = Mediator::Create(*vdp, ann, setups, &scheduler_,
                                MediatorOptions{});
    ASSERT_TRUE(med.ok()) << med.status().ToString();
    mediator_ = std::move(med).value();
    SQ_ASSERT_OK(mediator_->Start());
  }

  Scheduler scheduler_;
  std::unique_ptr<SourceDb> db1_, db2_;
  std::unique_ptr<Mediator> mediator_;
};

TEST_F(UnionSim, MaintainsBagUnion) {
  SQ_ASSERT_OK(db1_->InsertTuple(0, "L", Tuple({1, 10})));
  SQ_ASSERT_OK(db2_->InsertTuple(0, "M", Tuple({1, 10})));  // overlap
  MakeMediator(Annotation::AllMaterialized());
  scheduler_.At(1.0, [&]() {
    SQ_EXPECT_OK(db1_->InsertTuple(scheduler_.Now(), "L", Tuple({2, 20})));
  });
  scheduler_.At(2.0, [&]() {
    SQ_EXPECT_OK(db1_->InsertTuple(scheduler_.Now(), "L", Tuple({3, 500})));
  });  // filtered by v < 100
  scheduler_.At(3.0, [&]() {
    SQ_EXPECT_OK(db2_->DeleteTuple(scheduler_.Now(), "M", Tuple({1, 10})));
  });
  std::vector<ViewAnswer> answers;
  scheduler_.At(10.0, [&]() {
    mediator_->SubmitQuery(ViewQuery{"U", {}, nullptr},
                           [&](Result<ViewAnswer> ans) {
                             ASSERT_TRUE(ans.ok());
                             answers.push_back(std::move(ans).value());
                           });
  });
  scheduler_.RunUntil(100.0);
  ASSERT_EQ(answers.size(), 1u);
  // Set-semantics export answer: (1,10) survives (still in L), (2,20) in,
  // (3,500) filtered out.
  EXPECT_EQ(Rows(answers[0].data), "(1, 10) (2, 20) ");
  // The repository is a bag underneath: (1,10) had multiplicity 2, the M
  // delete dropped it to 1 without removing it.
  SQ_ASSERT_OK_AND_ASSIGN(const Relation* u, mediator_->store().Repo("U"));
  EXPECT_EQ(u->CountOf(Tuple({1, 10})), 1);

  // Trace is consistent.
  auto checker_vdp = BuildUnionVdp();
  ASSERT_TRUE(checker_vdp.ok());
  ConsistencyChecker checker(&*checker_vdp, &mediator_->annotation(),
                             {db1_.get(), db2_.get()});
  SQ_ASSERT_OK_AND_ASSIGN(ConsistencyReport report,
                          checker.Check(mediator_->trace()));
  EXPECT_TRUE(report.consistent())
      << (report.violations.empty() ? "" : report.violations[0]);
}

TEST_F(UnionSim, UnionOverlapMultiplicity) {
  MakeMediator(Annotation::AllMaterialized());
  // Insert the same (k,v) into both sources, then remove from one: the
  // union must still contain it.
  scheduler_.At(1.0, [&]() {
    SQ_EXPECT_OK(db1_->InsertTuple(scheduler_.Now(), "L", Tuple({7, 70})));
  });
  scheduler_.At(2.0, [&]() {
    SQ_EXPECT_OK(db2_->InsertTuple(scheduler_.Now(), "M", Tuple({7, 70})));
  });
  scheduler_.At(3.0, [&]() {
    SQ_EXPECT_OK(db1_->DeleteTuple(scheduler_.Now(), "L", Tuple({7, 70})));
  });
  bool checked = false;
  scheduler_.At(10.0, [&]() {
    mediator_->SubmitQuery(ViewQuery{"U", {}, nullptr},
                           [&](Result<ViewAnswer> ans) {
                             ASSERT_TRUE(ans.ok());
                             EXPECT_EQ(Rows(ans->data), "(7, 70) ");
                             checked = true;
                           });
  });
  scheduler_.RunUntil(100.0);
  EXPECT_TRUE(checked);
}

class VirtualContributorSim : public ::testing::Test {
 protected:
  void SetUp() override {
    db1_ = std::make_unique<SourceDb>("DB1");
    db2_ = std::make_unique<SourceDb>("DB2");
    SQ_ASSERT_OK(
        db1_->AddRelation("R", MakeSchema("R(r1, r2, r3, r4) key(r1)")));
    SQ_ASSERT_OK(db2_->AddRelation("S", MakeSchema("S(s1, s2, s3) key(s1)")));
    SQ_ASSERT_OK(db1_->InsertTuple(0, "R", Tuple({1, 100, 11, 100})));
    SQ_ASSERT_OK(db2_->InsertTuple(0, "S", Tuple({100, 5, 10})));

    auto vdp = BuildFigure1Vdp();
    ASSERT_TRUE(vdp.ok());
    // Everything virtual: both sources become virtual-contributors.
    Annotation ann;
    for (const auto& name : vdp->DerivedNames()) {
      SQ_ASSERT_OK(ann.SetAll(*vdp, name, AttrMode::kVirtual));
    }
    std::vector<SourceSetup> setups = {{db1_.get(), 0.5, 0.2, 0.0},
                                       {db2_.get(), 1.0, 0.2, 0.0}};
    auto med = Mediator::Create(*vdp, ann, setups, &scheduler_,
                                MediatorOptions{});
    ASSERT_TRUE(med.ok()) << med.status().ToString();
    mediator_ = std::move(med).value();
    SQ_ASSERT_OK(mediator_->Start());
  }

  Scheduler scheduler_;
  std::unique_ptr<SourceDb> db1_, db2_;
  std::unique_ptr<Mediator> mediator_;
};

TEST_F(VirtualContributorSim, ClassifiedVirtualAndPassive) {
  auto kinds = mediator_->ContributorKinds();
  EXPECT_EQ(kinds[0], ContributorKind::kVirtual);
  EXPECT_EQ(kinds[1], ContributorKind::kVirtual);
  // Passive sources never announce: commits produce no queue traffic.
  scheduler_.At(1.0, [&]() {
    SQ_EXPECT_OK(db1_->InsertTuple(scheduler_.Now(), "R",
                                   Tuple({2, 100, 22, 100})));
  });
  scheduler_.RunUntil(50.0);
  EXPECT_EQ(mediator_->stats().messages_received, 0u);
  EXPECT_EQ(mediator_->stats().update_txns, 0u);
}

TEST_F(VirtualContributorSim, QueriesDecomposeAndSeeCurrentState) {
  scheduler_.At(1.0, [&]() {
    SQ_EXPECT_OK(db1_->InsertTuple(scheduler_.Now(), "R",
                                   Tuple({2, 100, 22, 100})));
  });
  std::vector<ViewAnswer> answers;
  scheduler_.At(5.0, [&]() {
    mediator_->SubmitQuery(ViewQuery{"T", {}, nullptr},
                           [&](Result<ViewAnswer> ans) {
                             ASSERT_TRUE(ans.ok())
                                 << ans.status().ToString();
                             answers.push_back(std::move(ans).value());
                           });
  });
  scheduler_.RunUntil(100.0);
  ASSERT_EQ(answers.size(), 1u);
  EXPECT_TRUE(answers[0].used_virtual);
  EXPECT_EQ(answers[0].polls, 2u);  // one per source, single transaction
  EXPECT_EQ(Rows(answers[0].data), "(1, 11, 100, 5) (2, 22, 100, 5) ");
  // Reflect entries for polled virtual-contributors carry the source-side
  // answer time, which is before the commit and after submission.
  ASSERT_EQ(answers[0].reflect.size(), 2u);
  EXPECT_GT(answers[0].reflect[0], 5.0);
  EXPECT_LT(answers[0].reflect[0], answers[0].commit_time);
  // Chronology: reflect <= commit.
  EXPECT_LE(answers[0].reflect[1], answers[0].commit_time);
}

TEST_F(VirtualContributorSim, QueryLatencyIncludesSlowestSource) {
  // DB2's round trip (comm 1.0) dominates: 2*1.0 + 0.2 = 2.2.
  Time submitted = 5.0;
  Time committed = 0;
  scheduler_.At(submitted, [&]() {
    mediator_->SubmitQuery(ViewQuery{"T", {"r1"}, nullptr},
                           [&](Result<ViewAnswer> ans) {
                             ASSERT_TRUE(ans.ok());
                             committed = ans->commit_time;
                           });
  });
  scheduler_.RunUntil(100.0);
  EXPECT_GE(committed - submitted, 2.2 - 1e-9);
}

}  // namespace
}  // namespace squirrel
