// Fault-injection behavior of the simulator and the mediator's robustness
// layer: deterministic injectors, duplicate suppression, crash windows with
// poll retries / transaction aborts / quarantine, and stale-answer dropping.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "mediator/consistency.h"
#include "mediator/mediator.h"
#include "sim/fault.h"
#include "testing/sim_harness.h"
#include "testing/util.h"
#include "vdp/paper_examples.h"

namespace squirrel {
namespace {

using testing::MakeSchema;

TEST(FaultInjectorTest, SameSeedSamePlanSameDecisions) {
  FaultPlan plan;
  plan.delay_jitter_max = 0.5;
  plan.drop_prob = 0.4;
  plan.dup_prob = 0.3;
  plan.crashes["DB1"] = {{10.0, 20.0}};
  FaultInjector a(plan, 42);
  FaultInjector b(plan, 42);
  for (int i = 0; i < 200; ++i) {
    Time now = 0.1 * i;
    auto dir = i % 2 == 0 ? FaultInjector::Dir::kToMediator
                          : FaultInjector::Dir::kToSource;
    EXPECT_EQ(a.OnSend(now, 0.5, dir, "DB1"), b.OnSend(now, 0.5, dir, "DB1"))
        << i;
  }
  EXPECT_EQ(a.counters().transmissions_lost, b.counters().transmissions_lost);
  EXPECT_EQ(a.counters().duplicates, b.counters().duplicates);
  EXPECT_EQ(a.counters().blackholed, b.counters().blackholed);
}

TEST(FaultInjectorTest, CrashWindowsAndActiveUntil) {
  FaultPlan plan;
  plan.drop_prob = 1.0;  // every transmission lost until the cap
  plan.max_transmissions = 3;
  plan.retransmit_timeout = 1.0;
  plan.active_until = 100.0;
  plan.crashes["DB1"] = {{10.0, 20.0}};
  FaultInjector inj(plan, 7);
  EXPECT_FALSE(inj.Crashed("DB1", 9.9));
  EXPECT_TRUE(inj.Crashed("DB1", 10.0));
  EXPECT_TRUE(inj.Crashed("DB1", 19.9));
  EXPECT_FALSE(inj.Crashed("DB1", 20.0));
  EXPECT_FALSE(inj.Crashed("DB2", 15.0));
  // To-source messages during the crash are black-holed.
  EXPECT_TRUE(
      inj.OnSend(15.0, 0.5, FaultInjector::Dir::kToSource, "DB1").empty());
  // To-mediator messages survive: ARQ delivers after at most cap-1 timeouts.
  auto d = inj.OnSend(15.0, 0.5, FaultInjector::Dir::kToMediator, "DB1");
  ASSERT_EQ(d.size(), 1u);
  EXPECT_DOUBLE_EQ(d[0], 2.0);  // two lost transmissions, then delivered
  // After active_until the link is clean.
  auto clean = inj.OnSend(150.0, 0.5, FaultInjector::Dir::kToMediator, "DB1");
  ASSERT_EQ(clean.size(), 1u);
  EXPECT_DOUBLE_EQ(clean[0], 0.0);
}

/// Fixture: Figure 1 with Example 2.2's annotation (R' virtual, so update
/// transactions triggered by S-commits must poll DB1) under caller-chosen
/// fault plans.
class FaultedFigure1 : public ::testing::Test {
 protected:
  void Init(FaultPlan db1_plan, FaultPlan db2_plan) {
    db1_ = std::make_unique<SourceDb>("DB1");
    db2_ = std::make_unique<SourceDb>("DB2");
    SQ_ASSERT_OK(
        db1_->AddRelation("R", MakeSchema("R(r1, r2, r3, r4) key(r1)")));
    SQ_ASSERT_OK(db2_->AddRelation("S", MakeSchema("S(s1, s2, s3) key(s1)")));
    SQ_ASSERT_OK(db1_->InsertTuple(0, "R", Tuple({1, 100, 11, 100})));
    SQ_ASSERT_OK(db2_->InsertTuple(0, "S", Tuple({100, 5, 10})));
    inj1_ = std::make_unique<FaultInjector>(std::move(db1_plan), 1);
    inj2_ = std::make_unique<FaultInjector>(std::move(db2_plan), 2);

    auto vdp = BuildFigure1Vdp();
    ASSERT_TRUE(vdp.ok());
    vdp_ = std::make_unique<Vdp>(*vdp);
    Annotation ann = AnnotationExample22(*vdp_);

    MediatorOptions options;
    options.poll_timeout = 2.0;
    options.poll_backoff = 2.0;
    options.poll_max_retries = 3;
    options.txn_retry_delay = 1.0;
    std::vector<SourceSetup> setups = {
        {db1_.get(), 0.5, 0.2, 0.0, inj1_.get()},
        {db2_.get(), 0.5, 0.2, 0.0, inj2_.get()},
    };
    auto med =
        Mediator::Create(*vdp_, ann, setups, &scheduler_, options);
    ASSERT_TRUE(med.ok()) << med.status().ToString();
    med_ = std::move(med).value();
    SQ_ASSERT_OK(med_->Start());
  }

  /// Runs to \p until, then checks the export equals recomputation.
  void FinishAndCheck(Time until) {
    scheduler_.RunUntil(until);
    EXPECT_FALSE(med_->busy());
    EXPECT_EQ(med_->QueueSize(), 0u);
    Result<ViewAnswer> answer = Status::Internal("no answer");
    scheduler_.At(until + 1, [&]() {
      ViewQuery q;
      q.relation = "T";
      med_->SubmitQuery(q, [&](Result<ViewAnswer> a) { answer = std::move(a); });
    });
    scheduler_.RunUntil(until + 50);
    ASSERT_TRUE(answer.ok()) << answer.status().ToString();
    ConsistencyChecker checker(vdp_.get(), &med_->annotation(),
                               {db1_.get(), db2_.get()});
    SQ_ASSERT_OK_AND_ASSIGN(Relation expected,
                            checker.EvalNodeAt("T", {until, until}));
    EXPECT_EQ(testing::Rows(answer->data), testing::Rows(expected.ToSet()));
    SQ_ASSERT_OK_AND_ASSIGN(ConsistencyReport report,
                            checker.Check(med_->trace()));
    EXPECT_TRUE(report.consistent())
        << (report.violations.empty() ? "no details" : report.violations[0]);
  }

  bool HasNote(const std::string& needle) const {
    const auto& notes = med_->trace().notes();
    return std::any_of(notes.begin(), notes.end(), [&](const auto& n) {
      return n.second.find(needle) != std::string::npos;
    });
  }

  Scheduler scheduler_;
  std::unique_ptr<SourceDb> db1_, db2_;
  std::unique_ptr<FaultInjector> inj1_, inj2_;
  std::unique_ptr<Vdp> vdp_;
  std::unique_ptr<Mediator> med_;
};

TEST_F(FaultedFigure1, DuplicateAnnouncementsAreSuppressed) {
  FaultPlan dup;
  dup.dup_prob = 1.0;  // every source->mediator message delivered twice
  dup.retransmit_timeout = 0.3;
  dup.active_until = 40.0;
  Init(FaultPlan{}, dup);
  scheduler_.At(10.0, [&]() {
    SQ_EXPECT_OK(db2_->InsertTuple(scheduler_.Now(), "S", Tuple({200, 6, 20})));
  });
  scheduler_.At(15.0, [&]() {
    SQ_EXPECT_OK(db2_->DeleteTuple(scheduler_.Now(), "S", Tuple({100, 5, 10})));
  });
  FinishAndCheck(60.0);
  EXPECT_GT(med_->stats().duplicate_updates_dropped, 0u);
  EXPECT_GT(inj2_->counters().duplicates, 0u);
}

TEST_F(FaultedFigure1, CrashedSourceTimesOutAbortsAndRecovers) {
  FaultPlan crash;
  crash.crashes["DB1"] = {{5.0, 30.0}};
  Init(crash, FaultPlan{});
  // The S-commit's update transaction needs R' data from DB1, which is down:
  // every polling round must time out, the transaction aborts and re-queues,
  // DB1 is quarantined, and after recovery a retry commits the update.
  scheduler_.At(10.0, [&]() {
    SQ_EXPECT_OK(db2_->InsertTuple(scheduler_.Now(), "S", Tuple({200, 6, 20})));
  });
  FinishAndCheck(80.0);
  const MediatorStats& stats = med_->stats();
  EXPECT_GT(stats.poll_timeouts, 0u);
  EXPECT_GT(stats.poll_retries, 0u);
  EXPECT_GT(stats.update_txn_aborts, 0u);
  EXPECT_GT(stats.quarantines, 0u);
  EXPECT_GT(inj1_->counters().blackholed, 0u);
  EXPECT_TRUE(HasNote("quarantine DB1"));
  EXPECT_TRUE(HasNote("update txn aborted"));
  // The quarantine cleared once DB1 answered after recovery.
  EXPECT_TRUE(med_->QuarantinedSources().empty());
  EXPECT_TRUE(HasNote("quarantine cleared DB1"));
}

TEST_F(FaultedFigure1, SlowAnswersToSupersededPollsAreDropped) {
  FaultPlan slow;
  slow.slow_poll_prob = 1.0;
  slow.slow_poll_delay = 6.0;  // beats the 2.0 poll timeout
  slow.active_until = 20.0;
  Init(slow, FaultPlan{});
  scheduler_.At(10.0, [&]() {
    SQ_EXPECT_OK(db2_->InsertTuple(scheduler_.Now(), "S", Tuple({200, 6, 20})));
  });
  FinishAndCheck(60.0);
  const MediatorStats& stats = med_->stats();
  EXPECT_GT(stats.poll_timeouts, 0u);
  EXPECT_GT(stats.stale_poll_answers, 0u);
  EXPECT_GT(inj1_->counters().slow_polls, 0u);
  // Despite the churn, the update committed exactly once.
  EXPECT_EQ(stats.duplicate_updates_dropped, 0u);
}

TEST(FaultSimHarnessTest, SeededRunIsConsistentAndReplaysByteIdentical) {
  for (uint64_t seed : {1ull, 2ull}) {
    auto first = testing::RunFaultSim(seed);
    ASSERT_TRUE(first.ok()) << first.status().ToString();
    auto second = testing::RunFaultSim(seed);
    ASSERT_TRUE(second.ok()) << second.status().ToString();
    EXPECT_EQ(first->trace_dump, second->trace_dump)
        << "seed " << seed << " did not replay byte-identically";
    EXPECT_GT(first->exports_checked, 0u);
  }
}

}  // namespace
}  // namespace squirrel
