// End-to-end tests of Squirrel mediators inside the discrete-event
// simulation: sources announce over delayed FIFO channels, the mediator
// runs serialized update/query transactions (polling where annotations
// require it), and the independent consistency/freshness checkers validate
// the recorded traces against the source histories (Theorems 7.1/7.2).

#include <gtest/gtest.h>

#include "mediator/consistency.h"
#include "mediator/freshness.h"
#include "mediator/mediator.h"
#include "testing/util.h"
#include "vdp/paper_examples.h"

namespace squirrel {
namespace {

using testing::MakeSchema;
using testing::Rows;

class SimFigure1 : public ::testing::Test {
 protected:
  void SetUp() override {
    db1_ = std::make_unique<SourceDb>("DB1");
    db2_ = std::make_unique<SourceDb>("DB2");
    SQ_ASSERT_OK(
        db1_->AddRelation("R", MakeSchema("R(r1, r2, r3, r4) key(r1)")));
    SQ_ASSERT_OK(db2_->AddRelation("S", MakeSchema("S(s1, s2, s3) key(s1)")));
    SQ_ASSERT_OK(db1_->InsertTuple(0, "R", Tuple({1, 100, 11, 100})));
    SQ_ASSERT_OK(db2_->InsertTuple(0, "S", Tuple({100, 5, 10})));
    SQ_ASSERT_OK(db2_->InsertTuple(0, "S", Tuple({200, 6, 20})));
  }

  void MakeMediator(const Annotation& ann, MediatorOptions options,
                    Time comm1 = 1.0, Time comm2 = 1.0, Time ann1 = 0.0,
                    Time ann2 = 0.0) {
    auto vdp = BuildFigure1Vdp();
    ASSERT_TRUE(vdp.ok());
    std::vector<SourceSetup> setups = {
        {db1_.get(), comm1, 0.5, ann1},
        {db2_.get(), comm2, 0.5, ann2},
    };
    auto med =
        Mediator::Create(*vdp, ann, setups, &scheduler_, options);
    ASSERT_TRUE(med.ok()) << med.status().ToString();
    mediator_ = std::move(med).value();
    SQ_ASSERT_OK(mediator_->Start());
  }

  void CommitR(Time at, const Tuple& t, bool del = false) {
    scheduler_.At(at, [this, t, del]() {
      MultiDelta md;
      auto* d = md.Mutable("R", MakeSchema("R(r1, r2, r3, r4)"));
      SQ_EXPECT_OK(del ? d->AddDelete(t) : d->AddInsert(t));
      SQ_EXPECT_OK(db1_->Commit(scheduler_.Now(), md));
    });
  }
  void CommitS(Time at, const Tuple& t, bool del = false) {
    scheduler_.At(at, [this, t, del]() {
      MultiDelta md;
      auto* d = md.Mutable("S", MakeSchema("S(s1, s2, s3)"));
      SQ_EXPECT_OK(del ? d->AddDelete(t) : d->AddInsert(t));
      SQ_EXPECT_OK(db2_->Commit(scheduler_.Now(), md));
    });
  }

  /// Schedules a query at \p at; stores the answer.
  void QueryAt(Time at, ViewQuery q) {
    scheduler_.At(at, [this, q]() {
      mediator_->SubmitQuery(q, [this](Result<ViewAnswer> ans) {
        ASSERT_TRUE(ans.ok()) << ans.status().ToString();
        answers_.push_back(std::move(ans).value());
      });
    });
  }

  ConsistencyReport CheckConsistency() {
    auto vdp = BuildFigure1Vdp();
    EXPECT_TRUE(vdp.ok());
    checker_vdp_ = std::move(vdp).value();
    ConsistencyChecker checker(&checker_vdp_, &mediator_->annotation(),
                               {db1_.get(), db2_.get()});
    auto report = checker.Check(mediator_->trace());
    EXPECT_TRUE(report.ok()) << report.status().ToString();
    return report.ok() ? *report : ConsistencyReport{};
  }

  Scheduler scheduler_;
  std::unique_ptr<SourceDb> db1_, db2_;
  std::unique_ptr<Mediator> mediator_;
  std::vector<ViewAnswer> answers_;
  Vdp checker_vdp_;
};

TEST_F(SimFigure1, FullyMaterializedEndToEnd) {
  MakeMediator(AnnotationExample21(), MediatorOptions{});
  CommitR(1.0, Tuple({2, 200, 22, 100}));
  CommitS(2.0, Tuple({300, 7, 30}));
  CommitR(3.0, Tuple({3, 300, 33, 100}));
  QueryAt(5.0, ViewQuery{"T", {}, nullptr});
  scheduler_.RunUntil(10000.0);

  ASSERT_EQ(answers_.size(), 1u);
  // Expected: (1,11,100,5), (2,22,200,6), (3,33,300,7).
  EXPECT_EQ(Rows(answers_[0].data),
            "(1, 11, 100, 5) (2, 22, 200, 6) (3, 33, 300, 7) ");
  EXPECT_FALSE(answers_[0].used_virtual);
  EXPECT_EQ(answers_[0].polls, 0u);
  EXPECT_EQ(mediator_->stats().polls, 0u);  // Example 2.1's no-polling claim
  EXPECT_GE(mediator_->stats().update_txns, 3u);

  ConsistencyReport report = CheckConsistency();
  EXPECT_TRUE(report.consistent())
      << testing::MakeSchema("x(a)").ToString()  // keep symbol referenced
      << (report.violations.empty() ? "" : report.violations[0]);
}

TEST_F(SimFigure1, ConsistencyHoldsUnderBatching) {
  MediatorOptions options;
  options.update_period = 4.0;  // updates wait in the queue (u_hold > 0)
  MakeMediator(AnnotationExample21(), options);
  for (int i = 0; i < 8; ++i) {
    CommitR(0.5 + i, Tuple({10 + i, 100, 50 + i, 100}));
  }
  QueryAt(3.0, ViewQuery{"T", {"r1"}, nullptr});
  QueryAt(9.0, ViewQuery{"T", {"r1"}, nullptr});
  scheduler_.RunUntil(10000.0);
  ASSERT_EQ(answers_.size(), 2u);
  // The first query sees a stale but consistent snapshot.
  EXPECT_LE(answers_[0].data.DistinctSize(), answers_[1].data.DistinctSize());
  ConsistencyReport report = CheckConsistency();
  EXPECT_TRUE(report.consistent())
      << (report.violations.empty() ? "" : report.violations[0]);
  EXPECT_GT(report.entries_checked, 2u);
}

TEST_F(SimFigure1, Example22PollsWithEagerCompensation) {
  auto vdp = BuildFigure1Vdp();
  ASSERT_TRUE(vdp.ok());
  MakeMediator(AnnotationExample22(*vdp), MediatorOptions{});
  // An S update forces polling R; while the poll is in flight, R commits
  // again — ECA must keep the propagation consistent.
  CommitS(1.0, Tuple({300, 7, 30}));
  // Poll round trip takes comm(1) + qproc(0.5) + comm(1) from ~2.0;
  // commit R inside that window.
  CommitR(3.2, Tuple({5, 300, 55, 100}));
  QueryAt(20.0, ViewQuery{"T", {}, nullptr});
  scheduler_.RunUntil(10000.0);

  ASSERT_EQ(answers_.size(), 1u);
  EXPECT_GT(mediator_->stats().polls, 0u);
  ConsistencyReport report = CheckConsistency();
  EXPECT_TRUE(report.consistent())
      << (report.violations.empty() ? "" : report.violations[0]);
  // Final answer reflects both commits.
  EXPECT_TRUE(answers_[0].data.Contains(Tuple({5, 55, 300, 7})));
}

TEST_F(SimFigure1, Example23HybridQueries) {
  auto vdp = BuildFigure1Vdp();
  ASSERT_TRUE(vdp.ok());
  MakeMediator(AnnotationExample23(*vdp), MediatorOptions{});
  CommitR(1.0, Tuple({2, 200, 22, 100}));
  // Materialized-only query: no polls.
  QueryAt(5.0, ViewQuery{"T", {"r1", "s1"}, nullptr});
  // Virtual-attribute query: polls needed.
  QueryAt(6.0, ViewQuery{"T", {"r3", "s1"}, testing::Pred("r3 < 100")});
  scheduler_.RunUntil(10000.0);

  ASSERT_EQ(answers_.size(), 2u);
  EXPECT_FALSE(answers_[0].used_virtual);
  EXPECT_EQ(answers_[0].polls, 0u);
  EXPECT_EQ(Rows(answers_[0].data), "(1, 100) (2, 200) ");
  EXPECT_TRUE(answers_[1].used_virtual);
  EXPECT_GT(answers_[1].polls, 0u);
  EXPECT_EQ(Rows(answers_[1].data), "(11, 100) (22, 200) ");
  ConsistencyReport report = CheckConsistency();
  EXPECT_TRUE(report.consistent())
      << (report.violations.empty() ? "" : report.violations[0]);
}

TEST_F(SimFigure1, FreshnessWithinTheoremBound) {
  MediatorOptions options;
  options.update_period = 2.0;
  options.u_proc_delay = 0.1;
  options.q_proc_delay = 0.1;
  MakeMediator(AnnotationExample21(), options, /*comm1=*/1.0, /*comm2=*/0.5,
               /*ann1=*/1.5, /*ann2=*/0.0);
  for (int i = 0; i < 10; ++i) {
    CommitR(1.0 + i, Tuple({10 + i, 100, 50 + i, 100}));
    QueryAt(1.5 + i, ViewQuery{"T", {"r1"}, nullptr});
  }
  scheduler_.RunUntil(10000.0);
  ASSERT_FALSE(answers_.empty());
  FreshnessReport report = CheckFreshness(
      mediator_->trace(), mediator_->DelayProfiles(), mediator_->Delays(),
      mediator_->ContributorKinds(), {db1_.get(), db2_.get()});
  EXPECT_TRUE(report.all_within_bound);
  for (const auto& sf : report.per_source) {
    EXPECT_LE(sf.max_staleness, sf.bound) << sf.source;
    EXPECT_GT(sf.samples, 0u);
  }
}

TEST_F(SimFigure1, ContributorClassification) {
  auto vdp = BuildFigure1Vdp();
  ASSERT_TRUE(vdp.ok());
  // Example 2.1: everything materialized -> both materialized-contributors.
  MakeMediator(AnnotationExample21(), MediatorOptions{});
  auto kinds = mediator_->ContributorKinds();
  EXPECT_EQ(kinds[0], ContributorKind::kMaterialized);
  EXPECT_EQ(kinds[1], ContributorKind::kMaterialized);
}

TEST_F(SimFigure1, HybridContributorClassification) {
  auto vdp = BuildFigure1Vdp();
  ASSERT_TRUE(vdp.ok());
  MakeMediator(AnnotationExample23(*vdp), MediatorOptions{});
  auto kinds = mediator_->ContributorKinds();
  // Both feed materialized (T's r1/s1) and virtual (T's r3/s2) portions.
  EXPECT_EQ(kinds[0], ContributorKind::kHybrid);
  EXPECT_EQ(kinds[1], ContributorKind::kHybrid);
}

TEST_F(SimFigure1, QueriesSerializeWithUpdates) {
  MakeMediator(AnnotationExample21(), MediatorOptions{});
  for (int i = 0; i < 5; ++i) {
    CommitR(1.0 + 0.1 * i, Tuple({20 + i, 100, 70 + i, 100}));
    QueryAt(1.0 + 0.1 * i + 0.05, ViewQuery{"T", {"r1"}, nullptr});
  }
  scheduler_.RunUntil(10000.0);
  EXPECT_EQ(answers_.size(), 5u);
  // Commit times strictly increase (serial transactions).
  for (size_t i = 1; i < answers_.size(); ++i) {
    EXPECT_GE(answers_[i].commit_time, answers_[i - 1].commit_time);
  }
  ConsistencyReport report = CheckConsistency();
  EXPECT_TRUE(report.consistent())
      << (report.violations.empty() ? "" : report.violations[0]);
}

TEST_F(SimFigure1, RejectsQueryOnUnknownRelation) {
  MakeMediator(AnnotationExample21(), MediatorOptions{});
  bool failed = false;
  scheduler_.At(1.0, [&]() {
    mediator_->SubmitQuery(ViewQuery{"Nope", {}, nullptr},
                           [&](Result<ViewAnswer> ans) {
                             failed = !ans.ok();
                           });
  });
  scheduler_.RunUntil(10000.0);
  EXPECT_TRUE(failed);
}

TEST_F(SimFigure1, RejectsQueryOnNonExportNode) {
  MakeMediator(AnnotationExample21(), MediatorOptions{});
  bool failed = false;
  scheduler_.At(1.0, [&]() {
    mediator_->SubmitQuery(ViewQuery{"R'", {}, nullptr},
                           [&](Result<ViewAnswer> ans) {
                             failed = !ans.ok();
                           });
  });
  scheduler_.RunUntil(10000.0);
  EXPECT_TRUE(failed);
}

class SimFigure4 : public ::testing::Test {
 protected:
  void SetUp() override {
    for (const char* name : {"DBA", "DBB", "DBC", "DBD"}) {
      dbs_.push_back(std::make_unique<SourceDb>(name));
    }
    SQ_ASSERT_OK(dbs_[0]->AddRelation("A", MakeSchema("A(a1, a2) key(a1)")));
    SQ_ASSERT_OK(dbs_[1]->AddRelation("B", MakeSchema("B(b1, b2) key(b1)")));
    SQ_ASSERT_OK(dbs_[2]->AddRelation("C", MakeSchema("C(c1, a1) key(c1)")));
    SQ_ASSERT_OK(dbs_[3]->AddRelation("D", MakeSchema("D(d1, b1) key(d1)")));
    // Seed: A(1, 2), B(10, 5): 1*1+2 < 25 -> E(1, 2, 10).
    SQ_ASSERT_OK(dbs_[0]->InsertTuple(0, "A", Tuple({1, 2})));
    SQ_ASSERT_OK(dbs_[1]->InsertTuple(0, "B", Tuple({10, 5})));
  }

  void MakeMediator(std::function<Annotation(const Vdp&)> make_ann) {
    auto vdp = BuildFigure4Vdp();
    ASSERT_TRUE(vdp.ok()) << vdp.status().ToString();
    std::vector<SourceSetup> setups;
    for (auto& db : dbs_) setups.push_back({db.get(), 0.5, 0.2, 0.0});
    auto med = Mediator::Create(*vdp, make_ann(*vdp), setups, &scheduler_,
                                MediatorOptions{});
    ASSERT_TRUE(med.ok()) << med.status().ToString();
    mediator_ = std::move(med).value();
    SQ_ASSERT_OK(mediator_->Start());
  }

  void Commit(size_t db, Time at, const std::string& rel, const Tuple& t,
              bool del = false) {
    scheduler_.At(at, [this, db, rel, t, del]() {
      auto schema = dbs_[db]->RelationSchema(rel);
      ASSERT_TRUE(schema.ok());
      MultiDelta md;
      auto* d = md.Mutable(rel, *schema);
      SQ_EXPECT_OK(del ? d->AddDelete(t) : d->AddInsert(t));
      SQ_EXPECT_OK(dbs_[db]->Commit(scheduler_.Now(), md));
    });
  }

  void QueryAt(Time at, ViewQuery q) {
    scheduler_.At(at, [this, q]() {
      mediator_->SubmitQuery(q, [this](Result<ViewAnswer> ans) {
        ASSERT_TRUE(ans.ok()) << ans.status().ToString();
        answers_.push_back(std::move(ans).value());
      });
    });
  }

  ConsistencyReport CheckConsistency() {
    auto vdp = BuildFigure4Vdp();
    EXPECT_TRUE(vdp.ok());
    checker_vdp_ = std::move(vdp).value();
    std::vector<const SourceDb*> srcs;
    for (auto& db : dbs_) srcs.push_back(db.get());
    ConsistencyChecker checker(&checker_vdp_, &mediator_->annotation(), srcs);
    auto report = checker.Check(mediator_->trace());
    EXPECT_TRUE(report.ok()) << report.status().ToString();
    return report.ok() ? *report : ConsistencyReport{};
  }

  Scheduler scheduler_;
  std::vector<std::unique_ptr<SourceDb>> dbs_;
  std::unique_ptr<Mediator> mediator_;
  std::vector<ViewAnswer> answers_;
  Vdp checker_vdp_;
};

TEST_F(SimFigure4, FullyMaterializedTwoExports) {
  MakeMediator([](const Vdp&) { return Annotation::AllMaterialized(); });
  // G = π(E) − π(F); F empty, so G mirrors π(E).
  QueryAt(1.0, ViewQuery{"G", {}, nullptr});
  // Add C(1, 1), D(1, 10): F gains (1, 10) which kills G's (1, 10).
  Commit(2, 2.0, "C", Tuple({1, 1}));
  Commit(3, 3.0, "D", Tuple({1, 10}));
  QueryAt(6.0, ViewQuery{"G", {}, nullptr});
  QueryAt(7.0, ViewQuery{"E", {}, nullptr});
  scheduler_.RunUntil(10000.0);

  ASSERT_EQ(answers_.size(), 3u);
  EXPECT_EQ(Rows(answers_[0].data), "(1, 10) ");
  EXPECT_EQ(Rows(answers_[1].data), "");  // suppressed by F
  EXPECT_EQ(Rows(answers_[2].data), "(1, 2, 10) ");
  ConsistencyReport report = CheckConsistency();
  EXPECT_TRUE(report.consistent())
      << (report.violations.empty() ? "" : report.violations[0]);
}

TEST_F(SimFigure4, Example51SuggestedAnnotation) {
  MakeMediator([](const Vdp& vdp) { return AnnotationExample51(vdp); });
  auto kinds = mediator_->ContributorKinds();
  // DBB feeds B' (virtual) and E's materialized part: hybrid.
  EXPECT_EQ(kinds[1], ContributorKind::kHybrid);

  // Updates to B flow into E (hybrid) and G via polling B as needed.
  Commit(1, 1.0, "B", Tuple({20, 4}));
  // A update: joins against virtual B' -> poll.
  Commit(0, 3.0, "A", Tuple({2, 1}));
  // Query E's materialized attrs: no polls.
  QueryAt(10.0, ViewQuery{"E", {"a1", "b1"}, nullptr});
  // Query E's virtual a2: polls (key-based via A').
  QueryAt(11.0, ViewQuery{"E", {"a1", "a2"}, nullptr});
  QueryAt(12.0, ViewQuery{"G", {}, nullptr});
  scheduler_.RunUntil(10000.0);

  ASSERT_EQ(answers_.size(), 3u);
  EXPECT_EQ(answers_[0].polls, 0u);
  EXPECT_TRUE(answers_[1].used_virtual);
  // E = {(1,2,10),(1,2,20),(2,1,10),(2,1,20)} (all satisfy the inequality).
  EXPECT_EQ(Rows(answers_[0].data), "(1, 10) (1, 20) (2, 10) (2, 20) ");
  EXPECT_EQ(Rows(answers_[1].data), "(1, 2) (2, 1) ");
  EXPECT_EQ(Rows(answers_[2].data), "(1, 10) (1, 20) (2, 10) (2, 20) ");
  ConsistencyReport report = CheckConsistency();
  EXPECT_TRUE(report.consistent())
      << (report.violations.empty() ? "" : report.violations[0]);
}

TEST_F(SimFigure4, DiffMaintenanceUnderChurn) {
  MakeMediator([](const Vdp&) { return Annotation::AllMaterialized(); });
  Commit(2, 1.0, "C", Tuple({1, 1}));
  Commit(3, 2.0, "D", Tuple({1, 10}));
  Commit(3, 3.0, "D", Tuple({1, 10}), /*del=*/true);  // F loses (1,10)
  Commit(0, 4.0, "A", Tuple({3, 1}));                 // E gains (3,1,10)
  QueryAt(8.0, ViewQuery{"G", {}, nullptr});
  scheduler_.RunUntil(10000.0);
  ASSERT_EQ(answers_.size(), 1u);
  EXPECT_EQ(Rows(answers_[0].data), "(1, 10) (3, 10) ");
  ConsistencyReport report = CheckConsistency();
  EXPECT_TRUE(report.consistent())
      << (report.violations.empty() ? "" : report.violations[0]);
}

}  // namespace
}  // namespace squirrel
