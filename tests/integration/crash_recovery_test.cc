// Scripted mediator crash–restart scenarios (the durability subsystem's
// integration tests). The fault-sweep and crash-point suites cover seeded
// breadth; these tests pin down the individual guarantees:
//  - a crash mid-transaction (polls outstanding, commit record not yet
//    durable) rolls the transaction back at recovery and retries it, ending
//    in the same final state as a crash-free run;
//  - a crash after a commit record replays the transaction from the WAL;
//  - with the WAL disabled (checkpoint-only mode) the same crash provably
//    LOSES the committed update — the WAL is load-bearing, not ceremony;
//  - without a log device recovery is impossible and queries fail over.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "mediator/consistency.h"
#include "mediator/durability/log_device.h"
#include "mediator/mediator.h"
#include "testing/util.h"
#include "vdp/paper_examples.h"

namespace squirrel {
namespace {

using testing::MakeSchema;
using testing::Rows;

class CrashRecovery : public ::testing::Test {
 protected:
  void SetUp() override {
    db1_ = std::make_unique<SourceDb>("DB1");
    db2_ = std::make_unique<SourceDb>("DB2");
    SQ_ASSERT_OK(
        db1_->AddRelation("R", MakeSchema("R(r1, r2, r3, r4) key(r1)")));
    SQ_ASSERT_OK(db2_->AddRelation("S", MakeSchema("S(s1, s2, s3) key(s1)")));
    SQ_ASSERT_OK(db1_->InsertTuple(0, "R", Tuple({1, 100, 11, 100})));
    SQ_ASSERT_OK(db2_->InsertTuple(0, "S", Tuple({100, 5, 10})));
    SQ_ASSERT_OK(db2_->InsertTuple(0, "S", Tuple({200, 6, 20})));
  }

  /// Example 2.3's hybrid annotation: update transactions must poll, so a
  /// transaction spans simulation time and a crash can land inside it.
  Annotation HybridAnnotation(const Vdp& vdp) {
    Annotation ann;
    SQ_EXPECT_OK(ann.SetAll(vdp, "R'", AttrMode::kVirtual));
    SQ_EXPECT_OK(ann.SetAll(vdp, "S'", AttrMode::kVirtual));
    SQ_EXPECT_OK(ann.SetFromSpec(vdp, "T", "r1 m, r3 v, s1 m, s2 v"));
    return ann;
  }

  void MakeMediator(const Annotation& ann, MediatorOptions options) {
    auto vdp = BuildFigure1Vdp();
    ASSERT_TRUE(vdp.ok());
    vdp_ = std::move(vdp).value();
    std::vector<SourceSetup> setups = {
        {db1_.get(), 1.0, 0.5, 0.0},
        {db2_.get(), 1.0, 0.5, 0.0},
    };
    auto med = Mediator::Create(vdp_, ann, setups, &scheduler_, options);
    ASSERT_TRUE(med.ok()) << med.status().ToString();
    mediator_ = std::move(med).value();
    SQ_ASSERT_OK(mediator_->Start());
  }

  void CommitR(Time at, const Tuple& t) {
    scheduler_.At(at, [this, t]() {
      MultiDelta md;
      auto* d = md.Mutable("R", MakeSchema("R(r1, r2, r3, r4)"));
      SQ_EXPECT_OK(d->AddInsert(t));
      SQ_EXPECT_OK(db1_->Commit(scheduler_.Now(), md));
    });
  }

  /// Schedules an atomic crash+recover at \p at; recovery must succeed.
  void CrashRecoverAt(Time at) {
    scheduler_.At(at, [this]() {
      Status st = mediator_->CrashAndRecover();
      EXPECT_TRUE(st.ok()) << st.ToString();
    });
  }

  /// Queries T's full contents at \p at into answers_.
  void QueryAt(Time at) {
    scheduler_.At(at, [this]() {
      mediator_->SubmitQuery(ViewQuery{"T", {}, nullptr},
                             [this](Result<ViewAnswer> ans) {
                               ASSERT_TRUE(ans.ok())
                                   << ans.status().ToString();
                               answers_.push_back(std::move(ans).value());
                             });
    });
  }

  void ExpectConsistentTrace() {
    ConsistencyChecker checker(&vdp_, &mediator_->annotation(),
                               {db1_.get(), db2_.get()});
    auto report = checker.Check(mediator_->trace());
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_TRUE(report->consistent())
        << (report->violations.empty() ? "no details" : report->violations[0]);
  }

  Scheduler scheduler_;
  MemLogDevice log_dev_;  // the "disk": declared before (outlives) mediator_
  std::unique_ptr<SourceDb> db1_, db2_;
  Vdp vdp_;
  std::unique_ptr<Mediator> mediator_;
  std::vector<ViewAnswer> answers_;
};

constexpr char kInitialT[] = "(1, 11, 100, 5) ";
constexpr char kUpdatedT[] = "(1, 11, 100, 5) (2, 22, 200, 6) ";

TEST_F(CrashRecovery, CrashMidTransactionRollsBackAndRetries) {
  MediatorOptions options;
  options.poll_timeout = 3.0;
  options.durability.device = &log_dev_;
  options.durability.checkpoint_every = 16;
  auto vdp = BuildFigure1Vdp();
  ASSERT_TRUE(vdp.ok());
  MakeMediator(HybridAnnotation(*vdp), options);

  // The announcement reaches the mediator at ~2.0 and starts an update
  // transaction that polls both sources (answers due ~4.5). The crash at
  // 3.2 lands between the begin and commit records: recovery must roll the
  // transaction back, leave its message at the queue front, and retry.
  CommitR(1.0, Tuple({2, 200, 22, 100}));
  CrashRecoverAt(3.2);
  QueryAt(50.0);
  scheduler_.RunUntil(1000.0);

  const MediatorStats& stats = mediator_->stats();
  EXPECT_EQ(stats.mediator_crashes, 1u);
  EXPECT_EQ(stats.recoveries, 1u);
  EXPECT_EQ(stats.recovery_txns_rolled_back, 1u);
  EXPECT_GE(stats.recovery_msgs_requeued, 1u);
  EXPECT_GE(stats.stale_poll_answers, 1u);  // answers to the dead poll round
  EXPECT_GE(stats.update_txns, 1u);         // the retry committed
  ASSERT_EQ(answers_.size(), 1u);
  EXPECT_EQ(Rows(answers_[0].data), kUpdatedT);
  EXPECT_FALSE(mediator_->busy());
  EXPECT_EQ(mediator_->QueueSize(), 0u);
  ExpectConsistentTrace();
}

TEST_F(CrashRecovery, CrashAfterCommitReplaysFromWal) {
  MediatorOptions options;
  options.durability.device = &log_dev_;
  options.durability.checkpoint_every = 16;  // no checkpoint before the crash
  MakeMediator(AnnotationExample21(), options);

  CommitR(1.0, Tuple({2, 200, 22, 100}));  // applied at ~2.0, commit logged
  CrashRecoverAt(6.0);
  QueryAt(10.0);
  scheduler_.RunUntil(1000.0);

  const MediatorStats& stats = mediator_->stats();
  EXPECT_EQ(stats.recoveries, 1u);
  EXPECT_GE(stats.recovery_txns_replayed, 1u);
  EXPECT_EQ(stats.recovery_txns_rolled_back, 0u);
  ASSERT_EQ(answers_.size(), 1u);
  EXPECT_EQ(Rows(answers_[0].data), kUpdatedT);  // the commit survived
  ExpectConsistentTrace();
}

/// Parses MediatorStats::ToString()'s "name=value" lines. Going through the
/// rendered dump (instead of naming struct fields) means a counter added
/// later is covered automatically — the static_assert in ToString() keeps
/// the dump exhaustive.
std::map<std::string, uint64_t> ParseStats(const std::string& dump) {
  std::map<std::string, uint64_t> out;
  std::istringstream in(dump);
  std::string line;
  while (std::getline(in, line)) {
    size_t eq = line.find('=');
    if (eq == std::string::npos) continue;
    out[line.substr(0, eq)] = std::stoull(line.substr(eq + 1));
  }
  return out;
}

TEST_F(CrashRecovery, EveryStatsCounterSurvivesCrashRecovery) {
  // Stats are observability state, not recovery state: they live OUTSIDE
  // the checkpointed HardState, so a sloppy Recover() could zero them (or a
  // replayed transaction could double-count). The contract pinned here:
  // across Crash()+Recover() no counter ever moves backwards, and the
  // lifetime totals visible before the crash are still visible after.
  MediatorOptions options;
  options.durability.device = &log_dev_;
  options.durability.checkpoint_every = 16;
  MakeMediator(AnnotationExample21(), options);

  CommitR(1.0, Tuple({2, 200, 22, 100}));  // real work before the crash
  std::map<std::string, uint64_t> pre;
  scheduler_.At(10.0, [this, &pre]() {
    pre = ParseStats(mediator_->stats().ToString());
  });
  CrashRecoverAt(12.0);
  QueryAt(20.0);
  scheduler_.RunUntil(1000.0);

  ASSERT_FALSE(pre.empty());
  EXPECT_GT(pre.at("update_txns"), 0u);  // the snapshot saw the commit
  std::map<std::string, uint64_t> post =
      ParseStats(mediator_->stats().ToString());
  ASSERT_EQ(post.size(), pre.size());  // same counters render on both sides
  for (const auto& [name, value] : pre) {
    ASSERT_TRUE(post.count(name)) << name;
    EXPECT_GE(post.at(name), value)
        << "counter " << name << " went backwards across Crash()/Recover()";
  }
  EXPECT_EQ(post.at("mediator_crashes"), 1u);
  EXPECT_EQ(post.at("recoveries"), 1u);
  ASSERT_EQ(answers_.size(), 1u);
  EXPECT_EQ(Rows(answers_[0].data), kUpdatedT);
  ExpectConsistentTrace();
}

TEST_F(CrashRecovery, WalDisabledProvablyLosesCommittedUpdate) {
  MediatorOptions options;
  options.durability.device = &log_dev_;
  options.durability.wal = false;       // checkpoint-only mode
  options.durability.checkpoint_every = 0;  // just the initial checkpoint
  MakeMediator(AnnotationExample21(), options);

  // Identical scenario to CrashAfterCommitReplaysFromWal — but with no WAL
  // the update that committed at ~2.0 exists only in volatile memory, so
  // the crash at 6.0 erases it and recovery restores the initial checkpoint.
  CommitR(1.0, Tuple({2, 200, 22, 100}));
  CrashRecoverAt(6.0);
  QueryAt(10.0);
  scheduler_.RunUntil(1000.0);

  EXPECT_EQ(mediator_->stats().recoveries, 1u);
  ASSERT_EQ(answers_.size(), 1u);
  EXPECT_EQ(Rows(answers_[0].data), kInitialT);  // the update is GONE
  EXPECT_NE(Rows(answers_[0].data), kUpdatedT);
}

TEST_F(CrashRecovery, PeriodicCheckpointTruncatesTheLog) {
  MediatorOptions options;
  options.durability.device = &log_dev_;
  options.durability.checkpoint_every = 2;  // checkpoint every 2 commits
  MakeMediator(AnnotationExample21(), options);

  for (int i = 0; i < 6; ++i) {
    CommitR(1.0 + i * 5.0, Tuple({10 + i, 100, 50 + i, 100}));
  }
  QueryAt(60.0);
  scheduler_.RunUntil(1000.0);

  // 1 initial + 3 periodic checkpoints; each truncated its prefix, so the
  // device holds only the records after the newest checkpoint.
  EXPECT_GE(mediator_->durability().checkpoints_written(), 4u);
  auto records = log_dev_.ReadAll();
  ASSERT_TRUE(records.ok());
  ASSERT_FALSE(records->empty());
  EXPECT_LT(records->size(), mediator_->durability().records_logged());
  ASSERT_EQ(answers_.size(), 1u);
  ExpectConsistentTrace();
}

TEST_F(CrashRecovery, NoLogDeviceMeansNoRecovery) {
  MakeMediator(AnnotationExample21(), MediatorOptions{});  // no durability
  Status query_status = Status::OK();
  scheduler_.At(5.0, [this]() { mediator_->Crash(); });
  scheduler_.At(6.0, [this, &query_status]() {
    mediator_->SubmitQuery(
        ViewQuery{"T", {}, nullptr},
        [&query_status](Result<ViewAnswer> ans) {
          query_status = ans.status();
        });
  });
  scheduler_.RunUntil(100.0);

  EXPECT_TRUE(mediator_->crashed());
  EXPECT_EQ(query_status.code(), StatusCode::kUnavailable);
  Status recover = mediator_->Recover();
  EXPECT_EQ(recover.code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace squirrel
