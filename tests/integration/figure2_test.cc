// Remark 3.1 / Figure 2: a scenario that is pseudo-consistent but NOT
// consistent, demonstrating that the paper's consistency definition is
// strictly stronger than the pairwise formulation.

#include <gtest/gtest.h>

#include "mediator/consistency.h"
#include "relational/parser.h"
#include "testing/util.h"

namespace squirrel {
namespace {

using testing::MakeRelation;
using testing::MakeSchema;

class Figure2Scenario : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<SourceDb>("DB");
    SQ_ASSERT_OK(db_->AddRelation("R", MakeSchema("R(p, q, note string)")));
    // Figure 2's source history: R holds exactly one binary tuple at each
    // time 1..6 (we use (p, q) and project the view S = π_q(R)).
    // t1 (a,a)  t2 (b,b)  t3 (c,a)  t4 (d,a)  t5 (e,a)  t6 (f,a)
    // We encode a..f as 1..6.
    const int pairs[6][2] = {{1, 1}, {2, 2}, {3, 1}, {4, 1}, {5, 1}, {6, 1}};
    Tuple prev;
    for (int i = 0; i < 6; ++i) {
      MultiDelta md;
      auto* d = md.Mutable("R", MakeSchema("R(p, q, note string)"));
      if (i > 0) SQ_ASSERT_OK(d->AddDelete(prev));
      Tuple cur({pairs[i][0], pairs[i][1], "x"});
      SQ_ASSERT_OK(d->AddInsert(cur));
      SQ_ASSERT_OK(db_->Commit(i + 1, md));
      prev = cur;
    }
    auto view = ParseAlgebra("project[q](R)");
    ASSERT_TRUE(view.ok());
    view_ = *view;
  }

  Relation S(int v) { return MakeRelation("S(q)", {Tuple({v})}); }

  std::unique_ptr<SourceDb> db_;
  AlgebraExpr::Ptr view_;
};

TEST_F(Figure2Scenario, PaperScenarioIsPseudoConsistentButNotConsistent) {
  // Figure 2's view history: S(a) S(a) S(b) S(a) S(b) S(a), a=1, b=2.
  std::vector<ViewObservation> obs = {
      {1, S(1)}, {2, S(1)}, {3, S(2)}, {4, S(1)}, {5, S(2)}, {6, S(1)},
  };
  SQ_ASSERT_OK_AND_ASSIGN(bool pseudo, IsPseudoConsistent(*db_, view_, obs));
  EXPECT_TRUE(pseudo);
  SQ_ASSERT_OK_AND_ASSIGN(bool consistent,
                          IsScenarioConsistent(*db_, view_, obs));
  EXPECT_FALSE(consistent);
}

TEST_F(Figure2Scenario, MonotoneViewHistoryIsConsistent) {
  // A well-behaved mediator's history: S(a), S(b), S(a)-at-or-after-t3.
  std::vector<ViewObservation> obs = {
      {1, S(1)}, {2.5, S(2)}, {4, S(1)}, {6, S(1)},
  };
  SQ_ASSERT_OK_AND_ASSIGN(bool pseudo, IsPseudoConsistent(*db_, view_, obs));
  EXPECT_TRUE(pseudo);
  SQ_ASSERT_OK_AND_ASSIGN(bool consistent,
                          IsScenarioConsistent(*db_, view_, obs));
  EXPECT_TRUE(consistent);
}

TEST_F(Figure2Scenario, ForecastingTheFutureIsNeitherKind) {
  // The view shows S(b) before the source ever produced q=b (chronology
  // violation): neither pseudo-consistent nor consistent.
  std::vector<ViewObservation> obs = {{1.5, S(2)}};
  SQ_ASSERT_OK_AND_ASSIGN(bool pseudo, IsPseudoConsistent(*db_, view_, obs));
  EXPECT_FALSE(pseudo);
  SQ_ASSERT_OK_AND_ASSIGN(bool consistent,
                          IsScenarioConsistent(*db_, view_, obs));
  EXPECT_FALSE(consistent);
}

TEST_F(Figure2Scenario, FabricatedStateIsInvalid) {
  // S(c=3) never corresponds to any source state.
  std::vector<ViewObservation> obs = {{6, S(3)}};
  SQ_ASSERT_OK_AND_ASSIGN(bool pseudo, IsPseudoConsistent(*db_, view_, obs));
  EXPECT_FALSE(pseudo);
  SQ_ASSERT_OK_AND_ASSIGN(bool consistent,
                          IsScenarioConsistent(*db_, view_, obs));
  EXPECT_FALSE(consistent);
}

TEST_F(Figure2Scenario, EmptyObservationHistoryTriviallyConsistent) {
  std::vector<ViewObservation> obs;
  SQ_ASSERT_OK_AND_ASSIGN(bool pseudo, IsPseudoConsistent(*db_, view_, obs));
  EXPECT_TRUE(pseudo);
  SQ_ASSERT_OK_AND_ASSIGN(bool consistent,
                          IsScenarioConsistent(*db_, view_, obs));
  EXPECT_TRUE(consistent);
}

TEST_F(Figure2Scenario, InitialEmptyStateIsAWitness) {
  // Before the first commit the source (and hence the view) is empty.
  Relation empty(MakeSchema("S(q)"), Semantics::kSet);
  std::vector<ViewObservation> obs = {{1, empty}, {2, S(1)}};
  SQ_ASSERT_OK_AND_ASSIGN(bool consistent,
                          IsScenarioConsistent(*db_, view_, obs));
  EXPECT_TRUE(consistent);
}

}  // namespace
}  // namespace squirrel
