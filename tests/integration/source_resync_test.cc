// End-to-end source crash/restart behavior: epoch detection, anti-entropy
// snapshot resync, degraded-mode query answering with staleness annotations,
// quarantine rejoin accounting, and the freshness witness under a down
// source. Companion unit tests live in tests/mediator/resync_test.cc; the
// seeded acceptance sweeps in tests/property/source_resync_sweep_test.cc.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "mediator/consistency.h"
#include "mediator/freshness.h"
#include "mediator/mediator.h"
#include "sim/fault.h"
#include "testing/sim_harness.h"
#include "testing/util.h"
#include "vdp/paper_examples.h"

namespace squirrel {
namespace {

using testing::MakeSchema;

/// Figure 1 under caller-chosen annotation, fault plans, and options; DB2's
/// announcer may batch (so a restart can wipe a pending batch).
class ResyncFigure1 : public ::testing::Test {
 protected:
  void Init(Annotation ann, FaultPlan db1_plan, FaultPlan db2_plan,
            MediatorOptions options, Time announce2 = 0.0) {
    db1_ = std::make_unique<SourceDb>("DB1");
    db2_ = std::make_unique<SourceDb>("DB2");
    SQ_ASSERT_OK(
        db1_->AddRelation("R", MakeSchema("R(r1, r2, r3, r4) key(r1)")));
    SQ_ASSERT_OK(db2_->AddRelation("S", MakeSchema("S(s1, s2, s3) key(s1)")));
    SQ_ASSERT_OK(db1_->InsertTuple(0, "R", Tuple({1, 100, 11, 100})));
    SQ_ASSERT_OK(db2_->InsertTuple(0, "S", Tuple({100, 5, 10})));
    inj1_ = std::make_unique<FaultInjector>(std::move(db1_plan), 1);
    inj2_ = std::make_unique<FaultInjector>(std::move(db2_plan), 2);

    auto vdp = BuildFigure1Vdp();
    ASSERT_TRUE(vdp.ok());
    vdp_ = std::make_unique<Vdp>(*vdp);

    options.poll_timeout = options.poll_timeout == 0.0 ? 2.0
                                                       : options.poll_timeout;
    options.poll_backoff = 2.0;
    options.poll_max_retries = 3;
    options.txn_retry_delay = 1.0;
    std::vector<SourceSetup> setups = {
        {db1_.get(), 0.5, 0.2, 0.0, inj1_.get()},
        {db2_.get(), 0.5, 0.2, announce2, inj2_.get()},
    };
    auto med = Mediator::Create(*vdp_, ann, setups, &scheduler_, options);
    ASSERT_TRUE(med.ok()) << med.status().ToString();
    med_ = std::move(med).value();
    SQ_ASSERT_OK(med_->Start());
  }

  /// Runs to \p until, then checks the export equals recomputation and the
  /// trace passes the independent checker.
  void FinishAndCheck(Time until) {
    scheduler_.RunUntil(until);
    EXPECT_FALSE(med_->busy());
    EXPECT_EQ(med_->QueueSize(), 0u);
    Result<ViewAnswer> answer = Status::Internal("no answer");
    scheduler_.At(until + 1, [&]() {
      ViewQuery q;
      q.relation = "T";
      med_->SubmitQuery(q,
                        [&](Result<ViewAnswer> a) { answer = std::move(a); });
    });
    scheduler_.RunUntil(until + 50);
    ASSERT_TRUE(answer.ok()) << answer.status().ToString();
    final_answer_ = answer->data;
    ConsistencyChecker checker(vdp_.get(), &med_->annotation(),
                               {db1_.get(), db2_.get()});
    SQ_ASSERT_OK_AND_ASSIGN(Relation expected,
                            checker.EvalNodeAt("T", {until, until}));
    EXPECT_EQ(testing::Rows(answer->data), testing::Rows(expected.ToSet()));
    SQ_ASSERT_OK_AND_ASSIGN(ConsistencyReport report,
                            checker.Check(med_->trace()));
    EXPECT_TRUE(report.consistent())
        << (report.violations.empty() ? "no details" : report.violations[0]);
  }

  bool HasNote(const std::string& needle) const {
    const auto& notes = med_->trace().notes();
    return std::any_of(notes.begin(), notes.end(), [&](const auto& n) {
      return n.second.find(needle) != std::string::npos;
    });
  }

  std::vector<std::string> NotesContaining(const std::string& needle) const {
    std::vector<std::string> out;
    for (const auto& n : med_->trace().notes()) {
      if (n.second.find(needle) != std::string::npos) out.push_back(n.second);
    }
    return out;
  }

  Scheduler scheduler_;
  std::unique_ptr<SourceDb> db1_, db2_;
  std::unique_ptr<FaultInjector> inj1_, inj2_;
  std::unique_ptr<Vdp> vdp_;
  std::unique_ptr<Mediator> med_;
  std::optional<Relation> final_answer_;
};

TEST_F(ResyncFigure1, RestartedSourceResyncsLostBatchLosslessly) {
  // DB2 batches announcements every 4s and restarts at 15.3: a delete
  // committed at 9 is still pending in the announcer when the restart wipes
  // it, so only the anti-entropy snapshot can tell the mediator about it.
  FaultPlan db2_plan;
  db2_plan.restarts["DB2"] = {{10.0, 15.3}};
  Init(AnnotationExample21(), FaultPlan{}, db2_plan, MediatorOptions{},
       /*announce2=*/4.0);

  scheduler_.At(3.0, [&]() {
    SQ_EXPECT_OK(db1_->InsertTuple(scheduler_.Now(), "R",
                                   Tuple({2, 200, 22, 100})));
  });
  scheduler_.At(5.0, [&]() {
    SQ_EXPECT_OK(db2_->InsertTuple(scheduler_.Now(), "S", Tuple({200, 6, 20})));
  });
  scheduler_.At(9.0, [&]() {
    SQ_EXPECT_OK(db2_->DeleteTuple(scheduler_.Now(), "S", Tuple({100, 5, 10})));
  });

  // Mid-window probe: the mediator still believes the deleted row exists
  // (the delete is lost in the dead announcer), so T shows both joins.
  Result<ViewAnswer> stale = Status::Internal("no answer");
  scheduler_.At(14.0, [&]() {
    med_->SubmitQuery(ViewQuery{"T", {}, nullptr},
                      [&](Result<ViewAnswer> a) { stale = std::move(a); });
  });

  FinishAndCheck(50.0);
  ASSERT_TRUE(stale.ok()) << stale.status().ToString();
  EXPECT_EQ(stale->data.DistinctSize(), 2u);
  // Post-resync, the corrective delta removed the stale join partner.
  EXPECT_EQ(final_answer_->DistinctSize(), 1u);

  EXPECT_EQ(db2_->epoch(), 2u);
  const MediatorStats& stats = med_->stats();
  EXPECT_EQ(stats.epoch_bumps, 1u);
  EXPECT_EQ(stats.resyncs_started, 1u);
  EXPECT_EQ(stats.resyncs_completed, 1u);
  EXPECT_GE(stats.snapshots_requested, 1u);
  EXPECT_TRUE(HasNote("resync begin DB2 epoch 2"));
  EXPECT_TRUE(HasNote("resync done DB2 epoch 2"));
  EXPECT_TRUE(med_->resync().UnhealthySources().empty());
}

TEST_F(ResyncFigure1, DegradedQueryOverQuarantinedSourceAnnotatesStaleness) {
  // Example 2.3 hybrid: r3/s2 virtual, so queries touching r3 must poll
  // DB1. DB1 is down 10..60; an S commit at 12 exhausts its poll retries
  // and quarantines DB1, after which a proactive degraded answer is served
  // from the materialized half.
  auto vdp = BuildFigure1Vdp();
  ASSERT_TRUE(vdp.ok());
  FaultPlan db1_plan;
  db1_plan.crashes["DB1"] = {{10.0, 60.0}};
  MediatorOptions options;
  options.degraded_reads = true;
  Init(AnnotationExample23(*vdp), db1_plan, FaultPlan{}, options);

  scheduler_.At(12.0, [&]() {
    SQ_EXPECT_OK(db2_->InsertTuple(scheduler_.Now(), "S", Tuple({200, 6, 20})));
  });
  Result<ViewAnswer> degraded = Status::Internal("no answer");
  scheduler_.At(40.0, [&]() {
    med_->SubmitQuery(ViewQuery{"T", {"r1", "r3"}, nullptr},
                      [&](Result<ViewAnswer> a) { degraded = std::move(a); });
  });
  FinishAndCheck(130.0);

  ASSERT_TRUE(degraded.ok()) << degraded.status().ToString();
  EXPECT_TRUE(degraded->degraded);
  // r3 has no materialized backing; the answer covers r1 only.
  EXPECT_EQ(degraded->missing_attrs, (std::vector<std::string>{"r3"}));
  EXPECT_EQ(degraded->data.schema().AttributeNames(),
            (std::vector<std::string>{"r1"}));
  ASSERT_EQ(degraded->staleness.size(), 2u);
  EXPECT_EQ(degraded->staleness[0].source, "DB1");
  EXPECT_TRUE(degraded->staleness[0].down);
  EXPECT_GE(degraded->staleness[0].staleness, 0.0);
  EXPECT_FALSE(degraded->staleness[1].down);

  const MediatorStats& stats = med_->stats();
  EXPECT_GE(stats.degraded_queries, 1u);
  EXPECT_GE(stats.quarantines, 1u);
  EXPECT_TRUE(HasNote("degraded query"));
  // The quarantine cleared once DB1 recovered and answered again.
  EXPECT_TRUE(med_->QuarantinedSources().empty());
}

TEST_F(ResyncFigure1, DegradedQueryAfterPollFailureWithoutPriorQuarantine) {
  // Reactive path: nothing has quarantined DB1 yet, the query's own polls
  // time out, and instead of kUnavailable the caller gets a degraded answer.
  auto vdp = BuildFigure1Vdp();
  ASSERT_TRUE(vdp.ok());
  FaultPlan db1_plan;
  db1_plan.crashes["DB1"] = {{10.0, 60.0}};
  MediatorOptions options;
  options.degraded_reads = true;
  Init(AnnotationExample23(*vdp), db1_plan, FaultPlan{}, options);

  Result<ViewAnswer> degraded = Status::Internal("no answer");
  scheduler_.At(15.0, [&]() {
    med_->SubmitQuery(ViewQuery{"T", {"r1", "r3"}, nullptr},
                      [&](Result<ViewAnswer> a) { degraded = std::move(a); });
  });
  // Quarantine clears on the next delivery from the source; with no other
  // traffic in this test, DB1 proves itself alive via an announcement after
  // its window ends so the final check can poll normally again.
  scheduler_.At(70.0, [&]() {
    SQ_EXPECT_OK(db1_->InsertTuple(scheduler_.Now(), "R",
                                   Tuple({2, 200, 22, 100})));
  });
  FinishAndCheck(130.0);

  ASSERT_TRUE(degraded.ok()) << degraded.status().ToString();
  EXPECT_TRUE(degraded->degraded);
  EXPECT_GT(med_->stats().poll_timeouts, 0u);
  EXPECT_EQ(med_->stats().failed_queries, 0u);
  EXPECT_TRUE(HasNote("query degraded after poll failure"));
}

TEST_F(ResyncFigure1, QuarantineClearRequarantineCycleResetsAccounting) {
  // Two symmetric DB1 outages, an S commit inside each: DB1 is quarantined,
  // rejoins, and is quarantined again. The second cycle must start from a
  // clean failure count (identical note text) and show up in the distinct
  // requarantines counter.
  auto vdp = BuildFigure1Vdp();
  ASSERT_TRUE(vdp.ok());
  FaultPlan db1_plan;
  db1_plan.crashes["DB1"] = {{5.0, 25.0}, {45.0, 65.0}};
  Init(AnnotationExample22(*vdp), db1_plan, FaultPlan{}, MediatorOptions{});
  scheduler_.At(6.0, [&]() {
    SQ_EXPECT_OK(db2_->InsertTuple(scheduler_.Now(), "S", Tuple({200, 6, 20})));
  });
  scheduler_.At(46.0, [&]() {
    SQ_EXPECT_OK(db2_->InsertTuple(scheduler_.Now(), "S", Tuple({300, 7, 30})));
  });
  FinishAndCheck(110.0);

  const MediatorStats& stats = med_->stats();
  EXPECT_EQ(stats.quarantines, 2u);
  EXPECT_EQ(stats.requarantines, 1u);
  EXPECT_TRUE(med_->QuarantinedSources().empty());
  std::vector<std::string> q_notes = NotesContaining("quarantine DB1 after");
  ASSERT_EQ(q_notes.size(), 2u);
  // ClearQuarantine reset the silent-round count, so the second quarantine
  // reports the same count as the first instead of a running total.
  EXPECT_EQ(q_notes[0], q_notes[1]);
  EXPECT_EQ(NotesContaining("quarantine cleared DB1").size(), 2u);
}

TEST_F(ResyncFigure1, EffectiveFreshnessWitnessExtendsWhileSourceIsDown) {
  // DB1 never commits and is down 10..60 (quarantined by the S commit's
  // polls). Queries during the outage carry an ever-older DB1 reflect
  // entry, so RAW staleness blows the Theorem 7.2 bound — but the freshness
  // definition only needs SOME witness state, and a silent source's witness
  // extends forward, so EFFECTIVE staleness stays within the bound.
  auto vdp = BuildFigure1Vdp();
  ASSERT_TRUE(vdp.ok());
  FaultPlan db1_plan;
  db1_plan.crashes["DB1"] = {{10.0, 60.0}};
  Init(AnnotationExample23(*vdp), db1_plan, FaultPlan{}, MediatorOptions{});

  scheduler_.At(12.0, [&]() {
    SQ_EXPECT_OK(db2_->InsertTuple(scheduler_.Now(), "S", Tuple({200, 6, 20})));
  });
  for (Time t : {20.0, 35.0, 50.0}) {
    scheduler_.At(t, [&]() {
      med_->SubmitQuery(ViewQuery{"T", {"r1", "s1"}, nullptr},
                        [](Result<ViewAnswer>) {});
    });
  }
  FinishAndCheck(130.0);
  EXPECT_GE(med_->stats().quarantines, 1u);

  FreshnessReport raw =
      CheckFreshness(med_->trace(), med_->DelayProfiles(), med_->Delays(),
                     med_->ContributorKinds());
  FreshnessReport effective =
      CheckFreshness(med_->trace(), med_->DelayProfiles(), med_->Delays(),
                     med_->ContributorKinds(), {db1_.get(), db2_.get()});
  auto find = [](const FreshnessReport& r,
                 const std::string& name) -> const SourceFreshness* {
    for (const auto& sf : r.per_source) {
      if (sf.source == name) return &sf;
    }
    return nullptr;
  };
  const SourceFreshness* raw_db1 = find(raw, "DB1");
  const SourceFreshness* eff_db1 = find(effective, "DB1");
  ASSERT_NE(raw_db1, nullptr);
  ASSERT_NE(eff_db1, nullptr);
  ASSERT_GT(eff_db1->samples, 0u);
  // Raw reflect-vector staleness pretends the down source kept changing.
  EXPECT_GT(raw_db1->max_staleness, raw_db1->bound);
  EXPECT_FALSE(raw_db1->within_bound);
  // With the source history supplied, the witness extends across the outage.
  EXPECT_LE(eff_db1->max_staleness, eff_db1->bound);
  EXPECT_TRUE(eff_db1->within_bound);
}

TEST(SourceResyncHarnessTest, RestartScheduleDrawsFromDedicatedRngStream) {
  // Satellite of the determinism story: enabling source restarts must not
  // perturb the channel/mediator fault schedule or the workload of a seed
  // (pinned via the harness's restart-free schedule rendering), and the
  // restart run must converge to the restart-free run's final exports.
  testing::FaultSimOptions on;
  on.source_restarts = 2;
  on.degraded_reads = true;
  on.require_all_healthy = true;
  testing::FaultSimOptions off = on;
  off.source_restarts = 0;
  off.require_all_healthy = false;
  uint64_t restarts_seen = 0;
  for (uint64_t seed : {11ull, 17ull}) {
    auto with = testing::RunFaultSim(seed, on);
    ASSERT_TRUE(with.ok()) << with.status().ToString();
    auto without = testing::RunFaultSim(seed, off);
    ASSERT_TRUE(without.ok()) << without.status().ToString();
    EXPECT_EQ(with->fault_plan_dump, without->fault_plan_dump)
        << "seed " << seed << ": restart windows perturbed the other draws";
    EXPECT_EQ(with->final_exports, without->final_exports)
        << "seed " << seed << ": restarts changed the converged exports";
    restarts_seen += with->source_restarts;
  }
  EXPECT_GT(restarts_seen, 0u) << "chosen seeds never drew a restart window";
}

}  // namespace
}  // namespace squirrel
