#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "common/status.h"
#include "common/strings.h"

namespace squirrel {
namespace {

TEST(StatusTest, OkByDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, FactoriesCarryCodeAndMessage) {
  Status st = Status::InvalidArgument("bad thing");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(st.message(), "bad thing");
  EXPECT_EQ(st.ToString(), "InvalidArgument: bad thing");
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Unsupported("x").code(), StatusCode::kUnsupported);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

Result<int> Doubled(int x) {
  SQ_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  return v * 2;
}

TEST(ResultTest, ValueAndStatus) {
  Result<int> ok = ParsePositive(5);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 5);
  EXPECT_TRUE(ok.status().ok());
  Result<int> bad = ParsePositive(-1);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*Doubled(4), 8);
  EXPECT_FALSE(Doubled(0).ok());
}

TEST(ResultTest, MoveOnlyTypes) {
  auto make = []() -> Result<std::unique_ptr<int>> {
    return std::make_unique<int>(7);
  };
  Result<std::unique_ptr<int>> r = make();
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

TEST(RngTest, DeterministicFromSeed) {
  Rng a(123), b(123), c(124);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(a.Next(), c.Next());
}

TEST(RngTest, UniformWithinBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(10), 10u);
    int64_t v = rng.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    double d = rng.UniformDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, UniformCoversRange) {
  Rng rng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 200; ++i) seen.insert(rng.Uniform(4));
  EXPECT_EQ(seen.size(), 4u);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(5);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
}

TEST(RngTest, BernoulliRoughlyFair) {
  Rng rng(11);
  int heads = 0;
  for (int i = 0; i < 10000; ++i) heads += rng.Bernoulli(0.5);
  EXPECT_GT(heads, 4500);
  EXPECT_LT(heads, 5500);
}

TEST(RngTest, ExponentialPositiveWithSaneMean) {
  Rng rng(13);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double v = rng.Exponential(2.0);
    EXPECT_GT(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.05);  // mean 1/rate
}

TEST(RngTest, ShufflePermutes) {
  Rng rng(17);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, orig);
}

TEST(RngTest, ForkIsIndependent) {
  Rng a(21);
  Rng b = a.Fork();
  EXPECT_NE(a.Next(), b.Next());
}

TEST(StringsTest, JoinAndSplit) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Split("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(Split("", ','), std::vector<std::string>{""});
}

TEST(StringsTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  x y  "), "x y");
  EXPECT_EQ(StripWhitespace("\t\n"), "");
  EXPECT_EQ(StripWhitespace("abc"), "abc");
}

TEST(StringsTest, StartsWith) {
  EXPECT_TRUE(StartsWith("source DB", "source "));
  EXPECT_FALSE(StartsWith("sour", "source"));
}

TEST(StringsTest, HashingStable) {
  EXPECT_EQ(HashBytes("abc", 3), HashBytes("abc", 3));
  EXPECT_NE(HashBytes("abc", 3), HashBytes("abd", 3));
  EXPECT_NE(HashCombine(1, 2), HashCombine(2, 1));
}

}  // namespace
}  // namespace squirrel
