// The overload-protection acceptance sweep: 125 seeded schedules proving
// that query storms, tight deadlines, admission limits, and memory budgets
// never compromise correctness — only availability, and only in typed ways.
//
// Each chunk layers one overload mechanism over the standard fault sim
// (message loss/dup/reorder baked in) and asserts, per seed:
//   (1) the dichotomy: every injected storm query resolves, and resolves by
//       its deadline (storm_late == 0) or with a typed error
//       (storm_untyped == 0) — no silent drops, no unbounded waits;
//   (2) the final exports are BYTE-IDENTICAL to the no-overload oracle of
//       the same seed (storm queries and shed admissions are read-only:
//       update propagation must be completely unaffected);
//   (3) replaying the same seed + options reproduces the trace, the full
//       stats rendering, and the exports byte for byte.
// Every assertion names the seed; reproduce one with
// RunFaultSim(<seed>, <the chunk's options>) (see DESIGN.md §15).

#include <gtest/gtest.h>

#include <string>

#include "testing/sim_harness.h"

namespace squirrel {
namespace {

using testing::FaultSimOptions;
using testing::FaultSimResult;
using testing::RunFaultSim;

constexpr uint64_t kSeedsPerChunk = 25;
constexpr int kChunks = 5;  // 5 * 25 = 125 seeds

// The overload layer one chunk exercises on top of the base fault sim.
struct Scenario {
  int query_storm = 0;
  Time query_deadline = 0;
  bool degraded_reads = false;
  uint32_t admit_max_active = 0;
  uint32_t admit_max_queued = 0;
  size_t memory_soft_limit = 0;
  Time poll_backoff_cap = 0;
  double poll_jitter = 0;
  int iup_threads = 0;
  FaultSimOptions::Topology topology = FaultSimOptions::Topology::kSingle;
};

Scenario ChunkScenario(int chunk) {
  switch (chunk) {
    case 0:  // storm baseline + capped/jittered poll backoff, no limits:
             // every storm query must land ok/degraded/unavailable
      return {.query_storm = 20, .poll_backoff_cap = 6.0, .poll_jitter = 0.25};
    case 1:  // tight deadlines + degraded reads: expiring queries return
             // the materialized fraction or a typed kDeadlineExceeded
      return {.query_storm = 15, .query_deadline = 1.0,
              .degraded_reads = true};
    case 2:  // admission control: overlapping storm queries are refused
             // fast with kOverloaded + retry-after, never queued unboundedly
      return {.query_storm = 40, .admit_max_active = 1, .admit_max_queued = 0};
    case 3:  // memory budget soft limit: retained state past the soft line
             // sheds every kBatch storm query; interactive work continues
      return {.query_storm = 25, .admit_max_active = 4, .admit_max_queued = 4,
              .memory_soft_limit = 1};
    default:  // sharded 3-tier + deadlines + threaded IUP (the TSan chunk):
              // deadlines propagate to child tiers minus the margin
      return {.query_storm = 10, .query_deadline = 2.0,
              .degraded_reads = true, .iup_threads = 2,
              .topology = FaultSimOptions::Topology::kThreeTier};
  }
}

FaultSimOptions ChunkOptions(const Scenario& s, bool overload_on) {
  FaultSimOptions opts;
  opts.degraded_reads = s.degraded_reads;
  opts.iup_threads = s.iup_threads;
  opts.topology = s.topology;
  if (overload_on) {
    opts.query_storm = s.query_storm;
    opts.query_deadline = s.query_deadline;
    opts.admit_max_active = s.admit_max_active;
    opts.admit_max_queued = s.admit_max_queued;
    opts.memory_soft_limit = s.memory_soft_limit;
    opts.poll_backoff_cap = s.poll_backoff_cap;
    opts.poll_jitter = s.poll_jitter;
  }
  return opts;
}

class OverloadSweep : public ::testing::TestWithParam<int> {};

TEST_P(OverloadSweep, TypedOutcomesAndExportsMatchNoOverloadOracle) {
  const int chunk = GetParam();
  const Scenario scenario = ChunkScenario(chunk);
  const uint64_t base = 1 + static_cast<uint64_t>(chunk % 2) * kSeedsPerChunk;
  uint64_t total_deadline_or_degraded = 0;
  uint64_t total_rejected = 0;
  uint64_t total_shed_soft = 0;
  for (uint64_t seed = base; seed < base + kSeedsPerChunk; ++seed) {
    // The oracle: the same scenario with every overload knob off (same
    // topology/degraded/threads, no storm, no limits).
    auto oracle = RunFaultSim(seed, ChunkOptions(scenario, false));
    ASSERT_TRUE(oracle.ok()) << "[seed " << seed << "] no-overload oracle: "
                             << oracle.status().ToString();

    auto run = RunFaultSim(seed, ChunkOptions(scenario, true));
    ASSERT_TRUE(run.ok()) << "[seed " << seed << "] chunk " << chunk << ": "
                          << run.status().ToString();
    EXPECT_GT(run->exports_checked, 0u) << "[seed " << seed << "]";

    // (1) The dichotomy. The harness already failed the run if any storm
    // query never resolved; here: none resolved late, none untyped, and
    // the outcome counters partition the storm exactly.
    ASSERT_EQ(run->storm_queries,
              static_cast<uint64_t>(scenario.query_storm))
        << "[seed " << seed << "]";
    EXPECT_EQ(run->storm_late, 0u)
        << "[seed " << seed << "] a storm query resolved past its deadline";
    EXPECT_EQ(run->storm_untyped, 0u)
        << "[seed " << seed << "] a storm query died with an untyped status";
    EXPECT_EQ(run->storm_ok + run->storm_degraded +
                  run->storm_deadline_exceeded + run->storm_rejected_overload +
                  run->storm_unavailable + run->storm_untyped,
              run->storm_queries)
        << "[seed " << seed << "] storm outcomes do not partition the storm";
    if (scenario.query_deadline == 0 && scenario.admit_max_active == 0 &&
        scenario.memory_soft_limit == 0) {
      // No deadline / no gate configured: those outcomes are impossible.
      EXPECT_EQ(run->storm_deadline_exceeded, 0u) << "[seed " << seed << "]";
      EXPECT_EQ(run->storm_rejected_overload, 0u) << "[seed " << seed << "]";
    }
    total_deadline_or_degraded +=
        run->storm_deadline_exceeded + run->storm_degraded;
    total_rejected += run->storm_rejected_overload;
    total_shed_soft += run->stats.queries_shed_soft_budget;

    // (2) Overload protection is invisible in the view: byte-identical
    // exports to the no-overload oracle of the same seed.
    ASSERT_EQ(run->final_exports, oracle->final_exports)
        << "[seed " << seed << "] chunk " << chunk
        << ": a read-only storm perturbed the final exports";

    // (3) Replay identity, trace + full stats rendering included (deadline
    // timers, admission rejections, and jittered backoff must all be pure
    // functions of seed + options).
    auto replay = RunFaultSim(seed, ChunkOptions(scenario, true));
    ASSERT_TRUE(replay.ok()) << "[seed " << seed
                             << "] replay: " << replay.status().ToString();
    ASSERT_EQ(run->trace_dump, replay->trace_dump)
        << "[seed " << seed << "] chunk " << chunk
        << ": replay trace was not byte-identical";
    ASSERT_EQ(run->stats_dump, replay->stats_dump)
        << "[seed " << seed << "] chunk " << chunk
        << ": replay stats drifted (an overload counter is nondeterministic)";
    ASSERT_EQ(run->final_exports, replay->final_exports)
        << "[seed " << seed << "] chunk " << chunk
        << ": replay exports were not byte-identical";
  }
  // Chunk-level activity: the mechanism under test must actually fire
  // somewhere in 25 seeds, or the chunk proves nothing.
  if (ChunkScenario(chunk).query_deadline > 0) {
    EXPECT_GT(total_deadline_or_degraded, 0u)
        << "chunk " << chunk << ": no deadline ever fired";
  }
  if (ChunkScenario(chunk).admit_max_active > 0 &&
      ChunkScenario(chunk).memory_soft_limit == 0) {
    EXPECT_GT(total_rejected, 0u)
        << "chunk " << chunk << ": the admission gate never rejected";
  }
  if (ChunkScenario(chunk).memory_soft_limit > 0) {
    EXPECT_GT(total_shed_soft, 0u)
        << "chunk " << chunk << ": the soft budget never shed a batch query";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OverloadSweep, ::testing::Range(0, kChunks),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "chunk" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace squirrel
