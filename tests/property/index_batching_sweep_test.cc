// Equivalence sweeps for the incremental-index and delta-batching layer.
//
// The persistent repository indexes and the update-queue coalescing window
// are pure performance features: they must never change what the mediator
// computes. These sweeps pin that down against the seeded fault simulator:
//
//   (1) Indexed vs unindexed: the SAME seed run with use_indexes on and off
//       must produce byte-identical trace dumps and final export renderings
//       (the indexed join paths feed the same deltas to the same txns).
//   (2) Coalescing: merging same-source messages inside the batch window
//       must leave the final exports byte-identical to the uncoalesced run.
//       (Trace dumps are NOT compared across that pair: coalescing changes
//       per-txn message counts, which the dump's counters record.)
//   (3) Coalescing + durability + seeded crash/restart windows: recovery
//       replays kEnqueueCoalesced records, and the run must still satisfy
//       the harness's internal export/recompute and replay-identity checks
//       while matching the coalescing-off crash run's final exports.
//
// Seeds start at 1101 to stay clear of the fault sweep (1..200) and the
// crash sweep (501..600) so failures name a unique schedule.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "testing/sim_harness.h"

namespace squirrel {
namespace testing {
namespace {

constexpr uint64_t kBaseSeed = 1101;
constexpr uint64_t kSeeds = 12;

FaultSimOptions NoIndexOpts() {
  FaultSimOptions opts;
  opts.use_indexes = false;
  return opts;
}

// The default workload spaces commits 3–5.5s apart, which the update loop
// drains between events; packing them 5x tighter makes same-source
// announcements actually meet in the queue so the window has work to do.
constexpr double kTightGaps = 0.2;

FaultSimOptions CoalesceOpts(Time coalesce_window) {
  FaultSimOptions opts;
  opts.coalesce_window = coalesce_window;
  opts.event_gap_scale = kTightGaps;
  return opts;
}

FaultSimOptions CrashOpts(Time coalesce_window) {
  FaultSimOptions opts;
  opts.durability = true;
  opts.mediator_crashes = 2;
  opts.coalesce_window = coalesce_window;
  opts.event_gap_scale = kTightGaps;
  return opts;
}

TEST(IndexBatchingSweep, IndexedRunsAreByteIdenticalToUnindexed) {
  for (uint64_t seed = kBaseSeed; seed < kBaseSeed + kSeeds; ++seed) {
    auto indexed = RunFaultSim(seed);  // use_indexes defaults to true
    ASSERT_TRUE(indexed.ok()) << indexed.status().ToString();
    auto plain = RunFaultSim(seed, NoIndexOpts());
    ASSERT_TRUE(plain.ok()) << plain.status().ToString();
    ASSERT_GT(indexed->exports_checked, 0u) << "seed " << seed;
    EXPECT_EQ(indexed->final_exports, plain->final_exports)
        << "seed " << seed;
    EXPECT_EQ(indexed->trace_dump, plain->trace_dump) << "seed " << seed;
  }
}

TEST(IndexBatchingSweep, CoalescingPreservesFinalExports) {
  uint64_t coalesced_total = 0;
  for (uint64_t seed = kBaseSeed; seed < kBaseSeed + kSeeds; ++seed) {
    auto batched = RunFaultSim(seed, CoalesceOpts(/*coalesce_window=*/2.0));
    ASSERT_TRUE(batched.ok()) << batched.status().ToString();
    auto plain = RunFaultSim(seed, CoalesceOpts(/*coalesce_window=*/0.0));
    ASSERT_TRUE(plain.ok()) << plain.status().ToString();
    EXPECT_EQ(batched->final_exports, plain->final_exports)
        << "seed " << seed;
    coalesced_total += batched->coalesced_msgs;
  }
  // The window must actually merge messages somewhere in the sweep, or the
  // equivalence above is vacuous.
  EXPECT_GT(coalesced_total, 0u);
}

TEST(IndexBatchingSweep, CoalescingSurvivesCrashRecovery) {
  uint64_t coalesced_total = 0;
  uint64_t crashes_seen = 0;
  for (uint64_t seed = kBaseSeed; seed < kBaseSeed + kSeeds; ++seed) {
    // RunFaultSim itself asserts exports == from-scratch recomputation and
    // that a same-seed replay reproduces the trace dump byte for byte, so a
    // successful run already covers kEnqueueCoalesced WAL replay.
    auto batched = RunFaultSim(seed, CrashOpts(/*coalesce_window=*/2.0));
    ASSERT_TRUE(batched.ok()) << batched.status().ToString();
    auto plain = RunFaultSim(seed, CrashOpts(/*coalesce_window=*/0.0));
    ASSERT_TRUE(plain.ok()) << plain.status().ToString();
    EXPECT_EQ(batched->final_exports, plain->final_exports)
        << "seed " << seed;
    EXPECT_EQ(batched->mediator_crashes, batched->recoveries)
        << "seed " << seed;
    coalesced_total += batched->coalesced_msgs;
    crashes_seen += batched->mediator_crashes;
  }
  EXPECT_GT(coalesced_total, 0u);
  EXPECT_GT(crashes_seen, 0u);
}

// Regression sweep for the epoch-boundary coalescing hole: with commits
// packed tightly AND sources restarting mid-run, a restarted source's first
// new-epoch announcement lands in the window of its own pre-restart tail.
// Merging them used to stamp old atoms with the new epoch, so the per-epoch
// dedup floor dropped the whole batch and exports silently lost updates.
// The run must still match the coalescing-off baseline's final exports and
// end with every source healthy.
TEST(IndexBatchingSweep, CoalescingRefusesEpochBoundariesUnderRestarts) {
  uint64_t coalesced_total = 0;
  uint64_t restarts_seen = 0;
  auto with_restarts = [](Time coalesce_window) {
    FaultSimOptions opts;
    opts.durability = true;
    opts.coalesce_window = coalesce_window;
    opts.event_gap_scale = kTightGaps;
    opts.source_restarts = 2;
    opts.require_all_healthy = true;
    return opts;
  };
  for (uint64_t seed = kBaseSeed; seed < kBaseSeed + kSeeds; ++seed) {
    auto batched = RunFaultSim(seed, with_restarts(/*coalesce_window=*/2.0));
    ASSERT_TRUE(batched.ok()) << batched.status().ToString();
    auto plain = RunFaultSim(seed, with_restarts(/*coalesce_window=*/0.0));
    ASSERT_TRUE(plain.ok()) << plain.status().ToString();
    EXPECT_EQ(batched->final_exports, plain->final_exports)
        << "seed " << seed;
    coalesced_total += batched->coalesced_msgs;
    restarts_seen += batched->source_restarts;
  }
  // Vacuity guards: the sweep must exercise both merges and restarts.
  EXPECT_GT(coalesced_total, 0u);
  EXPECT_GT(restarts_seen, 0u);
}

}  // namespace
}  // namespace testing
}  // namespace squirrel
