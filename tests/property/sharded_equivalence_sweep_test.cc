// The sharded-deployment acceptance sweep: 125 seeded schedules proving a
// mediator tree (child shards re-announced to their parents through
// ExportAnnouncer mirrors) indistinguishable at the root from the classic
// single-mediator deployment of the SAME scenario.
//
// Every chunk runs each seed three ways — single mediator (the oracle),
// two-shard, and three-tier — over an identical scenario (sources, VDP,
// annotation, channel faults, source restarts, workload: all drawn before
// the topology is applied) and demands BYTE-IDENTICAL final exports. The
// sharded runs themselves must replay byte-identically, trace dump and full
// per-shard stats dump included — counter drift across Crash()/Recover()
// shows up here even when no export diverges. Every assertion names the
// seed; reproduce one with RunFaultSim(<seed>, <the chunk's options>)
// (see DESIGN.md §14 "Multi-mediator composition").

#include <gtest/gtest.h>

#include <string>

#include "testing/sim_harness.h"

namespace squirrel {
namespace {

using testing::FaultSimOptions;
using testing::RunFaultSim;

constexpr uint64_t kSeedsPerChunk = 25;
constexpr int kChunks = 6;  // 6 * 25 = 150 seeds

// Per-chunk fault-model layers the single/sharded comparison rides on.
struct Scenario {
  bool durability = false;
  bool wal = false;
  int mediator_crashes = 0;  // also drives per-child crash/recovery windows
  int source_restarts = 0;
  double snapshot_corrupt_prob = 0;
  int iup_threads = 0;
  bool require_all_healthy = false;
  bool degraded_reads = false;
};

Scenario ChunkScenario(int chunk) {
  switch (chunk) {
    case 0:  // plain fault sim (message loss/dup/reorder baked in)
      return {};
    case 1:  // WAL durability + crash/recovery of EVERY tier mid-run
      return {.durability = true, .wal = true, .mediator_crashes = 2};
    case 2:  // source restarts + anti-entropy resync through the tree
      return {.durability = true,
              .wal = true,
              .source_restarts = 2,
              .require_all_healthy = true};
    case 3:  // corrupted snapshot payloads on every link (wire checksums)
      return {.durability = true, .wal = true, .snapshot_corrupt_prob = 0.3};
    case 4:  // threaded IUP kernels in every tier (the TSan chunk)
      return {.iup_threads = 2};
    default:  // down sources + degraded reads at every tier: a parent
              // answering from a resyncing child's mirror must annotate
              // staleness exactly like the single-mediator run does
      return {.durability = true,
              .wal = true,
              .source_restarts = 2,
              .require_all_healthy = true,
              .degraded_reads = true};
  }
}

FaultSimOptions ChunkOptions(const Scenario& s,
                             FaultSimOptions::Topology topo) {
  FaultSimOptions opts;
  opts.durability = s.durability;
  opts.wal = s.wal;
  opts.mediator_crashes = s.mediator_crashes;
  opts.source_restarts = s.source_restarts;
  opts.snapshot_corrupt_prob = s.snapshot_corrupt_prob;
  opts.iup_threads = s.iup_threads;
  opts.require_all_healthy = s.require_all_healthy;
  opts.degraded_reads = s.degraded_reads;
  opts.topology = topo;
  return opts;
}

class ShardedEquivalenceSweep : public ::testing::TestWithParam<int> {};

TEST_P(ShardedEquivalenceSweep, ShardedRunsMatchSingleMediator) {
  const int chunk = GetParam();
  const Scenario scenario = ChunkScenario(chunk);
  const uint64_t base = 1 + static_cast<uint64_t>(chunk % 2) * kSeedsPerChunk;
  uint64_t commits_mirrored = 0;
  for (uint64_t seed = base; seed < base + kSeedsPerChunk; ++seed) {
    auto oracle = RunFaultSim(
        seed, ChunkOptions(scenario, FaultSimOptions::Topology::kSingle));
    ASSERT_TRUE(oracle.ok()) << "[seed " << seed << "] single-mediator "
                             << "oracle: " << oracle.status().ToString();
    for (auto topo : {FaultSimOptions::Topology::kTwoShard,
                      FaultSimOptions::Topology::kThreeTier}) {
      const char* tag = topo == FaultSimOptions::Topology::kTwoShard
                            ? "two-shard"
                            : "three-tier";
      auto run = RunFaultSim(seed, ChunkOptions(scenario, topo));
      ASSERT_TRUE(run.ok())
          << "[seed " << seed << "] " << tag << ": " << run.status().ToString();
      EXPECT_GT(run->exports_checked, 0u) << "[seed " << seed << "]";
      EXPECT_GE(run->shards, 2u) << "[seed " << seed << "]";
      // A seed whose child exports never change legally mirrors nothing
      // (e.g. every S commit misses the S' filter); the chunk as a whole
      // must still prove the composition flows through the mirrors.
      commits_mirrored += run->commits_mirrored;

      // The deployment split must be invisible in every exported view.
      ASSERT_EQ(run->final_exports, oracle->final_exports)
          << "[seed " << seed << "] chunk " << chunk << ": " << tag
          << " final exports diverged from the single-mediator run";

      // And the sharded run must be deterministic under replay — traces,
      // per-shard stats counters, and exports alike.
      auto replay = RunFaultSim(seed, ChunkOptions(scenario, topo));
      ASSERT_TRUE(replay.ok()) << "[seed " << seed << "] " << tag
                               << " replay: " << replay.status().ToString();
      ASSERT_EQ(run->trace_dump, replay->trace_dump)
          << "[seed " << seed << "] chunk " << chunk << ": " << tag
          << " replay trace was not byte-identical";
      ASSERT_EQ(run->stats_dump, replay->stats_dump)
          << "[seed " << seed << "] chunk " << chunk << ": " << tag
          << " replay stats drifted (a counter is not crash-deterministic)";
      ASSERT_EQ(run->final_exports, replay->final_exports)
          << "[seed " << seed << "] chunk " << chunk << ": " << tag
          << " replay exports were not byte-identical";
    }
  }
  EXPECT_GT(commits_mirrored, 0u)
      << "chunk " << chunk << ": no child commit was ever re-announced";
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShardedEquivalenceSweep,
                         ::testing::Range(0, kChunks),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "chunk" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace squirrel
