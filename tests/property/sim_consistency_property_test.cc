// Theorem 7.1 as a property: randomized commit/query schedules with random
// delay configurations, across annotations — every trace a Squirrel
// mediator produces must pass the independent consistency checker, and
// stalenesses must stay within the Theorem 7.2 bound.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "mediator/consistency.h"
#include "mediator/freshness.h"
#include "mediator/mediator.h"
#include "testing/util.h"
#include "vdp/paper_examples.h"

namespace squirrel {
namespace {

using testing::MakeSchema;

struct SimParam {
  int ann_kind;  // 0 = all materialized, 1 = Ex 2.2, 2 = Ex 2.3
  int seed;
};

class SimConsistencyProperty : public ::testing::TestWithParam<SimParam> {};

TEST_P(SimConsistencyProperty, EveryTraceIsConsistentAndFresh) {
  Rng rng(GetParam().seed * 7349u + 101);
  auto db1 = std::make_unique<SourceDb>("DB1");
  auto db2 = std::make_unique<SourceDb>("DB2");
  SQ_ASSERT_OK(
      db1->AddRelation("R", MakeSchema("R(r1, r2, r3, r4) key(r1)")));
  SQ_ASSERT_OK(db2->AddRelation("S", MakeSchema("S(s1, s2, s3) key(s1)")));
  SQ_ASSERT_OK(db1->InsertTuple(0, "R", Tuple({1, 100, 11, 100})));
  SQ_ASSERT_OK(db2->InsertTuple(0, "S", Tuple({100, 5, 10})));

  auto vdp = BuildFigure1Vdp();
  ASSERT_TRUE(vdp.ok());
  Annotation ann;
  if (GetParam().ann_kind == 1) ann = AnnotationExample22(*vdp);
  if (GetParam().ann_kind == 2) ann = AnnotationExample23(*vdp);

  Scheduler scheduler;
  MediatorOptions options;
  options.update_period = rng.Bernoulli(0.5) ? 0.0 : rng.UniformDouble() * 3;
  options.u_proc_delay = rng.UniformDouble() * 0.2;
  options.q_proc_delay = rng.UniformDouble() * 0.2;
  std::vector<SourceSetup> setups = {
      {db1.get(), 0.2 + rng.UniformDouble(), 0.1 + rng.UniformDouble() * 0.5,
       rng.Bernoulli(0.5) ? 0.0 : rng.UniformDouble() * 2},
      {db2.get(), 0.2 + rng.UniformDouble(), 0.1 + rng.UniformDouble() * 0.5,
       rng.Bernoulli(0.5) ? 0.0 : rng.UniformDouble() * 2},
  };
  auto med = Mediator::Create(*vdp, ann, setups, &scheduler, options);
  ASSERT_TRUE(med.ok()) << med.status().ToString();
  SQ_ASSERT_OK((*med)->Start());
  Mediator* mediator = med->get();

  // Random schedule: keyed inserts/deletes plus queries.
  std::map<int64_t, Tuple> r_rows = {{1, Tuple({1, 100, 11, 100})}};
  std::map<int64_t, Tuple> s_rows = {{100, Tuple({100, 5, 10})}};
  size_t answers = 0, expected_answers = 0;
  Time t = 1.0;
  // Spacing keeps the mediator unsaturated: Theorem 7.2's bound charges one
  // polling round per transaction and does not model transactions queueing
  // behind each other.
  for (int step = 0; step < 40; ++step) {
    t += 5.0 + rng.UniformDouble() * 2;
    double dice = rng.UniformDouble();
    if (dice < 0.35) {
      // Commit on R.
      bool del = !r_rows.empty() && rng.Bernoulli(0.4);
      if (del) {
        auto it = r_rows.begin();
        std::advance(it, rng.Uniform(r_rows.size()));
        Tuple victim = it->second;
        r_rows.erase(it);
        scheduler.At(t, [&db1, victim, &scheduler]() {
          SQ_EXPECT_OK(db1->DeleteTuple(scheduler.Now(), "R", victim));
        });
      } else {
        int64_t key = rng.UniformInt(0, 40);
        if (r_rows.count(key)) continue;
        Tuple tup({key, rng.UniformInt(0, 4) * 100, rng.UniformInt(0, 99),
                   rng.Bernoulli(0.7) ? int64_t{100} : int64_t{7}});
        r_rows[key] = tup;
        scheduler.At(t, [&db1, tup, &scheduler]() {
          SQ_EXPECT_OK(db1->InsertTuple(scheduler.Now(), "R", tup));
        });
      }
    } else if (dice < 0.55) {
      // Commit on S.
      bool del = !s_rows.empty() && rng.Bernoulli(0.4);
      if (del) {
        auto it = s_rows.begin();
        std::advance(it, rng.Uniform(s_rows.size()));
        Tuple victim = it->second;
        s_rows.erase(it);
        scheduler.At(t, [&db2, victim, &scheduler]() {
          SQ_EXPECT_OK(db2->DeleteTuple(scheduler.Now(), "S", victim));
        });
      } else {
        int64_t key = rng.UniformInt(0, 4) * 100;
        if (s_rows.count(key)) continue;
        Tuple tup({key, rng.UniformInt(0, 9), rng.UniformInt(0, 99)});
        s_rows[key] = tup;
        scheduler.At(t, [&db2, tup, &scheduler]() {
          SQ_EXPECT_OK(db2->InsertTuple(scheduler.Now(), "S", tup));
        });
      }
    } else {
      // Query: either materialized-only or one involving virtual attrs.
      ViewQuery q;
      q.relation = "T";
      if (rng.Bernoulli(0.5)) {
        q.attrs = {"r1", "s1"};
      } else {
        q.attrs = {"r1", "r3", "s2"};
        if (rng.Bernoulli(0.5)) q.cond = testing::Pred("r3 < 50");
      }
      ++expected_answers;
      scheduler.At(t, [mediator, q, &answers]() {
        mediator->SubmitQuery(q, [&answers](Result<ViewAnswer> ans) {
          EXPECT_TRUE(ans.ok()) << ans.status().ToString();
          ++answers;
        });
      });
    }
  }
  scheduler.RunUntil(t + 200.0);
  EXPECT_EQ(answers, expected_answers);

  // Consistency (Theorem 7.1).
  auto checker_vdp = BuildFigure1Vdp();
  ASSERT_TRUE(checker_vdp.ok());
  ConsistencyChecker checker(&*checker_vdp, &mediator->annotation(),
                             {db1.get(), db2.get()});
  SQ_ASSERT_OK_AND_ASSIGN(ConsistencyReport report,
                          checker.Check(mediator->trace()));
  EXPECT_TRUE(report.consistent())
      << (report.violations.empty() ? "no details" : report.violations[0]);

  // Freshness (Theorem 7.2).
  FreshnessReport fresh = CheckFreshness(
      mediator->trace(), mediator->DelayProfiles(), mediator->Delays(),
      mediator->ContributorKinds(), {db1.get(), db2.get()});
  EXPECT_TRUE(fresh.all_within_bound);
}

std::vector<SimParam> MakeParams() {
  std::vector<SimParam> out;
  for (int ann = 0; ann < 3; ++ann) {
    for (int seed = 1; seed <= 6; ++seed) out.push_back({ann, seed});
  }
  return out;
}

std::string SimParamName(const ::testing::TestParamInfo<SimParam>& info) {
  static const char* kAnn[] = {"AllMat", "VirtualAux", "Hybrid"};
  return std::string(kAnn[info.param.ann_kind]) + "_seed" +
         std::to_string(info.param.seed);
}

INSTANTIATE_TEST_SUITE_P(Sweep, SimConsistencyProperty,
                         ::testing::ValuesIn(MakeParams()), SimParamName);

}  // namespace
}  // namespace squirrel
