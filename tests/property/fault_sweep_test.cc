// The tentpole acceptance sweep: >= 200 seeded fault schedules, each run to
// quiescence and checked against from-scratch recomputation plus the full
// consistency checker, and each replayed to a byte-identical trace.
//
// Seeds are processed in chunks so a failure pinpoints its chunk quickly;
// every assertion message names the failing seed — reproduce it with
//   RunFaultSim(<seed>)
// in a debugger or a one-off test (see DESIGN.md "Fault model & determinism").

#include <gtest/gtest.h>

#include "testing/sim_harness.h"

namespace squirrel {
namespace {

constexpr uint64_t kSeedsPerChunk = 25;
constexpr int kChunks = 8;  // 8 * 25 = 200 seeds

class FaultSweep : public ::testing::TestWithParam<int> {};

TEST_P(FaultSweep, SeededSchedulesConsistentAndReplayable) {
  const uint64_t base = 1 + static_cast<uint64_t>(GetParam()) * kSeedsPerChunk;
  for (uint64_t seed = base; seed < base + kSeedsPerChunk; ++seed) {
    auto run = testing::RunFaultSim(seed);
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    EXPECT_GT(run->exports_checked, 0u) << "[seed " << seed << "]";
    auto replay = testing::RunFaultSim(seed);
    ASSERT_TRUE(replay.ok()) << "replay diverged: "
                             << replay.status().ToString();
    ASSERT_EQ(run->trace_dump, replay->trace_dump)
        << "[seed " << seed << "] replay was not byte-identical";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FaultSweep, ::testing::Range(0, kChunks),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "chunk" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace squirrel
