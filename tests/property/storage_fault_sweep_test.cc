// Seeded storage-fault acceptance sweeps for the integrity layer.
//
// Each run gives the mediator a lying disk (FaultyLogDevice over the WAL)
// and forces at least one recovery that reads the damage back
// (final_crash_recover). The contract under every fault kind and scenario:
//
//   recovered byte-identical   — the run drains, exports match the
//                                from-scratch recomputation, the trace passes
//                                the consistency checker (all asserted inside
//                                RunFaultSim), and a replay of the same seed
//                                reproduces the trace dump byte for byte; or
//   explicit kCorrupted        — recovery refuses the log with the typed
//                                status and its LSN/slot diagnostics, and the
//                                refusal itself replays byte-identically.
//
// Silent divergence is never an outcome. ENOSPC is the honest failure mode —
// rejected appends leave no damage on disk, so those runs must NEVER end
// corrupted. 100 seeds (4 chunks of 25, so sanitizer CI can run one chunk)
// x 5 fault kinds, with the scenario — plain, +mediator crash windows,
// +source restarts (plus in-transit snapshot corruption) — rotating per
// (seed, kind) and covered exhaustively for one seed per chunk.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "testing/sim_harness.h"

namespace squirrel {
namespace {

using testing::FaultSimOptions;
using SF = FaultSimOptions::StorageFault;

constexpr SF kKinds[] = {SF::kTornAppend, SF::kBitFlip, SF::kFsyncDrop,
                         SF::kEnospc, SF::kCheckpointCorrupt};

FaultSimOptions StorageOpts(SF kind, int scenario) {
  FaultSimOptions opts;
  opts.durability = true;
  opts.storage_fault = kind;
  opts.storage_max_faults = 2;
  opts.final_crash_recover = true;
  if (scenario == 1) opts.mediator_crashes = 2;
  if (scenario == 2) {
    opts.source_restarts = 2;
    opts.snapshot_corrupt_prob = 0.2;
  }
  return opts;
}

struct SweepTally {
  uint64_t injected = 0;
  uint64_t corrupted_runs = 0;
  uint64_t tail_repairs = 0;
  uint64_t ckpt_fallbacks = 0;
  uint64_t payloads_corrupted = 0;
  uint64_t snapshot_checksum_failures = 0;
};

void RunOne(uint64_t seed, SF kind, int scenario, SweepTally* tally) {
  std::string tag = "[seed " + std::to_string(seed) + " kind " +
                    std::to_string(static_cast<int>(kind)) + " scenario " +
                    std::to_string(scenario) + "] ";
  FaultSimOptions opts = StorageOpts(kind, scenario);
  auto run = testing::RunFaultSim(seed, opts);
  ASSERT_TRUE(run.ok()) << tag << run.status().ToString();
  if (run->corrupted) {
    // A typed refusal is legal for kinds that can damage the log's interior
    // or its checkpoint generations — never for honest ENOSPC rejections.
    ASSERT_NE(kind, SF::kEnospc)
        << tag << "ENOSPC left damage on disk: " << run->corrupted_diag;
    EXPECT_FALSE(run->corrupted_diag.empty()) << tag;
  } else {
    EXPECT_GT(run->exports_checked, 0u) << tag;
  }
  tally->injected += run->storage_faults_injected;
  tally->corrupted_runs += run->corrupted ? 1 : 0;
  tally->tail_repairs += run->recovery_tail_repairs;
  tally->ckpt_fallbacks += run->recovery_checkpoint_fallbacks;
  tally->payloads_corrupted += run->payloads_corrupted;
  tally->snapshot_checksum_failures += run->snapshot_checksum_failures;
  // Replay identity: the whole run — including a corrupted refusal and the
  // storage counter line — is a function of the seed.
  auto replay = testing::RunFaultSim(seed, opts);
  ASSERT_TRUE(replay.ok()) << tag << replay.status().ToString();
  ASSERT_EQ(run->trace_dump, replay->trace_dump)
      << tag << "storage-fault replay was not byte-identical";
  ASSERT_EQ(run->stats_dump, replay->stats_dump)
      << tag << "stats drifted across replay — a counter is not "
      << "deterministic under storage faults";
  ASSERT_EQ(run->corrupted, replay->corrupted) << tag;
}

constexpr uint64_t kSeedsPerChunk = 25;
constexpr int kChunks = 4;  // 4 * 25 = 100 seeds

class StorageFaultSweep : public ::testing::TestWithParam<int> {};

TEST_P(StorageFaultSweep, RecoversByteIdenticalOrRefusesExplicitly) {
  const uint64_t base =
      70001 + static_cast<uint64_t>(GetParam()) * kSeedsPerChunk;
  SweepTally tally;
  for (uint64_t seed = base; seed < base + kSeedsPerChunk; ++seed) {
    for (size_t k = 0; k < std::size(kKinds); ++k) {
      int scenario = static_cast<int>((seed + k) % 3);
      RunOne(seed, kKinds[k], scenario, &tally);
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
  // One seed per chunk exercises the FULL kind x scenario cross product.
  for (SF kind : kKinds) {
    for (int scenario = 0; scenario < 3; ++scenario) {
      RunOne(base, kind, scenario, &tally);
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
  // The sweep must actually be exercising the machinery it claims to: faults
  // injected, tail repairs and generation fallbacks observed, in-transit
  // snapshot corruption caught by checksum. All deterministic per chunk.
  EXPECT_GT(tally.injected, 0u) << "chunk at seed " << base;
  EXPECT_GT(tally.tail_repairs + tally.ckpt_fallbacks + tally.corrupted_runs,
            0u)
      << "chunk at seed " << base << " never hit the recovery triage";
  EXPECT_GT(tally.payloads_corrupted, 0u) << "chunk at seed " << base;
  EXPECT_GT(tally.snapshot_checksum_failures, 0u)
      << "chunk at seed " << base
      << " corrupted snapshots were never detected";
}

INSTANTIATE_TEST_SUITE_P(Seeds, StorageFaultSweep,
                         ::testing::Range(0, kChunks),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "chunk" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace squirrel
