// Seeded crash–restart acceptance sweeps for the durability subsystem.
//
// CrashRestartSweep: >= 100 seeded fault schedules, each with mediator
// crash/recover windows injected on top of the usual network faults. Every
// run must drain to quiescence, match the from-scratch recomputation of all
// exports, pass the consistency checker, and replay byte-identically —
// RunFaultSim asserts the first three internally and returns the dumps for
// the fourth.
//
// CrashPointSweep: for a handful of seeds, first run crash-free to record
// the WAL record count and the final export rendering, then re-run once per
// WAL record position with an atomic crash+recover injected right after that
// record becomes durable. Recovery from EVERY prefix of the log must reach
// the same final exports as the crash-free baseline. Assertion messages name
// the seed and the crashing LSN so a failure reproduces with
//   RunFaultSim(seed, {.durability = true, .crash_at_wal_record = lsn}).

#include <gtest/gtest.h>

#include <string>

#include "testing/sim_harness.h"

namespace squirrel {
namespace {

testing::FaultSimOptions CrashOpts() {
  testing::FaultSimOptions opts;
  opts.durability = true;
  opts.mediator_crashes = 2;
  return opts;
}

constexpr uint64_t kSeedsPerChunk = 25;
constexpr int kChunks = 4;  // 4 * 25 = 100 seeds

class CrashRestartSweep : public ::testing::TestWithParam<int> {};

TEST_P(CrashRestartSweep, RecoversToConsistentReplayableState) {
  const uint64_t base =
      501 + static_cast<uint64_t>(GetParam()) * kSeedsPerChunk;
  uint64_t crashes_seen = 0;
  for (uint64_t seed = base; seed < base + kSeedsPerChunk; ++seed) {
    auto run = testing::RunFaultSim(seed, CrashOpts());
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    EXPECT_GT(run->exports_checked, 0u) << "[seed " << seed << "]";
    EXPECT_EQ(run->mediator_crashes, run->recoveries)
        << "[seed " << seed << "] a crash window did not recover";
    crashes_seen += run->mediator_crashes;
    auto replay = testing::RunFaultSim(seed, CrashOpts());
    ASSERT_TRUE(replay.ok()) << "replay diverged: "
                             << replay.status().ToString();
    ASSERT_EQ(run->trace_dump, replay->trace_dump)
        << "[seed " << seed << "] crash-recovery replay was not "
        << "byte-identical";
    ASSERT_EQ(run->stats_dump, replay->stats_dump)
        << "[seed " << seed << "] stats drifted across replay — a counter "
        << "is not preserved deterministically through Crash()/Recover()";
  }
  // The window generator keeps only windows that fit the horizon, so not
  // every seed crashes — but a whole chunk without any crash would mean the
  // sweep stopped exercising recovery.
  EXPECT_GT(crashes_seen, 0u) << "chunk starting at seed " << base;
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrashRestartSweep,
                         ::testing::Range(0, kChunks),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "chunk" + std::to_string(info.param);
                         });

class CrashPointSweep : public ::testing::TestWithParam<int> {};

TEST_P(CrashPointSweep, EveryLogPrefixRecoversToBaselineExports) {
  const uint64_t seed = 9001 + static_cast<uint64_t>(GetParam());
  testing::FaultSimOptions base_opts;
  base_opts.durability = true;
  base_opts.steps = 12;  // short workload: the sweep reruns it per record
  auto baseline = testing::RunFaultSim(seed, base_opts);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  ASSERT_GT(baseline->wal_records, 0u) << "[seed " << seed << "]";
  ASSERT_FALSE(baseline->final_exports.empty()) << "[seed " << seed << "]";

  for (uint64_t lsn = 0; lsn < baseline->wal_records; ++lsn) {
    testing::FaultSimOptions opts = base_opts;
    opts.crash_at_wal_record = static_cast<int64_t>(lsn);
    auto run = testing::RunFaultSim(seed, opts);
    ASSERT_TRUE(run.ok()) << "[seed " << seed << " crash after lsn " << lsn
                          << "] " << run.status().ToString();
    EXPECT_GE(run->recoveries, 1u)
        << "[seed " << seed << " crash after lsn " << lsn << "]";
    ASSERT_EQ(run->final_exports, baseline->final_exports)
        << "[seed " << seed << " crash after lsn " << lsn
        << "] recovery reached different final exports";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrashPointSweep, ::testing::Range(0, 3),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "seed" + std::to_string(9001 + info.param);
                         });

}  // namespace
}  // namespace squirrel
