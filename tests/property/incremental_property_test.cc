// The central correctness property: for every annotation and any random
// update stream, incremental maintenance through the IUP leaves every
// materialized repository identical to a from-scratch recomputation of the
// view at the sources' current state.

#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "testing/harness.h"
#include "testing/util.h"
#include "vdp/paper_examples.h"

namespace squirrel {
namespace {

using testing::DirectHarness;
using testing::MakeSchema;

enum class Fig1Ann { kAllMaterialized, kVirtualAux, kHybrid };

struct Fig1Param {
  Fig1Ann ann;
  int seed;
};

class Figure1Property : public ::testing::TestWithParam<Fig1Param> {};

TEST_P(Figure1Property, IncrementalEqualsRecompute) {
  Rng rng(GetParam().seed * 2654435761u + 17);
  auto db1 = std::make_unique<SourceDb>("DB1");
  auto db2 = std::make_unique<SourceDb>("DB2");
  SQ_ASSERT_OK(db1->AddRelation("R", MakeSchema("R(r1, r2, r3, r4) key(r1)")));
  SQ_ASSERT_OK(db2->AddRelation("S", MakeSchema("S(s1, s2, s3) key(s1)")));

  // Seeded initial state: keyed rows.
  std::map<int64_t, Tuple> r_rows, s_rows;
  Time now = 0;
  auto insert_r = [&](MultiDelta* md) {
    int64_t key = rng.UniformInt(0, 30);
    if (r_rows.count(key)) return;
    Tuple t({key, rng.UniformInt(0, 5) * 100, rng.UniformInt(0, 200),
             rng.Bernoulli(0.6) ? int64_t{100} : rng.UniformInt(0, 999)});
    r_rows[key] = t;
    EXPECT_TRUE(
        md->Mutable("R", MakeSchema("R(r1, r2, r3, r4)"))->AddInsert(t).ok());
  };
  auto delete_r = [&](MultiDelta* md) {
    if (r_rows.empty()) return;
    auto it = r_rows.begin();
    std::advance(it, rng.Uniform(r_rows.size()));
    EXPECT_TRUE(md->Mutable("R", MakeSchema("R(r1, r2, r3, r4)"))
                    ->AddDelete(it->second)
                    .ok());
    r_rows.erase(it);
  };
  auto insert_s = [&](MultiDelta* md) {
    int64_t key = rng.UniformInt(0, 5) * 100;
    if (s_rows.count(key)) return;
    Tuple t({key, rng.UniformInt(0, 9), rng.UniformInt(0, 99)});
    s_rows[key] = t;
    EXPECT_TRUE(
        md->Mutable("S", MakeSchema("S(s1, s2, s3)"))->AddInsert(t).ok());
  };
  auto delete_s = [&](MultiDelta* md) {
    if (s_rows.empty()) return;
    auto it = s_rows.begin();
    std::advance(it, rng.Uniform(s_rows.size()));
    EXPECT_TRUE(md->Mutable("S", MakeSchema("S(s1, s2, s3)"))
                    ->AddDelete(it->second)
                    .ok());
    s_rows.erase(it);
  };

  // Initial load.
  {
    MultiDelta md;
    for (int i = 0; i < 8; ++i) insert_r(&md);
    if (!md.Empty()) SQ_ASSERT_OK(db1->Commit(now, md));
    MultiDelta ms;
    for (int i = 0; i < 4; ++i) insert_s(&ms);
    if (!ms.Empty()) SQ_ASSERT_OK(db2->Commit(now, ms));
  }

  auto vdp = BuildFigure1Vdp();
  ASSERT_TRUE(vdp.ok());
  Annotation ann;
  switch (GetParam().ann) {
    case Fig1Ann::kAllMaterialized:
      ann = AnnotationExample21();
      break;
    case Fig1Ann::kVirtualAux:
      ann = AnnotationExample22(*vdp);
      break;
    case Fig1Ann::kHybrid:
      ann = AnnotationExample23(*vdp);
      break;
  }
  DirectHarness h(std::move(vdp).value(), ann,
                  {{"DB1", db1.get()}, {"DB2", db2.get()}});
  SQ_ASSERT_OK(h.Load());

  // Random update stream: batches mixing inserts/deletes on both sources.
  for (int step = 0; step < 30; ++step) {
    now += 1.0;
    const std::string source = rng.Bernoulli(0.6) ? "DB1" : "DB2";
    MultiDelta md;
    int ops = 1 + static_cast<int>(rng.Uniform(3));
    for (int i = 0; i < ops; ++i) {
      if (source == "DB1") {
        if (rng.Bernoulli(0.6)) {
          insert_r(&md);
        } else {
          delete_r(&md);
        }
      } else {
        if (rng.Bernoulli(0.6)) {
          insert_s(&md);
        } else {
          delete_s(&md);
        }
      }
    }
    if (md.Empty()) continue;
    SQ_ASSERT_OK(h.CommitAndPropagate(source, now, md).status());
    SQ_ASSERT_OK(h.VerifyRepos());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Figure1Property,
    ::testing::Values(
        Fig1Param{Fig1Ann::kAllMaterialized, 1},
        Fig1Param{Fig1Ann::kAllMaterialized, 2},
        Fig1Param{Fig1Ann::kAllMaterialized, 3},
        Fig1Param{Fig1Ann::kVirtualAux, 1}, Fig1Param{Fig1Ann::kVirtualAux, 2},
        Fig1Param{Fig1Ann::kVirtualAux, 3}, Fig1Param{Fig1Ann::kHybrid, 1},
        Fig1Param{Fig1Ann::kHybrid, 2}, Fig1Param{Fig1Ann::kHybrid, 3}),
    [](const ::testing::TestParamInfo<Fig1Param>& info) {
      std::string name;
      switch (info.param.ann) {
        case Fig1Ann::kAllMaterialized:
          name = "AllMat";
          break;
        case Fig1Ann::kVirtualAux:
          name = "VirtualAux";
          break;
        case Fig1Ann::kHybrid:
          name = "Hybrid";
          break;
      }
      return name + "_seed" + std::to_string(info.param.seed);
    });

enum class Fig4Ann { kAllMaterialized, kExample51, kWarehouseish };

struct Fig4Param {
  Fig4Ann ann;
  int seed;
};

class Figure4Property : public ::testing::TestWithParam<Fig4Param> {};

TEST_P(Figure4Property, IncrementalEqualsRecompute) {
  Rng rng(GetParam().seed * 40503u + 3);
  std::vector<std::unique_ptr<SourceDb>> dbs;
  for (const char* name : {"DBA", "DBB", "DBC", "DBD"}) {
    dbs.push_back(std::make_unique<SourceDb>(name));
  }
  SQ_ASSERT_OK(dbs[0]->AddRelation("A", MakeSchema("A(a1, a2) key(a1)")));
  SQ_ASSERT_OK(dbs[1]->AddRelation("B", MakeSchema("B(b1, b2) key(b1)")));
  SQ_ASSERT_OK(dbs[2]->AddRelation("C", MakeSchema("C(c1, a1) key(c1)")));
  SQ_ASSERT_OK(dbs[3]->AddRelation("D", MakeSchema("D(d1, b1) key(d1)")));

  struct RelState {
    std::string rel;
    size_t db;
    std::map<int64_t, Tuple> rows;
  };
  std::vector<RelState> rels = {
      {"A", 0, {}}, {"B", 1, {}}, {"C", 2, {}}, {"D", 3, {}}};
  Time now = 0;

  auto random_tuple = [&](const std::string& rel, int64_t key) {
    if (rel == "A") return Tuple({key, rng.UniformInt(-3, 10)});
    if (rel == "B") return Tuple({key, rng.UniformInt(0, 6)});
    if (rel == "C") return Tuple({key, rng.UniformInt(0, 8)});
    return Tuple({key, rng.UniformInt(5, 15)});
  };
  // At most one operation per key within a batch, so atoms never cancel
  // into a state that disagrees with the tracked rows.
  auto mutate = [&](RelState* rs, MultiDelta* md,
                    std::set<int64_t>* used) {
    auto schema = dbs[rs->db]->RelationSchema(rs->rel);
    ASSERT_TRUE(schema.ok());
    if (!rs->rows.empty() && rng.Bernoulli(0.35)) {
      auto it = rs->rows.begin();
      std::advance(it, rng.Uniform(rs->rows.size()));
      if (!used->insert(it->first).second) return;
      SQ_EXPECT_OK(md->Mutable(rs->rel, *schema)->AddDelete(it->second));
      rs->rows.erase(it);
    } else {
      int64_t key = rng.UniformInt(0, 12);
      if (rs->rows.count(key) || !used->insert(key).second) return;
      Tuple t = random_tuple(rs->rel, key);
      rs->rows[key] = t;
      SQ_EXPECT_OK(md->Mutable(rs->rel, *schema)->AddInsert(t));
    }
  };

  // Initial data.
  for (auto& rs : rels) {
    MultiDelta md;
    std::set<int64_t> used;
    for (int i = 0; i < 5; ++i) mutate(&rs, &md, &used);
    if (!md.Empty()) SQ_ASSERT_OK(dbs[rs.db]->Commit(now, md));
  }

  auto vdp = BuildFigure4Vdp();
  ASSERT_TRUE(vdp.ok());
  Annotation ann;
  switch (GetParam().ann) {
    case Fig4Ann::kAllMaterialized:
      ann = Annotation::AllMaterialized();
      break;
    case Fig4Ann::kExample51:
      ann = AnnotationExample51(*vdp);
      break;
    case Fig4Ann::kWarehouseish: {
      // Exports materialized, everything else virtual.
      for (const auto& name : vdp->DerivedNames()) {
        if (!vdp->Find(name)->exported) {
          SQ_ASSERT_OK(ann.SetAll(*vdp, name, AttrMode::kVirtual));
        }
      }
      break;
    }
  }
  std::map<std::string, SourceDb*> source_map;
  for (auto& db : dbs) source_map[db->name()] = db.get();
  DirectHarness h(std::move(vdp).value(), ann, source_map);
  SQ_ASSERT_OK(h.Load());

  for (int step = 0; step < 25; ++step) {
    now += 1.0;
    RelState& rs = rels[rng.Uniform(rels.size())];
    MultiDelta md;
    std::set<int64_t> used;
    int ops = 1 + static_cast<int>(rng.Uniform(2));
    for (int i = 0; i < ops; ++i) mutate(&rs, &md, &used);
    if (md.Empty()) continue;
    SQ_ASSERT_OK(
        h.CommitAndPropagate(dbs[rs.db]->name(), now, md).status());
    SQ_ASSERT_OK(h.VerifyRepos());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Figure4Property,
    ::testing::Values(Fig4Param{Fig4Ann::kAllMaterialized, 1},
                      Fig4Param{Fig4Ann::kAllMaterialized, 2},
                      Fig4Param{Fig4Ann::kAllMaterialized, 3},
                      Fig4Param{Fig4Ann::kExample51, 1},
                      Fig4Param{Fig4Ann::kExample51, 2},
                      Fig4Param{Fig4Ann::kExample51, 3},
                      Fig4Param{Fig4Ann::kWarehouseish, 1},
                      Fig4Param{Fig4Ann::kWarehouseish, 2}),
    [](const ::testing::TestParamInfo<Fig4Param>& info) {
      std::string name;
      switch (info.param.ann) {
        case Fig4Ann::kAllMaterialized:
          name = "AllMat";
          break;
        case Fig4Ann::kExample51:
          name = "Example51";
          break;
        case Fig4Ann::kWarehouseish:
          name = "Warehouse";
          break;
      }
      return name + "_seed" + std::to_string(info.param.seed);
    });

}  // namespace
}  // namespace squirrel
