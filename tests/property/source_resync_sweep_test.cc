// Seeded acceptance sweeps for source crash/restart resync.
//
// SourceResyncSweep: >= 100 seeded fault schedules with source
// crash/RESTART windows layered on top of the usual channel faults (and,
// in some chunks, mediator crash/recovery and queue backpressure). Every
// run must:
//   - drain to quiescence with every source healthy and un-quarantined
//     (require_all_healthy),
//   - end with final exports BYTE-IDENTICAL to the same seed run without
//     restart windows (the anti-entropy resync healed every lost batch;
//     meaningful because restart windows draw from a dedicated rng stream,
//     so the two runs share workload and channel-fault schedules —
//     asserted via fault_plan_dump),
//   - replay byte-identically (same seed, same options => same trace dump).
// Degraded-read mode is on throughout: queries over a resyncing source may
// legally return annotated stale answers, counted separately from ok/failed.

#include <gtest/gtest.h>

#include <string>

#include "testing/sim_harness.h"

namespace squirrel {
namespace {

constexpr uint64_t kSeedsPerChunk = 25;
constexpr int kChunks = 5;  // 5 * 25 = 125 seeds

testing::FaultSimOptions ChunkOpts(int chunk) {
  testing::FaultSimOptions opts;
  opts.source_restarts = 2;
  opts.degraded_reads = true;
  opts.require_all_healthy = true;
  if (chunk >= 2) {
    // Resync WAL records must survive mediator crash/recovery too.
    opts.durability = true;
  }
  if (chunk == 3) {
    opts.mediator_crashes = 1;
  }
  if (chunk == 4) {
    // Backpressure: shed (losslessly merge) queued updates during resync.
    opts.max_queue_depth = 4;
  }
  return opts;
}

class SourceResyncSweep : public ::testing::TestWithParam<int> {};

TEST_P(SourceResyncSweep, ResyncConvergesToRestartFreeBaseline) {
  const int chunk = GetParam();
  const uint64_t base = 7001 + static_cast<uint64_t>(chunk) * kSeedsPerChunk;
  const testing::FaultSimOptions opts = ChunkOpts(chunk);
  testing::FaultSimOptions baseline_opts = opts;
  baseline_opts.source_restarts = 0;
  baseline_opts.require_all_healthy = false;
  uint64_t restarts_seen = 0;
  uint64_t resyncs_seen = 0;
  for (uint64_t seed = base; seed < base + kSeedsPerChunk; ++seed) {
    auto run = testing::RunFaultSim(seed, opts);
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    EXPECT_GT(run->exports_checked, 0u) << "[seed " << seed << "]";
    EXPECT_GE(run->resyncs_started, run->resyncs_completed)
        << "[seed " << seed << "]";

    auto baseline = testing::RunFaultSim(seed, baseline_opts);
    ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
    // Dedicated-rng pin: the non-restart schedule is untouched, so the
    // baseline really is "the same run minus restarts".
    ASSERT_EQ(run->fault_plan_dump, baseline->fault_plan_dump)
        << "[seed " << seed << "] restart draws perturbed the fault plan";
    ASSERT_EQ(run->final_exports, baseline->final_exports)
        << "[seed " << seed << "] post-resync exports diverged from the "
        << "restart-free baseline";

    auto replay = testing::RunFaultSim(seed, opts);
    ASSERT_TRUE(replay.ok()) << replay.status().ToString();
    ASSERT_EQ(run->trace_dump, replay->trace_dump)
        << "[seed " << seed << "] restart run was not replay-identical";

    restarts_seen += run->source_restarts;
    resyncs_seen += run->resyncs_completed;
  }
  // Not every seed draws restart windows, but a whole chunk without any
  // would mean the sweep stopped exercising the resync path.
  EXPECT_GT(restarts_seen, 0u) << "chunk starting at seed " << base;
  EXPECT_GT(resyncs_seen, 0u) << "chunk starting at seed " << base;
}

INSTANTIATE_TEST_SUITE_P(Seeds, SourceResyncSweep,
                         ::testing::Range(0, kChunks),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "chunk" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace squirrel
