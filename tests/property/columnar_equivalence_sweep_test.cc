// The columnar-engine acceptance sweep: >= 100 seeded schedules proving the
// columnar batch kernels indistinguishable from the row-at-a-time oracle
// across the whole fault matrix.
//
// Every chunk runs each seed twice — columnar off (the row oracle) and
// columnar on with the harness's zero size threshold, so even the small sim
// relations take the vectorized paths — and demands BYTE-IDENTICAL final
// exports. Chunks whose scheduling is itself deterministic vs the oracle
// (everything except MVCC reads, which legitimately reschedule queries)
// also demand byte-identical trace dumps. Every assertion names the seed;
// reproduce one with RunFaultSim(<seed>, <the chunk's options>)
// (see DESIGN.md §12 "Columnar execution").

#include <gtest/gtest.h>

#include <string>

#include "testing/sim_harness.h"

namespace squirrel {
namespace {

using testing::FaultSimOptions;
using testing::RunFaultSim;

constexpr uint64_t kSeedsPerChunk = 25;
constexpr int kChunks = 5;  // 5 * 25 = 125 seeds

// Per-chunk fault-model layers the columnar/row comparison rides on.
struct Scenario {
  bool durability = false;
  bool wal = false;
  int mediator_crashes = 0;
  int source_restarts = 0;
  bool mvcc = false;
  int iup_threads = 0;
  bool use_indexes = false;
};

Scenario ChunkScenario(int chunk) {
  switch (chunk) {
    case 0:  // plain fault sim (message loss/dup/reorder baked in)
      return {};
    case 1:  // WAL durability + mediator crash/recovery mid-run
      return {.durability = true, .wal = true, .mediator_crashes = 2};
    case 2:  // source restarts + anti-entropy resync
      return {.durability = true, .source_restarts = 2};
    case 3:  // MVCC snapshot reads (exports-only comparison)
      return {.mvcc = true};
    default:  // threaded IUP kernel + index hints
      return {.iup_threads = 2, .use_indexes = true};
  }
}

FaultSimOptions ChunkOptions(const Scenario& s, bool columnar) {
  FaultSimOptions opts;
  opts.durability = s.durability;
  opts.wal = s.wal;
  opts.mediator_crashes = s.mediator_crashes;
  opts.source_restarts = s.source_restarts;
  opts.mvcc_reads = s.mvcc;
  opts.iup_threads = s.iup_threads;
  opts.use_indexes = s.use_indexes;
  opts.columnar = columnar;
  return opts;
}

class ColumnarEquivalenceSweep : public ::testing::TestWithParam<int> {};

TEST_P(ColumnarEquivalenceSweep, ColumnarRunsMatchRowOracle) {
  const int chunk = GetParam();
  const Scenario scenario = ChunkScenario(chunk);
  const uint64_t base = 1 + static_cast<uint64_t>(chunk % 2) * kSeedsPerChunk;
  for (uint64_t seed = base; seed < base + kSeedsPerChunk; ++seed) {
    auto oracle = RunFaultSim(seed, ChunkOptions(scenario, false));
    ASSERT_TRUE(oracle.ok())
        << "[seed " << seed << "] row oracle: " << oracle.status().ToString();
    auto run = RunFaultSim(seed, ChunkOptions(scenario, true));
    ASSERT_TRUE(run.ok())
        << "[seed " << seed << "] columnar: " << run.status().ToString();
    EXPECT_GT(run->exports_checked, 0u) << "[seed " << seed << "]";

    // The engine swap must be invisible in every exported view state.
    ASSERT_EQ(run->final_exports, oracle->final_exports)
        << "[seed " << seed << "] chunk " << chunk
        << ": columnar final exports diverged from the row oracle";
    // And in the full trace wherever scheduling is comparable (MVCC reads
    // reorder queries by design, so only exports are comparable there).
    if (!scenario.mvcc) {
      ASSERT_EQ(run->trace_dump, oracle->trace_dump)
          << "[seed " << seed << "] chunk " << chunk
          << ": columnar trace diverged from the row oracle";
    }

    // The columnar run itself must be deterministic under replay.
    auto replay = RunFaultSim(seed, ChunkOptions(scenario, true));
    ASSERT_TRUE(replay.ok())
        << "[seed " << seed << "] replay: " << replay.status().ToString();
    ASSERT_EQ(run->trace_dump, replay->trace_dump)
        << "[seed " << seed << "] chunk " << chunk
        << ": columnar replay was not byte-identical";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ColumnarEquivalenceSweep,
                         ::testing::Range(0, kChunks),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "chunk" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace squirrel
