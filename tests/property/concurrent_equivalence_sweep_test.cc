// The concurrent-mediator acceptance sweep: >= 100 seeded schedules proving
// the threaded IUP kernel equivalent to the serial oracle, and MVCC snapshot
// reads equivalent to serialized queries, under the full fault model.
//
// Threaded-IUP chunks demand BYTE-IDENTICAL trace dumps and final exports
// against the iup_threads = 0 run of the same seed — worker scheduling (and
// the seeded perturbation) must be invisible. MVCC chunks cannot compare
// traces (snapshot reads legitimately reschedule queries), so they demand
// replay identity plus final exports byte-identical to the serialized
// baseline. Every assertion names the seed; reproduce one with
//   RunFaultSim(<seed>, <the chunk's options>)
// (see DESIGN.md §11 "Concurrency model").

#include <gtest/gtest.h>

#include <string>

#include "testing/sim_harness.h"

namespace squirrel {
namespace {

using testing::FaultSimOptions;
using testing::RunFaultSim;

constexpr uint64_t kSeedsPerChunk = 25;
constexpr int kChunks = 6;  // 6 * 25 = 150 seeds

// Per-chunk scenario: which concurrency axis is on and which fault-model
// layers ride along. Chunks reuse seed ranges on purpose — the same seed is
// exercised threaded, threaded-under-faults, and with MVCC reads.
struct Scenario {
  bool mvcc = false;       ///< MVCC chunk (else threaded-IUP chunk)
  int threads = 0;         ///< pool workers for the concurrent run
  uint64_t perturb = 0;    ///< worker-scheduling perturbation seed
  bool durability = false;
  int mediator_crashes = 0;
  int source_restarts = 0;
};

Scenario ChunkScenario(int chunk) {
  switch (chunk) {
    case 0:  // plain threaded kernel, 2 workers
      return {.threads = 2, .perturb = 0x5eed};
    case 1:  // wider pool, different perturbation
      return {.threads = 4, .perturb = 0xfeedbeef};
    case 2:  // threaded under mediator crash/recovery
      return {.threads = 2, .perturb = 1, .durability = true,
              .mediator_crashes = 2};
    case 3:  // threaded under source restarts + anti-entropy resync
      return {.threads = 4, .perturb = 7, .durability = true,
              .source_restarts = 2};
    case 4:  // MVCC snapshot reads, fault-free-ish baseline faults
      return {.mvcc = true};
    default:  // MVCC + crashes (snapshot chain across recovery)
      return {.mvcc = true, .durability = true, .mediator_crashes = 2};
  }
}

FaultSimOptions BaselineOptions(const Scenario& s) {
  FaultSimOptions opts;
  opts.durability = s.durability;
  opts.mediator_crashes = s.mediator_crashes;
  opts.source_restarts = s.source_restarts;
  return opts;
}

FaultSimOptions ConcurrentOptions(const Scenario& s) {
  FaultSimOptions opts = BaselineOptions(s);
  if (s.mvcc) {
    opts.mvcc_reads = true;
  } else {
    opts.iup_threads = s.threads;
    opts.iup_perturb_seed = s.perturb;
  }
  return opts;
}

class ConcurrentEquivalenceSweep : public ::testing::TestWithParam<int> {};

TEST_P(ConcurrentEquivalenceSweep, ConcurrentRunsMatchSerialOracle) {
  const int chunk = GetParam();
  const Scenario scenario = ChunkScenario(chunk);
  const uint64_t base = 1 + static_cast<uint64_t>(chunk % 2) * kSeedsPerChunk;
  for (uint64_t seed = base; seed < base + kSeedsPerChunk; ++seed) {
    auto oracle = RunFaultSim(seed, BaselineOptions(scenario));
    ASSERT_TRUE(oracle.ok())
        << "[seed " << seed << "] oracle: " << oracle.status().ToString();
    auto run = RunFaultSim(seed, ConcurrentOptions(scenario));
    ASSERT_TRUE(run.ok())
        << "[seed " << seed << "] concurrent: " << run.status().ToString();
    EXPECT_GT(run->exports_checked, 0u) << "[seed " << seed << "]";

    // Update outcomes must be indistinguishable from the serial oracle.
    ASSERT_EQ(run->final_exports, oracle->final_exports)
        << "[seed " << seed << "] chunk " << chunk
        << ": final exports diverged from the serial oracle";
    if (!scenario.mvcc) {
      // Worker scheduling must be invisible: the whole trace — every
      // reflect vector, txn boundary, and counter — byte for byte.
      ASSERT_EQ(run->trace_dump, oracle->trace_dump)
          << "[seed " << seed << "] chunk " << chunk
          << ": threaded trace diverged from the serial oracle";
    }

    // And the concurrent run itself must be deterministic under replay.
    auto replay = RunFaultSim(seed, ConcurrentOptions(scenario));
    ASSERT_TRUE(replay.ok())
        << "[seed " << seed << "] replay: " << replay.status().ToString();
    ASSERT_EQ(run->trace_dump, replay->trace_dump)
        << "[seed " << seed << "] chunk " << chunk
        << ": replay was not byte-identical";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConcurrentEquivalenceSweep,
                         ::testing::Range(0, kChunks),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "chunk" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace squirrel
