// Property tests for the Heraclitus delta algebra: randomized deltas and
// relations must satisfy the defining laws of §6.2.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "delta/delta_algebra.h"
#include "relational/operators.h"
#include "testing/util.h"

namespace squirrel {
namespace {

using testing::MakeSchema;
using testing::Pred;

Relation RandomRelation(Rng* rng, int max_rows, int64_t domain) {
  Relation r(MakeSchema("R(a, b)"), Semantics::kBag);
  int rows = static_cast<int>(rng->Uniform(max_rows + 1));
  for (int i = 0; i < rows; ++i) {
    Tuple t({rng->UniformInt(0, domain), rng->UniformInt(0, domain)});
    EXPECT_TRUE(r.Insert(t, rng->UniformInt(1, 3)).ok());
  }
  return r;
}

/// A delta that is applicable to \p base (never drives counts negative).
Delta RandomApplicableDelta(Rng* rng, const Relation& base, int max_atoms,
                            int64_t domain) {
  Delta d(base.schema());
  int atoms = static_cast<int>(rng->Uniform(max_atoms + 1));
  // Deletions of existing rows.
  auto rows = base.SortedRows();
  for (int i = 0; i < atoms && !rows.empty(); ++i) {
    if (!rng->Bernoulli(0.4)) continue;
    const auto& [t, count] = rows[rng->Uniform(rows.size())];
    int64_t already = -d.CountOf(t);
    if (already < count) {
      EXPECT_TRUE(d.AddDelete(t, 1).ok());
    }
  }
  // Insertions anywhere.
  for (int i = 0; i < atoms; ++i) {
    Tuple t({rng->UniformInt(0, domain), rng->UniformInt(0, domain)});
    if (d.CountOf(t) < 0) continue;  // keep single-signed per tuple
    EXPECT_TRUE(d.AddInsert(t, rng->UniformInt(1, 2)).ok());
  }
  return d;
}

class DeltaLawsTest : public ::testing::TestWithParam<int> {};

TEST_P(DeltaLawsTest, SmashLaw) {
  Rng rng(GetParam());
  Relation db = RandomRelation(&rng, 12, 6);
  Delta d1 = RandomApplicableDelta(&rng, db, 8, 6);
  Relation mid = db;
  SQ_ASSERT_OK(ApplyDelta(&mid, d1));
  Delta d2 = RandomApplicableDelta(&rng, mid, 8, 6);

  Relation seq = mid;
  SQ_ASSERT_OK(ApplyDelta(&seq, d2));
  SQ_ASSERT_OK_AND_ASSIGN(Delta smashed, Delta::Smash(d1, d2));
  Relation direct = db;
  SQ_ASSERT_OK(ApplyDelta(&direct, smashed));
  EXPECT_TRUE(seq.EqualContents(direct));
}

TEST_P(DeltaLawsTest, InverseLaw) {
  Rng rng(GetParam() * 7919 + 13);
  Relation db = RandomRelation(&rng, 12, 6);
  Delta d = RandomApplicableDelta(&rng, db, 8, 6);
  Relation r = db;
  SQ_ASSERT_OK(ApplyDelta(&r, d));
  SQ_ASSERT_OK(ApplyDelta(&r, d.Inverse()));
  EXPECT_TRUE(r.EqualContents(db));
}

TEST_P(DeltaLawsTest, FilterCommutesWithApply) {
  Rng rng(GetParam() * 104729 + 5);
  Relation db = RandomRelation(&rng, 12, 6);
  Delta d = RandomApplicableDelta(&rng, db, 8, 6);
  Expr::Ptr conds[] = {Pred("a < 3"), Pred("a = b"), Pred("a + b > 5"),
                       Expr::True()};
  const Expr::Ptr& f = conds[rng.Uniform(4)];
  std::vector<std::string> attrs =
      rng.Bernoulli(0.5) ? std::vector<std::string>{"a"}
                         : std::vector<std::string>{"b", "a"};

  Relation applied = db;
  SQ_ASSERT_OK(ApplyDelta(&applied, d));
  SQ_ASSERT_OK_AND_ASSIGN(Relation lhs_sel, OpSelect(applied, f));
  SQ_ASSERT_OK_AND_ASSIGN(Relation lhs, OpProject(lhs_sel, attrs));

  SQ_ASSERT_OK_AND_ASSIGN(Relation rhs_sel, OpSelect(db, f));
  SQ_ASSERT_OK_AND_ASSIGN(Relation rhs, OpProject(rhs_sel, attrs));
  SQ_ASSERT_OK_AND_ASSIGN(Delta fd, FilterDeltaToLeafParent(d, f, attrs));
  SQ_ASSERT_OK(ApplyDelta(&rhs, fd));
  EXPECT_TRUE(lhs.EqualContents(rhs));
}

TEST_P(DeltaLawsTest, DeltaJoinMatchesRecompute) {
  Rng rng(GetParam() * 31 + 777);
  Relation r = RandomRelation(&rng, 10, 5);
  Relation s(MakeSchema("S(c, d)"), Semantics::kBag);
  int rows = static_cast<int>(rng.Uniform(10));
  for (int i = 0; i < rows; ++i) {
    SQ_ASSERT_OK(s.Insert(Tuple({rng.UniformInt(0, 5), rng.UniformInt(0, 5)}),
                          rng.UniformInt(1, 2)));
  }
  Delta d = RandomApplicableDelta(&rng, r, 6, 5);
  Expr::Ptr cond = rng.Bernoulli(0.5) ? Pred("b = c") : Pred("a < d");

  SQ_ASSERT_OK_AND_ASSIGN(Relation t_old, OpJoin(r, s, cond));
  SQ_ASSERT_OK_AND_ASSIGN(Delta dt, DeltaJoinRelation(d, s, cond));
  // dt's schema order is (delta ++ relation) = (a,b,c,d), same as the join.
  Relation t_inc = t_old;
  SQ_ASSERT_OK(ApplyDelta(&t_inc, dt));

  Relation r_new = r;
  SQ_ASSERT_OK(ApplyDelta(&r_new, d));
  SQ_ASSERT_OK_AND_ASSIGN(Relation t_new, OpJoin(r_new, s, cond));
  EXPECT_TRUE(t_inc.EqualContents(t_new));
}

TEST_P(DeltaLawsTest, PresenceDeltaMatchesSetTransition) {
  Rng rng(GetParam() * 631 + 99);
  Relation base = RandomRelation(&rng, 10, 4);
  Delta d = RandomApplicableDelta(&rng, base, 8, 4);
  Relation after = base;
  SQ_ASSERT_OK(ApplyDelta(&after, d));
  SQ_ASSERT_OK_AND_ASSIGN(Delta pres, PresenceDelta(after, d));
  Relation set_before = base.ToSet();
  SQ_ASSERT_OK(ApplyDelta(&set_before, pres));
  EXPECT_TRUE(set_before.EqualContents(after.ToSet()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeltaLawsTest, ::testing::Range(0, 25));

}  // namespace
}  // namespace squirrel
