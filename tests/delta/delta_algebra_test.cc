#include "delta/delta_algebra.h"

#include <gtest/gtest.h>

#include "relational/operators.h"
#include "testing/util.h"

namespace squirrel {
namespace {

using testing::MakeRelation;
using testing::MakeSchema;
using testing::Pred;

Delta MakeDelta(const std::string& schema,
                const std::vector<std::pair<Tuple, int64_t>>& atoms) {
  Delta d(testing::MakeSchema(schema));
  for (const auto& [t, c] : atoms) {
    auto st = d.Add(t, c);
    EXPECT_TRUE(st.ok());
  }
  return d;
}

TEST(DeltaAlgebraTest, SelectFiltersAtoms) {
  Delta d = MakeDelta("R(a)", {{Tuple({1}), 1}, {Tuple({5}), -2}});
  SQ_ASSERT_OK_AND_ASSIGN(Delta out, DeltaSelect(d, Pred("a > 2")));
  EXPECT_EQ(out.CountOf(Tuple({1})), 0);
  EXPECT_EQ(out.CountOf(Tuple({5})), -2);
}

TEST(DeltaAlgebraTest, SelectTrueIsIdentity) {
  Delta d = MakeDelta("R(a)", {{Tuple({1}), 1}});
  SQ_ASSERT_OK_AND_ASSIGN(Delta out, DeltaSelect(d, Expr::True()));
  EXPECT_TRUE(out.EqualContents(d));
}

TEST(DeltaAlgebraTest, ProjectSumsSignedCounts) {
  Delta d = MakeDelta("R(a, b)",
                      {{Tuple({1, 10}), 1}, {Tuple({1, 20}), 1},
                       {Tuple({2, 30}), -1}});
  SQ_ASSERT_OK_AND_ASSIGN(Delta out, DeltaProject(d, {"a"}));
  EXPECT_EQ(out.CountOf(Tuple({1})), 2);
  EXPECT_EQ(out.CountOf(Tuple({2})), -1);
}

TEST(DeltaAlgebraTest, ProjectCancellation) {
  // +(1,10) and -(1,20) cancel under π_a.
  Delta d = MakeDelta("R(a, b)", {{Tuple({1, 10}), 1}, {Tuple({1, 20}), -1}});
  SQ_ASSERT_OK_AND_ASSIGN(Delta out, DeltaProject(d, {"a"}));
  EXPECT_TRUE(out.Empty());
}

TEST(DeltaAlgebraTest, SelectProjectCommuteWithApply) {
  // π_C σ_f apply(R, Δ) == apply(π_C σ_f R, π_C σ_f Δ) — paper §6.2.
  Relation r(MakeSchema("R(a, b)"), Semantics::kBag);
  SQ_ASSERT_OK(r.Insert(Tuple({1, 10}), 2));
  SQ_ASSERT_OK(r.Insert(Tuple({2, 20}), 1));
  Delta d = MakeDelta("R(a, b)",
                      {{Tuple({1, 10}), -1}, {Tuple({3, 30}), 2}});
  Expr::Ptr f = Pred("b >= 10 AND a != 2");
  std::vector<std::string> attrs = {"a"};

  Relation lhs_base = r;
  SQ_ASSERT_OK(ApplyDelta(&lhs_base, d));
  SQ_ASSERT_OK_AND_ASSIGN(Relation lhs_sel, OpSelect(lhs_base, f));
  SQ_ASSERT_OK_AND_ASSIGN(Relation lhs, OpProject(lhs_sel, attrs));

  SQ_ASSERT_OK_AND_ASSIGN(Relation rhs_sel, OpSelect(r, f));
  SQ_ASSERT_OK_AND_ASSIGN(Relation rhs, OpProject(rhs_sel, attrs));
  SQ_ASSERT_OK_AND_ASSIGN(Delta fd, FilterDeltaToLeafParent(d, f, attrs));
  SQ_ASSERT_OK(ApplyDelta(&rhs, fd));

  EXPECT_TRUE(lhs.EqualContents(rhs));
}

TEST(DeltaAlgebraTest, DeltaJoinRelation) {
  Delta d = MakeDelta("D(a, b)", {{Tuple({1, 7}), 2}, {Tuple({2, 9}), -1}});
  Relation s = MakeRelation("S(c, e)", {Tuple({7, 100}), Tuple({9, 200})});
  SQ_ASSERT_OK_AND_ASSIGN(Delta out, DeltaJoinRelation(d, s, Pred("b = c")));
  EXPECT_EQ(out.CountOf(Tuple({1, 7, 7, 100})), 2);
  EXPECT_EQ(out.CountOf(Tuple({2, 9, 9, 200})), -1);
}

TEST(DeltaAlgebraTest, RelationJoinDeltaSchemaOrder) {
  Relation rl = MakeRelation("L(a)", {Tuple({1})});
  Delta d = MakeDelta("D(b)", {{Tuple({1}), -3}});
  SQ_ASSERT_OK_AND_ASSIGN(Delta out, RelationJoinDelta(rl, d, Pred("a = b")));
  EXPECT_EQ(out.CountOf(Tuple({1, 1})), -3);
  EXPECT_EQ(out.schema().AttributeNames(),
            (std::vector<std::string>{"a", "b"}));
}

TEST(DeltaAlgebraTest, DeltaJoinThetaCondition) {
  Delta d = MakeDelta("D(a)", {{Tuple({2}), 1}});
  Relation s = MakeRelation("S(b)", {Tuple({1}), Tuple({3})});
  SQ_ASSERT_OK_AND_ASSIGN(Delta out, DeltaJoinRelation(d, s, Pred("a < b")));
  EXPECT_EQ(out.CountOf(Tuple({2, 3})), 1);
  EXPECT_EQ(out.CountOf(Tuple({2, 1})), 0);
}

TEST(DeltaAlgebraTest, JoinDeltaMatchesRecompute) {
  // apply(T, Δ ⋈ S) == apply(R, Δ) ⋈ S when T = R ⋈ S (the SPJ rule's core).
  Relation r(MakeSchema("R(a, b)"), Semantics::kBag);
  SQ_ASSERT_OK(r.Insert(Tuple({1, 7})));
  SQ_ASSERT_OK(r.Insert(Tuple({2, 9}), 2));
  Relation s = MakeRelation("S(c)", {Tuple({7}), Tuple({9})});
  Delta d = MakeDelta("R(a, b)", {{Tuple({2, 9}), -1}, {Tuple({3, 7}), 1}});

  SQ_ASSERT_OK_AND_ASSIGN(Relation t, OpJoin(r, s, Pred("b = c")));
  SQ_ASSERT_OK_AND_ASSIGN(Delta dt, DeltaJoinRelation(d, s, Pred("b = c")));
  SQ_ASSERT_OK(ApplyDelta(&t, dt));

  Relation r2 = r;
  SQ_ASSERT_OK(ApplyDelta(&r2, d));
  SQ_ASSERT_OK_AND_ASSIGN(Relation expect, OpJoin(r2, s, Pred("b = c")));
  EXPECT_TRUE(t.EqualContents(expect));
}

TEST(DeltaAlgebraTest, PresenceDeltaDetectsCrossings) {
  // after: a=2 copies (was 1: +1), b=0 copies (was 1: -1), c=3 (was 2).
  Relation after(MakeSchema("R(x)"), Semantics::kBag);
  SQ_ASSERT_OK(after.Insert(Tuple({"a"}), 2));
  SQ_ASSERT_OK(after.Insert(Tuple({"c"}), 3));
  Delta bag = MakeDelta("R(x)", {{Tuple({"a"}), 1},
                                 {Tuple({"b"}), -1},
                                 {Tuple({"c"}), 1}});
  SQ_ASSERT_OK_AND_ASSIGN(Delta pres, PresenceDelta(after, bag));
  EXPECT_EQ(pres.CountOf(Tuple({"a"})), 0);   // stayed present
  EXPECT_EQ(pres.CountOf(Tuple({"b"})), -1);  // left
  EXPECT_EQ(pres.CountOf(Tuple({"c"})), 0);   // stayed present
}

TEST(DeltaAlgebraTest, PresenceDeltaNewTuple) {
  Relation after(MakeSchema("R(x)"), Semantics::kBag);
  SQ_ASSERT_OK(after.Insert(Tuple({1}), 2));
  Delta bag = MakeDelta("R(x)", {{Tuple({1}), 2}});
  SQ_ASSERT_OK_AND_ASSIGN(Delta pres, PresenceDelta(after, bag));
  EXPECT_EQ(pres.CountOf(Tuple({1})), 1);
}

TEST(DeltaAlgebraTest, PresenceDeltaRejectsNegativePreState) {
  Relation after(MakeSchema("R(x)"), Semantics::kBag);
  Delta bag = MakeDelta("R(x)", {{Tuple({1}), 2}});  // after has 0 < 2
  EXPECT_FALSE(PresenceDelta(after, bag).ok());
}

TEST(DeltaAlgebraTest, IntersectAndMinusRelation) {
  Delta d = MakeDelta("R(x)", {{Tuple({1}), 1}, {Tuple({2}), -1}});
  Relation r = MakeRelation("R(x)", {Tuple({2})});
  Delta inter = DeltaIntersectRelation(d, r);
  EXPECT_EQ(inter.CountOf(Tuple({1})), 0);
  EXPECT_EQ(inter.CountOf(Tuple({2})), -1);
  Delta minus = DeltaMinusRelation(d, r);
  EXPECT_EQ(minus.CountOf(Tuple({1})), 1);
  EXPECT_EQ(minus.CountOf(Tuple({2})), 0);
}

}  // namespace
}  // namespace squirrel
