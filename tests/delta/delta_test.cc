#include "delta/delta.h"

#include <gtest/gtest.h>

#include "testing/util.h"

namespace squirrel {
namespace {

using testing::MakeRelation;
using testing::MakeSchema;

TEST(DeltaTest, InsertDeleteAtomsMerge) {
  Delta d(MakeSchema("R(a)"));
  SQ_ASSERT_OK(d.AddInsert(Tuple({1})));
  SQ_ASSERT_OK(d.AddDelete(Tuple({1})));
  EXPECT_TRUE(d.Empty());  // +t then -t cancel (consistency condition)
}

TEST(DeltaTest, CountsAccumulate) {
  Delta d(MakeSchema("R(a)"));
  SQ_ASSERT_OK(d.AddInsert(Tuple({1}), 2));
  SQ_ASSERT_OK(d.AddInsert(Tuple({1})));
  SQ_ASSERT_OK(d.AddDelete(Tuple({2}), 4));
  EXPECT_EQ(d.CountOf(Tuple({1})), 3);
  EXPECT_EQ(d.CountOf(Tuple({2})), -4);
  EXPECT_EQ(d.AtomCount(), 2u);
  EXPECT_EQ(d.TotalMagnitude(), 7);
}

TEST(DeltaTest, ArityChecked) {
  Delta d(MakeSchema("R(a, b)"));
  EXPECT_FALSE(d.Add(Tuple({1}), 1).ok());
}

TEST(DeltaTest, InverseFlipsSigns) {
  Delta d(MakeSchema("R(a)"));
  SQ_ASSERT_OK(d.AddInsert(Tuple({1}), 2));
  SQ_ASSERT_OK(d.AddDelete(Tuple({2})));
  Delta inv = d.Inverse();
  EXPECT_EQ(inv.CountOf(Tuple({1})), -2);
  EXPECT_EQ(inv.CountOf(Tuple({2})), 1);
}

TEST(DeltaTest, SmashIsPointwiseSum) {
  Delta d1(MakeSchema("R(a)"));
  SQ_ASSERT_OK(d1.AddInsert(Tuple({1})));
  SQ_ASSERT_OK(d1.AddDelete(Tuple({2})));
  Delta d2(MakeSchema("R(a)"));
  SQ_ASSERT_OK(d2.AddDelete(Tuple({1})));
  SQ_ASSERT_OK(d2.AddDelete(Tuple({2})));
  SQ_ASSERT_OK_AND_ASSIGN(Delta s, Delta::Smash(d1, d2));
  EXPECT_EQ(s.CountOf(Tuple({1})), 0);
  EXPECT_EQ(s.CountOf(Tuple({2})), -2);
}

TEST(DeltaTest, SmashLawApply) {
  // apply(db, d1 ! d2) == apply(apply(db, d1), d2) — the defining law.
  Relation db(MakeSchema("R(a)"), Semantics::kBag);
  SQ_ASSERT_OK(db.Insert(Tuple({1}), 2));
  SQ_ASSERT_OK(db.Insert(Tuple({2}), 1));
  Delta d1(MakeSchema("R(a)"));
  SQ_ASSERT_OK(d1.AddInsert(Tuple({3}), 2));
  SQ_ASSERT_OK(d1.AddDelete(Tuple({1})));
  Delta d2(MakeSchema("R(a)"));
  SQ_ASSERT_OK(d2.AddDelete(Tuple({3})));
  SQ_ASSERT_OK(d2.AddInsert(Tuple({2})));

  Relation seq = db;
  SQ_ASSERT_OK(ApplyDelta(&seq, d1));
  SQ_ASSERT_OK(ApplyDelta(&seq, d2));
  Relation smashed = db;
  SQ_ASSERT_OK_AND_ASSIGN(Delta s, Delta::Smash(d1, d2));
  SQ_ASSERT_OK(ApplyDelta(&smashed, s));
  EXPECT_TRUE(seq.EqualContents(smashed));
}

TEST(DeltaTest, InverseLaw) {
  // apply(apply(db, d), d^-1) == db for non-redundant deltas.
  Relation db(MakeSchema("R(a)"), Semantics::kBag);
  SQ_ASSERT_OK(db.Insert(Tuple({1}), 2));
  Delta d(MakeSchema("R(a)"));
  SQ_ASSERT_OK(d.AddInsert(Tuple({2}), 3));
  SQ_ASSERT_OK(d.AddDelete(Tuple({1})));
  Relation r = db;
  SQ_ASSERT_OK(ApplyDelta(&r, d));
  SQ_ASSERT_OK(ApplyDelta(&r, d.Inverse()));
  EXPECT_TRUE(r.EqualContents(db));
}

TEST(DeltaTest, SmashInverseDistributes) {
  // (d1 ! d2)^-1 == d2^-1 ! d1^-1 (they are equal as signed counts).
  Delta d1(MakeSchema("R(a)"));
  SQ_ASSERT_OK(d1.AddInsert(Tuple({1})));
  Delta d2(MakeSchema("R(a)"));
  SQ_ASSERT_OK(d2.AddDelete(Tuple({2}), 2));
  SQ_ASSERT_OK_AND_ASSIGN(Delta lhs, Delta::Smash(d1, d2));
  lhs = lhs.Inverse();
  SQ_ASSERT_OK_AND_ASSIGN(Delta rhs, Delta::Smash(d2.Inverse(), d1.Inverse()));
  EXPECT_TRUE(lhs.EqualContents(rhs));
}

TEST(DeltaTest, PositiveNegativeParts) {
  Delta d(MakeSchema("R(a)"));
  SQ_ASSERT_OK(d.AddInsert(Tuple({1}), 2));
  SQ_ASSERT_OK(d.AddDelete(Tuple({2}), 3));
  Relation pos = d.Positive();
  Relation neg = d.Negative();
  EXPECT_EQ(pos.CountOf(Tuple({1})), 2);
  EXPECT_EQ(pos.CountOf(Tuple({2})), 0);
  EXPECT_EQ(neg.CountOf(Tuple({2})), 3);
}

TEST(DeltaTest, BetweenComputesDifference) {
  Relation from = MakeRelation("R(a)", {Tuple({1}), Tuple({2})});
  Relation to = MakeRelation("R(a)", {Tuple({2}), Tuple({3})});
  SQ_ASSERT_OK_AND_ASSIGN(Delta d, Delta::Between(from, to));
  EXPECT_EQ(d.CountOf(Tuple({1})), -1);
  EXPECT_EQ(d.CountOf(Tuple({3})), 1);
  EXPECT_EQ(d.CountOf(Tuple({2})), 0);
  Relation r = from;
  SQ_ASSERT_OK(ApplyDelta(&r, d));
  EXPECT_TRUE(r.EqualContents(to));
}

TEST(DeltaTest, ApplyStrictOnSetRedundancy) {
  Relation r = MakeRelation("R(a)", {Tuple({1})});
  Delta redundant_insert(MakeSchema("R(a)"));
  SQ_ASSERT_OK(redundant_insert.AddInsert(Tuple({1})));
  EXPECT_FALSE(ApplyDelta(&r, redundant_insert).ok());
  Delta redundant_delete(MakeSchema("R(a)"));
  SQ_ASSERT_OK(redundant_delete.AddDelete(Tuple({9})));
  EXPECT_FALSE(ApplyDelta(&r, redundant_delete).ok());
}

TEST(DeltaTest, ApplyStrictOnBagUnderflow) {
  Relation r(MakeSchema("R(a)"), Semantics::kBag);
  SQ_ASSERT_OK(r.Insert(Tuple({1}), 1));
  Delta d(MakeSchema("R(a)"));
  SQ_ASSERT_OK(d.AddDelete(Tuple({1}), 2));
  EXPECT_FALSE(ApplyDelta(&r, d).ok());
  // Failed apply leaves the relation untouched.
  EXPECT_EQ(r.CountOf(Tuple({1})), 1);
}

TEST(DeltaTest, ApplySetRejectsWideCounts) {
  Relation r = MakeRelation("R(a)", {});
  Delta d(MakeSchema("R(a)"));
  SQ_ASSERT_OK(d.AddInsert(Tuple({1}), 2));
  EXPECT_FALSE(ApplyDelta(&r, d).ok());
}

TEST(DeltaTest, ToStringSortedAndSigned) {
  Delta d(MakeSchema("R(a)"));
  SQ_ASSERT_OK(d.AddDelete(Tuple({2})));
  SQ_ASSERT_OK(d.AddInsert(Tuple({1}), 2));
  EXPECT_EQ(d.ToString(), "{+(1) x2, -(2)}");
}

TEST(MultiDeltaTest, PerRelationRouting) {
  MultiDelta md;
  SQ_ASSERT_OK(md.Mutable("R", MakeSchema("R(a)"))->AddInsert(Tuple({1})));
  SQ_ASSERT_OK(md.Mutable("S", MakeSchema("S(b)"))->AddDelete(Tuple({2})));
  EXPECT_EQ(md.RelationNames(), (std::vector<std::string>{"R", "S"}));
  EXPECT_NE(md.Find("R"), nullptr);
  EXPECT_EQ(md.Find("Z"), nullptr);
  EXPECT_EQ(md.AtomCount(), 2u);
}

TEST(MultiDeltaTest, EmptyDeltasInvisible) {
  MultiDelta md;
  md.Mutable("R", MakeSchema("R(a)"));
  EXPECT_TRUE(md.Empty());
  EXPECT_EQ(md.Find("R"), nullptr);
  EXPECT_TRUE(md.RelationNames().empty());
}

TEST(MultiDeltaTest, SmashMergesRelationWise) {
  MultiDelta a, b;
  SQ_ASSERT_OK(a.Mutable("R", MakeSchema("R(x)"))->AddInsert(Tuple({1})));
  SQ_ASSERT_OK(b.Mutable("R", MakeSchema("R(x)"))->AddDelete(Tuple({1})));
  SQ_ASSERT_OK(b.Mutable("S", MakeSchema("S(y)"))->AddInsert(Tuple({2})));
  SQ_ASSERT_OK(a.SmashInPlace(b));
  EXPECT_EQ(a.Find("R"), nullptr);  // cancelled
  ASSERT_NE(a.Find("S"), nullptr);
  EXPECT_EQ(a.Find("S")->CountOf(Tuple({2})), 1);
}

}  // namespace
}  // namespace squirrel
