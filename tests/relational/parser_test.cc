#include "relational/parser.h"

#include <gtest/gtest.h>

#include "testing/util.h"

namespace squirrel {
namespace {

TEST(ParserTest, PredicateBasics) {
  auto e = ParsePredicate("r4 = 100 AND s3 < 50");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->kind(), Expr::Kind::kBinary);
  EXPECT_EQ((*e)->bin_op(), BinOp::kAnd);
}

TEST(ParserTest, PredicateDoublesAndStrings) {
  auto e = ParsePredicate("x < 2.5 OR name = 'bob'");
  ASSERT_TRUE(e.ok());
}

TEST(ParserTest, PredicateNotEqualVariants) {
  ASSERT_TRUE(ParsePredicate("a != 1").ok());
  ASSERT_TRUE(ParsePredicate("a <> 1").ok());
  auto a = ParsePredicate("a != 1");
  auto b = ParsePredicate("a <> 1");
  EXPECT_TRUE((*a)->Equals(**b));
}

TEST(ParserTest, PredicateNullLiteral) {
  auto e = ParsePredicate("a = null");
  ASSERT_TRUE(e.ok());
  EXPECT_TRUE((*e)->right()->value().is_null());
}

TEST(ParserTest, PredicateErrors) {
  EXPECT_FALSE(ParsePredicate("").ok());
  EXPECT_FALSE(ParsePredicate("a = ").ok());
  EXPECT_FALSE(ParsePredicate("a = 1 extra junk +").ok());
  EXPECT_FALSE(ParsePredicate("(a = 1").ok());
  EXPECT_FALSE(ParsePredicate("a @ 1").ok());
  EXPECT_FALSE(ParsePredicate("s = 'unterminated").ok());
}

TEST(ParserTest, AlgebraFigure1) {
  auto e = ParseAlgebra(
      "project[r1, r3, s1, s2](select[r4 = 100](R) join[r2 = s1] "
      "select[s3 < 50](S))");
  ASSERT_TRUE(e.ok()) << e.status().ToString();
  EXPECT_EQ((*e)->kind(), AlgebraExpr::Kind::kProject);
  EXPECT_EQ((*e)->attrs().size(), 4u);
  EXPECT_EQ((*e)->left()->kind(), AlgebraExpr::Kind::kJoin);
}

TEST(ParserTest, AlgebraScan) {
  auto e = ParseAlgebra("MyRel");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->kind(), AlgebraExpr::Kind::kScan);
  EXPECT_EQ((*e)->relation(), "MyRel");
}

TEST(ParserTest, AlgebraUnionDiff) {
  auto e = ParseAlgebra("project[a](E) diff project[a](F)");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->kind(), AlgebraExpr::Kind::kDiff);
  auto u = ParseAlgebra("A union B union C");
  ASSERT_TRUE(u.ok());
  EXPECT_EQ((*u)->kind(), AlgebraExpr::Kind::kUnion);
  // Left-associative: (A union B) union C.
  EXPECT_EQ((*u)->left()->kind(), AlgebraExpr::Kind::kUnion);
  auto m = ParseAlgebra("A minus B");
  ASSERT_TRUE(m.ok());
  EXPECT_EQ((*m)->kind(), AlgebraExpr::Kind::kDiff);
}

TEST(ParserTest, AlgebraJoinWithoutCondition) {
  auto e = ParseAlgebra("A join B");
  ASSERT_TRUE(e.ok());
  EXPECT_TRUE((*e)->condition()->IsTrueLiteral());
}

TEST(ParserTest, AlgebraJoinChainLeftDeep) {
  auto e = ParseAlgebra("A join[a = b] B join[c = d] C");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->kind(), AlgebraExpr::Kind::kJoin);
  EXPECT_EQ((*e)->left()->kind(), AlgebraExpr::Kind::kJoin);
  EXPECT_EQ((*e)->right()->relation(), "C");
}

TEST(ParserTest, AlgebraParenthesizedGrouping) {
  auto e = ParseAlgebra("A join (B union C)");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->right()->kind(), AlgebraExpr::Kind::kUnion);
}

TEST(ParserTest, AlgebraCaseInsensitiveKeywords) {
  ASSERT_TRUE(ParseAlgebra("PROJECT[a](SELECT[a = 1](R))").ok());
  ASSERT_TRUE(ParseAlgebra("r JOIN[x = y] s").ok());
}

TEST(ParserTest, AlgebraErrors) {
  EXPECT_FALSE(ParseAlgebra("project[](R)").ok());
  EXPECT_FALSE(ParseAlgebra("project[a](R").ok());
  EXPECT_FALSE(ParseAlgebra("select[]{R}").ok());
  EXPECT_FALSE(ParseAlgebra("A join[x =] B").ok());
  EXPECT_FALSE(ParseAlgebra("A B").ok());  // trailing input
}

TEST(ParserTest, AlgebraToStringRoundTrips) {
  const char* text =
      "project[r1, r3, s1, s2](select[r4 = 100](R) join[r2 = s1] "
      "select[s3 < 50](S))";
  auto e = ParseAlgebra(text);
  ASSERT_TRUE(e.ok());
  auto again = ParseAlgebra((*e)->ToString());
  ASSERT_TRUE(again.ok()) << (*e)->ToString();
  EXPECT_EQ((*again)->ToString(), (*e)->ToString());
}

TEST(ParserTest, SchemaDeclBasics) {
  auto d = ParseSchemaDecl("R(r1, r2, r3, r4) key(r1)");
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->name, "R");
  EXPECT_EQ(d->schema.size(), 4u);
  EXPECT_EQ(d->schema.key(), std::vector<std::string>{"r1"});
}

TEST(ParserTest, SchemaDeclTypes) {
  auto d = ParseSchemaDecl("Emp(id, name string, salary double) key(id)");
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->schema.attr(1).type, ValueType::kString);
  EXPECT_EQ(d->schema.attr(2).type, ValueType::kDouble);
}

TEST(ParserTest, SchemaDeclCompositeKey) {
  auto d = ParseSchemaDecl("R(a, b, c) key(a, b)");
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->schema.key().size(), 2u);
}

TEST(ParserTest, SchemaDeclErrors) {
  EXPECT_FALSE(ParseSchemaDecl("(a)").ok());
  EXPECT_FALSE(ParseSchemaDecl("R()").ok());
  EXPECT_FALSE(ParseSchemaDecl("R(a) key(zzz)").ok());
  EXPECT_FALSE(ParseSchemaDecl("R(a, a)").ok());
  EXPECT_FALSE(ParseSchemaDecl("R(a frobnicate)").ok());
  EXPECT_FALSE(ParseSchemaDecl("R(a) trailing").ok());
}

}  // namespace
}  // namespace squirrel
