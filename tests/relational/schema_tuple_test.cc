#include <gtest/gtest.h>

#include "relational/schema.h"
#include "relational/tuple.h"
#include "testing/util.h"

namespace squirrel {
namespace {

using testing::MakeSchema;

TEST(SchemaTest, BasicAccessors) {
  Schema s = MakeSchema("R(a, b, c) key(a)");
  EXPECT_EQ(s.size(), 3u);
  EXPECT_EQ(s.attr(0).name, "a");
  EXPECT_TRUE(s.Contains("b"));
  EXPECT_FALSE(s.Contains("z"));
  EXPECT_EQ(*s.IndexOf("c"), 2u);
  EXPECT_TRUE(s.HasKey());
  EXPECT_EQ(s.key(), std::vector<std::string>{"a"});
}

TEST(SchemaTest, ValidateRejectsDuplicates) {
  Schema s({{"a", ValueType::kInt}, {"a", ValueType::kInt}});
  EXPECT_FALSE(s.Validate().ok());
}

TEST(SchemaTest, ValidateRejectsKeyOutsideSchema) {
  Schema s({{"a", ValueType::kInt}}, {"zzz"});
  EXPECT_FALSE(s.Validate().ok());
}

TEST(SchemaTest, ProjectKeepsKeyWhenCovered) {
  Schema s = MakeSchema("R(a, b, c) key(a)");
  auto p = s.Project({"a", "c"});
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(p->HasKey());
  auto q = s.Project({"b", "c"});
  ASSERT_TRUE(q.ok());
  EXPECT_FALSE(q->HasKey());
}

TEST(SchemaTest, ProjectReordersAttrs) {
  Schema s = MakeSchema("R(a, b, c)");
  auto p = s.Project({"c", "a"});
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->attr(0).name, "c");
  EXPECT_EQ(p->attr(1).name, "a");
}

TEST(SchemaTest, ProjectUnknownAttrFails) {
  Schema s = MakeSchema("R(a, b)");
  EXPECT_FALSE(s.Project({"a", "zzz"}).ok());
}

TEST(SchemaTest, ConcatCombinesKeys) {
  Schema l = MakeSchema("R(a, b) key(a)");
  Schema r = MakeSchema("S(c, d) key(c)");
  auto joined = l.Concat(r);
  ASSERT_TRUE(joined.ok());
  EXPECT_EQ(joined->size(), 4u);
  EXPECT_EQ(joined->key(), (std::vector<std::string>{"a", "c"}));
}

TEST(SchemaTest, ConcatRejectsDuplicateNames) {
  Schema l = MakeSchema("R(a, b)");
  Schema r = MakeSchema("S(b, c)");
  EXPECT_FALSE(l.Concat(r).ok());
}

TEST(SchemaTest, KeyCoveredBy) {
  Schema s = MakeSchema("R(a, b, c) key(a, b)");
  EXPECT_TRUE(s.KeyCoveredBy({"b", "a", "c"}));
  EXPECT_FALSE(s.KeyCoveredBy({"a", "c"}));
  Schema nokey = MakeSchema("R(a)");
  EXPECT_FALSE(nokey.KeyCoveredBy({"a"}));
}

TEST(SchemaTest, TypedDeclarations) {
  Schema s = MakeSchema("R(id, name string, score double)");
  EXPECT_EQ(s.attr(0).type, ValueType::kInt);
  EXPECT_EQ(s.attr(1).type, ValueType::kString);
  EXPECT_EQ(s.attr(2).type, ValueType::kDouble);
}

TEST(TupleTest, ConcatAndProject) {
  Tuple t({1, "x"});
  Tuple u({2.5});
  Tuple c = t.Concat(u);
  EXPECT_EQ(c.size(), 3u);
  EXPECT_EQ(c.at(2), Value(2.5));
  Tuple p = c.Project({2, 0});
  EXPECT_EQ(p.size(), 2u);
  EXPECT_EQ(p.at(0), Value(2.5));
  EXPECT_EQ(p.at(1), Value(1));
}

TEST(TupleTest, LexicographicCompare) {
  EXPECT_LT(Tuple({1, 2}), Tuple({1, 3}));
  EXPECT_LT(Tuple({1}), Tuple({1, 0}));  // shorter first on prefix tie
  EXPECT_EQ(Tuple({1, "a"}).Compare(Tuple({1, "a"})), 0);
}

TEST(TupleTest, HashEqualsForEqualTuples) {
  EXPECT_EQ(Tuple({1, 2.0, "x"}).Hash(), Tuple({1, 2, "x"}).Hash());
  EXPECT_NE(Tuple({1, 2}).Hash(), Tuple({2, 1}).Hash());
}

TEST(TupleTest, ToString) {
  EXPECT_EQ(Tuple({1, "a", Value()}).ToString(), "(1, 'a', NULL)");
}

}  // namespace
}  // namespace squirrel
