#include "relational/relation.h"

#include <gtest/gtest.h>

#include "testing/util.h"

namespace squirrel {
namespace {

using testing::MakeSchema;

TEST(RelationTest, SetInsertIsIdempotent) {
  Relation r(MakeSchema("R(a)"), Semantics::kSet);
  SQ_ASSERT_OK(r.Insert(Tuple({1})));
  SQ_ASSERT_OK(r.Insert(Tuple({1})));
  EXPECT_EQ(r.DistinctSize(), 1u);
  EXPECT_EQ(r.TotalSize(), 1);
  EXPECT_EQ(r.CountOf(Tuple({1})), 1);
}

TEST(RelationTest, BagInsertAccumulates) {
  Relation r(MakeSchema("R(a)"), Semantics::kBag);
  SQ_ASSERT_OK(r.Insert(Tuple({1}), 2));
  SQ_ASSERT_OK(r.Insert(Tuple({1})));
  EXPECT_EQ(r.DistinctSize(), 1u);
  EXPECT_EQ(r.TotalSize(), 3);
  EXPECT_EQ(r.CountOf(Tuple({1})), 3);
}

TEST(RelationTest, ArityMismatchRejected) {
  Relation r(MakeSchema("R(a, b)"));
  EXPECT_FALSE(r.Insert(Tuple({1})).ok());
}

TEST(RelationTest, NonPositiveCountRejected) {
  Relation r(MakeSchema("R(a)"), Semantics::kBag);
  EXPECT_FALSE(r.Insert(Tuple({1}), 0).ok());
  EXPECT_FALSE(r.Insert(Tuple({1}), -2).ok());
}

TEST(RelationTest, RemoveBelowZeroRejected) {
  Relation r(MakeSchema("R(a)"), Semantics::kBag);
  SQ_ASSERT_OK(r.Insert(Tuple({1}), 2));
  EXPECT_FALSE(r.Remove(Tuple({1}), 3).ok());
  EXPECT_EQ(r.CountOf(Tuple({1})), 2);  // unchanged on failure
  SQ_ASSERT_OK(r.Remove(Tuple({1}), 2));
  EXPECT_TRUE(r.Empty());
}

TEST(RelationTest, RemoveAbsentRejected) {
  Relation r(MakeSchema("R(a)"));
  EXPECT_FALSE(r.Remove(Tuple({9})).ok());
}

TEST(RelationTest, AdjustSignedSemantics) {
  Relation r(MakeSchema("R(a)"), Semantics::kBag);
  SQ_ASSERT_OK(r.Adjust(Tuple({1}), 3));
  SQ_ASSERT_OK(r.Adjust(Tuple({1}), -1));
  EXPECT_EQ(r.CountOf(Tuple({1})), 2);
  SQ_ASSERT_OK(r.Adjust(Tuple({1}), 0));  // no-op
  EXPECT_EQ(r.CountOf(Tuple({1})), 2);
}

TEST(RelationTest, SortedRowsDeterministic) {
  Relation r(MakeSchema("R(a)"), Semantics::kBag);
  SQ_ASSERT_OK(r.Insert(Tuple({3})));
  SQ_ASSERT_OK(r.Insert(Tuple({1})));
  SQ_ASSERT_OK(r.Insert(Tuple({2})));
  auto rows = r.SortedRows();
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].first, Tuple({1}));
  EXPECT_EQ(rows[2].first, Tuple({3}));
}

TEST(RelationTest, EqualContentsComparesMultiplicities) {
  Relation a(MakeSchema("R(x)"), Semantics::kBag);
  Relation b(MakeSchema("R(x)"), Semantics::kBag);
  SQ_ASSERT_OK(a.Insert(Tuple({1}), 2));
  SQ_ASSERT_OK(b.Insert(Tuple({1}), 1));
  EXPECT_FALSE(a.EqualContents(b));
  SQ_ASSERT_OK(b.Insert(Tuple({1}), 1));
  EXPECT_TRUE(a.EqualContents(b));
}

TEST(RelationTest, EqualContentsRequiresSameAttrNames) {
  Relation a(MakeSchema("R(x)"));
  Relation b(MakeSchema("R(y)"));
  SQ_ASSERT_OK(a.Insert(Tuple({1})));
  SQ_ASSERT_OK(b.Insert(Tuple({1})));
  EXPECT_FALSE(a.EqualContents(b));
}

TEST(RelationTest, ToSetCollapsesBag) {
  Relation r(MakeSchema("R(a)"), Semantics::kBag);
  SQ_ASSERT_OK(r.Insert(Tuple({1}), 5));
  SQ_ASSERT_OK(r.Insert(Tuple({2}), 1));
  Relation s = r.ToSet();
  EXPECT_EQ(s.semantics(), Semantics::kSet);
  EXPECT_EQ(s.CountOf(Tuple({1})), 1);
  EXPECT_EQ(s.TotalSize(), 2);
}

TEST(RelationTest, ClearEmpties) {
  Relation r(MakeSchema("R(a)"), Semantics::kBag);
  SQ_ASSERT_OK(r.Insert(Tuple({1}), 4));
  r.Clear();
  EXPECT_TRUE(r.Empty());
  EXPECT_EQ(r.TotalSize(), 0);
}

TEST(RelationTest, ApproxBytesGrowsWithRows) {
  Relation r(MakeSchema("R(a, b)"), Semantics::kBag);
  size_t empty = r.ApproxBytes();
  SQ_ASSERT_OK(r.Insert(Tuple({1, 2})));
  SQ_ASSERT_OK(r.Insert(Tuple({3, 4})));
  EXPECT_GT(r.ApproxBytes(), empty);
}

}  // namespace
}  // namespace squirrel
