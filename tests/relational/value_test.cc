#include "relational/value.h"

#include <gtest/gtest.h>

namespace squirrel {
namespace {

TEST(ValueTest, DefaultIsNull) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.type(), ValueType::kNull);
}

TEST(ValueTest, IntRoundTrip) {
  Value v(int64_t{42});
  EXPECT_EQ(v.type(), ValueType::kInt);
  EXPECT_EQ(v.AsInt(), 42);
  EXPECT_TRUE(v.is_numeric());
}

TEST(ValueTest, DoubleRoundTrip) {
  Value v(3.25);
  EXPECT_EQ(v.type(), ValueType::kDouble);
  EXPECT_DOUBLE_EQ(v.AsDouble(), 3.25);
}

TEST(ValueTest, StringRoundTrip) {
  Value v("hello");
  EXPECT_EQ(v.type(), ValueType::kString);
  EXPECT_EQ(v.AsString(), "hello");
  EXPECT_FALSE(v.is_numeric());
}

TEST(ValueTest, IntLiteralConvenience) {
  Value v(7);  // int, not int64_t
  EXPECT_EQ(v.type(), ValueType::kInt);
  EXPECT_EQ(v.AsInt(), 7);
}

TEST(ValueTest, CompareIntInt) {
  EXPECT_LT(Value(1).Compare(Value(2)), 0);
  EXPECT_GT(Value(5).Compare(Value(2)), 0);
  EXPECT_EQ(Value(3).Compare(Value(3)), 0);
}

TEST(ValueTest, CrossTypeNumericEquality) {
  EXPECT_EQ(Value(2), Value(2.0));
  EXPECT_LT(Value(1).Compare(Value(1.5)), 0);
  EXPECT_GT(Value(2.5).Compare(Value(2)), 0);
}

TEST(ValueTest, CrossTypeNumericHashConsistency) {
  // 2 == 2.0 must imply equal hashes.
  EXPECT_EQ(Value(2), Value(2.0));
  EXPECT_EQ(Value(2).Hash(), Value(2.0).Hash());
}

TEST(ValueTest, TypeRankOrdering) {
  // null < numeric < string.
  EXPECT_LT(Value().Compare(Value(0)), 0);
  EXPECT_LT(Value(99999).Compare(Value("a")), 0);
  EXPECT_LT(Value().Compare(Value("")), 0);
}

TEST(ValueTest, StringOrdering) {
  EXPECT_LT(Value("abc").Compare(Value("abd")), 0);
  EXPECT_EQ(Value("x").Compare(Value("x")), 0);
}

TEST(ValueTest, NullsCompareEqual) {
  EXPECT_EQ(Value().Compare(Value()), 0);
  EXPECT_EQ(Value(), Value());
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value().ToString(), "NULL");
  EXPECT_EQ(Value(42).ToString(), "42");
  EXPECT_EQ(Value(2.5).ToString(), "2.5");
  EXPECT_EQ(Value("hi").ToString(), "'hi'");
}

TEST(ValueTest, NegativeZeroHashesLikeZero) {
  EXPECT_EQ(Value(0.0), Value(-0.0));
  EXPECT_EQ(Value(0.0).Hash(), Value(-0.0).Hash());
}

TEST(ValueTest, HashDiffersForDifferentValues) {
  // Not guaranteed in general, but these common values must not collide.
  EXPECT_NE(Value(1).Hash(), Value(2).Hash());
  EXPECT_NE(Value("a").Hash(), Value("b").Hash());
  EXPECT_NE(Value(1).Hash(), Value("1").Hash());
}

TEST(ValueTest, AsNumericWidensInt) {
  EXPECT_DOUBLE_EQ(Value(7).AsNumeric(), 7.0);
  EXPECT_DOUBLE_EQ(Value(7.5).AsNumeric(), 7.5);
}

}  // namespace
}  // namespace squirrel
