#include "relational/operators.h"

#include <gtest/gtest.h>

#include "testing/util.h"

namespace squirrel {
namespace {

using testing::MakeRelation;
using testing::Pred;
using testing::Rows;

TEST(OperatorsTest, SelectFilters) {
  Relation r = MakeRelation("R(a, b)", {Tuple({1, 10}), Tuple({2, 20})});
  SQ_ASSERT_OK_AND_ASSIGN(Relation out, OpSelect(r, Pred("b > 15")));
  EXPECT_EQ(Rows(out), "(2, 20) ");
}

TEST(OperatorsTest, SelectPreservesBagCounts) {
  Relation r(testing::MakeSchema("R(a)"), Semantics::kBag);
  SQ_ASSERT_OK(r.Insert(Tuple({1}), 3));
  SQ_ASSERT_OK_AND_ASSIGN(Relation out, OpSelect(r, Pred("a = 1")));
  EXPECT_EQ(out.CountOf(Tuple({1})), 3);
}

TEST(OperatorsTest, SelectNullCondIsIdentity) {
  Relation r = MakeRelation("R(a)", {Tuple({1}), Tuple({2})});
  SQ_ASSERT_OK_AND_ASSIGN(Relation out, OpSelect(r, nullptr));
  EXPECT_EQ(out.DistinctSize(), 2u);
}

TEST(OperatorsTest, ProjectMergesDuplicatesIntoBagCounts) {
  Relation r = MakeRelation("R(a, b)",
                            {Tuple({1, 10}), Tuple({1, 20}), Tuple({2, 30})});
  SQ_ASSERT_OK_AND_ASSIGN(Relation out, OpProject(r, {"a"}, Semantics::kBag));
  EXPECT_EQ(out.CountOf(Tuple({1})), 2);
  EXPECT_EQ(out.CountOf(Tuple({2})), 1);
}

TEST(OperatorsTest, ProjectSetDeduplicates) {
  Relation r = MakeRelation("R(a, b)", {Tuple({1, 10}), Tuple({1, 20})});
  SQ_ASSERT_OK_AND_ASSIGN(Relation out, OpProject(r, {"a"}, Semantics::kSet));
  EXPECT_EQ(out.CountOf(Tuple({1})), 1);
}

TEST(OperatorsTest, ProjectReorders) {
  Relation r = MakeRelation("R(a, b)", {Tuple({1, 10})});
  SQ_ASSERT_OK_AND_ASSIGN(Relation out,
                          OpProject(r, {"b", "a"}, Semantics::kBag));
  EXPECT_EQ(Rows(out), "(10, 1) ");
}

TEST(OperatorsTest, EquiJoin) {
  Relation r = MakeRelation("R(a, b)", {Tuple({1, 7}), Tuple({2, 8})});
  Relation s = MakeRelation("S(c, d)", {Tuple({7, "x"}), Tuple({9, "y"})});
  SQ_ASSERT_OK_AND_ASSIGN(Relation out, OpJoin(r, s, Pred("b = c")));
  EXPECT_EQ(Rows(out), "(1, 7, 7, 'x') ");
}

TEST(OperatorsTest, ThetaJoinNestedLoop) {
  Relation r = MakeRelation("R(a)", {Tuple({1}), Tuple({5})});
  Relation s = MakeRelation("S(b)", {Tuple({3})});
  SQ_ASSERT_OK_AND_ASSIGN(Relation out, OpJoin(r, s, Pred("a < b")));
  EXPECT_EQ(Rows(out), "(1, 3) ");
}

TEST(OperatorsTest, JoinMixedEquiAndResidual) {
  Relation r = MakeRelation("R(a, b)", {Tuple({1, 10}), Tuple({1, 5})});
  Relation s = MakeRelation("S(c, d)", {Tuple({1, 7})});
  SQ_ASSERT_OK_AND_ASSIGN(Relation out, OpJoin(r, s, Pred("a = c AND b > d")));
  EXPECT_EQ(Rows(out), "(1, 10, 1, 7) ");
}

TEST(OperatorsTest, JoinWithZeroEquiConjunctsUsesNestedLoop) {
  // A pure inequality condition has no equi-conjunct to hash on; the join
  // must fall back to the nested loop and still honor the full predicate.
  Relation r = MakeRelation("R(a, b)", {Tuple({1, 2}), Tuple({5, 1})});
  Relation s = MakeRelation("S(c)", {Tuple({3}), Tuple({4})});
  SQ_ASSERT_OK_AND_ASSIGN(Relation out,
                          OpJoin(r, s, Pred("a < c AND b < c")));
  EXPECT_EQ(Rows(out), "(1, 2, 3) (1, 2, 4) ");
  // Empty inputs through the same path.
  Relation empty_s = MakeRelation("S(c)", {});
  SQ_ASSERT_OK_AND_ASSIGN(Relation none, OpJoin(r, empty_s, Pred("a < c")));
  EXPECT_TRUE(none.Empty());
}

TEST(OperatorsTest, ProjectSetOnEmptyInputStaysEmptySet) {
  Relation r = MakeRelation("R(a, b)", {});
  SQ_ASSERT_OK_AND_ASSIGN(Relation out, OpProject(r, {"a"}, Semantics::kSet));
  EXPECT_TRUE(out.Empty());
  EXPECT_EQ(out.semantics(), Semantics::kSet);
  EXPECT_EQ(out.schema().AttributeNames(), (std::vector<std::string>{"a"}));
}

TEST(OperatorsTest, CrossProductWhenNoCondition) {
  Relation r = MakeRelation("R(a)", {Tuple({1}), Tuple({2})});
  Relation s = MakeRelation("S(b)", {Tuple({3}), Tuple({4})});
  SQ_ASSERT_OK_AND_ASSIGN(Relation out, OpJoin(r, s, nullptr));
  EXPECT_EQ(out.TotalSize(), 4);
}

TEST(OperatorsTest, JoinMultipliesBagCounts) {
  Relation r(testing::MakeSchema("R(a)"), Semantics::kBag);
  Relation s(testing::MakeSchema("S(b)"), Semantics::kBag);
  SQ_ASSERT_OK(r.Insert(Tuple({1}), 2));
  SQ_ASSERT_OK(s.Insert(Tuple({1}), 3));
  SQ_ASSERT_OK_AND_ASSIGN(Relation out, OpJoin(r, s, Pred("a = b")));
  EXPECT_EQ(out.CountOf(Tuple({1, 1})), 6);
}

TEST(OperatorsTest, JoinBuildSideBySkewedBagTotals) {
  // Regression: the build side used to be chosen by DistinctSize, so a bag
  // with 1 distinct tuple of multiplicity 1000 was picked over a 3-tuple
  // side, hashing 1000 entries' worth of work onto the wrong side. The
  // chooser must compare TotalSize (tie-break on DistinctSize) and the
  // result must be identical either way.
  Relation skew(testing::MakeSchema("R(a)"), Semantics::kBag);
  SQ_ASSERT_OK(skew.Insert(Tuple({1}), 1000));
  Relation flat(testing::MakeSchema("S(b)"), Semantics::kBag);
  SQ_ASSERT_OK(flat.Insert(Tuple({1}), 1));
  SQ_ASSERT_OK(flat.Insert(Tuple({2}), 1));
  SQ_ASSERT_OK(flat.Insert(Tuple({3}), 1));
  EXPECT_GT(skew.TotalSize(), flat.TotalSize());
  EXPECT_LT(skew.DistinctSize(), flat.DistinctSize());
  SQ_ASSERT_OK_AND_ASSIGN(Relation out, OpJoin(skew, flat, Pred("a = b")));
  EXPECT_EQ(out.CountOf(Tuple({1, 1})), 1000);
  EXPECT_EQ(out.DistinctSize(), 1u);
  // Symmetric argument order: same answer.
  SQ_ASSERT_OK_AND_ASSIGN(Relation rev, OpJoin(flat, skew, Pred("b = a")));
  EXPECT_EQ(rev.CountOf(Tuple({1, 1})), 1000);
  EXPECT_EQ(rev.DistinctSize(), 1u);
}

TEST(OperatorsTest, JoinWithIndexHintMatchesUnindexed) {
  Relation r = MakeRelation("R(a, b)",
                            {Tuple({1, 10}), Tuple({2, 20}), Tuple({3, 30})});
  Relation s = MakeRelation("S(c, d)",
                            {Tuple({1, 7}), Tuple({1, 8}), Tuple({9, 9})});
  SQ_ASSERT_OK_AND_ASSIGN(Relation plain, OpJoin(r, s, Pred("a = c")));
  SQ_ASSERT_OK_AND_ASSIGN(HashIndex right_idx, HashIndex::Build(s, {"c"}));
  JoinIndexHint hint;
  hint.right = &right_idx;
  SQ_ASSERT_OK_AND_ASSIGN(Relation hinted, OpJoin(r, s, Pred("a = c"), hint));
  EXPECT_EQ(Rows(hinted), Rows(plain));
  // Left-side index is equally usable.
  SQ_ASSERT_OK_AND_ASSIGN(HashIndex left_idx, HashIndex::Build(r, {"a"}));
  JoinIndexHint lhint;
  lhint.left = &left_idx;
  SQ_ASSERT_OK_AND_ASSIGN(Relation lhinted, OpJoin(r, s, Pred("a = c"), lhint));
  EXPECT_EQ(Rows(lhinted), Rows(plain));
  // A hint that does not cover the equi attrs is ignored, not an error.
  SQ_ASSERT_OK_AND_ASSIGN(HashIndex wrong_idx, HashIndex::Build(s, {"d"}));
  JoinIndexHint whint;
  whint.right = &wrong_idx;
  SQ_ASSERT_OK_AND_ASSIGN(Relation fell_back,
                          OpJoin(r, s, Pred("a = c"), whint));
  EXPECT_EQ(Rows(fell_back), Rows(plain));
}

TEST(OperatorsTest, JoinRejectsDuplicateAttrNames) {
  Relation r = MakeRelation("R(a)", {Tuple({1})});
  Relation s = MakeRelation("S(a)", {Tuple({1})});
  EXPECT_FALSE(OpJoin(r, s, nullptr).ok());
}

TEST(OperatorsTest, UnionAddsCounts) {
  Relation r = MakeRelation("R(a)", {Tuple({1})});
  Relation s = MakeRelation("R(a)", {Tuple({1}), Tuple({2})});
  SQ_ASSERT_OK_AND_ASSIGN(Relation out, OpUnion(r, s, Semantics::kBag));
  EXPECT_EQ(out.CountOf(Tuple({1})), 2);
  EXPECT_EQ(out.CountOf(Tuple({2})), 1);
}

TEST(OperatorsTest, UnionRejectsIncompatibleSchemas) {
  Relation r = MakeRelation("R(a)", {});
  Relation s = MakeRelation("S(b)", {});
  EXPECT_FALSE(OpUnion(r, s, Semantics::kBag).ok());
  Relation t = MakeRelation("T(a, b)", {});
  EXPECT_FALSE(OpUnion(r, t, Semantics::kBag).ok());
}

TEST(OperatorsTest, DiffIsSetSemantics) {
  Relation r = MakeRelation("R(a)", {Tuple({1}), Tuple({2}), Tuple({3})});
  Relation s = MakeRelation("R(a)", {Tuple({2})});
  SQ_ASSERT_OK_AND_ASSIGN(Relation out, OpDiff(r, s));
  EXPECT_EQ(Rows(out), "(1) (3) ");
  EXPECT_EQ(out.semantics(), Semantics::kSet);
}

TEST(OperatorsTest, RenameChangesSchema) {
  Relation r = MakeRelation("R(a, b) key(a)", {Tuple({1, 2})});
  SQ_ASSERT_OK_AND_ASSIGN(Relation out, OpRename(r, {{"a", "x"}}));
  EXPECT_TRUE(out.schema().Contains("x"));
  EXPECT_FALSE(out.schema().Contains("a"));
  EXPECT_EQ(out.schema().key(), std::vector<std::string>{"x"});
}

TEST(OperatorsTest, EvalAlgebraFigure1View) {
  Relation r = MakeRelation(
      "R(r1, r2, r3, r4) key(r1)",
      {Tuple({1, 100, 11, 100}), Tuple({2, 200, 22, 100}),
       Tuple({3, 100, 33, 999})});
  Relation s = MakeRelation("S(s1, s2, s3) key(s1)",
                            {Tuple({100, 5, 10}), Tuple({200, 6, 99})});
  Catalog catalog;
  catalog.Register("R", &r);
  catalog.Register("S", &s);
  auto view = ParseAlgebra(
      "project[r1, r3, s1, s2](select[r4 = 100](R) join[r2 = s1] "
      "select[s3 < 50](S))");
  ASSERT_TRUE(view.ok());
  SQ_ASSERT_OK_AND_ASSIGN(Relation out, EvalAlgebra(*view, catalog));
  // Row 1: r4=100, joins s1=100, s3=10<50 -> in. Row 2: joins s1=200 but
  // s3=99 -> out. Row 3: r4!=100 -> out.
  EXPECT_EQ(Rows(out), "(1, 11, 100, 5) ");
}

TEST(OperatorsTest, EvalAlgebraDiffDeduplicates) {
  Relation r = MakeRelation("R(a, b)", {Tuple({1, 10}), Tuple({1, 20})});
  Relation s = MakeRelation("T(a)", {Tuple({2})});
  Catalog catalog;
  catalog.Register("R", &r);
  catalog.Register("T", &s);
  auto view = ParseAlgebra("project[a](R) diff T");
  ASSERT_TRUE(view.ok());
  SQ_ASSERT_OK_AND_ASSIGN(Relation out, EvalAlgebra(*view, catalog));
  EXPECT_EQ(Rows(out), "(1) ");
}

TEST(OperatorsTest, EvalAlgebraSharedBorrowsTopLevelScan) {
  Relation r = MakeRelation("R(a, b)", {Tuple({1, 10}), Tuple({2, 20})});
  Catalog catalog;
  catalog.Register("R", &r);
  auto scan = ParseAlgebra("R");
  ASSERT_TRUE(scan.ok());
  SQ_ASSERT_OK_AND_ASSIGN(std::shared_ptr<const Relation> shared,
                          EvalAlgebraShared(*scan, catalog));
  // A bare scan must be a borrowed handle onto the catalog relation, not a
  // deep copy of it.
  EXPECT_EQ(shared.get(), &r);
  // EvalAlgebra's value contract is unchanged: callers own the result.
  SQ_ASSERT_OK_AND_ASSIGN(Relation owned, EvalAlgebra(*scan, catalog));
  EXPECT_EQ(Rows(owned), Rows(r));
  // Composite expressions still materialize a fresh result.
  auto sel = ParseAlgebra("select[a = 1](R)");
  ASSERT_TRUE(sel.ok());
  SQ_ASSERT_OK_AND_ASSIGN(std::shared_ptr<const Relation> computed,
                          EvalAlgebraShared(*sel, catalog));
  EXPECT_NE(computed.get(), &r);
  EXPECT_EQ(Rows(*computed), "(1, 10) ");
}

TEST(OperatorsTest, EvalAlgebraMissingRelation) {
  Catalog catalog;
  auto view = ParseAlgebra("Nope");
  ASSERT_TRUE(view.ok());
  EXPECT_FALSE(EvalAlgebra(*view, catalog).ok());
}

TEST(OperatorsTest, InferSchemaMatchesEvaluation) {
  Relation r = MakeRelation("R(a, b)", {Tuple({1, 2})});
  Relation s = MakeRelation("S(c)", {Tuple({2})});
  Catalog catalog;
  catalog.Register("R", &r);
  catalog.Register("S", &s);
  auto view = ParseAlgebra("project[a, c](R join[b = c] S)");
  ASSERT_TRUE(view.ok());
  SQ_ASSERT_OK_AND_ASSIGN(
      Schema schema,
      InferSchema(*view, [&](const std::string& name) -> Result<Schema> {
        SQ_ASSIGN_OR_RETURN(const Relation* rel, catalog.Lookup(name));
        return rel->schema();
      }));
  SQ_ASSERT_OK_AND_ASSIGN(Relation out, EvalAlgebra(*view, catalog));
  EXPECT_EQ(schema.AttributeNames(), out.schema().AttributeNames());
}

}  // namespace
}  // namespace squirrel
