#include <gtest/gtest.h>

#include "delta/delta.h"
#include "relational/algebra.h"
#include "relational/index.h"
#include "testing/util.h"

namespace squirrel {
namespace {

using testing::MakeRelation;

TEST(HashIndexTest, ProbeFindsMatchingTuples) {
  Relation r = MakeRelation("R(a, b)",
                            {Tuple({1, 10}), Tuple({1, 20}), Tuple({2, 30})});
  SQ_ASSERT_OK_AND_ASSIGN(HashIndex index, HashIndex::Build(r, {"a"}));
  EXPECT_EQ(index.KeyCount(), 2u);
  const auto& hits = index.Probe(Tuple({1}));
  EXPECT_EQ(hits.size(), 2u);
  EXPECT_TRUE(index.Probe(Tuple({9})).empty());
}

TEST(HashIndexTest, CompositeKeys) {
  Relation r = MakeRelation("R(a, b, c)",
                            {Tuple({1, 10, 100}), Tuple({1, 20, 200})});
  SQ_ASSERT_OK_AND_ASSIGN(HashIndex index, HashIndex::Build(r, {"a", "b"}));
  EXPECT_EQ(index.Probe(Tuple({1, 10})).size(), 1u);
  EXPECT_EQ(index.Probe(Tuple({1, 10}))[0].first, Tuple({1, 10, 100}));
}

TEST(HashIndexTest, CarriesMultiplicities) {
  Relation r(testing::MakeSchema("R(a)"), Semantics::kBag);
  SQ_ASSERT_OK(r.Insert(Tuple({1}), 3));
  SQ_ASSERT_OK_AND_ASSIGN(HashIndex index, HashIndex::Build(r, {"a"}));
  ASSERT_EQ(index.Probe(Tuple({1})).size(), 1u);
  EXPECT_EQ(index.Probe(Tuple({1}))[0].second, 3);
}

TEST(HashIndexTest, ProbeMissingKeyReturnsStableEmptyRef) {
  Relation r = MakeRelation("R(a, b)", {Tuple({1, 10})});
  SQ_ASSERT_OK_AND_ASSIGN(HashIndex index, HashIndex::Build(r, {"a"}));
  const auto& miss1 = index.Probe(Tuple({42}));
  EXPECT_TRUE(miss1.empty());
  // Probe returns a reference; for missing keys it must be the shared empty
  // bucket, identical across probes and still valid after further probes.
  const auto& miss2 = index.Probe(Tuple({43}));
  EXPECT_EQ(&miss1, &miss2);
  EXPECT_TRUE(miss1.empty());
  // Probing must not have materialized buckets for the missing keys.
  EXPECT_EQ(index.KeyCount(), 1u);
}

TEST(HashIndexTest, UnknownAttributeFails) {
  Relation r = MakeRelation("R(a)", {Tuple({1})});
  EXPECT_FALSE(HashIndex::Build(r, {"zzz"}).ok());
}

TEST(HashIndexApplyDeltaTest, InsertUpdatesCountsAndNewKeys) {
  Relation r = MakeRelation("R(a, b)", {Tuple({1, 10})});
  SQ_ASSERT_OK_AND_ASSIGN(HashIndex index, HashIndex::Build(r, {"a"}));
  Delta d(r.schema());
  SQ_ASSERT_OK(d.Add(Tuple({1, 10}), 2));  // existing tuple: count bump
  SQ_ASSERT_OK(d.Add(Tuple({2, 20}), 1));  // brand-new key
  SQ_ASSERT_OK(index.ApplyDelta(d));
  EXPECT_EQ(index.KeyCount(), 2u);
  ASSERT_EQ(index.Probe(Tuple({1})).size(), 1u);
  EXPECT_EQ(index.Probe(Tuple({1}))[0].second, 3);
  EXPECT_EQ(index.Probe(Tuple({2})).size(), 1u);
}

TEST(HashIndexApplyDeltaTest, DeleteToZeroRemovesEntryAndBucket) {
  Relation r =
      MakeRelation("R(a, b)", {Tuple({1, 10}), Tuple({1, 20}), Tuple({2, 30})});
  SQ_ASSERT_OK_AND_ASSIGN(HashIndex index, HashIndex::Build(r, {"a"}));
  Delta d1(r.schema());
  SQ_ASSERT_OK(d1.Add(Tuple({1, 10}), -1));
  SQ_ASSERT_OK(index.ApplyDelta(d1));
  EXPECT_EQ(index.Probe(Tuple({1})).size(), 1u);  // entry gone, bucket stays
  EXPECT_EQ(index.Probe(Tuple({1}))[0].first, Tuple({1, 20}));

  Delta d2(r.schema());
  SQ_ASSERT_OK(d2.Add(Tuple({2, 30}), -1));
  SQ_ASSERT_OK(index.ApplyDelta(d2));
  EXPECT_EQ(index.KeyCount(), 1u);  // whole bucket erased
  EXPECT_TRUE(index.Probe(Tuple({2})).empty());
}

TEST(HashIndexApplyDeltaTest, ReinsertAfterDeleteToZero) {
  Relation r = MakeRelation("R(a, b)", {Tuple({1, 10})});
  SQ_ASSERT_OK_AND_ASSIGN(HashIndex index, HashIndex::Build(r, {"a"}));
  Delta del(r.schema());
  SQ_ASSERT_OK(del.Add(Tuple({1, 10}), -1));
  SQ_ASSERT_OK(index.ApplyDelta(del));
  EXPECT_EQ(index.KeyCount(), 0u);
  Delta ins(r.schema());
  SQ_ASSERT_OK(ins.Add(Tuple({1, 10}), 4));
  SQ_ASSERT_OK(index.ApplyDelta(ins));
  ASSERT_EQ(index.Probe(Tuple({1})).size(), 1u);
  EXPECT_EQ(index.Probe(Tuple({1}))[0].second, 4);
}

TEST(HashIndexApplyDeltaTest, StrictErrors) {
  Relation r = MakeRelation("R(a, b)", {Tuple({1, 10})});
  SQ_ASSERT_OK_AND_ASSIGN(HashIndex index, HashIndex::Build(r, {"a"}));
  Delta absent(r.schema());
  SQ_ASSERT_OK(absent.Add(Tuple({9, 90}), -1));
  EXPECT_FALSE(index.ApplyDelta(absent).ok());  // delete of absent tuple
  Delta under(r.schema());
  SQ_ASSERT_OK(under.Add(Tuple({1, 10}), -2));
  EXPECT_FALSE(index.ApplyDelta(under).ok());  // count underflow
  Delta wrong(testing::MakeSchema("X(z)"));
  SQ_ASSERT_OK(wrong.Add(Tuple({1}), 1));
  EXPECT_FALSE(index.ApplyDelta(wrong).ok());  // schema mismatch
}

TEST(HashIndexApplyDeltaTest, MirrorsApplyDeltaOnRelation) {
  Relation r(testing::MakeSchema("R(a, b)"), Semantics::kBag);
  SQ_ASSERT_OK(r.Insert(Tuple({1, 10}), 2));
  SQ_ASSERT_OK(r.Insert(Tuple({2, 20}), 1));
  SQ_ASSERT_OK_AND_ASSIGN(HashIndex index, HashIndex::Build(r, {"a"}));
  Delta d(r.schema());
  SQ_ASSERT_OK(d.Add(Tuple({1, 10}), -2));
  SQ_ASSERT_OK(d.Add(Tuple({2, 20}), 3));
  SQ_ASSERT_OK(d.Add(Tuple({3, 30}), 1));
  SQ_ASSERT_OK(ApplyDelta(&r, d));
  SQ_ASSERT_OK(index.ApplyDelta(d));
  SQ_ASSERT_OK_AND_ASSIGN(HashIndex rebuilt, HashIndex::Build(r, {"a"}));
  EXPECT_EQ(index.KeyCount(), rebuilt.KeyCount());
  EXPECT_EQ(index.EntryCount(), rebuilt.EntryCount());
  r.ForEach([&](const Tuple& t, int64_t count) {
    bool found = false;
    for (const auto& [it, ic] : index.Probe(t.Project({0}))) {
      if (it == t) {
        found = true;
        EXPECT_EQ(ic, count);
      }
    }
    EXPECT_TRUE(found) << t.ToString();
  });
}

TEST(IndexManagerTest, RegisterDedupsByAttrSet) {
  IndexManager mgr;
  EXPECT_TRUE(mgr.Register("R", {"a", "b"}));
  EXPECT_FALSE(mgr.Register("R", {"b", "a"}));  // same set, different order
  EXPECT_TRUE(mgr.Register("R", {"a"}));
  EXPECT_TRUE(mgr.Register("S", {"a", "b"}));
  EXPECT_EQ(mgr.specs().at("R").size(), 2u);
}

TEST(IndexManagerTest, RebuildFindAndApplyDelta) {
  IndexManager mgr;
  mgr.Register("R", {"a"});
  Relation r = MakeRelation("R(a, b)", {Tuple({1, 10}), Tuple({2, 20})});
  SQ_ASSERT_OK(mgr.Rebuild("R", r));
  const HashIndex* idx = mgr.Find("R", {"a"});
  ASSERT_NE(idx, nullptr);
  EXPECT_EQ(idx->KeyCount(), 2u);
  EXPECT_EQ(mgr.Find("R", {"b"}), nullptr);
  EXPECT_EQ(mgr.Find("S", {"a"}), nullptr);

  Delta d(r.schema());
  SQ_ASSERT_OK(d.Add(Tuple({3, 30}), 1));
  SQ_ASSERT_OK(mgr.ApplyDelta("R", d));
  EXPECT_EQ(idx->KeyCount(), 3u);
  // Deltas for nodes without registered indexes are ignored.
  SQ_ASSERT_OK(mgr.ApplyDelta("S", d));
}

TEST(AlgebraExprTest, CollectScans) {
  auto e = ParseAlgebra("project[a]((R join S) union select[x = 1](R))");
  ASSERT_TRUE(e.ok());
  std::set<std::string> scans;
  (*e)->CollectScans(&scans);
  EXPECT_EQ(scans, (std::set<std::string>{"R", "S"}));
}

TEST(AlgebraExprTest, AccessorsPerKind) {
  auto e = ParseAlgebra("select[a = 1](R)");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->kind(), AlgebraExpr::Kind::kSelect);
  EXPECT_FALSE((*e)->condition()->IsTrueLiteral());
  EXPECT_EQ((*e)->left()->relation(), "R");

  auto j = AlgebraExpr::Join(nullptr, AlgebraExpr::Scan("A"),
                             AlgebraExpr::Scan("B"));
  EXPECT_TRUE(j->condition()->IsTrueLiteral());  // null => cross product
}

TEST(AlgebraExprTest, ToStringStable) {
  auto e = ParseAlgebra("project[a](A) diff project[a](B)");
  ASSERT_TRUE(e.ok());
  auto round = ParseAlgebra((*e)->ToString());
  ASSERT_TRUE(round.ok()) << (*e)->ToString();
  EXPECT_EQ((*round)->ToString(), (*e)->ToString());
}

}  // namespace
}  // namespace squirrel
