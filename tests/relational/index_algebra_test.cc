#include <gtest/gtest.h>

#include "relational/algebra.h"
#include "relational/index.h"
#include "testing/util.h"

namespace squirrel {
namespace {

using testing::MakeRelation;

TEST(HashIndexTest, ProbeFindsMatchingTuples) {
  Relation r = MakeRelation("R(a, b)",
                            {Tuple({1, 10}), Tuple({1, 20}), Tuple({2, 30})});
  SQ_ASSERT_OK_AND_ASSIGN(HashIndex index, HashIndex::Build(r, {"a"}));
  EXPECT_EQ(index.KeyCount(), 2u);
  const auto& hits = index.Probe(Tuple({1}));
  EXPECT_EQ(hits.size(), 2u);
  EXPECT_TRUE(index.Probe(Tuple({9})).empty());
}

TEST(HashIndexTest, CompositeKeys) {
  Relation r = MakeRelation("R(a, b, c)",
                            {Tuple({1, 10, 100}), Tuple({1, 20, 200})});
  SQ_ASSERT_OK_AND_ASSIGN(HashIndex index, HashIndex::Build(r, {"a", "b"}));
  EXPECT_EQ(index.Probe(Tuple({1, 10})).size(), 1u);
  EXPECT_EQ(index.Probe(Tuple({1, 10}))[0].first, Tuple({1, 10, 100}));
}

TEST(HashIndexTest, CarriesMultiplicities) {
  Relation r(testing::MakeSchema("R(a)"), Semantics::kBag);
  SQ_ASSERT_OK(r.Insert(Tuple({1}), 3));
  SQ_ASSERT_OK_AND_ASSIGN(HashIndex index, HashIndex::Build(r, {"a"}));
  ASSERT_EQ(index.Probe(Tuple({1})).size(), 1u);
  EXPECT_EQ(index.Probe(Tuple({1}))[0].second, 3);
}

TEST(HashIndexTest, ProbeMissingKeyReturnsStableEmptyRef) {
  Relation r = MakeRelation("R(a, b)", {Tuple({1, 10})});
  SQ_ASSERT_OK_AND_ASSIGN(HashIndex index, HashIndex::Build(r, {"a"}));
  const auto& miss1 = index.Probe(Tuple({42}));
  EXPECT_TRUE(miss1.empty());
  // Probe returns a reference; for missing keys it must be the shared empty
  // bucket, identical across probes and still valid after further probes.
  const auto& miss2 = index.Probe(Tuple({43}));
  EXPECT_EQ(&miss1, &miss2);
  EXPECT_TRUE(miss1.empty());
  // Probing must not have materialized buckets for the missing keys.
  EXPECT_EQ(index.KeyCount(), 1u);
}

TEST(HashIndexTest, UnknownAttributeFails) {
  Relation r = MakeRelation("R(a)", {Tuple({1})});
  EXPECT_FALSE(HashIndex::Build(r, {"zzz"}).ok());
}

TEST(AlgebraExprTest, CollectScans) {
  auto e = ParseAlgebra("project[a]((R join S) union select[x = 1](R))");
  ASSERT_TRUE(e.ok());
  std::set<std::string> scans;
  (*e)->CollectScans(&scans);
  EXPECT_EQ(scans, (std::set<std::string>{"R", "S"}));
}

TEST(AlgebraExprTest, AccessorsPerKind) {
  auto e = ParseAlgebra("select[a = 1](R)");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->kind(), AlgebraExpr::Kind::kSelect);
  EXPECT_FALSE((*e)->condition()->IsTrueLiteral());
  EXPECT_EQ((*e)->left()->relation(), "R");

  auto j = AlgebraExpr::Join(nullptr, AlgebraExpr::Scan("A"),
                             AlgebraExpr::Scan("B"));
  EXPECT_TRUE(j->condition()->IsTrueLiteral());  // null => cross product
}

TEST(AlgebraExprTest, ToStringStable) {
  auto e = ParseAlgebra("project[a](A) diff project[a](B)");
  ASSERT_TRUE(e.ok());
  auto round = ParseAlgebra((*e)->ToString());
  ASSERT_TRUE(round.ok()) << (*e)->ToString();
  EXPECT_EQ((*round)->ToString(), (*e)->ToString());
}

}  // namespace
}  // namespace squirrel
