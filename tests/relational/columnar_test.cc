// Unit tests for the columnar batch execution engine: batch round-trips,
// arena interning, vectorized predicate evaluation vs the scalar oracle,
// and kernel parity (select/project/join/delta ops) against the row-mode
// operators, including the bag-count and type-edge cases that bit the
// design reviews (skewed bags, int-vs-integral-double keys, NULL keys).

#include "relational/columnar.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "delta/delta_algebra.h"
#include "relational/column_batch.h"
#include "relational/operators.h"
#include "testing/util.h"

namespace squirrel {
namespace {

using testing::MakeRelation;
using testing::MakeSchema;
using testing::Pred;
using testing::Rows;

// ---------------------------------------------------------------------------
// StringArena / ColumnBatch storage
// ---------------------------------------------------------------------------

TEST(StringArenaTest, InternsEachDistinctStringOnce) {
  StringArena arena;
  uint32_t a = arena.Intern("alpha");
  uint32_t b = arena.Intern("beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(arena.Intern("alpha"), a);
  EXPECT_EQ(arena.size(), 2u);
  EXPECT_EQ(arena.Get(a), "alpha");
  EXPECT_EQ(arena.Get(b), "beta");
}

TEST(StringArenaTest, FindDoesNotIntern) {
  StringArena arena;
  arena.Intern("present");
  EXPECT_TRUE(arena.Find("present").has_value());
  EXPECT_FALSE(arena.Find("absent").has_value());
  EXPECT_EQ(arena.size(), 1u);
}

TEST(StringArenaTest, AddressesStableAcrossGrowth) {
  StringArena arena;
  uint32_t first = arena.Intern("first");
  const std::string* p = &arena.Get(first);
  for (int i = 0; i < 1000; ++i) arena.Intern("s" + std::to_string(i));
  EXPECT_EQ(p, &arena.Get(first));  // deque storage never relocates
  EXPECT_EQ(*p, "first");
}

TEST(ColumnBatchTest, RelationRoundTripAllTypes) {
  Relation r(MakeSchema("R(a, b double, c string)"), Semantics::kBag);
  SQ_ASSERT_OK(r.Insert(Tuple({1, 1.5, "x"}), 2));
  SQ_ASSERT_OK(r.Insert(Tuple({Value(), -0.0, ""}), 1));
  SQ_ASSERT_OK(r.Insert(Tuple({-7, 2.0, "x"}), 3));
  ColumnBatch batch = ColumnBatch::FromRelation(r);
  EXPECT_EQ(batch.rows(), 3u);
  EXPECT_EQ(batch.cols(), 3u);
  SQ_ASSERT_OK_AND_ASSIGN(Relation back, batch.ToRelation(Semantics::kBag));
  EXPECT_TRUE(back.EqualContents(r));
}

TEST(ColumnBatchTest, DeltaRoundTripKeepsSignedCounts) {
  Delta d(MakeSchema("R(a, s string)"));
  SQ_ASSERT_OK(d.Add(Tuple({1, "ins"}), 4));
  SQ_ASSERT_OK(d.Add(Tuple({2, "del"}), -3));
  ColumnBatch batch = ColumnBatch::FromDelta(d);
  SQ_ASSERT_OK_AND_ASSIGN(Delta back, batch.ToDelta());
  EXPECT_TRUE(back.EqualContents(d));
}

TEST(ColumnBatchTest, GatherRowsSelectsAndSharesArena) {
  Relation r = MakeRelation("R(a, s string)",
                            {Tuple({1, "one"}), Tuple({2, "two"}),
                             Tuple({3, "three"})});
  ColumnBatch batch = ColumnBatch::FromRelation(r);
  // Find the row with a = 2.
  uint32_t row2 = 0;
  for (size_t i = 0; i < batch.rows(); ++i) {
    if (batch.ValueAt(0, i).AsInt() == 2) row2 = static_cast<uint32_t>(i);
  }
  ColumnBatch g = batch.GatherRows({row2, row2});
  EXPECT_EQ(g.rows(), 2u);
  EXPECT_EQ(g.arena(), batch.arena());  // ids remain decodable
  EXPECT_EQ(g.ValueAt(1, 0).AsString(), "two");
  EXPECT_EQ(g.ValueAt(1, 1).AsString(), "two");
}

TEST(ColumnBatchTest, ProjectColumnsReordersUnderNewSchema) {
  Relation r = MakeRelation("R(a, b)", {Tuple({1, 10}), Tuple({2, 20})});
  ColumnBatch batch = ColumnBatch::FromRelation(r);
  SQ_ASSERT_OK_AND_ASSIGN(Schema out_schema,
                          r.schema().Project({"b", "a"}));
  ColumnBatch proj = batch.ProjectColumns({1, 0}, out_schema);
  SQ_ASSERT_OK_AND_ASSIGN(Relation back, proj.ToRelation(Semantics::kBag));
  EXPECT_EQ(Rows(back), "(10, 1) (20, 2) ");
}

TEST(ColumnBatchTest, PartialBuildLeavesOtherColumnsEmpty) {
  Relation r = MakeRelation("R(a, b, c)", {Tuple({1, 2, 3})});
  std::vector<size_t> only = {1};
  ColumnBatch batch = ColumnBatch::FromRelation(r, &only);
  EXPECT_EQ(batch.rows(), 1u);
  EXPECT_TRUE(batch.column(0).tags.empty());
  EXPECT_EQ(batch.column(1).tags.size(), 1u);
  EXPECT_TRUE(batch.column(2).tags.empty());
}

// ---------------------------------------------------------------------------
// EvalPredicate vs the scalar oracle
// ---------------------------------------------------------------------------

// Evaluates pred over rel both ways and asserts identical keep-sets.
void ExpectPredicateParity(const Relation& rel, const std::string& pred) {
  Expr::Ptr cond = Pred(pred);
  SQ_ASSERT_OK_AND_ASSIGN(BoundExpr bound,
                          BoundExpr::Bind(cond, rel.schema()));
  ColumnBatch batch = ColumnBatch::FromRelation(rel);
  auto vec = columnar::EvalPredicate(bound, batch);
  // Scalar oracle over the same row order.
  std::vector<uint32_t> expected;
  Status scalar_error = Status::OK();
  for (size_t r = 0; r < batch.rows(); ++r) {
    auto keep = bound.EvalBool(batch.RowAt(r));
    if (!keep.ok()) {
      scalar_error = keep.status();
      break;
    }
    if (*keep) expected.push_back(static_cast<uint32_t>(r));
  }
  if (!scalar_error.ok()) {
    EXPECT_FALSE(vec.ok()) << pred << ": scalar errored ("
                           << scalar_error.ToString()
                           << ") but vectorized succeeded";
    return;
  }
  ASSERT_TRUE(vec.ok()) << pred << ": " << vec.status().ToString();
  EXPECT_EQ(*vec, expected) << pred;
}

TEST(EvalPredicateTest, MatchesScalarOnIntColumns) {
  Relation r(MakeSchema("R(a, b)"), Semantics::kBag);
  for (int i = -5; i <= 5; ++i) {
    SQ_ASSERT_OK(r.Insert(Tuple({i, i * i}), 1 + (i & 3)));
  }
  for (const char* pred :
       {"a > 0", "a >= b", "a + b = 6", "a * a - b = 0", "b / a > 1",
        "a < 0 OR b > 10", "a > -3 AND a < 3", "NOT (a = 0)", "a - b <= -2",
        "-a = 3"}) {
    ExpectPredicateParity(r, pred);
  }
}

TEST(EvalPredicateTest, MatchesScalarOnMixedAndNullColumns) {
  Relation r(MakeSchema("R(a, x double, s string)"), Semantics::kBag);
  SQ_ASSERT_OK(r.Insert(Tuple({1, 1.5, "p"}), 1));
  SQ_ASSERT_OK(r.Insert(Tuple({2, 2.0, "q"}), 2));
  SQ_ASSERT_OK(r.Insert(Tuple({Value(), -0.0, ""}), 1));
  SQ_ASSERT_OK(r.Insert(Tuple({4, Value(), "p"}), 1));
  for (const char* pred :
       {"a < x", "x = 2", "x >= 0", "s = 'p'", "s != 'q'", "a + x > 3",
        "a = a", "x / 0 = 1", "NOT (x < 1)"}) {
    ExpectPredicateParity(r, pred);
  }
}

TEST(EvalPredicateTest, DivisionByZeroYieldsNullNotError) {
  Relation r = MakeRelation("R(a)", {Tuple({0}), Tuple({2})});
  // 4 / 0 -> NULL -> not truthy; 4 / 2 = 2 -> truthy.
  ExpectPredicateParity(r, "4 / a = 2");
}

TEST(EvalPredicateTest, TypeErrorsMatchScalar) {
  Relation r = MakeRelation("R(a, s string)", {Tuple({1, "x"})});
  // Arithmetic on a string errors in both engines.
  ExpectPredicateParity(r, "a + s > 0");
  // Comparison across numeric/string boundary errors in both engines.
  ExpectPredicateParity(r, "a < s");
}

TEST(EvalPredicateTest, ConstantFoldsSelectAllOrNone) {
  Relation r = MakeRelation("R(a)", {Tuple({1}), Tuple({2}), Tuple({3})});
  ExpectPredicateParity(r, "1 = 1");
  ExpectPredicateParity(r, "1 = 2");
}

// ---------------------------------------------------------------------------
// Kernel parity against the row operators
// ---------------------------------------------------------------------------

// Runs fn twice — row mode and columnar mode (threshold 0) — and asserts
// bag-identical relations.
template <typename Fn>
void ExpectRelationParity(Fn fn) {
  Relation row_result, col_result;
  {
    columnar::ScopedColumnarMode row_mode(false);
    auto res = fn();
    SQ_ASSERT_OK(res.status());
    row_result = std::move(res).value();
  }
  {
    columnar::ScopedColumnarMode col_mode(true, /*min_rows=*/0);
    auto res = fn();
    SQ_ASSERT_OK(res.status());
    col_result = std::move(res).value();
  }
  EXPECT_TRUE(col_result.EqualContents(row_result))
      << "columnar:\n" << col_result.ToString()
      << "row:\n" << row_result.ToString();
  EXPECT_EQ(col_result.semantics(), row_result.semantics());
  EXPECT_EQ(Rows(col_result), Rows(row_result));
}

template <typename Fn>
void ExpectDeltaParity(Fn fn) {
  Delta row_result, col_result;
  {
    columnar::ScopedColumnarMode row_mode(false);
    auto res = fn();
    SQ_ASSERT_OK(res.status());
    row_result = std::move(res).value();
  }
  {
    columnar::ScopedColumnarMode col_mode(true, /*min_rows=*/0);
    auto res = fn();
    SQ_ASSERT_OK(res.status());
    col_result = std::move(res).value();
  }
  EXPECT_TRUE(col_result.EqualContents(row_result))
      << "columnar: " << col_result.ToString()
      << "\nrow: " << row_result.ToString();
}

TEST(ColumnarKernelTest, SelectParity) {
  Relation r(MakeSchema("R(a, b, s string)"), Semantics::kBag);
  for (int i = 0; i < 40; ++i) {
    SQ_ASSERT_OK(
        r.Insert(Tuple({i, i % 7, i % 2 ? "odd" : "even"}), 1 + i % 3));
  }
  SQ_ASSERT_OK(r.Insert(Tuple({100, Value(), "odd"}), 2));
  for (const char* pred :
       {"a > 20", "b = 3 AND s = 'odd'", "a * b < 50", "b != 0 OR a = 100"}) {
    ExpectRelationParity([&] { return OpSelect(r, Pred(pred)); });
  }
}

TEST(ColumnarKernelTest, ProjectParityBagAndSet) {
  Relation r(MakeSchema("R(a, b, s string)"), Semantics::kBag);
  for (int i = 0; i < 30; ++i) {
    SQ_ASSERT_OK(r.Insert(Tuple({i % 5, i, "s" + std::to_string(i % 3)}), 2));
  }
  ExpectRelationParity(
      [&] { return OpProject(r, {"a"}, Semantics::kBag); });
  ExpectRelationParity(
      [&] { return OpProject(r, {"a", "s"}, Semantics::kSet); });
  ExpectRelationParity(
      [&] { return OpProject(r, {"s", "a"}, Semantics::kBag); });
}

TEST(ColumnarKernelTest, JoinParityEquiAndResidual) {
  Relation l(MakeSchema("L(k, a)"), Semantics::kBag);
  Relation r(MakeSchema("R(k2, b)"), Semantics::kBag);
  for (int i = 0; i < 25; ++i) {
    SQ_ASSERT_OK(l.Insert(Tuple({i % 8, i}), 1 + i % 2));
    SQ_ASSERT_OK(r.Insert(Tuple({i % 6, 100 - i}), 1 + i % 3));
  }
  ExpectRelationParity([&] { return OpJoin(l, r, Pred("k = k2")); });
  ExpectRelationParity(
      [&] { return OpJoin(l, r, Pred("k = k2 AND a + b < 105")); });
}

TEST(ColumnarKernelTest, JoinParityStringKeysAndProbeMiss) {
  Relation l = MakeRelation("L(s string, a)",
                            {Tuple({"x", 1}), Tuple({"y", 2}),
                             Tuple({"z", 3})});
  Relation r = MakeRelation("R(t string, b)",
                            {Tuple({"y", 10}), Tuple({"nope", 20})});
  ExpectRelationParity([&] { return OpJoin(l, r, Pred("s = t")); });
}

TEST(ColumnarKernelTest, JoinParityIntVsIntegralDoubleKeys) {
  // Value equality makes 2 and 2.0 the same join key; 2.5 matches nothing.
  Relation l = MakeRelation("L(k double, a)",
                            {Tuple({2.0, 1}), Tuple({2.5, 2}),
                             Tuple({-0.0, 3})});
  Relation r = MakeRelation("R(k2, b)", {Tuple({2, 10}), Tuple({0, 20})});
  ExpectRelationParity([&] { return OpJoin(l, r, Pred("k = k2")); });
}

TEST(ColumnarKernelTest, JoinParityNullKeys) {
  // OpJoin's hash path matches NULL keys to each other (Value equality);
  // both engines must agree.
  Relation l = MakeRelation("L(k, a)", {Tuple({Value(), 1}), Tuple({5, 2})});
  Relation r = MakeRelation("R(k2, b)",
                            {Tuple({Value(), 10}), Tuple({5, 20})});
  ExpectRelationParity([&] { return OpJoin(l, r, Pred("k = k2")); });
}

TEST(ColumnarKernelTest, JoinParitySkewedBags) {
  // Regression for the build-side tie-break: one side has few distinct rows
  // with huge multiplicities, the other many distinct rows. Counts must
  // multiply identically whichever side builds.
  Relation skew(MakeSchema("L(k, a)"), Semantics::kBag);
  SQ_ASSERT_OK(skew.Insert(Tuple({1, 1}), 1000));
  SQ_ASSERT_OK(skew.Insert(Tuple({2, 2}), 500));
  Relation wide(MakeSchema("R(k2, b)"), Semantics::kBag);
  for (int i = 0; i < 50; ++i) {
    SQ_ASSERT_OK(wide.Insert(Tuple({i % 3, i}), 1));
  }
  ExpectRelationParity([&] { return OpJoin(skew, wide, Pred("k = k2")); });
  ExpectRelationParity([&] { return OpJoin(wide, skew, Pred("k2 = k")); });
}

TEST(ColumnarKernelTest, DeltaSelectProjectJoinParity) {
  Delta d(MakeSchema("D(k, a)"));
  for (int i = 0; i < 30; ++i) {
    SQ_ASSERT_OK(d.Add(Tuple({i % 9, i}), (i % 2) ? 2 : -1));
  }
  Relation rel(MakeSchema("R(k2, b)"), Semantics::kBag);
  for (int i = 0; i < 20; ++i) {
    SQ_ASSERT_OK(rel.Insert(Tuple({i % 5, i}), 1 + i % 2));
  }
  ExpectDeltaParity([&] { return DeltaSelect(d, Pred("a > 10")); });
  ExpectDeltaParity([&] { return DeltaProject(d, {"k"}); });
  ExpectDeltaParity([&] { return DeltaJoinRelation(d, rel, Pred("k = k2")); });
  ExpectDeltaParity([&] { return RelationJoinDelta(rel, d, Pred("k2 = k")); });
  ExpectDeltaParity([&] {
    return DeltaJoinRelation(d, rel, Pred("k = k2 AND a + b > 12"));
  });
}

TEST(ColumnarKernelTest, DeltaJoinDropsNullKeysLikeRowKernel) {
  // JoinDeltaWithRelation re-evaluates the full condition on joined rows,
  // so NULL = NULL matches in the table but is then filtered out. The
  // columnar kernel must reproduce that (it differs from OpJoin!).
  Delta d(MakeSchema("D(k, a)"));
  SQ_ASSERT_OK(d.Add(Tuple({Value(), 1}), 1));
  SQ_ASSERT_OK(d.Add(Tuple({3, 2}), 1));
  Relation rel = MakeRelation("R(k2, b)",
                              {Tuple({Value(), 10}), Tuple({3, 20})});
  ExpectDeltaParity([&] { return DeltaJoinRelation(d, rel, Pred("k = k2")); });
  {
    columnar::ScopedColumnarMode col_mode(true, 0);
    SQ_ASSERT_OK_AND_ASSIGN(Delta out,
                            DeltaJoinRelation(d, rel, Pred("k = k2")));
    EXPECT_EQ(out.AtomCount(), 1u);  // only the (3,...) pair survives
  }
}

TEST(ColumnarKernelTest, BetweenParity) {
  Relation from(MakeSchema("R(a, s string)"), Semantics::kBag);
  Relation to(MakeSchema("R(a, s string)"), Semantics::kBag);
  for (int i = 0; i < 30; ++i) {
    SQ_ASSERT_OK(from.Insert(Tuple({i, "v" + std::to_string(i % 4)}), 1 + i % 3));
  }
  for (int i = 10; i < 40; ++i) {
    SQ_ASSERT_OK(to.Insert(Tuple({i, "v" + std::to_string(i % 4)}), 1 + i % 2));
  }
  ExpectDeltaParity([&] { return Delta::Between(from, to); });
  ExpectDeltaParity([&] { return Delta::Between(to, from); });
  // Applying the columnar-computed delta really transforms from into to.
  {
    columnar::ScopedColumnarMode col_mode(true, 0);
    SQ_ASSERT_OK_AND_ASSIGN(Delta d, Delta::Between(from, to));
    Relation applied = from;
    SQ_ASSERT_OK(ApplyDelta(&applied, d));
    EXPECT_TRUE(applied.EqualContents(to));
  }
}

TEST(ColumnarKernelTest, SelectErrorParity) {
  Relation r = MakeRelation("R(a, s string)", {Tuple({1, "x"})});
  columnar::ScopedColumnarMode col_mode(true, 0);
  auto res = OpSelect(r, Pred("a + s > 0"));
  EXPECT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// PackedJoinTable
// ---------------------------------------------------------------------------

TEST(PackedJoinTableTest, ChainsDuplicateKeysAndMissesAbsentStrings) {
  columnar::PackedJoinTable table(1);
  std::vector<size_t> pos = {0};
  Tuple a1({Value("k1")});
  Tuple a2({Value("k1")});
  Tuple b({Value("k2")});
  EXPECT_EQ(table.AddBuildRow(a1, pos), 0);
  EXPECT_EQ(table.AddBuildRow(a2, pos), 1);
  EXPECT_EQ(table.AddBuildRow(b, pos), 2);
  table.Finalize();
  // Both k1 rows reachable through the chain.
  int32_t hit = table.ProbeRow(Tuple({Value("k1")}), pos);
  ASSERT_GE(hit, 0);
  int32_t second = table.NextInChain(hit);
  ASSERT_GE(second, 0);
  EXPECT_EQ(table.NextInChain(second), -1);
  EXPECT_NE(hit, second);
  // Probe-side string never interned -> guaranteed miss, arena untouched.
  EXPECT_EQ(table.ProbeRow(Tuple({Value("absent")}), pos), -1);
}

TEST(PackedJoinTableTest, NormalizesIntegralDoubleAndNegZeroKeys) {
  columnar::PackedJoinTable table(1);
  std::vector<size_t> pos = {0};
  table.AddBuildRow(Tuple({2}), pos);
  table.AddBuildRow(Tuple({0}), pos);
  table.Finalize();
  EXPECT_GE(table.ProbeRow(Tuple({2.0}), pos), 0);   // 2.0 == 2
  EXPECT_GE(table.ProbeRow(Tuple({-0.0}), pos), 0);  // -0.0 == 0
  EXPECT_EQ(table.ProbeRow(Tuple({2.5}), pos), -1);
}

TEST(PackedJoinTableTest, NullKeysMatchEachOther) {
  columnar::PackedJoinTable table(2);
  std::vector<size_t> pos = {0, 1};
  table.AddBuildRow(Tuple({Value(), 7}), pos);
  table.Finalize();
  EXPECT_GE(table.ProbeRow(Tuple({Value(), 7}), pos), 0);
  EXPECT_EQ(table.ProbeRow(Tuple({Value(), 8}), pos), -1);
}

TEST(PackedJoinTableTest, EmptyTableProbesMiss) {
  columnar::PackedJoinTable table(1);
  table.Finalize();
  EXPECT_EQ(table.ProbeRow(Tuple({1}), {0}), -1);
}

// ---------------------------------------------------------------------------
// Memoized tuple hash (satellite: cached TupleHash)
// ---------------------------------------------------------------------------

TEST(TupleHashMemoTest, HashStableAndCarriedByCopyAndMove) {
  Tuple t({1, "abc", 2.5});
  uint64_t h = t.Hash();
  EXPECT_EQ(t.Hash(), h);  // memoized second call
  Tuple copy = t;
  EXPECT_EQ(copy.Hash(), h);
  Tuple moved = std::move(copy);
  EXPECT_EQ(moved.Hash(), h);
}

TEST(TupleHashMemoTest, MutationInvalidatesCache) {
  Tuple t({1, 2});
  uint64_t h = t.Hash();
  t.at(0) = Value(99);
  EXPECT_NE(t.Hash(), h);
  EXPECT_EQ(t.Hash(), Tuple({99, 2}).Hash());
  Tuple u({1, 2});
  (void)u.Hash();
  u.Append(Value(3));
  EXPECT_EQ(u.Hash(), Tuple({1, 2, 3}).Hash());
}

// ---------------------------------------------------------------------------
// Dispatch plumbing
// ---------------------------------------------------------------------------

TEST(ColumnarModeTest, ScopedModeRestoresPreviousState) {
  bool prev_enabled = columnar::Enabled();
  size_t prev_min = columnar::MinRows();
  {
    columnar::ScopedColumnarMode mode(!prev_enabled, 0);
    EXPECT_EQ(columnar::Enabled(), !prev_enabled);
    EXPECT_EQ(columnar::MinRows(), 0u);
  }
  EXPECT_EQ(columnar::Enabled(), prev_enabled);
  EXPECT_EQ(columnar::MinRows(), prev_min);
}

TEST(ColumnarModeTest, ThresholdRoutesSmallInputsToRowPath) {
  columnar::ScopedColumnarMode mode(true, 10);
  EXPECT_FALSE(columnar::ShouldUse(9));
  EXPECT_TRUE(columnar::ShouldUse(10));
  columnar::SetEnabled(false);
  EXPECT_FALSE(columnar::ShouldUse(10));
}

}  // namespace
}  // namespace squirrel
