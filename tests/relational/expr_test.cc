#include "relational/expr.h"

#include <gtest/gtest.h>

#include "testing/util.h"

namespace squirrel {
namespace {

using testing::MakeSchema;
using testing::Pred;

Result<Value> EvalOn(const std::string& pred, const std::string& schema,
                     const Tuple& t) {
  auto e = ParsePredicate(pred);
  if (!e.ok()) return e.status();
  auto bound = BoundExpr::Bind(*e, MakeSchema(schema));
  if (!bound.ok()) return bound.status();
  return bound->Eval(t);
}

bool BoolOn(const std::string& pred, const std::string& schema,
            const Tuple& t) {
  auto e = ParsePredicate(pred);
  EXPECT_TRUE(e.ok());
  auto bound = BoundExpr::Bind(*e, MakeSchema(schema));
  EXPECT_TRUE(bound.ok()) << bound.status().ToString();
  auto r = bound->EvalBool(t);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.ok() && *r;
}

TEST(ExprTest, Comparisons) {
  EXPECT_TRUE(BoolOn("a = 5", "R(a)", Tuple({5})));
  EXPECT_FALSE(BoolOn("a = 5", "R(a)", Tuple({6})));
  EXPECT_TRUE(BoolOn("a != 5", "R(a)", Tuple({6})));
  EXPECT_TRUE(BoolOn("a < 5", "R(a)", Tuple({4})));
  EXPECT_TRUE(BoolOn("a <= 5", "R(a)", Tuple({5})));
  EXPECT_TRUE(BoolOn("a > 5", "R(a)", Tuple({6})));
  EXPECT_TRUE(BoolOn("a >= 5", "R(a)", Tuple({5})));
}

TEST(ExprTest, Arithmetic) {
  SQ_ASSERT_OK_AND_ASSIGN(Value v,
                          EvalOn("a * a + b", "R(a, b)", Tuple({3, 4})));
  EXPECT_EQ(v, Value(13));
  SQ_ASSERT_OK_AND_ASSIGN(Value d, EvalOn("a / 2", "R(a)", Tuple({7})));
  EXPECT_EQ(d, Value(3));  // integer division
  SQ_ASSERT_OK_AND_ASSIGN(Value f,
                          EvalOn("a / 2.0", "R(a)", Tuple({7})));
  EXPECT_EQ(f, Value(3.5));
}

TEST(ExprTest, Example51JoinCondition) {
  // a1*a1 + a2 < b2*b2 from Figure 4.
  std::string schema = "R(a1, a2, b1, b2)";
  EXPECT_TRUE(BoolOn("a1*a1 + a2 < b2*b2", schema, Tuple({2, 3, 0, 3})));
  EXPECT_FALSE(BoolOn("a1*a1 + a2 < b2*b2", schema, Tuple({3, 1, 0, 3})));
}

TEST(ExprTest, BooleanConnectives) {
  EXPECT_TRUE(BoolOn("a = 1 AND b = 2", "R(a, b)", Tuple({1, 2})));
  EXPECT_FALSE(BoolOn("a = 1 AND b = 2", "R(a, b)", Tuple({1, 3})));
  EXPECT_TRUE(BoolOn("a = 1 OR b = 2", "R(a, b)", Tuple({0, 2})));
  EXPECT_TRUE(BoolOn("NOT a = 1", "R(a)", Tuple({2})));
  EXPECT_TRUE(BoolOn("not (a = 1 and b = 2)", "R(a, b)", Tuple({1, 3})));
}

TEST(ExprTest, OperatorPrecedence) {
  // AND binds tighter than OR.
  EXPECT_TRUE(BoolOn("a = 9 OR a = 1 AND b = 1", "R(a, b)", Tuple({9, 0})));
  EXPECT_FALSE(BoolOn("(a = 9 OR a = 1) AND b = 1", "R(a, b)",
                      Tuple({9, 0})));
  // * binds tighter than +.
  SQ_ASSERT_OK_AND_ASSIGN(Value v, EvalOn("1 + 2 * 3", "R(a)", Tuple({0})));
  EXPECT_EQ(v, Value(7));
}

TEST(ExprTest, NullPropagation) {
  SQ_ASSERT_OK_AND_ASSIGN(Value v, EvalOn("a + 1", "R(a)", Tuple({Value()})));
  EXPECT_TRUE(v.is_null());
  // NULL comparison is not an error; it is false as a predicate.
  EXPECT_FALSE(BoolOn("a < 5", "R(a)", Tuple({Value()})));
}

TEST(ExprTest, DivisionByZeroYieldsNull) {
  SQ_ASSERT_OK_AND_ASSIGN(Value v, EvalOn("a / 0", "R(a)", Tuple({3})));
  EXPECT_TRUE(v.is_null());
  SQ_ASSERT_OK_AND_ASSIGN(Value d, EvalOn("a / 0.0", "R(a)", Tuple({3})));
  EXPECT_TRUE(d.is_null());
}

TEST(ExprTest, StringComparison) {
  EXPECT_TRUE(BoolOn("s = 'abc'", "R(s string)", Tuple({"abc"})));
  EXPECT_TRUE(BoolOn("s < 'b'", "R(s string)", Tuple({"abc"})));
}

TEST(ExprTest, TypeMismatchIsError) {
  auto r = EvalOn("s + 1", "R(s string)", Tuple({"abc"}));
  EXPECT_FALSE(r.ok());
  auto c = EvalOn("s < 1", "R(s string)", Tuple({"abc"}));
  EXPECT_FALSE(c.ok());
}

TEST(ExprTest, BindRejectsUnknownAttr) {
  auto e = ParsePredicate("zzz = 1");
  ASSERT_TRUE(e.ok());
  EXPECT_FALSE(BoundExpr::Bind(*e, MakeSchema("R(a)")).ok());
}

TEST(ExprTest, ReferencedAttrs) {
  Expr::Ptr e = Pred("a = 1 AND b * c < d");
  EXPECT_EQ(e->ReferencedAttrs(),
            (std::vector<std::string>{"a", "b", "c", "d"}));
}

TEST(ExprTest, ConjunctiveClausesFlattensNestedAnds) {
  Expr::Ptr e = Pred("a = 1 AND (b = 2 AND c = 3) AND d = 4");
  auto clauses = ConjunctiveClauses(e);
  EXPECT_EQ(clauses.size(), 4u);
}

TEST(ExprTest, ConjunctiveClausesKeepsOrWhole) {
  Expr::Ptr e = Pred("a = 1 OR b = 2");
  auto clauses = ConjunctiveClauses(e);
  EXPECT_EQ(clauses.size(), 1u);
}

TEST(ExprTest, AndAllOfNothingIsTrue) {
  EXPECT_TRUE(AndAll({})->IsTrueLiteral());
}

TEST(ExprTest, AndOrHelpersAbsorbTrue) {
  Expr::Ptr t = Expr::True();
  Expr::Ptr p = Pred("a = 1");
  EXPECT_TRUE(Expr::And(t, p)->Equals(*p));
  EXPECT_TRUE(Expr::And(nullptr, p)->Equals(*p));
  EXPECT_TRUE(Expr::Or(t, p)->IsTrueLiteral());
}

TEST(ExprTest, StructuralEquality) {
  EXPECT_TRUE(Pred("a = 1 AND b < 2")->Equals(*Pred("a = 1 AND b < 2")));
  EXPECT_FALSE(Pred("a = 1")->Equals(*Pred("a = 2")));
  EXPECT_FALSE(Pred("a = 1")->Equals(*Pred("b = 1")));
}

TEST(ExprTest, SplitJoinConditionExtractsEquiPairs) {
  Schema l = MakeSchema("L(a, b)");
  Schema r = MakeSchema("R(c, d)");
  auto parts = SplitJoinCondition(Pred("a = c AND b < d"), l, r);
  ASSERT_EQ(parts.equi.size(), 1u);
  EXPECT_EQ(parts.equi[0].left_attr, "a");
  EXPECT_EQ(parts.equi[0].right_attr, "c");
  EXPECT_FALSE(parts.residual->IsTrueLiteral());
}

TEST(ExprTest, SplitJoinConditionReversedSides) {
  Schema l = MakeSchema("L(a)");
  Schema r = MakeSchema("R(c)");
  auto parts = SplitJoinCondition(Pred("c = a"), l, r);
  ASSERT_EQ(parts.equi.size(), 1u);
  EXPECT_EQ(parts.equi[0].left_attr, "a");
  EXPECT_EQ(parts.equi[0].right_attr, "c");
  EXPECT_TRUE(parts.residual->IsTrueLiteral());
}

TEST(ExprTest, SplitJoinConditionNonEquiAllResidual) {
  Schema l = MakeSchema("L(a)");
  Schema r = MakeSchema("R(c)");
  auto parts = SplitJoinCondition(Pred("a < c"), l, r);
  EXPECT_TRUE(parts.equi.empty());
  EXPECT_FALSE(parts.residual->IsTrueLiteral());
}

TEST(ExprTest, UnaryMinus) {
  SQ_ASSERT_OK_AND_ASSIGN(Value v, EvalOn("-a + 1", "R(a)", Tuple({3})));
  EXPECT_EQ(v, Value(-2));
}

TEST(ExprTest, ToStringRoundTripsThroughParser) {
  Expr::Ptr e = Pred("a1*a1 + a2 < b2*b2 AND c = 'x'");
  auto reparsed = ParsePredicate(e->ToString());
  ASSERT_TRUE(reparsed.ok()) << e->ToString();
  EXPECT_TRUE(e->Equals(**reparsed));
}

}  // namespace
}  // namespace squirrel
