#include <gtest/gtest.h>

#include "baselines/virtual_mediator.h"
#include "baselines/zgh_warehouse.h"
#include "testing/harness.h"
#include "testing/util.h"
#include "vdp/paper_examples.h"

namespace squirrel {
namespace {

using testing::MakeSchema;
using testing::Rows;

class VirtualMediatorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db1_ = std::make_unique<SourceDb>("DB1");
    db2_ = std::make_unique<SourceDb>("DB2");
    SQ_ASSERT_OK(
        db1_->AddRelation("R", MakeSchema("R(r1, r2, r3, r4) key(r1)")));
    SQ_ASSERT_OK(db2_->AddRelation("S", MakeSchema("S(s1, s2, s3) key(s1)")));
    SQ_ASSERT_OK(db1_->InsertTuple(0, "R", Tuple({1, 100, 11, 100})));
    SQ_ASSERT_OK(db1_->InsertTuple(0, "R", Tuple({2, 100, 22, 7})));
    SQ_ASSERT_OK(db2_->InsertTuple(0, "S", Tuple({100, 5, 10})));

    PlannerInput input;
    input.scans["R"] = {"DB1", "R", MakeSchema("R(r1, r2, r3, r4) key(r1)")};
    input.scans["S"] = {"DB2", "S", MakeSchema("S(s1, s2, s3) key(s1)")};
    auto view = ParseAlgebra(
        "project[r1, r3, s1, s2](select[r4 = 100](R) join[r2 = s1] "
        "select[s3 < 50](S))");
    ASSERT_TRUE(view.ok());
    input.exports.push_back({"T", *view});

    std::vector<SourceSetup> setups = {{db1_.get(), 0.5, 0.2, 0.0},
                                       {db2_.get(), 0.5, 0.2, 0.0}};
    auto med = VirtualMediator::Create(std::move(input), setups, &scheduler_,
                                       /*q_proc_delay=*/0.1);
    ASSERT_TRUE(med.ok()) << med.status().ToString();
    mediator_ = std::move(med).value();
    SQ_ASSERT_OK(mediator_->Start());
  }

  Scheduler scheduler_;
  std::unique_ptr<SourceDb> db1_, db2_;
  std::unique_ptr<VirtualMediator> mediator_;
};

TEST_F(VirtualMediatorTest, AnswersAreAlwaysCurrent) {
  std::vector<ViewAnswer> answers;
  auto q = [&](Time at) {
    scheduler_.At(at, [this, &answers]() {
      mediator_->SubmitQuery(ViewQuery{"T", {}, nullptr},
                             [&answers](Result<ViewAnswer> ans) {
                               ASSERT_TRUE(ans.ok())
                                   << ans.status().ToString();
                               answers.push_back(std::move(ans).value());
                             });
    });
  };
  q(1.0);
  scheduler_.At(5.0, [this]() {
    SQ_EXPECT_OK(db1_->InsertTuple(scheduler_.Now(), "R",
                                   Tuple({3, 100, 33, 100})));
  });
  q(10.0);
  scheduler_.RunUntil(100.0);
  ASSERT_EQ(answers.size(), 2u);
  EXPECT_EQ(Rows(answers[0].data), "(1, 11, 100, 5) ");
  EXPECT_EQ(Rows(answers[1].data), "(1, 11, 100, 5) (3, 33, 100, 5) ");
  // Every query decomposes: one poll per scanned relation.
  EXPECT_EQ(mediator_->stats().polls, 4u);
  EXPECT_GT(mediator_->stats().polled_tuples, 0u);
  // Latency includes the round trips.
  EXPECT_GT(answers[0].commit_time, 1.0);
}

TEST_F(VirtualMediatorTest, PushesQueryConditionsToSources) {
  uint64_t before = mediator_->stats().polled_tuples;
  bool done = false;
  scheduler_.At(1.0, [&]() {
    mediator_->SubmitQuery(
        ViewQuery{"T", {"r1"}, testing::Pred("r1 = 1")},
        [&](Result<ViewAnswer> ans) {
          ASSERT_TRUE(ans.ok());
          EXPECT_EQ(Rows(ans->data), "(1) ");
          done = true;
        });
  });
  scheduler_.RunUntil(100.0);
  ASSERT_TRUE(done);
  // The r1 = 1 clause was pushed to DB1: only one R row shipped (plus S).
  EXPECT_LE(mediator_->stats().polled_tuples - before, 2u);
}

TEST_F(VirtualMediatorTest, UnknownExportRejected) {
  bool failed = false;
  scheduler_.At(1.0, [&]() {
    mediator_->SubmitQuery(ViewQuery{"Nope", {}, nullptr},
                           [&](Result<ViewAnswer> ans) {
                             failed = !ans.ok();
                           });
  });
  scheduler_.RunUntil(50.0);
  EXPECT_TRUE(failed);
}

TEST_F(VirtualMediatorTest, QueriesSerialize) {
  std::vector<Time> commits;
  for (int i = 0; i < 3; ++i) {
    scheduler_.At(1.0, [this, &commits]() {
      mediator_->SubmitQuery(ViewQuery{"T", {"r1"}, nullptr},
                             [&commits](Result<ViewAnswer> ans) {
                               ASSERT_TRUE(ans.ok());
                               commits.push_back(ans->commit_time);
                             });
    });
  }
  scheduler_.RunUntil(100.0);
  ASSERT_EQ(commits.size(), 3u);
  EXPECT_LT(commits[0], commits[1]);
  EXPECT_LT(commits[1], commits[2]);
}

TEST(WarehouseAnnotationTest, ExportsMaterializedInteriorVirtual) {
  auto vdp = BuildFigure4Vdp();
  ASSERT_TRUE(vdp.ok());
  Annotation ann = WarehouseAnnotation(*vdp);
  EXPECT_TRUE(ann.FullyMaterialized(*vdp, "E"));
  EXPECT_TRUE(ann.FullyMaterialized(*vdp, "G"));
  EXPECT_TRUE(ann.FullyVirtual(*vdp, "A'"));
  EXPECT_TRUE(ann.FullyVirtual(*vdp, "F"));
  SQ_ASSERT_OK(ann.Validate(*vdp));
}

TEST(WarehouseAnnotationTest, FullyVirtualAnnotationCoversEverything) {
  auto vdp = BuildFigure1Vdp();
  ASSERT_TRUE(vdp.ok());
  Annotation ann = FullyVirtualAnnotation(*vdp);
  for (const auto& name : vdp->DerivedNames()) {
    EXPECT_TRUE(ann.FullyVirtual(*vdp, name)) << name;
  }
}

TEST(WarehouseAnnotationTest, WarehouseMaintainsViewByPolling) {
  // The ZGHW95 configuration: T materialized, R'/S' virtual. Every R update
  // needs S data -> polls; result must still match recomputation.
  auto vdp = BuildFigure1Vdp();
  ASSERT_TRUE(vdp.ok());
  auto db1 = std::make_unique<SourceDb>("DB1");
  auto db2 = std::make_unique<SourceDb>("DB2");
  SQ_ASSERT_OK(
      db1->AddRelation("R", MakeSchema("R(r1, r2, r3, r4) key(r1)")));
  SQ_ASSERT_OK(db2->AddRelation("S", MakeSchema("S(s1, s2, s3) key(s1)")));
  SQ_ASSERT_OK(db2->InsertTuple(0, "S", Tuple({100, 5, 10})));
  testing::DirectHarness h(std::move(vdp).value(), WarehouseAnnotation(
                               *BuildFigure1Vdp()),
                           {{"DB1", db1.get()}, {"DB2", db2.get()}});
  SQ_ASSERT_OK(h.Load());
  MultiDelta md;
  SQ_ASSERT_OK(md.Mutable("R", MakeSchema("R(r1, r2, r3, r4)"))
                   ->AddInsert(Tuple({1, 100, 11, 100})));
  SQ_ASSERT_OK_AND_ASSIGN(IupStats stats,
                          h.CommitAndPropagate("DB1", 1.0, md));
  EXPECT_GT(stats.polls, 0u);  // no auxiliary data -> must poll
  SQ_ASSERT_OK(h.VerifyRepos());
}

}  // namespace
}  // namespace squirrel
