#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/clock.h"
#include "sim/network.h"
#include "sim/scheduler.h"

namespace squirrel {
namespace {

TEST(SchedulerTest, EventsFireInTimeOrder) {
  Scheduler s;
  std::vector<int> fired;
  s.At(3.0, [&]() { fired.push_back(3); });
  s.At(1.0, [&]() { fired.push_back(1); });
  s.At(2.0, [&]() { fired.push_back(2); });
  s.Run();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(s.Now(), 3.0);
  EXPECT_EQ(s.EventsFired(), 3u);
}

TEST(SchedulerTest, TiesBreakByInsertionOrder) {
  Scheduler s;
  std::vector<int> fired;
  for (int i = 0; i < 5; ++i) {
    s.At(1.0, [&fired, i]() { fired.push_back(i); });
  }
  s.Run();
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SchedulerTest, HandlersMayScheduleMoreEvents) {
  Scheduler s;
  int count = 0;
  std::function<void()> chain = [&]() {
    if (++count < 5) s.After(1.0, chain);
  };
  s.After(1.0, chain);
  s.Run();
  EXPECT_EQ(count, 5);
  EXPECT_DOUBLE_EQ(s.Now(), 5.0);
}

TEST(SchedulerTest, RunUntilStopsAtBoundary) {
  Scheduler s;
  int count = 0;
  for (int i = 1; i <= 10; ++i) {
    s.At(i, [&]() { ++count; });
  }
  s.RunUntil(5.0);
  EXPECT_EQ(count, 5);
  EXPECT_DOUBLE_EQ(s.Now(), 5.0);
  EXPECT_EQ(s.Pending(), 5u);
  s.Run();
  EXPECT_EQ(count, 10);
}

TEST(SchedulerTest, PastTimesClampToNow) {
  Scheduler s;
  s.At(5.0, [&]() {
    // Scheduling "at 1.0" from time 5.0 fires immediately after.
    s.At(1.0, [&]() { EXPECT_DOUBLE_EQ(s.Now(), 5.0); });
  });
  s.Run();
}

TEST(SchedulerTest, MaxEventsBound) {
  Scheduler s;
  int count = 0;
  for (int i = 0; i < 10; ++i) s.At(i, [&]() { ++count; });
  size_t fired = s.Run(3);
  EXPECT_EQ(fired, 3u);
  EXPECT_EQ(count, 3);
}

TEST(ChannelTest, DeliversWithDelay) {
  Scheduler s;
  Channel<int> ch(&s, 2.0);
  std::vector<std::pair<Time, int>> got;
  ch.SetReceiver([&](int v) { got.push_back({s.Now(), v}); });
  s.At(1.0, [&]() { ch.Send(42); });
  s.Run();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_DOUBLE_EQ(got[0].first, 3.0);
  EXPECT_EQ(got[0].second, 42);
}

TEST(ChannelTest, FifoEvenWhenSentBackToBack) {
  Scheduler s;
  Channel<int> ch(&s, 1.0);
  std::vector<int> got;
  ch.SetReceiver([&](int v) { got.push_back(v); });
  s.At(0.0, [&]() {
    ch.Send(1);
    ch.Send(2);
    ch.Send(3);
  });
  s.Run();
  EXPECT_EQ(got, (std::vector<int>{1, 2, 3}));
}

TEST(ChannelTest, StatsCountMessages) {
  Scheduler s;
  Channel<std::string> ch(&s, 0.5);
  ch.SetReceiver([](std::string) {});
  s.At(0.0, [&]() {
    ch.Send("a");
    ch.Send("b");
  });
  s.Run();
  EXPECT_EQ(ch.stats().messages_sent, 2u);
  EXPECT_GE(ch.stats().total_delay, 1.0);
}

TEST(ChannelTest, DestroyedBeforeDeliveryDoesNotDangle) {
  // Regression: deliveries used to capture a raw `this`; a channel destroyed
  // with sends in flight made the scheduled event dereference freed memory.
  Scheduler s;
  int received = 0;
  {
    Channel<int> ch(&s, 5.0);
    ch.SetReceiver([&](int) { ++received; });
    s.At(0.0, [&]() { ch.Send(7); });
    s.RunUntil(1.0);  // send happened, delivery still pending at t=5
  }
  s.Run();  // the orphaned delivery must be a no-op, not a crash
  EXPECT_EQ(received, 0);
}

TEST(ChannelTest, FaultHookDropAndDuplicateStats) {
  Scheduler s;
  Channel<int> ch(&s, 1.0);
  std::vector<int> got;
  ch.SetReceiver([&](int v) { got.push_back(v); });
  int call = 0;
  ch.SetFaultHook([&call](Time, Time) -> std::vector<Time> {
    ++call;
    if (call == 1) return {};          // black-hole the first send
    if (call == 2) return {0.0, 2.0};  // duplicate the second
    return {0.0};
  });
  s.At(0.0, [&]() {
    ch.Send(1);
    ch.Send(2);
    ch.Send(3);
  });
  s.Run();
  // The duplicate of 2 lands at 3.0 and advances the monotone clamp, so 3
  // (nominally 1.0) is held until 3.0 and delivered after it: a duplicated
  // retransmission never lets a later message overtake it.
  EXPECT_EQ(got, (std::vector<int>{2, 2, 3}));
  EXPECT_EQ(ch.stats().messages_sent, 2u);
  EXPECT_EQ(ch.stats().messages_dropped, 1u);
  EXPECT_EQ(ch.stats().duplicate_deliveries, 1u);
}

TEST(ChannelTest, FifoPreservedUnderJitter) {
  // A big extra delay on an early message must not let later ones overtake:
  // the clamp turns the fault into in-order delivery with bunched arrivals.
  Scheduler s;
  Channel<int> ch(&s, 1.0);
  std::vector<std::pair<Time, int>> got;
  ch.SetReceiver([&](int v) { got.push_back({s.Now(), v}); });
  int call = 0;
  ch.SetFaultHook([&call](Time, Time) -> std::vector<Time> {
    return ++call == 1 ? std::vector<Time>{4.0} : std::vector<Time>{0.0};
  });
  s.At(0.0, [&]() {
    ch.Send(1);  // would land at 5.0
    ch.Send(2);  // nominally 1.0, clamped to 5.0
  });
  s.Run();
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].second, 1);
  EXPECT_EQ(got[1].second, 2);
  EXPECT_DOUBLE_EQ(got[0].first, 5.0);
  EXPECT_DOUBLE_EQ(got[1].first, 5.0);
}

TEST(TimeVectorTest, LeqComponentwise) {
  EXPECT_TRUE(TimeVectorLeq({1, 2}, {1, 3}));
  EXPECT_FALSE(TimeVectorLeq({1, 4}, {1, 3}));
  EXPECT_FALSE(TimeVectorLeq({1, 2}, {1, 2, 3}));  // arity mismatch
  EXPECT_TRUE(TimeVectorLeq({}, {}));
}

TEST(TimeVectorTest, ToString) {
  EXPECT_EQ(TimeVectorToString({1.5, 2}), "<1.5, 2>");
  EXPECT_EQ(TimeVectorToString({}), "<>");
}

}  // namespace
}  // namespace squirrel
