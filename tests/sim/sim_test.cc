#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/clock.h"
#include "sim/network.h"
#include "sim/scheduler.h"

namespace squirrel {
namespace {

TEST(SchedulerTest, EventsFireInTimeOrder) {
  Scheduler s;
  std::vector<int> fired;
  s.At(3.0, [&]() { fired.push_back(3); });
  s.At(1.0, [&]() { fired.push_back(1); });
  s.At(2.0, [&]() { fired.push_back(2); });
  s.Run();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(s.Now(), 3.0);
  EXPECT_EQ(s.EventsFired(), 3u);
}

TEST(SchedulerTest, TiesBreakByInsertionOrder) {
  Scheduler s;
  std::vector<int> fired;
  for (int i = 0; i < 5; ++i) {
    s.At(1.0, [&fired, i]() { fired.push_back(i); });
  }
  s.Run();
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SchedulerTest, HandlersMayScheduleMoreEvents) {
  Scheduler s;
  int count = 0;
  std::function<void()> chain = [&]() {
    if (++count < 5) s.After(1.0, chain);
  };
  s.After(1.0, chain);
  s.Run();
  EXPECT_EQ(count, 5);
  EXPECT_DOUBLE_EQ(s.Now(), 5.0);
}

TEST(SchedulerTest, RunUntilStopsAtBoundary) {
  Scheduler s;
  int count = 0;
  for (int i = 1; i <= 10; ++i) {
    s.At(i, [&]() { ++count; });
  }
  s.RunUntil(5.0);
  EXPECT_EQ(count, 5);
  EXPECT_DOUBLE_EQ(s.Now(), 5.0);
  EXPECT_EQ(s.Pending(), 5u);
  s.Run();
  EXPECT_EQ(count, 10);
}

TEST(SchedulerTest, PastTimesClampToNow) {
  Scheduler s;
  s.At(5.0, [&]() {
    // Scheduling "at 1.0" from time 5.0 fires immediately after.
    s.At(1.0, [&]() { EXPECT_DOUBLE_EQ(s.Now(), 5.0); });
  });
  s.Run();
}

TEST(SchedulerTest, MaxEventsBound) {
  Scheduler s;
  int count = 0;
  for (int i = 0; i < 10; ++i) s.At(i, [&]() { ++count; });
  size_t fired = s.Run(3);
  EXPECT_EQ(fired, 3u);
  EXPECT_EQ(count, 3);
}

TEST(ChannelTest, DeliversWithDelay) {
  Scheduler s;
  Channel<int> ch(&s, 2.0);
  std::vector<std::pair<Time, int>> got;
  ch.SetReceiver([&](int v) { got.push_back({s.Now(), v}); });
  s.At(1.0, [&]() { ch.Send(42); });
  s.Run();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_DOUBLE_EQ(got[0].first, 3.0);
  EXPECT_EQ(got[0].second, 42);
}

TEST(ChannelTest, FifoEvenWhenSentBackToBack) {
  Scheduler s;
  Channel<int> ch(&s, 1.0);
  std::vector<int> got;
  ch.SetReceiver([&](int v) { got.push_back(v); });
  s.At(0.0, [&]() {
    ch.Send(1);
    ch.Send(2);
    ch.Send(3);
  });
  s.Run();
  EXPECT_EQ(got, (std::vector<int>{1, 2, 3}));
}

TEST(ChannelTest, StatsCountMessages) {
  Scheduler s;
  Channel<std::string> ch(&s, 0.5);
  ch.SetReceiver([](std::string) {});
  s.At(0.0, [&]() {
    ch.Send("a");
    ch.Send("b");
  });
  s.Run();
  EXPECT_EQ(ch.stats().messages_sent, 2u);
  EXPECT_GE(ch.stats().total_delay, 1.0);
}

TEST(TimeVectorTest, LeqComponentwise) {
  EXPECT_TRUE(TimeVectorLeq({1, 2}, {1, 3}));
  EXPECT_FALSE(TimeVectorLeq({1, 4}, {1, 3}));
  EXPECT_FALSE(TimeVectorLeq({1, 2}, {1, 2, 3}));  // arity mismatch
  EXPECT_TRUE(TimeVectorLeq({}, {}));
}

TEST(TimeVectorTest, ToString) {
  EXPECT_EQ(TimeVectorToString({1.5, 2}), "<1.5, 2>");
  EXPECT_EQ(TimeVectorToString({}), "<>");
}

}  // namespace
}  // namespace squirrel
