// Round-trip property tests for the durability codec: every encoded piece of
// hard state must decode to an equal value, and a decoded state must
// re-encode to the identical byte string (determinism is what makes the
// crash–restart sweep's byte-identity assertions meaningful). Edge cases the
// checkpoint format must survive: empty relations and queues, bag rows with
// multiplicity > 1, set-semantics nodes, negative delta atoms, null values.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "mediator/durability/durability.h"
#include "mediator/durability/log_device.h"
#include "mediator/durability/serialize.h"
#include "relational/parser.h"

namespace squirrel {
namespace {

Schema TestSchema(const std::string& decl) {
  auto parsed = ParseSchemaDecl(decl);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  return parsed->schema;
}

TEST(SerializeTest, ValueRoundTripAllTypes) {
  std::vector<Value> values = {Value(), Value(int64_t{-7}), Value(int64_t{0}),
                               Value(3.25), Value(-0.0), Value(std::string()),
                               Value(std::string("hello\0world", 11))};
  for (const Value& v : values) {
    BinaryWriter w;
    EncodeValue(&w, v);
    BinaryReader r(w.bytes());
    auto back = DecodeValue(&r);
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    EXPECT_EQ(*back, v);
    EXPECT_TRUE(r.AtEnd());
  }
}

TEST(SerializeTest, RelationRoundTripBagAndSet) {
  Relation bag(TestSchema("R(a, b)"), Semantics::kBag);
  ASSERT_TRUE(bag.Insert(Tuple({1, 2}), 3).ok());  // multiplicity > 1
  ASSERT_TRUE(bag.Insert(Tuple({4, 5})).ok());
  Relation set(TestSchema("S(x)"), Semantics::kSet);
  ASSERT_TRUE(set.Insert(Tuple({9})).ok());
  Relation empty(TestSchema("E(a, b, c)"), Semantics::kBag);
  for (const Relation* rel : {&bag, &set, &empty}) {
    BinaryWriter w;
    EncodeRelation(&w, *rel);
    BinaryReader r(w.bytes());
    auto back = DecodeRelation(&r);
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    EXPECT_TRUE(back->EqualContents(*rel));
    EXPECT_EQ(back->semantics(), rel->semantics());
    EXPECT_EQ(back->schema().AttributeNames(), rel->schema().AttributeNames());
    // Determinism: re-encoding the decoded relation is byte-identical.
    BinaryWriter w2;
    EncodeRelation(&w2, *back);
    EXPECT_EQ(w.bytes(), w2.bytes());
  }
}

TEST(SerializeTest, DeltaRoundTripWithDeletions) {
  Delta d(TestSchema("R(a, b)"));
  ASSERT_TRUE(d.AddInsert(Tuple({1, 10}), 2).ok());
  ASSERT_TRUE(d.AddDelete(Tuple({3, 30})).ok());
  Delta empty(TestSchema("R(a)"));
  for (const Delta* delta : {&d, &empty}) {
    BinaryWriter w;
    EncodeDelta(&w, *delta);
    BinaryReader r(w.bytes());
    auto back = DecodeDelta(&r);
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    EXPECT_TRUE(back->EqualContents(*delta));
  }
}

TEST(SerializeTest, UpdateMessageRoundTrip) {
  UpdateMessage msg;
  msg.source = "DB1";
  msg.send_time = 12.5;
  msg.seq = 42;
  Delta* d = msg.delta.Mutable("R", TestSchema("R(a, b)"));
  ASSERT_TRUE(d->AddInsert(Tuple({1, 2})).ok());
  ASSERT_TRUE(d->AddDelete(Tuple({3, 4}), 2).ok());
  BinaryWriter w;
  EncodeUpdateMessage(&w, msg);
  BinaryReader r(w.bytes());
  auto back = DecodeUpdateMessage(&r);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->source, msg.source);
  EXPECT_EQ(back->send_time, msg.send_time);
  EXPECT_EQ(back->seq, msg.seq);
  ASSERT_NE(back->delta.Find("R"), nullptr);
  EXPECT_TRUE(back->delta.Find("R")->EqualContents(*msg.delta.Find("R")));
}

TEST(SerializeTest, DecoderRejectsTruncation) {
  Relation rel(TestSchema("R(a)"), Semantics::kBag);
  ASSERT_TRUE(rel.Insert(Tuple({1})).ok());
  BinaryWriter w;
  EncodeRelation(&w, rel);
  // Every proper prefix must fail cleanly, never read out of bounds.
  for (size_t cut = 0; cut < w.bytes().size(); ++cut) {
    std::string prefix = w.bytes().substr(0, cut);
    BinaryReader r(prefix);
    EXPECT_FALSE(DecodeRelation(&r).ok()) << "prefix length " << cut;
  }
}

HardState MakeState() {
  HardState hs;
  Relation t(TestSchema("T(r1, s1)"), Semantics::kBag);
  EXPECT_TRUE(t.Insert(Tuple({1, 100}), 2).ok());
  hs.repos.emplace("T", std::move(t));
  Relation w(TestSchema("W(s1)"), Semantics::kSet);
  EXPECT_TRUE(w.Insert(Tuple({100})).ok());
  hs.repos.emplace("W", std::move(w));
  UpdateMessage msg;
  msg.source = "DB1";
  msg.send_time = 3.125;
  msg.seq = 7;
  EXPECT_TRUE(msg.delta.Mutable("R", TestSchema("R(a)"))
                  ->AddInsert(Tuple({5}))
                  .ok());
  hs.queue.push_back(std::move(msg));
  hs.sources["DB1"] = {7, 3.125, false};
  hs.sources["DB2"] = {0, 0.0, true};
  hs.next_txn_id = 9;
  return hs;
}

TEST(HardStateTest, CheckpointRestoreRecheckpointIsByteIdentical) {
  HardState hs = MakeState();
  std::string first = hs.Encode();
  auto back = HardState::Decode(first);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->Encode(), first);
  EXPECT_EQ(back->next_txn_id, hs.next_txn_id);
  EXPECT_EQ(back->queue.size(), hs.queue.size());
  EXPECT_EQ(back->sources.size(), hs.sources.size());
  EXPECT_TRUE(back->sources.at("DB2").quarantined);
  EXPECT_TRUE(back->repos.at("T").EqualContents(hs.repos.at("T")));
}

TEST(HardStateTest, EmptyStateRoundTrips) {
  HardState hs;  // no repos, no queue, no sources
  auto back = HardState::Decode(hs.Encode());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->Encode(), hs.Encode());
}

TEST(HardStateTest, TrailingBytesRejected) {
  std::string bytes = MakeState().Encode() + "x";
  EXPECT_FALSE(HardState::Decode(bytes).ok());
}

UpdateMessage Msg(const std::string& source, uint64_t seq, Time send_time,
                  const Tuple& t, int64_t count = 1) {
  UpdateMessage msg;
  msg.source = source;
  msg.seq = seq;
  msg.send_time = send_time;
  EXPECT_TRUE(
      msg.delta.Mutable("R", TestSchema("R(a, b)"))->Add(t, count).ok());
  return msg;
}

TEST(WalReplayTest, CoalescedEnqueueMergesIntoReplayTail) {
  MemLogDevice dev;
  DurabilityManager mgr({&dev, /*wal=*/true, /*checkpoint_every=*/16});
  ASSERT_TRUE(mgr.WriteCheckpoint(HardState{}).ok());
  // Live side: msg 1 enqueued, msg 2 merged into the tail (same source,
  // inside the batch window), then an unrelated source appended.
  ASSERT_TRUE(mgr.LogEnqueue(Msg("DB1", 1, 1.0, Tuple({1, 10}))).ok());
  ASSERT_TRUE(mgr.LogEnqueue(Msg("DB1", 2, 1.5, Tuple({2, 20})),
                             /*coalesced=*/true)
                  .ok());
  ASSERT_TRUE(mgr.LogEnqueue(Msg("DB2", 5, 2.0, Tuple({3, 30}))).ok());
  auto rec = mgr.Recover();
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  ASSERT_EQ(rec->state.queue.size(), 2u);
  const UpdateMessage& merged = rec->state.queue.front();
  EXPECT_EQ(merged.source, "DB1");
  EXPECT_EQ(merged.seq, 2u);  // survivor carries the LATER identity
  EXPECT_EQ(merged.send_time, 1.5);
  ASSERT_NE(merged.delta.Find("R"), nullptr);
  EXPECT_EQ(merged.delta.Find("R")->CountOf(Tuple({1, 10})), 1);
  EXPECT_EQ(merged.delta.Find("R")->CountOf(Tuple({2, 20})), 1);
  EXPECT_EQ(rec->state.queue.back().source, "DB2");
  // Dedup high-water marks advance over merged messages too.
  EXPECT_EQ(rec->state.sources.at("DB1").last_update_seq, 2u);
}

TEST(WalReplayTest, CoalescedEnqueueCancelsOpposingAtoms) {
  MemLogDevice dev;
  DurabilityManager mgr({&dev, /*wal=*/true, /*checkpoint_every=*/16});
  ASSERT_TRUE(mgr.WriteCheckpoint(HardState{}).ok());
  ASSERT_TRUE(mgr.LogEnqueue(Msg("DB1", 1, 1.0, Tuple({1, 10}), 1)).ok());
  ASSERT_TRUE(mgr.LogEnqueue(Msg("DB1", 2, 1.5, Tuple({1, 10}), -1),
                             /*coalesced=*/true)
                  .ok());
  auto rec = mgr.Recover();
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  ASSERT_EQ(rec->state.queue.size(), 1u);
  // Insert and delete cancelled: the merged delta nets to nothing, and an
  // empty per-relation delta reads as "untouched".
  EXPECT_TRUE(rec->state.queue.front().delta.Empty());
  EXPECT_EQ(rec->state.queue.front().delta.Find("R"), nullptr);
}

TEST(WalReplayTest, CoalescedEnqueueWithoutTailIsCorruption) {
  // A coalesce record is only ever written when the live queue had a
  // same-source tail; replay must treat anything else as a torn log.
  {
    MemLogDevice dev;
    DurabilityManager mgr({&dev, /*wal=*/true, /*checkpoint_every=*/16});
    ASSERT_TRUE(mgr.WriteCheckpoint(HardState{}).ok());
    ASSERT_TRUE(mgr.LogEnqueue(Msg("DB1", 1, 1.0, Tuple({1, 10})),
                               /*coalesced=*/true)
                    .ok());
    EXPECT_FALSE(mgr.Recover().ok());  // empty replay queue
  }
  {
    MemLogDevice dev;
    DurabilityManager mgr({&dev, /*wal=*/true, /*checkpoint_every=*/16});
    ASSERT_TRUE(mgr.WriteCheckpoint(HardState{}).ok());
    ASSERT_TRUE(mgr.LogEnqueue(Msg("DB1", 1, 1.0, Tuple({1, 10}))).ok());
    ASSERT_TRUE(mgr.LogEnqueue(Msg("DB2", 1, 1.5, Tuple({2, 20})),
                               /*coalesced=*/true)
                    .ok());
    EXPECT_FALSE(mgr.Recover().ok());  // tail belongs to another source
  }
}

TEST(HardStateTest, ResyncStateRoundTrips) {
  HardState hs = MakeState();
  hs.sources["DB2"].epoch = 4;
  hs.sources["DB2"].health = 2;  // resyncing: recovery re-pulls the snapshot
  Relation mirror(TestSchema("R(a, b)"), Semantics::kBag);
  ASSERT_TRUE(mirror.Insert(Tuple({1, 2}), 2).ok());
  hs.mirrors["DB1"].emplace("R", std::move(mirror));
  hs.mirrors["DB1"].emplace("Q",
                            Relation(TestSchema("Q(x)"), Semantics::kBag));
  hs.next_resync_id = 9;
  std::string bytes = hs.Encode();
  auto back = HardState::Decode(bytes);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->Encode(), bytes);
  EXPECT_EQ(back->sources.at("DB2").epoch, 4u);
  EXPECT_EQ(back->sources.at("DB2").health, 2);
  EXPECT_EQ(back->sources.at("DB1").epoch, 1u);  // default incarnation
  EXPECT_EQ(back->next_resync_id, 9u);
  ASSERT_EQ(back->mirrors.size(), 1u);
  ASSERT_EQ(back->mirrors.at("DB1").size(), 2u);
  EXPECT_TRUE(back->mirrors.at("DB1").at("R").EqualContents(
      hs.mirrors.at("DB1").at("R")));
  EXPECT_EQ(back->mirrors.at("DB1").at("Q").DistinctSize(), 0u);
}

TEST(WalReplayTest, ResyncRecordsRestoreEpochHealthAndDedupFloor) {
  MemLogDevice dev;
  DurabilityManager mgr({&dev, /*wal=*/true, /*checkpoint_every=*/16});
  ASSERT_TRUE(mgr.WriteCheckpoint(HardState{}).ok());
  ASSERT_TRUE(mgr.LogEnqueue(Msg("DB1", 3, 1.0, Tuple({1, 10}))).ok());
  ASSERT_TRUE(mgr.LogResyncBegin("DB1", 2).ok());
  // The corrective enqueue precedes the done record (crash in between must
  // replay into a state that simply resyncs again).
  UpdateMessage fix = Msg("DB1", 5, 2.0, Tuple({2, 20}));
  fix.epoch = 2;
  ASSERT_TRUE(mgr.LogEnqueue(fix).ok());
  ASSERT_TRUE(mgr.LogResyncDone("DB1", 2, 5).ok());
  auto rec = mgr.Recover();
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  const HardState::SourceState& src = rec->state.sources.at("DB1");
  EXPECT_EQ(src.epoch, 2u);
  EXPECT_EQ(src.health, 0);  // back to healthy
  // The new incarnation's dedup floor, NOT max(old seq, new seq).
  EXPECT_EQ(src.last_update_seq, 5u);
  EXPECT_EQ(rec->state.queue.size(), 2u);
}

TEST(WalReplayTest, ResyncBeginWithoutDoneLeavesSourceResyncing) {
  MemLogDevice dev;
  DurabilityManager mgr({&dev, /*wal=*/true, /*checkpoint_every=*/16});
  ASSERT_TRUE(mgr.WriteCheckpoint(HardState{}).ok());
  ASSERT_TRUE(mgr.LogResyncBegin("DB1", 3).ok());
  auto rec = mgr.Recover();
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  EXPECT_EQ(rec->state.sources.at("DB1").epoch, 3u);
  // Recovery sees the unfinished resync and re-initiates the snapshot pull.
  EXPECT_EQ(rec->state.sources.at("DB1").health, 2);
}

TEST(WalReplayTest, EpochBumpInEnqueueResetsDedupHighWater) {
  MemLogDevice dev;
  DurabilityManager mgr({&dev, /*wal=*/true, /*checkpoint_every=*/16});
  ASSERT_TRUE(mgr.WriteCheckpoint(HardState{}).ok());
  ASSERT_TRUE(mgr.LogEnqueue(Msg("DB1", 7, 1.0, Tuple({1, 10}))).ok());
  UpdateMessage hello = Msg("DB1", 1, 2.0, Tuple({2, 20}));
  hello.epoch = 2;
  ASSERT_TRUE(mgr.LogEnqueue(hello).ok());
  auto rec = mgr.Recover();
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  EXPECT_EQ(rec->state.sources.at("DB1").epoch, 2u);
  EXPECT_EQ(rec->state.sources.at("DB1").last_update_seq, 1u);
}

TEST(WalReplayTest, ShedRecordReplaysTheLosslessMerge) {
  MemLogDevice dev;
  DurabilityManager mgr({&dev, /*wal=*/true, /*checkpoint_every=*/16});
  ASSERT_TRUE(mgr.WriteCheckpoint(HardState{}).ok());
  ASSERT_TRUE(mgr.LogEnqueue(Msg("DB1", 1, 1.0, Tuple({1, 10}))).ok());
  ASSERT_TRUE(mgr.LogEnqueue(Msg("DB2", 1, 1.5, Tuple({7, 70}))).ok());
  ASSERT_TRUE(mgr.LogEnqueue(Msg("DB1", 2, 2.0, Tuple({2, 20}))).ok());
  ASSERT_TRUE(mgr.LogShed().ok());
  auto rec = mgr.Recover();
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  ASSERT_EQ(rec->state.queue.size(), 2u);
  EXPECT_EQ(rec->state.queue.front().source, "DB2");
  const UpdateMessage& merged = rec->state.queue.back();
  EXPECT_EQ(merged.source, "DB1");
  EXPECT_EQ(merged.seq, 2u);
  ASSERT_NE(merged.delta.Find("R"), nullptr);
  EXPECT_EQ(merged.delta.Find("R")->CountOf(Tuple({1, 10})), 1);
  EXPECT_EQ(merged.delta.Find("R")->CountOf(Tuple({2, 20})), 1);
}

TEST(WalReplayTest, ShedWithNoMergeablePairIsCorruption) {
  MemLogDevice dev;
  DurabilityManager mgr({&dev, /*wal=*/true, /*checkpoint_every=*/16});
  ASSERT_TRUE(mgr.WriteCheckpoint(HardState{}).ok());
  ASSERT_TRUE(mgr.LogEnqueue(Msg("DB1", 1, 1.0, Tuple({1, 10}))).ok());
  ASSERT_TRUE(mgr.LogShed().ok());  // no same-source pair exists
  EXPECT_FALSE(mgr.Recover().ok());
}

TEST(WalReplayTest, CommitSourceDeltasAdvanceTheMirrors) {
  MemLogDevice dev;
  DurabilityManager mgr({&dev, /*wal=*/true, /*checkpoint_every=*/16});
  HardState hs;
  Relation mirror(TestSchema("R(a, b)"), Semantics::kBag);
  ASSERT_TRUE(mirror.Insert(Tuple({1, 10})).ok());
  hs.mirrors["DB1"].emplace("R", std::move(mirror));
  ASSERT_TRUE(mgr.WriteCheckpoint(hs).ok());
  ASSERT_TRUE(mgr.LogEnqueue(Msg("DB1", 1, 1.0, Tuple({2, 20}))).ok());
  ASSERT_TRUE(mgr.LogTxnBegin(1, 1).ok());
  CommitPayload payload;
  payload.txn_id = 1;
  payload.consumed = 1;
  ASSERT_TRUE(payload.source_deltas["DB1"]
                  .Mutable("R", TestSchema("R(a, b)"))
                  ->AddInsert(Tuple({2, 20}))
                  .ok());
  ASSERT_TRUE(mgr.LogTxnCommit(payload).ok());
  auto rec = mgr.Recover();
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  const Relation& r = rec->state.mirrors.at("DB1").at("R");
  EXPECT_EQ(r.DistinctSize(), 2u);
  EXPECT_TRUE(r.Contains(Tuple({2, 20})));
}

TEST(MemLogDeviceTest, AppendTruncateReadAll) {
  MemLogDevice dev;
  for (int i = 0; i < 5; ++i) {
    auto lsn = dev.Append("rec" + std::to_string(i));
    ASSERT_TRUE(lsn.ok());
    EXPECT_EQ(*lsn, static_cast<uint64_t>(i));
  }
  ASSERT_TRUE(dev.TruncatePrefix(3).ok());
  auto records = dev.ReadAll();
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 2u);
  EXPECT_EQ((*records)[0].lsn, 3u);
  EXPECT_EQ((*records)[0].bytes, "rec3");
  EXPECT_EQ(dev.NextLsn(), 5u);  // LSNs keep counting past truncation
}

TEST(FileLogDeviceTest, SurvivesReopenAndDropsTornTail) {
  std::string path = ::testing::TempDir() + "/squirrel_wal_test.log";
  std::remove(path.c_str());
  {
    auto dev = FileLogDevice::Open(path);
    ASSERT_TRUE(dev.ok()) << dev.status().ToString();
    ASSERT_TRUE((*dev)->Append("alpha").ok());
    ASSERT_TRUE((*dev)->Append("beta").ok());
  }
  // Simulate a crash mid-append: a torn frame at the file's tail.
  {
    std::FILE* f = std::fopen(path.c_str(), "ab");
    ASSERT_NE(f, nullptr);
    const char torn[] = {0x02, 0x00, 0x00};  // half an LSN, no payload
    std::fwrite(torn, 1, sizeof(torn), f);
    std::fclose(f);
  }
  auto dev = FileLogDevice::Open(path);
  ASSERT_TRUE(dev.ok()) << dev.status().ToString();
  auto records = (*dev)->ReadAll();
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 2u);  // the torn tail is gone
  EXPECT_EQ((*records)[0].bytes, "alpha");
  EXPECT_EQ((*records)[1].bytes, "beta");
  EXPECT_EQ((*dev)->NextLsn(), 2u);
  // Appends after the reopen continue the sequence durably.
  ASSERT_TRUE((*dev)->Append("gamma").ok());
  auto dev2 = FileLogDevice::Open(path);
  ASSERT_TRUE(dev2.ok());
  auto records2 = (*dev2)->ReadAll();
  ASSERT_TRUE(records2.ok());
  ASSERT_EQ(records2->size(), 3u);
  EXPECT_EQ((*records2)[2].bytes, "gamma");
  std::remove(path.c_str());
}

// Randomized round-trip: seeded random relations/deltas must all survive
// encode→decode→re-encode byte-identically.
TEST(SerializeTest, SeededRandomRoundTrips) {
  Rng rng(20260807);
  for (int iter = 0; iter < 50; ++iter) {
    Relation rel(TestSchema("R(a, b, c)"),
                 rng.Bernoulli(0.5) ? Semantics::kBag : Semantics::kSet);
    int rows = static_cast<int>(rng.Uniform(12));
    for (int i = 0; i < rows; ++i) {
      Tuple t({rng.UniformInt(-50, 50), rng.UniformInt(0, 9),
               rng.UniformInt(0, 999)});
      ASSERT_TRUE(
          rel.Insert(t, rel.semantics() == Semantics::kBag
                            ? rng.UniformInt(1, 4)
                            : 1)
              .ok());
    }
    BinaryWriter w;
    EncodeRelation(&w, rel);
    BinaryReader r(w.bytes());
    auto back = DecodeRelation(&r);
    ASSERT_TRUE(back.ok()) << "iter " << iter;
    BinaryWriter w2;
    EncodeRelation(&w2, *back);
    ASSERT_EQ(w.bytes(), w2.bytes()) << "iter " << iter;
  }
}

}  // namespace
}  // namespace squirrel
